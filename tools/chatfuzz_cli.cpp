// chatfuzz — command-line front end for the library. Subcommands cover the
// day-to-day verification workflow:
//
//   chatfuzz asm <file.s>                 assemble text to a corpus file
//   chatfuzz disasm <corpus.txt> [n]      disassemble test n (default all)
//   chatfuzz run <corpus.txt> [n]         co-simulate test n, print traces + mismatches
//   chatfuzz minimize <corpus.txt> <n>    shrink test n to a minimal repro
//   chatfuzz fuzz <fuzzer> <tests>        run a campaign (random|thehuzz|difuzz|chatfuzz)
//                                          writes mismatching inputs to found.txt
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "baselines/hypfuzz.h"
#include "baselines/mutational.h"
#include "baselines/point_solver.h"
#include "baselines/psofuzz.h"
#include "core/campaign.h"
#include "core/chatfuzz.h"
#include "core/replay.h"
#include "isasim/sim.h"
#include "mismatch/minimize.h"
#include "riscv/asm.h"
#include "riscv/disasm.h"
#include "rtlsim/core.h"
#include "util/parse.h"

using namespace chatfuzz;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: chatfuzz <asm|disasm|run|minimize|fuzz|solve> ...\n"
               "  asm <file.s>              assemble to stdout (corpus format)\n"
               "  disasm <corpus.txt> [n]   disassemble test n (default: all)\n"
               "  run <corpus.txt> [n]      co-simulate + mismatch report\n"
               "  minimize <corpus.txt> <n> shrink a mismatching test\n"
               "  fuzz <fuzzer> <tests> [workers]\n"
               "                            campaign; fuzzer = random|thehuzz|"
               "difuzz|psofuzz|hypfuzz|chatfuzz;\n"
               "                            workers = simulation threads "
               "(default 1, 0 = all cores);\n"
               "                            results are bit-identical for any "
               "worker count\n"
               "  solve <point-name>        synthesize + verify a directed "
               "test for a coverage point\n");
  return 2;
}

std::optional<std::vector<core::Program>> load(const char* path) {
  auto corpus = core::load_corpus(path);
  if (!corpus) std::fprintf(stderr, "cannot load corpus: %s\n", path);
  return corpus;
}

int cmd_asm(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  const auto prog = riscv::assemble(buf.str(), &error);
  if (!prog) {
    std::fprintf(stderr, "%s: %s\n", path, error.c_str());
    return 1;
  }
  std::fputs(core::corpus_to_text({*prog}).c_str(), stdout);
  return 0;
}

int cmd_disasm(const char* path, int which) {
  const auto corpus = load(path);
  if (!corpus) return 1;
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    if (which >= 0 && static_cast<std::size_t>(which) != i) continue;
    std::printf("== test %zu (%zu instructions)\n", i, (*corpus)[i].size());
    std::fputs(riscv::disasm_program((*corpus)[i], 0x8000'0000ull).c_str(),
               stdout);
  }
  return 0;
}

int cmd_run(const char* path, int which) {
  const auto corpus = load(path);
  if (!corpus) return 1;
  mismatch::MismatchDetector detector;
  detector.install_default_filters();
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    if (which >= 0 && static_cast<std::size_t>(which) != i) continue;
    const mismatch::Report rep = core::replay_test(
        (*corpus)[i], rtl::CoreConfig::rocket(), sim::Platform{});
    detector.accumulate(rep);
    std::printf("test %zu: %zu mismatches\n", i, rep.mismatches.size());
    for (const auto& m : rep.mismatches) {
      std::printf("  [%s] %s\n", mismatch::finding_name(m.finding),
                  m.signature.c_str());
      std::printf("     dut:  %s\n     gold: %s\n", m.dut.to_string().c_str(),
                  m.golden.to_string().c_str());
    }
  }
  std::fputs(core::render_mismatch_report(detector).c_str(), stdout);
  return 0;
}

int cmd_minimize(const char* path, int which) {
  const auto corpus = load(path);
  if (!corpus || which < 0 ||
      static_cast<std::size_t>(which) >= corpus->size()) {
    return 1;
  }
  const mismatch::MinimizeResult r = mismatch::minimize((*corpus)[which]);
  if (!r.reproduced) {
    std::printf("test %d produces no mismatch; nothing to minimize\n", which);
    return 0;
  }
  std::printf("signature: %s\n", r.signature.c_str());
  std::printf("%zu -> %zu instructions (%zu co-simulations)\n",
              r.original_size, r.reduced.size(), r.tests_run);
  std::fputs(riscv::disasm_program(r.reduced, 0x8000'0000ull).c_str(), stdout);
  return 0;
}

int cmd_fuzz(const char* which, std::size_t tests, std::size_t workers) {
  core::CampaignConfig cfg;
  cfg.num_tests = tests;
  cfg.checkpoint_every = std::max<std::size_t>(tests / 10, 10);
  cfg.num_workers = workers;

  std::unique_ptr<core::InputGenerator> gen;
  std::unique_ptr<core::ChatFuzzGenerator> chat;
  if (std::strcmp(which, "random") == 0) {
    gen = std::make_unique<baselines::RandomFuzzer>(1);
  } else if (std::strcmp(which, "thehuzz") == 0) {
    gen = std::make_unique<baselines::TheHuzzFuzzer>(1);
  } else if (std::strcmp(which, "difuzz") == 0) {
    gen = std::make_unique<baselines::DifuzzRtlFuzzer>(1);
  } else if (std::strcmp(which, "psofuzz") == 0) {
    gen = std::make_unique<baselines::PsoFuzzer>(1);
  } else if (std::strcmp(which, "hypfuzz") == 0) {
    gen = std::make_unique<baselines::HypFuzzer>(1);
  } else if (std::strcmp(which, "chatfuzz") == 0) {
    chat = std::make_unique<core::ChatFuzzGenerator>(core::ChatFuzzConfig{});
    if (!chat->load_model("chatfuzz_model.bin")) {
      std::fprintf(stderr, "training model (cached to chatfuzz_model.bin)...\n");
      chat->train_offline();
      chat->save_model("chatfuzz_model.bin");
    }
  } else {
    return usage();
  }
  core::InputGenerator& g = chat ? *chat : *gen;

  const core::CampaignResult r = core::run_campaign(
      g, cfg, [](const core::CampaignPoint& p) {
        std::fprintf(stderr, "  %6zu tests  %.2f%% cond-cov\n", p.tests,
                     p.cond_cov_percent);
      });
  std::printf("%s: %.2f%% condition coverage, %zu raw / %zu unique "
              "mismatches, %.2f paper-hours\n",
              r.fuzzer.c_str(), r.final_cov_percent, r.raw_mismatches,
              r.unique_mismatches, r.hours);
  std::printf("%zu points still have an uncovered bin\n", r.uncovered.size());
  for (const auto f : r.findings) {
    std::printf("  finding: %s\n", mismatch::finding_name(f));
  }
  return 0;
}

int cmd_solve(const char* point_name) {
  const sim::Platform plat{.max_steps = 2048};
  baselines::PointSolver solver(plat);
  if (solver.provably_unreachable(point_name)) {
    std::printf("%s: classified unreachable in this testbench\n", point_name);
    return 0;
  }
  cov::UncoveredPoint up;
  up.name = point_name;
  up.missing_true = true;
  const auto prog = solver.solve(up);
  if (!prog) {
    std::fprintf(stderr, "%s: no solver template\n", point_name);
    return 1;
  }
  std::fputs(riscv::disasm_program(*prog, plat.ram_base).c_str(), stdout);

  // Verify: run on the DUT model and report whether the true bin was hit.
  cov::CoverageDB db;
  rtl::RtlCore dut(rtl::CoreConfig::rocket(), db, plat);
  dut.reset(*prog);
  dut.run();
  for (std::size_t i = 0; i < db.num_points(); ++i) {
    if (db.point_name(static_cast<cov::PointId>(i)) == point_name) {
      std::printf("\n%s true bin: %s\n", point_name,
                  db.bin_covered(2 * i + 1) ? "COVERED" : "not covered");
      return db.bin_covered(2 * i + 1) ? 0 : 1;
    }
  }
  std::printf("\n(point not present in the RocketCore build)\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "asm") == 0 && argc >= 3) return cmd_asm(argv[2]);
  if (std::strcmp(cmd, "disasm") == 0 && argc >= 3) {
    return cmd_disasm(argv[2], argc >= 4 ? std::atoi(argv[3]) : -1);
  }
  if (std::strcmp(cmd, "run") == 0 && argc >= 3) {
    return cmd_run(argv[2], argc >= 4 ? std::atoi(argv[3]) : -1);
  }
  if (std::strcmp(cmd, "minimize") == 0 && argc >= 4) {
    return cmd_minimize(argv[2], std::atoi(argv[3]));
  }
  if (std::strcmp(cmd, "fuzz") == 0 && argc >= 4) {
    const auto tests = parse_count(argv[3]);
    const auto workers = argc >= 5 ? parse_count(argv[4])
                                   : std::optional<std::size_t>(1);
    if (!tests || !workers) {
      std::fprintf(stderr, "fuzz: <tests> and [workers] must be non-negative "
                           "integers\n");
      return usage();
    }
    return cmd_fuzz(argv[2], *tests, *workers);
  }
  if (std::strcmp(cmd, "solve") == 0 && argc >= 3) return cmd_solve(argv[2]);
  return usage();
}
