// chatfuzz — command-line front end for the library. Subcommands cover the
// day-to-day verification workflow (this list mirrors the kCommands table
// below, which is the single source the usage text is generated from):
//
//   chatfuzz asm <file.s>                 assemble text to a corpus file
//   chatfuzz disasm <corpus.txt> [n]      disassemble test n (default all)
//   chatfuzz run <corpus.txt> [n]         co-simulate test n, print traces + mismatches
//   chatfuzz minimize <corpus.txt> <n>    shrink test n to a minimal repro
//   chatfuzz fuzz <fuzzer> <tests>        run a campaign (random|thehuzz|difuzz|
//                                          psofuzz|hypfuzz|chatfuzz); --procs <n>
//                                          shards it across n worker processes
//   chatfuzz fuzz --resume <dir>          continue a checkpointed campaign
//   chatfuzz corpus <export|import|minimize|stats> <dir> ...
//                                          work with an on-disk corpus store
//   chatfuzz federate <serve|push|pull> <dir> ...
//                                          exchange corpus deltas over TCP
//   chatfuzz fleet status <host:port>     live state of a fuzz --listen fleet
//   chatfuzz solve <point-name>           directed test for a coverage point
//   chatfuzz worker <fd>|--connect <a>    (internal) distributed-campaign
//                                          worker; spawned by fuzz --procs
//                                          or dialing a fuzz --listen fleet
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "baselines/hypfuzz.h"
#include "baselines/mutational.h"
#include "baselines/point_solver.h"
#include "baselines/psofuzz.h"
#include "core/campaign.h"
#include "core/chatfuzz.h"
#include "core/checkpoint.h"
#include "core/replay.h"
#include "corpus/store.h"
#include "coverage/merge.h"
#include "corpus/stats.h"
#include "dist/federation.h"
#include "dist/fleet.h"
#include "dist/worker.h"
#include "isasim/sim.h"
#include "mismatch/minimize.h"
#include "riscv/asm.h"
#include "riscv/disasm.h"
#include "riscv/superblock.h"
#include "rtlsim/core.h"
#include "rtlsim/dut.h"
#include "util/parse.h"

using namespace chatfuzz;

namespace {

/// One row per CLI surface. The file-header command list and usage() are
/// both this table rendered out, so neither can drift from the other (the
/// old hand-maintained usage string had lost `solve`).
struct CommandDoc {
  const char* name;  // subcommand (the <a|b|...> list dedups these in order)
  const char* args;  // argument signature
  const char* help;  // '\n'-separated description lines
};

constexpr CommandDoc kCommands[] = {
    {"asm", "<file.s>", "assemble to stdout (corpus format)"},
    {"disasm", "<corpus.txt> [n]", "disassemble test n (default: all)"},
    {"run", "<corpus.txt> [n]", "co-simulate + mismatch report"},
    {"minimize", "<corpus.txt> <n>", "shrink a mismatching test"},
    {"fuzz",
     "<fuzzer> <tests> [workers] [--dut <list>] [--procs <n>] "
     "[--listen <host:port>] [--token <t>] [--port-file <f>] "
     "[--checkpoint <dir>] [--every <n>] [--bbv <file>] [--no-superblocks] "
     "[--trace <f.json>] [--stats <f.ndjson>] [--stats-every <ms>]",
     "campaign; fuzzer = random|thehuzz|difuzz|psofuzz|hypfuzz|chatfuzz;\n"
     "workers = simulation threads per process (default 1, 0 = all cores);\n"
     "--dut runs every test on each listed backend (inorder|rocket|boom|\n"
     "ooo, comma-separated; default inorder) against one golden model;\n"
     "the first entry is primary (metrics/BBV/replay). Stored in\n"
     "checkpoints; resume keeps the stored list.\n"
     "--procs fans the campaign out across <n> worker processes\n"
     "(coordinator folds, workers simulate). Results are bit-identical\n"
     "for any worker/process count.\n"
     "--listen switches the fleet to TCP: local workers dial back over\n"
     "loopback and remote `chatfuzz worker --connect` processes can join\n"
     "or rejoin at any time (--procs 0 = external workers only); --token\n"
     "authenticates them; --port-file records the bound address (port 0 =\n"
     "ephemeral). SIGTERM drains gracefully: finish the batch, checkpoint,\n"
     "exit as paused.\n"
     "--checkpoint snapshots state + corpus to <dir> every <n> tests;\n"
     "--bbv records per-test basic-block vectors to <file>;\n"
     "--no-superblocks disables superblock dispatch (same results, slower);\n"
     "--trace writes a Chrome trace_event JSON of engine/ML/dist spans\n"
     "(load in Perfetto); --stats appends a metrics snapshot to <f.ndjson>\n"
     "every --stats-every ms (default 1000). Telemetry is out-of-band:\n"
     "results are byte-identical with it on or off"},
    {"fuzz", "--resume <dir> [workers] [--procs <n>] [--listen <host:port>] "
     "[--token <t>] [--port-file <f>] [--bbv <file>] [--no-superblocks] "
     "[--trace <f.json>] [--stats <f.ndjson>] [--stats-every <ms>]",
     "continue a checkpointed campaign bit-identically to an\n"
     "uninterrupted run (workers: default = checkpoint's count,\n"
     "0 = all cores; --procs/--listen/--bbv/--no-superblocks/--trace/\n"
     "--stats are per-run, never stored)"},
    {"corpus", "export <dir> <out.txt>", "store -> text corpus"},
    {"corpus", "import <dir> <in.txt>", "text corpus -> store"},
    {"corpus", "minimize <dir>",
     "re-simulate, keep only tests that add coverage or mismatch;\n"
     "mismatch-only tests whose basic-block-vector phase signature\n"
     "duplicates an earlier kept test are dropped"},
    {"corpus", "stats <dir> [--json]",
     "entry/shard/byte totals, first-covered-bin attribution histogram,\n"
     "phase-signature histogram (phase hashes filled by corpus minimize);\n"
     "--json emits one machine-readable object instead of the table"},
    {"federate", "serve <dir> --listen <host:port> [--token <t>] "
     "[--port-file <f>] [--sessions <n>]",
     "corpus hub: accept push/pull sessions and merge deltas into <dir>\n"
     "order-canonically (store bytes independent of push order; corrupt\n"
     "deltas quarantined to <dir>/quarantine, never fatal). --sessions\n"
     "exits after n sessions (default: run until killed)"},
    {"federate", "push <dir> --connect <host:port> [--token <t>]",
     "send every local corpus entry to the hub; reconnects with backoff\n"
     "and re-pushes idempotently after a disconnect"},
    {"federate", "pull <dir> --connect <host:port> [--token <t>]",
     "fetch the hub's entries into the local store (same canonical merge)"},
    {"fleet", "status <host:port> [--token <t>]",
     "query a running fuzz --listen coordinator for live fleet state:\n"
     "per-peer pid/liveness/leases/results/heartbeat age plus the\n"
     "campaign metrics snapshot. Observation-only (never joins the fleet)"},
    {"solve", "<point-name>",
     "synthesize + verify a directed test for a coverage point"},
    {"worker", "<fd> | --connect <host:port> [--token <t>] [--retries <n>]",
     "(internal) distributed-campaign worker: either over an inherited\n"
     "socketpair fd (spawned by fuzz --procs) or dialing a fuzz --listen\n"
     "coordinator over TCP, redialing with capped backoff until rejected"},
};

int usage() {
  std::string names;
  for (const CommandDoc& c : kCommands) {
    const std::string name(c.name);
    if (("|" + names + "|").find("|" + name + "|") != std::string::npos) {
      continue;
    }
    if (!names.empty()) names += '|';
    names += name;
  }
  std::fprintf(stderr, "usage: chatfuzz <%s> ...\n", names.c_str());
  for (const CommandDoc& c : kCommands) {
    std::fprintf(stderr, "  %s %s\n", c.name, c.args);
    const char* line = c.help;
    while (line != nullptr && *line != '\0') {
      const char* nl = std::strchr(line, '\n');
      const int len = nl != nullptr ? static_cast<int>(nl - line)
                                    : static_cast<int>(std::strlen(line));
      std::fprintf(stderr, "      %.*s\n", len, line);
      line = nl != nullptr ? nl + 1 : nullptr;
    }
  }
  return 2;
}

/// Construct a generator by CLI kind name (seed matches cmd_fuzz's). For
/// resume, the constructed instance is only a shell — restore_state()
/// replaces every stochastic component.
std::unique_ptr<core::InputGenerator> make_generator(const std::string& kind) {
  if (kind == "Random" || kind == "random") {
    return std::make_unique<baselines::RandomFuzzer>(1);
  }
  if (kind == "TheHuzz" || kind == "thehuzz") {
    return std::make_unique<baselines::TheHuzzFuzzer>(1);
  }
  if (kind == "DifuzzRTL" || kind == "difuzz") {
    return std::make_unique<baselines::DifuzzRtlFuzzer>(1);
  }
  if (kind == "PSOFuzz" || kind == "psofuzz") {
    return std::make_unique<baselines::PsoFuzzer>(1);
  }
  if (kind == "HyPFuzz" || kind == "hypfuzz") {
    return std::make_unique<baselines::HypFuzzer>(1);
  }
  if (kind == "ChatFuzz" || kind == "chatfuzz") {
    return std::make_unique<core::ChatFuzzGenerator>(core::ChatFuzzConfig{});
  }
  return nullptr;
}

void print_campaign_result(const core::CampaignResult& r) {
  std::printf("%s: %.2f%% condition coverage, %zu raw / %zu unique "
              "mismatches, %.2f paper-hours%s\n",
              r.fuzzer.c_str(), r.final_cov_percent, r.raw_mismatches,
              r.unique_mismatches, r.hours,
              r.completed ? "" : " (paused; resume with fuzz --resume)");
  std::printf("%zu points still have an uncovered bin\n", r.uncovered.size());
  for (const auto f : r.findings) {
    std::printf("  finding: %s\n", mismatch::finding_name(f));
  }
}

std::optional<std::vector<core::Program>> load(const char* path) {
  auto corpus = core::load_corpus(path);
  if (!corpus) std::fprintf(stderr, "cannot load corpus: %s\n", path);
  return corpus;
}

int cmd_asm(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  const auto prog = riscv::assemble(buf.str(), &error);
  if (!prog) {
    std::fprintf(stderr, "%s: %s\n", path, error.c_str());
    return 1;
  }
  std::fputs(core::corpus_to_text({*prog}).c_str(), stdout);
  return 0;
}

int cmd_disasm(const char* path, int which) {
  const auto corpus = load(path);
  if (!corpus) return 1;
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    if (which >= 0 && static_cast<std::size_t>(which) != i) continue;
    std::printf("== test %zu (%zu instructions)\n", i, (*corpus)[i].size());
    std::fputs(riscv::disasm_program((*corpus)[i], 0x8000'0000ull).c_str(),
               stdout);
  }
  return 0;
}

int cmd_run(const char* path, int which) {
  const auto corpus = load(path);
  if (!corpus) return 1;
  mismatch::MismatchDetector detector;
  detector.install_default_filters();
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    if (which >= 0 && static_cast<std::size_t>(which) != i) continue;
    const mismatch::Report rep = core::replay_test(
        (*corpus)[i], rtl::CoreConfig::rocket(), sim::Platform{});
    detector.accumulate(rep);
    std::printf("test %zu: %zu mismatches\n", i, rep.mismatches.size());
    for (const auto& m : rep.mismatches) {
      std::printf("  [%s] %s\n", mismatch::finding_name(m.finding),
                  m.signature.c_str());
      std::printf("     dut:  %s\n     gold: %s\n", m.dut.to_string().c_str(),
                  m.golden.to_string().c_str());
    }
  }
  std::fputs(core::render_mismatch_report(detector).c_str(), stdout);
  return 0;
}

int cmd_minimize(const char* path, int which) {
  const auto corpus = load(path);
  if (!corpus || which < 0 ||
      static_cast<std::size_t>(which) >= corpus->size()) {
    return 1;
  }
  const mismatch::MinimizeResult r = mismatch::minimize((*corpus)[which]);
  if (!r.reproduced) {
    std::printf("test %d produces no mismatch; nothing to minimize\n", which);
    return 0;
  }
  std::printf("signature: %s\n", r.signature.c_str());
  std::printf("%zu -> %zu instructions (%zu co-simulations)\n",
              r.original_size, r.reduced.size(), r.tests_run);
  std::fputs(riscv::disasm_program(r.reduced, 0x8000'0000ull).c_str(), stdout);
  return 0;
}

core::CheckpointHook progress_hook() {
  return [](const core::CampaignPoint& p) {
    std::fprintf(stderr, "  %6zu tests  %.2f%% cond-cov\n", p.tests,
                 p.cond_cov_percent);
  };
}

extern "C" void handle_sigterm(int) {
  // Async-signal-safe by contract: just flips the drain flag. The engine
  // notices at the next batch boundary, checkpoints, and exits as paused.
  core::request_drain();
}

void install_drain_handler() {
  core::clear_drain();
  struct sigaction sa{};
  sa.sa_handler = handle_sigterm;
  ::sigaction(SIGTERM, &sa, nullptr);
}

/// TCP fleet options shared by fuzz and resume.
struct NetArgs {
  const char* listen = nullptr;
  const char* token = nullptr;
  const char* port_file = nullptr;

  void apply(core::DistConfig* dist) const {
    if (listen != nullptr) dist->listen = listen;
    if (token != nullptr) dist->token = token;
    if (port_file != nullptr) dist->port_file = port_file;
  }
  /// Consume one argv pair; returns true when it was a net flag.
  bool parse(int argc, char** argv, int* i) {
    if (std::strcmp(argv[*i], "--listen") == 0 && *i + 1 < argc) {
      listen = argv[++*i];
    } else if (std::strcmp(argv[*i], "--token") == 0 && *i + 1 < argc) {
      token = argv[++*i];
    } else if (std::strcmp(argv[*i], "--port-file") == 0 && *i + 1 < argc) {
      port_file = argv[++*i];
    } else {
      return false;
    }
    return true;
  }
};

/// Telemetry options shared by fuzz and resume: per-run knobs, never
/// stored in checkpoints (like --bbv).
struct ObsArgs {
  const char* trace = nullptr;
  const char* stats = nullptr;
  std::optional<std::size_t> stats_every_ms;
  bool bad = false;

  /// Works on core::CampaignConfig and core::ResumeOptions alike (both
  /// carry the same trace_path/stats_path/stats_every_ms trio).
  template <typename Cfg>
  void apply(Cfg* cfg) const {
    if (trace != nullptr) cfg->trace_path = trace;
    if (stats != nullptr) cfg->stats_path = stats;
    if (stats_every_ms.has_value()) {
      cfg->stats_every_ms = static_cast<std::uint64_t>(*stats_every_ms);
    }
  }
  /// Consume one argv pair; returns true when it was a telemetry flag.
  bool parse(int argc, char** argv, int* i) {
    if (std::strcmp(argv[*i], "--trace") == 0 && *i + 1 < argc) {
      trace = argv[++*i];
    } else if (std::strcmp(argv[*i], "--stats") == 0 && *i + 1 < argc) {
      stats = argv[++*i];
    } else if (std::strcmp(argv[*i], "--stats-every") == 0 &&
               *i + 1 < argc) {
      stats_every_ms = parse_count(argv[++*i]);
      if (!stats_every_ms) bad = true;
    } else {
      return false;
    }
    return true;
  }
};

/// Parse a `--dut` comma list ("inorder,ooo") into CoreConfig presets.
/// Returns false (with a message) on an unknown or empty entry.
bool parse_dut_list(const char* list, std::vector<rtl::CoreConfig>* out) {
  const std::string s(list);
  for (std::size_t pos = 0; pos <= s.size();) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    const std::string name = s.substr(pos, end - pos);
    rtl::CoreConfig c;
    if (!rtl::dut_preset(name, c)) {
      std::fprintf(stderr,
                   "fuzz --dut: unknown backend \"%s\" "
                   "(expected inorder|rocket|boom|ooo)\n",
                   name.c_str());
      return false;
    }
    out->push_back(c);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !out->empty();
}

int cmd_fuzz(const char* which, std::size_t tests, std::size_t workers,
             std::size_t procs, const char* checkpoint_dir,
             std::size_t checkpoint_every, const char* bbv_path,
             bool superblocks, const char* dut_list, const NetArgs& net,
             const ObsArgs& obs) {
  core::CampaignConfig cfg;
  cfg.num_tests = tests;
  cfg.checkpoint_every = std::max<std::size_t>(tests / 10, 10);
  cfg.num_workers = workers;
  cfg.dist.num_procs = procs;
  net.apply(&cfg.dist);
  obs.apply(&cfg);
  cfg.superblocks = superblocks;
  install_drain_handler();
  if (dut_list != nullptr && !parse_dut_list(dut_list, &cfg.duts)) return 2;
  if (bbv_path != nullptr) cfg.bbv_path = bbv_path;
  if (checkpoint_dir != nullptr) {
    cfg.checkpoint_dir = checkpoint_dir;
    cfg.checkpoint_every_tests = checkpoint_every;
  }

  std::unique_ptr<core::InputGenerator> gen = make_generator(which);
  if (gen == nullptr) return usage();
  if (auto* chat = dynamic_cast<core::ChatFuzzGenerator*>(gen.get())) {
    const ser::Status loaded = chat->load_model("chatfuzz_model.bin");
    if (!loaded.ok()) {
      std::fprintf(stderr,
                   "model cache unavailable: %s\n"
                   "training model (cached to chatfuzz_model.bin)...\n",
                   loaded.message().c_str());
      chat->train_offline();
      const ser::Status saved = chat->save_model("chatfuzz_model.bin");
      if (!saved.ok()) {
        std::fprintf(stderr, "warning: could not cache model: %s\n",
                     saved.message().c_str());
      }
    }
  }

  try {
    const core::CampaignResult r = core::run_campaign(*gen, cfg,
                                                      progress_hook());
    print_campaign_result(r);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign failed: %s\n", e.what());
    return 1;
  }
  return 0;
}

int cmd_resume(const char* dir, std::optional<std::size_t> workers,
               std::size_t procs, const char* bbv_path, bool superblocks,
               const NetArgs& net, const ObsArgs& obs) {
  install_drain_handler();
  // One read of what may be a large checkpoint: the loaded image hands the
  // stored fuzzer kind to make_generator() and then resumes directly.
  core::CheckpointData data;
  const ser::Status s = core::load_checkpoint(dir, &data);
  if (!s.ok()) {
    std::fprintf(stderr, "cannot resume: %s\n", s.message().c_str());
    return 1;
  }
  std::unique_ptr<core::InputGenerator> gen = make_generator(data.fuzzer);
  if (gen == nullptr) {
    std::fprintf(stderr, "cannot resume: unknown fuzzer \"%s\" in %s\n",
                 data.fuzzer.c_str(), dir);
    return 1;
  }
  std::fprintf(stderr, "resuming %s campaign from %s\n", data.fuzzer.c_str(),
               dir);
  core::ResumeOptions opts;
  // No argument = keep the checkpoint's worker count. An explicit 0 means
  // "all cores", same as plain `fuzz` (ResumeOptions uses 0 as its own
  // keep-stored sentinel, so translate here).
  if (workers.has_value()) {
    opts.num_workers = *workers != 0
                           ? *workers
                           : std::max(1u, std::thread::hardware_concurrency());
  }
  opts.dist.num_procs = procs;
  net.apply(&opts.dist);
  obs.apply(&opts);
  opts.superblocks = superblocks;
  if (bbv_path != nullptr) opts.bbv_path = bbv_path;
  try {
    const core::CampaignResult r = core::resume_campaign(
        *gen, dir, std::move(data), opts, progress_hook());
    print_campaign_result(r);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot resume: %s\n", e.what());
    return 1;
  }
  return 0;
}

int cmd_corpus_export(const char* dir, const char* out_path) {
  corpus::CorpusStore store;
  const ser::Status s = store.open(dir);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  std::vector<core::Program> tests;
  tests.reserve(store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    core::Program p;
    const ser::Status rs = store.read_program(i, &p);
    if (!rs.ok()) {
      std::fprintf(stderr, "%s\n", rs.message().c_str());
      return 1;
    }
    tests.push_back(std::move(p));
  }
  if (!core::save_corpus(out_path, tests)) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::printf("exported %zu tests from %s to %s\n", tests.size(), dir,
              out_path);
  return 0;
}

int cmd_corpus_import(const char* dir, const char* in_path) {
  std::ifstream in(in_path);
  if (!in) {
    std::fprintf(stderr, "cannot load corpus: %s\n", in_path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  // Lenient parse: one corrupt entry must not sink a whole (possibly
  // federated, possibly hand-edited) import. Bad blocks are skipped,
  // reported individually, and parked verbatim in a quarantine file.
  const core::CorpusParse parsed = core::corpus_from_text_lenient(buf.str());
  for (const std::string& err : parsed.errors) {
    std::fprintf(stderr, "corpus import: skipping %s\n", err.c_str());
  }
  if (parsed.bad_blocks > 0) {
    const std::string qpath = std::string(in_path) + ".quarantine";
    std::ofstream q(qpath, std::ios::trunc);
    if (q) {
      q << "# chatfuzz test corpus v1 (quarantined on import)\n"
        << parsed.quarantine;
      std::fprintf(stderr,
                   "corpus import: %zu corrupt block(s) written to %s\n",
                   parsed.bad_blocks, qpath.c_str());
    } else {
      std::fprintf(stderr, "corpus import: cannot write quarantine %s\n",
                   qpath.c_str());
    }
  }
  corpus::CorpusStore store;
  ser::Status s = store.open(dir);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  const std::size_t before = store.size();
  for (const core::Program& p : parsed.tests) {
    corpus::StoreEntryMeta meta;  // imported tests carry no attribution
    meta.test_index = store.size();
    s = store.append(p, meta);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.message().c_str());
      return 1;
    }
  }
  s = store.flush();
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  std::printf("imported %zu tests into %s (%zu total, %zu skipped)\n",
              store.size() - before, dir, store.size(), parsed.bad_blocks);
  return 0;
}

int cmd_federate(int argc, char** argv) {
  // argv: federate <serve|push|pull> <dir> --listen/--connect <hp> ...
  if (argc < 5) return usage();
  const std::string mode = argv[2];
  dist::FederateOptions opts;
  opts.dir = argv[3];
  bool bad = false;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      opts.listen = argv[++i];
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      opts.connect = argv[++i];
    } else if (std::strcmp(argv[i], "--token") == 0 && i + 1 < argc) {
      opts.token = argv[++i];
    } else if (std::strcmp(argv[i], "--port-file") == 0 && i + 1 < argc) {
      opts.port_file = argv[++i];
    } else if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      const auto n = parse_count(argv[++i]);
      if (!n) bad = true;
      else opts.max_sessions = *n;
    } else {
      bad = true;
    }
  }
  if (bad) {
    std::fprintf(stderr, "federate: bad arguments; see usage\n");
    return usage();
  }
  dist::FedStats stats;
  if (mode == "serve") {
    if (opts.listen.empty()) return usage();
    return dist::federate_serve(opts, nullptr, nullptr, &stats);
  }
  if (mode == "push") {
    if (opts.connect.empty()) return usage();
    const int rc = dist::federate_push(opts, &stats);
    if (rc == 0) {
      std::printf("pushed %zu entries: %zu merged, %zu duplicates, "
                  "%zu rejected as corrupt\n",
                  stats.streamed, stats.merged, stats.duplicates,
                  stats.corrupt);
    }
    return rc;
  }
  if (mode == "pull") {
    if (opts.connect.empty()) return usage();
    const int rc = dist::federate_pull(opts, &stats);
    if (rc == 0) {
      std::printf("pulled %zu new entries (%zu duplicates, "
                  "%zu quarantined)\n",
                  stats.merged, stats.duplicates, stats.corrupt);
    }
    return rc;
  }
  return usage();
}

/// Corpus minimization: re-simulate every stored test in order and keep
/// only those that still contribute (new condition bins or a mismatch) —
/// the classic cmin pass, run against this build's DUT model. The replay
/// also computes each test's basic-block-vector phase signature; a
/// mismatch-only test whose phase duplicates an earlier kept test is
/// redundant (same execution phases, no new coverage) and is dropped. The
/// store is rewritten with fresh attribution + phase hashes.
int cmd_corpus_minimize(const char* dir) {
  corpus::CorpusStore store;
  ser::Status s = store.open(dir);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  // A campaign store lives at <campaign>/corpus: replay with the campaign's
  // own DUT/platform config from the sibling checkpoint, so tests archived
  // under e.g. a larger max_steps keep their behavior. Bare stores (corpus
  // import into a fresh dir) fall back to the defaults.
  sim::Platform plat{.max_steps = 512};
  rtl::CoreConfig core_cfg = rtl::CoreConfig::rocket();
  {
    const std::string parent =
        std::filesystem::path(dir).parent_path().string();
    core::CampaignConfig stored;
    if (!parent.empty() &&
        core::peek_checkpoint(parent, nullptr, &stored).ok()) {
      plat = stored.platform;
      core_cfg = stored.core;
      std::fprintf(stderr, "using campaign config from %s\n",
                   core::checkpoint_path(parent).c_str());
    }
  }
  cov::CoverageDB db;
  rtl::RtlCore dut(core_cfg, db, plat);
  riscv::BbvRecorder bbv;
  struct Kept {
    core::Program program;
    corpus::StoreEntryMeta meta;
  };
  std::vector<Kept> kept;
  std::unordered_set<std::uint64_t> seen_phases;
  std::size_t phase_dropped = 0;
  for (std::size_t i = 0; i < store.size(); ++i) {
    core::Program p;
    s = store.read_program(i, &p);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.message().c_str());
      return 1;
    }
    db.begin_test();
    const std::size_t before = db.total_covered();
    std::vector<bool> covered_before(db.num_bins());
    for (std::size_t bin = 0; bin < db.num_bins(); ++bin) {
      covered_before[bin] = db.bin_covered(bin);
    }
    bbv.begin();
    dut.set_bbv(&bbv);
    dut.reset(p);
    dut.run();
    dut.set_bbv(nullptr);
    const mismatch::Report rep = core::replay_test(p, core_cfg, plat);
    corpus::StoreEntryMeta meta = store.meta(i);
    meta.standalone_bins = static_cast<std::uint32_t>(db.test_covered());
    meta.incremental_bins =
        static_cast<std::uint32_t>(db.total_covered() - before);
    meta.mismatches = static_cast<std::uint32_t>(rep.mismatches.size());
    meta.phase_hash = bbv.phase_hash();
    meta.new_bins.clear();
    for (std::size_t bin = 0; bin < db.num_bins(); ++bin) {
      if (db.test_bin_hit(bin) && !covered_before[bin]) {
        meta.new_bins.push_back(static_cast<std::uint32_t>(bin));
      }
    }
    const bool phase_dup = seen_phases.count(meta.phase_hash) != 0;
    if (meta.incremental_bins > 0 ||
        (meta.mismatches > 0 && !phase_dup)) {
      seen_phases.insert(meta.phase_hash);
      kept.push_back({std::move(p), std::move(meta)});
    } else if (meta.mismatches > 0) {
      ++phase_dropped;  // mismatch-only, but an identical phase is archived
    }
  }
  const std::size_t original = store.size();
  s = store.truncate(0);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  for (const Kept& k : kept) {
    s = store.append(k.program, k.meta);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.message().c_str());
      return 1;
    }
  }
  s = store.flush();
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  std::printf("minimized %s: %zu -> %zu tests "
              "(%zu phase-duplicate mismatches dropped)\n",
              dir, original, store.size(), phase_dropped);
  return 0;
}

/// Store introspection without re-simulation, straight off the index (the
/// collection and both renderings live in corpus/stats.h so tests can
/// round-trip the JSON without spawning the CLI).
int cmd_corpus_stats(const char* dir, bool json) {
  corpus::CorpusStore store;
  const ser::Status s = store.open(dir);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  const corpus::StoreStats stats = corpus::collect_store_stats(store);
  const std::string text = json ? corpus::store_stats_to_json(stats)
                                : corpus::render_store_stats(stats);
  std::fwrite(text.data(), 1, text.size(), stdout);
  return 0;
}

int cmd_solve(const char* point_name) {
  const sim::Platform plat{.max_steps = 2048};
  baselines::PointSolver solver(plat);
  if (solver.provably_unreachable(point_name)) {
    std::printf("%s: classified unreachable in this testbench\n", point_name);
    return 0;
  }
  cov::UncoveredPoint up;
  up.name = point_name;
  up.missing_true = true;
  const auto prog = solver.solve(up);
  if (!prog) {
    std::fprintf(stderr, "%s: no solver template\n", point_name);
    return 1;
  }
  std::fputs(riscv::disasm_program(*prog, plat.ram_base).c_str(), stdout);

  // Verify: run on the DUT model and report whether the true bin was hit.
  cov::CoverageDB db;
  rtl::RtlCore dut(rtl::CoreConfig::rocket(), db, plat);
  dut.reset(*prog);
  dut.run();
  for (std::size_t i = 0; i < db.num_points(); ++i) {
    if (db.point_name(static_cast<cov::PointId>(i)) == point_name) {
      std::printf("\n%s true bin: %s\n", point_name,
                  db.bin_covered(2 * i + 1) ? "COVERED" : "not covered");
      return db.bin_covered(2 * i + 1) ? 0 : 1;
    }
  }
  std::printf("\n(point not present in the RocketCore build)\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Hidden worker mode: `chatfuzz worker <fd>` is what the dist
  // coordinator re-execs; it must win before any other parsing.
  if (const auto rc = dist::maybe_worker_main(argc, argv)) return *rc;
  if (argc < 2) return usage();
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "asm") == 0 && argc >= 3) return cmd_asm(argv[2]);
  if (std::strcmp(cmd, "disasm") == 0 && argc >= 3) {
    return cmd_disasm(argv[2], argc >= 4 ? std::atoi(argv[3]) : -1);
  }
  if (std::strcmp(cmd, "run") == 0 && argc >= 3) {
    return cmd_run(argv[2], argc >= 4 ? std::atoi(argv[3]) : -1);
  }
  if (std::strcmp(cmd, "minimize") == 0 && argc >= 4) {
    return cmd_minimize(argv[2], std::atoi(argv[3]));
  }
  if (std::strcmp(cmd, "fuzz") == 0 && argc >= 4 &&
      std::strcmp(argv[2], "--resume") == 0) {
    std::optional<std::size_t> workers;  // absent = checkpoint's value
    std::size_t procs = 1;
    const char* bbv_path = nullptr;
    bool superblocks = true;
    NetArgs net;
    ObsArgs obs;
    bool bad = false;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--procs") == 0 && i + 1 < argc) {
        const auto p = parse_count(argv[++i]);
        if (!p) bad = true;
        else procs = *p;
      } else if (std::strcmp(argv[i], "--bbv") == 0 && i + 1 < argc) {
        bbv_path = argv[++i];
      } else if (net.parse(argc, argv, &i)) {
      } else if (obs.parse(argc, argv, &i)) {
      } else if (std::strcmp(argv[i], "--no-superblocks") == 0) {
        superblocks = false;
      } else if (i == 4 && argv[i][0] != '-') {
        workers = parse_count(argv[i]);
        if (!workers) bad = true;
      } else {
        bad = true;
      }
    }
    if (bad || obs.bad) {
      std::fprintf(stderr, "fuzz --resume: bad arguments; see usage\n");
      return usage();
    }
    return cmd_resume(argv[3], workers, procs, bbv_path, superblocks, net,
                      obs);
  }
  if (std::strcmp(cmd, "fuzz") == 0 && argc >= 4) {
    const auto tests = parse_count(argv[3]);
    std::optional<std::size_t> workers(1);
    std::size_t procs = 1;
    const char* checkpoint_dir = nullptr;
    std::size_t checkpoint_every = 0;
    const char* bbv_path = nullptr;
    const char* dut_list = nullptr;
    bool superblocks = true;
    NetArgs net;
    ObsArgs obs;
    bool bad = false;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--checkpoint") == 0 && i + 1 < argc) {
        checkpoint_dir = argv[++i];
      } else if (std::strcmp(argv[i], "--dut") == 0 && i + 1 < argc) {
        dut_list = argv[++i];
      } else if (std::strcmp(argv[i], "--every") == 0 && i + 1 < argc) {
        const auto every = parse_count(argv[++i]);
        if (!every) bad = true;
        else checkpoint_every = *every;
      } else if (std::strcmp(argv[i], "--procs") == 0 && i + 1 < argc) {
        const auto p = parse_count(argv[++i]);
        if (!p) bad = true;
        else procs = *p;
      } else if (std::strcmp(argv[i], "--bbv") == 0 && i + 1 < argc) {
        bbv_path = argv[++i];
      } else if (net.parse(argc, argv, &i)) {
      } else if (obs.parse(argc, argv, &i)) {
      } else if (std::strcmp(argv[i], "--no-superblocks") == 0) {
        superblocks = false;
      } else if (i == 4 && argv[i][0] != '-') {
        workers = parse_count(argv[i]);
      } else {
        bad = true;
      }
    }
    if (!tests || !workers || bad || obs.bad) {
      std::fprintf(stderr, "fuzz: bad arguments; see usage\n");
      return usage();
    }
    return cmd_fuzz(argv[2], *tests, *workers, procs, checkpoint_dir,
                    checkpoint_every, bbv_path, superblocks, dut_list, net,
                    obs);
  }
  if (std::strcmp(cmd, "corpus") == 0 && argc >= 4) {
    if (std::strcmp(argv[2], "export") == 0 && argc >= 5) {
      return cmd_corpus_export(argv[3], argv[4]);
    }
    if (std::strcmp(argv[2], "import") == 0 && argc >= 5) {
      return cmd_corpus_import(argv[3], argv[4]);
    }
    if (std::strcmp(argv[2], "minimize") == 0) {
      return cmd_corpus_minimize(argv[3]);
    }
    if (std::strcmp(argv[2], "stats") == 0) {
      const char* dir = nullptr;
      bool json = false, bad = false;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) json = true;
        else if (dir == nullptr) dir = argv[i];
        else bad = true;
      }
      if (dir == nullptr || bad) return usage();
      return cmd_corpus_stats(dir, json);
    }
    return usage();
  }
  if (std::strcmp(cmd, "federate") == 0) return cmd_federate(argc, argv);
  if (std::strcmp(cmd, "fleet") == 0 && argc >= 4 &&
      std::strcmp(argv[2], "status") == 0) {
    const char* token = "";
    bool bad = false;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--token") == 0 && i + 1 < argc) {
        token = argv[++i];
      } else {
        bad = true;
      }
    }
    if (bad) return usage();
    return dist::fleet_status_main(argv[3], token, stdout);
  }
  if (std::strcmp(cmd, "solve") == 0 && argc >= 3) return cmd_solve(argv[2]);
  return usage();
}
