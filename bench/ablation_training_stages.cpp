// Ablation: how much does each training stage contribute? (DESIGN.md §
// "three-step pipeline"). Compares coverage of the fuzzing loop driven by
// (a) an untrained model, (b) the stage-1 pretrained model, and (c) the
// stage-1+2 cleaned model, at an equal test budget — the evidence behind the
// paper's claim that each stage is load-bearing.
//
//   usage: ablation_training_stages [tests]
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "riscv/disasm.h"

using namespace chatfuzz;
using namespace chatfuzz::bench;

namespace {
double invalid_rate(core::ChatFuzzGenerator& gen) {
  std::size_t total = 0, invalid = 0;
  for (const auto& p : gen.next_batch(32)) {
    const riscv::DisasmAudit a = riscv::audit(p);
    total += a.total;
    invalid += a.invalid;
  }
  return total > 0 ? static_cast<double>(invalid) / static_cast<double>(total)
                   : 1.0;
}
}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 600;
  print_header("Ablation: contribution of each training stage",
               "implied by SIII-B: stage 1 teaches the language, stage 2 "
               "removes invalid generations, stage 3 steers coverage");

  const core::CampaignConfig cfg = rocket_campaign(n);
  std::printf("%-22s | %-13s | %-10s\n", "generator", "invalid-rate",
              "cond-cov");
  std::printf("-----------------------+---------------+-----------\n");

  {  // (a) untrained
    core::ChatFuzzConfig cc;
    core::ChatFuzzGenerator gen(cc);
    const double inv = invalid_rate(gen);
    const core::CampaignResult r = core::run_campaign(gen, cfg);
    std::printf("%-22s | %12.1f%% | %8.2f%%\n", "untrained", 100.0 * inv,
                r.final_cov_percent);
  }
  {  // (b) stage 1 only
    core::ChatFuzzConfig cc;
    cc.pretrain_samples = 1200;
    cc.pretrain.epochs = 4;
    cc.cleanup_iters = 0;
    core::ChatFuzzGenerator gen(cc);
    std::fprintf(stderr, "[ablation] training stage 1...\n");
    gen.train_offline();
    gen.save_model("ablation_stage1.bin");
    const double inv = invalid_rate(gen);
    const core::CampaignResult r = core::run_campaign(gen, cfg);
    std::printf("%-22s | %12.1f%% | %8.2f%%\n", "stage 1 (pretrain)",
                100.0 * inv, r.final_cov_percent);
  }
  {  // (c) stages 1+2 (the shipping configuration)
    auto gen = make_chatfuzz();
    const double inv = invalid_rate(*gen);
    const core::CampaignResult r = core::run_campaign(*gen, cfg);
    std::printf("%-22s | %12.1f%% | %8.2f%%\n", "stages 1+2 (+3 online)",
                100.0 * inv, r.final_cov_percent);
  }

  std::printf("\nexpected ordering: invalid-rate strictly falls per stage and "
              "coverage strictly rises.\n");
  return 0;
}
