// Shared plumbing for the table/figure reproduction benches: the paper's
// wall-clock scale model, a cached trained ChatFuzz generator (stages 1-2
// are trained once and persisted to disk so every bench binary can reuse the
// same model), and table-printing helpers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "baselines/mutational.h"
#include "core/campaign.h"
#include "core/chatfuzz.h"
#include "util/parse.h"

namespace chatfuzz::bench {

/// Paper throughput (§V-A): ~1.8K tests in ~52 minutes on ten VCS instances
/// for both ChatFuzz and TheHuzz -> ~2077 tests/hour. All "hours" columns
/// convert test counts through this constant (DifuzzRTL pays its 3.33x
/// factor on top). Campaign *sizes* are scaled down for laptop runtime;
/// each bench prints its scale factor.
inline constexpr double kPaperTestsPerHour = 1800.0 / (52.0 / 60.0);

/// Default on-disk cache for the stage-1/2 trained policy.
inline const char* kModelCache = "chatfuzz_model.bin";

/// Build a ChatFuzz generator, training stages 1-2 unless a cached model is
/// present (training takes a few minutes of CPU; the cache makes reruns and
/// the other bench binaries instant).
inline std::unique_ptr<core::ChatFuzzGenerator> make_chatfuzz(
    const std::string& cache = kModelCache) {
  core::ChatFuzzConfig cfg;
  cfg.pretrain_samples = 1600;
  cfg.pretrain.epochs = 5;
  cfg.cleanup_iters = 8;
  auto gen = std::make_unique<core::ChatFuzzGenerator>(cfg);
  if (gen->load_model(cache)) {
    std::fprintf(stderr, "[bench] loaded cached ChatFuzz model from %s\n",
                 cache.c_str());
  } else {
    std::fprintf(stderr,
                 "[bench] training ChatFuzz stages 1-2 (cached to %s)...\n",
                 cache.c_str());
    gen->train_offline();
    gen->save_model(cache);
  }
  return gen;
}

/// Simulation worker threads for all bench campaigns, from CHATFUZZ_WORKERS
/// (default 1, "0" = all cores). Campaign results are bit-identical for any
/// value, so benches stay comparable across machines; only wall-clock moves.
/// A malformed value falls back to the default loudly rather than silently
/// meaning "all cores" — timing numbers must not be misattributed.
inline std::size_t bench_workers() {
  const char* env = std::getenv("CHATFUZZ_WORKERS");
  if (env == nullptr) return 1;
  const auto parsed = parse_count(env);
  if (!parsed) {
    std::fprintf(stderr,
                 "[bench] ignoring malformed CHATFUZZ_WORKERS=\"%s\" "
                 "(using 1 worker)\n",
                 env);
    return 1;
  }
  return *parsed;
}

inline core::CampaignConfig rocket_campaign(std::size_t tests) {
  core::CampaignConfig cfg;
  cfg.num_tests = tests;
  cfg.batch_size = 32;
  cfg.checkpoint_every = std::max<std::size_t>(tests / 40, 25);
  cfg.platform.max_steps = 512;
  cfg.tests_per_hour = kPaperTestsPerHour;
  cfg.num_workers = bench_workers();
  return cfg;
}

inline void print_header(const char* title, const char* paper_claim) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==================================================================\n");
}

}  // namespace chatfuzz::bench
