// Campaign-throughput bench: end-to-end tests/sec through the fuzzing hot
// path — co-simulate, compare, fold — for the streaming engine versus an
// in-tree replica of the pre-streaming (seed) per-test pipeline, on the
// same seed, programs, and config. Emits ONE line of JSON on stdout so
// successive runs append to a BENCH_*.json trajectory file:
//
//   ./bench_campaign_throughput [--smoke] >> BENCH_campaign.json
//
// --smoke (or CHATFUZZ_SMOKE=1) shrinks the campaign to CI size; the
// numbers still print but only prove the harness runs.
//
// --superblock switches to the superblock-dispatch comparison instead: the
// streaming engine with superblock dispatch on vs off, single worker, on a
// straight-line-heavy corpus (where span dispatch amortizes best). Campaign
// results must be bit-identical both ways (parity_ok) — the engines differ
// only in speed. One line of JSON, schema "superblock_dispatch", for
// BENCH_superblock.json.
//
// --trace <file> switches to the telemetry-overhead comparison: the same
// single-worker campaign with tracing + stats export off vs on (spans
// recorded to per-thread rings, Chrome trace JSON written to <file>, NDJSON
// to <file>.ndjson). Campaign results must be bit-identical both ways
// (parity_ok) — telemetry is out-of-band by contract — and the JSON line
// reports trace_overhead_percent, which CI holds under its budget. One line
// of JSON, schema "trace_overhead", for BENCH_trace_overhead.json; the
// exported <file> doubles as the Perfetto-loadable artifact.
//
// --dut <list> (e.g. --dut inorder,ooo) switches to the multi-DUT
// comparison: tests/sec for the listed backend set vs the primary backend
// alone, plus a 1-worker vs all-cores bit-identity check on the multi-DUT
// totals. One line of JSON, schema "multidut_campaign", for
// BENCH_multidut.json.
//
// The seed replica reproduces, faithfully and with the public API, what
// the engine did per test before this optimization pass:
//   * full O(all bins) clears of the worker shard (hit counters + per-test
//     set) before every test;
//   * both simulators run to completion with materialized commit traces,
//     copied again into RunResult;
//   * the golden model always executes its full run, even when the DUT
//     trace ended early;
//   * two-trace MismatchDetector::compare over the materialized traces;
//   * full O(all bins) scans for the per-test coverage slice and for the
//     before/after covered counts of the fold;
//   * fresh per-test vector allocations for every artifact.
// The streaming engine replaces all of that with commit sinks, the
// lockstep comparator, dirty-bin journals and pooled artifacts; both
// pipelines must end with identical coverage and mismatch totals
// (parity_ok), or the comparison is void.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "baselines/mutational.h"
#include "core/campaign.h"
#include "coverage/cover.h"
#include "coverage/merge.h"
#include "isasim/sim.h"
#include "mismatch/detect.h"
#include "riscv/builder.h"
#include "rtlsim/core.h"
#include "rtlsim/dut.h"
#include "util/rng.h"

using namespace chatfuzz;

namespace {

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SeedRunTotals {
  std::size_t tests = 0;
  std::uint64_t cycles = 0;
  std::size_t covered_bins = 0;
  std::size_t universe_bins = 0;
  std::size_t raw_mismatches = 0;
  double seconds = 0.0;
};

/// The pre-streaming per-test pipeline (see the header comment), run
/// sequentially like the engine's single-worker inline path.
SeedRunTotals run_seed_replica(const core::CampaignConfig& cfg,
                               std::uint64_t gen_seed) {
  baselines::RandomFuzzer gen(gen_seed);
  cov::CoverageDB wdb;  // worker shard
  rtl::CoreConfig seed_core = cfg.core;
  // The seed DUT walked every opcode-indexed comparator chain on every
  // instruction (the layout-proportional cost this PR removes).
  seed_core.deferred_select_chains = false;
  rtl::RtlCore dut(seed_core, wdb, cfg.platform);
  sim::IsaSim golden(cfg.platform);
  mismatch::MismatchDetector det;
  det.install_default_filters();
  cov::CoverageDB agg;  // coordinator DB (same layout via a registrar core)
  { rtl::RtlCore registrar(cfg.core, agg, cfg.platform); }
  cov::CtrlRegCoverage ctrl;
  mismatch::MismatchDetector tally;
  // The seed's reset_hits() was a std::fill over every hit counter and
  // every per-test flag; the journaled DB no longer exposes that cost, so
  // the replica pays it on same-shape shadow buffers.
  std::vector<std::uint64_t> shadow_hits(wdb.num_bins(), 0);
  std::vector<std::uint8_t> shadow_test(wdb.num_bins(), 0);

  SeedRunTotals totals;
  const double t0 = now_sec();
  while (totals.tests < cfg.num_tests) {
    const std::size_t want =
        std::min(cfg.batch_size, cfg.num_tests - totals.tests);
    const std::vector<core::Program> batch = gen.next_batch(want);
    for (const core::Program& prog : batch) {
      std::fill(shadow_hits.begin(), shadow_hits.end(), 0);
      std::fill(shadow_test.begin(), shadow_test.end(), 0);
      wdb.reset_hits();
      dut.ctrl_cov().begin_test();
      std::vector<std::uint64_t> ctrl_states;
      dut.ctrl_cov().set_recorder(&ctrl_states);
      dut.reset(prog);
      const sim::RunResult dr = dut.run();  // materialized + copied trace
      dut.ctrl_cov().set_recorder(nullptr);

      std::vector<cov::BinDelta> cond;  // fresh allocation, as the seed did
      for (std::size_t bin = 0; bin < wdb.num_bins(); ++bin) {
        const std::uint64_t h = wdb.bin_hits(bin);
        if (h != 0) cond.push_back({static_cast<std::uint32_t>(bin), h});
      }

      golden.reset(prog);
      const sim::RunResult gr = golden.run();  // always the full golden run
      const mismatch::Report rep = det.compare(dr.trace, gr.trace);

      // Fold with the seed's full-scan covered counts.
      std::size_t before = 0;
      for (std::size_t bin = 0; bin < agg.num_bins(); ++bin) {
        before += agg.bin_hits(bin) != 0 ? 1 : 0;
      }
      cov::apply_bins(agg, cond);
      std::size_t after = 0;
      for (std::size_t bin = 0; bin < agg.num_bins(); ++bin) {
        after += agg.bin_hits(bin) != 0 ? 1 : 0;
      }
      (void)before;
      ctrl.begin_test();
      for (const std::uint64_t s : ctrl_states) ctrl.observe(s);
      tally.accumulate(rep);
      totals.cycles += dut.cycles();
      totals.covered_bins = after;
      ++totals.tests;
    }
  }
  totals.seconds = now_sec() - t0;
  totals.universe_bins = agg.num_bins();
  totals.raw_mismatches = tally.total_raw();
  return totals;
}

/// Straight-line-heavy stimulus behind the InputGenerator interface: a long
/// ALU block re-executed by an outer counter loop. The dynamic instruction
/// stream is almost entirely straight-line spans that repeat every
/// iteration — the workload superblock dispatch amortizes best, and the
/// configuration the speedup target is stated against. Fully deterministic
/// per seed, like every generator in the repo.
class StraightLineFuzzer final : public core::InputGenerator {
 public:
  explicit StraightLineFuzzer(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "StraightLine"; }
  std::vector<core::Program> next_batch(std::size_t n) override {
    std::vector<core::Program> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(make_program());
    return out;
  }

 private:
  core::Program make_program() {
    riscv::ProgramBuilder b;
    // Far more iterations than the step budget allows: every test runs the
    // body until kStepLimit, so per-test fixed costs (generation, reset,
    // fold) stay a small fraction the way they are in the paper's much
    // deeper RTL simulations.
    b.addi(5, 0, 2047);
    b.label("body");
    const int body = static_cast<int>(rng_.range(96, 160));
    for (int i = 0; i < body; ++i) {
      const unsigned rd = 6 + static_cast<unsigned>(rng_.below(10));
      const unsigned ra = 6 + static_cast<unsigned>(rng_.below(10));
      const unsigned rb = 6 + static_cast<unsigned>(rng_.below(10));
      switch (rng_.below(8)) {
        case 0: b.add(rd, ra, rb); break;
        case 1: b.sub(rd, ra, rb); break;
        case 2: b.or_(rd, ra, rb); break;
        case 3: b.slli(rd, ra, static_cast<unsigned>(rng_.below(64))); break;
        case 4: b.srli(rd, ra, static_cast<unsigned>(rng_.below(64))); break;
        // No muldiv: the default tracer_drops_muldiv injection would flag a
        // mismatch on every mul, and mismatch handling is fixed cost on both
        // engines — it measures the detector, not dispatch.
        case 5: b.add(rd, rb, ra); break;
        default:
          b.addi(rd, ra, static_cast<std::int32_t>(rng_.range(-2048, 2047)));
          break;
      }
    }
    b.addi(5, 5, -1);
    b.branch_to(riscv::Opcode::kBne, 5, 0, "body");
    b.ebreak();
    return b.seal();
  }

  Rng rng_;
};

/// --superblock mode: engine-vs-engine, dispatch on vs off.
int run_superblock_bench(bool smoke) {
  core::CampaignConfig cfg;
  cfg.num_tests = smoke ? 96 : 1024;
  cfg.batch_size = 32;
  cfg.num_workers = 1;  // per-pipeline cost, no threading
  cfg.checkpoint_every = 100;
  // Each test step-limits inside the loop: 2048 dispatched instructions per
  // test per simulator, dominated by repeated straight-line spans.
  cfg.platform.max_steps = 2048;
  const std::uint64_t kGenSeed = 7;

  const auto timed_run = [&](bool sb, double* seconds) {
    StraightLineFuzzer gen(kGenSeed);
    core::CampaignConfig c = cfg;
    c.superblocks = sb;
    const double t0 = now_sec();
    const core::CampaignResult r = core::run_campaign(gen, c);
    *seconds = now_sec() - t0;
    return r;
  };

  // Warm both dispatch engines before any timed run.
  {
    core::CampaignConfig warm = cfg;
    warm.num_tests = smoke ? 32 : 256;
    for (int sb = 0; sb < 2; ++sb) {
      StraightLineFuzzer warm_gen(kGenSeed);
      warm.superblocks = sb != 0;
      core::run_campaign(warm_gen, warm);
    }
  }

  double dt_sb = 0.0, dt_interp = 0.0;
  const core::CampaignResult with_sb = timed_run(true, &dt_sb);
  const core::CampaignResult interp = timed_run(false, &dt_interp);

  const double tps_sb = static_cast<double>(with_sb.tests_run) / dt_sb;
  const double tps_interp = static_cast<double>(interp.tests_run) / dt_interp;
  // Dispatch is a pure speed knob: every architectural total must match
  // bit-for-bit or the comparison is void.
  const bool parity_ok = with_sb.tests_run == interp.tests_run &&
                         with_sb.final_cov_percent == interp.final_cov_percent &&
                         with_sb.total_cycles == interp.total_cycles &&
                         with_sb.total_instrs == interp.total_instrs &&
                         with_sb.raw_mismatches == interp.raw_mismatches &&
                         with_sb.filtered_mismatches == interp.filtered_mismatches;

  std::printf(
      "{\"bench\":\"superblock_dispatch\",\"smoke\":%s,"
      "\"tests\":%zu,\"workers\":1,\"corpus\":\"straight_line\","
      "\"tests_per_sec_sb\":%.1f,\"wall_seconds_sb\":%.3f,"
      "\"tests_per_sec_interp\":%.1f,\"wall_seconds_interp\":%.3f,"
      "\"superblock_speedup\":%.2f,"
      "\"final_cov_percent\":%.4f,\"raw_mismatches\":%zu,"
      "\"parity_ok\":%s}\n",
      smoke ? "true" : "false", with_sb.tests_run, tps_sb, dt_sb, tps_interp,
      dt_interp, tps_sb / tps_interp, with_sb.final_cov_percent,
      with_sb.raw_mismatches, parity_ok ? "true" : "false");
  return parity_ok ? 0 : 1;
}

/// --trace mode: telemetry overhead — identical campaign with telemetry off
/// vs on, interleaved pairs, best-of wall times (the ratio is the payload;
/// min damps scheduler noise).
int run_trace_overhead_bench(bool smoke, const char* trace_path) {
  core::CampaignConfig cfg;
  cfg.num_tests = smoke ? 96 : 1024;
  cfg.batch_size = 32;
  cfg.num_workers = 1;  // per-pipeline cost, no threading
  cfg.checkpoint_every = 100;
  cfg.platform.max_steps = 2048;
  const std::uint64_t kGenSeed = 7;

  const auto timed = [&](const core::CampaignConfig& c, double* seconds) {
    baselines::RandomFuzzer gen(kGenSeed);
    const double t0 = now_sec();
    const core::CampaignResult r = core::run_campaign(gen, c);
    *seconds = now_sec() - t0;
    return r;
  };

  // Warm the pipeline before any timed run.
  {
    core::CampaignConfig warm = cfg;
    warm.num_tests = smoke ? 32 : 128;
    double ignored = 0.0;
    timed(warm, &ignored);
  }

  core::CampaignConfig traced_cfg = cfg;
  traced_cfg.trace_path = trace_path;
  traced_cfg.stats_path = std::string(trace_path) + ".ndjson";
  traced_cfg.stats_every_ms = 0;  // worst case: NDJSON line every batch

  double dt_plain = 1e30, dt_traced = 1e30;
  core::CampaignResult plain, traced;
  const int rounds = smoke ? 1 : 3;
  for (int i = 0; i < rounds; ++i) {
    double dt = 0.0;
    plain = timed(cfg, &dt);
    dt_plain = std::min(dt_plain, dt);
    traced = timed(traced_cfg, &dt);
    dt_traced = std::min(dt_traced, dt);
  }

  // Telemetry is out-of-band by contract: every architectural total must
  // match bit-for-bit or the overhead number is meaningless.
  const bool parity_ok =
      traced.tests_run == plain.tests_run &&
      traced.final_cov_percent == plain.final_cov_percent &&
      traced.total_cycles == plain.total_cycles &&
      traced.total_instrs == plain.total_instrs &&
      traced.raw_mismatches == plain.raw_mismatches &&
      traced.filtered_mismatches == plain.filtered_mismatches &&
      traced.unique_mismatches == plain.unique_mismatches;

  const double tps_plain = static_cast<double>(plain.tests_run) / dt_plain;
  const double tps_traced = static_cast<double>(traced.tests_run) / dt_traced;
  std::printf(
      "{\"bench\":\"trace_overhead\",\"smoke\":%s,"
      "\"tests\":%zu,\"workers\":1,"
      "\"tests_per_sec\":%.1f,\"wall_seconds\":%.3f,"
      "\"tests_per_sec_traced\":%.1f,\"wall_seconds_traced\":%.3f,"
      "\"trace_overhead_percent\":%.2f,"
      "\"final_cov_percent\":%.4f,\"parity_ok\":%s}\n",
      smoke ? "true" : "false", plain.tests_run, tps_plain, dt_plain,
      tps_traced, dt_traced, 100.0 * (dt_traced / dt_plain - 1.0),
      plain.final_cov_percent, parity_ok ? "true" : "false");
  return parity_ok ? 0 : 1;
}

/// --dut mode: multi-DUT campaign throughput — every generated test runs on
/// each listed backend against one golden model. Reports tests/sec for the
/// DUT list vs a single-DUT (primary-only) run on the same programs, plus a
/// topology parity check: the multi-DUT campaign at 1 worker and at
/// hardware concurrency must produce bit-identical totals. One line of
/// JSON, schema "multidut_campaign", for BENCH_multidut.json.
int run_multidut_bench(bool smoke, const char* dut_list) {
  core::CampaignConfig cfg;
  cfg.num_tests = smoke ? 64 : 512;
  cfg.batch_size = 32;
  cfg.num_workers = 1;
  cfg.checkpoint_every = 100;
  const std::uint64_t kGenSeed = 7;

  std::string list(dut_list);
  for (std::size_t pos = 0; pos <= list.size();) {
    const std::size_t comma = list.find(',', pos);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    rtl::CoreConfig c;
    if (!rtl::dut_preset(list.substr(pos, end - pos), c)) {
      std::fprintf(stderr, "unknown --dut backend in \"%s\"\n", dut_list);
      return 2;
    }
    cfg.duts.push_back(c);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (cfg.duts.empty()) {
    std::fprintf(stderr, "--dut needs at least one backend\n");
    return 2;
  }

  const auto timed = [&](const core::CampaignConfig& c, double* seconds) {
    baselines::RandomFuzzer gen(kGenSeed);
    const double t0 = now_sec();
    const core::CampaignResult r = core::run_campaign(gen, c);
    *seconds = now_sec() - t0;
    return r;
  };

  // Warm every backend before any timed run.
  {
    core::CampaignConfig warm = cfg;
    warm.num_tests = smoke ? 16 : 128;
    double ignored = 0.0;
    timed(warm, &ignored);
  }

  // Primary-only baseline on the identical program stream.
  core::CampaignConfig single = cfg;
  single.core = cfg.duts.front();
  single.duts.clear();
  double dt_single = 0.0;
  const core::CampaignResult base = timed(single, &dt_single);

  double dt_multi = 0.0;
  const core::CampaignResult multi = timed(cfg, &dt_multi);

  // Deployment number + the topology half of the determinism contract:
  // every total must match the 1-worker run bit-for-bit.
  core::CampaignConfig mt_cfg = cfg;
  mt_cfg.num_workers = 0;
  double dt_mt = 0.0;
  const core::CampaignResult mt = timed(mt_cfg, &dt_mt);
  const bool parity_ok = mt.tests_run == multi.tests_run &&
                         mt.final_cov_percent == multi.final_cov_percent &&
                         mt.total_cycles == multi.total_cycles &&
                         mt.total_instrs == multi.total_instrs &&
                         mt.raw_mismatches == multi.raw_mismatches &&
                         mt.filtered_mismatches == multi.filtered_mismatches &&
                         mt.unique_mismatches == multi.unique_mismatches;

  std::printf(
      "{\"bench\":\"multidut_campaign\",\"smoke\":%s,"
      "\"duts\":\"%s\",\"num_duts\":%zu,\"tests\":%zu,"
      "\"tests_per_sec\":%.1f,\"wall_seconds\":%.3f,"
      "\"tests_per_sec_single\":%.1f,\"wall_seconds_single\":%.3f,"
      "\"multidut_overhead\":%.2f,"
      "\"tests_per_sec_mt\":%.1f,\"mt_workers\":%u,"
      "\"final_cov_percent\":%.4f,\"raw_mismatches\":%zu,"
      "\"unique_mismatches\":%zu,\"parity_ok\":%s}\n",
      smoke ? "true" : "false", dut_list, cfg.duts.size(), multi.tests_run,
      static_cast<double>(multi.tests_run) / dt_multi, dt_multi,
      static_cast<double>(base.tests_run) / dt_single, dt_single,
      dt_multi / dt_single,
      static_cast<double>(mt.tests_run) / dt_mt,
      static_cast<unsigned>(std::thread::hardware_concurrency()),
      multi.final_cov_percent, multi.raw_mismatches, multi.unique_mismatches,
      parity_ok ? "true" : "false");
  return parity_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* env_smoke = std::getenv("CHATFUZZ_SMOKE");
  bool smoke = env_smoke != nullptr && std::strcmp(env_smoke, "0") != 0;
  bool superblock = false;
  const char* dut_list = nullptr;
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--superblock") == 0) superblock = true;
    if (std::strcmp(argv[i], "--dut") == 0 && i + 1 < argc) {
      dut_list = argv[++i];
    }
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    }
  }
  if (trace_path != nullptr) return run_trace_overhead_bench(smoke, trace_path);
  if (dut_list != nullptr) return run_multidut_bench(smoke, dut_list);
  if (superblock) return run_superblock_bench(smoke);

  core::CampaignConfig cfg;
  cfg.num_tests = smoke ? 64 : 1280;
  cfg.batch_size = 32;
  cfg.num_workers = 1;  // apples-to-apples: per-pipeline cost, no threading
  cfg.checkpoint_every = 100;
  const std::uint64_t kGenSeed = 7;

  // Warm both pipelines (page faults, allocator pools, branch history)
  // before any timed run, so neither side absorbs the process cold start.
  {
    core::CampaignConfig warm = cfg;
    warm.num_tests = smoke ? 32 : 128;
    baselines::RandomFuzzer warm_gen(kGenSeed);
    core::run_campaign(warm_gen, warm);
    run_seed_replica(warm, kGenSeed);
  }

  // Seed replica on the identical program stream.
  const SeedRunTotals seed = run_seed_replica(cfg, kGenSeed);

  // Streaming engine.
  baselines::RandomFuzzer gen(kGenSeed);
  const double t0 = now_sec();
  const core::CampaignResult res = core::run_campaign(gen, cfg);
  const double dt_fast = now_sec() - t0;

  // Streaming engine again at hardware concurrency: the deployment number.
  core::CampaignConfig mt_cfg = cfg;
  mt_cfg.num_workers = 0;
  baselines::RandomFuzzer mt_gen(kGenSeed);
  const double t1 = now_sec();
  const core::CampaignResult mt_res = core::run_campaign(mt_gen, mt_cfg);
  const double dt_mt = now_sec() - t1;

  const double tps_fast = static_cast<double>(res.tests_run) / dt_fast;
  const double tps_seed = static_cast<double>(seed.tests) / seed.seconds;
  const double tps_mt = static_cast<double>(mt_res.tests_run) / dt_mt;
  // Parity: both pipelines saw the same programs, so coverage and raw
  // mismatch totals must agree (the curve percent is covered/universe).
  const double seed_cov_percent =
      seed.universe_bins == 0
          ? 0.0
          : 100.0 * static_cast<double>(seed.covered_bins) /
                static_cast<double>(seed.universe_bins);
  const bool parity_ok =
      res.raw_mismatches == seed.raw_mismatches &&
      res.total_cycles == seed.cycles &&
      res.final_cov_percent == seed_cov_percent &&
      mt_res.raw_mismatches == seed.raw_mismatches &&
      mt_res.final_cov_percent == res.final_cov_percent;

  std::printf(
      "{\"bench\":\"campaign_throughput\",\"smoke\":%s,"
      "\"tests\":%zu,\"workers\":1,"
      "\"tests_per_sec\":%.1f,\"cycles_per_sec\":%.0f,"
      "\"wall_seconds\":%.3f,"
      "\"tests_per_sec_seed\":%.1f,\"wall_seconds_seed\":%.3f,"
      "\"campaign_speedup\":%.2f,"
      "\"tests_per_sec_mt\":%.1f,\"mt_workers\":%u,"
      "\"final_cov_percent\":%.4f,\"raw_mismatches\":%zu,"
      "\"parity_ok\":%s}\n",
      smoke ? "true" : "false", res.tests_run,
      tps_fast, static_cast<double>(res.total_cycles) / dt_fast, dt_fast,
      tps_seed, seed.seconds, tps_fast / tps_seed, tps_mt,
      static_cast<unsigned>(std::thread::hardware_concurrency()),
      res.final_cov_percent, res.raw_mismatches,
      parity_ok ? "true" : "false");
  return parity_ok ? 0 : 1;
}
