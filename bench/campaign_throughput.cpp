// Campaign-throughput bench: end-to-end tests/sec through the fuzzing hot
// path — co-simulate, compare, fold — for the streaming engine versus an
// in-tree replica of the pre-streaming (seed) per-test pipeline, on the
// same seed, programs, and config. Emits ONE line of JSON on stdout so
// successive runs append to a BENCH_*.json trajectory file:
//
//   ./bench_campaign_throughput [--smoke] >> BENCH_campaign.json
//
// --smoke (or CHATFUZZ_SMOKE=1) shrinks the campaign to CI size; the
// numbers still print but only prove the harness runs.
//
// The seed replica reproduces, faithfully and with the public API, what
// the engine did per test before this optimization pass:
//   * full O(all bins) clears of the worker shard (hit counters + per-test
//     set) before every test;
//   * both simulators run to completion with materialized commit traces,
//     copied again into RunResult;
//   * the golden model always executes its full run, even when the DUT
//     trace ended early;
//   * two-trace MismatchDetector::compare over the materialized traces;
//   * full O(all bins) scans for the per-test coverage slice and for the
//     before/after covered counts of the fold;
//   * fresh per-test vector allocations for every artifact.
// The streaming engine replaces all of that with commit sinks, the
// lockstep comparator, dirty-bin journals and pooled artifacts; both
// pipelines must end with identical coverage and mismatch totals
// (parity_ok), or the comparison is void.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "baselines/mutational.h"
#include "core/campaign.h"
#include "coverage/cover.h"
#include "coverage/merge.h"
#include "isasim/sim.h"
#include "mismatch/detect.h"
#include "rtlsim/core.h"

using namespace chatfuzz;

namespace {

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SeedRunTotals {
  std::size_t tests = 0;
  std::uint64_t cycles = 0;
  std::size_t covered_bins = 0;
  std::size_t universe_bins = 0;
  std::size_t raw_mismatches = 0;
  double seconds = 0.0;
};

/// The pre-streaming per-test pipeline (see the header comment), run
/// sequentially like the engine's single-worker inline path.
SeedRunTotals run_seed_replica(const core::CampaignConfig& cfg,
                               std::uint64_t gen_seed) {
  baselines::RandomFuzzer gen(gen_seed);
  cov::CoverageDB wdb;  // worker shard
  rtl::CoreConfig seed_core = cfg.core;
  // The seed DUT walked every opcode-indexed comparator chain on every
  // instruction (the layout-proportional cost this PR removes).
  seed_core.deferred_select_chains = false;
  rtl::RtlCore dut(seed_core, wdb, cfg.platform);
  sim::IsaSim golden(cfg.platform);
  mismatch::MismatchDetector det;
  det.install_default_filters();
  cov::CoverageDB agg;  // coordinator DB (same layout via a registrar core)
  { rtl::RtlCore registrar(cfg.core, agg, cfg.platform); }
  cov::CtrlRegCoverage ctrl;
  mismatch::MismatchDetector tally;
  // The seed's reset_hits() was a std::fill over every hit counter and
  // every per-test flag; the journaled DB no longer exposes that cost, so
  // the replica pays it on same-shape shadow buffers.
  std::vector<std::uint64_t> shadow_hits(wdb.num_bins(), 0);
  std::vector<std::uint8_t> shadow_test(wdb.num_bins(), 0);

  SeedRunTotals totals;
  const double t0 = now_sec();
  while (totals.tests < cfg.num_tests) {
    const std::size_t want =
        std::min(cfg.batch_size, cfg.num_tests - totals.tests);
    const std::vector<core::Program> batch = gen.next_batch(want);
    for (const core::Program& prog : batch) {
      std::fill(shadow_hits.begin(), shadow_hits.end(), 0);
      std::fill(shadow_test.begin(), shadow_test.end(), 0);
      wdb.reset_hits();
      dut.ctrl_cov().begin_test();
      std::vector<std::uint64_t> ctrl_states;
      dut.ctrl_cov().set_recorder(&ctrl_states);
      dut.reset(prog);
      const sim::RunResult dr = dut.run();  // materialized + copied trace
      dut.ctrl_cov().set_recorder(nullptr);

      std::vector<cov::BinDelta> cond;  // fresh allocation, as the seed did
      for (std::size_t bin = 0; bin < wdb.num_bins(); ++bin) {
        const std::uint64_t h = wdb.bin_hits(bin);
        if (h != 0) cond.push_back({static_cast<std::uint32_t>(bin), h});
      }

      golden.reset(prog);
      const sim::RunResult gr = golden.run();  // always the full golden run
      const mismatch::Report rep = det.compare(dr.trace, gr.trace);

      // Fold with the seed's full-scan covered counts.
      std::size_t before = 0;
      for (std::size_t bin = 0; bin < agg.num_bins(); ++bin) {
        before += agg.bin_hits(bin) != 0 ? 1 : 0;
      }
      cov::apply_bins(agg, cond);
      std::size_t after = 0;
      for (std::size_t bin = 0; bin < agg.num_bins(); ++bin) {
        after += agg.bin_hits(bin) != 0 ? 1 : 0;
      }
      (void)before;
      ctrl.begin_test();
      for (const std::uint64_t s : ctrl_states) ctrl.observe(s);
      tally.accumulate(rep);
      totals.cycles += dut.cycles();
      totals.covered_bins = after;
      ++totals.tests;
    }
  }
  totals.seconds = now_sec() - t0;
  totals.universe_bins = agg.num_bins();
  totals.raw_mismatches = tally.total_raw();
  return totals;
}

}  // namespace

int main(int argc, char** argv) {
  const char* env_smoke = std::getenv("CHATFUZZ_SMOKE");
  bool smoke = env_smoke != nullptr && std::strcmp(env_smoke, "0") != 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  core::CampaignConfig cfg;
  cfg.num_tests = smoke ? 64 : 1280;
  cfg.batch_size = 32;
  cfg.num_workers = 1;  // apples-to-apples: per-pipeline cost, no threading
  cfg.checkpoint_every = 100;
  const std::uint64_t kGenSeed = 7;

  // Warm both pipelines (page faults, allocator pools, branch history)
  // before any timed run, so neither side absorbs the process cold start.
  {
    core::CampaignConfig warm = cfg;
    warm.num_tests = smoke ? 32 : 128;
    baselines::RandomFuzzer warm_gen(kGenSeed);
    core::run_campaign(warm_gen, warm);
    run_seed_replica(warm, kGenSeed);
  }

  // Seed replica on the identical program stream.
  const SeedRunTotals seed = run_seed_replica(cfg, kGenSeed);

  // Streaming engine.
  baselines::RandomFuzzer gen(kGenSeed);
  const double t0 = now_sec();
  const core::CampaignResult res = core::run_campaign(gen, cfg);
  const double dt_fast = now_sec() - t0;

  // Streaming engine again at hardware concurrency: the deployment number.
  core::CampaignConfig mt_cfg = cfg;
  mt_cfg.num_workers = 0;
  baselines::RandomFuzzer mt_gen(kGenSeed);
  const double t1 = now_sec();
  const core::CampaignResult mt_res = core::run_campaign(mt_gen, mt_cfg);
  const double dt_mt = now_sec() - t1;

  const double tps_fast = static_cast<double>(res.tests_run) / dt_fast;
  const double tps_seed = static_cast<double>(seed.tests) / seed.seconds;
  const double tps_mt = static_cast<double>(mt_res.tests_run) / dt_mt;
  // Parity: both pipelines saw the same programs, so coverage and raw
  // mismatch totals must agree (the curve percent is covered/universe).
  const double seed_cov_percent =
      seed.universe_bins == 0
          ? 0.0
          : 100.0 * static_cast<double>(seed.covered_bins) /
                static_cast<double>(seed.universe_bins);
  const bool parity_ok =
      res.raw_mismatches == seed.raw_mismatches &&
      res.total_cycles == seed.cycles &&
      res.final_cov_percent == seed_cov_percent &&
      mt_res.raw_mismatches == seed.raw_mismatches &&
      mt_res.final_cov_percent == res.final_cov_percent;

  std::printf(
      "{\"bench\":\"campaign_throughput\",\"smoke\":%s,"
      "\"tests\":%zu,\"workers\":1,"
      "\"tests_per_sec\":%.1f,\"cycles_per_sec\":%.0f,"
      "\"wall_seconds\":%.3f,"
      "\"tests_per_sec_seed\":%.1f,\"wall_seconds_seed\":%.3f,"
      "\"campaign_speedup\":%.2f,"
      "\"tests_per_sec_mt\":%.1f,\"mt_workers\":%u,"
      "\"final_cov_percent\":%.4f,\"raw_mismatches\":%zu,"
      "\"parity_ok\":%s}\n",
      smoke ? "true" : "false", res.tests_run,
      tps_fast, static_cast<double>(res.total_cycles) / dt_fast, dt_fast,
      tps_seed, seed.seconds, tps_fast / tps_seed, tps_mt,
      static_cast<unsigned>(std::thread::hardware_concurrency()),
      res.final_cov_percent, res.raw_mismatches,
      parity_ok ? "true" : "false");
  return parity_ok ? 0 : 1;
}
