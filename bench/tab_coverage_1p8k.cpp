// §V-A headline table: condition coverage after 1.8K tests with equal
// instruction counts per test — the paper's equal-budget comparison point.
//
//   usage: tab_coverage_1p8k [tests]
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"

using namespace chatfuzz;
using namespace chatfuzz::bench;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1800;
  print_header(
      "SV-A: condition coverage at 1.8K tests, RocketCore",
      "ChatFuzz 74.96% vs TheHuzz 67.4% (same test count, same instr count)");

  core::CampaignConfig cfg = rocket_campaign(n);

  std::fprintf(stderr, "[1p8k] TheHuzz...\n");
  baselines::TheHuzzFuzzer huzz(21);
  const core::CampaignResult rh = core::run_campaign(huzz, cfg);

  std::fprintf(stderr, "[1p8k] Random regression (reference)...\n");
  baselines::RandomFuzzer random(21);
  const core::CampaignResult rr = core::run_campaign(random, cfg);

  std::fprintf(stderr, "[1p8k] ChatFuzz...\n");
  auto chat = make_chatfuzz();
  const core::CampaignResult rc = core::run_campaign(*chat, cfg);

  std::printf("%-10s | %-16s | %-16s\n", "fuzzer", "cond-cov (ours)",
              "cond-cov (paper)");
  std::printf("-----------+------------------+-----------------\n");
  std::printf("%-10s | %15.2f%% | %15.2f%%\n", "ChatFuzz",
              rc.final_cov_percent, 74.96);
  std::printf("%-10s | %15.2f%% | %15.2f%%\n", "TheHuzz",
              rh.final_cov_percent, 67.4);
  std::printf("%-10s | %15.2f%% | %-16s\n", "Random", rr.final_cov_percent,
              "(not reported)");

  const double gap = rc.final_cov_percent - rh.final_cov_percent;
  std::printf("\nChatFuzz - TheHuzz gap: %+.2f points (paper: +7.56)\n", gap);
  std::printf("shape check vs paper: ChatFuzz > TheHuzz >= Random at equal "
              "test budget: %s\n",
              rc.final_cov_percent > rh.final_cov_percent &&
                      rh.final_cov_percent >= rr.final_cov_percent - 0.5
                  ? "PASS" : "CHECK");
  return 0;
}
