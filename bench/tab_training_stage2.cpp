// §III-B(2) reproduction: stage-2 "model language cleanup" convergence.
// The paper monitors the PPO loss, the KL divergence between policies and
// the mean Eq.-1 reward across 30 epochs; this bench regenerates that series
// (scaled epoch count) and reports the invalid-instruction rate before and
// after cleanup.
#include <cstdio>

#include "core/chatfuzz.h"
#include "core/training.h"
#include "riscv/disasm.h"

using namespace chatfuzz;

namespace {
double invalid_rate_of_batch(core::ChatFuzzGenerator& gen, int batches) {
  std::size_t total = 0, invalid = 0;
  for (int i = 0; i < batches; ++i) {
    for (const auto& p : gen.next_batch(16)) {
      const riscv::DisasmAudit a = riscv::audit(p);
      total += a.total;
      invalid += a.invalid;
    }
  }
  return total > 0 ? static_cast<double>(invalid) / static_cast<double>(total)
                   : 1.0;
}
}  // namespace

int main() {
  std::printf(
      "==================================================================\n"
      "Stage-2 training convergence (paper SIII-B2 / SIV-C2, Eq. 1)\n"
      "paper: PPO with the disassembler as deterministic reward agent,\n"
      "       30 epochs on a 51.2K-sample subset; reward f = N - 5*Invalid\n"
      "scale: 12 PPO iterations, 2K-sample corpus (laptop-scale model)\n"
      "==================================================================\n");

  core::ChatFuzzConfig cfg;
  cfg.pretrain_samples = 1200;
  cfg.pretrain.epochs = 4;
  cfg.cleanup_iters = 0;  // we run cleanup manually to measure around it
  core::ChatFuzzGenerator gen(cfg);

  std::fprintf(stderr, "[bench] stage-1 pretraining...\n");
  gen.train_offline();
  for (std::size_t e = 0; e < gen.pretrain_stats().size(); ++e) {
    std::printf("stage1 epoch %zu: cross-entropy=%.4f\n", e + 1,
                gen.pretrain_stats()[e].mean_loss);
  }

  const double invalid_before = invalid_rate_of_batch(gen, 4);
  std::printf("\ninvalid-rate after stage 1 (before cleanup): %.1f%%\n\n",
              100.0 * invalid_before);

  // Stage 2, instrumented per iteration.
  corpus::CorpusGenerator corpus(corpus::CorpusConfig{}, 123);
  core::CleanupConfig cc;
  cc.iters = 10;
  cc.ppo = cfg.ppo;
  cc.sample = cfg.sample;
  cc.sample.max_new_tokens = cfg.gen_tokens;
  ml::Gpt ref(cfg.model, 1);
  ref.copy_params_from(gen.model());
  Rng rng(99);
  std::printf("%-6s | %-14s | %-13s | %s\n", "iter", "mean Eq.1 rew",
              "invalid-rate", "KL(policy||ref)");
  std::printf("-------+----------------+---------------+----------------\n");
  const auto stats = core::cleanup_stage(gen.model(), ref, corpus, cc, rng);
  for (std::size_t i = 0; i < stats.size(); ++i) {
    std::printf("%-6zu | %14.2f | %12.1f%% | %.4f\n", i + 1,
                stats[i].mean_reward, 100.0 * stats[i].invalid_rate,
                stats[i].mean_kl);
  }

  const double invalid_after = invalid_rate_of_batch(gen, 4);
  std::printf("\ninvalid-rate after stage 2: %.1f%%\n", 100.0 * invalid_after);
  std::printf(
      "\nshape check vs paper: reward rises / invalid-rate falls across\n"
      "iterations, and cleanup ends with a mostly-valid language: %s\n",
      invalid_after < invalid_before && invalid_after < 0.15 ? "PASS"
                                                             : "CHECK");
  return 0;
}
