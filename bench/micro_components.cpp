// Component micro-benchmarks (google-benchmark): throughput of the decoder,
// disassembler (the stage-2 reward agent), golden-model and DUT-model
// simulation, tokenizer, LM forward/backward and KV-cache generation.
// These bound the fuzzing loop's test rate — the quantity the paper's
// tests/hour scale model abstracts.
#include <benchmark/benchmark.h>

#include "coverage/cover.h"
#include "corpus/generator.h"
#include "isasim/sim.h"
#include "ml/gpt.h"
#include "ml/sampler.h"
#include "ml/tokenizer.h"
#include "riscv/decode.h"
#include "riscv/disasm.h"
#include "rtlsim/core.h"
#include "util/rng.h"

using namespace chatfuzz;

static void BM_Decode(benchmark::State& state) {
  Rng rng(1);
  const auto prog = corpus::random_valid_program(rng, 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(riscv::decode(prog[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Decode);

static void BM_DisasmAudit(benchmark::State& state) {
  Rng rng(2);
  const auto prog = corpus::random_valid_program(rng, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(riscv::audit(prog));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_DisasmAudit);

static void BM_IsaSimRun(benchmark::State& state) {
  corpus::CorpusGenerator gen(corpus::CorpusConfig{}, 3);
  const auto prog = gen.function();
  sim::Platform plat;
  plat.max_steps = 512;
  sim::IsaSim sim(plat);
  std::uint64_t instrs = 0;
  for (auto _ : state) {
    sim.reset(prog);
    const auto r = sim.run();
    instrs += r.steps;
    benchmark::DoNotOptimize(r.trace.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
}
BENCHMARK(BM_IsaSimRun);

static void BM_RtlSimRun(benchmark::State& state) {
  corpus::CorpusGenerator gen(corpus::CorpusConfig{}, 3);
  const auto prog = gen.function();
  sim::Platform plat;
  plat.max_steps = 512;
  cov::CoverageDB db;
  rtl::RtlCore core(rtl::CoreConfig::rocket(), db, plat);
  std::uint64_t instrs = 0;
  for (auto _ : state) {
    db.begin_test();
    core.reset(prog);
    const auto r = core.run();
    instrs += r.steps;
    benchmark::DoNotOptimize(r.trace.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
}
BENCHMARK(BM_RtlSimRun);

static void BM_Tokenizer(benchmark::State& state) {
  ml::Tokenizer tok;
  Rng rng(4);
  const auto prog = corpus::random_valid_program(rng, 24);
  for (auto _ : state) {
    const auto tokens = tok.encode(prog, true, true);
    benchmark::DoNotOptimize(tok.decode(tokens));
  }
  state.SetItemsProcessed(state.iterations() * 24);
}
BENCHMARK(BM_Tokenizer);

static void BM_GptForward(benchmark::State& state) {
  ml::Gpt model(ml::GptConfig::small(), 1);
  Rng rng(5);
  const int B = 8, T = 96;
  std::vector<int> tokens(B * T);
  for (auto& t : tokens) t = static_cast<int>(rng.below(model.config().vocab));
  for (auto _ : state) {
    model.forward(tokens.data(), B, T);
    benchmark::DoNotOptimize(model.logits());
  }
  state.SetItemsProcessed(state.iterations() * B * T);
}
BENCHMARK(BM_GptForward);

static void BM_GptTrainStep(benchmark::State& state) {
  ml::Gpt model(ml::GptConfig::small(), 1);
  Rng rng(5);
  const int B = 8, T = 96;
  std::vector<int> tokens(B * T), targets(B * T);
  for (auto& t : tokens) t = static_cast<int>(rng.below(model.config().vocab));
  for (auto& t : targets) t = static_cast<int>(rng.below(model.config().vocab));
  for (auto _ : state) {
    model.forward(tokens.data(), B, T);
    model.zero_grad();
    benchmark::DoNotOptimize(
        model.backward_lm(tokens.data(), targets.data(), B, T));
  }
  state.SetItemsProcessed(state.iterations() * B * T);
}
BENCHMARK(BM_GptTrainStep);

static void BM_Generation(benchmark::State& state) {
  ml::Gpt model(ml::GptConfig::small(), 1);
  ml::SampleConfig sc;
  sc.max_new_tokens = 72;
  sc.min_new_tokens = 72;
  ml::Sampler sampler(sc);
  Rng rng(6);
  const std::vector<std::vector<int>> prompts(8, std::vector<int>{256, 1, 2, 3, 4});
  std::uint64_t tokens = 0;
  for (auto _ : state) {
    const auto gens = sampler.generate(model, prompts, rng);
    for (const auto& g : gens) tokens += g.response.size();
    benchmark::DoNotOptimize(gens.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tokens));
}
BENCHMARK(BM_Generation);

static void BM_CoverageHit(benchmark::State& state) {
  cov::CoverageDB db;
  std::vector<cov::PointId> ids;
  for (int i = 0; i < 512; ++i) ids.push_back(db.register_cond("p"));
  db.begin_test();
  std::size_t i = 0;
  for (auto _ : state) {
    db.hit(ids[i & 511], (i & 1) != 0);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoverageHit);

BENCHMARK_MAIN();
