// Component micro-benchmarks (google-benchmark): throughput of the decoder,
// disassembler (the stage-2 reward agent), golden-model and DUT-model
// simulation, tokenizer, LM forward/backward and KV-cache generation.
// These bound the fuzzing loop's test rate — the quantity the paper's
// tests/hour scale model abstracts.
#include <benchmark/benchmark.h>

#include "coverage/cover.h"
#include "corpus/generator.h"
#include "isasim/sim.h"
#include "ml/gpt.h"
#include "ml/sampler.h"
#include "ml/tokenizer.h"
#include "riscv/decode.h"
#include "riscv/disasm.h"
#include "rtlsim/core.h"
#include "util/rng.h"

using namespace chatfuzz;

static void BM_Decode(benchmark::State& state) {
  Rng rng(1);
  const auto prog = corpus::random_valid_program(rng, 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(riscv::decode(prog[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Decode);

static void BM_DisasmAudit(benchmark::State& state) {
  Rng rng(2);
  const auto prog = corpus::random_valid_program(rng, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(riscv::audit(prog));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_DisasmAudit);

static void BM_IsaSimRun(benchmark::State& state) {
  corpus::CorpusGenerator gen(corpus::CorpusConfig{}, 3);
  const auto prog = gen.function();
  sim::Platform plat;
  plat.max_steps = 512;
  sim::IsaSim sim(plat);
  std::uint64_t instrs = 0;
  for (auto _ : state) {
    sim.reset(prog);
    const auto r = sim.run();
    instrs += r.steps;
    benchmark::DoNotOptimize(r.trace.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
}
BENCHMARK(BM_IsaSimRun);

static void BM_RtlSimRun(benchmark::State& state) {
  corpus::CorpusGenerator gen(corpus::CorpusConfig{}, 3);
  const auto prog = gen.function();
  sim::Platform plat;
  plat.max_steps = 512;
  cov::CoverageDB db;
  rtl::RtlCore core(rtl::CoreConfig::rocket(), db, plat);
  std::uint64_t instrs = 0;
  for (auto _ : state) {
    db.begin_test();
    core.reset(prog);
    const auto r = core.run();
    instrs += r.steps;
    benchmark::DoNotOptimize(r.trace.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
}
BENCHMARK(BM_RtlSimRun);

// ---- superblock dispatch ----------------------------------------------------
// Instructions/sec through each simulator's dispatch loop, interpreter
// (sb=0) vs superblock (sb=1), across the three workload shapes the engine
// meets: straight-line (long ALU chains, where spans amortize best),
// branchy (short blocks, dense transfers), and VM-heavy (Sv39 bring-up +
// translated accesses, where superblock dispatch must stand down). Commits
// stream to a DiscardSink so trace materialization does not mask the
// dispatch cost — the same shape the campaign hot path runs.

corpus::CorpusConfig dispatch_mix(int workload) {
  corpus::CorpusConfig cc;
  switch (workload) {
    case 0:  // straight-line
      cc.w_alu_chain = 8.0;
      cc.w_load_compute_store = 2.0;
      cc.w_muldiv = 1.0;
      cc.w_if_else = 0.0;
      cc.w_loop = 0.0;
      cc.w_csr = 0.0;
      cc.w_amo = 0.0;
      cc.w_lrsc = 0.0;
      cc.w_fence = 0.0;
      cc.w_priv = 0.0;
      cc.w_vm = 0.0;
      break;
    case 1:  // branchy
      cc.w_if_else = 6.0;
      cc.w_loop = 4.0;
      cc.w_alu_chain = 1.0;
      cc.w_priv = 0.0;
      cc.w_vm = 0.0;
      break;
    default:  // VM-heavy
      cc.w_vm = 6.0;
      cc.w_priv = 2.0;
      break;
  }
  return cc;
}

static void BM_IsaSimDispatch(benchmark::State& state) {
  corpus::CorpusGenerator gen(dispatch_mix(static_cast<int>(state.range(0))),
                              3);
  const auto progs = gen.dataset(16);
  sim::Platform plat;
  plat.max_steps = 512;
  sim::IsaSim sim(plat);
  sim.set_superblocks(state.range(1) != 0);
  sim::DiscardSink sink;
  sim.set_sink(&sink);
  std::uint64_t instrs = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    sim.reset(progs[i++ % progs.size()]);
    instrs += sim.run().steps;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
}
BENCHMARK(BM_IsaSimDispatch)
    ->ArgNames({"mix", "sb"})
    ->Args({0, 0})->Args({0, 1})
    ->Args({1, 0})->Args({1, 1})
    ->Args({2, 0})->Args({2, 1});

static void BM_RtlSimDispatch(benchmark::State& state) {
  corpus::CorpusGenerator gen(dispatch_mix(static_cast<int>(state.range(0))),
                              3);
  const auto progs = gen.dataset(16);
  sim::Platform plat;
  plat.max_steps = 512;
  cov::CoverageDB db;
  rtl::RtlCore core(rtl::CoreConfig::rocket(), db, plat);
  core.set_superblocks(state.range(1) != 0);
  sim::DiscardSink sink;
  core.set_sink(&sink);
  std::uint64_t instrs = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    db.begin_test();
    core.reset(progs[i++ % progs.size()]);
    instrs += core.run().steps;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
}
BENCHMARK(BM_RtlSimDispatch)
    ->ArgNames({"mix", "sb"})
    ->Args({0, 0})->Args({0, 1})
    ->Args({1, 0})->Args({1, 1})
    ->Args({2, 0})->Args({2, 1});

static void BM_Tokenizer(benchmark::State& state) {
  ml::Tokenizer tok;
  Rng rng(4);
  const auto prog = corpus::random_valid_program(rng, 24);
  for (auto _ : state) {
    const auto tokens = tok.encode(prog, true, true);
    benchmark::DoNotOptimize(tok.decode(tokens));
  }
  state.SetItemsProcessed(state.iterations() * 24);
}
BENCHMARK(BM_Tokenizer);

static void BM_GptForward(benchmark::State& state) {
  ml::Gpt model(ml::GptConfig::small(), 1);
  Rng rng(5);
  const int B = 8, T = 96;
  std::vector<int> tokens(B * T);
  for (auto& t : tokens) t = static_cast<int>(rng.below(model.config().vocab));
  for (auto _ : state) {
    model.forward(tokens.data(), B, T);
    benchmark::DoNotOptimize(model.logits());
  }
  state.SetItemsProcessed(state.iterations() * B * T);
}
BENCHMARK(BM_GptForward);

static void BM_GptTrainStep(benchmark::State& state) {
  ml::Gpt model(ml::GptConfig::small(), 1);
  Rng rng(5);
  const int B = 8, T = 96;
  std::vector<int> tokens(B * T), targets(B * T);
  for (auto& t : tokens) t = static_cast<int>(rng.below(model.config().vocab));
  for (auto& t : targets) t = static_cast<int>(rng.below(model.config().vocab));
  for (auto _ : state) {
    model.forward(tokens.data(), B, T);
    model.zero_grad();
    benchmark::DoNotOptimize(
        model.backward_lm(tokens.data(), targets.data(), B, T));
  }
  state.SetItemsProcessed(state.iterations() * B * T);
}
BENCHMARK(BM_GptTrainStep);

static void BM_Generation(benchmark::State& state) {
  ml::Gpt model(ml::GptConfig::small(), 1);
  ml::SampleConfig sc;
  sc.max_new_tokens = 72;
  sc.min_new_tokens = 72;
  ml::Sampler sampler(sc);
  Rng rng(6);
  const std::vector<std::vector<int>> prompts(8, std::vector<int>{256, 1, 2, 3, 4});
  std::uint64_t tokens = 0;
  for (auto _ : state) {
    const auto gens = sampler.generate(model, prompts, rng);
    for (const auto& g : gens) tokens += g.response.size();
    benchmark::DoNotOptimize(gens.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tokens));
}
BENCHMARK(BM_Generation);

static void BM_CoverageHit(benchmark::State& state) {
  cov::CoverageDB db;
  std::vector<cov::PointId> ids;
  for (int i = 0; i < 512; ++i) ids.push_back(db.register_cond("p"));
  db.begin_test();
  std::size_t i = 0;
  for (auto _ : state) {
    db.hit(ids[i & 511], (i & 1) != 0);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoverageHit);

BENCHMARK_MAIN();
