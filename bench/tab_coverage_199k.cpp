// §V-A long-horizon table: coverage at the paper's 199K-test budget.
// Scaled: the substrate core saturates with far fewer tests than VCS
// RocketCore, so the bench runs `tests` per fuzzer and labels the scale
// (1 simulated test ≙ 199K / tests paper tests).
//
//   usage: tab_coverage_199k [tests]
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"

using namespace chatfuzz;
using namespace chatfuzz::bench;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4000;
  print_header("SV-A: condition coverage at the 199K-test budget, RocketCore",
               "ChatFuzz 79.14% vs TheHuzz 76.7% at 199K tests");
  std::printf("campaign: %zu tests per fuzzer (1 simulated test = %.1f paper "
              "tests)\n\n", n, 199000.0 / static_cast<double>(n));

  core::CampaignConfig cfg = rocket_campaign(n);

  std::fprintf(stderr, "[199k] TheHuzz...\n");
  baselines::TheHuzzFuzzer huzz(41);
  const core::CampaignResult rh = core::run_campaign(huzz, cfg);

  std::fprintf(stderr, "[199k] ChatFuzz...\n");
  auto chat = make_chatfuzz();
  const core::CampaignResult rc = core::run_campaign(*chat, cfg);

  std::printf("%-10s | %-16s | %-16s\n", "fuzzer", "cond-cov (ours)",
              "cond-cov (paper)");
  std::printf("-----------+------------------+-----------------\n");
  std::printf("%-10s | %15.2f%% | %15.2f%%\n", "ChatFuzz",
              rc.final_cov_percent, 79.14);
  std::printf("%-10s | %15.2f%% | %15.2f%%\n", "TheHuzz",
              rh.final_cov_percent, 76.7);

  std::printf("\nshape check vs paper: ChatFuzz stays ahead at the long "
              "horizon, with a narrower gap than at 1.8K tests: %s\n",
              rc.final_cov_percent > rh.final_cov_percent ? "PASS" : "CHECK");
  return 0;
}
