// Batch-throughput scaling of the parallel campaign engine: the same random
// campaign at 1/2/4/8 workers, reporting tests/second and speedup vs the
// single-worker baseline, plus a cross-check that every configuration lands
// on the same final coverage and mismatch tallies (the engine's bit-exactness
// guarantee). The paper's own scaling lever is "ten VCS instances in
// parallel"; this bench measures our equivalent on real threads.
#include <chrono>
#include <cstdio>
#include <thread>

#include "baselines/mutational.h"
#include "bench/bench_common.h"
#include "util/parse.h"

using namespace chatfuzz;

namespace {

struct Sample {
  std::size_t workers = 0;
  double seconds = 0.0;
  core::CampaignResult result;
};

Sample run_at(std::size_t workers, std::size_t tests) {
  baselines::RandomFuzzer gen(7);
  core::CampaignConfig cfg = bench::rocket_campaign(tests);
  cfg.num_workers = workers;
  cfg.checkpoint_every = tests;  // one curve point; we measure throughput
  const auto t0 = std::chrono::steady_clock::now();
  Sample s;
  s.workers = workers;
  s.result = core::run_campaign(gen, cfg);
  s.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t tests = 512;
  if (argc >= 2) {
    const auto parsed = parse_count(argv[1]);
    if (!parsed || *parsed == 0) {
      // A garbled count must not silently shrink the run: with few (or 0)
      // tests the bit-exactness check below would pass vacuously.
      std::fprintf(stderr, "usage: %s [tests>0]\n", argv[0]);
      return 2;
    }
    tests = *parsed;
  }
  bench::print_header(
      "parallel campaign engine: batch throughput vs worker count",
      "ChatFuzz runs ten simulator instances in parallel (~2077 tests/hour)");

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("%zu tests per run, %u hardware threads\n\n", tests, cores);
  std::printf("%8s %10s %12s %9s %10s %8s\n", "workers", "seconds",
              "tests/sec", "speedup", "cond-cov%", "raw-mm");

  Sample base;
  bool identical = true;
  for (const std::size_t w : {1u, 2u, 4u, 8u}) {
    const Sample s = run_at(w, tests);
    if (w == 1) base = s;
    identical = identical &&
                s.result.final_cov_percent == base.result.final_cov_percent &&
                s.result.raw_mismatches == base.result.raw_mismatches &&
                s.result.unique_mismatches == base.result.unique_mismatches;
    std::printf("%8zu %10.3f %12.1f %8.2fx %9.2f%% %8zu\n", s.workers,
                s.seconds, static_cast<double>(tests) / s.seconds,
                base.seconds / s.seconds, s.result.final_cov_percent,
                s.result.raw_mismatches);
  }
  std::printf("\nresults bit-identical across worker counts: %s\n",
              identical ? "yes" : "NO (engine bug!)");
  return identical ? 0 : 1;
}
