// Ablation: stage-3 reward shaping (§IV-C3). The paper's reward combines
// incremental coverage (bonus), stand-alone coverage, and a penalty for
// generations that improve nothing. This bench knocks each term out and
// measures the coverage impact at an equal test budget.
//
//   usage: ablation_reward [tests]
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"

using namespace chatfuzz;
using namespace chatfuzz::bench;

namespace {
core::CampaignResult run_variant(const char* label,
                                 core::ChatFuzzConfig cc,
                                 const core::CampaignConfig& cfg) {
  core::ChatFuzzGenerator gen(cc);
  const ser::Status loaded = gen.load_model(kModelCache);
  if (!loaded.ok()) {
    std::fprintf(stderr, "[ablation] no cached model (%s); training...\n",
                 loaded.message().c_str());
    gen.train_offline();
    const ser::Status saved = gen.save_model(kModelCache);
    if (!saved.ok()) {
      std::fprintf(stderr, "[ablation] warning: %s\n",
                   saved.message().c_str());
    }
  }
  std::fprintf(stderr, "[ablation] %s...\n", label);
  return core::run_campaign(gen, cfg);
}
}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 600;
  print_header("Ablation: stage-3 coverage reward terms",
               "SIV-C3: reward = incremental bonus + stand-alone term - "
               "no-improvement penalty (+ validity shaping)");

  const core::CampaignConfig cfg = rocket_campaign(n);
  std::printf("%-26s | %-10s\n", "reward variant", "cond-cov");
  std::printf("---------------------------+-----------\n");

  {
    core::ChatFuzzConfig cc;  // full shaping (paper configuration)
    const auto r = run_variant("full reward", cc, cfg);
    std::printf("%-26s | %8.2f%%\n", "full (paper)", r.final_cov_percent);
  }
  {
    core::ChatFuzzConfig cc;
    cc.w_incremental = 0.0;  // no bonus for new coverage
    const auto r = run_variant("no incremental bonus", cc, cfg);
    std::printf("%-26s | %8.2f%%\n", "no incremental bonus",
                r.final_cov_percent);
  }
  {
    core::ChatFuzzConfig cc;
    cc.no_improvement_penalty = 0.0;
    const auto r = run_variant("no penalty", cc, cfg);
    std::printf("%-26s | %8.2f%%\n", "no no-improvement penalty",
                r.final_cov_percent);
  }
  {
    core::ChatFuzzConfig cc;
    cc.invalid_penalty = 0.0;  // language free to decay during stage 3
    const auto r = run_variant("no validity shaping", cc, cfg);
    std::printf("%-26s | %8.2f%%\n", "no validity shaping",
                r.final_cov_percent);
  }

  std::printf("\nthe full reward should be at or near the top; large drops "
              "show which term carries the steering signal.\n");
  return 0;
}
