// Interrupt-stimulus ablation: the RocketCore model's interrupt-pending
// condition points are unreachable under the paper's testbench (no CLINT
// stimulus — the realistic reason 24h campaigns plateau below 80%). This
// ablation attaches the CLINT device, gives the seed generator the kernel
// timer-arming idiom, and lets HyPFuzz's solver target the irq lines: the
// previously-dead points become coverable, raising the attainable ceiling.
//
//   usage: ablation_interrupts [tests]
#include <cstdio>
#include <cstdlib>

#include "baselines/hypfuzz.h"
#include "bench_common.h"

using namespace chatfuzz;
using namespace chatfuzz::bench;

namespace {

/// Count covered true-bins among irq.pending points after a campaign-like
/// run of the given generator (the campaign itself owns its DB, so re-run a
/// probe: HyPFuzz stats tell the story; here we just report cond-cov).
struct Cell {
  double cov = 0.0;
  std::size_t solved = 0;
  std::size_t unreachable = 0;
  std::size_t irq_uncovered = 0;  // irq.pending points missing the true bin
};

Cell run_cell(bool clint, std::size_t n) {
  core::CampaignConfig cfg = rocket_campaign(n);
  cfg.platform.clint_enabled = clint;
  cfg.mismatch_detection = false;
  baselines::HypFuzzConfig hcfg;
  hcfg.stagnation_batches = 1;
  baselines::HypFuzzer hyp(41, hcfg, cfg.platform);
  const core::CampaignResult res = core::run_campaign(hyp, cfg);
  Cell cell{res.final_cov_percent, hyp.solved_points(),
            hyp.unreachable_points(), 0};
  for (const cov::UncoveredPoint& up : res.uncovered) {
    if (up.name.starts_with("irq.pending") && up.missing_true) {
      ++cell.irq_uncovered;
    }
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 800;
  print_header(
      "Ablation: interrupt stimulus (CLINT) vs. coverage ceiling",
      "irq condition points are the unreachable tail without interrupt "
      "stimulus; DESIGN.md documents this as the plateau's cause");

  std::fprintf(stderr, "[irq] without CLINT...\n");
  const Cell off = run_cell(false, n);
  std::fprintf(stderr, "[irq] with CLINT...\n");
  const Cell on = run_cell(true, n);

  std::printf("%-14s | %-9s | %-13s | %-12s | %-14s\n", "stimulus",
              "cond-cov", "points solved", "unreachable", "irq uncovered");
  std::printf("---------------+-----------+---------------+--------------+---------------\n");
  std::printf("%-14s | %8.2f%% | %13zu | %12zu | %14zu\n", "none (paper)",
              off.cov, off.solved, off.unreachable, off.irq_uncovered);
  std::printf("%-14s | %8.2f%% | %13zu | %12zu | %14zu\n", "CLINT timer/sw",
              on.cov, on.solved, on.unreachable, on.irq_uncovered);

  std::printf("\nshape checks:\n");
  std::printf("  irq.pending lines become coverable:       %s (%zu -> %zu "
              "uncovered)\n",
              on.irq_uncovered < off.irq_uncovered ? "PASS" : "CHECK",
              off.irq_uncovered, on.irq_uncovered);
  std::printf("  fewer points classified unreachable:      %s (%zu -> %zu)\n",
              on.unreachable < off.unreachable ? "PASS" : "CHECK",
              off.unreachable, on.unreachable);
  std::printf("  total coverage not degraded (noise tol.): %s (%+.2f pts)\n",
              on.cov >= off.cov - 0.75 ? "PASS" : "CHECK", on.cov - off.cov);
  return 0;
}
