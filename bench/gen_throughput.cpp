// Generation/simulation throughput bench: tokens/sec through the GPT
// incremental-decode path (vectorized kernels vs. the seed's naive
// reference), golden-model ISS steps/sec, and a raw matmul kernel
// microbench. Emits ONE line of JSON on stdout so successive runs can be
// appended to a BENCH_*.json trajectory file:
//
//   ./bench_gen_throughput [--smoke] >> BENCH_gen_throughput.json
//
// --smoke (or CHATFUZZ_SMOKE=1) shrinks every workload to CI size; the
// numbers still print but only prove the harness runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "isasim/sim.h"
#include "ml/gpt.h"
#include "ml/kernels.h"
#include "riscv/builder.h"
#include "util/rng.h"

namespace kern = chatfuzz::ml::kern;
using chatfuzz::Rng;
using chatfuzz::ml::Gpt;
using chatfuzz::ml::GptConfig;

namespace {

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Tokens/sec through gen_begin + gen_step over `steps` positions.
double gen_tokens_per_sec(const Gpt& model, int B, int steps, Rng& rng) {
  Gpt::GenState st = model.gen_begin(B);
  std::vector<int> toks(B);
  std::vector<float> logits(static_cast<std::size_t>(B) *
                            model.config().vocab);
  for (int b = 0; b < B; ++b) {
    toks[b] = static_cast<int>(rng.below(model.config().vocab));
  }
  const double t0 = now_sec();
  for (int t = 0; t < steps; ++t) {
    model.gen_step(st, toks.data(), logits.data());
    for (int b = 0; b < B; ++b) {
      // Greedy-ish feedback keeps the data dependent on the compute.
      toks[b] = static_cast<int>(logits[static_cast<std::size_t>(b)] > 0.f);
    }
  }
  const double dt = now_sec() - t0;
  return static_cast<double>(B) * steps / dt;
}

/// GFLOP/s of a matmul kernel on a fixed decode-ish shape.
template <typename Fn>
double matmul_gflops(const Fn& call, int reps, int N, int Cin, int Cout) {
  const double t0 = now_sec();
  for (int r = 0; r < reps; ++r) call();
  const double dt = now_sec() - t0;
  const double flops =
      2.0 * N * Cin * Cout * reps;
  return flops / dt / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  const char* env_smoke = std::getenv("CHATFUZZ_SMOKE");
  bool smoke = env_smoke != nullptr && std::strcmp(env_smoke, "0") != 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // ---- kernel microbench --------------------------------------------------
  const int N = 8, Cin = 128, Cout = 512;
  const int reps = smoke ? 20 : 400;
  Rng rng(1234);
  std::vector<float> inp(static_cast<std::size_t>(N) * Cin);
  std::vector<float> w(static_cast<std::size_t>(Cout) * Cin);
  std::vector<float> bias(Cout);
  std::vector<float> out(static_cast<std::size_t>(N) * Cout);
  for (float& x : inp) x = static_cast<float>(rng.uniform()) - 0.5f;
  for (float& x : w) x = 0.1f * (static_cast<float>(rng.uniform()) - 0.5f);
  for (float& x : bias) x = static_cast<float>(rng.uniform()) - 0.5f;

  const double gflops_ref = matmul_gflops(
      [&] {
        kern::matmul_forward_ref(out.data(), inp.data(), w.data(),
                                 bias.data(), N, Cin, Cout);
      },
      reps, N, Cin, Cout);
  const double gflops_fast = matmul_gflops(
      [&] {
        kern::matmul_forward(out.data(), inp.data(), w.data(), bias.data(),
                             N, Cin, Cout);
      },
      reps, N, Cin, Cout);

  // ---- generation throughput ----------------------------------------------
  const GptConfig cfg = GptConfig::paper();
  const int B = 8;
  const int steps = smoke ? 8 : cfg.ctx;
  Gpt model(cfg, 7);
  Rng gen_rng(9);
  // Warm up once (thread pool spin-up, page faults), then measure.
  gen_tokens_per_sec(model, B, smoke ? 2 : 8, gen_rng);
  const double tps_fast = gen_tokens_per_sec(model, B, steps, gen_rng);
  model.set_use_ref_kernels(true);
  const double tps_ref = gen_tokens_per_sec(model, B, steps, gen_rng);
  model.set_use_ref_kernels(false);

  // ---- ISS steps/sec -------------------------------------------------------
  using chatfuzz::riscv::Opcode;
  chatfuzz::riscv::ProgramBuilder pb;
  pb.li(1, 0);
  pb.li(2, 1 << 30);  // never reached: max_steps bounds the run
  pb.label("loop");
  pb.addi(1, 1, 1);
  pb.raw(chatfuzz::riscv::enc_r(Opcode::kXor, 3, 1, 2));
  pb.add(4, 3, 1);
  pb.branch_to(Opcode::kBne, 1, 2, "loop");
  pb.raw(chatfuzz::riscv::enc_sys(Opcode::kWfi));
  const std::vector<std::uint32_t> prog = pb.seal();

  chatfuzz::sim::Platform plat;
  plat.max_steps = smoke ? 20000 : 400000;
  chatfuzz::sim::IsaSim sim(plat);
  sim.reset(prog);
  sim.run();  // warm-up (page faults, branch history)
  // Timed run starts from reset like every campaign test does, so the
  // number includes the cold predecode-cache repopulation each test pays.
  sim.reset(prog);
  const double t0 = now_sec();
  const auto run = sim.run();
  const double iss_sps = static_cast<double>(run.steps) / (now_sec() - t0);

  std::printf(
      "{\"bench\":\"gen_throughput\",\"smoke\":%s,"
      "\"gen_tokens_per_sec\":%.1f,\"gen_tokens_per_sec_ref\":%.1f,"
      "\"gen_speedup\":%.2f,"
      "\"kernel_gflops\":%.3f,\"kernel_gflops_ref\":%.3f,"
      "\"kernel_speedup\":%.2f,"
      "\"iss_steps_per_sec\":%.0f,\"iss_steps\":%llu}\n",
      smoke ? "true" : "false", tps_fast, tps_ref, tps_fast / tps_ref,
      gflops_fast, gflops_ref, gflops_fast / gflops_ref, iss_sps,
      static_cast<unsigned long long>(run.steps));
  return 0;
}
