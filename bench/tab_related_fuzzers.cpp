// Related-work comparison (paper §I / §II-A): the paper situates ChatFuzz
// against the full line of processor fuzzers — TheHuzz (code-coverage
// mutational), DifuzzRTL (control-register coverage, ~3.33x slower per
// test), the hybrid HyPFuzz (formal-assisted) and PSOFuzz (PSO-scheduled
// mutation), and plain random regression. The published claims are ordinal:
// ChatFuzz > hybrids > TheHuzz > DifuzzRTL > random at equal test budget.
// This bench runs all six generators through the identical campaign harness.
//
//   usage: tab_related_fuzzers [tests]
#include <cstdio>
#include <cstdlib>

#include "baselines/hypfuzz.h"
#include "baselines/psofuzz.h"
#include "bench_common.h"

using namespace chatfuzz;
using namespace chatfuzz::bench;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1200;
  print_header(
      "Related-fuzzer field: condition coverage at equal test budget",
      "ordinal claims: ChatFuzz leads; hybrids beat TheHuzz; TheHuzz 3.33x "
      "faster than DifuzzRTL; all beat random");

  const core::CampaignConfig cfg = rocket_campaign(n);

  struct Row {
    const char* name;
    core::CampaignResult res;
    const char* note;
  };
  std::vector<Row> rows;

  std::fprintf(stderr, "[field] Random...\n");
  baselines::RandomFuzzer random(33);
  rows.push_back({"Random", core::run_campaign(random, cfg), "no feedback"});

  std::fprintf(stderr, "[field] DifuzzRTL...\n");
  baselines::DifuzzRtlFuzzer difuzz(33);
  rows.push_back({"DifuzzRTL", core::run_campaign(difuzz, cfg),
                  "ctrl-reg cov, 3.33x cost"});

  std::fprintf(stderr, "[field] TheHuzz...\n");
  baselines::TheHuzzFuzzer huzz(33);
  rows.push_back({"TheHuzz", core::run_campaign(huzz, cfg), "cond cov"});

  std::fprintf(stderr, "[field] PSOFuzz...\n");
  baselines::PsoFuzzer pso(33);
  rows.push_back({"PSOFuzz", core::run_campaign(pso, cfg),
                  "PSO mutation scheduling"});

  std::fprintf(stderr, "[field] HyPFuzz...\n");
  baselines::HypFuzzConfig hcfg;
  hcfg.stagnation_batches = 1;  // scaled campaigns stagnate in shorter waves
  baselines::HypFuzzer hyp(33, hcfg, cfg.platform);
  rows.push_back({"HyPFuzz", core::run_campaign(hyp, cfg),
                  "formal-assisted"});

  std::fprintf(stderr, "[field] ChatFuzz...\n");
  auto chat = make_chatfuzz();
  rows.push_back({"ChatFuzz", core::run_campaign(*chat, cfg), "this paper"});

  // HyPFuzz's formal calls are not free: the published tool spends minutes
  // of JasperGold time per targeted point, which is where its wall-clock
  // goes. Charge each *solved* point a nominal formal budget so the hours
  // column compares honestly (coverage-at-tests for HyPFuzz is unchanged).
  constexpr double kFormalHoursPerPoint = 0.05;  // ~3 min of solver per point
  const double hyp_formal_hours =
      kFormalHoursPerPoint * static_cast<double>(hyp.solved_points());

  std::printf("%-10s | %-9s | %-12s | %s\n", "fuzzer", "cond-cov",
              "paper-equiv h", "guidance");
  std::printf("-----------+-----------+--------------+---------------------\n");
  for (const Row& r : rows) {
    const bool is_hyp = std::string_view(r.name) == "HyPFuzz";
    std::printf("%-10s | %8.2f%% | %12.2f | %s\n", r.name,
                r.res.final_cov_percent,
                r.res.hours + (is_hyp ? hyp_formal_hours : 0.0), r.note);
  }

  std::printf("\n[hypfuzz] escalations=%zu solved=%zu unreachable=%zu "
              "(+%.2f h formal time charged)\n",
              hyp.escalations(), hyp.solved_points(),
              hyp.unreachable_points(), hyp_formal_hours);

  const double chat_cov = rows[5].res.final_cov_percent;
  const double hyp_cov = rows[4].res.final_cov_percent;
  const double pso_cov = rows[3].res.final_cov_percent;
  const double huzz_cov = rows[2].res.final_cov_percent;
  const double rand_cov = rows[0].res.final_cov_percent;
  const double chat_rate = chat_cov / rows[5].res.hours;
  const double hyp_rate = hyp_cov / (rows[4].res.hours + hyp_formal_hours);
  std::printf("\nshape checks:\n");
  std::printf("  ChatFuzz leads the pure fuzzers:       %s\n",
              chat_cov > huzz_cov && chat_cov > pso_cov && chat_cov > rand_cov
                  ? "PASS" : "CHECK");
  std::printf("  ChatFuzz > HyPFuzz per wall-clock hour: %s "
              "(%.1f vs %.1f %%/h)\n",
              chat_rate > hyp_rate ? "PASS" : "CHECK", chat_rate, hyp_rate);
  std::printf("  HyPFuzz > TheHuzz at equal tests:      %s\n",
              hyp_cov > huzz_cov ? "PASS" : "CHECK");
  std::printf("  PSOFuzz >= TheHuzz (PSO scheduling):   %s\n",
              pso_cov >= huzz_cov - 0.5 ? "PASS" : "CHECK");
  std::printf("  feedback beats random:                 %s\n",
              huzz_cov > rand_cov ? "PASS" : "CHECK");
  std::printf("  DifuzzRTL pays 3.33x wall-clock:       %s\n",
              rows[1].res.hours > rows[2].res.hours * 3.0 ? "PASS" : "CHECK");
  return 0;
}
