// §V-A BOOM result: ChatFuzz reaches 97.02% condition coverage on the
// BOOM-class core in 49 minutes. The bench runs ChatFuzz (and TheHuzz for
// reference) on the BOOM configuration and reports coverage at the
// 49-minute-equivalent test budget and at the end of the campaign.
//
//   usage: tab_boom [tests]
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"

using namespace chatfuzz;
using namespace chatfuzz::bench;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;
  print_header("SV-A: BOOM campaign",
               "ChatFuzz reaches 97.02% condition coverage in 49 minutes");

  core::CampaignConfig cfg = rocket_campaign(n);
  cfg.core = rtl::CoreConfig::boom();
  cfg.checkpoint_every = std::max<std::size_t>(n / 50, 10);

  std::fprintf(stderr, "[boom] ChatFuzz...\n");
  auto chat = make_chatfuzz();
  const core::CampaignResult rc = core::run_campaign(*chat, cfg);

  std::fprintf(stderr, "[boom] TheHuzz (reference)...\n");
  baselines::TheHuzzFuzzer huzz(51);
  const core::CampaignResult rh = core::run_campaign(huzz, cfg);

  // Coverage at the 49-paper-minute test budget.
  const auto tests_49min =
      static_cast<std::size_t>(kPaperTestsPerHour * 49.0 / 60.0);
  double at_49 = 0.0;
  for (const auto& p : rc.curve) {
    if (p.tests <= tests_49min) at_49 = p.cond_cov_percent;
  }

  std::printf("%-22s | %-10s | %s\n", "measurement", "ours", "paper");
  std::printf("-----------------------+------------+---------\n");
  std::printf("%-22s | %9.2f%% | 97.02%%\n",
              "ChatFuzz @ 49 min", at_49);
  std::printf("%-22s | %9.2f%% | (n/a)\n", "ChatFuzz final", rc.final_cov_percent);
  std::printf("%-22s | %9.2f%% | (n/a)\n", "TheHuzz final", rh.final_cov_percent);

  std::printf("\nshape check vs paper: BOOM saturates far higher than "
              "RocketCore and ChatFuzz reaches ~97%% within the 49-minute "
              "budget: %s\n", at_49 >= 90.0 ? "PASS" : "CHECK");
  return 0;
}
