// §V-B reproduction: the findings pipeline. A ChatFuzz campaign with
// differential testing against the golden model must (a) produce thousands
// of raw mismatches, (b) dedup them to a small unique set automatically, and
// (c) surface all five of the paper's findings: Bug1 (CWE-1202 cache
// coherency), Bug2 (CWE-440 tracer), and Findings 1-3 (ISA deviations).
//
//   usage: tab_findings [tests]
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"

using namespace chatfuzz;
using namespace chatfuzz::bench;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2500;
  print_header("SV-B: mismatches and findings, RocketCore",
               "5,866 raw mismatches -> >100 unique after automated "
               "filtration; Bug1 (CWE-1202), Bug2 (CWE-440), Findings 1-3");

  core::CampaignConfig cfg = rocket_campaign(n);

  std::fprintf(stderr, "[findings] ChatFuzz campaign with differential "
                       "testing...\n");
  auto chat = make_chatfuzz();
  const core::CampaignResult r = core::run_campaign(*chat, cfg);

  std::printf("%-34s | %-10s | %s\n", "measurement", "ours", "paper");
  std::printf("-----------------------------------+------------+-----------\n");
  std::printf("%-34s | %10zu | 5,866\n", "raw mismatch records", r.raw_mismatches);
  std::printf("%-34s | %10zu | (filters)\n", "filtered false positives",
              r.filtered_mismatches);
  std::printf("%-34s | %10zu | >100\n", "unique mismatches after dedup",
              r.unique_mismatches);
  std::printf("%-34s | %10.1fx | ~50x\n", "dedup compression",
              r.unique_mismatches > 0
                  ? static_cast<double>(r.raw_mismatches) /
                        static_cast<double>(r.unique_mismatches)
                  : 0.0);

  std::printf("\nfindings detected:\n");
  const mismatch::Finding expected[5] = {
      mismatch::Finding::kBug1CacheCoherency,
      mismatch::Finding::kBug2TracerMulDiv,
      mismatch::Finding::kF1ExceptionPriority,
      mismatch::Finding::kF2AmoIntoX0,
      mismatch::Finding::kF3X0TraceWrite,
  };
  int found = 0;
  for (const mismatch::Finding f : expected) {
    const bool hit = r.findings.count(f) != 0;
    found += hit ? 1 : 0;
    std::printf("  [%s] %s\n", hit ? "x" : " ", mismatch::finding_name(f));
  }
  std::printf("\nshape check vs paper: all five findings surfaced by the "
              "fuzzing campaign alone: %s (%d/5)\n",
              found == 5 ? "PASS" : "CHECK", found);
  return 0;
}
