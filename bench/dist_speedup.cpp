// Distributed-campaign speedup bench: end-to-end tests/sec of the
// multi-process coordinator/worker subsystem (fuzz --procs) versus the
// single-process engine on the same seed, programs and config. The two runs
// must agree bit-for-bit (parity_ok — coverage percent, cycle/instruction
// totals, mismatch tallies, full curve), or the comparison is void; the
// dist run's whole point is that only wall-clock moves. Emits ONE line of
// JSON on stdout so successive runs append to a BENCH_dist.json trajectory
// file:
//
//   ./bench_dist_speedup [--smoke] [procs] >> BENCH_dist.json
//
// --smoke (or CHATFUZZ_SMOKE=1) shrinks the campaign to CI size; `procs`
// defaults to 2 (the acceptance point: >= 1.7x at 2 processes). The binary
// is its own worker: the coordinator re-execs it via /proc/self/exe in the
// hidden `worker <fd>` mode.
//
// --faults switches to the degradation bench: the same dist campaign runs
// once clean and once under a seeded hostile wire-fault schedule on the TCP
// transport (drops, truncations, corruptions, forged CRCs, duplicates,
// delays — workers redial, leases re-issue), and the line reports how much
// throughput the churn costs ({"bench":"dist_fault", ...} for a
// BENCH_dist_fault.json trajectory). Parity stays the hard gate: both runs
// must be bit-identical to the single-process engine or the exit code is 1.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "baselines/mutational.h"
#include "core/campaign.h"
#include "dist/worker.h"

using namespace chatfuzz;

namespace {

constexpr std::uint64_t kGenSeed = 11;

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

core::CampaignResult timed_run(const core::CampaignConfig& cfg,
                               double* seconds) {
  baselines::RandomFuzzer gen(kGenSeed);
  const double t0 = now_sec();
  core::CampaignResult res = core::run_campaign(gen, cfg);
  *seconds = now_sec() - t0;
  return res;
}

bool identical(const core::CampaignResult& a, const core::CampaignResult& b) {
  if (a.tests_run != b.tests_run ||
      a.final_cov_percent != b.final_cov_percent ||  // bit-exact, no tol
      a.total_cycles != b.total_cycles ||
      a.total_instrs != b.total_instrs ||
      a.raw_mismatches != b.raw_mismatches ||
      a.unique_mismatches != b.unique_mismatches ||
      a.findings != b.findings || a.curve.size() != b.curve.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    if (a.curve[i].tests != b.curve[i].tests ||
        a.curve[i].cond_cov_percent != b.curve[i].cond_cov_percent ||
        a.curve[i].ctrl_states != b.curve[i].ctrl_states) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Worker re-exec from the coordinator lands here first.
  if (const auto rc = dist::maybe_worker_main(argc, argv)) return *rc;

  bool smoke = std::getenv("CHATFUZZ_SMOKE") != nullptr;
  bool faults = false;
  std::size_t procs = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      faults = true;
    } else {
      procs = static_cast<std::size_t>(std::strtoul(argv[i], nullptr, 10));
      if (procs < 2) procs = 2;
    }
  }

  core::CampaignConfig cfg;
  cfg.num_tests = smoke ? 1024 : 12'288;
  cfg.batch_size = 256;
  cfg.checkpoint_every = cfg.num_tests / 8;
  cfg.platform.max_steps = 512;
  cfg.num_workers = 1;  // threads per process: isolate the process axis

  // Warm-up: page in the model code and let the first-touch allocations
  // happen outside the timed windows.
  {
    core::CampaignConfig warm = cfg;
    warm.num_tests = smoke ? 64 : 256;
    double ignored;
    (void)timed_run(warm, &ignored);
  }

  double sec_1p = 0.0, sec_np = 0.0;
  const core::CampaignResult one = timed_run(cfg, &sec_1p);

  core::CampaignConfig dist_cfg = cfg;
  dist_cfg.dist.num_procs = procs;

  if (faults) {
    // Degradation cell: clean TCP fleet vs the same fleet under a seeded
    // hostile schedule. TCP (not socketpairs) so dropped workers redial and
    // the churn is survivable by design rather than by budget.
    dist_cfg.dist.listen = "127.0.0.1:0";
    double sec_clean = 0.0, sec_fault = 0.0;
    const core::CampaignResult clean = timed_run(dist_cfg, &sec_clean);

    core::CampaignConfig fault_cfg = dist_cfg;
    fault_cfg.dist.fault.seed = 0xD15FA017;
    fault_cfg.dist.fault.max_faults = smoke ? 12 : 32;
    fault_cfg.dist.fault.p_drop = 24;
    fault_cfg.dist.fault.p_truncate = 12;
    fault_cfg.dist.fault.p_corrupt = 24;
    fault_cfg.dist.fault.p_wrong_crc = 12;
    fault_cfg.dist.fault.p_duplicate = 24;
    fault_cfg.dist.fault.p_delay = 48;
    const core::CampaignResult hurt = timed_run(fault_cfg, &sec_fault);

    const double tps_clean =
        static_cast<double>(clean.tests_run) / sec_clean;
    const double tps_fault = static_cast<double>(hurt.tests_run) / sec_fault;
    const bool parity = identical(one, clean) && identical(one, hurt);
    std::printf(
        "{\"bench\":\"dist_fault\",\"smoke\":%s,"
        "\"tests\":%zu,\"procs\":%zu,\"workers_per_proc\":1,"
        "\"fault_seed\":%llu,\"fault_budget\":%u,"
        "\"tests_per_sec_clean\":%.1f,\"wall_seconds_clean\":%.3f,"
        "\"tests_per_sec_faulted\":%.1f,\"wall_seconds_faulted\":%.3f,"
        "\"fault_throughput_ratio\":%.3f,"
        "\"final_cov_percent\":%.4f,\"raw_mismatches\":%zu,"
        "\"parity_ok\":%s}\n",
        smoke ? "true" : "false", one.tests_run, procs,
        static_cast<unsigned long long>(fault_cfg.dist.fault.seed),
        fault_cfg.dist.fault.max_faults, tps_clean, sec_clean, tps_fault,
        sec_fault, tps_fault / tps_clean, hurt.final_cov_percent,
        hurt.raw_mismatches, parity ? "true" : "false");
    return parity ? 0 : 1;
  }

  const core::CampaignResult fanned = timed_run(dist_cfg, &sec_np);

  const double tps_1p = static_cast<double>(one.tests_run) / sec_1p;
  const double tps_np = static_cast<double>(fanned.tests_run) / sec_np;
  const double speedup = tps_np / tps_1p;
  const bool parity_ok = identical(one, fanned);
  // The acceptance bar: >= 1.7x at 2 processes — which requires at least
  // two cores for the worker processes to actually run side by side (on a
  // single-core host the bench degenerates to measuring pure coordination
  // overhead, so the bar is waived there and `cores` tells the trajectory
  // reader why). Reported rather than asserted: CI hardware varies; the
  // hard gate is bit-level parity.
  const unsigned cores = std::thread::hardware_concurrency();
  const bool speedup_ok = speedup >= 1.7 || procs != 2 || cores < 2;

  std::printf(
      "{\"bench\":\"dist_speedup\",\"smoke\":%s,"
      "\"tests\":%zu,\"procs\":%zu,\"workers_per_proc\":1,\"cores\":%u,"
      "\"tests_per_sec_1p\":%.1f,\"wall_seconds_1p\":%.3f,"
      "\"tests_per_sec_np\":%.1f,\"wall_seconds_np\":%.3f,"
      "\"dist_speedup\":%.2f,\"speedup_ok\":%s,"
      "\"final_cov_percent\":%.4f,\"raw_mismatches\":%zu,"
      "\"parity_ok\":%s}\n",
      smoke ? "true" : "false", one.tests_run, procs, cores, tps_1p, sec_1p,
      tps_np, sec_np, speedup, speedup_ok ? "true" : "false",
      fanned.final_cov_percent, fanned.raw_mismatches,
      parity_ok ? "true" : "false");
  return parity_ok ? 0 : 1;
}
