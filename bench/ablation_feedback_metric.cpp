// Feedback-metric ablation (paper §V motivates fuzzing *condition* coverage
// because it "correlates the satisfaction of hardware design conditions
// with realizing new functional behaviors"): run the same TheHuzz-class
// mutational engine guided by each standard metric — condition, toggle,
// statement, FSM, control-register — and report the *condition* coverage
// each guidance signal ultimately earns. Statement coverage saturates
// within seconds and FSM coverage within minutes, so neither can steer a
// long campaign; condition coverage keeps a gradient alive the longest.
//
//   usage: ablation_feedback_metric [tests]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"

using namespace chatfuzz;
using namespace chatfuzz::bench;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1000;
  print_header(
      "Ablation: guidance metric vs. final condition coverage",
      "condition coverage chosen as feedback (SV); statement/FSM saturate "
      "and stop steering");

  struct Row {
    core::GuidanceMetric metric;
    core::CampaignResult res;
  };
  std::vector<Row> rows;
  for (const auto g :
       {core::GuidanceMetric::kCondition, core::GuidanceMetric::kToggle,
        core::GuidanceMetric::kFsm, core::GuidanceMetric::kCtrlReg,
        core::GuidanceMetric::kStatement}) {
    std::fprintf(stderr, "[metric] %s...\n", core::guidance_name(g));
    core::CampaignConfig cfg = rocket_campaign(n);
    cfg.guidance = g;
    cfg.collect_multi_metrics = true;
    cfg.mismatch_detection = false;
    baselines::TheHuzzFuzzer fuzzer(29);
    rows.push_back({g, core::run_campaign(fuzzer, cfg)});
  }

  std::printf("%-10s | %-13s | %-8s | %-8s | %-9s\n", "guidance",
              "cond-cov (!)", "toggle", "fsm", "statement");
  std::printf("-----------+---------------+----------+----------+----------\n");
  for (const Row& r : rows) {
    std::printf("%-10s | %12.2f%% | %7.2f%% | %7.2f%% | %8.2f%%\n",
                core::guidance_name(r.metric), r.res.final_cov_percent,
                r.res.toggle_percent, r.res.fsm_percent,
                r.res.statement_percent);
  }

  const double cond = rows[0].res.final_cov_percent;
  double spread = 0.0;
  for (const Row& r : rows) {
    spread = std::max(spread, std::abs(r.res.final_cov_percent - cond));
  }
  std::printf("\nshape checks:\n");
  std::printf("  condition guidance leads or ties every other metric: %s\n",
              [&] {
                for (std::size_t i = 1; i < rows.size(); ++i) {
                  if (rows[i].res.final_cov_percent > cond + 0.75) return "CHECK";
                }
                return "PASS";
              }());
  std::printf("  statement metric saturates (>90%% everywhere):        %s\n",
              [&] {
                for (const Row& r : rows) {
                  if (r.res.statement_percent < 90.0) return "CHECK";
                }
                return "PASS";
              }());
  // The deeper point (the paper's thesis): for a *mutational* engine the
  // guidance metric barely matters — no metric steers it into the deep
  // tail. Steering requires a generator that understands the language.
  std::printf("  guidance spread stays small (mutation can't steer):   %s "
              "(max spread %.2f points)\n",
              spread < 2.0 ? "PASS" : "CHECK", spread);
  return 0;
}
