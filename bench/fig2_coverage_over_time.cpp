// Figure 2 reproduction: condition coverage of ChatFuzz vs. TheHuzz over a
// 24-hour RocketCore campaign. The paper's DUT (VCS-compiled RocketCore,
// ~47K condition bins) needs ~50K tests to saturate; our substrate core has
// ~700 bins, so one simulated test stands for `scale` paper tests and the
// series is mapped onto the paper's hour axis accordingly (see
// EXPERIMENTS.md for the scale model).
//
//   usage: fig2_coverage_over_time [tests_per_fuzzer]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "bench_common.h"

using namespace chatfuzz;
using namespace chatfuzz::bench;

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3000;
  print_header("Fig. 2: condition coverage over time, RocketCore (24 h)",
               "ChatFuzz reaches ~75% within the first hour; TheHuzz needs "
               "~30 h; both start near 50% and end 77-80%");

  // Map the simulated campaign onto the paper's 24-hour axis.
  const double paper_tests_24h = kPaperTestsPerHour * 24.0;
  const double scale = paper_tests_24h / static_cast<double>(n);
  std::printf("campaign: %zu tests per fuzzer; 1 simulated test = %.1f paper "
              "tests\n\n", n, scale);

  core::CampaignConfig cfg = rocket_campaign(n);
  cfg.checkpoint_every = n / 48;  // one point per paper half-hour

  std::fprintf(stderr, "[fig2] running TheHuzz campaign...\n");
  baselines::TheHuzzFuzzer huzz(11);
  const core::CampaignResult rh = core::run_campaign(huzz, cfg);

  std::fprintf(stderr, "[fig2] running ChatFuzz campaign...\n");
  auto chat = make_chatfuzz();
  const core::CampaignResult rc = core::run_campaign(*chat, cfg);

  // Merge the two curves onto the common hour axis.
  std::printf("%-10s | %-18s | %-18s\n", "paper-hrs", "ChatFuzz cond-cov",
              "TheHuzz cond-cov");
  std::printf("-----------+--------------------+-------------------\n");
  const std::size_t points = std::min(rc.curve.size(), rh.curve.size());
  for (std::size_t i = 0; i < points; ++i) {
    const double hours =
        static_cast<double>(rc.curve[i].tests) * scale / kPaperTestsPerHour;
    std::printf("%9.2f  | %17.2f%% | %17.2f%%\n", hours,
                rc.curve[i].cond_cov_percent, rh.curve[i].cond_cov_percent);
  }

  std::printf("\nfinal: ChatFuzz %.2f%%  TheHuzz %.2f%%\n",
              rc.final_cov_percent, rh.final_cov_percent);
  const double early = rc.curve[points / 24].cond_cov_percent;  // ~1st hour
  std::printf("shape check vs paper: ChatFuzz within the first paper-hour "
              "(%.2f%%) already exceeds TheHuzz at paper-hour 8 (%.2f%%): %s\n",
              early, rh.curve[std::min(points - 1, points / 3)].cond_cov_percent,
              early >= rh.curve[std::min(points - 1, points / 3)].cond_cov_percent
                  ? "PASS" : "CHECK");
  return 0;
}
