// §V-A speed table: time for each fuzzer to reach the coverage level
// ChatFuzz attains in its first paper-hour. The paper reports ChatFuzz at
// 75% in 52 min vs ~30 h for TheHuzz (34.6x), and TheHuzz ~3.33x faster
// than DifuzzRTL overall.
//
//   usage: tab_speedup [tests_per_fuzzer]
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"

using namespace chatfuzz;
using namespace chatfuzz::bench;

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3000;
  print_header("SV-A: time to ChatFuzz's one-hour coverage level",
               "ChatFuzz 75% in 52 min; TheHuzz ~30 h (34.6x slower); "
               "TheHuzz ~3.33x faster than DifuzzRTL");

  core::CampaignConfig cfg = rocket_campaign(n);
  cfg.checkpoint_every = std::max<std::size_t>(n / 200, 10);

  std::fprintf(stderr, "[speedup] ChatFuzz...\n");
  auto chat = make_chatfuzz();
  const core::CampaignResult rc = core::run_campaign(*chat, cfg);

  std::fprintf(stderr, "[speedup] TheHuzz...\n");
  baselines::TheHuzzFuzzer huzz(31);
  const core::CampaignResult rh = core::run_campaign(huzz, cfg);

  std::fprintf(stderr, "[speedup] DifuzzRTL...\n");
  baselines::DifuzzRtlFuzzer difuzz(31);
  const core::CampaignResult rd = core::run_campaign(difuzz, cfg);

  // Threshold: ChatFuzz's coverage after one paper-hour of tests.
  const std::size_t hour_tests =
      static_cast<std::size_t>(kPaperTestsPerHour);
  double threshold = 0.0;
  for (const auto& p : rc.curve) {
    if (p.tests <= hour_tests) threshold = p.cond_cov_percent;
  }
  std::printf("threshold: ChatFuzz coverage after ~1 paper-hour of tests "
              "(%zu tests) = %.2f%%\n\n", hour_tests, threshold);

  auto row = [&](const core::CampaignResult& r) {
    const double h = r.hours_to(threshold);
    std::printf("%-10s | ", r.fuzzer.c_str());
    if (h >= 0) {
      std::printf("%8.2f h (at %6zu tests)\n", h, r.tests_to(threshold));
    } else {
      std::printf("   not reached within %zu tests (max %.2f%%)\n",
                  r.tests_run, r.final_cov_percent);
    }
  };
  std::printf("%-10s | time to %.2f%% cond-cov\n", "fuzzer", threshold);
  std::printf("-----------+------------------------------------\n");
  row(rc);
  row(rh);
  row(rd);

  const double tc = rc.hours_to(threshold);
  const double th = rh.hours_to(threshold);
  const double td = rd.hours_to(threshold);
  if (tc > 0 && th > 0) {
    std::printf("\nChatFuzz speedup over TheHuzz:   %.1fx (paper: 34.6x)\n",
                th / tc);
  } else if (tc > 0) {
    std::printf("\nChatFuzz speedup over TheHuzz:   >%.1fx (TheHuzz never "
                "reached the threshold; paper: 34.6x)\n",
                rh.hours / tc);
  }
  if (th > 0 && td > 0) {
    std::printf("TheHuzz speedup over DifuzzRTL:  %.2fx (paper: ~3.33x)\n",
                td / th);
  }
  return 0;
}
