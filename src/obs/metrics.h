#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.h"

// Process-wide metrics registry: counters (monotonic), gauges (last value),
// and histograms (distribution summaries built on util/stats.h). Counters
// and gauges are lock-free to update; registration takes a mutex once, after
// which callers hold a stable pointer (metrics are never destroyed while the
// process runs). Like tracing, metrics are observation-only: nothing in the
// campaign's deterministic state may read them back.
namespace obs {

class Counter {
 public:
  void add(std::uint64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void inc() { add(1); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double x) { v_.store(x, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Distribution summary: count/mean/stddev/min/max plus fixed buckets over
// [lo, hi) from chatfuzz::Histogram. Mutex-guarded; intended for batch-rate
// call sites (per-batch latencies), not per-instruction loops.
class Histo {
 public:
  Histo(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), nbuckets_(buckets), hist_(lo, hi, buckets) {}

  void add(double x);
  void reset();

  struct Summary {
    std::uint64_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  Summary summary() const;

 private:
  double lo_, hi_;
  std::size_t nbuckets_;
  mutable std::mutex mu_;
  chatfuzz::Histogram hist_;
  chatfuzz::RunningStat stat_;
  double min_ = 0.0, max_ = 0.0;
};

class Registry {
 public:
  // Lookup-or-create by name; returned pointers stay valid for the process
  // lifetime. Names are dot-separated lowercase ("sim.tlb_hits").
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histo* histogram(const std::string& name, double lo, double hi,
                   std::size_t buckets);

  // Flat, name-sorted snapshot. Histograms expand into .count/.mean/.min/
  // .max/.stddev entries so every value is one scalar.
  std::vector<std::pair<std::string, double>> snapshot() const;

  // One JSON object {"name":value,...} in snapshot order, with extra
  // key/value pairs prepended (e.g. {"t_ms":..,"batch":..}).
  std::string to_json(
      const std::vector<std::pair<std::string, double>>& extras = {}) const;

  // Zero all metrics (new campaign in the same process, tests).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histo>> histos_;
};

// The process-wide registry.
Registry& registry();

// Shorthands for the common "bump a named counter / set a named gauge" call
// sites. The name lookup takes the registry mutex — hot loops should cache
// the Counter* instead.
Counter* counter(const std::string& name);
Gauge* gauge(const std::string& name);

// Periodic NDJSON stats emitter: one flat JSON object per line, written at
// most every `every_ms` (per the obs clock) when maybe_write() is called at
// a batch boundary, plus an unconditional final line from finish().
class StatsWriter {
 public:
  StatsWriter() = default;
  ~StatsWriter();

  StatsWriter(const StatsWriter&) = delete;
  StatsWriter& operator=(const StatsWriter&) = delete;

  bool open(const std::string& path, std::uint64_t every_ms,
            std::string* err = nullptr);
  bool is_open() const { return f_ != nullptr; }

  void maybe_write(const std::vector<std::pair<std::string, double>>& extras);
  void finish(const std::vector<std::pair<std::string, double>>& extras);

 private:
  void write_line(const std::vector<std::pair<std::string, double>>& extras);

  std::FILE* f_ = nullptr;
  std::uint64_t every_ns_ = 0;
  std::uint64_t last_ns_ = 0;
  bool wrote_any_ = false;
};

// Human-readable final summary of the registry (name-sorted, aligned), for
// the end-of-campaign table on stderr.
std::string render_summary();

}  // namespace obs
