#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include <unistd.h>

#include "obs/clock.h"

namespace obs {
namespace detail {

std::atomic<bool> g_trace_enabled{false};

namespace {

// Registry of every thread buffer ever created. Entries are never destroyed
// while the process runs: a thread_local caches the raw pointer, and threads
// from persistent pools (e.g. the ML matmul pool) can outlive any number of
// trace sessions. trace_start() clears contents instead of freeing.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<TraceRing>> rings;
  std::uint32_t capacity = 1 << 16;  // for rings created after trace_start
  std::uint64_t next_tid = 0;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlive all threads
  return *r;
}

}  // namespace

TraceRing::TraceRing(std::uint32_t capacity, std::uint64_t tid)
    : events_(new TraceEvent[capacity]), capacity_(capacity), tid_(tid) {}

TraceRing::~TraceRing() { delete[] events_; }

TraceRing* this_thread_ring() {
  thread_local TraceRing* ring = nullptr;
  if (!ring) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    auto owned = std::make_unique<TraceRing>(reg.capacity, reg.next_tid++);
    ring = owned.get();
    reg.rings.push_back(std::move(owned));
  }
  return ring;
}

}  // namespace detail

void ScopedSpan::begin(const char* name) {
  name_ = name;
  start_ns_ = now_ns();
}

void ScopedSpan::end() {
  // Record even if tracing was disabled mid-span: the push is cheap and the
  // buffer is cleared on the next trace_start anyway.
  detail::this_thread_ring()->push(name_, start_ns_, now_ns());
}

void trace_start(std::uint32_t ring_capacity) {
  auto& reg = detail::registry();
  {
    std::lock_guard<std::mutex> lk(reg.mu);
    reg.capacity = ring_capacity == 0 ? 1 : ring_capacity;
    for (auto& r : reg.rings) r->clear();
  }
  detail::g_trace_enabled.store(true, std::memory_order_release);
}

void trace_stop() {
  detail::g_trace_enabled.store(false, std::memory_order_release);
}

std::uint64_t trace_span_count() {
  auto& reg = detail::registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  std::uint64_t n = 0;
  for (auto& r : reg.rings) n += r->size();
  return n;
}

std::uint64_t trace_dropped_count() {
  auto& reg = detail::registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  std::uint64_t n = 0;
  for (auto& r : reg.rings) n += r->dropped();
  return n;
}

namespace {

// Escape a span name for JSON. Names are C identifiers-with-dots in
// practice, but be safe about it.
void append_escaped(std::string& out, const char* s) {
  for (const char* p = s; *p; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

bool write_chrome_trace(const std::string& path, std::string* err) {
  auto& reg = detail::registry();
  std::lock_guard<std::mutex> lk(reg.mu);

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    if (err) *err = "cannot open " + path;
    return false;
  }

  const long pid = static_cast<long>(::getpid());
  std::string out;
  out.reserve(1 << 16);
  out += "{\"traceEvents\":[";
  bool first = true;
  std::uint64_t dropped = 0;
  char buf[160];
  for (auto& r : reg.rings) {
    dropped += r->dropped();
    const std::uint32_t n = r->size();
    for (std::uint32_t i = 0; i < n; ++i) {
      const TraceEvent& e = r->at(i);
      if (!first) out += ',';
      first = false;
      // Complete ("X") events; Chrome wants microseconds. Category = span
      // name prefix before the first '.', so Perfetto can group by layer.
      out += "{\"ph\":\"X\",\"name\":\"";
      append_escaped(out, e.name);
      out += "\",\"cat\":\"";
      const char* dot = e.name;
      while (*dot && *dot != '.') {
        if (*dot == '"' || *dot == '\\') break;  // odd name: bail to full
        ++dot;
      }
      if (*dot == '.') {
        out.append(e.name, static_cast<std::size_t>(dot - e.name));
      } else {
        append_escaped(out, e.name);
      }
      const double ts_us = static_cast<double>(e.start_ns) / 1000.0;
      const double dur_us =
          static_cast<double>(e.end_ns - e.start_ns) / 1000.0;
      std::snprintf(buf, sizeof buf,
                    "\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%ld,\"tid\":%" PRIu64
                    "}",
                    ts_us, dur_us, pid, r->tid());
      out += buf;
      if (out.size() >= (1u << 16)) {
        if (std::fwrite(out.data(), 1, out.size(), f) != out.size()) {
          std::fclose(f);
          if (err) *err = "short write to " + path;
          return false;
        }
        out.clear();
      }
    }
  }
  std::snprintf(buf, sizeof buf,
                "],\"otherData\":{\"droppedSpans\":\"%" PRIu64 "\"}}\n",
                dropped);
  out += buf;
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  if (std::fclose(f) != 0 || !ok) {
    if (err) *err = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace obs
