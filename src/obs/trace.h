#pragma once

#include <atomic>
#include <cstdint>
#include <string>

// Scoped-span tracing with per-thread lock-free buffers, exported as Chrome
// trace_event JSON (load in chrome://tracing or https://ui.perfetto.dev).
//
// Contract with the rest of the system:
//  * Near-zero overhead when disabled: OBS_SPAN compiles to one relaxed
//    atomic load and two branches; no allocation, no clock read.
//  * Never blocks, never allocates on the hot path when enabled: each thread
//    appends into its own fixed-capacity buffer; a full buffer drops the
//    newest span and counts the drop.
//  * Out-of-band by construction: spans record clock values only, never feed
//    back into campaign state, so traced and untraced runs are byte-identical.
//
// Span names must be string literals (or otherwise outlive the trace
// session); only the pointer is stored.
namespace obs {

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
};

namespace detail {

// Single-producer append buffer. The owning thread writes events and
// publishes them with a release store of size_; the exporter reads size_
// with acquire and then the prefix it covers. Buffers live in a global
// registry and are never freed (threads from persistent pools may outlive
// many trace sessions), only reset.
class TraceRing {
 public:
  TraceRing(std::uint32_t capacity, std::uint64_t tid);
  ~TraceRing();

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  // Producer side (owning thread only).
  void push(const char* name, std::uint64_t start_ns, std::uint64_t end_ns) {
    const std::uint32_t n = size_.load(std::memory_order_relaxed);
    if (n >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events_[n] = TraceEvent{name, start_ns, end_ns};
    size_.store(n + 1, std::memory_order_release);
  }

  // Consumer side (exporter, any thread).
  std::uint32_t size() const { return size_.load(std::memory_order_acquire); }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  const TraceEvent& at(std::uint32_t i) const { return events_[i]; }
  std::uint32_t capacity() const { return capacity_; }
  std::uint64_t tid() const { return tid_; }

  // Reset for a new session (no concurrent producers).
  void clear() {
    size_.store(0, std::memory_order_release);
    dropped_.store(0, std::memory_order_relaxed);
  }

 private:
  TraceEvent* events_;
  std::uint32_t capacity_;
  std::uint64_t tid_;
  std::atomic<std::uint32_t> size_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

extern std::atomic<bool> g_trace_enabled;

TraceRing* this_thread_ring();

}  // namespace detail

inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

// Start a trace session: clears all existing per-thread buffers, sets the
// per-thread capacity for buffers created afterwards, and enables OBS_SPAN.
// Not safe to call while spans are being recorded on other threads.
void trace_start(std::uint32_t ring_capacity = 1 << 16);

// Stop recording (buffers keep their contents until the next trace_start).
void trace_stop();

// Total spans recorded / dropped across all thread buffers.
std::uint64_t trace_span_count();
std::uint64_t trace_dropped_count();

// Serialize all recorded spans as Chrome trace_event JSON. Returns false on
// I/O error. Safe after trace_stop(); includes a drop counter in otherData.
bool write_chrome_trace(const std::string& path, std::string* err = nullptr);

// RAII span. Use via OBS_SPAN; records [ctor, dtor] on the calling thread's
// buffer when tracing is enabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (trace_enabled()) begin(name);
  }
  ~ScopedSpan() {
    if (name_) end();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void begin(const char* name);
  void end();

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace obs

#define OBS_SPAN_CONCAT2(a, b) a##b
#define OBS_SPAN_CONCAT(a, b) OBS_SPAN_CONCAT2(a, b)
// Scoped span covering the rest of the enclosing block.
#define OBS_SPAN(name) \
  ::obs::ScopedSpan OBS_SPAN_CONCAT(obs_span_, __COUNTER__)(name)
