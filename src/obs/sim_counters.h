#pragma once

#include <cstdint>

// Per-simulator telemetry counters (predecode / TLB / superblock hit rates).
// Plain uint64 fields: the simulators bump private copies on their hot paths
// (no atomics per retired instruction) and the campaign worker drains them
// into the process-wide obs registry once per test via take_obs_counters().
// Observation-only — nothing architectural may ever read these.
namespace obs {

struct SimCounters {
  std::uint64_t predecode_hits = 0;
  std::uint64_t predecode_misses = 0;
  std::uint64_t tlb_hits = 0;
  std::uint64_t tlb_misses = 0;
  std::uint64_t sb_hits = 0;
  std::uint64_t sb_builds = 0;

  SimCounters& operator+=(const SimCounters& o) {
    predecode_hits += o.predecode_hits;
    predecode_misses += o.predecode_misses;
    tlb_hits += o.tlb_hits;
    tlb_misses += o.tlb_misses;
    sb_hits += o.sb_hits;
    sb_builds += o.sb_builds;
    return *this;
  }
};

}  // namespace obs
