#pragma once

#include <atomic>
#include <cstdint>

// Timestamp seam for the telemetry subsystem. Everything in obs/ reads time
// through obs::now_ns() so tests can install a ManualClock and get
// deterministic trace/stats output. The default clock is monotonic
// (steady_clock) — wall-clock jumps must never reorder spans.
//
// Telemetry is out-of-band by contract: nothing in the campaign's
// deterministic state may ever read this clock.
namespace obs {

class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::uint64_t now_ns() = 0;
};

// Install a clock (nullptr restores the default steady clock). The pointer
// must outlive all telemetry use; tests install/restore around each case.
void set_clock(Clock* c);

// Nanoseconds from the current clock. The default clock is rebased so the
// first call in a process returns a small value (readable trace timestamps).
std::uint64_t now_ns();

// Fixed-point test clock: returns a programmed value, advanced manually.
// Atomic so worker threads can read it while the test thread advances it.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::uint64_t start_ns = 0) : t_(start_ns) {}
  std::uint64_t now_ns() override { return t_.load(std::memory_order_relaxed); }
  void advance_ns(std::uint64_t d) { t_.fetch_add(d, std::memory_order_relaxed); }
  void set_ns(std::uint64_t t) { t_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> t_;
};

}  // namespace obs
