#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/clock.h"

namespace obs {

void Histo::add(double x) {
  std::lock_guard<std::mutex> lk(mu_);
  if (stat_.count() == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  hist_.add(x);
  stat_.add(x);
}

void Histo::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  hist_ = chatfuzz::Histogram(lo_, hi_, nbuckets_);
  stat_.reset();
  min_ = max_ = 0.0;
}

Histo::Summary Histo::summary() const {
  std::lock_guard<std::mutex> lk(mu_);
  Summary s;
  s.count = static_cast<std::uint64_t>(stat_.count());
  s.mean = stat_.mean();
  s.stddev = stat_.stddev();
  s.min = min_;
  s.max = max_;
  return s;
}

Counter* Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histo* Registry::histogram(const std::string& name, double lo, double hi,
                           std::size_t buckets) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histos_[name];
  if (!slot) slot = std::make_unique<Histo>(lo, hi, buckets);
  return slot.get();
}

std::vector<std::pair<std::string, double>> Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters_.size() + gauges_.size() + 5 * histos_.size());
  // std::map iteration is already name-sorted; merge the three kinds and
  // re-sort once at the end so histogram expansions interleave correctly.
  for (const auto& [name, c] : counters_)
    out.emplace_back(name, static_cast<double>(c->value()));
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  for (const auto& [name, h] : histos_) {
    const Histo::Summary s = h->summary();
    out.emplace_back(name + ".count", static_cast<double>(s.count));
    out.emplace_back(name + ".mean", s.mean);
    out.emplace_back(name + ".min", s.min);
    out.emplace_back(name + ".max", s.max);
    out.emplace_back(name + ".stddev", s.stddev);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

namespace {

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";  // NDJSON consumers choke on NaN/Inf; clamp to 0
    return;
  }
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.10g", v);
  }
  out += buf;
}

void append_json_kv(std::string& out, const std::string& k, double v,
                    bool& first) {
  if (!first) out += ',';
  first = false;
  out += '"';
  for (char c : k) {  // metric names are plain, but stay safe
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\":";
  append_json_number(out, v);
}

}  // namespace

std::string Registry::to_json(
    const std::vector<std::pair<std::string, double>>& extras) const {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : extras) append_json_kv(out, k, v, first);
  for (const auto& [k, v] : snapshot()) append_json_kv(out, k, v, first);
  out += '}';
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histos_) h->reset();
}

Registry& registry() {
  static Registry* r = new Registry();  // leaked: callers cache raw pointers
  return *r;
}

Counter* counter(const std::string& name) { return registry().counter(name); }
Gauge* gauge(const std::string& name) { return registry().gauge(name); }

StatsWriter::~StatsWriter() {
  if (f_) std::fclose(f_);
}

bool StatsWriter::open(const std::string& path, std::uint64_t every_ms,
                       std::string* err) {
  f_ = std::fopen(path.c_str(), "wb");
  if (!f_) {
    if (err) *err = "cannot open " + path;
    return false;
  }
  every_ns_ = every_ms * 1000000ull;
  last_ns_ = 0;
  wrote_any_ = false;
  return true;
}

void StatsWriter::write_line(
    const std::vector<std::pair<std::string, double>>& extras) {
  std::vector<std::pair<std::string, double>> all;
  all.reserve(extras.size() + 1);
  all.emplace_back("t_ms", static_cast<double>(now_ns()) / 1e6);
  all.insert(all.end(), extras.begin(), extras.end());
  std::string line = registry().to_json(all);
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), f_);
  std::fflush(f_);
  wrote_any_ = true;
}

void StatsWriter::maybe_write(
    const std::vector<std::pair<std::string, double>>& extras) {
  if (!f_) return;
  const std::uint64_t t = now_ns();
  if (wrote_any_ && every_ns_ > 0 && t - last_ns_ < every_ns_) return;
  last_ns_ = t;
  write_line(extras);
}

void StatsWriter::finish(
    const std::vector<std::pair<std::string, double>>& extras) {
  if (!f_) return;
  write_line(extras);
  std::fclose(f_);
  f_ = nullptr;
}

std::string render_summary() {
  const auto snap = registry().snapshot();
  std::size_t width = 0;
  for (const auto& [k, v] : snap) width = std::max(width, k.size());
  std::string out;
  out += "== telemetry summary ==\n";
  char buf[96];
  for (const auto& [k, v] : snap) {
    std::string num;
    append_json_number(num, v);
    std::snprintf(buf, sizeof buf, "  %-*s %s\n", static_cast<int>(width),
                  k.c_str(), num.c_str());
    out += buf;
  }
  return out;
}

}  // namespace obs
