#include "obs/clock.h"

#include <chrono>

namespace obs {
namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Rebase the default clock to process start so trace timestamps are small.
const std::uint64_t g_epoch_ns = steady_now_ns();

std::atomic<Clock*> g_clock{nullptr};

}  // namespace

void set_clock(Clock* c) { g_clock.store(c, std::memory_order_release); }

std::uint64_t now_ns() {
  Clock* c = g_clock.load(std::memory_order_acquire);
  if (c) return c->now_ns();
  return steady_now_ns() - g_epoch_ns;
}

}  // namespace obs
