#include "riscv/superblock.h"

namespace chatfuzz::riscv {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t hash_start(std::uint64_t start) {
  // Same mixer the predecode/coverage layers use for open addressing.
  std::uint64_t h = start;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace

std::uint64_t bbv_phase_hash(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& blocks) {
  std::uint64_t h = kFnvOffset;
  for (const auto& [start, count] : blocks) {
    h = fnv_mix(h, start);
    h = fnv_mix(h, count);
  }
  return h == 0 ? 1 : h;  // 0 is the "unset" sentinel in the corpus store
}

std::uint64_t BbvRecorder::phase_hash() const {
  std::uint64_t h = kFnvOffset;
  for (std::size_t id = 0; id < blocks_.size(); ++id) {
    h = fnv_mix(h, blocks_[id].first);
    h = fnv_mix(h, ends_[id]);
    h = fnv_mix(h, blocks_[id].second);
  }
  return h == 0 ? 1 : h;  // 0 is the "unset" sentinel in the corpus store
}

void BbvRecorder::begin() {
  open_ = false;
  block_start_ = 0;
  block_end_ = 0;
  blocks_.clear();
  ends_.clear();
  table_.assign(table_.size(), 0);
}

void BbvRecorder::close_block() {
  open_ = false;
  // Find-or-assign the id for (block_start_, block_end_) (open-addressed,
  // power-of-two table, ids dense in discovery order).
  if ((blocks_.size() + 1) * 2 > table_.size()) {
    std::vector<std::uint32_t> grown(table_.size() * 2, 0);
    const std::size_t mask = grown.size() - 1;
    for (std::size_t id = 0; id < blocks_.size(); ++id) {
      std::size_t i = hash_start(blocks_[id].first ^
                                 hash_start(ends_[id])) & mask;
      while (grown[i] != 0) i = (i + 1) & mask;
      grown[i] = static_cast<std::uint32_t>(id + 1);
    }
    table_ = std::move(grown);
  }
  const std::size_t mask = table_.size() - 1;
  std::size_t i = hash_start(block_start_ ^ hash_start(block_end_)) & mask;
  while (table_[i] != 0) {
    const std::uint32_t id = table_[i] - 1;
    if (blocks_[id].first == block_start_ && ends_[id] == block_end_) {
      ++blocks_[id].second;
      return;
    }
    i = (i + 1) & mask;
  }
  table_[i] = static_cast<std::uint32_t>(blocks_.size() + 1);
  blocks_.emplace_back(block_start_, 1);
  ends_.push_back(block_end_);
}

}  // namespace chatfuzz::riscv
