#include <cstdarg>
#include "riscv/disasm.h"

#include <cstdio>

#include "riscv/csr.h"
#include "riscv/decode.h"

namespace chatfuzz::riscv {

namespace {
std::string format_str(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[128];
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

const char* rn(std::uint8_t r) { return reg_name(r).data(); }

/// Architectural CSR name, or the raw address in hex for unmodeled ones.
std::string csr_str(std::uint16_t addr) {
  if (const char* n = csr::name(addr)) return n;
  return format_str("0x%x", addr);
}
}  // namespace

std::string disasm(const Decoded& d) {
  if (!d.valid()) return format_str(".word 0x%08x", d.raw);
  const InstrSpec& s = spec(d.op);
  const char* m = s.mnemonic.data();
  switch (s.format) {
    case Format::kR:
      return format_str("%s %s, %s, %s", m, rn(d.rd), rn(d.rs1), rn(d.rs2));
    case Format::kI:
      switch (d.op) {
        case Opcode::kLb:
        case Opcode::kLh:
        case Opcode::kLw:
        case Opcode::kLd:
        case Opcode::kLbu:
        case Opcode::kLhu:
        case Opcode::kLwu:
          return format_str("%s %s, %lld(%s)", m, rn(d.rd),
                            static_cast<long long>(d.imm), rn(d.rs1));
        case Opcode::kJalr:
          return format_str("%s %s, %lld(%s)", m, rn(d.rd),
                            static_cast<long long>(d.imm), rn(d.rs1));
        default:
          return format_str("%s %s, %s, %lld", m, rn(d.rd), rn(d.rs1),
                            static_cast<long long>(d.imm));
      }
    case Format::kIShift64:
    case Format::kIShift32:
      return format_str("%s %s, %s, %lld", m, rn(d.rd), rn(d.rs1),
                        static_cast<long long>(d.imm));
    case Format::kS:
      return format_str("%s %s, %lld(%s)", m, rn(d.rs2),
                        static_cast<long long>(d.imm), rn(d.rs1));
    case Format::kB:
      return format_str("%s %s, %s, %lld", m, rn(d.rs1), rn(d.rs2),
                        static_cast<long long>(d.imm));
    case Format::kU:
      return format_str("%s %s, 0x%llx", m, rn(d.rd),
                        static_cast<unsigned long long>(
                            (static_cast<std::uint64_t>(d.imm) >> 12) & 0xfffff));
    case Format::kJ:
      return format_str("%s %s, %lld", m, rn(d.rd),
                        static_cast<long long>(d.imm));
    case Format::kFence:
    case Format::kSystem:
      return m;
    case Format::kSfence:
      if (d.rs1 == 0 && d.rs2 == 0) return m;
      return format_str("%s %s, %s", m, rn(d.rs1), rn(d.rs2));
    case Format::kCsr:
      return format_str("%s %s, %s, %s", m, rn(d.rd), csr_str(d.csr).c_str(),
                        rn(d.rs1));
    case Format::kCsrImm:
      return format_str("%s %s, %s, %u", m, rn(d.rd), csr_str(d.csr).c_str(),
                        d.rs1);
    case Format::kAmo:
      return format_str("%s%s %s, %s, (%s)", m,
                        d.aq && d.rl ? ".aqrl" : d.aq ? ".aq" : d.rl ? ".rl" : "",
                        rn(d.rd), rn(d.rs2), rn(d.rs1));
    case Format::kLoadRes:
      return format_str("%s%s %s, (%s)", m,
                        d.aq && d.rl ? ".aqrl" : d.aq ? ".aq" : d.rl ? ".rl" : "",
                        rn(d.rd), rn(d.rs1));
  }
  return format_str(".word 0x%08x", d.raw);
}

std::string disasm(std::uint32_t raw) { return disasm(decode(raw)); }

std::string disasm_program(std::span<const std::uint32_t> program,
                           std::uint64_t base_pc) {
  std::string out;
  std::uint64_t pc = base_pc;
  for (std::uint32_t w : program) {
    out += format_str("%8llx:  %08x  ", static_cast<unsigned long long>(pc), w);
    out += disasm(w);
    out += '\n';
    pc += 4;
  }
  return out;
}

DisasmAudit audit(std::span<const std::uint32_t> program) {
  DisasmAudit a;
  a.total = program.size();
  a.invalid = count_invalid(program);
  return a;
}

}  // namespace chatfuzz::riscv
