// Direct-mapped predecode cache: memoizes riscv::decode() per fetch address
// so an interpreter loop pays the table scan and field extraction once per
// static instruction instead of once per retired instruction (the classic
// fast-interpreter predecoded-dispatch idea). Shared by the golden-model
// IsaSim (where a hit also skips the sparse-memory refetch) and the rtlsim
// core's decode stage (where fetched bytes still come from the modeled I$,
// and the cached entry is tag-checked against them).
//
// Coherence: entries are invalidated on stores to RAM and on fence.i, and
// the whole cache is flushed on reset — so a hit is always the decode of the
// bytes currently at that address. The two-argument lookup() additionally
// tag-checks the caller-supplied word, which keeps it correct even when the
// caller's fetch path can serve stale bytes on purpose (the rtlsim
// stale-icache bug injection).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "riscv/decode.h"
#include "riscv/instr.h"

namespace chatfuzz::riscv {

class PredecodeCache {
 public:
  struct Entry {
    std::uint64_t pc = kEmpty;
    std::uint32_t raw = 0;
    bool listed = false;  // slot is on the used-slot list (see flush())
    Decoded d{};
  };

  /// 4096 word-granular entries (16 KiB of straight-line code mapped
  /// conflict-free) — comfortably above the harness's program sizes while
  /// keeping the cache itself far smaller than L2.
  static constexpr std::size_t kDefaultEntries = 4096;

  explicit PredecodeCache(std::size_t entries = kDefaultEntries)
      : mask_(entries - 1), entries_(entries) {
    assert(entries > 0 && (entries & (entries - 1)) == 0);
  }

  /// Fetch fast path: the entry for `pc` if one is cached, else nullptr.
  /// A non-null result means `entry->raw` is the word currently stored at
  /// pc (invalidation keeps this true) and `entry->d` its decode.
  const Entry* find(std::uint64_t pc) const {
    const Entry& e = entries_[index(pc)];
    if (e.pc == pc) {
      ++hits_;
      return &e;
    }
    ++misses_;
    return nullptr;
  }

  /// Record the word fetched at `pc` and return its decode.
  const Decoded& insert(std::uint64_t pc, std::uint32_t raw) {
    Entry& e = touched(pc);
    e.pc = pc;
    e.raw = raw;
    e.d = decode(raw);
    return e.d;
  }

  /// Decode-with-memoization for callers that fetched `raw` themselves:
  /// returns the cached decode when both pc and word match, refills
  /// otherwise. Always equivalent to decode(raw).
  const Decoded& lookup(std::uint64_t pc, std::uint32_t raw) {
    Entry& e = touched(pc);
    if (e.pc != pc || e.raw != raw) {
      e.pc = pc;
      e.raw = raw;
      e.d = decode(raw);
      ++misses_;
    } else {
      ++hits_;
    }
    return e.d;
  }

  /// Telemetry: probes served from / refilled into the cache since the last
  /// take. Observation-only (mutable so the const fast path can count).
  std::uint64_t take_hits() { const auto h = hits_; hits_ = 0; return h; }
  std::uint64_t take_misses() { const auto m = misses_; misses_ = 0; return m; }

  /// Drop entries overlapping the stored byte range [addr, addr + size).
  /// At most three word slots are touched, so this is cheap enough to call
  /// on every RAM store. Iterates by word count, not by comparing end
  /// addresses — a store near the top of the address space (the simulators'
  /// in_ram check wraps there) must not wrap this loop around 2^64.
  void invalidate(std::uint64_t addr, unsigned size) {
    std::uint64_t pc = addr & ~3ull;
    const std::uint64_t span = (addr - pc) + size;  // bytes from word start
    for (std::uint64_t n = (span + 3) / 4; n > 0; --n, pc += 4) {
      Entry& e = entries_[index(pc)];
      if (e.pc == pc) e.pc = kEmpty;
    }
  }

  /// Drop everything (fence.i, reset, external memory writes). O(slots
  /// ever filled since the last flush), not O(cache size): per-test resets
  /// only sweep the footprint of the program that actually ran.
  void flush() {
    for (const std::uint32_t idx : used_) {
      entries_[idx].pc = kEmpty;
      entries_[idx].listed = false;
    }
    used_.clear();
  }

 private:
  static constexpr std::uint64_t kEmpty = ~0ull;

  std::size_t index(std::uint64_t pc) const { return (pc >> 2) & mask_; }

  /// The slot for `pc`, added to the used-slot list on first touch. The
  /// `listed` flag survives invalidate(), so a slot is listed at most once
  /// per flush cycle.
  Entry& touched(std::uint64_t pc) {
    const std::size_t i = index(pc);
    Entry& e = entries_[i];
    if (!e.listed) {
      e.listed = true;
      used_.push_back(static_cast<std::uint32_t>(i));
    }
    return e;
  }

  std::size_t mask_;
  std::vector<Entry> entries_;
  std::vector<std::uint32_t> used_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace chatfuzz::riscv
