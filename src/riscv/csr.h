// CSR address map and fields shared by the golden model and the pipeline
// model. Only the CSRs RocketCore exposes to the fuzzed surface are modeled;
// unknown CSR addresses raise illegal-instruction, as in hardware.
#pragma once

#include <cstdint>

namespace chatfuzz::riscv {

/// Privilege levels, encoded as in the RISC-V privileged spec.
enum class Priv : std::uint8_t { kUser = 0, kSupervisor = 1, kMachine = 3 };

namespace csr {
// Machine-level
inline constexpr std::uint16_t kMstatus = 0x300;
inline constexpr std::uint16_t kMisa = 0x301;
inline constexpr std::uint16_t kMedeleg = 0x302;
inline constexpr std::uint16_t kMideleg = 0x303;
inline constexpr std::uint16_t kMie = 0x304;
inline constexpr std::uint16_t kMtvec = 0x305;
inline constexpr std::uint16_t kMcounteren = 0x306;
inline constexpr std::uint16_t kMscratch = 0x340;
inline constexpr std::uint16_t kMepc = 0x341;
inline constexpr std::uint16_t kMcause = 0x342;
inline constexpr std::uint16_t kMtval = 0x343;
inline constexpr std::uint16_t kMip = 0x344;
inline constexpr std::uint16_t kMcycle = 0xb00;
inline constexpr std::uint16_t kMinstret = 0xb02;
inline constexpr std::uint16_t kMvendorid = 0xf11;
inline constexpr std::uint16_t kMarchid = 0xf12;
inline constexpr std::uint16_t kMimpid = 0xf13;
inline constexpr std::uint16_t kMhartid = 0xf14;
// Supervisor-level
inline constexpr std::uint16_t kSstatus = 0x100;
inline constexpr std::uint16_t kSie = 0x104;
inline constexpr std::uint16_t kStvec = 0x105;
inline constexpr std::uint16_t kScounteren = 0x106;
inline constexpr std::uint16_t kSscratch = 0x140;
inline constexpr std::uint16_t kSepc = 0x141;
inline constexpr std::uint16_t kScause = 0x142;
inline constexpr std::uint16_t kStval = 0x143;
inline constexpr std::uint16_t kSip = 0x144;
inline constexpr std::uint16_t kSatp = 0x180;
// User-level counters
inline constexpr std::uint16_t kCycle = 0xc00;
inline constexpr std::uint16_t kTime = 0xc01;
inline constexpr std::uint16_t kInstret = 0xc02;

/// Lowest privilege allowed to access a CSR (bits 9:8 of the address).
inline Priv min_priv(std::uint16_t addr) {
  switch ((addr >> 8) & 3) {
    case 0: return Priv::kUser;
    case 1: return Priv::kSupervisor;
    default: return Priv::kMachine;
  }
}

/// Read-only CSR addresses have top two bits == 0b11.
inline bool is_read_only(std::uint16_t addr) { return (addr >> 10) == 3; }
}  // namespace csr

/// Synchronous exception causes (mcause values), per the privileged spec.
enum class Exception : std::uint8_t {
  kInstrAddrMisaligned = 0,
  kInstrAccessFault = 1,
  kIllegalInstruction = 2,
  kBreakpoint = 3,
  kLoadAddrMisaligned = 4,
  kLoadAccessFault = 5,
  kStoreAddrMisaligned = 6,
  kStoreAccessFault = 7,
  kEcallFromU = 8,
  kEcallFromS = 9,
  kEcallFromM = 11,
  kNone = 0xff,
};

/// Human-readable cause name for reports and mismatch signatures.
const char* exception_name(Exception e);

}  // namespace chatfuzz::riscv
