// CSR address map and fields shared by the golden model and the pipeline
// model. Only the CSRs RocketCore exposes to the fuzzed surface are modeled;
// unknown CSR addresses raise illegal-instruction, as in hardware.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace chatfuzz::riscv {

/// Privilege levels, encoded as in the RISC-V privileged spec.
enum class Priv : std::uint8_t { kUser = 0, kSupervisor = 1, kMachine = 3 };

namespace csr {
// Machine-level
inline constexpr std::uint16_t kMstatus = 0x300;
inline constexpr std::uint16_t kMisa = 0x301;
inline constexpr std::uint16_t kMedeleg = 0x302;
inline constexpr std::uint16_t kMideleg = 0x303;
inline constexpr std::uint16_t kMie = 0x304;
inline constexpr std::uint16_t kMtvec = 0x305;
inline constexpr std::uint16_t kMcounteren = 0x306;
inline constexpr std::uint16_t kMscratch = 0x340;
inline constexpr std::uint16_t kMepc = 0x341;
inline constexpr std::uint16_t kMcause = 0x342;
inline constexpr std::uint16_t kMtval = 0x343;
inline constexpr std::uint16_t kMip = 0x344;
inline constexpr std::uint16_t kMcycle = 0xb00;
inline constexpr std::uint16_t kMinstret = 0xb02;
inline constexpr std::uint16_t kMvendorid = 0xf11;
inline constexpr std::uint16_t kMarchid = 0xf12;
inline constexpr std::uint16_t kMimpid = 0xf13;
inline constexpr std::uint16_t kMhartid = 0xf14;
// Supervisor-level
inline constexpr std::uint16_t kSstatus = 0x100;
inline constexpr std::uint16_t kSie = 0x104;
inline constexpr std::uint16_t kStvec = 0x105;
inline constexpr std::uint16_t kScounteren = 0x106;
inline constexpr std::uint16_t kSscratch = 0x140;
inline constexpr std::uint16_t kSepc = 0x141;
inline constexpr std::uint16_t kScause = 0x142;
inline constexpr std::uint16_t kStval = 0x143;
inline constexpr std::uint16_t kSip = 0x144;
inline constexpr std::uint16_t kSatp = 0x180;
// User-level counters
inline constexpr std::uint16_t kCycle = 0xc00;
inline constexpr std::uint16_t kTime = 0xc01;
inline constexpr std::uint16_t kInstret = 0xc02;

/// Lowest privilege allowed to access a CSR (bits 9:8 of the address).
inline Priv min_priv(std::uint16_t addr) {
  switch ((addr >> 8) & 3) {
    case 0: return Priv::kUser;
    case 1: return Priv::kSupervisor;
    default: return Priv::kMachine;
  }
}

/// Read-only CSR addresses have top two bits == 0b11.
inline bool is_read_only(std::uint16_t addr) { return (addr >> 10) == 3; }

/// Architectural name for a modeled CSR address, nullptr when unknown (the
/// disassembler falls back to hex for those).
const char* name(std::uint16_t addr);

/// Address for an architectural CSR name, nullopt when not modeled.
std::optional<std::uint16_t> from_name(std::string_view name);

// ---- WARL legalization ----------------------------------------------------
// The two simulators duplicate trap and translation *behavior* on purpose
// (differential testing needs independent implementations); the legal-value
// masks below are architectural constants and are shared like the decoder.

/// Delegatable synchronous causes: 0-9 plus the Sv39 page faults (12/13/15).
/// Bit 11 (ecall-from-M can never be delegated) and the reserved bits 10/14
/// read as zero.
inline constexpr std::uint64_t kMedelegMask = 0xb3ff;
/// Only the supervisor interrupt bits (SSI/STI/SEI) are delegatable.
inline constexpr std::uint64_t kMidelegMask = 0x222;

// satp fields (Sv39).
inline constexpr unsigned kSatpModeShift = 60;
inline constexpr std::uint64_t kSatpModeBare = 0;
inline constexpr std::uint64_t kSatpModeSv39 = 8;
inline constexpr std::uint64_t kSatpPpnMask = (1ull << 44) - 1;

/// WARL satp: a write naming an unsupported MODE leaves the whole register
/// unchanged (Rocket behavior); Bare/Sv39 writes keep ASID and PPN as-is.
inline std::uint64_t legalize_satp(std::uint64_t old_value,
                                   std::uint64_t value) {
  const std::uint64_t mode = value >> kSatpModeShift;
  if (mode != kSatpModeBare && mode != kSatpModeSv39) return old_value;
  return value;
}
}  // namespace csr

/// Sv39 page-table entry fields and index extraction, shared architectural
/// constants for the two independent page-table walkers.
namespace sv39 {
inline constexpr std::uint64_t kPteV = 1ull << 0;
inline constexpr std::uint64_t kPteR = 1ull << 1;
inline constexpr std::uint64_t kPteW = 1ull << 2;
inline constexpr std::uint64_t kPteX = 1ull << 3;
inline constexpr std::uint64_t kPteU = 1ull << 4;
inline constexpr std::uint64_t kPteG = 1ull << 5;
inline constexpr std::uint64_t kPteA = 1ull << 6;
inline constexpr std::uint64_t kPteD = 1ull << 7;
inline constexpr unsigned kPageShift = 12;
inline constexpr unsigned kLevels = 3;

/// Nine-bit VPN slice for walk level 0..2 (2 is the root index).
inline std::uint64_t vpn_slice(std::uint64_t vaddr, unsigned level) {
  return (vaddr >> (kPageShift + 9 * level)) & 0x1ff;
}

/// PPN field of a PTE (bits 53:10).
inline std::uint64_t pte_ppn(std::uint64_t pte) {
  return (pte >> 10) & csr::kSatpPpnMask;
}

/// A virtual address is only valid when bits 63:39 equal bit 38.
inline bool canonical(std::uint64_t vaddr) {
  const std::int64_t s = static_cast<std::int64_t>(vaddr << 25) >> 25;
  return static_cast<std::uint64_t>(s) == vaddr;
}
}  // namespace sv39

/// Synchronous exception causes (mcause values), per the privileged spec.
enum class Exception : std::uint8_t {
  kInstrAddrMisaligned = 0,
  kInstrAccessFault = 1,
  kIllegalInstruction = 2,
  kBreakpoint = 3,
  kLoadAddrMisaligned = 4,
  kLoadAccessFault = 5,
  kStoreAddrMisaligned = 6,
  kStoreAccessFault = 7,
  kEcallFromU = 8,
  kEcallFromS = 9,
  kEcallFromM = 11,
  kInstrPageFault = 12,
  kLoadPageFault = 13,
  kStorePageFault = 15,
  kNone = 0xff,
};

/// True for a cause code that actually exists in this model (10 and 14 are
/// reserved in the privileged spec).
inline bool is_valid_cause(std::uint8_t cause) {
  return cause <= static_cast<std::uint8_t>(Exception::kStorePageFault) &&
         cause != 10 && cause != 14;
}

/// Human-readable cause name for reports and mismatch signatures.
const char* exception_name(Exception e);

}  // namespace chatfuzz::riscv
