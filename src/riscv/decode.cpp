#include "riscv/decode.h"

#include <array>
#include <vector>

namespace chatfuzz::riscv {

namespace {

constexpr std::int64_t sext(std::uint64_t value, unsigned bits) {
  const std::uint64_t sign = 1ull << (bits - 1);
  return static_cast<std::int64_t>((value ^ sign)) - static_cast<std::int64_t>(sign);
}

std::int64_t extract_imm(Format fmt, std::uint32_t raw) {
  switch (fmt) {
    case Format::kI:
      return sext(raw >> 20, 12);
    case Format::kIShift64:
      return (raw >> 20) & 0x3f;
    case Format::kIShift32:
      return (raw >> 20) & 0x1f;
    case Format::kS:
      return sext(((raw >> 25) << 5) | ((raw >> 7) & 0x1f), 12);
    case Format::kB:
      return sext(((raw >> 31) & 1) << 12 | ((raw >> 7) & 1) << 11 |
                      ((raw >> 25) & 0x3f) << 5 | ((raw >> 8) & 0xf) << 1,
                  13);
    case Format::kU:
      return sext(raw & 0xfffff000u, 32);
    case Format::kJ:
      return sext(((raw >> 31) & 1) << 20 | ((raw >> 12) & 0xff) << 12 |
                      ((raw >> 20) & 1) << 11 | ((raw >> 21) & 0x3ff) << 1,
                  21);
    default:
      return 0;
  }
}

/// Specs bucketed by major opcode (bits 6:0) so decode scans only a handful
/// of candidates. Built once, lazily; read-only afterwards.
const std::array<std::vector<const InstrSpec*>, 128>& buckets() {
  static const auto table = [] {
    std::array<std::vector<const InstrSpec*>, 128> t;
    for (std::size_t i = 0; i < kNumOpcodes; ++i) {
      const InstrSpec& s = all_specs()[i];
      t[s.match & 0x7f].push_back(&s);
    }
    return t;
  }();
  return table;
}

const InstrSpec* classify(std::uint32_t raw) {
  // All implemented encodings are 32-bit ("11" in the low two bits); any
  // compressed encoding is invalid input for this model.
  if ((raw & 0x3u) != 0x3u) return nullptr;
  for (const InstrSpec* s : buckets()[raw & 0x7f]) {
    if ((raw & s->mask) == s->match) return s;
  }
  return nullptr;
}

}  // namespace

Decoded decode(std::uint32_t raw) {
  Decoded d;
  d.raw = raw;
  const InstrSpec* s = classify(raw);
  if (s == nullptr) return d;
  d.op = s->op;
  switch (s->format) {
    case Format::kR:
      d.rd = (raw >> 7) & 31;
      d.rs1 = (raw >> 15) & 31;
      d.rs2 = (raw >> 20) & 31;
      break;
    case Format::kI:
    case Format::kIShift64:
    case Format::kIShift32:
      d.rd = (raw >> 7) & 31;
      d.rs1 = (raw >> 15) & 31;
      d.imm = extract_imm(s->format, raw);
      break;
    case Format::kS:
    case Format::kB:
      d.rs1 = (raw >> 15) & 31;
      d.rs2 = (raw >> 20) & 31;
      d.imm = extract_imm(s->format, raw);
      break;
    case Format::kU:
    case Format::kJ:
      d.rd = (raw >> 7) & 31;
      d.imm = extract_imm(s->format, raw);
      break;
    case Format::kFence:
    case Format::kSystem:
      break;
    case Format::kSfence:
      d.rs1 = (raw >> 15) & 31;
      d.rs2 = (raw >> 20) & 31;
      break;
    case Format::kCsr:
    case Format::kCsrImm:
      d.rd = (raw >> 7) & 31;
      d.rs1 = (raw >> 15) & 31;  // zimm5 for the immediate forms
      d.csr = static_cast<std::uint16_t>((raw >> 20) & 0xfff);
      break;
    case Format::kAmo:
    case Format::kLoadRes:
      d.rd = (raw >> 7) & 31;
      d.rs1 = (raw >> 15) & 31;
      d.rs2 = (raw >> 20) & 31;
      d.aq = ((raw >> 26) & 1) != 0;
      d.rl = ((raw >> 25) & 1) != 0;
      break;
  }
  return d;
}

bool is_valid(std::uint32_t raw) { return classify(raw) != nullptr; }

std::size_t count_invalid(std::span<const std::uint32_t> program) {
  std::size_t n = 0;
  for (std::uint32_t w : program) n += is_valid(w) ? 0 : 1;
  return n;
}

}  // namespace chatfuzz::riscv
