// Superblock layer on top of the predecode cache: where PredecodeCache
// memoizes one decode per fetch address, SuperblockIndex memoizes *spans* of
// straight-line code — maximal runs of decoded instructions with no
// control-flow, CSR, fence or invalid-word terminator — so a dispatch loop
// can execute a whole span while re-checking PC, traps and translation state
// only at block boundaries.
//
// Validity is delegated to the owner through *guard cells*: the owner keeps
// an array of u64 generation counters (IsaSim: one per 4 KiB RAM page plus a
// global flush cell, bumped by stores / fence.i / reset; RtlCore: one per
// I-cache line, bumped on refill, invalidation and flush) and each span
// records the cells it was built over together with their values. A span is
// served only while every recorded cell still holds its recorded value, so
// a store into the middle of a cached span — or an I-cache eviction under
// it — drops the block exactly like the word-granular predecode
// invalidation does, without the index ever observing memory itself.
//
// The index is purely derived state: it must never enter checkpoints, and
// flushing it at any point changes nothing but speed.
//
// BbvRecorder rides on the same block structure: it folds the committed
// instruction stream into a per-test basic-block vector (block-id →
// execution count, ids in discovery order) à la the SimPoint methodology,
// and hashes it into a phase signature for corpus minimization.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "riscv/decode.h"
#include "riscv/instr.h"

namespace chatfuzz::riscv {

/// Longest span a single superblock may cover (instructions). 64 words is
/// 256 bytes of straight-line code: long enough to amortize dispatch, short
/// enough that a span never straddles more than one 4 KiB page boundary.
inline constexpr std::size_t kMaxSuperblockLen = 64;

/// True when `d` must end a superblock: anything that can redirect the PC,
/// change privilege or translation state, write a CSR, or that the decoder
/// rejected. Loads, stores and AMOs stay inside spans — they cannot move
/// the PC (a fault exits through the trap path, which the dispatch loops
/// detect per-slot).
inline bool superblock_terminator(const Decoded& d) {
  if (!d.valid()) return true;
  switch (d.op) {
    case Opcode::kJal:
    case Opcode::kJalr:
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
    case Opcode::kEcall:
    case Opcode::kEbreak:
    case Opcode::kMret:
    case Opcode::kSret:
    case Opcode::kWfi:
    case Opcode::kFence:
    case Opcode::kFenceI:
    case Opcode::kSfenceVma:
    case Opcode::kCsrrw:
    case Opcode::kCsrrs:
    case Opcode::kCsrrc:
    case Opcode::kCsrrwi:
    case Opcode::kCsrrsi:
    case Opcode::kCsrrci:
      return true;
    default:
      return false;
  }
}

/// Direct-mapped span cache. SlotT is the per-instruction payload the owner
/// wants to replay (IsaSim: the Decoded itself; RtlCore: Decoded plus
/// precomputed coverage-outcome bits); ExtraT is an optional per-span
/// payload (RtlCore: full-span outcome totals for batched folding).
template <typename SlotT, typename ExtraT = std::uint8_t>
class SuperblockIndex {
 public:
  /// A guard: cell index into the owner's generation array + the value the
  /// cell held when the span was built.
  struct Guard {
    std::uint32_t cell = 0;
    std::uint64_t value = 0;
  };
  /// 64 instructions touch at most 9 icache lines (32 B each) or 2 pages;
  /// +1 leaves room for a global flush cell.
  static constexpr std::size_t kMaxGuards = kMaxSuperblockLen / 8 + 2;

  struct Span {
    std::uint64_t start = kEmpty;
    std::uint32_t first = 0;       // arena offset of slot 0
    std::uint16_t len = 0;         // 0 = cached negative result
    std::uint8_t num_guards = 0;
    bool listed = false;           // on the used-slot list (see flush())
    std::array<Guard, kMaxGuards> guards{};
    ExtraT extra{};
  };

  explicit SuperblockIndex(std::size_t spans = 1024)
      : mask_(spans - 1), spans_(spans) {}

  /// The fresh span starting at `pc`, or nullptr (absent or stale — the
  /// caller rebuilds either way). `len == 0` spans are cached negative
  /// results: "the slow path must handle this pc"; they spare a re-decode
  /// per visit to block leaders that are themselves terminators.
  const Span* find(std::uint64_t pc,
                   const std::vector<std::uint64_t>& cells) const {
    const Span& s = spans_[index(pc)];
    if (s.start != pc || !fresh(s, cells)) return nullptr;
    return &s;
  }

  /// Re-check a span's guards mid-execution (after a store slot may have
  /// bumped a cell under it).
  static bool fresh(const Span& s, const std::vector<std::uint64_t>& cells) {
    for (std::uint8_t i = 0; i < s.num_guards; ++i) {
      if (cells[s.guards[i].cell] != s.guards[i].value) return false;
    }
    return true;
  }

  // Build protocol: begin_build claims the (direct-mapped) table slot and a
  // fresh arena region; the caller adds guards and pushes slots, stopping
  // at the first terminator, guard overflow, or kMaxSuperblockLen.
  Span& begin_build(std::uint64_t pc) {
    if (arena_.size() > kMaxArenaSlots) flush();
    Span& s = touched(pc);
    s.start = pc;
    s.first = static_cast<std::uint32_t>(arena_.size());
    s.len = 0;
    s.num_guards = 0;
    s.extra = ExtraT{};
    return s;
  }

  /// Record a guard cell; duplicate cells collapse. Returns false when the
  /// guard table is full (the caller must stop extending the span).
  bool add_guard(Span& s, std::uint32_t cell, std::uint64_t value) {
    for (std::uint8_t i = 0; i < s.num_guards; ++i) {
      if (s.guards[i].cell == cell) return true;
    }
    if (s.num_guards == kMaxGuards) return false;
    s.guards[s.num_guards++] = Guard{cell, value};
    return true;
  }

  void push(Span& s, SlotT slot) {
    arena_.push_back(std::move(slot));
    ++s.len;
  }

  const SlotT* slots(const Span& s) const { return arena_.data() + s.first; }

  /// Drop every span and reclaim the arena. O(spans ever built since the
  /// last flush). Owners call this on reset/fence.i only when they do not
  /// route those events through a guard cell.
  void flush() {
    for (const std::uint32_t idx : used_) {
      spans_[idx].start = kEmpty;
      spans_[idx].listed = false;
    }
    used_.clear();
    arena_.clear();
  }

  std::size_t arena_slots() const { return arena_.size(); }

 private:
  static constexpr std::uint64_t kEmpty = ~0ull;
  /// Arena cap: evicted spans leak their slots until the next flush, so the
  /// arena is swept wholesale once it outgrows this (~a few MiB worst case,
  /// typically never hit within one test).
  static constexpr std::size_t kMaxArenaSlots = 1u << 16;

  std::size_t index(std::uint64_t pc) const { return (pc >> 2) & mask_; }

  Span& touched(std::uint64_t pc) {
    const std::size_t i = index(pc);
    Span& s = spans_[i];
    if (!s.listed) {
      s.listed = true;
      used_.push_back(static_cast<std::uint32_t>(i));
    }
    return s;
  }

  std::size_t mask_;
  std::vector<Span> spans_;
  std::vector<std::uint32_t> used_;
  std::vector<SlotT> arena_;
};

/// FNV-1a over (block start, count) pairs in block-id order (the BBV-file
/// projection of a vector). Never 0 for a non-empty vector (0 is the "not
/// yet computed" sentinel in the corpus store).
std::uint64_t bbv_phase_hash(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& blocks);

/// Per-test basic-block-vector recorder. Hooked into the DUT's commit
/// stream: on_commit(pc, next_pc, trap) opens a block at the first pc
/// after a control transfer and closes it when the committed instruction
/// did not fall through (taken branch/jump, mret/sret) or trapped (the
/// magic trampoline resumes at fall-through, but control architecturally
/// left the block). Blocks are keyed by (start, end) — the same start
/// exited at a different point (e.g. a trap mid-block) is a distinct
/// block — with ids assigned in discovery order per test, so the vector
/// is a pure function of the committed instruction stream: identical
/// whichever dispatch engine (interpreter or superblock) produced it.
class BbvRecorder {
 public:
  BbvRecorder() : table_(kMinTable, 0) {}

  /// Start a new test: clears the vector, ids restart at 0.
  void begin();

  void on_commit(std::uint64_t pc, std::uint64_t next_pc, bool trap) {
    if (!open_) {
      open_ = true;
      block_start_ = pc;
    }
    block_end_ = pc + 4;  // exclusive: the block includes this instruction
    if (trap || next_pc != pc + 4) close_block();
  }

  /// End of test: the trailing block (ended by the stop condition rather
  /// than a transfer) still counts.
  void on_stop() {
    if (open_) close_block();
  }

  /// Blocks in id order as (start pc, execution count). Starts can repeat:
  /// each distinct (start, end) is its own block (ends via ends()).
  const std::vector<std::pair<std::uint64_t, std::uint64_t>>& blocks() const {
    return blocks_;
  }
  /// Per-block exclusive end pc, parallel to blocks().
  const std::vector<std::uint64_t>& ends() const { return ends_; }
  /// Phase signature: FNV-1a over (start, end, count) triples in id order —
  /// finer than bbv_phase_hash(blocks()) because straight-line tests of
  /// different lengths hash apart. Never 0.
  std::uint64_t phase_hash() const;

 private:
  static constexpr std::size_t kMinTable = 64;

  void close_block();

  bool open_ = false;
  std::uint64_t block_start_ = 0;
  std::uint64_t block_end_ = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> blocks_;  // id-ordered
  std::vector<std::uint64_t> ends_;   // id-ordered exclusive end pcs
  std::vector<std::uint32_t> table_;  // open-addressed (start,end)→id+1
};

}  // namespace chatfuzz::riscv
