// ProgramBuilder: a tiny in-memory assembler for writing directed test
// programs (examples, unit tests, corpus generator). Emits raw instruction
// words; labels resolve branch/jump offsets on seal().
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "riscv/csr.h"
#include "riscv/encode.h"
#include "riscv/instr.h"

namespace chatfuzz::riscv {

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::uint64_t base_pc = 0x8000'0000ull)
      : base_pc_(base_pc) {}

  std::uint64_t pc() const { return base_pc_ + 4 * words_.size(); }
  std::uint64_t base_pc() const { return base_pc_; }

  /// Append a raw instruction word.
  ProgramBuilder& raw(std::uint32_t w) {
    words_.push_back(w);
    return *this;
  }

  // ---- Common instructions (thin wrappers over the encoder) --------------
  ProgramBuilder& addi(unsigned rd, unsigned rs1, std::int32_t imm) {
    return raw(enc_i(Opcode::kAddi, rd, rs1, imm));
  }
  ProgramBuilder& li(unsigned rd, std::int32_t value) {
    // lui+addi pair for full 32-bit constants; single addi when it fits.
    if (value >= -2048 && value <= 2047) return addi(rd, 0, value);
    std::int32_t hi = (value + 0x800) >> 12;
    std::int32_t lo = value - (hi << 12);
    raw(enc_u(Opcode::kLui, rd, hi));
    return addi(rd, rd, lo);
  }
  ProgramBuilder& add(unsigned rd, unsigned rs1, unsigned rs2) {
    return raw(enc_r(Opcode::kAdd, rd, rs1, rs2));
  }
  ProgramBuilder& sub(unsigned rd, unsigned rs1, unsigned rs2) {
    return raw(enc_r(Opcode::kSub, rd, rs1, rs2));
  }
  ProgramBuilder& mul(unsigned rd, unsigned rs1, unsigned rs2) {
    return raw(enc_r(Opcode::kMul, rd, rs1, rs2));
  }
  ProgramBuilder& div(unsigned rd, unsigned rs1, unsigned rs2) {
    return raw(enc_r(Opcode::kDiv, rd, rs1, rs2));
  }
  ProgramBuilder& ld(unsigned rd, unsigned rs1, std::int32_t off) {
    return raw(enc_i(Opcode::kLd, rd, rs1, off));
  }
  ProgramBuilder& lw(unsigned rd, unsigned rs1, std::int32_t off) {
    return raw(enc_i(Opcode::kLw, rd, rs1, off));
  }
  ProgramBuilder& sd(unsigned rs1, unsigned rs2, std::int32_t off) {
    return raw(enc_s(Opcode::kSd, rs1, rs2, off));
  }
  ProgramBuilder& sw(unsigned rs1, unsigned rs2, std::int32_t off) {
    return raw(enc_s(Opcode::kSw, rs1, rs2, off));
  }
  ProgramBuilder& lui(unsigned rd, std::int32_t imm20) {
    return raw(enc_u(Opcode::kLui, rd, imm20));
  }
  ProgramBuilder& auipc(unsigned rd, std::int32_t imm20) {
    return raw(enc_u(Opcode::kAuipc, rd, imm20));
  }
  ProgramBuilder& jal(unsigned rd, std::int32_t offset) {
    return raw(enc_j(Opcode::kJal, rd, offset));
  }
  ProgramBuilder& jalr(unsigned rd, unsigned rs1, std::int32_t off) {
    return raw(enc_i(Opcode::kJalr, rd, rs1, off));
  }
  ProgramBuilder& ecall() { return raw(enc_sys(Opcode::kEcall)); }
  ProgramBuilder& ebreak() { return raw(enc_sys(Opcode::kEbreak)); }
  ProgramBuilder& fence() { return raw(enc_sys(Opcode::kFence)); }
  ProgramBuilder& fence_i() { return raw(enc_sys(Opcode::kFenceI)); }
  ProgramBuilder& slli(unsigned rd, unsigned rs1, unsigned shamt) {
    return raw(enc_shift(Opcode::kSlli, rd, rs1, shamt));
  }
  ProgramBuilder& srli(unsigned rd, unsigned rs1, unsigned shamt) {
    return raw(enc_shift(Opcode::kSrli, rd, rs1, shamt));
  }
  ProgramBuilder& or_(unsigned rd, unsigned rs1, unsigned rs2) {
    return raw(enc_r(Opcode::kOr, rd, rs1, rs2));
  }
  ProgramBuilder& csrrw(unsigned rd, std::uint16_t csr, unsigned rs1) {
    return raw(enc_csr(Opcode::kCsrrw, rd, csr, rs1));
  }
  ProgramBuilder& csrrs(unsigned rd, std::uint16_t csr, unsigned rs1) {
    return raw(enc_csr(Opcode::kCsrrs, rd, csr, rs1));
  }
  ProgramBuilder& csrrc(unsigned rd, std::uint16_t csr, unsigned rs1) {
    return raw(enc_csr(Opcode::kCsrrc, rd, csr, rs1));
  }
  ProgramBuilder& csrrwi(unsigned rd, std::uint16_t csr, unsigned zimm) {
    return raw(enc_csr(Opcode::kCsrrwi, rd, csr, zimm));
  }
  ProgramBuilder& mret() { return raw(enc_sys(Opcode::kMret)); }
  ProgramBuilder& sret() { return raw(enc_sys(Opcode::kSret)); }
  ProgramBuilder& wfi() { return raw(enc_sys(Opcode::kWfi)); }
  ProgramBuilder& sfence_vma(unsigned rs1 = 0, unsigned rs2 = 0) {
    return raw(enc_sfence(rs1, rs2));
  }

  // ---- Privileged / Sv39 preambles ---------------------------------------
  /// Sv39 bring-up preamble. Must run in M-mode (translation off): writes a
  /// single gigapage leaf PTE mapping VA `ram_base` -> PA `ram_base` into a
  /// root page table at physical page `pt_page` (4K-aligned), installs
  /// satp = {Sv39, pt_page >> 12} — which flushes the TLB — and issues
  /// sfence.vma. `pte_flags` picks permissions (sv39::kPte*); leave out
  /// kPteU for a supervisor-only mapping, kPteW for a read-only one.
  /// Clobbers t0/t1 (overridable). Both `pt_page >> 12` and the PTE word
  /// must fit in a non-negative int32 (true anywhere in the default 1 MiB
  /// RAM window at 0x8000'0000).
  ProgramBuilder& sv39_identity_map(std::uint64_t ram_base,
                                    std::uint64_t pt_page,
                                    std::uint32_t pte_flags, unsigned t0 = 5,
                                    unsigned t1 = 6) {
    const auto vpn2 = static_cast<std::int32_t>((ram_base >> 30) & 0x1ff);
    const auto pte =
        static_cast<std::int32_t>(((ram_base >> 12) << 10) | pte_flags);
    li(t0, static_cast<std::int32_t>(pt_page >> 12));
    slli(t0, t0, 12);  // physical PT base, zero-extended
    li(t1, pte);
    sd(t0, t1, vpn2 * 8);  // root[vpn2] = gigapage leaf
    li(t1, static_cast<std::int32_t>(csr::kSatpModeSv39));
    slli(t1, t1, static_cast<unsigned>(csr::kSatpModeShift));
    srli(t0, t0, 12);  // satp.PPN
    or_(t1, t1, t0);
    csrrw(0, csr::kSatp, t1);
    return sfence_vma();
  }

  /// Drop from M-mode to S (mpp=1) or U (mpp=0): clears mstatus.MPP, sets
  /// the target, points mepc at the instruction after the mret, and returns.
  /// Clobbers `t`.
  ProgramBuilder& enter_priv(unsigned mpp, unsigned t = 7) {
    li(t, 3);
    slli(t, t, 11);
    csrrc(0, csr::kMstatus, t);  // MPP = 0 (U)
    if (mpp == 1) {
      li(t, 1);
      slli(t, t, 11);
      csrrs(0, csr::kMstatus, t);  // MPP = S
    }
    auipc(t, 0);
    addi(t, t, 16);
    csrrw(0, csr::kMepc, t);  // resume just past the mret
    return mret();
  }

  // ---- Labels -------------------------------------------------------------
  /// Define a label at the current pc.
  ProgramBuilder& label(const std::string& name) {
    labels_[name] = pc();
    return *this;
  }
  /// Branch to a label (patched at seal()).
  ProgramBuilder& branch_to(Opcode op, unsigned rs1, unsigned rs2,
                            const std::string& target) {
    fixups_.push_back({words_.size(), op, rs1, rs2, target});
    return raw(0);
  }
  /// jal to a label (patched at seal()).
  ProgramBuilder& jal_to(unsigned rd, const std::string& target) {
    fixups_.push_back({words_.size(), Opcode::kJal, rd, 0, target});
    return raw(0);
  }

  /// Resolve label fixups and return the program. Throws std::out_of_range
  /// on an undefined label.
  std::vector<std::uint32_t> seal() {
    for (const Fixup& f : fixups_) {
      const std::uint64_t at = base_pc_ + 4 * f.index;
      const std::int64_t offset =
          static_cast<std::int64_t>(labels_.at(f.target)) -
          static_cast<std::int64_t>(at);
      if (f.op == Opcode::kJal) {
        words_[f.index] = enc_j(f.op, f.a, static_cast<std::int32_t>(offset));
      } else {
        words_[f.index] =
            enc_b(f.op, f.a, f.b, static_cast<std::int32_t>(offset));
      }
    }
    fixups_.clear();
    return words_;
  }

 private:
  struct Fixup {
    std::size_t index;
    Opcode op;
    unsigned a, b;
    std::string target;
  };
  std::uint64_t base_pc_;
  std::vector<std::uint32_t> words_;
  std::unordered_map<std::string, std::uint64_t> labels_;
  std::vector<Fixup> fixups_;
};

}  // namespace chatfuzz::riscv
