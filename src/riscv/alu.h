// Pure integer ALU / multiplier / divider semantics as free functions.
// Used by the RTL-level core model; the golden model (isasim) carries its
// own inline implementation so the two execution paths stay independent for
// differential testing (see DESIGN.md).
#pragma once

#include <cstdint>

#include "riscv/instr.h"

namespace chatfuzz::riscv {

inline std::uint64_t alu_sext32(std::uint64_t v) {
  return static_cast<std::uint64_t>(
      static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
}

/// Evaluate a register-register / register-immediate ALU or M-extension op.
/// `b` is rs2 for R-format and the sign-extended immediate (or shamt) for
/// I-format ops. Returns the 64-bit result written to rd.
inline std::uint64_t alu_eval(Opcode op, std::uint64_t a, std::uint64_t b) {
  const auto sa = static_cast<std::int64_t>(a);
  const auto sb = static_cast<std::int64_t>(b);
  switch (op) {
    case Opcode::kAddi: case Opcode::kAdd: return a + b;
    case Opcode::kSub: return a - b;
    case Opcode::kSlti: case Opcode::kSlt: return sa < sb ? 1 : 0;
    case Opcode::kSltiu: case Opcode::kSltu: return a < b ? 1 : 0;
    case Opcode::kXori: case Opcode::kXor: return a ^ b;
    case Opcode::kOri: case Opcode::kOr: return a | b;
    case Opcode::kAndi: case Opcode::kAnd: return a & b;
    case Opcode::kSlli: case Opcode::kSll: return a << (b & 63);
    case Opcode::kSrli: case Opcode::kSrl: return a >> (b & 63);
    case Opcode::kSrai: case Opcode::kSra:
      return static_cast<std::uint64_t>(sa >> (b & 63));
    case Opcode::kAddiw: case Opcode::kAddw: return alu_sext32(a + b);
    case Opcode::kSubw: return alu_sext32(a - b);
    case Opcode::kSlliw: case Opcode::kSllw: return alu_sext32(a << (b & 31));
    case Opcode::kSrliw: case Opcode::kSrlw:
      return alu_sext32(static_cast<std::uint32_t>(a) >> (b & 31));
    case Opcode::kSraiw: case Opcode::kSraw:
      return static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(a) >> (b & 31)));
    case Opcode::kMul: return a * b;
    case Opcode::kMulh:
      return static_cast<std::uint64_t>(
          (static_cast<__int128>(sa) * static_cast<__int128>(sb)) >> 64);
    case Opcode::kMulhsu:
      return static_cast<std::uint64_t>(
          (static_cast<__int128>(sa) * static_cast<unsigned __int128>(b)) >> 64);
    case Opcode::kMulhu:
      return static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b)) >> 64);
    case Opcode::kDiv:
      if (b == 0) return ~0ull;
      if (sa == INT64_MIN && sb == -1) return a;
      return static_cast<std::uint64_t>(sa / sb);
    case Opcode::kDivu: return b == 0 ? ~0ull : a / b;
    case Opcode::kRem:
      if (b == 0) return a;
      if (sa == INT64_MIN && sb == -1) return 0;
      return static_cast<std::uint64_t>(sa % sb);
    case Opcode::kRemu: return b == 0 ? a : a % b;
    case Opcode::kMulw: return alu_sext32(a * b);
    case Opcode::kDivw: {
      const auto x = static_cast<std::int32_t>(a);
      const auto y = static_cast<std::int32_t>(b);
      std::int32_t q;
      if (y == 0) q = -1;
      else if (x == INT32_MIN && y == -1) q = x;
      else q = x / y;
      return static_cast<std::uint64_t>(static_cast<std::int64_t>(q));
    }
    case Opcode::kDivuw: {
      const auto x = static_cast<std::uint32_t>(a);
      const auto y = static_cast<std::uint32_t>(b);
      return alu_sext32(y == 0 ? ~0u : x / y);
    }
    case Opcode::kRemw: {
      const auto x = static_cast<std::int32_t>(a);
      const auto y = static_cast<std::int32_t>(b);
      std::int32_t r;
      if (y == 0) r = x;
      else if (x == INT32_MIN && y == -1) r = 0;
      else r = x % y;
      return static_cast<std::uint64_t>(static_cast<std::int64_t>(r));
    }
    case Opcode::kRemuw: {
      const auto x = static_cast<std::uint32_t>(a);
      const auto y = static_cast<std::uint32_t>(b);
      return alu_sext32(y == 0 ? x : x % y);
    }
    default: return 0;
  }
}

/// True for M-extension (multiplier/divider) opcodes — the ops whose
/// writeback the RocketCore tracer drops (paper Bug2, CWE-440).
inline bool is_muldiv(Opcode op) {
  return spec(op).ext == Ext::kM;
}

/// True for divider-path ops (multi-cycle in RocketCore).
inline bool is_div(Opcode op) {
  switch (op) {
    case Opcode::kDiv: case Opcode::kDivu: case Opcode::kRem:
    case Opcode::kRemu: case Opcode::kDivw: case Opcode::kDivuw:
    case Opcode::kRemw: case Opcode::kRemuw:
      return true;
    default:
      return false;
  }
}

}  // namespace chatfuzz::riscv
