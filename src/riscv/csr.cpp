#include "riscv/csr.h"

#include <array>
#include <utility>

namespace chatfuzz::riscv {

namespace csr {
namespace {
constexpr std::array<std::pair<std::uint16_t, const char*>, 31> kNames = {{
    {kTime, "time"},
    {kMstatus, "mstatus"},     {kMisa, "misa"},
    {kMedeleg, "medeleg"},     {kMideleg, "mideleg"},
    {kMie, "mie"},             {kMtvec, "mtvec"},
    {kMcounteren, "mcounteren"}, {kMscratch, "mscratch"},
    {kMepc, "mepc"},           {kMcause, "mcause"},
    {kMtval, "mtval"},         {kMip, "mip"},
    {kMcycle, "mcycle"},       {kMinstret, "minstret"},
    {kMvendorid, "mvendorid"}, {kMarchid, "marchid"},
    {kMimpid, "mimpid"},       {kMhartid, "mhartid"},
    {kSstatus, "sstatus"},     {kSie, "sie"},
    {kStvec, "stvec"},         {kScounteren, "scounteren"},
    {kSscratch, "sscratch"},   {kSepc, "sepc"},
    {kScause, "scause"},       {kStval, "stval"},
    {kSip, "sip"},             {kSatp, "satp"},
    {kCycle, "cycle"},         {kInstret, "instret"},
}};
}  // namespace

const char* name(std::uint16_t addr) {
  for (const auto& [a, n] : kNames) {
    if (a == addr) return n;
  }
  return nullptr;
}

std::optional<std::uint16_t> from_name(std::string_view name) {
  for (const auto& [a, n] : kNames) {
    if (name == n) return a;
  }
  return std::nullopt;
}
}  // namespace csr

const char* exception_name(Exception e) {
  switch (e) {
    case Exception::kInstrAddrMisaligned: return "instr-addr-misaligned";
    case Exception::kInstrAccessFault: return "instr-access-fault";
    case Exception::kIllegalInstruction: return "illegal-instruction";
    case Exception::kBreakpoint: return "breakpoint";
    case Exception::kLoadAddrMisaligned: return "load-addr-misaligned";
    case Exception::kLoadAccessFault: return "load-access-fault";
    case Exception::kStoreAddrMisaligned: return "store-addr-misaligned";
    case Exception::kStoreAccessFault: return "store-access-fault";
    case Exception::kEcallFromU: return "ecall-from-u";
    case Exception::kEcallFromS: return "ecall-from-s";
    case Exception::kEcallFromM: return "ecall-from-m";
    case Exception::kInstrPageFault: return "instr-page-fault";
    case Exception::kLoadPageFault: return "load-page-fault";
    case Exception::kStorePageFault: return "store-page-fault";
    case Exception::kNone: return "none";
  }
  return "unknown";
}

}  // namespace chatfuzz::riscv
