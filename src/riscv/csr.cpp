#include "riscv/csr.h"

namespace chatfuzz::riscv {

const char* exception_name(Exception e) {
  switch (e) {
    case Exception::kInstrAddrMisaligned: return "instr-addr-misaligned";
    case Exception::kInstrAccessFault: return "instr-access-fault";
    case Exception::kIllegalInstruction: return "illegal-instruction";
    case Exception::kBreakpoint: return "breakpoint";
    case Exception::kLoadAddrMisaligned: return "load-addr-misaligned";
    case Exception::kLoadAccessFault: return "load-access-fault";
    case Exception::kStoreAddrMisaligned: return "store-addr-misaligned";
    case Exception::kStoreAccessFault: return "store-access-fault";
    case Exception::kEcallFromU: return "ecall-from-u";
    case Exception::kEcallFromS: return "ecall-from-s";
    case Exception::kEcallFromM: return "ecall-from-m";
    case Exception::kNone: return "none";
  }
  return "unknown";
}

}  // namespace chatfuzz::riscv
