// Text assembler: parses the disassembler's syntax back into instruction
// words, so directed tests and regression inputs can be written as `.s`-style
// text. Exact inverse of disasm() — round-trip tested over the whole table.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "riscv/instr.h"

namespace chatfuzz::riscv {

/// Assemble one instruction line ("addi a0, a1, -5", "lw t0, 8(sp)",
/// "amoor.d s0, s1, (a0)", ".word 0xdeadbeef"). Returns std::nullopt on a
/// parse or range error; `error` (when non-null) receives a description.
std::optional<std::uint32_t> assemble_line(std::string_view line,
                                           std::string* error = nullptr);

/// Assemble a whole program: one instruction per line; blank lines and
/// `#`/`//` comments are skipped. Returns std::nullopt on the first error
/// (error message includes the line number).
std::optional<std::vector<std::uint32_t>> assemble(std::string_view text,
                                                   std::string* error = nullptr);

/// Parse a register name: ABI ("a0", "sp", "zero") or numeric ("x7").
std::optional<std::uint8_t> parse_reg(std::string_view token);

}  // namespace chatfuzz::riscv
