// Encoder: build 32-bit RISC-V instruction words from decoded records or
// convenience helpers. The inverse of decode(); every encode/decode pair is
// round-trip tested over the whole opcode table.
#pragma once

#include <cstdint>

#include "riscv/instr.h"

namespace chatfuzz::riscv {

/// Encode a decoded record into its 32-bit instruction word. Operand fields
/// not used by the opcode's format are ignored. Immediates are truncated to
/// the format's range (callers that care should pre-validate with
/// fits_imm()).
std::uint32_t encode(const Decoded& d);

/// True if `imm` is representable by the format of `op` (including the
/// alignment requirement for branch/jump offsets).
bool fits_imm(Opcode op, std::int64_t imm);

// ---- Convenience builders (match assembler operand order) ----------------
std::uint32_t enc_r(Opcode op, unsigned rd, unsigned rs1, unsigned rs2);
std::uint32_t enc_i(Opcode op, unsigned rd, unsigned rs1, std::int32_t imm);
std::uint32_t enc_shift(Opcode op, unsigned rd, unsigned rs1, unsigned shamt);
std::uint32_t enc_s(Opcode op, unsigned rs1, unsigned rs2, std::int32_t imm);
std::uint32_t enc_b(Opcode op, unsigned rs1, unsigned rs2, std::int32_t offset);
std::uint32_t enc_u(Opcode op, unsigned rd, std::int32_t imm20);
std::uint32_t enc_j(Opcode op, unsigned rd, std::int32_t offset);
std::uint32_t enc_csr(Opcode op, unsigned rd, std::uint16_t csr, unsigned rs1_or_zimm);
std::uint32_t enc_amo(Opcode op, unsigned rd, unsigned addr_rs1, unsigned rs2,
                      bool aq = false, bool rl = false);
std::uint32_t enc_sys(Opcode op);
std::uint32_t enc_sfence(unsigned vaddr_rs1, unsigned asid_rs2);

}  // namespace chatfuzz::riscv
