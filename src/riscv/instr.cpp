#include "riscv/instr.h"

#include <array>

namespace chatfuzz::riscv {

namespace {
constexpr std::array<InstrSpec, kNumOpcodes> kSpecs = {{
#define X(id, mnem, fmt, match, mask, ext) \
  InstrSpec{Opcode::id, mnem, fmt, match, mask, ext},
    CHATFUZZ_RISCV_OPCODES(X)
#undef X
}};

constexpr std::array<std::string_view, 32> kRegNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
}  // namespace

const InstrSpec& spec(Opcode op) {
  return kSpecs[static_cast<std::size_t>(op)];
}

const InstrSpec* all_specs() { return kSpecs.data(); }

std::string_view mnemonic(Opcode op) {
  if (op == Opcode::kInvalid) return "<invalid>";
  return kSpecs[static_cast<std::size_t>(op)].mnemonic;
}

std::string_view reg_name(std::uint8_t reg) { return kRegNames[reg & 31]; }

}  // namespace chatfuzz::riscv
