// Disassembler: textual rendering of instruction words and programs. In the
// training pipeline (stage 2) this module doubles as the *deterministic
// reward agent*: a generation's reward is a pure function of how many of its
// words disassemble successfully (paper Eq. 1).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "riscv/instr.h"

namespace chatfuzz::riscv {

/// Render one decoded instruction in assembler syntax, e.g.
/// "addi a0, a1, -5", "lw t0, 8(sp)", "amoor.d s0, s1, (a0)".
std::string disasm(const Decoded& d);

/// Decode + render a raw word; invalid words render as ".word 0x????????".
std::string disasm(std::uint32_t raw);

/// Disassemble a program, one instruction per line with pc prefixes.
std::string disasm_program(std::span<const std::uint32_t> program,
                           std::uint64_t base_pc = 0);

/// Result of running the disassembler over a candidate test vector.
/// Mirrors the paper's stage-2 reward inputs: N_i instructions generated,
/// Invalid_i of them malformed.
struct DisasmAudit {
  std::size_t total = 0;
  std::size_t invalid = 0;
  /// Eq. 1 of the paper: f(GenText_i) = N_i - 5 * Invalid_i.
  double reward() const {
    return static_cast<double>(total) - 5.0 * static_cast<double>(invalid);
  }
};

DisasmAudit audit(std::span<const std::uint32_t> program);

}  // namespace chatfuzz::riscv
