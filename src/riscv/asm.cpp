#include "riscv/asm.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "riscv/csr.h"
#include "riscv/encode.h"

namespace chatfuzz::riscv {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Split the operand field on commas (whitespace-tolerant).
std::vector<std::string> split_operands(std::string_view s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == ',') {
      const std::string_view piece = trim(s.substr(start, i - start));
      if (!piece.empty()) out.emplace_back(piece);
      start = i + 1;
    }
  }
  return out;
}

bool parse_int(std::string_view token, std::int64_t& value) {
  const std::string t(token);
  char* end = nullptr;
  value = std::strtoll(t.c_str(), &end, 0);
  return end != nullptr && *end == '\0' && end != t.c_str();
}

/// Parse "imm(reg)" or "(reg)"; imm defaults to 0.
bool parse_mem(std::string_view token, std::int64_t& imm, std::uint8_t& reg) {
  const std::size_t open = token.find('(');
  const std::size_t close = token.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    return false;
  }
  imm = 0;
  const std::string_view imm_part = trim(token.substr(0, open));
  if (!imm_part.empty() && !parse_int(imm_part, imm)) return false;
  const auto r = parse_reg(trim(token.substr(open + 1, close - open - 1)));
  if (!r) return false;
  reg = *r;
  return true;
}

const std::unordered_map<std::string_view, Opcode>& mnemonic_map() {
  static const auto map = [] {
    std::unordered_map<std::string_view, Opcode> m;
    for (std::size_t i = 0; i < kNumOpcodes; ++i) {
      m.emplace(all_specs()[i].mnemonic, all_specs()[i].op);
    }
    return m;
  }();
  return map;
}

bool fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

}  // namespace

std::optional<std::uint8_t> parse_reg(std::string_view token) {
  for (std::uint8_t r = 0; r < 32; ++r) {
    if (token == reg_name(r)) return r;
  }
  if (token.size() >= 2 && (token[0] == 'x' || token[0] == 'X')) {
    std::int64_t n = 0;
    if (parse_int(token.substr(1), n) && n >= 0 && n < 32) {
      return static_cast<std::uint8_t>(n);
    }
  }
  return std::nullopt;
}

std::optional<std::uint32_t> assemble_line(std::string_view line,
                                           std::string* error) {
  std::string_view text = trim(line);

  if (text.rfind(".word", 0) == 0) {
    std::int64_t v = 0;
    if (!parse_int(trim(text.substr(5)), v)) {
      fail(error, ".word: bad literal");
      return std::nullopt;
    }
    return static_cast<std::uint32_t>(v);
  }

  // Mnemonic = leading non-space run.
  std::size_t sp = 0;
  while (sp < text.size() && !std::isspace(static_cast<unsigned char>(text[sp]))) {
    ++sp;
  }
  std::string mnem(text.substr(0, sp));
  const std::string_view rest = trim(text.substr(sp));

  // AMO ordering suffixes.
  bool aq = false, rl = false;
  auto strip = [&](const char* suffix, bool a, bool r) {
    const std::size_t n = std::string(suffix).size();
    if (mnem.size() > n && mnem.compare(mnem.size() - n, n, suffix) == 0) {
      mnem.resize(mnem.size() - n);
      aq = a;
      rl = r;
      return true;
    }
    return false;
  };
  if (mnemonic_map().count(mnem) == 0) {
    strip(".aqrl", true, true) || strip(".aq", true, false) ||
        strip(".rl", false, true);
  }

  const auto it = mnemonic_map().find(mnem);
  if (it == mnemonic_map().end()) {
    fail(error, "unknown mnemonic: " + mnem);
    return std::nullopt;
  }

  Decoded d;
  d.op = it->second;
  d.aq = aq;
  d.rl = rl;
  const InstrSpec& s = spec(d.op);
  const std::vector<std::string> ops = split_operands(rest);
  auto need = [&](std::size_t n) {
    if (ops.size() != n) {
      fail(error, mnem + ": expected " + std::to_string(n) + " operands");
      return false;
    }
    return true;
  };
  auto reg_at = [&](std::size_t i, std::uint8_t& out) {
    const auto r = parse_reg(ops[i]);
    if (!r) {
      fail(error, mnem + ": bad register '" + ops[i] + "'");
      return false;
    }
    out = *r;
    return true;
  };
  auto imm_at = [&](std::size_t i, std::int64_t& out) {
    if (!parse_int(ops[i], out)) {
      fail(error, mnem + ": bad immediate '" + ops[i] + "'");
      return false;
    }
    return true;
  };
  auto csr_at = [&](std::size_t i, std::uint16_t& out) {
    // Architectural name ("satp") or a bare numeric address.
    if (const auto named = csr::from_name(ops[i])) {
      out = *named;
      return true;
    }
    std::int64_t addr = 0;
    if (!parse_int(ops[i], addr) || addr < 0 || addr > 0xfff) {
      fail(error, mnem + ": bad CSR '" + ops[i] + "'");
      return false;
    }
    out = static_cast<std::uint16_t>(addr);
    return true;
  };
  auto check_range = [&] {
    if (!fits_imm(d.op, d.imm)) {
      fail(error, mnem + ": immediate out of range");
      return false;
    }
    return true;
  };

  const bool is_load = d.op == Opcode::kLb || d.op == Opcode::kLh ||
                       d.op == Opcode::kLw || d.op == Opcode::kLd ||
                       d.op == Opcode::kLbu || d.op == Opcode::kLhu ||
                       d.op == Opcode::kLwu || d.op == Opcode::kJalr;
  switch (s.format) {
    case Format::kR:
      if (!need(3) || !reg_at(0, d.rd) || !reg_at(1, d.rs1) || !reg_at(2, d.rs2)) {
        return std::nullopt;
      }
      break;
    case Format::kI:
      if (is_load) {
        if (!need(2) || !reg_at(0, d.rd)) return std::nullopt;
        if (!parse_mem(ops[1], d.imm, d.rs1)) {
          fail(error, mnem + ": expected imm(reg)");
          return std::nullopt;
        }
        if (!check_range()) return std::nullopt;
      } else {
        if (!need(3) || !reg_at(0, d.rd) || !reg_at(1, d.rs1) ||
            !imm_at(2, d.imm) || !check_range()) {
          return std::nullopt;
        }
      }
      break;
    case Format::kIShift64:
    case Format::kIShift32:
      if (!need(3) || !reg_at(0, d.rd) || !reg_at(1, d.rs1) ||
          !imm_at(2, d.imm) || !check_range()) {
        return std::nullopt;
      }
      break;
    case Format::kS:
      if (!need(2) || !reg_at(0, d.rs2)) return std::nullopt;
      if (!parse_mem(ops[1], d.imm, d.rs1)) {
        fail(error, mnem + ": expected imm(reg)");
        return std::nullopt;
      }
      if (!check_range()) return std::nullopt;
      break;
    case Format::kB:
      if (!need(3) || !reg_at(0, d.rs1) || !reg_at(1, d.rs2) ||
          !imm_at(2, d.imm) || !check_range()) {
        return std::nullopt;
      }
      break;
    case Format::kU: {
      if (!need(2) || !reg_at(0, d.rd)) return std::nullopt;
      std::int64_t imm20 = 0;
      if (!imm_at(1, imm20)) return std::nullopt;
      if (imm20 < -(1 << 19) || imm20 > 0xfffff) {
        fail(error, mnem + ": imm20 out of range");
        return std::nullopt;
      }
      d.imm = (imm20 & 0xfffff) << 12;
      // sign-extend the packed form like the decoder does
      d.imm = static_cast<std::int64_t>(
          static_cast<std::int32_t>(static_cast<std::uint32_t>(d.imm)));
      break;
    }
    case Format::kJ:
      if (!need(2) || !reg_at(0, d.rd) || !imm_at(1, d.imm) || !check_range()) {
        return std::nullopt;
      }
      break;
    case Format::kFence:
    case Format::kSystem:
      if (!need(0)) return std::nullopt;
      break;
    case Format::kSfence:
      // Accept both the bare form (flush everything) and "rs1, rs2".
      if (ops.empty()) break;
      if (!need(2) || !reg_at(0, d.rs1) || !reg_at(1, d.rs2)) {
        return std::nullopt;
      }
      break;
    case Format::kCsr: {
      if (!need(3) || !reg_at(0, d.rd) || !csr_at(1, d.csr) ||
          !reg_at(2, d.rs1)) {
        return std::nullopt;
      }
      break;
    }
    case Format::kCsrImm: {
      std::int64_t zimm = 0;
      if (!need(3) || !reg_at(0, d.rd) || !csr_at(1, d.csr) ||
          !imm_at(2, zimm)) {
        return std::nullopt;
      }
      if (zimm < 0 || zimm > 31) {
        fail(error, mnem + ": zimm out of range");
        return std::nullopt;
      }
      d.rs1 = static_cast<std::uint8_t>(zimm);
      break;
    }
    case Format::kAmo: {
      if (!need(3) || !reg_at(0, d.rd) || !reg_at(1, d.rs2)) return std::nullopt;
      std::int64_t unused = 0;
      if (!parse_mem(ops[2], unused, d.rs1) || unused != 0) {
        fail(error, mnem + ": expected (reg)");
        return std::nullopt;
      }
      break;
    }
    case Format::kLoadRes: {
      if (!need(2) || !reg_at(0, d.rd)) return std::nullopt;
      std::int64_t unused = 0;
      if (!parse_mem(ops[1], unused, d.rs1) || unused != 0) {
        fail(error, mnem + ": expected (reg)");
        return std::nullopt;
      }
      break;
    }
  }
  return encode(d);
}

std::optional<std::vector<std::uint32_t>> assemble(std::string_view text,
                                                   std::string* error) {
  std::vector<std::uint32_t> out;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    ++line_no;
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    // Strip comments.
    for (const auto marker : {std::string_view("#"), std::string_view("//")}) {
      const std::size_t at = line.find(marker);
      if (at != std::string_view::npos) line = line.substr(0, at);
    }
    line = trim(line);
    if (line.empty()) continue;
    std::string err;
    const auto word = assemble_line(line, &err);
    if (!word) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + err;
      }
      return std::nullopt;
    }
    out.push_back(*word);
  }
  return out;
}

}  // namespace chatfuzz::riscv
