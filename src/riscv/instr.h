// RISC-V instruction model: opcode enumeration, encoding formats, and the
// decoded-instruction record shared by the encoder, decoder, disassembler,
// golden-model simulator and the RTL-level pipeline model.
//
// Scope: RV64I + M + A + Zicsr + Zifencei + privileged returns. This is the
// instruction surface RocketCore's integer pipeline exposes and is the
// surface the ChatFuzz paper fuzzes (floating point is out of scope for the
// reproduction; see DESIGN.md).
#pragma once

#include <cstdint>
#include <string_view>

namespace chatfuzz::riscv {

/// Instruction encoding format. Determines which operand fields exist and
/// how the immediate is packed into the 32-bit word.
enum class Format {
  kR,        // rd, rs1, rs2           (register-register ALU)
  kI,        // rd, rs1, imm12         (ALU-immediate, loads, jalr)
  kIShift64, // rd, rs1, shamt[5:0]    (RV64 shifts)
  kIShift32, // rd, rs1, shamt[4:0]    (*W shifts)
  kS,        // rs1, rs2, imm12        (stores)
  kB,        // rs1, rs2, imm13        (branches, imm is byte offset)
  kU,        // rd, imm20<<12          (lui/auipc)
  kJ,        // rd, imm21              (jal, imm is byte offset)
  kFence,    // pred/succ ignored
  kSystem,   // fully fixed encoding (ecall/ebreak/mret/sret/wfi)
  kSfence,   // rs1(vaddr), rs2(asid), rd==0  (sfence.vma)
  kCsr,      // rd, csr, rs1
  kCsrImm,   // rd, csr, zimm5
  kAmo,      // rd, rs1(addr), rs2, aq/rl
  kLoadRes,  // lr: rd, rs1, rs2==0
};

/// ISA extension an opcode belongs to (used by the corpus generator to
/// control rare-instruction frequency, and by reports).
enum class Ext { kI, kM, kA, kZicsr, kZifencei, kPriv };

// X-macro master table: opcode id, mnemonic, format, match, mask, extension.
// `match`/`mask` follow the riscv-opcodes convention: an encoding `raw`
// denotes this instruction iff (raw & mask) == match.
#define CHATFUZZ_RISCV_OPCODES(X)                                              \
  /* RV64I: upper immediates & jumps */                                        \
  X(kLui,    "lui",    Format::kU, 0x00000037u, 0x0000007fu, Ext::kI)          \
  X(kAuipc,  "auipc",  Format::kU, 0x00000017u, 0x0000007fu, Ext::kI)          \
  X(kJal,    "jal",    Format::kJ, 0x0000006fu, 0x0000007fu, Ext::kI)          \
  X(kJalr,   "jalr",   Format::kI, 0x00000067u, 0x0000707fu, Ext::kI)          \
  /* Branches */                                                               \
  X(kBeq,    "beq",    Format::kB, 0x00000063u, 0x0000707fu, Ext::kI)          \
  X(kBne,    "bne",    Format::kB, 0x00001063u, 0x0000707fu, Ext::kI)          \
  X(kBlt,    "blt",    Format::kB, 0x00004063u, 0x0000707fu, Ext::kI)          \
  X(kBge,    "bge",    Format::kB, 0x00005063u, 0x0000707fu, Ext::kI)          \
  X(kBltu,   "bltu",   Format::kB, 0x00006063u, 0x0000707fu, Ext::kI)          \
  X(kBgeu,   "bgeu",   Format::kB, 0x00007063u, 0x0000707fu, Ext::kI)          \
  /* Loads */                                                                  \
  X(kLb,     "lb",     Format::kI, 0x00000003u, 0x0000707fu, Ext::kI)          \
  X(kLh,     "lh",     Format::kI, 0x00001003u, 0x0000707fu, Ext::kI)          \
  X(kLw,     "lw",     Format::kI, 0x00002003u, 0x0000707fu, Ext::kI)          \
  X(kLd,     "ld",     Format::kI, 0x00003003u, 0x0000707fu, Ext::kI)          \
  X(kLbu,    "lbu",    Format::kI, 0x00004003u, 0x0000707fu, Ext::kI)          \
  X(kLhu,    "lhu",    Format::kI, 0x00005003u, 0x0000707fu, Ext::kI)          \
  X(kLwu,    "lwu",    Format::kI, 0x00006003u, 0x0000707fu, Ext::kI)          \
  /* Stores */                                                                 \
  X(kSb,     "sb",     Format::kS, 0x00000023u, 0x0000707fu, Ext::kI)          \
  X(kSh,     "sh",     Format::kS, 0x00001023u, 0x0000707fu, Ext::kI)          \
  X(kSw,     "sw",     Format::kS, 0x00002023u, 0x0000707fu, Ext::kI)          \
  X(kSd,     "sd",     Format::kS, 0x00003023u, 0x0000707fu, Ext::kI)          \
  /* ALU immediate */                                                          \
  X(kAddi,   "addi",   Format::kI, 0x00000013u, 0x0000707fu, Ext::kI)          \
  X(kSlti,   "slti",   Format::kI, 0x00002013u, 0x0000707fu, Ext::kI)          \
  X(kSltiu,  "sltiu",  Format::kI, 0x00003013u, 0x0000707fu, Ext::kI)          \
  X(kXori,   "xori",   Format::kI, 0x00004013u, 0x0000707fu, Ext::kI)          \
  X(kOri,    "ori",    Format::kI, 0x00006013u, 0x0000707fu, Ext::kI)          \
  X(kAndi,   "andi",   Format::kI, 0x00007013u, 0x0000707fu, Ext::kI)          \
  X(kSlli,   "slli",   Format::kIShift64, 0x00001013u, 0xfc00707fu, Ext::kI)   \
  X(kSrli,   "srli",   Format::kIShift64, 0x00005013u, 0xfc00707fu, Ext::kI)   \
  X(kSrai,   "srai",   Format::kIShift64, 0x40005013u, 0xfc00707fu, Ext::kI)   \
  /* ALU register */                                                           \
  X(kAdd,    "add",    Format::kR, 0x00000033u, 0xfe00707fu, Ext::kI)          \
  X(kSub,    "sub",    Format::kR, 0x40000033u, 0xfe00707fu, Ext::kI)          \
  X(kSll,    "sll",    Format::kR, 0x00001033u, 0xfe00707fu, Ext::kI)          \
  X(kSlt,    "slt",    Format::kR, 0x00002033u, 0xfe00707fu, Ext::kI)          \
  X(kSltu,   "sltu",   Format::kR, 0x00003033u, 0xfe00707fu, Ext::kI)          \
  X(kXor,    "xor",    Format::kR, 0x00004033u, 0xfe00707fu, Ext::kI)          \
  X(kSrl,    "srl",    Format::kR, 0x00005033u, 0xfe00707fu, Ext::kI)          \
  X(kSra,    "sra",    Format::kR, 0x40005033u, 0xfe00707fu, Ext::kI)          \
  X(kOr,     "or",     Format::kR, 0x00006033u, 0xfe00707fu, Ext::kI)          \
  X(kAnd,    "and",    Format::kR, 0x00007033u, 0xfe00707fu, Ext::kI)          \
  /* RV64 *W immediate & register */                                           \
  X(kAddiw,  "addiw",  Format::kI, 0x0000001bu, 0x0000707fu, Ext::kI)          \
  X(kSlliw,  "slliw",  Format::kIShift32, 0x0000101bu, 0xfe00707fu, Ext::kI)   \
  X(kSrliw,  "srliw",  Format::kIShift32, 0x0000501bu, 0xfe00707fu, Ext::kI)   \
  X(kSraiw,  "sraiw",  Format::kIShift32, 0x4000501bu, 0xfe00707fu, Ext::kI)   \
  X(kAddw,   "addw",   Format::kR, 0x0000003bu, 0xfe00707fu, Ext::kI)          \
  X(kSubw,   "subw",   Format::kR, 0x4000003bu, 0xfe00707fu, Ext::kI)          \
  X(kSllw,   "sllw",   Format::kR, 0x0000103bu, 0xfe00707fu, Ext::kI)          \
  X(kSrlw,   "srlw",   Format::kR, 0x0000503bu, 0xfe00707fu, Ext::kI)          \
  X(kSraw,   "sraw",   Format::kR, 0x4000503bu, 0xfe00707fu, Ext::kI)          \
  /* Fences */                                                                 \
  X(kFence,  "fence",  Format::kFence, 0x0000000fu, 0x0000707fu, Ext::kI)      \
  X(kFenceI, "fence.i", Format::kFence, 0x0000100fu, 0x0000707fu, Ext::kZifencei) \
  /* System (fully fixed) */                                                   \
  X(kEcall,  "ecall",  Format::kSystem, 0x00000073u, 0xffffffffu, Ext::kI)     \
  X(kEbreak, "ebreak", Format::kSystem, 0x00100073u, 0xffffffffu, Ext::kI)     \
  X(kMret,   "mret",   Format::kSystem, 0x30200073u, 0xffffffffu, Ext::kPriv)  \
  X(kSret,   "sret",   Format::kSystem, 0x10200073u, 0xffffffffu, Ext::kPriv)  \
  X(kWfi,    "wfi",    Format::kSystem, 0x10500073u, 0xffffffffu, Ext::kPriv)  \
  X(kSfenceVma, "sfence.vma", Format::kSfence, 0x12000073u, 0xfe007fffu, Ext::kPriv) \
  /* Zicsr */                                                                  \
  X(kCsrrw,  "csrrw",  Format::kCsr,    0x00001073u, 0x0000707fu, Ext::kZicsr) \
  X(kCsrrs,  "csrrs",  Format::kCsr,    0x00002073u, 0x0000707fu, Ext::kZicsr) \
  X(kCsrrc,  "csrrc",  Format::kCsr,    0x00003073u, 0x0000707fu, Ext::kZicsr) \
  X(kCsrrwi, "csrrwi", Format::kCsrImm, 0x00005073u, 0x0000707fu, Ext::kZicsr) \
  X(kCsrrsi, "csrrsi", Format::kCsrImm, 0x00006073u, 0x0000707fu, Ext::kZicsr) \
  X(kCsrrci, "csrrci", Format::kCsrImm, 0x00007073u, 0x0000707fu, Ext::kZicsr) \
  /* M extension */                                                            \
  X(kMul,    "mul",    Format::kR, 0x02000033u, 0xfe00707fu, Ext::kM)          \
  X(kMulh,   "mulh",   Format::kR, 0x02001033u, 0xfe00707fu, Ext::kM)          \
  X(kMulhsu, "mulhsu", Format::kR, 0x02002033u, 0xfe00707fu, Ext::kM)          \
  X(kMulhu,  "mulhu",  Format::kR, 0x02003033u, 0xfe00707fu, Ext::kM)          \
  X(kDiv,    "div",    Format::kR, 0x02004033u, 0xfe00707fu, Ext::kM)          \
  X(kDivu,   "divu",   Format::kR, 0x02005033u, 0xfe00707fu, Ext::kM)          \
  X(kRem,    "rem",    Format::kR, 0x02006033u, 0xfe00707fu, Ext::kM)          \
  X(kRemu,   "remu",   Format::kR, 0x02007033u, 0xfe00707fu, Ext::kM)          \
  X(kMulw,   "mulw",   Format::kR, 0x0200003bu, 0xfe00707fu, Ext::kM)          \
  X(kDivw,   "divw",   Format::kR, 0x0200403bu, 0xfe00707fu, Ext::kM)          \
  X(kDivuw,  "divuw",  Format::kR, 0x0200503bu, 0xfe00707fu, Ext::kM)          \
  X(kRemw,   "remw",   Format::kR, 0x0200603bu, 0xfe00707fu, Ext::kM)          \
  X(kRemuw,  "remuw",  Format::kR, 0x0200703bu, 0xfe00707fu, Ext::kM)          \
  /* A extension, 32-bit */                                                    \
  X(kLrW,      "lr.w",      Format::kLoadRes, 0x1000202fu, 0xf9f0707fu, Ext::kA) \
  X(kScW,      "sc.w",      Format::kAmo, 0x1800202fu, 0xf800707fu, Ext::kA)   \
  X(kAmoSwapW, "amoswap.w", Format::kAmo, 0x0800202fu, 0xf800707fu, Ext::kA)   \
  X(kAmoAddW,  "amoadd.w",  Format::kAmo, 0x0000202fu, 0xf800707fu, Ext::kA)   \
  X(kAmoXorW,  "amoxor.w",  Format::kAmo, 0x2000202fu, 0xf800707fu, Ext::kA)   \
  X(kAmoAndW,  "amoand.w",  Format::kAmo, 0x6000202fu, 0xf800707fu, Ext::kA)   \
  X(kAmoOrW,   "amoor.w",   Format::kAmo, 0x4000202fu, 0xf800707fu, Ext::kA)   \
  X(kAmoMinW,  "amomin.w",  Format::kAmo, 0x8000202fu, 0xf800707fu, Ext::kA)   \
  X(kAmoMaxW,  "amomax.w",  Format::kAmo, 0xa000202fu, 0xf800707fu, Ext::kA)   \
  X(kAmoMinuW, "amominu.w", Format::kAmo, 0xc000202fu, 0xf800707fu, Ext::kA)   \
  X(kAmoMaxuW, "amomaxu.w", Format::kAmo, 0xe000202fu, 0xf800707fu, Ext::kA)   \
  /* A extension, 64-bit */                                                    \
  X(kLrD,      "lr.d",      Format::kLoadRes, 0x1000302fu, 0xf9f0707fu, Ext::kA) \
  X(kScD,      "sc.d",      Format::kAmo, 0x1800302fu, 0xf800707fu, Ext::kA)   \
  X(kAmoSwapD, "amoswap.d", Format::kAmo, 0x0800302fu, 0xf800707fu, Ext::kA)   \
  X(kAmoAddD,  "amoadd.d",  Format::kAmo, 0x0000302fu, 0xf800707fu, Ext::kA)   \
  X(kAmoXorD,  "amoxor.d",  Format::kAmo, 0x2000302fu, 0xf800707fu, Ext::kA)   \
  X(kAmoAndD,  "amoand.d",  Format::kAmo, 0x6000302fu, 0xf800707fu, Ext::kA)   \
  X(kAmoOrD,   "amoor.d",   Format::kAmo, 0x4000302fu, 0xf800707fu, Ext::kA)   \
  X(kAmoMinD,  "amomin.d",  Format::kAmo, 0x8000302fu, 0xf800707fu, Ext::kA)   \
  X(kAmoMaxD,  "amomax.d",  Format::kAmo, 0xa000302fu, 0xf800707fu, Ext::kA)   \
  X(kAmoMinuD, "amominu.d", Format::kAmo, 0xc000302fu, 0xf800707fu, Ext::kA)   \
  X(kAmoMaxuD, "amomaxu.d", Format::kAmo, 0xe000302fu, 0xf800707fu, Ext::kA)

enum class Opcode : std::uint16_t {
#define X(id, mnem, fmt, match, mask, ext) id,
  CHATFUZZ_RISCV_OPCODES(X)
#undef X
  kInvalid,  // sentinel: decode failure
};

/// Number of real (decodable) opcodes.
constexpr std::size_t kNumOpcodes = static_cast<std::size_t>(Opcode::kInvalid);

/// Static description of one instruction encoding.
struct InstrSpec {
  Opcode op;
  std::string_view mnemonic;
  Format format;
  std::uint32_t match;
  std::uint32_t mask;
  Ext ext;
};

/// A decoded instruction. For formats without a given field, the field is 0.
/// `imm` is the sign-extended immediate; for branches/jumps it is the byte
/// offset relative to the instruction's own PC.
struct Decoded {
  Opcode op = Opcode::kInvalid;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int64_t imm = 0;
  std::uint16_t csr = 0;   // Zicsr address field
  bool aq = false;         // AMO acquire bit
  bool rl = false;         // AMO release bit
  std::uint32_t raw = 0;

  bool valid() const { return op != Opcode::kInvalid; }
};

/// Table of all instruction specs, indexed by Opcode value.
const InstrSpec& spec(Opcode op);

/// All specs, for table-driven tests and generators.
const InstrSpec* all_specs();

/// Mnemonic for an opcode ("<invalid>" for the sentinel).
std::string_view mnemonic(Opcode op);

/// ABI register names x0..x31 ("zero", "ra", "sp", ...).
std::string_view reg_name(std::uint8_t reg);

}  // namespace chatfuzz::riscv
