// Decoder: classify a 32-bit word against the instruction table and extract
// operand fields. decode() is the single source of truth for "is this word a
// valid instruction" — the disassembler reward agent (training stage 2), both
// simulators, and the mutational baselines all use it.
#pragma once

#include <cstdint>
#include <span>

#include "riscv/instr.h"

namespace chatfuzz::riscv {

/// Decode one instruction word. Returns Decoded with op==kInvalid when the
/// word matches no known encoding (reserved funct fields, bad major opcode,
/// or a compressed/half-word encoding, which this model does not implement).
Decoded decode(std::uint32_t raw);

/// Fast validity check (same classification as decode, no field extraction).
bool is_valid(std::uint32_t raw);

/// Count invalid words in an instruction stream (the `Invalid_i` term of the
/// paper's Eq. 1 reward).
std::size_t count_invalid(std::span<const std::uint32_t> program);

}  // namespace chatfuzz::riscv
