#include "riscv/encode.h"

namespace chatfuzz::riscv {

namespace {
constexpr std::uint32_t rd_bits(unsigned rd) { return (rd & 31u) << 7; }
constexpr std::uint32_t rs1_bits(unsigned rs1) { return (rs1 & 31u) << 15; }
constexpr std::uint32_t rs2_bits(unsigned rs2) { return (rs2 & 31u) << 20; }

constexpr std::uint32_t imm_i(std::int64_t imm) {
  return (static_cast<std::uint32_t>(imm) & 0xfffu) << 20;
}
constexpr std::uint32_t imm_s(std::int64_t imm) {
  const auto u = static_cast<std::uint32_t>(imm);
  return ((u >> 5) & 0x7fu) << 25 | (u & 0x1fu) << 7;
}
constexpr std::uint32_t imm_b(std::int64_t imm) {
  const auto u = static_cast<std::uint32_t>(imm);
  return ((u >> 12) & 1u) << 31 | ((u >> 5) & 0x3fu) << 25 |
         ((u >> 1) & 0xfu) << 8 | ((u >> 11) & 1u) << 7;
}
constexpr std::uint32_t imm_u(std::int64_t imm) {
  // `imm` carries the full (value << 12); keep bits 31:12.
  return static_cast<std::uint32_t>(imm) & 0xfffff000u;
}
constexpr std::uint32_t imm_j(std::int64_t imm) {
  const auto u = static_cast<std::uint32_t>(imm);
  return ((u >> 20) & 1u) << 31 | ((u >> 1) & 0x3ffu) << 21 |
         ((u >> 11) & 1u) << 20 | ((u >> 12) & 0xffu) << 12;
}
}  // namespace

std::uint32_t encode(const Decoded& d) {
  const InstrSpec& s = spec(d.op);
  std::uint32_t word = s.match;
  switch (s.format) {
    case Format::kR:
      word |= rd_bits(d.rd) | rs1_bits(d.rs1) | rs2_bits(d.rs2);
      break;
    case Format::kI:
      word |= rd_bits(d.rd) | rs1_bits(d.rs1) | imm_i(d.imm);
      break;
    case Format::kIShift64:
      word |= rd_bits(d.rd) | rs1_bits(d.rs1) |
              ((static_cast<std::uint32_t>(d.imm) & 0x3fu) << 20);
      break;
    case Format::kIShift32:
      word |= rd_bits(d.rd) | rs1_bits(d.rs1) |
              ((static_cast<std::uint32_t>(d.imm) & 0x1fu) << 20);
      break;
    case Format::kS:
      word |= rs1_bits(d.rs1) | rs2_bits(d.rs2) | imm_s(d.imm);
      break;
    case Format::kB:
      word |= rs1_bits(d.rs1) | rs2_bits(d.rs2) | imm_b(d.imm);
      break;
    case Format::kU:
      word |= rd_bits(d.rd) | imm_u(d.imm);
      break;
    case Format::kJ:
      word |= rd_bits(d.rd) | imm_j(d.imm);
      break;
    case Format::kFence:
    case Format::kSystem:
      break;  // fully fixed
    case Format::kSfence:
      word |= rs1_bits(d.rs1) | rs2_bits(d.rs2);
      break;
    case Format::kCsr:
      word |= rd_bits(d.rd) | rs1_bits(d.rs1) |
              (static_cast<std::uint32_t>(d.csr & 0xfffu) << 20);
      break;
    case Format::kCsrImm:
      word |= rd_bits(d.rd) | rs1_bits(d.rs1) |  // rs1 field carries zimm5
              (static_cast<std::uint32_t>(d.csr & 0xfffu) << 20);
      break;
    case Format::kAmo:
      word |= rd_bits(d.rd) | rs1_bits(d.rs1) | rs2_bits(d.rs2) |
              (d.aq ? 1u << 26 : 0u) | (d.rl ? 1u << 25 : 0u);
      break;
    case Format::kLoadRes:
      word |= rd_bits(d.rd) | rs1_bits(d.rs1) | (d.aq ? 1u << 26 : 0u) |
              (d.rl ? 1u << 25 : 0u);
      break;
  }
  return word;
}

bool fits_imm(Opcode op, std::int64_t imm) {
  switch (spec(op).format) {
    case Format::kI:
    case Format::kS:
      return imm >= -2048 && imm <= 2047;
    case Format::kIShift64:
      return imm >= 0 && imm <= 63;
    case Format::kIShift32:
      return imm >= 0 && imm <= 31;
    case Format::kB:
      return imm >= -4096 && imm <= 4094 && (imm & 1) == 0;
    case Format::kU:
      return (imm & 0xfffll) == 0 && imm >= -(1ll << 31) && imm < (1ll << 31);
    case Format::kJ:
      return imm >= -(1 << 20) && imm <= (1 << 20) - 2 && (imm & 1) == 0;
    default:
      return imm == 0;
  }
}

std::uint32_t enc_r(Opcode op, unsigned rd, unsigned rs1, unsigned rs2) {
  Decoded d;
  d.op = op;
  d.rd = static_cast<std::uint8_t>(rd);
  d.rs1 = static_cast<std::uint8_t>(rs1);
  d.rs2 = static_cast<std::uint8_t>(rs2);
  return encode(d);
}

std::uint32_t enc_i(Opcode op, unsigned rd, unsigned rs1, std::int32_t imm) {
  Decoded d;
  d.op = op;
  d.rd = static_cast<std::uint8_t>(rd);
  d.rs1 = static_cast<std::uint8_t>(rs1);
  d.imm = imm;
  return encode(d);
}

std::uint32_t enc_shift(Opcode op, unsigned rd, unsigned rs1, unsigned shamt) {
  Decoded d;
  d.op = op;
  d.rd = static_cast<std::uint8_t>(rd);
  d.rs1 = static_cast<std::uint8_t>(rs1);
  d.imm = shamt;
  return encode(d);
}

std::uint32_t enc_s(Opcode op, unsigned rs1, unsigned rs2, std::int32_t imm) {
  Decoded d;
  d.op = op;
  d.rs1 = static_cast<std::uint8_t>(rs1);
  d.rs2 = static_cast<std::uint8_t>(rs2);
  d.imm = imm;
  return encode(d);
}

std::uint32_t enc_b(Opcode op, unsigned rs1, unsigned rs2, std::int32_t offset) {
  Decoded d;
  d.op = op;
  d.rs1 = static_cast<std::uint8_t>(rs1);
  d.rs2 = static_cast<std::uint8_t>(rs2);
  d.imm = offset;
  return encode(d);
}

std::uint32_t enc_u(Opcode op, unsigned rd, std::int32_t imm20) {
  Decoded d;
  d.op = op;
  d.rd = static_cast<std::uint8_t>(rd);
  d.imm = static_cast<std::int64_t>(imm20) << 12;
  return encode(d);
}

std::uint32_t enc_j(Opcode op, unsigned rd, std::int32_t offset) {
  Decoded d;
  d.op = op;
  d.rd = static_cast<std::uint8_t>(rd);
  d.imm = offset;
  return encode(d);
}

std::uint32_t enc_csr(Opcode op, unsigned rd, std::uint16_t csr,
                      unsigned rs1_or_zimm) {
  Decoded d;
  d.op = op;
  d.rd = static_cast<std::uint8_t>(rd);
  d.rs1 = static_cast<std::uint8_t>(rs1_or_zimm);
  d.csr = csr;
  return encode(d);
}

std::uint32_t enc_amo(Opcode op, unsigned rd, unsigned addr_rs1, unsigned rs2,
                      bool aq, bool rl) {
  Decoded d;
  d.op = op;
  d.rd = static_cast<std::uint8_t>(rd);
  d.rs1 = static_cast<std::uint8_t>(addr_rs1);
  d.rs2 = static_cast<std::uint8_t>(rs2);
  d.aq = aq;
  d.rl = rl;
  return encode(d);
}

std::uint32_t enc_sys(Opcode op) {
  Decoded d;
  d.op = op;
  return encode(d);
}

std::uint32_t enc_sfence(unsigned vaddr_rs1, unsigned asid_rs2) {
  Decoded d;
  d.op = Opcode::kSfenceVma;
  d.rs1 = static_cast<std::uint8_t>(vaddr_rs1);
  d.rs2 = static_cast<std::uint8_t>(asid_rs2);
  return encode(d);
}

}  // namespace chatfuzz::riscv
