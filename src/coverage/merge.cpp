#include "coverage/merge.h"

#include <algorithm>
#include <map>

namespace chatfuzz::cov {

bool merge_into(CoverageDB& dst, const CoverageDB& src) {
  if (dst.num_points() != src.num_points()) return false;
  for (std::size_t i = 0; i < dst.num_points(); ++i) {
    if (dst.point_name(static_cast<PointId>(i)) !=
        src.point_name(static_cast<PointId>(i))) {
      return false;
    }
  }
  for (std::size_t i = 0; i < dst.num_points(); ++i) {
    const auto id = static_cast<PointId>(i);
    dst.add_hits(id, false, src.bin_hits(2 * i));
    dst.add_hits(id, true, src.bin_hits(2 * i + 1));
  }
  return true;
}

std::vector<ReportEntry> merge_reports(
    const std::vector<std::vector<ReportEntry>>& reports) {
  std::map<std::string, ReportEntry> merged;
  for (const auto& report : reports) {
    for (const ReportEntry& e : report) {
      ReportEntry& slot = merged[e.name];
      slot.name = e.name;
      slot.true_hits += e.true_hits;
      slot.false_hits += e.false_hits;
    }
  }
  std::vector<ReportEntry> out;
  out.reserve(merged.size());
  for (auto& [name, e] : merged) out.push_back(std::move(e));
  return out;
}

std::vector<BinDelta> extract_bins(const CoverageDB& src) {
  std::vector<BinDelta> out;
  extract_bins(src, out);
  return out;
}

void extract_bins(const CoverageDB& src, std::vector<BinDelta>& out) {
  out.clear();
  // Word-ordered walk of the dirty bitmap yields bins in ascending order,
  // exactly like the full scan — no sorting pass.
  const std::vector<std::uint64_t>& words = src.dirty_words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t bits = words[w];
    while (bits != 0) {
      const auto bin = static_cast<std::uint32_t>(
          w * 64 + static_cast<unsigned>(__builtin_ctzll(bits)));
      bits &= bits - 1;
      out.push_back({bin, src.bin_hits(bin)});
    }
  }
}

void apply_bins(CoverageDB& dst, const std::vector<BinDelta>& bins) {
  for (const BinDelta& d : bins) {
    dst.add_bin_hits(d.bin, d.hits);
  }
}

void write_bin_deltas(ser::Writer& w, const std::vector<BinDelta>& bins) {
  w.varint(bins.size());
  // Bin ids ride as gaps off the previous id: extract_bins() produces
  // ascending order and neighboring bins cluster, so gap + hit count are
  // usually one varint byte each — 2 bytes against 12 for fixed-width,
  // which is most of a distributed worker's per-test result frame.
  std::uint32_t prev = 0;
  for (const BinDelta& d : bins) {
    w.varint(d.bin - prev);
    w.varint(d.hits);
    prev = d.bin;
  }
}

bool read_bin_deltas(ser::Reader& r, std::vector<BinDelta>& out) {
  out.clear();
  const std::uint64_t n = r.varint();
  // Two bytes minimum per delta: a corrupt count must not turn into an OOM.
  if (!r.ok() || n > r.remaining() / 2) {
    r.fail();
    return false;
  }
  out.reserve(n);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    BinDelta d;
    prev += r.varint();
    if (prev > 0xffffffffull) {
      r.fail();
      return false;
    }
    d.bin = static_cast<std::uint32_t>(prev);
    d.hits = r.varint();
    out.push_back(d);
    if (!r.ok()) return false;
  }
  return r.ok();
}

std::vector<UncoveredPoint> uncovered_points(const CoverageDB& db) {
  std::vector<UncoveredPoint> out;
  for (std::size_t i = 0; i < db.num_points(); ++i) {
    const bool t = db.bin_covered(2 * i + 1);
    const bool f = db.bin_covered(2 * i);
    if (t && f) continue;
    out.push_back({db.point_name(static_cast<PointId>(i)), !t, !f});
  }
  return out;
}

}  // namespace chatfuzz::cov
