// Condition-coverage database, modeled on what Synopsys VCS reports for
// `-cm cond`: every boolean condition in the DUT contributes one *point*
// with two *bins* (evaluated-true, evaluated-false). Coverage percentage is
// covered-bins / total-bins — the metric all paper results are stated in.
//
// The DB also tracks per-test ("stand-alone") hit sets so the Coverage
// Calculator (§IV-B of the paper) can compute stand-alone, incremental and
// total coverage per test input.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/serialize.h"

namespace chatfuzz::cov {

using PointId = std::uint32_t;

class CoverageDB {
 public:
  /// Register a condition point. Call once per static condition at model
  /// construction; returns the id used by hit().
  PointId register_cond(std::string name);

  /// Record one evaluation of a condition. Sets the cumulative bin and the
  /// current test's stand-alone bin, marking first touches in the dirty-bin
  /// bitmaps so every per-test sweep (begin_test/reset_hits/extraction) is
  /// O(dirty words), not O(all registered bins), and the covered counts are
  /// running counters.
  void hit(PointId id, bool outcome) {
    const std::size_t bin = 2 * static_cast<std::size_t>(id) + (outcome ? 1 : 0);
    if (hits_[bin]++ == 0) {
      dirty_[bin >> 6] |= 1ull << (bin & 63);
      ++covered_;
    }
    const std::uint64_t mask = 1ull << (bin & 63);
    std::uint64_t& w = test_dirty_[bin >> 6];
    if ((w & mask) == 0) {
      w |= mask;
      ++test_covered_;
    }
  }

  /// Bulk accumulation (coverage merging); does not touch the per-test set.
  void add_hits(PointId id, bool outcome, std::uint64_t n) {
    add_bin_hits(2 * static_cast<std::size_t>(id) + (outcome ? 1 : 0), n);
  }

  /// Deferred-instrumentation fold: record `n` evaluations of a condition
  /// in one call. Cumulative counters AND the per-test stand-alone set end
  /// up exactly as `n` individual hit() calls would leave them.
  void hit_n(PointId id, bool outcome, std::uint64_t n) {
    if (n == 0) return;
    const std::size_t bin = 2 * static_cast<std::size_t>(id) + (outcome ? 1 : 0);
    add_bin_hits(bin, n);
    const std::uint64_t mask = 1ull << (bin & 63);
    std::uint64_t& w = test_dirty_[bin >> 6];
    if ((w & mask) == 0) {
      w |= mask;
      ++test_covered_;
    }
  }

  /// Raw-bin accumulation: `bin` uses this DB's own bin indexing (the same
  /// one bin_hits() reads), so sparse slices round-trip without re-deriving
  /// the point/outcome encoding elsewhere.
  void add_bin_hits(std::size_t bin, std::uint64_t n) {
    if (n == 0) return;
    if (hits_[bin] == 0) {
      dirty_[bin >> 6] |= 1ull << (bin & 63);
      ++covered_;
    }
    hits_[bin] += n;
  }

  /// Mark the start of a new test input: clears the stand-alone hit set.
  void begin_test();

  std::size_t num_points() const { return names_.size(); }
  std::size_t num_bins() const { return hits_.size(); }
  const std::string& point_name(PointId id) const { return names_[id]; }
  std::uint64_t bin_hits(std::size_t bin) const { return hits_[bin]; }
  bool bin_covered(std::size_t bin) const { return hits_[bin] != 0; }
  bool test_bin_hit(std::size_t bin) const {
    return (test_dirty_[bin >> 6] & (1ull << (bin & 63))) != 0;
  }

  /// Cumulative covered-bin count (running counter, O(1)).
  std::size_t total_covered() const { return covered_; }
  /// Covered-bin count of the current test alone (running counter, O(1)).
  std::size_t test_covered() const { return test_covered_; }
  /// Cumulative coverage as a percentage of all bins (O(1)).
  double total_percent() const;

  /// Dirty-bin bitmap of the cumulative side: one bit per bin whose hit
  /// count is nonzero. Word-ordered bitmap walks give extraction in
  /// ascending bin order with no sorting; for a per-test worker shard
  /// (reset before each test) the set bits are exactly the bins the test
  /// touched.
  const std::vector<std::uint64_t>& dirty_words() const { return dirty_; }

  /// Reset cumulative hit counts (new campaign), keeping registered points.
  void reset_hits();

  /// Snapshot the cumulative hit counters (per-test state is transient and
  /// not captured; checkpoints happen between tests). The registered point
  /// layout travels as a fingerprint, not as data: restore() requires a DB
  /// whose registration sequence matches the saved one and fails cleanly
  /// otherwise.
  void save_state(ser::Writer& w) const;
  bool restore_state(ser::Reader& r);

 private:
  std::uint64_t layout_fingerprint() const;
  std::vector<std::string> names_;
  std::vector<std::uint64_t> hits_;  // 2 bins per point
  // Dirty-bin bitmaps + running covered counters. Invariants every mutator
  // maintains: bit b of dirty_ is set iff hits_[b] != 0, covered_ counts
  // the set bits of dirty_, and test_covered_ those of test_dirty_ (the
  // stand-alone hit set, cleared by begin_test).
  std::vector<std::uint64_t> dirty_;
  std::vector<std::uint64_t> test_dirty_;
  std::size_t covered_ = 0;
  std::size_t test_covered_ = 0;
};

/// Per-test values the paper's Coverage Calculator produces (§IV-B).
struct TestCoverage {
  std::size_t standalone_bins = 0;   // bins this test hit
  std::size_t incremental_bins = 0;  // bins newly covered vs. before the test
  std::size_t total_bins = 0;        // cumulative covered bins after the test
  std::size_t universe_bins = 0;     // all bins in the DUT
  double standalone_percent() const {
    return universe_bins ? 100.0 * static_cast<double>(standalone_bins) /
                               static_cast<double>(universe_bins)
                         : 0.0;
  }
  double total_percent() const {
    return universe_bins ? 100.0 * static_cast<double>(total_bins) /
                               static_cast<double>(universe_bins)
                         : 0.0;
  }
};

/// Coverage Calculator: wraps a CoverageDB and computes the three per-test
/// values. Usage per test: calc.begin_test(); <run DUT>; auto tc = calc.end_test();
class CoverageCalculator {
 public:
  explicit CoverageCalculator(CoverageDB& db) : db_(db) {}

  void begin_test() {
    before_total_ = db_.total_covered();
    db_.begin_test();
  }

  TestCoverage end_test() const {
    TestCoverage tc;
    tc.standalone_bins = db_.test_covered();
    tc.total_bins = db_.total_covered();
    tc.incremental_bins = tc.total_bins - before_total_;
    tc.universe_bins = db_.num_bins();
    return tc;
  }

 private:
  CoverageDB& db_;
  std::size_t before_total_ = 0;
};

/// Control-register coverage as used by DifuzzRTL: the DUT registers its
/// mux-select/control registers; coverage is the number of distinct packed
/// control-state values observed. Membership is exact (the backing table
/// grows as needed): counts must not depend on insertion order, or sharded
/// campaigns would stop being bit-identical across worker counts.
class CtrlRegCoverage {
 public:
  /// Record one observed control state. Returns true if it was new.
  bool observe(std::uint64_t packed_state);
  std::size_t distinct_states() const { return count_; }
  void begin_test() { test_new_ = 0; }
  std::size_t test_new_states() const { return test_new_; }
  void reset();

  /// Sharded campaigns: while set, every state that is new to THIS set is
  /// appended to `rec` (raw packed value, observation order). A campaign
  /// worker records its per-test new states here and the aggregator replays
  /// them into the campaign-wide set in canonical test order, which makes
  /// distinct/new-state counts independent of how tests were sharded.
  void set_recorder(std::vector<std::uint64_t>* rec) { recorder_ = rec; }

  /// Snapshot the distinct-state set. Keys are serialized sorted, so the
  /// bytes are identical no matter what order states were observed in —
  /// the property that keeps resumed sharded campaigns byte-stable.
  void save_state(ser::Writer& w) const;
  bool restore_state(ser::Reader& r);

 private:
  /// Insert a pre-hashed key (grow + probe, bumps count_); returns true if
  /// the key was new. Shared by observe() and restore_state().
  bool insert_key(std::uint64_t key);
  // Open-addressed set keyed by the state hash; we only need cardinality.
  std::vector<std::uint64_t> seen_;
  std::size_t count_ = 0;
  std::size_t test_new_ = 0;
  std::vector<std::uint64_t>* recorder_ = nullptr;
};

/// Serialize a coverage DB to the textual report format the Coverage
/// Calculator parses (stands in for the VCS report flow of §IV-B).
std::string write_report(const CoverageDB& db);

/// Parse a report back into (name, true_hits, false_hits) triples.
struct ReportEntry {
  std::string name;
  std::uint64_t true_hits = 0;
  std::uint64_t false_hits = 0;
};
std::vector<ReportEntry> parse_report(const std::string& text);

}  // namespace chatfuzz::cov
