#include "coverage/cover.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace chatfuzz::cov {

PointId CoverageDB::register_cond(std::string name) {
  const auto id = static_cast<PointId>(names_.size());
  names_.push_back(std::move(name));
  hits_.push_back(0);
  hits_.push_back(0);
  if (dirty_.size() * 64 < hits_.size()) {
    dirty_.push_back(0);
    test_dirty_.push_back(0);
  }
  return id;
}

void CoverageDB::begin_test() {
  // The bitmap IS the stand-alone hit set: zeroing its words clears it in
  // O(num_bins / 64).
  std::fill(test_dirty_.begin(), test_dirty_.end(), 0);
  test_covered_ = 0;
}

double CoverageDB::total_percent() const {
  return hits_.empty() ? 0.0
                       : 100.0 * static_cast<double>(total_covered()) /
                             static_cast<double>(hits_.size());
}

void CoverageDB::reset_hits() {
  // Clear only the hit counters the dirty bitmap marks.
  for (std::size_t w = 0; w < dirty_.size(); ++w) {
    std::uint64_t bits = dirty_[w];
    while (bits != 0) {
      const unsigned b = static_cast<unsigned>(__builtin_ctzll(bits));
      bits &= bits - 1;
      hits_[w * 64 + b] = 0;
    }
    dirty_[w] = 0;
  }
  covered_ = 0;
  begin_test();
}

std::uint64_t CoverageDB::layout_fingerprint() const {
  // FNV-1a over the registration sequence: same DUT build => same value.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::string& name : names_) {
    for (char c : name) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ull;
    }
    h ^= 0xff;  // separator
    h *= 0x100000001b3ull;
  }
  return h;
}

void CoverageDB::save_state(ser::Writer& w) const {
  w.u64(layout_fingerprint());
  w.vec_u64(hits_);
}

bool CoverageDB::restore_state(ser::Reader& r) {
  const std::uint64_t fp = r.u64();
  std::vector<std::uint64_t> hits = r.vec_u64();
  if (!r.ok() || fp != layout_fingerprint() || hits.size() != hits_.size()) {
    r.fail();
    return false;
  }
  hits_ = std::move(hits);
  // Rebuild the dirty bitmap and covered count from the restored counters.
  std::fill(dirty_.begin(), dirty_.end(), 0);
  covered_ = 0;
  for (std::size_t bin = 0; bin < hits_.size(); ++bin) {
    if (hits_[bin] != 0) {
      dirty_[bin >> 6] |= 1ull << (bin & 63);
      ++covered_;
    }
  }
  begin_test();
  return true;
}

namespace {

std::uint64_t ctrl_state_hash(std::uint64_t packed_state) {
  // Mix to spread adjacent states; 0 is reserved as the empty-slot marker.
  std::uint64_t h = packed_state * 0x9e3779b97f4a7c15ull;
  h ^= h >> 29;
  return h != 0 ? h : 1;
}

}  // namespace

bool CtrlRegCoverage::insert_key(std::uint64_t key) {
  if (seen_.empty()) seen_.resize(1ull << 16, 0);
  // Grow at 50% load. Membership must stay exact: if insertions could be
  // dropped (a bounded probe window in a saturated table), whether a state
  // "counts" would depend on insertion order, and sharded campaigns would
  // stop being bit-identical across worker counts.
  if (2 * count_ >= seen_.size()) {
    std::vector<std::uint64_t> old;
    old.swap(seen_);
    seen_.assign(2 * old.size(), 0);
    const std::size_t mask = seen_.size() - 1;
    for (const std::uint64_t k : old) {
      if (k == 0) continue;
      std::size_t slot = k & mask;
      while (seen_[slot] != 0) slot = (slot + 1) & mask;
      seen_[slot] = k;
    }
  }
  const std::size_t mask = seen_.size() - 1;
  std::size_t slot = key & mask;
  while (true) {
    if (seen_[slot] == key) return false;
    if (seen_[slot] == 0) {
      seen_[slot] = key;
      ++count_;
      return true;
    }
    slot = (slot + 1) & mask;
  }
}

bool CtrlRegCoverage::observe(std::uint64_t packed_state) {
  if (!insert_key(ctrl_state_hash(packed_state))) return false;
  ++test_new_;
  if (recorder_ != nullptr) recorder_->push_back(packed_state);
  return true;
}

void CtrlRegCoverage::save_state(ser::Writer& w) const {
  std::vector<std::uint64_t> keys;
  keys.reserve(count_);
  for (std::uint64_t k : seen_) {
    if (k != 0) keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  w.vec_u64(keys);
}

bool CtrlRegCoverage::restore_state(ser::Reader& r) {
  const std::vector<std::uint64_t> keys = r.vec_u64();
  if (!r.ok()) return false;
  reset();
  for (std::uint64_t k : keys) {
    if (k != 0) insert_key(k);  // 0 is the empty-slot marker, never a key
  }
  return true;
}

void CtrlRegCoverage::reset() {
  seen_.clear();
  count_ = 0;
  test_new_ = 0;
}

std::string write_report(const CoverageDB& db) {
  std::string out = "# chatfuzz condition coverage report v1\n";
  char line[256];
  for (std::size_t i = 0; i < db.num_points(); ++i) {
    std::snprintf(line, sizeof line, "COND %zu %s %llu %llu\n", i,
                  db.point_name(static_cast<PointId>(i)).c_str(),
                  static_cast<unsigned long long>(db.bin_hits(2 * i + 1)),
                  static_cast<unsigned long long>(db.bin_hits(2 * i)));
    out += line;
  }
  return out;
}

std::vector<ReportEntry> parse_report(const std::string& text) {
  std::vector<ReportEntry> entries;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("COND ", 0) != 0) continue;
    std::istringstream ls(line);
    std::string tag;
    std::size_t idx;
    ReportEntry e;
    if (ls >> tag >> idx >> e.name >> e.true_hits >> e.false_hits) {
      entries.push_back(std::move(e));
    }
  }
  return entries;
}

}  // namespace chatfuzz::cov
