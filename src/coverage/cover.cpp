#include "coverage/cover.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace chatfuzz::cov {

PointId CoverageDB::register_cond(std::string name) {
  const auto id = static_cast<PointId>(names_.size());
  names_.push_back(std::move(name));
  hits_.push_back(0);
  hits_.push_back(0);
  test_bins_.push_back(0);
  test_bins_.push_back(0);
  return id;
}

void CoverageDB::begin_test() {
  std::fill(test_bins_.begin(), test_bins_.end(), 0);
}

std::size_t CoverageDB::total_covered() const {
  std::size_t n = 0;
  for (std::uint64_t h : hits_) n += h != 0 ? 1 : 0;
  return n;
}

std::size_t CoverageDB::test_covered() const {
  std::size_t n = 0;
  for (std::uint8_t b : test_bins_) n += b;
  return n;
}

double CoverageDB::total_percent() const {
  return hits_.empty() ? 0.0
                       : 100.0 * static_cast<double>(total_covered()) /
                             static_cast<double>(hits_.size());
}

void CoverageDB::reset_hits() {
  std::fill(hits_.begin(), hits_.end(), 0);
  std::fill(test_bins_.begin(), test_bins_.end(), 0);
}

bool CtrlRegCoverage::observe(std::uint64_t packed_state) {
  // Mix to spread adjacent states.
  std::uint64_t h = packed_state * 0x9e3779b97f4a7c15ull;
  h ^= h >> 29;
  if (seen_.empty()) seen_.resize(1ull << 16, 0);
  const std::size_t mask = seen_.size() - 1;
  std::size_t slot = h & mask;
  const std::uint64_t key = h | 1;  // reserve 0 as "empty"
  for (std::size_t probe = 0; probe < 64; ++probe, slot = (slot + 1) & mask) {
    if (seen_[slot] == key) return false;
    if (seen_[slot] == 0) {
      seen_[slot] = key;
      ++count_;
      ++test_new_;
      return true;
    }
  }
  return false;  // table region saturated; treat as seen
}

void CtrlRegCoverage::reset() {
  seen_.clear();
  count_ = 0;
  test_new_ = 0;
}

std::string write_report(const CoverageDB& db) {
  std::string out = "# chatfuzz condition coverage report v1\n";
  char line[256];
  for (std::size_t i = 0; i < db.num_points(); ++i) {
    std::snprintf(line, sizeof line, "COND %zu %s %llu %llu\n", i,
                  db.point_name(static_cast<PointId>(i)).c_str(),
                  static_cast<unsigned long long>(db.bin_hits(2 * i + 1)),
                  static_cast<unsigned long long>(db.bin_hits(2 * i)));
    out += line;
  }
  return out;
}

std::vector<ReportEntry> parse_report(const std::string& text) {
  std::vector<ReportEntry> entries;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("COND ", 0) != 0) continue;
    std::istringstream ls(line);
    std::string tag;
    std::size_t idx;
    ReportEntry e;
    if (ls >> tag >> idx >> e.name >> e.true_hits >> e.false_hits) {
      entries.push_back(std::move(e));
    }
  }
  return entries;
}

}  // namespace chatfuzz::cov
