// Additional RTL coverage metrics beyond condition coverage. The paper's
// related work guides fuzzers with several signals — statement coverage,
// mux-control/control-register state (DifuzzRTL, RFuzz), FSM states — and
// §V motivates the choice of condition coverage over them. This module
// models the standard VCS/URG metric family so the guidance choice can be
// ablated: toggle coverage (per-bit 0->1/1->0 of architectural registers),
// FSM coverage (states + valid transitions of identified control FSMs),
// and statement coverage (per-block execution).
//
// All metrics share the Metric interface so the campaign runner can use any
// of them as the feedback signal while condition coverage remains the
// reported ground truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "riscv/csr.h"
#include "util/serialize.h"

namespace chatfuzz::cov {

/// Uniform view over a coverage metric: a bin universe, cumulative covered
/// bins, and a per-test ("stand-alone") covered count.
class Metric {
 public:
  virtual ~Metric() = default;
  virtual std::string name() const = 0;
  virtual std::size_t universe() const = 0;
  virtual std::size_t covered() const = 0;
  /// Clears the per-test hit set.
  virtual void begin_test() = 0;
  virtual std::size_t test_covered() const = 0;

  /// Sharded campaigns: append the universe indices of every bin hit by the
  /// current test to `out`. A worker extracts these after each test and the
  /// aggregator replays them with cover_bin(); since bins are monotone sets,
  /// the replay reproduces the cumulative counters exactly.
  virtual void append_test_bins(std::vector<std::size_t>& out) const = 0;
  /// Mark one universe bin cumulatively covered (does not touch test state).
  virtual void cover_bin(std::size_t universe_index) = 0;

  /// Snapshot / restore the cumulative hit state (per-test state is
  /// transient and not captured). restore_state() fails cleanly when the
  /// saved universe does not match this metric's registered universe.
  virtual void save_state(ser::Writer& w) const = 0;
  virtual bool restore_state(ser::Reader& r) = 0;

  double percent() const {
    return universe() == 0
               ? 0.0
               : 100.0 * static_cast<double>(covered()) /
                     static_cast<double>(universe());
  }
};

/// Toggle coverage over a bank of 64-bit registers: two bins per bit
/// (0->1 and 1->0), exactly what `vcs -cm tgl` counts on register outputs.
class ToggleCoverage final : public Metric {
 public:
  /// `num_regs` 64-bit registers (e.g. the 31 writable GPRs).
  explicit ToggleCoverage(unsigned num_regs);

  std::string name() const override { return "toggle"; }
  std::size_t universe() const override { return bins_.size(); }
  std::size_t covered() const override { return covered_; }
  void begin_test() override;
  std::size_t test_covered() const override { return test_covered_; }
  void append_test_bins(std::vector<std::size_t>& out) const override;
  void cover_bin(std::size_t universe_index) override;
  void save_state(ser::Writer& w) const override;
  bool restore_state(ser::Reader& r) override;

  /// Record a register update; bits that changed toggle their direction bin.
  void observe_write(unsigned reg, std::uint64_t old_value,
                     std::uint64_t new_value);

 private:
  unsigned num_regs_;
  std::vector<std::uint8_t> bins_;  // [reg*128 + bit*2 + dir]
  // Per-test hit set as a bitmap: begin_test zeroes O(universe/64) words
  // and append_test_bins walks set bits in ascending order.
  std::vector<std::uint64_t> test_dirty_;
  std::size_t covered_ = 0;
  std::size_t test_covered_ = 0;
};

/// FSM coverage: declared states and valid transitions per FSM; bins are
/// states plus transitions (the URG "FSM states / FSM transitions" rollup).
class FsmCoverage final : public Metric {
 public:
  using FsmId = std::size_t;

  /// Declare an FSM with `num_states` states and an explicit valid
  /// transition list (from,to). Undeclared transitions are ignored when
  /// observed (matching how URG reports only annotated arcs).
  FsmId register_fsm(std::string name, unsigned num_states,
                     std::vector<std::pair<unsigned, unsigned>> transitions);

  std::string name() const override { return "fsm"; }
  std::size_t universe() const override { return universe_; }
  std::size_t covered() const override { return covered_; }
  void begin_test() override;
  std::size_t test_covered() const override { return test_covered_; }
  void append_test_bins(std::vector<std::size_t>& out) const override;
  void cover_bin(std::size_t universe_index) override;
  void save_state(ser::Writer& w) const override;
  bool restore_state(ser::Reader& r) override;

  /// Record that `fsm` moved from `from` to `to` (may be the same state;
  /// self-arcs count only if declared).
  void observe(FsmId fsm, unsigned from, unsigned to);

  /// Introspection: covered state/transition counts of one FSM.
  std::size_t fsm_states_covered(FsmId fsm) const;
  std::size_t fsm_transitions_covered(FsmId fsm) const;

 private:
  struct Fsm {
    std::string name;
    unsigned num_states;
    std::vector<std::pair<unsigned, unsigned>> transitions;
    std::vector<std::uint8_t> state_hit, state_test;
    std::vector<std::uint8_t> trans_hit, trans_test;
    // Per-test journal of local bin offsets (state s, or num_states + t for
    // transition t), first-hit order; mirrors the test-bit vectors.
    std::vector<std::uint32_t> test_journal;
  };
  std::vector<Fsm> fsms_;
  std::size_t universe_ = 0;
  std::size_t covered_ = 0;
  std::size_t test_covered_ = 0;
};

/// Statement (block) coverage: one bin per registered block.
class StatementCoverage final : public Metric {
 public:
  using StmtId = std::size_t;
  StmtId register_stmt(std::string name);

  std::string name() const override { return "statement"; }
  std::size_t universe() const override { return hit_.size(); }
  std::size_t covered() const override { return covered_; }
  void begin_test() override;
  std::size_t test_covered() const override { return test_covered_; }
  void append_test_bins(std::vector<std::size_t>& out) const override;
  void cover_bin(std::size_t universe_index) override;
  void save_state(ser::Writer& w) const override;
  bool restore_state(ser::Reader& r) override;

  void hit(StmtId id);
  bool stmt_covered(StmtId id) const { return hit_[id] != 0; }
  const std::string& stmt_name(StmtId id) const { return names_[id]; }

 private:
  std::vector<std::string> names_;
  std::vector<std::uint8_t> hit_, test_hit_;
  std::vector<std::uint32_t> test_journal_;  // mirrors test_hit_
  std::size_t covered_ = 0;
  std::size_t test_covered_ = 0;
};

/// Per-instruction observation the DUT model reports to the metric suite;
/// a flattened view of its pipeline events.
struct StepObservation {
  bool is_load = false, is_store = false, is_amo = false, is_branch = false,
       is_jump = false, is_muldiv = false, is_div = false, is_csr = false,
       is_fence = false, trap = false;
  riscv::Priv priv_before = riscv::Priv::kMachine;
  riscv::Priv priv_after = riscv::Priv::kMachine;
  bool dcache_access = false, dcache_hit = false, dcache_hit_dirty = false,
       dcache_evict_valid = false, dcache_evict_dirty = false;
};

/// The full metric bundle a DUT model can be instrumented with. The DUT
/// calls observe_write() at writeback and on_step() at each commit; the
/// suite maintains the metric-specific state machines.
class MetricSuite {
 public:
  MetricSuite();

  ToggleCoverage& toggle() { return toggle_; }
  FsmCoverage& fsm() { return fsm_; }
  StatementCoverage& statement() { return stmt_; }
  const ToggleCoverage& toggle() const { return toggle_; }
  const FsmCoverage& fsm() const { return fsm_; }
  const StatementCoverage& statement() const { return stmt_; }

  void begin_test();

  /// Register-file writeback hook.
  void observe_write(unsigned reg, std::uint64_t old_value,
                     std::uint64_t new_value) {
    toggle_.observe_write(reg, old_value, new_value);
  }

  /// Per-commit hook: updates statements and the declared FSMs.
  void on_step(const StepObservation& ob);

  /// Snapshot / restore all three metrics' cumulative state.
  void save_state(ser::Writer& w) const;
  bool restore_state(ser::Reader& r);

 private:
  ToggleCoverage toggle_;
  FsmCoverage fsm_;
  StatementCoverage stmt_;

  // Declared FSMs.
  FsmCoverage::FsmId priv_fsm_;    // M/S/U privilege state
  FsmCoverage::FsmId muldiv_fsm_;  // idle / mul-busy / div-busy
  FsmCoverage::FsmId dline_fsm_;   // D$ line: Invalid / Valid / Dirty
  unsigned muldiv_state_ = 0;

  // Statement blocks.
  std::vector<StatementCoverage::StmtId> stmt_ids_;
};

}  // namespace chatfuzz::cov
