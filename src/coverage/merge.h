// Coverage merging for sharded campaigns: the paper runs ten VCS instances
// in parallel and merges their coverage; these helpers union coverage
// reports from independent CoverageDBs with identical point registrations.
#pragma once

#include <vector>

#include "coverage/cover.h"
#include "util/serialize.h"

namespace chatfuzz::cov {

/// Union `src` into `dst` (hit counts add). Both DBs must have been built by
/// identical point registrations (same model config); returns false and
/// leaves `dst` untouched on a point-name mismatch.
bool merge_into(CoverageDB& dst, const CoverageDB& src);

/// Union a set of parsed reports (by point name). Entries present in some
/// reports only are kept; hit counts add.
std::vector<ReportEntry> merge_reports(
    const std::vector<std::vector<ReportEntry>>& reports);

/// Sparse slice of a CoverageDB: the nonzero bins only. This is the unit of
/// coverage a campaign worker ships back per test — small (a test touches a
/// fraction of the universe) and mergeable in any grouping, since bin hit
/// counts add and covered-ness is monotone.
struct BinDelta {
  std::uint32_t bin = 0;      // 2 * point + (outcome ? 1 : 0)
  std::uint64_t hits = 0;
};

/// Extract every nonzero bin of `src` (ascending bin order).
std::vector<BinDelta> extract_bins(const CoverageDB& src);

/// Pooled variant for the campaign hot path: clears `out` (keeping its
/// capacity) and fills it by walking the DB's dirty-bin bitmap, which
/// yields the same ascending order the full scan produces — O(dirty words)
/// instead of O(universe), and allocation-free once `out` has grown.
void extract_bins(const CoverageDB& src, std::vector<BinDelta>& out);

/// Accumulate a sparse slice into `dst` (hit counts add). The slice must
/// come from a DB with identical point registrations.
void apply_bins(CoverageDB& dst, const std::vector<BinDelta>& bins);

/// Wire encoding of a sparse slice — the unit of coverage a distributed
/// campaign worker ships back per test (src/dist/). Bins must be in
/// ascending order (what extract_bins produces): ids travel gap-encoded as
/// varints, so slices from the same test are byte-identical no matter
/// which process ran it, and typically ~2 bytes per delta. read_bin_deltas
/// bounds-checks every count against the remaining payload and fails the
/// reader instead of over-allocating on malformed input; a descending
/// writer-side sequence decodes as an out-of-range id and fails the same
/// way.
void write_bin_deltas(ser::Writer& w, const std::vector<BinDelta>& bins);
bool read_bin_deltas(ser::Reader& r, std::vector<BinDelta>& out);

/// Names of points whose true or false bin is still uncovered — the
/// verification-engineer view ("what is left to hit").
struct UncoveredPoint {
  std::string name;
  bool missing_true = false;
  bool missing_false = false;
};
std::vector<UncoveredPoint> uncovered_points(const CoverageDB& db);

}  // namespace chatfuzz::cov
