#include "coverage/multi.h"

#include <algorithm>

namespace chatfuzz::cov {

// ---- ToggleCoverage ---------------------------------------------------------

ToggleCoverage::ToggleCoverage(unsigned num_regs)
    : num_regs_(num_regs),
      bins_(static_cast<std::size_t>(num_regs) * 128, 0),
      test_dirty_((bins_.size() + 63) / 64, 0) {}

void ToggleCoverage::begin_test() {
  std::fill(test_dirty_.begin(), test_dirty_.end(), 0);
  test_covered_ = 0;
}

void ToggleCoverage::observe_write(unsigned reg, std::uint64_t old_value,
                                   std::uint64_t new_value) {
  if (reg >= num_regs_) return;
  const std::uint64_t changed = old_value ^ new_value;
  if (changed == 0) return;
  const std::size_t base = static_cast<std::size_t>(reg) * 128;
  for (unsigned bit = 0; bit < 64; ++bit) {
    if (((changed >> bit) & 1) == 0) continue;
    const unsigned dir = (new_value >> bit) & 1;  // 1: rose, 0: fell
    const std::size_t idx = base + 2 * bit + dir;
    if (bins_[idx] == 0) {
      bins_[idx] = 1;
      ++covered_;
    }
    const std::uint64_t mask = 1ull << (idx & 63);
    std::uint64_t& w = test_dirty_[idx >> 6];
    if ((w & mask) == 0) {
      w |= mask;
      ++test_covered_;
    }
  }
}

void ToggleCoverage::append_test_bins(std::vector<std::size_t>& out) const {
  // Word-ordered bitmap walk: ascending universe order, like a full scan.
  for (std::size_t w = 0; w < test_dirty_.size(); ++w) {
    std::uint64_t bits = test_dirty_[w];
    while (bits != 0) {
      out.push_back(w * 64 + static_cast<unsigned>(__builtin_ctzll(bits)));
      bits &= bits - 1;
    }
  }
}

void ToggleCoverage::cover_bin(std::size_t universe_index) {
  if (bins_[universe_index] == 0) {
    bins_[universe_index] = 1;
    ++covered_;
  }
}

void ToggleCoverage::save_state(ser::Writer& w) const { w.vec_u8(bins_); }

bool ToggleCoverage::restore_state(ser::Reader& r) {
  std::vector<std::uint8_t> bins = r.vec_u8();
  if (!r.ok() || bins.size() != bins_.size()) {
    r.fail();
    return false;
  }
  bins_ = std::move(bins);
  covered_ = 0;
  for (std::uint8_t b : bins_) covered_ += b != 0 ? 1 : 0;
  begin_test();
  return true;
}

// ---- FsmCoverage ------------------------------------------------------------

FsmCoverage::FsmId FsmCoverage::register_fsm(
    std::string name, unsigned num_states,
    std::vector<std::pair<unsigned, unsigned>> transitions) {
  Fsm f;
  f.name = std::move(name);
  f.num_states = num_states;
  f.transitions = std::move(transitions);
  f.state_hit.assign(num_states, 0);
  f.state_test.assign(num_states, 0);
  f.trans_hit.assign(f.transitions.size(), 0);
  f.trans_test.assign(f.transitions.size(), 0);
  universe_ += num_states + f.transitions.size();
  fsms_.push_back(std::move(f));
  return fsms_.size() - 1;
}

void FsmCoverage::begin_test() {
  for (Fsm& f : fsms_) {
    for (const std::uint32_t local : f.test_journal) {
      if (local < f.num_states) {
        f.state_test[local] = 0;
      } else {
        f.trans_test[local - f.num_states] = 0;
      }
    }
    f.test_journal.clear();
  }
  test_covered_ = 0;
}

void FsmCoverage::observe(FsmId fsm, unsigned from, unsigned to) {
  Fsm& f = fsms_[fsm];
  if (to < f.num_states) {
    if (f.state_hit[to] == 0) {
      f.state_hit[to] = 1;
      ++covered_;
    }
    if (f.state_test[to] == 0) {
      f.state_test[to] = 1;
      f.test_journal.push_back(to);
      ++test_covered_;
    }
  }
  // Self-arcs count only when declared, like any other arc.
  for (std::size_t i = 0; i < f.transitions.size(); ++i) {
    if (f.transitions[i].first == from && f.transitions[i].second == to) {
      if (f.trans_hit[i] == 0) {
        f.trans_hit[i] = 1;
        ++covered_;
      }
      if (f.trans_test[i] == 0) {
        f.trans_test[i] = 1;
        f.test_journal.push_back(
            static_cast<std::uint32_t>(f.num_states + i));
        ++test_covered_;
      }
      break;
    }
  }
}

// Universe layout follows registration order: for each FSM, its state bins
// then its transition bins. Both traversals below must agree on it. Local
// journal offsets already encode states before transitions, so sorting the
// per-FSM appended range reproduces the full-scan order exactly.
void FsmCoverage::append_test_bins(std::vector<std::size_t>& out) const {
  std::size_t base = 0;
  for (const Fsm& f : fsms_) {
    const std::size_t first = out.size();
    for (const std::uint32_t local : f.test_journal) out.push_back(base + local);
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
    base += f.num_states + f.transitions.size();
  }
}

void FsmCoverage::cover_bin(std::size_t universe_index) {
  std::size_t base = 0;
  for (Fsm& f : fsms_) {
    const std::size_t span = f.num_states + f.transitions.size();
    if (universe_index < base + span) {
      const std::size_t local = universe_index - base;
      std::uint8_t& bin = local < f.num_states
                              ? f.state_hit[local]
                              : f.trans_hit[local - f.num_states];
      if (bin == 0) {
        bin = 1;
        ++covered_;
      }
      return;
    }
    base += span;
  }
}

void FsmCoverage::save_state(ser::Writer& w) const {
  w.u64(fsms_.size());
  for (const Fsm& f : fsms_) {
    w.vec_u8(f.state_hit);
    w.vec_u8(f.trans_hit);
  }
}

bool FsmCoverage::restore_state(ser::Reader& r) {
  if (r.u64() != fsms_.size()) {
    r.fail();
    return false;
  }
  covered_ = 0;
  for (Fsm& f : fsms_) {
    std::vector<std::uint8_t> states = r.vec_u8();
    std::vector<std::uint8_t> trans = r.vec_u8();
    if (!r.ok() || states.size() != f.state_hit.size() ||
        trans.size() != f.trans_hit.size()) {
      r.fail();
      return false;
    }
    f.state_hit = std::move(states);
    f.trans_hit = std::move(trans);
    for (std::uint8_t b : f.state_hit) covered_ += b != 0 ? 1 : 0;
    for (std::uint8_t b : f.trans_hit) covered_ += b != 0 ? 1 : 0;
  }
  begin_test();
  return true;
}

std::size_t FsmCoverage::fsm_states_covered(FsmId fsm) const {
  std::size_t n = 0;
  for (std::uint8_t h : fsms_[fsm].state_hit) n += h;
  return n;
}

std::size_t FsmCoverage::fsm_transitions_covered(FsmId fsm) const {
  std::size_t n = 0;
  for (std::uint8_t h : fsms_[fsm].trans_hit) n += h;
  return n;
}

// ---- StatementCoverage ------------------------------------------------------

StatementCoverage::StmtId StatementCoverage::register_stmt(std::string name) {
  names_.push_back(std::move(name));
  hit_.push_back(0);
  test_hit_.push_back(0);
  return names_.size() - 1;
}

void StatementCoverage::begin_test() {
  for (const std::uint32_t idx : test_journal_) test_hit_[idx] = 0;
  test_journal_.clear();
  test_covered_ = 0;
}

void StatementCoverage::append_test_bins(std::vector<std::size_t>& out) const {
  const std::size_t first = out.size();
  for (const std::uint32_t idx : test_journal_) out.push_back(idx);
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
}

void StatementCoverage::cover_bin(std::size_t universe_index) {
  if (hit_[universe_index] == 0) {
    hit_[universe_index] = 1;
    ++covered_;
  }
}

void StatementCoverage::hit(StmtId id) {
  if (hit_[id] == 0) {
    hit_[id] = 1;
    ++covered_;
  }
  if (test_hit_[id] == 0) {
    test_hit_[id] = 1;
    test_journal_.push_back(static_cast<std::uint32_t>(id));
    ++test_covered_;
  }
}

void StatementCoverage::save_state(ser::Writer& w) const { w.vec_u8(hit_); }

bool StatementCoverage::restore_state(ser::Reader& r) {
  std::vector<std::uint8_t> hit = r.vec_u8();
  if (!r.ok() || hit.size() != hit_.size()) {
    r.fail();
    return false;
  }
  hit_ = std::move(hit);
  covered_ = 0;
  for (std::uint8_t b : hit_) covered_ += b != 0 ? 1 : 0;
  begin_test();
  return true;
}

// ---- MetricSuite ------------------------------------------------------------

namespace {
// Privilege FSM states (indices into the FSM, not riscv::Priv encodings).
enum PrivState : unsigned { kM = 0, kS = 1, kU = 2 };

unsigned priv_state(riscv::Priv p) {
  switch (p) {
    case riscv::Priv::kMachine: return kM;
    case riscv::Priv::kSupervisor: return kS;
    default: return kU;
  }
}

// MuldivUnit FSM states.
enum MdState : unsigned { kIdle = 0, kMulBusy = 1, kDivBusy = 2 };

// D$ line FSM states.
enum LineState : unsigned { kInv = 0, kValid = 1, kDirty = 2 };

// Statement blocks, in declaration order.
enum Stmt : unsigned {
  kStFetch = 0, kStDecode, kStAlu, kStBranch, kStJump, kStMulDiv, kStDiv,
  kStLoad, kStStore, kStAmo, kStCsr, kStFence, kStTrap, kStWb, kNumStmts,
};
const char* kStmtNames[kNumStmts] = {
    "fetch", "decode", "ex.alu", "ex.branch", "ex.jump", "ex.muldiv",
    "ex.div", "mem.load", "mem.store", "mem.amo", "csr", "fence", "trap",
    "writeback"};
}  // namespace

MetricSuite::MetricSuite() : toggle_(32) {
  priv_fsm_ = fsm_.register_fsm(
      "privilege", 3,
      {{kM, kS}, {kM, kU}, {kS, kM}, {kU, kM}, {kS, kU}, {kM, kM}});
  muldiv_fsm_ = fsm_.register_fsm(
      "muldiv_unit", 3,
      {{kIdle, kMulBusy}, {kIdle, kDivBusy}, {kMulBusy, kIdle},
       {kDivBusy, kIdle}, {kMulBusy, kMulBusy}, {kDivBusy, kDivBusy},
       {kMulBusy, kDivBusy}, {kDivBusy, kMulBusy}});
  dline_fsm_ = fsm_.register_fsm(
      "dcache_line", 3,
      {{kInv, kValid}, {kInv, kDirty}, {kValid, kDirty}, {kValid, kInv},
       {kDirty, kInv}, {kValid, kValid}, {kDirty, kDirty}});
  for (unsigned i = 0; i < kNumStmts; ++i) {
    stmt_ids_.push_back(stmt_.register_stmt(kStmtNames[i]));
  }
}

void MetricSuite::begin_test() {
  toggle_.begin_test();
  fsm_.begin_test();
  stmt_.begin_test();
  // Each test boots a freshly reset DUT, so the tracked mul/div unit is idle
  // at test start. Carrying the previous test's state across would also make
  // FSM arcs depend on which tests shared a simulator instance, breaking
  // worker-count invariance in sharded campaigns.
  muldiv_state_ = kIdle;
}

void MetricSuite::on_step(const StepObservation& ob) {
  // Statements.
  stmt_.hit(stmt_ids_[kStFetch]);
  stmt_.hit(stmt_ids_[kStDecode]);
  if (ob.is_branch) stmt_.hit(stmt_ids_[kStBranch]);
  if (ob.is_jump) stmt_.hit(stmt_ids_[kStJump]);
  if (ob.is_muldiv) stmt_.hit(stmt_ids_[kStMulDiv]);
  if (ob.is_div) stmt_.hit(stmt_ids_[kStDiv]);
  if (ob.is_load) stmt_.hit(stmt_ids_[kStLoad]);
  if (ob.is_store) stmt_.hit(stmt_ids_[kStStore]);
  if (ob.is_amo) stmt_.hit(stmt_ids_[kStAmo]);
  if (ob.is_csr) stmt_.hit(stmt_ids_[kStCsr]);
  if (ob.is_fence) stmt_.hit(stmt_ids_[kStFence]);
  if (ob.trap) stmt_.hit(stmt_ids_[kStTrap]);
  if (!ob.is_branch && !ob.is_store && !ob.trap) {
    stmt_.hit(stmt_ids_[kStWb]);
  }
  if (!ob.is_load && !ob.is_store && !ob.is_amo && !ob.is_branch &&
      !ob.is_jump && !ob.is_muldiv && !ob.is_csr && !ob.is_fence && !ob.trap) {
    stmt_.hit(stmt_ids_[kStAlu]);
  }

  // Privilege FSM.
  const unsigned pb = priv_state(ob.priv_before);
  const unsigned pa = priv_state(ob.priv_after);
  if (pb != pa || pb == kM) fsm_.observe(priv_fsm_, pb, pa);

  // Mul/div unit FSM.
  const unsigned md_next =
      ob.is_div ? kDivBusy : (ob.is_muldiv ? kMulBusy : kIdle);
  if (md_next != kIdle || muldiv_state_ != kIdle) {
    fsm_.observe(muldiv_fsm_, muldiv_state_, md_next);
  }
  muldiv_state_ = md_next;

  // D$ line FSM: reconstruct the accessed line's arc from the access result.
  if (ob.dcache_access) {
    if (ob.dcache_evict_dirty) {
      fsm_.observe(dline_fsm_, kDirty, kInv);
    } else if (ob.dcache_evict_valid) {
      fsm_.observe(dline_fsm_, kValid, kInv);
    }
    if (!ob.dcache_hit) {
      fsm_.observe(dline_fsm_, kInv, ob.is_store ? kDirty : kValid);
    } else if (ob.is_store) {
      fsm_.observe(dline_fsm_, ob.dcache_hit_dirty ? kDirty : kValid, kDirty);
    } else {
      fsm_.observe(dline_fsm_,
                   ob.dcache_hit_dirty ? kDirty : kValid,
                   ob.dcache_hit_dirty ? kDirty : kValid);
    }
  }
}

void MetricSuite::save_state(ser::Writer& w) const {
  toggle_.save_state(w);
  fsm_.save_state(w);
  stmt_.save_state(w);
}

bool MetricSuite::restore_state(ser::Reader& r) {
  if (!toggle_.restore_state(r) || !fsm_.restore_state(r) ||
      !stmt_.restore_state(r)) {
    return false;
  }
  muldiv_state_ = 0;  // per-test transient, reset to the begin_test value
  return true;
}

}  // namespace chatfuzz::cov
