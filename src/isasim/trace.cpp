#include "isasim/trace.h"

#include <cstdio>

#include "riscv/disasm.h"

namespace chatfuzz::sim {

std::string CommitRecord::to_string() const {
  char buf[256];
  int n = std::snprintf(buf, sizeof buf, "pc=%010llx %08x %-28s",
                        static_cast<unsigned long long>(pc), instr,
                        riscv::disasm(instr).c_str());
  if (has_rd_write) {
    n += std::snprintf(buf + n, sizeof buf - n, " x%-2u<=%016llx", rd,
                       static_cast<unsigned long long>(rd_value));
  }
  if (has_mem) {
    n += std::snprintf(buf + n, sizeof buf - n, " %s[%llx]=%llx",
                       mem_is_store ? "st" : "ld",
                       static_cast<unsigned long long>(mem_addr),
                       static_cast<unsigned long long>(mem_value));
  }
  if (exception != riscv::Exception::kNone) {
    std::snprintf(buf + n, sizeof buf - n, " !%s",
                  riscv::exception_name(exception));
  }
  return buf;
}

const char* stop_reason_name(StopReason r) {
  switch (r) {
    case StopReason::kPcEscape: return "pc-escape";
    case StopReason::kStepLimit: return "step-limit";
    case StopReason::kWfi: return "wfi";
    case StopReason::kProgramEnd: return "program-end";
  }
  return "unknown";
}

}  // namespace chatfuzz::sim
