// Golden-model ISA simulator ("Spike" role in the paper): a functional
// RV64IMA+Zicsr interpreter with M/S/U privilege, trap delegation, Sv39
// address translation, precise synchronous exceptions, and a commit trace.
// It is intentionally implemented independently of rtlsim — differential
// testing needs two implementations.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "isasim/memory.h"
#include "isasim/platform.h"
#include "isasim/trace.h"
#include "obs/sim_counters.h"
#include "riscv/instr.h"
#include "riscv/predecode.h"
#include "riscv/superblock.h"

namespace chatfuzz::sim {

class IsaSim {
 public:
  explicit IsaSim(Platform plat = {});

  /// Reset architectural state and load `program` at ram_base.
  void reset(std::span<const std::uint32_t> program);

  /// Run to completion (bounded by Platform::max_steps); returns the trace.
  RunResult run();

  /// Execute a single instruction; appends to the internal trace and returns
  /// the committed record, or std::nullopt if the run has stopped.
  std::optional<CommitRecord> step();

  bool stopped() const { return stopped_; }
  StopReason stop_reason() const { return stop_reason_; }

  // ---- state inspection (tests, examples) ---------------------------------
  std::uint64_t pc() const { return pc_; }
  std::uint64_t reg(unsigned i) const { return regs_[i & 31]; }
  riscv::Priv priv() const { return priv_; }
  std::uint64_t csr_value(std::uint16_t addr) const;
  const Memory& memory() const { return mem_; }
  /// Mutable memory access flushes the predecode cache and the TLB:
  /// external writes bypass the store-path invalidation and may have edited
  /// page tables, so assume any byte may have been an instruction or a PTE.
  /// The flush happens at accessor time — write through the freshly
  /// returned reference; do NOT keep a stored Memory& across run()/step()
  /// calls and write code bytes through it later, or the next fetch may
  /// replay a stale decode.
  Memory& memory() {
    predecode_.flush();
    flush_tlb();
    ++sb_cells_[0];  // drop cached superblock spans with the decodes
    return mem_;
  }
  const Trace& trace() const { return trace_; }

  /// Enable/disable superblock dispatch in run(). Purely a speed knob:
  /// architectural results, traces and streamed commits are bit-identical
  /// either way (the determinism suites pin this). step() always executes
  /// one instruction at a time regardless.
  void set_superblocks(bool on) { sb_enabled_ = on; }
  bool superblocks() const { return sb_enabled_; }

  /// Change the initial-register-file seed used by subsequent reset() calls.
  /// Both sides of a co-simulation must be given the same seed.
  void set_reg_seed(std::uint64_t seed) { plat_.reg_seed = seed; }

  /// Stream commits to `sink` instead of the internal trace (nullptr
  /// restores trace collection). While a sink is attached, trace() stays
  /// empty and run() returns an empty RunResult::trace — the streaming path
  /// never materializes one.
  void set_sink(CommitSink* sink) { sink_ = sink; }

  /// Telemetry counters accumulated since the last take (predecode/TLB/
  /// superblock hit rates); taking zeroes them. Observation-only.
  obs::SimCounters take_obs_counters() {
    obs::SimCounters c;
    c.predecode_hits = predecode_.take_hits();
    c.predecode_misses = predecode_.take_misses();
    c.tlb_hits = obs_tlb_hits_;
    c.tlb_misses = obs_tlb_misses_;
    c.sb_hits = obs_sb_hits_;
    c.sb_builds = obs_sb_builds_;
    obs_tlb_hits_ = obs_tlb_misses_ = obs_sb_hits_ = obs_sb_builds_ = 0;
    return c;
  }

 private:
  struct CsrFile {
    std::uint64_t mstatus = 0;
    std::uint64_t medeleg = 0, mideleg = 0;
    std::uint64_t mie = 0, mip = 0;
    std::uint64_t mtvec = 0, mscratch = 0, mepc = 0, mcause = 0, mtval = 0;
    std::uint64_t mcounteren = ~0ull, scounteren = ~0ull;
    std::uint64_t stvec = 0, sscratch = 0, sepc = 0, scause = 0, stval = 0;
    std::uint64_t satp = 0;
    std::uint64_t cycle = 0, instret = 0;
  };

  // CSR access returns false (→ illegal instruction) on unknown address,
  // insufficient privilege, or write to a read-only CSR.
  bool csr_read(std::uint16_t addr, std::uint64_t& value,
                riscv::Priv view) const;
  bool csr_write(std::uint16_t addr, std::uint64_t value);

  /// Memory access classes for Sv39 translation.
  enum class Access { kFetch, kLoad, kStore };

  /// Direct-mapped TLB entry: one cached leaf PTE per 4K virtual page
  /// (superpages occupy one entry per accessed page).
  struct TlbEntry {
    bool valid = false;
    std::uint64_t vpn = 0;   // full 27-bit virtual page number
    std::uint64_t pte = 0;   // cached leaf PTE
    std::uint8_t level = 0;  // 0 = 4K, 1 = 2M, 2 = 1G leaf
  };
  static constexpr std::size_t kTlbEntries = 16;

  /// Sv39 is in effect: satp.MODE==8 and the hart is below M.
  bool translation_active() const;
  /// Translate `vaddr` for `access`; returns kNone and fills `paddr`, or
  /// the page-fault cause. Walks the tables through the TLB; permission
  /// checks run on every access (hit or refill) against current privilege.
  riscv::Exception translate(std::uint64_t vaddr, Access access,
                             std::uint64_t& paddr);
  riscv::Exception check_leaf(std::uint64_t pte, Access access) const;
  void flush_tlb();

  void raise(CommitRecord& rec, riscv::Exception cause, std::uint64_t tval);
  void write_rd(CommitRecord& rec, std::uint8_t rd, std::uint64_t value);
  void execute(const riscv::Decoded& d, CommitRecord& rec);

  // ---- superblock dispatch (see riscv/superblock.h) -----------------------
  using SbIndex = riscv::SuperblockIndex<riscv::Decoded>;
  /// Execute cached straight-line spans starting at pc_ until the span ends,
  /// a trap activates translation, a store invalidates the span under us, or
  /// the step budget runs out. Returns false when the slow path must handle
  /// this pc (no span, negative span, budget exhausted).
  bool run_superblock();
  const SbIndex::Span* build_superblock();
  /// Guard cell for the RAM page covering `addr` (cell 0 is the global
  /// flush epoch, pages start at 1). Addresses outside RAM map to cell 0:
  /// in_ram() deliberately wraps for accesses at the top of the address
  /// space (see predecode.h), so stores and fetches can land on pages with
  /// no per-page generation — charging them to the flush epoch keeps span
  /// invalidation conservative instead of indexing sb_cells_ out of bounds.
  std::uint32_t sb_page_cell(std::uint64_t addr) const {
    const std::uint64_t off = addr - plat_.ram_base;
    if (off >= plat_.ram_size) return 0;
    return 1 + static_cast<std::uint32_t>(off >> 12);
  }
  /// Store hook, next to every predecode invalidation: bump the write
  /// generation of the touched page(s) so overlapping spans go stale.
  void sb_note_write(std::uint64_t pa, unsigned size) {
    const std::uint32_t first = sb_page_cell(pa);
    const std::uint32_t last = sb_page_cell(pa + size - 1);
    ++sb_cells_[first];
    if (last != first) ++sb_cells_[last];
  }

  /// Poll the CLINT and enter a pending M-mode interrupt if enabled.
  void service_interrupts();

  Platform plat_;
  Memory mem_;
  ClintState clint_;
  // Fetch/decode fast path: a hit skips both the sparse-memory refetch and
  // the decoder's table scan. Invalidated on RAM stores and fence.i.
  riscv::PredecodeCache predecode_;
  std::array<std::uint64_t, 32> regs_{};
  std::uint64_t pc_ = 0;
  riscv::Priv priv_ = riscv::Priv::kMachine;
  CsrFile csrs_;
  std::array<TlbEntry, kTlbEntries> tlb_{};
  std::optional<std::uint64_t> reservation_;  // LR/SC reservation address
  std::uint64_t program_end_ = 0;

  // Superblock span cache: derived state (never checkpointed), guarded by
  // sb_cells_ — cell 0 is a global flush epoch (reset, fence.i, external
  // memory writes), cells 1.. are per-4K-page store generations.
  bool sb_enabled_ = true;
  SbIndex sb_;
  std::vector<std::uint64_t> sb_cells_;
  // Span-build churn guard: builds this test (a build is up to 64 decodes).
  // Page-table-building and self-modifying phases invalidate spans as fast
  // as they are built; once builds outpace ~1 per 16 committed instructions
  // the cache is thrashing and run_superblock() stops building, serving
  // only spans already cached. Purely a speed valve — dispatch results are
  // identical either way.
  std::uint64_t sb_builds_ = 0;

  // Telemetry tallies (see take_obs_counters); never read architecturally.
  std::uint64_t obs_tlb_hits_ = 0;
  std::uint64_t obs_tlb_misses_ = 0;
  std::uint64_t obs_sb_hits_ = 0;
  std::uint64_t obs_sb_builds_ = 0;

  Trace trace_;
  CommitSink* sink_ = nullptr;
  bool stopped_ = true;
  StopReason stop_reason_ = StopReason::kStepLimit;
  std::uint64_t steps_ = 0;
};

}  // namespace chatfuzz::sim
