// Sparse byte-addressable physical memory with a single RAM window.
// Accesses outside the window report an access fault to the caller (the
// simulators turn that into the architectural exception).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <unordered_map>
#include <vector>

namespace chatfuzz::sim {

class Memory {
 public:
  static constexpr std::uint64_t kPageBits = 12;
  static constexpr std::uint64_t kPageSize = 1ull << kPageBits;

  Memory(std::uint64_t ram_base, std::uint64_t ram_size)
      : ram_base_(ram_base), ram_size_(ram_size) {}

  std::uint64_t ram_base() const { return ram_base_; }
  std::uint64_t ram_size() const { return ram_size_; }

  bool in_ram(std::uint64_t addr, std::uint64_t size) const {
    return addr >= ram_base_ && addr + size <= ram_base_ + ram_size_;
  }

  /// Unchecked little-endian read of `size` (1/2/4/8) bytes. Caller must
  /// have validated the range with in_ram().
  std::uint64_t read(std::uint64_t addr, unsigned size) const {
    std::uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i) {
      value |= static_cast<std::uint64_t>(read_byte(addr + i)) << (8 * i);
    }
    return value;
  }

  void write(std::uint64_t addr, std::uint64_t value, unsigned size) {
    for (unsigned i = 0; i < size; ++i) {
      write_byte(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  /// Load a program image (32-bit words, little endian) at `addr`.
  void load_words(std::uint64_t addr, std::span<const std::uint32_t> words) {
    for (std::uint32_t w : words) {
      write(addr, w, 4);
      addr += 4;
    }
  }

  void clear() { pages_.clear(); }

 private:
  std::uint8_t read_byte(std::uint64_t addr) const {
    const auto it = pages_.find(addr >> kPageBits);
    if (it == pages_.end()) return 0;
    return it->second[addr & (kPageSize - 1)];
  }
  void write_byte(std::uint64_t addr, std::uint8_t byte) {
    auto& page = pages_[addr >> kPageBits];
    if (page.empty()) page.resize(kPageSize, 0);
    page[addr & (kPageSize - 1)] = byte;
  }

  std::uint64_t ram_base_;
  std::uint64_t ram_size_;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> pages_;
};

}  // namespace chatfuzz::sim
