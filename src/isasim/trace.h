// Architectural commit trace: the common observable both simulators emit and
// the Mismatch Detector diffs. Field-for-field this mirrors what Spike's
// commit log and RocketCore's tracer expose (pc, instruction, destination
// write, memory access, trap), which is exactly the surface the paper's
// differential testing compares.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "riscv/csr.h"

namespace chatfuzz::sim {

/// One committed (or trapped) instruction.
struct CommitRecord {
  std::uint64_t pc = 0;
  std::uint32_t instr = 0;

  bool has_rd_write = false;  // integer destination written this commit
  std::uint8_t rd = 0;
  std::uint64_t rd_value = 0;

  bool has_mem = false;  // data memory access performed
  bool mem_is_store = false;
  std::uint64_t mem_addr = 0;
  std::uint64_t mem_value = 0;
  std::uint8_t mem_size = 0;  // bytes: 1, 2, 4, 8

  riscv::Exception exception = riscv::Exception::kNone;
  riscv::Priv priv = riscv::Priv::kMachine;  // privilege the instr ran at

  /// Compact single-line rendering for logs and mismatch reports.
  std::string to_string() const;
};

using Trace = std::vector<CommitRecord>;

/// Why a simulation run ended.
enum class StopReason {
  kPcEscape,      // pc left the RAM window (normal end for fuzz inputs)
  kStepLimit,     // bounded-run guard hit (looping input)
  kWfi,           // wfi retires with no interrupt source modeled
  kProgramEnd,    // fell through past the last program word into padding
};

const char* stop_reason_name(StopReason r);

/// Full result of running one test input on a simulator.
struct RunResult {
  Trace trace;
  StopReason stop = StopReason::kStepLimit;
  std::uint64_t steps = 0;       // instructions attempted (incl. trapped)
  std::uint64_t final_pc = 0;
};

}  // namespace chatfuzz::sim
