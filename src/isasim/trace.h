// Architectural commit trace: the common observable both simulators emit and
// the Mismatch Detector diffs. Field-for-field this mirrors what Spike's
// commit log and RocketCore's tracer expose (pc, instruction, destination
// write, memory access, trap), which is exactly the surface the paper's
// differential testing compares.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "riscv/csr.h"

namespace chatfuzz::sim {

/// One committed (or trapped) instruction.
struct CommitRecord {
  std::uint64_t pc = 0;
  std::uint32_t instr = 0;

  bool has_rd_write = false;  // integer destination written this commit
  std::uint8_t rd = 0;
  std::uint64_t rd_value = 0;

  bool has_mem = false;  // data memory access performed
  bool mem_is_store = false;
  std::uint64_t mem_addr = 0;
  std::uint64_t mem_value = 0;
  std::uint8_t mem_size = 0;  // bytes: 1, 2, 4, 8

  riscv::Exception exception = riscv::Exception::kNone;
  riscv::Priv priv = riscv::Priv::kMachine;  // privilege the instr ran at

  /// Compact single-line rendering for logs and mismatch reports.
  std::string to_string() const;
};

using Trace = std::vector<CommitRecord>;

/// Streaming consumer of commit records. A simulator with a sink attached
/// emits every committed (or trapped) instruction to it, in commit order,
/// instead of appending to its internal heap Trace — the campaign hot path
/// runs the whole co-simulate/compare pipeline without ever materializing a
/// trace. Sinks are borrowed, never owned, and must outlive the run.
class CommitSink {
 public:
  virtual ~CommitSink() = default;
  virtual void on_commit(const CommitRecord& rec) = 0;
};

/// Adapter that materializes the stream into a caller-owned Trace — the
/// bridge that keeps RunResult::trace available for the replay / minimize /
/// disasm tools on top of sink-based simulators.
class TraceSink final : public CommitSink {
 public:
  explicit TraceSink(Trace& out) : out_(&out) {}
  void on_commit(const CommitRecord& rec) override { out_->push_back(rec); }

 private:
  Trace* out_;
};

/// Swallows the stream. Attached when only the side effects of a run matter
/// (coverage collection with mismatch detection off), so no trace bytes are
/// written at all.
class DiscardSink final : public CommitSink {
 public:
  void on_commit(const CommitRecord&) override {}
};

/// Why a simulation run ended.
enum class StopReason {
  kPcEscape,      // pc left the RAM window (normal end for fuzz inputs)
  kStepLimit,     // bounded-run guard hit (looping input)
  kWfi,           // wfi retires with no interrupt source modeled
  kProgramEnd,    // fell through past the last program word into padding
};

const char* stop_reason_name(StopReason r);

/// Full result of running one test input on a simulator.
struct RunResult {
  Trace trace;
  StopReason stop = StopReason::kStepLimit;
  std::uint64_t steps = 0;       // instructions attempted (incl. trapped)
  std::uint64_t final_pc = 0;
};

}  // namespace chatfuzz::sim
