#include "isasim/sim.h"

#include "riscv/decode.h"

namespace chatfuzz::sim {

using riscv::Decoded;
using riscv::Exception;
using riscv::Opcode;
using riscv::Priv;

namespace {
std::int64_t s64(std::uint64_t v) { return static_cast<std::int64_t>(v); }
std::uint64_t sext32(std::uint64_t v) {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
}
unsigned mem_size_of(Opcode op) {
  switch (op) {
    case Opcode::kLb: case Opcode::kLbu: case Opcode::kSb: return 1;
    case Opcode::kLh: case Opcode::kLhu: case Opcode::kSh: return 2;
    case Opcode::kLw: case Opcode::kLwu: case Opcode::kSw: return 4;
    default: return 8;
  }
}
}  // namespace

IsaSim::IsaSim(Platform plat)
    : plat_(plat), mem_(plat.ram_base, plat.ram_size),
      sb_cells_(1 + ((plat.ram_size + 4095) >> 12), 0) {}

void IsaSim::reset(std::span<const std::uint32_t> program) {
  mem_.clear();
  mem_.load_words(plat_.ram_base, program);
  regs_ = initial_regs(plat_);
  pc_ = plat_.ram_base;
  priv_ = Priv::kMachine;
  csrs_ = CsrFile{};
  csrs_.mtvec = plat_.ram_base;  // trampoline; see platform.h
  clint_.reset();
  reservation_.reset();
  program_end_ = plat_.ram_base + 4 * program.size();
  predecode_.flush();
  ++sb_cells_[0];  // previous test's spans decode the previous image
  sb_builds_ = 0;
  flush_tlb();
  trace_.clear();
  // One reservation up front: the commit trace grows to max_steps on every
  // step-limited test, and mid-campaign reallocation of a vector this hot
  // shows up in profiles. Skipped entirely while a sink is attached — the
  // streaming path keeps the trace empty.
  if (sink_ == nullptr) trace_.reserve(plat_.max_steps);
  stopped_ = false;
  stop_reason_ = StopReason::kStepLimit;
  steps_ = 0;
}

RunResult IsaSim::run() {
  if (sb_enabled_ && !plat_.clint_enabled) {
    // Threaded dispatch: while untranslated, burn through cached
    // straight-line spans and fall back to step() at every block boundary
    // (and for everything translation- or interrupt-shaped).
    while (!stopped_) {
      if (!translation_active() && run_superblock()) continue;
      step();
    }
  } else {
    while (!stopped_) step();
  }
  RunResult r;
  r.trace = trace_;
  r.stop = stop_reason_;
  r.steps = steps_;
  r.final_pc = pc_;
  return r;
}

std::uint64_t IsaSim::csr_value(std::uint16_t addr) const {
  // Testbench-level inspection: reads with an M-mode view regardless of the
  // privilege the run ended in.
  std::uint64_t v = 0;
  csr_read(addr, v, riscv::Priv::kMachine);
  return v;
}

bool IsaSim::csr_read(std::uint16_t addr, std::uint64_t& value,
                      riscv::Priv view) const {
  namespace c = riscv::csr;
  if (static_cast<int>(view) < static_cast<int>(c::min_priv(addr))) return false;
  switch (addr) {
    case c::kMstatus: value = csrs_.mstatus; return true;
    case c::kMisa: value = kMisaValue; return true;
    case c::kMedeleg: value = csrs_.medeleg; return true;
    case c::kMideleg: value = csrs_.mideleg; return true;
    case c::kMie: value = csrs_.mie; return true;
    case c::kMtvec: value = csrs_.mtvec; return true;
    case c::kMcounteren: value = csrs_.mcounteren; return true;
    case c::kMscratch: value = csrs_.mscratch; return true;
    case c::kMepc: value = csrs_.mepc; return true;
    case c::kMcause: value = csrs_.mcause; return true;
    case c::kMtval: value = csrs_.mtval; return true;
    case c::kMip: value = csrs_.mip; return true;
    case c::kMcycle: case c::kCycle: value = csrs_.cycle; return true;
    case c::kTime: value = csrs_.cycle / 100; return true;
    case c::kMinstret: case c::kInstret: value = csrs_.instret; return true;
    case c::kMvendorid: case c::kMarchid: case c::kMimpid: case c::kMhartid:
      value = 0;
      return true;
    case c::kSstatus:
      value = csrs_.mstatus &
              (mstatus::kSie | mstatus::kSpie | mstatus::kSpp |
               mstatus::kSum | mstatus::kMxr);
      return true;
    case c::kSie: value = csrs_.mie & 0x222; return true;
    case c::kSip: value = csrs_.mip & 0x222; return true;
    case c::kStvec: value = csrs_.stvec; return true;
    case c::kScounteren: value = csrs_.scounteren; return true;
    case c::kSscratch: value = csrs_.sscratch; return true;
    case c::kSepc: value = csrs_.sepc; return true;
    case c::kScause: value = csrs_.scause; return true;
    case c::kStval: value = csrs_.stval; return true;
    case c::kSatp: value = csrs_.satp; return true;
    default: return false;
  }
}

bool IsaSim::csr_write(std::uint16_t addr, std::uint64_t value) {
  namespace c = riscv::csr;
  if (static_cast<int>(priv_) < static_cast<int>(c::min_priv(addr))) return false;
  if (c::is_read_only(addr)) return false;
  constexpr std::uint64_t kStatusMask =
      mstatus::kSie | mstatus::kMie | mstatus::kSpie | mstatus::kMpie |
      mstatus::kSpp | mstatus::kMppMask | mstatus::kSum | mstatus::kMxr;
  switch (addr) {
    case c::kMstatus: {
      std::uint64_t v = value & kStatusMask;
      // WARL: MPP==0b10 is reserved; fold to U.
      if (((v & mstatus::kMppMask) >> mstatus::kMppShift) == 2) {
        v &= ~mstatus::kMppMask;
      }
      csrs_.mstatus = v;
      return true;
    }
    case c::kMisa: return true;  // WARL: writes ignored
    case c::kMedeleg: csrs_.medeleg = value & c::kMedelegMask; return true;
    case c::kMideleg: csrs_.mideleg = value & c::kMidelegMask; return true;
    case c::kMie: csrs_.mie = value & 0xaaa; return true;
    case c::kMtvec: csrs_.mtvec = value & ~3ull; return true;
    case c::kMcounteren: csrs_.mcounteren = value & 7; return true;
    case c::kMscratch: csrs_.mscratch = value; return true;
    case c::kMepc: csrs_.mepc = value & ~3ull; return true;
    case c::kMcause: csrs_.mcause = value; return true;
    case c::kMtval: csrs_.mtval = value; return true;
    case c::kMip: csrs_.mip = value & 0x222; return true;
    case c::kMcycle: csrs_.cycle = value; return true;
    case c::kMinstret: csrs_.instret = value; return true;
    case c::kSstatus: {
      constexpr std::uint64_t kSMask =
          mstatus::kSie | mstatus::kSpie | mstatus::kSpp | mstatus::kSum |
          mstatus::kMxr;
      csrs_.mstatus = (csrs_.mstatus & ~kSMask) | (value & kSMask);
      return true;
    }
    case c::kSie:
      csrs_.mie = (csrs_.mie & ~0x222ull) | (value & 0x222);
      return true;
    case c::kSip:
      csrs_.mip = (csrs_.mip & ~0x222ull) | (value & 0x222);
      return true;
    case c::kStvec: csrs_.stvec = value & ~3ull; return true;
    case c::kScounteren: csrs_.scounteren = value & 7; return true;
    case c::kSscratch: csrs_.sscratch = value; return true;
    case c::kSepc: csrs_.sepc = value & ~3ull; return true;
    case c::kScause: csrs_.scause = value; return true;
    case c::kStval: csrs_.stval = value; return true;
    case c::kSatp:
      // WARL MODE (Bare/Sv39 only); any accepted write is an implicit
      // translation-context switch, so the TLB drops everything.
      csrs_.satp = c::legalize_satp(csrs_.satp, value);
      flush_tlb();
      return true;
    default: return false;
  }
}

void IsaSim::raise(CommitRecord& rec, Exception cause, std::uint64_t tval) {
  rec.exception = cause;
  // Squash any architectural effect recorded so far for this instruction.
  rec.has_rd_write = false;
  rec.has_mem = false;
  // Delegation: traps taken below M with the medeleg bit set go to the
  // S-mode trampoline (see platform.h); traps in M never delegate.
  if (priv_ != Priv::kMachine &&
      (csrs_.medeleg >> static_cast<unsigned>(cause)) & 1) {
    csrs_.sepc = pc_;
    csrs_.scause = static_cast<std::uint64_t>(cause);
    csrs_.stval = tval;
    // sstatus trap entry: SPIE<=SIE, SIE<=0, SPP<=priv.
    const bool sie = (csrs_.mstatus & mstatus::kSie) != 0;
    csrs_.mstatus &= ~(mstatus::kSie | mstatus::kSpie | mstatus::kSpp);
    if (sie) csrs_.mstatus |= mstatus::kSpie;
    if (priv_ == Priv::kSupervisor) csrs_.mstatus |= mstatus::kSpp;
    priv_ = Priv::kSupervisor;
    pc_ = csrs_.sepc + 4;
    return;
  }
  csrs_.mepc = pc_;
  csrs_.mcause = static_cast<std::uint64_t>(cause);
  csrs_.mtval = tval;
  // mstatus trap entry: MPIE<=MIE, MIE<=0, MPP<=priv.
  const bool mie = (csrs_.mstatus & mstatus::kMie) != 0;
  csrs_.mstatus &= ~(mstatus::kMie | mstatus::kMpie | mstatus::kMppMask);
  if (mie) csrs_.mstatus |= mstatus::kMpie;
  csrs_.mstatus |=
      static_cast<std::uint64_t>(priv_) << mstatus::kMppShift;
  priv_ = Priv::kMachine;
  // Magic trampoline (see platform.h): resume after the faulting instruction.
  pc_ = csrs_.mepc + 4;
}

void IsaSim::write_rd(CommitRecord& rec, std::uint8_t rd, std::uint64_t value) {
  if (rd != 0) regs_[rd] = value;
  rec.has_rd_write = rd != 0;
  rec.rd = rd;
  rec.rd_value = rd != 0 ? value : 0;
}

void IsaSim::service_interrupts() {
  clint_.tick();
  csrs_.mip = (csrs_.mip & ~mip::kMachineBits) | clint_.pending_mip();
  const std::uint64_t ready = csrs_.mie & csrs_.mip & mip::kMachineBits;
  if (ready == 0) return;
  // M-mode interrupts are taken when executing below M, or in M with
  // mstatus.MIE set. Priority: software above timer (privileged spec).
  const bool enabled =
      priv_ != Priv::kMachine || (csrs_.mstatus & mstatus::kMie) != 0;
  if (!enabled) return;
  const std::uint64_t cause =
      (ready & mip::kMsip) != 0 ? mip::kCauseMsi : mip::kCauseMti;
  csrs_.mepc = pc_;
  csrs_.mcause = mip::kInterruptFlag | cause;
  csrs_.mtval = 0;
  const bool mie = (csrs_.mstatus & mstatus::kMie) != 0;
  csrs_.mstatus &= ~(mstatus::kMie | mstatus::kMpie | mstatus::kMppMask);
  if (mie) csrs_.mstatus |= mstatus::kMpie;
  csrs_.mstatus |= static_cast<std::uint64_t>(priv_) << mstatus::kMppShift;
  priv_ = Priv::kMachine;
  // Magic trampoline: the testbench handler acknowledges the source at the
  // CLINT and resumes at the interrupted instruction (pc_ unchanged).
  clint_.clear_source(cause);
  csrs_.mip = (csrs_.mip & ~mip::kMachineBits) | clint_.pending_mip();
}

bool IsaSim::translation_active() const {
  return priv_ != Priv::kMachine &&
         (csrs_.satp >> riscv::csr::kSatpModeShift) == riscv::csr::kSatpModeSv39;
}

void IsaSim::flush_tlb() { tlb_.fill(TlbEntry{}); }

Exception IsaSim::check_leaf(std::uint64_t pte, Access access) const {
  namespace pv = riscv::sv39;
  const Exception fault = access == Access::kFetch  ? Exception::kInstrPageFault
                          : access == Access::kLoad ? Exception::kLoadPageFault
                                                    : Exception::kStorePageFault;
  const bool user_page = (pte & pv::kPteU) != 0;
  if (access == Access::kFetch) {
    if ((pte & pv::kPteX) == 0) return fault;
    if (priv_ == Priv::kUser && !user_page) return fault;
    // S-mode fetch from a U page always faults (SUM covers data only).
    if (priv_ == Priv::kSupervisor && user_page) return fault;
  } else {
    if (priv_ == Priv::kUser && !user_page) return fault;
    if (priv_ == Priv::kSupervisor && user_page &&
        (csrs_.mstatus & mstatus::kSum) == 0) {
      return fault;
    }
    if (access == Access::kLoad) {
      const bool readable =
          (pte & pv::kPteR) != 0 ||
          ((csrs_.mstatus & mstatus::kMxr) != 0 && (pte & pv::kPteX) != 0);
      if (!readable) return fault;
    } else if ((pte & pv::kPteW) == 0) {
      return fault;
    }
  }
  // Svade scheme: the walker never sets A/D in memory; an access needing an
  // update faults so software (here: the fuzzed program) does it instead.
  if ((pte & pv::kPteA) == 0) return fault;
  if (access == Access::kStore && (pte & pv::kPteD) == 0) return fault;
  return Exception::kNone;
}

Exception IsaSim::translate(std::uint64_t vaddr, Access access,
                            std::uint64_t& paddr) {
  namespace pv = riscv::sv39;
  const Exception fault = access == Access::kFetch  ? Exception::kInstrPageFault
                          : access == Access::kLoad ? Exception::kLoadPageFault
                                                    : Exception::kStorePageFault;
  if (!pv::canonical(vaddr)) return fault;
  const std::uint64_t vpn = vaddr >> pv::kPageShift;
  TlbEntry& e = tlb_[vpn % kTlbEntries];
  std::uint64_t pte;
  unsigned level;
  if (e.valid && e.vpn == vpn) {
    ++obs_tlb_hits_;
    pte = e.pte;
    level = e.level;
  } else {
    ++obs_tlb_misses_;
    std::uint64_t base = (csrs_.satp & riscv::csr::kSatpPpnMask)
                         << pv::kPageShift;
    int lvl = pv::kLevels - 1;
    for (;; --lvl) {
      if (lvl < 0) return fault;
      const std::uint64_t pte_addr =
          base + pv::vpn_slice(vaddr, static_cast<unsigned>(lvl)) * 8;
      if (!mem_.in_ram(pte_addr, 8)) return fault;
      pte = mem_.read(pte_addr, 8);
      if ((pte & pv::kPteV) == 0) return fault;
      if ((pte & pv::kPteW) != 0 && (pte & pv::kPteR) == 0) return fault;
      if ((pte & (pv::kPteR | pv::kPteX)) != 0) break;  // leaf
      base = pv::pte_ppn(pte) << pv::kPageShift;
    }
    level = static_cast<unsigned>(lvl);
    // Misaligned superpage: a leaf above level 0 must have zero low PPN bits.
    if (level > 0 && (pv::pte_ppn(pte) & ((1ull << (9 * level)) - 1)) != 0) {
      return fault;
    }
    e = TlbEntry{true, vpn, pte, static_cast<std::uint8_t>(level)};
  }
  // Permission checks run against *current* privilege and mstatus on every
  // access, hit or refill — the TLB caches the PTE, not the verdict.
  if (const Exception f = check_leaf(pte, access); f != Exception::kNone) {
    return f;
  }
  const std::uint64_t low = (1ull << (9 * level)) - 1;
  const std::uint64_t ppn = (pv::pte_ppn(pte) & ~low) | (vpn & low);
  paddr = (ppn << pv::kPageShift) | (vaddr & ((1ull << pv::kPageShift) - 1));
  return Exception::kNone;
}

std::optional<CommitRecord> IsaSim::step() {
  if (stopped_) return std::nullopt;
  if (steps_ >= plat_.max_steps) {
    stopped_ = true;
    stop_reason_ = StopReason::kStepLimit;
    return std::nullopt;
  }
  if (translation_active()) {
    // Translated fetch. The predecode cache keys on (virtual) pc while store
    // invalidation uses physical addresses, so it is bypassed entirely under
    // Sv39 — every fetch re-reads and re-decodes through the walker.
    std::uint64_t pa = pc_;
    if (const Exception f = translate(pc_, Access::kFetch, pa);
        f != Exception::kNone) {
      ++steps_;
      ++csrs_.cycle;
      CommitRecord rec;
      rec.pc = pc_;
      rec.instr = 0;  // nothing was fetched
      rec.priv = priv_;
      raise(rec, f, pc_);
      if (sink_ != nullptr) {
        sink_->on_commit(rec);
      } else {
        trace_.push_back(rec);
      }
      return rec;
    }
    if (!mem_.in_ram(pa, 4)) {
      stopped_ = true;
      stop_reason_ = StopReason::kPcEscape;
      return std::nullopt;
    }
    const auto raw = static_cast<std::uint32_t>(mem_.read(pa, 4));
    if (raw == 0) {
      stopped_ = true;
      stop_reason_ = StopReason::kProgramEnd;
      return std::nullopt;
    }
    const Decoded d = riscv::decode(raw);
    ++steps_;
    ++csrs_.cycle;
    if (plat_.clint_enabled) service_interrupts();
    CommitRecord rec;
    rec.pc = pc_;
    rec.instr = raw;
    rec.priv = priv_;
    execute(d, rec);
    if (rec.exception == Exception::kNone) ++csrs_.instret;
    if (sink_ != nullptr) {
      sink_->on_commit(rec);
    } else {
      trace_.push_back(rec);
    }
    return rec;
  }
  // Fetch through the predecode cache: a hit proves pc was in RAM and the
  // word nonzero when inserted, and store/fence.i invalidation keeps the
  // bytes current — so the sparse-memory read, the RAM range check and the
  // decoder table scan are all skipped on the hot path.
  std::uint32_t raw;
  const Decoded* d;
  if (const auto* hit = predecode_.find(pc_)) {
    raw = hit->raw;
    d = &hit->d;
  } else {
    if (!mem_.in_ram(pc_, 4)) {
      stopped_ = true;
      stop_reason_ = StopReason::kPcEscape;
      return std::nullopt;
    }
    raw = static_cast<std::uint32_t>(mem_.read(pc_, 4));
    if (raw == 0) {
      // All-zero word: guaranteed-illegal in RISC-V; used as the end-of-
      // program marker by the harness (padding after the loaded image).
      // Never cached, so the marker check stays on the miss path only.
      stopped_ = true;
      stop_reason_ = StopReason::kProgramEnd;
      return std::nullopt;
    }
    d = &predecode_.insert(pc_, raw);
  }
  ++steps_;
  ++csrs_.cycle;
  if (plat_.clint_enabled) service_interrupts();

  CommitRecord rec;
  rec.pc = pc_;
  rec.instr = raw;
  rec.priv = priv_;

  execute(*d, rec);
  if (rec.exception == Exception::kNone) ++csrs_.instret;
  if (sink_ != nullptr) {
    sink_->on_commit(rec);
  } else {
    trace_.push_back(rec);
  }
  return rec;
}

const IsaSim::SbIndex::Span* IsaSim::build_superblock() {
  SbIndex::Span& span = sb_.begin_build(pc_);
  sb_.add_guard(span, 0, sb_cells_[0]);  // global flush epoch
  std::uint64_t addr = pc_;
  for (std::size_t i = 0; i < riscv::kMaxSuperblockLen; ++i, addr += 4) {
    // pc is 4-aligned while untranslated (misaligned targets fault before
    // redirecting), so one word never straddles a page: one guard covers it.
    if (!mem_.in_ram(addr, 4)) break;
    const std::uint32_t page = sb_page_cell(addr);
    if (!sb_.add_guard(span, page, sb_cells_[page])) break;
    const auto raw = static_cast<std::uint32_t>(mem_.read(addr, 4));
    if (raw == 0) break;  // end-of-program marker: slow path stops on it
    const Decoded d = riscv::decode(raw);
    if (riscv::superblock_terminator(d)) break;
    sb_.push(span, d);
  }
  return &span;
}

bool IsaSim::run_superblock() {
  if (steps_ >= plat_.max_steps) return false;
  const SbIndex::Span* span = sb_.find(pc_, sb_cells_);
  if (span == nullptr) {
    // Churn guard (see sb_builds_): past the warmup allowance, build at
    // most one span per 16 committed instructions.
    if (sb_builds_ > 8 && sb_builds_ * 16 > steps_) return false;
    ++sb_builds_;
    ++obs_sb_builds_;
    span = build_superblock();
  } else {
    ++obs_sb_hits_;
  }
  if (span->len == 0) return false;
  const Decoded* slots = sb_.slots(*span);
  const std::uint64_t budget = plat_.max_steps - steps_;
  const std::uint64_t n = span->len < budget ? span->len : budget;
  std::uint64_t executed = 0;
  while (executed < n) {
    const Decoded& d = slots[executed];
    ++steps_;
    ++csrs_.cycle;
    CommitRecord rec;
    rec.pc = pc_;
    rec.instr = d.raw;
    rec.priv = priv_;
    execute(d, rec);
    if (rec.exception == Exception::kNone) ++csrs_.instret;
    if (sink_ != nullptr) {
      sink_->on_commit(rec);
    } else {
      trace_.push_back(rec);
    }
    ++executed;
    if (rec.exception != Exception::kNone) {
      // The magic trampoline resumes at the faulting pc + 4 — exactly the
      // span's fall-through — so execution can stay in-span unless the trap
      // delegated into an S-mode translation context.
      if (translation_active()) break;
    } else if (rec.has_mem && rec.mem_is_store &&
               !SbIndex::fresh(*span, sb_cells_)) {
      // Self-modifying store under this very span: the remaining decoded
      // slots may be stale, so re-fetch through the slow path.
      break;
    }
  }
  return executed > 0;
}

void IsaSim::execute(const Decoded& d, CommitRecord& rec) {
  const std::uint64_t next_pc = pc_ + 4;
  if (!d.valid()) {
    raise(rec, Exception::kIllegalInstruction, d.raw);
    return;
  }
  const std::uint64_t a = regs_[d.rs1];
  const std::uint64_t b = regs_[d.rs2];

  switch (d.op) {
    // ---- U / J ------------------------------------------------------------
    case Opcode::kLui:
      write_rd(rec, d.rd, static_cast<std::uint64_t>(d.imm));
      break;
    case Opcode::kAuipc:
      write_rd(rec, d.rd, pc_ + static_cast<std::uint64_t>(d.imm));
      break;
    case Opcode::kJal: {
      const std::uint64_t target = pc_ + static_cast<std::uint64_t>(d.imm);
      if (target & 3) {
        raise(rec, Exception::kInstrAddrMisaligned, target);
        return;
      }
      write_rd(rec, d.rd, next_pc);
      pc_ = target;
      return;
    }
    case Opcode::kJalr: {
      const std::uint64_t target =
          (a + static_cast<std::uint64_t>(d.imm)) & ~1ull;
      if (target & 3) {
        raise(rec, Exception::kInstrAddrMisaligned, target);
        return;
      }
      write_rd(rec, d.rd, next_pc);
      pc_ = target;
      return;
    }
    // ---- Branches ----------------------------------------------------------
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu: {
      bool taken = false;
      switch (d.op) {
        case Opcode::kBeq: taken = a == b; break;
        case Opcode::kBne: taken = a != b; break;
        case Opcode::kBlt: taken = s64(a) < s64(b); break;
        case Opcode::kBge: taken = s64(a) >= s64(b); break;
        case Opcode::kBltu: taken = a < b; break;
        default: taken = a >= b; break;
      }
      if (taken) {
        const std::uint64_t target = pc_ + static_cast<std::uint64_t>(d.imm);
        if (target & 3) {
          raise(rec, Exception::kInstrAddrMisaligned, target);
          return;
        }
        pc_ = target;
        return;
      }
      break;
    }
    // ---- Loads ---------------------------------------------------------------
    case Opcode::kLb: case Opcode::kLh: case Opcode::kLw: case Opcode::kLd:
    case Opcode::kLbu: case Opcode::kLhu: case Opcode::kLwu: {
      const std::uint64_t addr = a + static_cast<std::uint64_t>(d.imm);
      const unsigned size = mem_size_of(d.op);
      // Spec priority: misaligned outranks access fault (paper Finding1),
      // and is checked on the virtual address, before translation.
      if (addr % size != 0) {
        raise(rec, Exception::kLoadAddrMisaligned, addr);
        return;
      }
      std::uint64_t pa = addr;
      if (translation_active()) {
        if (const Exception f = translate(addr, Access::kLoad, pa);
            f != Exception::kNone) {
          raise(rec, f, addr);
          return;
        }
      }
      if (clint_.contains(plat_, pa)) {
        std::uint64_t mmio = 0;
        if (!clint_.read(plat_, pa, size, mmio)) {
          raise(rec, Exception::kLoadAccessFault, addr);
          return;
        }
        rec.has_mem = true;
        rec.mem_is_store = false;
        rec.mem_addr = addr;
        rec.mem_value = mmio;
        rec.mem_size = static_cast<std::uint8_t>(size);
        write_rd(rec, d.rd, d.op == Opcode::kLw ? sext32(mmio) : mmio);
        break;
      }
      if (!mem_.in_ram(pa, size)) {
        raise(rec, Exception::kLoadAccessFault, addr);
        return;
      }
      const std::uint64_t bits = mem_.read(pa, size);
      std::uint64_t value = bits;
      switch (d.op) {
        case Opcode::kLb: value = static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int8_t>(bits))); break;
        case Opcode::kLh: value = static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int16_t>(bits))); break;
        case Opcode::kLw: value = sext32(bits); break;
        default: break;  // ld/lbu/lhu/lwu: already correct
      }
      rec.has_mem = true;
      rec.mem_is_store = false;
      rec.mem_addr = addr;
      rec.mem_value = bits;
      rec.mem_size = static_cast<std::uint8_t>(size);
      write_rd(rec, d.rd, value);
      break;
    }
    // ---- Stores ---------------------------------------------------------------
    case Opcode::kSb: case Opcode::kSh: case Opcode::kSw: case Opcode::kSd: {
      const std::uint64_t addr = a + static_cast<std::uint64_t>(d.imm);
      const unsigned size = mem_size_of(d.op);
      if (addr % size != 0) {
        raise(rec, Exception::kStoreAddrMisaligned, addr);
        return;
      }
      std::uint64_t pa = addr;
      if (translation_active()) {
        if (const Exception f = translate(addr, Access::kStore, pa);
            f != Exception::kNone) {
          raise(rec, f, addr);
          return;
        }
      }
      if (clint_.contains(plat_, pa)) {
        const std::uint64_t mmio =
            size == 8 ? b : (b & ((1ull << (8 * size)) - 1));
        if (!clint_.write(plat_, pa, size, mmio)) {
          raise(rec, Exception::kStoreAccessFault, addr);
          return;
        }
        csrs_.mip = (csrs_.mip & ~mip::kMachineBits) | clint_.pending_mip();
        rec.has_mem = true;
        rec.mem_is_store = true;
        rec.mem_addr = addr;
        rec.mem_value = mmio;
        rec.mem_size = static_cast<std::uint8_t>(size);
        break;
      }
      if (!mem_.in_ram(pa, size)) {
        raise(rec, Exception::kStoreAccessFault, addr);
        return;
      }
      const std::uint64_t bits =
          size == 8 ? b : (b & ((1ull << (8 * size)) - 1));
      mem_.write(pa, bits, size);
      predecode_.invalidate(pa, size);  // self-modifying code
      sb_note_write(pa, size);
      rec.has_mem = true;
      rec.mem_is_store = true;
      rec.mem_addr = addr;
      rec.mem_value = bits;
      rec.mem_size = static_cast<std::uint8_t>(size);
      break;
    }
    // ---- ALU immediate -------------------------------------------------------
    case Opcode::kAddi: write_rd(rec, d.rd, a + static_cast<std::uint64_t>(d.imm)); break;
    case Opcode::kSlti: write_rd(rec, d.rd, s64(a) < d.imm ? 1 : 0); break;
    case Opcode::kSltiu: write_rd(rec, d.rd, a < static_cast<std::uint64_t>(d.imm) ? 1 : 0); break;
    case Opcode::kXori: write_rd(rec, d.rd, a ^ static_cast<std::uint64_t>(d.imm)); break;
    case Opcode::kOri: write_rd(rec, d.rd, a | static_cast<std::uint64_t>(d.imm)); break;
    case Opcode::kAndi: write_rd(rec, d.rd, a & static_cast<std::uint64_t>(d.imm)); break;
    case Opcode::kSlli: write_rd(rec, d.rd, a << d.imm); break;
    case Opcode::kSrli: write_rd(rec, d.rd, a >> d.imm); break;
    case Opcode::kSrai: write_rd(rec, d.rd, static_cast<std::uint64_t>(s64(a) >> d.imm)); break;
    // ---- ALU register -------------------------------------------------------
    case Opcode::kAdd: write_rd(rec, d.rd, a + b); break;
    case Opcode::kSub: write_rd(rec, d.rd, a - b); break;
    case Opcode::kSll: write_rd(rec, d.rd, a << (b & 63)); break;
    case Opcode::kSlt: write_rd(rec, d.rd, s64(a) < s64(b) ? 1 : 0); break;
    case Opcode::kSltu: write_rd(rec, d.rd, a < b ? 1 : 0); break;
    case Opcode::kXor: write_rd(rec, d.rd, a ^ b); break;
    case Opcode::kSrl: write_rd(rec, d.rd, a >> (b & 63)); break;
    case Opcode::kSra: write_rd(rec, d.rd, static_cast<std::uint64_t>(s64(a) >> (b & 63))); break;
    case Opcode::kOr: write_rd(rec, d.rd, a | b); break;
    case Opcode::kAnd: write_rd(rec, d.rd, a & b); break;
    // ---- RV64 *W ------------------------------------------------------------
    case Opcode::kAddiw: write_rd(rec, d.rd, sext32(a + static_cast<std::uint64_t>(d.imm))); break;
    case Opcode::kSlliw: write_rd(rec, d.rd, sext32(a << d.imm)); break;
    case Opcode::kSrliw: write_rd(rec, d.rd, sext32(static_cast<std::uint32_t>(a) >> d.imm)); break;
    case Opcode::kSraiw: write_rd(rec, d.rd, static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int32_t>(a) >> d.imm))); break;
    case Opcode::kAddw: write_rd(rec, d.rd, sext32(a + b)); break;
    case Opcode::kSubw: write_rd(rec, d.rd, sext32(a - b)); break;
    case Opcode::kSllw: write_rd(rec, d.rd, sext32(a << (b & 31))); break;
    case Opcode::kSrlw: write_rd(rec, d.rd, sext32(static_cast<std::uint32_t>(a) >> (b & 31))); break;
    case Opcode::kSraw: write_rd(rec, d.rd, static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int32_t>(a) >> (b & 31)))); break;
    // ---- M extension ----------------------------------------------------------
    case Opcode::kMul: write_rd(rec, d.rd, a * b); break;
    case Opcode::kMulh:
      write_rd(rec, d.rd, static_cast<std::uint64_t>(
          (static_cast<__int128>(s64(a)) * static_cast<__int128>(s64(b))) >> 64));
      break;
    case Opcode::kMulhsu:
      write_rd(rec, d.rd, static_cast<std::uint64_t>(
          (static_cast<__int128>(s64(a)) * static_cast<unsigned __int128>(b)) >> 64));
      break;
    case Opcode::kMulhu:
      write_rd(rec, d.rd, static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b)) >> 64));
      break;
    case Opcode::kDiv:
      if (b == 0) write_rd(rec, d.rd, ~0ull);
      else if (s64(a) == INT64_MIN && s64(b) == -1) write_rd(rec, d.rd, a);
      else write_rd(rec, d.rd, static_cast<std::uint64_t>(s64(a) / s64(b)));
      break;
    case Opcode::kDivu:
      write_rd(rec, d.rd, b == 0 ? ~0ull : a / b);
      break;
    case Opcode::kRem:
      if (b == 0) write_rd(rec, d.rd, a);
      else if (s64(a) == INT64_MIN && s64(b) == -1) write_rd(rec, d.rd, 0);
      else write_rd(rec, d.rd, static_cast<std::uint64_t>(s64(a) % s64(b)));
      break;
    case Opcode::kRemu:
      write_rd(rec, d.rd, b == 0 ? a : a % b);
      break;
    case Opcode::kMulw: write_rd(rec, d.rd, sext32(a * b)); break;
    case Opcode::kDivw: {
      const auto x = static_cast<std::int32_t>(a);
      const auto y = static_cast<std::int32_t>(b);
      std::int32_t q;
      if (y == 0) q = -1;
      else if (x == INT32_MIN && y == -1) q = x;
      else q = x / y;
      write_rd(rec, d.rd, static_cast<std::uint64_t>(static_cast<std::int64_t>(q)));
      break;
    }
    case Opcode::kDivuw: {
      const auto x = static_cast<std::uint32_t>(a);
      const auto y = static_cast<std::uint32_t>(b);
      write_rd(rec, d.rd, sext32(y == 0 ? ~0u : x / y));
      break;
    }
    case Opcode::kRemw: {
      const auto x = static_cast<std::int32_t>(a);
      const auto y = static_cast<std::int32_t>(b);
      std::int32_t r;
      if (y == 0) r = x;
      else if (x == INT32_MIN && y == -1) r = 0;
      else r = x % y;
      write_rd(rec, d.rd, static_cast<std::uint64_t>(static_cast<std::int64_t>(r)));
      break;
    }
    case Opcode::kRemuw: {
      const auto x = static_cast<std::uint32_t>(a);
      const auto y = static_cast<std::uint32_t>(b);
      write_rd(rec, d.rd, sext32(y == 0 ? x : x % y));
      break;
    }
    // ---- Fences ---------------------------------------------------------------
    case Opcode::kFence:
      break;  // no reordering to fence in a sequential model
    case Opcode::kFenceI:
      // Golden model is architecturally coherent already (stores invalidate
      // the predecode cache), but fence.i still drops everything — it is
      // the documented "make fetch see every prior store" point.
      predecode_.flush();
      ++sb_cells_[0];
      break;
    // ---- System ---------------------------------------------------------------
    case Opcode::kEcall:
      raise(rec,
            priv_ == Priv::kMachine ? Exception::kEcallFromM
            : priv_ == Priv::kSupervisor ? Exception::kEcallFromS
                                         : Exception::kEcallFromU,
            0);
      return;
    case Opcode::kEbreak:
      raise(rec, Exception::kBreakpoint, pc_);
      return;
    case Opcode::kWfi:
      if (priv_ == Priv::kUser) {
        raise(rec, Exception::kIllegalInstruction, d.raw);
        return;
      }
      stopped_ = true;
      stop_reason_ = StopReason::kWfi;
      break;
    case Opcode::kMret: {
      if (priv_ != Priv::kMachine) {
        raise(rec, Exception::kIllegalInstruction, d.raw);
        return;
      }
      const auto mpp = static_cast<Priv>(
          (csrs_.mstatus & mstatus::kMppMask) >> mstatus::kMppShift);
      const bool mpie = (csrs_.mstatus & mstatus::kMpie) != 0;
      csrs_.mstatus &= ~(mstatus::kMie | mstatus::kMpie | mstatus::kMppMask);
      if (mpie) csrs_.mstatus |= mstatus::kMie;
      csrs_.mstatus |= mstatus::kMpie;
      priv_ = mpp;
      pc_ = csrs_.mepc;
      return;
    }
    case Opcode::kSret: {
      if (priv_ == Priv::kUser) {
        raise(rec, Exception::kIllegalInstruction, d.raw);
        return;
      }
      const bool spp = (csrs_.mstatus & mstatus::kSpp) != 0;
      const bool spie = (csrs_.mstatus & mstatus::kSpie) != 0;
      csrs_.mstatus &= ~(mstatus::kSie | mstatus::kSpie | mstatus::kSpp);
      if (spie) csrs_.mstatus |= mstatus::kSie;
      csrs_.mstatus |= mstatus::kSpie;
      priv_ = spp ? Priv::kSupervisor : Priv::kUser;
      pc_ = csrs_.sepc;
      return;
    }
    // ---- Zicsr ---------------------------------------------------------------
    case Opcode::kCsrrw: case Opcode::kCsrrs: case Opcode::kCsrrc:
    case Opcode::kCsrrwi: case Opcode::kCsrrsi: case Opcode::kCsrrci: {
      const bool imm_form = d.op == Opcode::kCsrrwi ||
                            d.op == Opcode::kCsrrsi || d.op == Opcode::kCsrrci;
      const std::uint64_t operand = imm_form ? d.rs1 : a;
      const bool is_write_op = d.op == Opcode::kCsrrw || d.op == Opcode::kCsrrwi;
      // csrrs/c with rs1=x0 (or zimm=0) reads without writing.
      const bool do_write = is_write_op || d.rs1 != 0;
      std::uint64_t old = 0;
      if (!csr_read(d.csr, old, priv_)) {
        raise(rec, Exception::kIllegalInstruction, d.raw);
        return;
      }
      if (do_write) {
        std::uint64_t next = operand;
        if (d.op == Opcode::kCsrrs || d.op == Opcode::kCsrrsi) next = old | operand;
        if (d.op == Opcode::kCsrrc || d.op == Opcode::kCsrrci) next = old & ~operand;
        if (!csr_write(d.csr, next)) {
          raise(rec, Exception::kIllegalInstruction, d.raw);
          return;
        }
      }
      write_rd(rec, d.rd, old);
      break;
    }
    // ---- A extension ----------------------------------------------------------
    case Opcode::kSfenceVma:
      if (priv_ == Priv::kUser) {
        raise(rec, Exception::kIllegalInstruction, d.raw);
        return;
      }
      // The selective rs1/rs2 forms flush everything too — both simulators
      // over-approximate identically, so the differential stays quiet.
      flush_tlb();
      break;
    case Opcode::kLrW: case Opcode::kLrD: {
      const unsigned size = d.op == Opcode::kLrW ? 4 : 8;
      if (regs_[d.rs1] % size != 0) {
        raise(rec, Exception::kLoadAddrMisaligned, a);
        return;
      }
      std::uint64_t pa = a;
      if (translation_active()) {
        if (const Exception f = translate(a, Access::kLoad, pa);
            f != Exception::kNone) {
          raise(rec, f, a);
          return;
        }
      }
      if (!mem_.in_ram(pa, size)) {
        raise(rec, Exception::kLoadAccessFault, a);
        return;
      }
      const std::uint64_t bits = mem_.read(pa, size);
      reservation_ = pa;
      rec.has_mem = true;
      rec.mem_is_store = false;
      rec.mem_addr = a;
      rec.mem_value = bits;
      rec.mem_size = static_cast<std::uint8_t>(size);
      write_rd(rec, d.rd, size == 4 ? sext32(bits) : bits);
      break;
    }
    case Opcode::kScW: case Opcode::kScD: {
      const unsigned size = d.op == Opcode::kScW ? 4 : 8;
      if (a % size != 0) {
        raise(rec, Exception::kStoreAddrMisaligned, a);
        return;
      }
      std::uint64_t pa = a;
      if (translation_active()) {
        if (const Exception f = translate(a, Access::kStore, pa);
            f != Exception::kNone) {
          raise(rec, f, a);
          return;
        }
      }
      if (!mem_.in_ram(pa, size)) {
        raise(rec, Exception::kStoreAccessFault, a);
        return;
      }
      // The reservation is held on the physical address, as LR recorded it.
      if (reservation_ && *reservation_ == pa) {
        const std::uint64_t bits =
            size == 8 ? b : (b & 0xffffffffull);
        mem_.write(pa, bits, size);
        predecode_.invalidate(pa, size);
        sb_note_write(pa, size);
        rec.has_mem = true;
        rec.mem_is_store = true;
        rec.mem_addr = a;
        rec.mem_value = bits;
        rec.mem_size = static_cast<std::uint8_t>(size);
        write_rd(rec, d.rd, 0);
      } else {
        write_rd(rec, d.rd, 1);
      }
      reservation_.reset();
      break;
    }
    default: {
      // Remaining opcodes are all AMOs.
      const unsigned size =
          (static_cast<std::uint32_t>(riscv::spec(d.op).match) & 0x7000u) == 0x2000u
              ? 4
              : 8;
      if (a % size != 0) {
        raise(rec, Exception::kStoreAddrMisaligned, a);
        return;
      }
      std::uint64_t pa = a;
      if (translation_active()) {
        // AMOs translate as stores: the read-modify-write needs W (+D).
        if (const Exception f = translate(a, Access::kStore, pa);
            f != Exception::kNone) {
          raise(rec, f, a);
          return;
        }
      }
      if (!mem_.in_ram(pa, size)) {
        raise(rec, Exception::kStoreAccessFault, a);
        return;
      }
      const std::uint64_t old_bits = mem_.read(pa, size);
      const std::uint64_t old_val = size == 4 ? sext32(old_bits) : old_bits;
      const std::uint64_t src = size == 4 ? sext32(b) : b;
      std::uint64_t result = 0;
      switch (d.op) {
        case Opcode::kAmoSwapW: case Opcode::kAmoSwapD: result = src; break;
        case Opcode::kAmoAddW: case Opcode::kAmoAddD: result = old_val + src; break;
        case Opcode::kAmoXorW: case Opcode::kAmoXorD: result = old_val ^ src; break;
        case Opcode::kAmoAndW: case Opcode::kAmoAndD: result = old_val & src; break;
        case Opcode::kAmoOrW: case Opcode::kAmoOrD: result = old_val | src; break;
        case Opcode::kAmoMinW: case Opcode::kAmoMinD:
          result = s64(old_val) < s64(src) ? old_val : src;
          break;
        case Opcode::kAmoMaxW: case Opcode::kAmoMaxD:
          result = s64(old_val) > s64(src) ? old_val : src;
          break;
        case Opcode::kAmoMinuW:
          result = static_cast<std::uint32_t>(old_bits) < static_cast<std::uint32_t>(b)
                       ? old_bits : b;
          break;
        case Opcode::kAmoMinuD: result = old_bits < b ? old_bits : b; break;
        case Opcode::kAmoMaxuW:
          result = static_cast<std::uint32_t>(old_bits) > static_cast<std::uint32_t>(b)
                       ? old_bits : b;
          break;
        case Opcode::kAmoMaxuD: result = old_bits > b ? old_bits : b; break;
        default:
          raise(rec, Exception::kIllegalInstruction, d.raw);
          return;
      }
      const std::uint64_t store_bits =
          size == 8 ? result : (result & 0xffffffffull);
      mem_.write(pa, store_bits, size);
      predecode_.invalidate(pa, size);
      sb_note_write(pa, size);
      rec.has_mem = true;
      rec.mem_is_store = true;
      rec.mem_addr = a;
      rec.mem_value = store_bits;
      rec.mem_size = static_cast<std::uint8_t>(size);
      write_rd(rec, d.rd, old_val);
      break;
    }
  }
  pc_ = next_pc;
}

}  // namespace chatfuzz::sim
