// Testbench conventions shared by the golden model (isasim) and the DUT
// model (rtlsim). Differential testing only works if both ends agree on the
// environment: RAM window, initial register state, trap trampoline, stop
// conditions. This header is that contract.
//
// Trap handling: fuzzed instruction streams trap constantly. Real campaigns
// install a trampoline handler that records the trap and resumes after the
// faulting instruction. We model that trampoline at harness level ("magic
// handler"): on a synchronous exception both simulators update
// mepc/mcause/mtval/mstatus per the privileged spec, switch to M-mode, and
// resume at mepc+4. The handler itself is testbench, not DUT, so it is
// bit-identical on both sides by construction.
//
// Delegation: a trap taken below M whose medeleg bit is set goes to the
// S-mode trampoline instead — sepc/scause/stval and the sstatus stack
// (SPP<=priv, SPIE<=SIE, SIE<=0) are written, privilege becomes S, and
// execution resumes at sepc+4. Traps taken in M are never delegated.
#pragma once

#include <array>
#include <cstdint>

#include "riscv/csr.h"

namespace chatfuzz::sim {

struct Platform {
  std::uint64_t ram_base = 0x8000'0000ull;
  std::uint64_t ram_size = 1ull << 20;  // 1 MiB
  /// Data region registers point into at reset (second half of RAM) so that
  /// generated loads/stores frequently hit valid memory.
  std::uint64_t data_base() const { return ram_base + ram_size / 2; }
  std::uint64_t data_size() const { return ram_size / 2 - 0x1000; }

  /// Bounded-run guard: instructions attempted before declaring the input a
  /// non-terminating loop.
  std::uint64_t max_steps = 4096;

  /// Seed for the deterministic initial register file.
  std::uint64_t reg_seed = 1;

  /// Optional CLINT (core-local interruptor): memory-mapped msip/mtimecmp/
  /// mtime with M-mode software and timer interrupts. Default off — the
  /// paper's fuzz harness provides no interrupt stimulus, which is exactly
  /// why the DUT's irq condition points are its unreachable tail. Enabling
  /// it (the "interrupt stimulus" ablation) makes those points reachable.
  bool clint_enabled = false;
  std::uint64_t clint_base = 0x0200'0000ull;
};

/// Deterministic initial register file: even registers hold aligned pointers
/// into the data region (so memory ops land in RAM), odd registers hold
/// small integers (so ALU/branch conditions vary). x0 stays zero, x2 (sp)
/// points at the top of the data region.
inline std::array<std::uint64_t, 32> initial_regs(const Platform& plat) {
  std::array<std::uint64_t, 32> regs{};
  std::uint64_t s = plat.reg_seed;
  auto next = [&s] {
    s += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  for (unsigned i = 1; i < 32; ++i) {
    const std::uint64_t r = next();
    if (i % 2 == 0) {
      regs[i] = plat.data_base() + ((r % plat.data_size()) & ~7ull);
    } else {
      regs[i] = r & 0xffff;
    }
  }
  regs[2] = plat.data_base() + plat.data_size();  // sp: top of data region
  return regs;
}

/// mstatus bit positions used by the simulators.
namespace mstatus {
inline constexpr std::uint64_t kSie = 1ull << 1;
inline constexpr std::uint64_t kMie = 1ull << 3;
inline constexpr std::uint64_t kSpie = 1ull << 5;
inline constexpr std::uint64_t kMpie = 1ull << 7;
inline constexpr std::uint64_t kSpp = 1ull << 8;
inline constexpr std::uint64_t kMppShift = 11;
inline constexpr std::uint64_t kMppMask = 3ull << kMppShift;
inline constexpr std::uint64_t kSum = 1ull << 18;   // S access to U pages
inline constexpr std::uint64_t kMxr = 1ull << 19;   // loads from X-only pages
}  // namespace mstatus

/// misa for RV64IMA (MXL=2, extensions I, M, A).
inline constexpr std::uint64_t kMisaValue =
    (2ull << 62) | (1ull << ('i' - 'a')) | (1ull << ('m' - 'a')) |
    (1ull << ('a' - 'a')) | (1ull << ('s' - 'a')) | (1ull << ('u' - 'a'));

/// mip/mie interrupt bit positions (M-mode software and timer).
namespace mip {
inline constexpr std::uint64_t kMsip = 1ull << 3;
inline constexpr std::uint64_t kMtip = 1ull << 7;
inline constexpr std::uint64_t kMachineBits = kMsip | kMtip;
inline constexpr std::uint64_t kCauseMsi = 3;
inline constexpr std::uint64_t kCauseMti = 7;
inline constexpr std::uint64_t kInterruptFlag = 1ull << 63;  // mcause bit
}  // namespace mip

/// CLINT device model: SiFive-compatible register layout. This is SoC
/// fabric, not core logic — the same device block is attached to both the
/// DUT model and the golden model (as Spike's own CLINT model is), so it
/// lives in the shared platform contract. The timer ticks once per retired
/// instruction, keeping both simulators' notion of time identical.
struct ClintState {
  static constexpr std::uint64_t kMsipOff = 0x0;       // 4 bytes
  static constexpr std::uint64_t kMtimecmpOff = 0x4000;  // 8 bytes
  static constexpr std::uint64_t kMtimeOff = 0xbff8;     // 8 bytes
  static constexpr std::uint64_t kWindow = 0xc000;

  std::uint64_t mtime = 0;
  std::uint64_t mtimecmp = ~0ull;
  std::uint32_t msip = 0;

  void reset() { *this = ClintState{}; }
  void tick() { ++mtime; }

  /// Whether `addr` falls inside the CLINT window (any offset).
  bool contains(const Platform& plat, std::uint64_t addr) const {
    return plat.clint_enabled && addr >= plat.clint_base &&
           addr < plat.clint_base + kWindow;
  }

  /// MMIO read; false on an unmapped offset or size mismatch (access fault).
  bool read(const Platform& plat, std::uint64_t addr, unsigned size,
            std::uint64_t& out) const {
    const std::uint64_t off = addr - plat.clint_base;
    if (off == kMsipOff && size == 4) {
      out = msip;
      return true;
    }
    if (off == kMtimecmpOff && size == 8) {
      out = mtimecmp;
      return true;
    }
    if (off == kMtimeOff && size == 8) {
      out = mtime;
      return true;
    }
    return false;
  }

  /// MMIO write; same mapping rules as read(). mtime itself is writable,
  /// as on the SiFive CLINT.
  bool write(const Platform& plat, std::uint64_t addr, unsigned size,
             std::uint64_t bits) {
    const std::uint64_t off = addr - plat.clint_base;
    if (off == kMsipOff && size == 4) {
      msip = static_cast<std::uint32_t>(bits) & 1u;
      return true;
    }
    if (off == kMtimecmpOff && size == 8) {
      mtimecmp = bits;
      return true;
    }
    if (off == kMtimeOff && size == 8) {
      mtime = bits;
      return true;
    }
    return false;
  }

  /// The mip bits this device currently asserts.
  std::uint64_t pending_mip() const {
    return (msip & 1u ? mip::kMsip : 0) |
           (mtime >= mtimecmp ? mip::kMtip : 0);
  }

  /// Magic-handler source clearing (see the trap-trampoline convention in
  /// this header): the testbench handler acknowledges the interrupt at the
  /// device so the hart can resume at the interrupted instruction.
  void clear_source(std::uint64_t cause) {
    if (cause == mip::kCauseMti) mtimecmp = ~0ull;
    if (cause == mip::kCauseMsi) msip = 0;
  }
};

}  // namespace chatfuzz::sim
