#include "util/log.h"

#include <chrono>
#include <cstdint>
#include <mutex>

namespace chatfuzz {
namespace {

std::uint64_t elapsed_ms() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(clock::now() -
                                                            start)
          .count());
}

std::mutex& role_mu() {
  static std::mutex mu;
  return mu;
}

std::string& role_slot() {
  static std::string role;
  return role;
}

}  // namespace

LogLevel& log_threshold() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

void set_log_role(const std::string& role) {
  std::lock_guard<std::mutex> lk(role_mu());
  role_slot() = role;
}

void log_message(LogLevel level, const std::string& msg) {
  if (level < log_threshold()) return;
  static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  // Compose the whole line first and emit it with a single fwrite: stderr is
  // unbuffered, so interleaved fprintf calls from worker threads (and from
  // coordinator + worker processes sharing the fd) tear mid-line otherwise.
  std::string role;
  {
    std::lock_guard<std::mutex> lk(role_mu());
    role = role_slot();
  }
  std::string line;
  line.reserve(msg.size() + role.size() + 32);
  char head[48];
  std::snprintf(head, sizeof head, "[%8llu ms] ",
                static_cast<unsigned long long>(elapsed_ms()));
  line += head;
  if (!role.empty()) {
    line += '[';
    line += role;
    line += "] ";
  }
  line += '[';
  line += names[static_cast<int>(level)];
  line += "] ";
  line += msg;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace chatfuzz
