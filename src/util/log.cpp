#include "util/log.h"

namespace chatfuzz {

LogLevel& log_threshold() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

void log_message(LogLevel level, const std::string& msg) {
  if (level < log_threshold()) return;
  static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::fprintf(stderr, "[%s] %s\n", names[static_cast<int>(level)], msg.c_str());
}

}  // namespace chatfuzz
