// Strict numeric parsing for CLI arguments and environment knobs. strtoul
// alone is a footgun here: it silently negates "-1" (a near-infinite
// campaign when the value is a test count), returns 0 for garbage (which
// the campaign engine reads as "all cores"), and saturates on overflow.
#pragma once

#include <cerrno>
#include <cstdlib>
#include <optional>

namespace chatfuzz {

/// Parse a non-negative base-10 integer; rejects empty strings, signs,
/// whitespace, trailing junk and out-of-range values.
inline std::optional<std::size_t> parse_count(const char* s) {
  // Must start with a digit: strtoull itself skips leading whitespace and
  // accepts signs, so checking s[0] for '-' alone would let " -1" through.
  if (s == nullptr || *s < '0' || *s > '9') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return std::nullopt;
  return static_cast<std::size_t>(v);
}

}  // namespace chatfuzz
