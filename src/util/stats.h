// Small statistics helpers shared by the coverage calculator, the PPO
// trainer, and the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace chatfuzz {

/// Streaming mean/variance (Welford).
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  void reset() { n_ = 0; mean_ = 0.0; m2_ = 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Fixed-bucket histogram over [lo, hi); out-of-range values clamp to the
/// first/last bucket. Used for mismatch-signature and reward distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {}

  void add(double x) {
    // A degenerate range (hi <= lo) or a NaN input would make `t` non-finite
    // and the int64 cast below undefined; route both to the first bucket.
    const double denom = hi_ - lo_;
    const double t = denom > 0.0 ? (x - lo_) / denom : 0.0;
    std::int64_t idx = 0;
    if (std::isfinite(t)) {
      idx = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
    }
    idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
  }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double pos = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace chatfuzz
