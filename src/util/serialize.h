// Versioned, endian-stable, checksummed binary serialization — the
// persistence substrate for campaign checkpoints, the on-disk corpus store
// and model files. Design rules:
//
//  * Everything is encoded little-endian byte-by-byte, so snapshots written
//    on any host restore on any other.
//  * A Reader NEVER crashes on malformed input: every accessor bounds-checks
//    and a failed read latches fail(); callers check once at the end.
//  * Files carry a magic, a format version and a CRC-32 of the payload;
//    read_file() rejects wrong-magic / wrong-version / truncated / corrupt
//    files with a human-readable Status instead of returning garbage.
//  * write_file() is atomic (tmp + rename) and reports errno / short-write
//    detail through Status, never through a bare bool.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace chatfuzz::ser {

/// Error type for all persistence operations: ok() or a message with the
/// failing path / errno / structural detail.
class Status {
 public:
  Status() = default;  // success
  static Status error(std::string msg) {
    Status s;
    s.fail_ = true;
    s.msg_ = std::move(msg);
    return s;
  }
  bool ok() const { return !fail_; }
  const std::string& message() const { return msg_; }
  explicit operator bool() const { return ok(); }

 private:
  bool fail_ = false;
  std::string msg_;
};

/// CRC-32 (IEEE 802.3 polynomial) over a byte range.
std::uint32_t crc32(const void* data, std::size_t size);

// ---------------------------------------------------------------------------
// Writer: append-only little-endian encoder into an in-memory buffer.
// ---------------------------------------------------------------------------
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, 4);
    u32(bits);
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    u64(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// LEB128 varint: 7 bits per byte, least-significant group first. Small
  /// values (counts, deltas, hit counters) encode in one or two bytes —
  /// the wire-size lever for the dist protocol's per-test payloads.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      u8(static_cast<std::uint8_t>(0x80 | (v & 0x7f)));
      v >>= 7;
    }
    u8(static_cast<std::uint8_t>(v));
  }

  /// Raw bytes, no length prefix.
  void bytes(const void* data, std::size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }
  /// Length-prefixed byte string.
  void str(std::string_view s) {
    u64(s.size());
    buf_.append(s.data(), s.size());
  }

  // Length-prefixed homogeneous vectors.
  void vec_u8(const std::vector<std::uint8_t>& v) {
    u64(v.size());
    bytes(v.data(), v.size());
  }
  void vec_u32(const std::vector<std::uint32_t>& v) {
    u64(v.size());
    for (std::uint32_t x : v) u32(x);
  }
  void vec_u64(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    for (std::uint64_t x : v) u64(x);
  }
  void vec_f32(const std::vector<float>& v) {
    u64(v.size());
    for (float x : v) f32(x);
  }
  void vec_f64(const std::vector<double>& v) {
    u64(v.size());
    for (double x : v) f64(x);
  }
  /// std::size_t vectors travel as u64 (size_t width differs across hosts).
  void vec_size(const std::vector<std::size_t>& v) {
    u64(v.size());
    for (std::size_t x : v) u64(x);
  }

  const std::string& buffer() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  void le(std::uint64_t v, int bytes_n) {
    for (int i = 0; i < bytes_n; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  std::string buf_;
};

// ---------------------------------------------------------------------------
// Reader: bounds-checked little-endian decoder. A read past the end (or an
// absurd length prefix) latches the fail flag and returns zero/empty values;
// it never throws and never reads out of bounds.
// ---------------------------------------------------------------------------
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::uint64_t u64() { return le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, 4);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  bool boolean() { return u8() != 0; }

  /// LEB128 varint. More than ten groups (or a straddled end) latches
  /// fail() like every other accessor.
  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = u8();
      if (fail_) return 0;
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
    }
    fail_ = true;
    return 0;
  }

  std::string str() {
    const std::uint64_t n = u64();
    if (fail_ || n > remaining()) {
      fail_ = true;
      return {};
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  std::vector<std::uint8_t> vec_u8() { return vec<std::uint8_t, 1>(); }
  std::vector<std::uint32_t> vec_u32() { return vec<std::uint32_t, 4>(); }
  std::vector<std::uint64_t> vec_u64() { return vec<std::uint64_t, 8>(); }
  std::vector<float> vec_f32() { return vec<float, 4>(); }
  std::vector<double> vec_f64() { return vec<double, 8>(); }
  std::vector<std::size_t> vec_size() {
    std::vector<std::size_t> out;
    const std::uint64_t n = u64();
    if (fail_ || n > remaining() / 8) {
      fail_ = true;
      return out;
    }
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      out.push_back(static_cast<std::size_t>(u64()));
    }
    return out;
  }

  bool ok() const { return !fail_; }
  /// Mark the stream failed (semantic validation error during restore).
  void fail() { fail_ = true; }
  std::size_t remaining() const { return data_.size() - pos_; }
  /// True when the stream was fully and successfully consumed.
  bool done() const { return !fail_ && pos_ == data_.size(); }

 private:
  std::uint64_t le(int bytes_n) {
    if (fail_ || remaining() < static_cast<std::size_t>(bytes_n)) {
      fail_ = true;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < bytes_n; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += bytes_n;
    return v;
  }

  template <typename T, std::size_t ElemSize>
  std::vector<T> vec() {
    std::vector<T> out;
    const std::uint64_t n = u64();
    // Reject length prefixes larger than the remaining bytes before the
    // resize — a corrupt length must not turn into an OOM.
    if (fail_ || n > remaining() / ElemSize) {
      fail_ = true;
      return out;
    }
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      if constexpr (ElemSize == 1) {
        out.push_back(static_cast<T>(u8()));
      } else if constexpr (std::is_same_v<T, float>) {
        out.push_back(f32());
      } else if constexpr (std::is_same_v<T, double>) {
        out.push_back(f64());
      } else {
        out.push_back(static_cast<T>(le(ElemSize)));
      }
    }
    return out;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool fail_ = false;
};

// ---------------------------------------------------------------------------
// RNG state travels through the framework so generator snapshots capture
// their exact stream position.
// ---------------------------------------------------------------------------
inline void write_rng(Writer& w, const Rng& rng) {
  for (std::uint64_t word : rng.state()) w.u64(word);
}
inline bool read_rng(Reader& r, Rng& rng) {
  std::array<std::uint64_t, 4> st;
  for (auto& word : st) word = r.u64();
  if (!r.ok()) return false;
  rng.set_state(st);
  return true;
}

// ---------------------------------------------------------------------------
// File container:  [magic u32][version u32][payload size u64][payload]
//                  [crc32(payload) u32]
// ---------------------------------------------------------------------------

/// Atomically write `payload` to `path` (tmp + rename). On any failure the
/// Status carries the path and the errno / short-write detail.
Status write_file(const std::string& path, std::uint32_t magic,
                  std::uint32_t version, const std::string& payload);

/// Read and verify a container file. `what` names the artifact for error
/// messages ("model", "checkpoint", ...). Version policy is exact-match:
/// an incompatible format change bumps the writer's version and old files
/// are rejected with a clear message (see README "Checkpoint & resume").
Status read_file(const std::string& path, std::uint32_t magic,
                 std::uint32_t version, const char* what,
                 std::string* payload);

}  // namespace chatfuzz::ser
