// Deterministic, fast pseudo-random number generation for all fuzzing and
// simulation components. Every stochastic component in the repo takes an
// explicit Rng (or seed) so campaigns are exactly reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace chatfuzz {

/// xoshiro256** — small, fast, high-quality PRNG (Blackman & Vigna).
/// Not cryptographic; used only for workload generation and sampling.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 to expand the seed into four non-degenerate words.
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent child stream without perturbing this generator.
  /// Distinct `stream_id`s (worker index, global test index, ...) yield
  /// decorrelated sequences even from the same parent, which is what lets a
  /// campaign hand every worker thread its own RNG while staying bit-exact
  /// for any thread count: the stream is keyed by logical id, not by thread.
  Rng fork(std::uint64_t stream_id) const {
    // Hash the parent state together with the stream id (SplitMix64-style
    // finalizer) so child seeds are well spread even for adjacent ids.
    std::uint64_t h = 0x243f6a8885a308d3ull;  // pi fractional bits
    for (std::uint64_t word : state_) {
      h ^= word;
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 33;
    }
    h += stream_id * 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return Rng(h ^ (h >> 31));
  }

  /// Raw stream state, for snapshot/restore (util/serialize.h): a restored
  /// Rng continues the exact sequence the saved one would have produced.
  std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& st) {
    for (int i = 0; i < 4; ++i) state_[i] = st[i];
  }

  /// Pick an index according to non-negative weights (size must be > 0).
  template <typename Container>
  std::size_t weighted_pick(const Container& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    double r = uniform() * total;
    std::size_t idx = 0;
    for (double w : weights) {
      if (r < w) return idx;
      r -= w;
      ++idx;
    }
    return weights.size() - 1;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace chatfuzz
