// Minimal leveled logging. Benches and examples print structured tables to
// stdout; diagnostics go through this logger to stderr so table output stays
// machine-parsable.
#pragma once

#include <cstdio>
#include <string>

namespace chatfuzz {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
LogLevel& log_threshold();

/// Role tag prefixed to every line ("coord", "worker 3"); empty = none.
/// Set once per process when its role becomes known.
void set_log_role(const std::string& role);

/// Thread-safe: composes the full line (elapsed-ms + role + level + message)
/// and emits it with one fwrite so concurrent logs never tear.
void log_message(LogLevel level, const std::string& msg);

template <typename... Args>
std::string strformat(const char* fmt, Args... args) {
  const int n = std::snprintf(nullptr, 0, fmt, args...);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, args...);
  return out;
}

#define CHATFUZZ_LOG(level, ...) \
  ::chatfuzz::log_message(level, ::chatfuzz::strformat(__VA_ARGS__))
#define LOG_DEBUG(...) CHATFUZZ_LOG(::chatfuzz::LogLevel::kDebug, __VA_ARGS__)
#define LOG_INFO(...) CHATFUZZ_LOG(::chatfuzz::LogLevel::kInfo, __VA_ARGS__)
#define LOG_WARN(...) CHATFUZZ_LOG(::chatfuzz::LogLevel::kWarn, __VA_ARGS__)
#define LOG_ERROR(...) CHATFUZZ_LOG(::chatfuzz::LogLevel::kError, __VA_ARGS__)

}  // namespace chatfuzz
