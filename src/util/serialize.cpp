#include "util/serialize.h"

#include <cerrno>
#include <cstdio>

namespace chatfuzz::ser {

namespace {

std::string errno_detail() {
  const int e = errno;
  std::string s = " (errno ";
  s += std::to_string(e);
  s += ": ";
  s += std::strerror(e);
  s += ")";
  return s;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

Status write_file(const std::string& path, std::uint32_t magic,
                  std::uint32_t version, const std::string& payload) {
  Writer header;
  header.u32(magic);
  header.u32(version);
  header.u64(payload.size());

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::error("cannot open " + tmp + " for writing" +
                         errno_detail());
  }
  const std::string& head = header.buffer();
  Writer tail;
  tail.u32(crc32(payload.data(), payload.size()));
  std::size_t written = 0;
  written += std::fwrite(head.data(), 1, head.size(), f);
  written += std::fwrite(payload.data(), 1, payload.size(), f);
  written += std::fwrite(tail.buffer().data(), 1, tail.buffer().size(), f);
  const std::size_t expect =
      head.size() + payload.size() + tail.buffer().size();
  if (written != expect) {
    const std::string detail = errno_detail();
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::error("short write to " + tmp + ": " +
                         std::to_string(written) + " of " +
                         std::to_string(expect) + " bytes" + detail);
  }
  if (std::fclose(f) != 0) {
    const std::string detail = errno_detail();
    std::remove(tmp.c_str());
    return Status::error("cannot flush " + tmp + detail);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string detail = errno_detail();
    std::remove(tmp.c_str());
    return Status::error("cannot rename " + tmp + " to " + path + detail);
  }
  return {};
}

Status read_file(const std::string& path, std::uint32_t magic,
                 std::uint32_t version, const char* what,
                 std::string* payload) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::error("cannot open " + path + errno_detail());
  }
  std::string contents;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    contents.append(buf, n);
  }
  const bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) {
    return Status::error("read error on " + path + errno_detail());
  }

  Reader r(contents);
  const std::uint32_t got_magic = r.u32();
  const std::uint32_t got_version = r.u32();
  const std::uint64_t size = r.u64();
  if (!r.ok()) {
    return Status::error(path + ": truncated header (" +
                         std::to_string(contents.size()) + " bytes); not a " +
                         what + " file");
  }
  if (got_magic != magic) {
    return Status::error(path + ": bad magic; not a " + std::string(what) +
                         " file");
  }
  if (got_version != version) {
    return Status::error(path + ": " + what + " format version " +
                         std::to_string(got_version) + ", this build reads " +
                         std::to_string(version) +
                         " (regenerate the file; old formats are not "
                         "migrated)");
  }
  if (size > r.remaining() || r.remaining() - size < 4) {
    return Status::error(path + ": truncated " + std::string(what) +
                         " payload (want " + std::to_string(size) +
                         " bytes + checksum, have " +
                         std::to_string(r.remaining()) + ")");
  }
  if (r.remaining() - size != 4) {
    return Status::error(path + ": " + std::to_string(r.remaining() - size - 4) +
                         " trailing bytes after the " + what +
                         " checksum (file corrupt or concatenated)");
  }
  const std::size_t header_size = 16;
  const std::string_view body(contents.data() + header_size,
                              static_cast<std::size_t>(size));
  Reader tail(std::string_view(contents.data() + header_size + size,
                               contents.size() - header_size - size));
  const std::uint32_t want_crc = tail.u32();
  const std::uint32_t got_crc = crc32(body.data(), body.size());
  if (want_crc != got_crc) {
    return Status::error(path + ": checksum mismatch (file corrupt)");
  }
  payload->assign(body.data(), body.size());
  return {};
}

}  // namespace chatfuzz::ser
