#include "dist/federation.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <thread>

#include "dist/fault.h"
#include "dist/transport.h"
#include "util/log.h"
#include "util/rng.h"

namespace chatfuzz::dist {

namespace {

/// Frame deadlines: a federation session is short-lived request/response
/// traffic, so every wait is bounded — a stalled peer ends the session, it
/// never wedges the hub.
constexpr int kFedHandshakeTimeoutMs = 10'000;
constexpr int kFedFrameTimeoutMs = 30'000;

int fed_fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "chatfuzz federate: %s%s%s\n", what,
               detail.empty() ? "" : ": ", detail.c_str());
  return 1;
}

void merge_meta(corpus::StoreEntryMeta& into,
                const corpus::StoreEntryMeta& from) {
  // Commutative + associative + idempotent on every field, so the merged
  // result is independent of delta arrival order and of re-pushes.
  into.test_index = std::min(into.test_index, from.test_index);
  into.standalone_bins = std::max(into.standalone_bins, from.standalone_bins);
  into.incremental_bins =
      std::max(into.incremental_bins, from.incremental_bins);
  into.mismatches = std::max(into.mismatches, from.mismatches);
  into.ctrl_new = std::max(into.ctrl_new, from.ctrl_new);
  into.phase_hash = std::max(into.phase_hash, from.phase_hash);
  std::vector<std::uint32_t> bins = into.new_bins;
  bins.insert(bins.end(), from.new_bins.begin(), from.new_bins.end());
  std::sort(bins.begin(), bins.end());
  bins.erase(std::unique(bins.begin(), bins.end()), bins.end());
  into.new_bins = std::move(bins);
}

bool meta_equal(const corpus::StoreEntryMeta& a,
                const corpus::StoreEntryMeta& b) {
  return a.test_index == b.test_index &&
         a.standalone_bins == b.standalone_bins &&
         a.incremental_bins == b.incremental_bins &&
         a.mismatches == b.mismatches && a.ctrl_new == b.ctrl_new &&
         a.phase_hash == b.phase_hash && a.new_bins == b.new_bins;
}

}  // namespace

std::uint64_t fed_content_hash(const core::Program& program) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64
  for (std::uint32_t word : program) {
    for (int b = 0; b < 4; ++b) {
      h ^= (word >> (8 * b)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

// ---- FedMerger ------------------------------------------------------------

ser::Status FedMerger::open(const std::string& dir) {
  dir_ = dir;
  items_.clear();
  dirty_ = false;
  corpus::CorpusStore store;
  ser::Status s = store.open(dir);
  if (!s.ok()) return s;
  items_.reserve(store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    Item item;
    s = store.read_program(i, &item.prog);
    if (!s.ok()) return s;
    item.meta = store.meta(i);
    item.hash = fed_content_hash(item.prog);
    items_.push_back(std::move(item));
  }
  return {};
}

FedAckStatus FedMerger::merge(const core::Program& program,
                              const corpus::StoreEntryMeta& meta) {
  if (program.empty()) return FedAckStatus::kCorrupt;
  const std::uint64_t hash = fed_content_hash(program);
  for (Item& item : items_) {
    if (item.hash != hash || item.prog != program) continue;
    const corpus::StoreEntryMeta before = item.meta;
    merge_meta(item.meta, meta);
    if (!meta_equal(before, item.meta)) dirty_ = true;
    return FedAckStatus::kDuplicate;
  }
  Item item;
  item.hash = hash;
  item.prog = program;
  item.meta = meta;
  items_.push_back(std::move(item));
  dirty_ = true;
  return FedAckStatus::kMerged;
}

std::string FedMerger::quarantine(const std::string& payload) {
  const std::string qdir = dir_ + "/quarantine";
  ::mkdir(qdir.c_str(), 0755);
  // First free slot at or after the running counter, so restarts never
  // overwrite earlier evidence.
  for (int attempt = 0; attempt < 10'000; ++attempt) {
    char name[32];
    std::snprintf(name, sizeof name, "/delta-%04zu.bin", quarantined_);
    const std::string path = qdir + name;
    ++quarantined_;
    if (::access(path.c_str(), F_OK) == 0) continue;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return {};
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    return path;
  }
  return {};
}

ser::Status FedMerger::flush() {
  if (!dirty_) return {};
  // Canonical order: content hash, program bytes as tiebreak. The store's
  // bytes become a pure function of the merged content.
  std::sort(items_.begin(), items_.end(), [](const Item& a, const Item& b) {
    if (a.hash != b.hash) return a.hash < b.hash;
    return a.prog < b.prog;
  });
  corpus::CorpusStore store;
  ser::Status s = store.open(dir_);
  if (!s.ok()) return s;
  s = store.truncate(0);
  if (!s.ok()) return s;
  for (const Item& item : items_) {
    s = store.append(item.prog, item.meta);
    if (!s.ok()) return s;
  }
  s = store.flush();
  if (!s.ok()) return s;
  dirty_ = false;
  return {};
}

// ---- hub (serve) ----------------------------------------------------------

namespace {

/// One accepted hub session: handshake, then push or pull until done.
/// Failures just end the session — merged state survives (and flush runs),
/// so an interrupted push resumes idempotently on the peer's redial.
void serve_session(Channel& chan, FedMerger& merger,
                   const FederateOptions& opts, FedStats* stats) {
  std::string payload;
  ser::Status s = chan.recv_frame(&payload, kFedHandshakeTimeoutMs);
  HelloMsg hello;
  if (s.ok()) s = decode_hello(payload, &hello);
  if (!s.ok()) {
    LOG_WARN("federate: handshake failed reason=\"%s\"",
             s.message().c_str());
    return;
  }
  std::string reject;
  if (hello.protocol != kProtocolVersion) {
    reject = "protocol v" + std::to_string(hello.protocol) + ", expected v" +
             std::to_string(kProtocolVersion);
  } else if (hello.token != opts.token) {
    reject = "bad auth token";
  } else if (hello.role != static_cast<std::uint8_t>(PeerRole::kFederate)) {
    reject = "peer role is not 'federate' (campaign workers dial the "
             "coordinator, not the corpus hub)";
  }
  if (!reject.empty()) {
    LOG_WARN("federate: rejected peer pid=%llu reason=\"%s\"",
             static_cast<unsigned long long>(hello.pid), reject.c_str());
    (void)chan.send_frame(encode_reject(RejectMsg{reject}), 1'000);
    return;
  }
  FedAckMsg ok_ack;
  ok_ack.detail = "hello";
  if (!chan.send_frame(encode_fed_ack(ok_ack), kFedFrameTimeoutMs).ok()) {
    return;
  }

  s = chan.recv_frame(&payload, kFedHandshakeTimeoutMs);
  FedRequestMsg request;
  if (s.ok()) s = decode_fed_request(payload, &request);
  if (!s.ok()) {
    LOG_WARN("federate: bad request reason=\"%s\"", s.message().c_str());
    return;
  }

  if (request.mode == static_cast<std::uint8_t>(FedMode::kPush)) {
    for (;;) {
      s = chan.recv_frame(&payload, kFedFrameTimeoutMs);
      if (!s.ok()) {
        LOG_WARN("federate: push session ended early reason=\"%s\"",
                 s.message().c_str());
        return;
      }
      const MsgType type = peek_type(payload);
      if (type == MsgType::kFedDone) {
        FedDoneMsg done;
        done.count = merger.size();
        (void)chan.send_frame(encode_fed_done(done), kFedFrameTimeoutMs);
        return;
      }
      FedAckMsg ack;
      if (type != MsgType::kFedDelta) {
        ack.status = static_cast<std::uint8_t>(FedAckStatus::kCorrupt);
        ack.detail = "expected a delta frame";
      } else {
        FedDeltaMsg delta;
        s = decode_fed_delta(payload, &delta);
        if (!s.ok()) {
          // Quarantine-not-abort: park the bytes, tell the peer, keep the
          // session (and every other peer's session) going.
          const std::string where = merger.quarantine(payload);
          if (stats != nullptr) ++stats->corrupt;
          LOG_WARN("federate: quarantined corrupt delta to %s "
                   "reason=\"%s\"",
                   where.empty() ? "(unwritable)" : where.c_str(),
                   s.message().c_str());
          ack.status = static_cast<std::uint8_t>(FedAckStatus::kCorrupt);
          ack.detail = s.message();
        } else {
          const FedAckStatus st = merger.merge(delta.program, delta.meta);
          ack.status = static_cast<std::uint8_t>(st);
          if (stats != nullptr) {
            if (st == FedAckStatus::kMerged) ++stats->merged;
            if (st == FedAckStatus::kDuplicate) ++stats->duplicates;
            if (st == FedAckStatus::kCorrupt) ++stats->corrupt;
          }
        }
      }
      if (!chan.send_frame(encode_fed_ack(ack), kFedFrameTimeoutMs).ok()) {
        return;
      }
    }
  }

  // Pull: stream every entry, each acked (the ack is flow control and lets
  // the client quarantine bad arrivals without killing the stream).
  for (std::size_t i = 0; i < merger.size(); ++i) {
    FedDeltaMsg delta;
    delta.program = merger.program(i);
    delta.meta = merger.meta(i);
    if (!chan.send_frame(encode_fed_delta(delta), kFedFrameTimeoutMs).ok()) {
      return;
    }
    if (stats != nullptr) ++stats->streamed;
    s = chan.recv_frame(&payload, kFedFrameTimeoutMs);
    FedAckMsg ack;
    if (s.ok()) s = decode_fed_ack(payload, &ack);
    if (!s.ok()) {
      LOG_WARN("federate: pull session ended early reason=\"%s\"",
               s.message().c_str());
      return;
    }
  }
  FedDoneMsg done;
  done.count = merger.size();
  (void)chan.send_frame(encode_fed_done(done), kFedFrameTimeoutMs);
}

}  // namespace

int federate_serve(const FederateOptions& opts,
                   const std::atomic<bool>* stop, std::uint16_t* ready_port,
                   FedStats* stats) {
  const auto hp = parse_hostport(opts.listen);
  if (!hp) {
    return fed_fail("bad --listen address (want host:port)", opts.listen);
  }
  std::string err;
  const int lfd = tcp_listen(*hp, &err);
  if (lfd < 0) return fed_fail("cannot listen", err);
  const std::uint16_t port = hp->port != 0 ? hp->port : bound_port(lfd);
  if (!opts.port_file.empty()) {
    const std::string host =
        (hp->host.empty() || hp->host == "0.0.0.0") ? "127.0.0.1" : hp->host;
    std::ofstream out(opts.port_file, std::ios::trunc);
    out << host << ":" << port << "\n";
  }
  FedMerger merger;
  ser::Status s = merger.open(opts.dir);
  if (!s.ok()) {
    ::close(lfd);
    return fed_fail("cannot open corpus store", s.message());
  }
  if (ready_port != nullptr) *ready_port = port;
  LOG_INFO("federate: serving %s on port %u", opts.dir.c_str(),
           static_cast<unsigned>(port));

  std::size_t sessions = 0;
  int rc = 0;
  while (stop == nullptr || !stop->load(std::memory_order_relaxed)) {
    struct pollfd pfd = {lfd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 200);
    if (pr < 0 && errno != EINTR) {
      rc = fed_fail("poll", std::strerror(errno));
      break;
    }
    if (pr <= 0) continue;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) continue;
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) & ~O_NONBLOCK);
    {
      SocketChannel chan(fd);
      serve_session(chan, merger, opts, stats);
      chan.close();
    }
    // Flush after EVERY session (not just clean ones): a push that died
    // mid-stream still merged entries, and the peer's redial counts on
    // them being duplicates, not repeats.
    s = merger.flush();
    if (!s.ok()) {
      rc = fed_fail("cannot flush corpus store", s.message());
      break;
    }
    ++sessions;
    if (stats != nullptr) stats->sessions = sessions;
    if (opts.max_sessions != 0 && sessions >= opts.max_sessions) break;
  }
  ::close(lfd);
  return rc;
}

// ---- clients (push / pull) ------------------------------------------------

namespace {

enum class FedClientOutcome { kDone, kRejected, kTransient };

/// Dial + hello + ack. Returns the ready channel or null with the outcome.
std::unique_ptr<Channel> fed_dial(const FederateOptions& opts,
                                  const std::shared_ptr<FaultInjector>& inj,
                                  std::uint64_t attempt,
                                  FedClientOutcome* outcome) {
  *outcome = FedClientOutcome::kTransient;
  const auto hp = parse_hostport(opts.connect);
  if (!hp) {
    fed_fail("bad --connect address (want host:port)", opts.connect);
    *outcome = FedClientOutcome::kRejected;
    return nullptr;
  }
  std::string err;
  const int fd = tcp_connect(*hp, 5'000, &err);
  if (fd < 0) {
    fed_fail("cannot reach hub", err);
    return nullptr;
  }
  std::unique_ptr<Channel> chan = std::make_unique<SocketChannel>(fd);
  // Client-side fault injection (tests): each attempt gets its own dice
  // stream off the shared budget, like a reconnecting campaign channel.
  chan = maybe_wrap_faulty(std::move(chan), inj, attempt);

  HelloMsg hello;
  hello.pid = static_cast<std::uint64_t>(::getpid());
  hello.role = static_cast<std::uint8_t>(PeerRole::kFederate);
  hello.token = opts.token;
  ser::Status s = chan->send_frame(encode_hello(hello), kFedFrameTimeoutMs);
  std::string payload;
  if (s.ok()) s = chan->recv_frame(&payload, kFedHandshakeTimeoutMs);
  if (!s.ok()) {
    fed_fail("hub handshake failed", s.message());
    chan->close();
    return nullptr;
  }
  if (peek_type(payload) == MsgType::kReject) {
    RejectMsg reject;
    fed_fail("rejected by hub",
             decode_reject(payload, &reject).ok() ? reject.reason : "");
    chan->close();
    *outcome = FedClientOutcome::kRejected;
    return nullptr;
  }
  FedAckMsg ack;
  if (!decode_fed_ack(payload, &ack).ok()) {
    fed_fail("unexpected hub greeting", "");
    chan->close();
    return nullptr;
  }
  *outcome = FedClientOutcome::kDone;
  return chan;
}

int fed_client_loop(
    const FederateOptions& opts,
    const std::function<FedClientOutcome(Channel&)>& session) {
  std::shared_ptr<FaultInjector> inj;
  if (opts.fault.any()) {
    inj = std::make_shared<FaultInjector>(opts.fault, Rng(opts.fault.seed));
  }
  int failures = 0;
  for (std::uint64_t attempt = 0;; ++attempt) {
    FedClientOutcome outcome = FedClientOutcome::kTransient;
    std::unique_ptr<Channel> chan = fed_dial(opts, inj, attempt, &outcome);
    if (chan) {
      outcome = session(*chan);
      chan->close();
    }
    if (outcome == FedClientOutcome::kDone) return 0;
    if (outcome == FedClientOutcome::kRejected) return 2;
    if (++failures > opts.max_retries) {
      return fed_fail("giving up after repeated failures",
                      std::to_string(failures - 1) + " consecutive");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::min(100 * failures, 1'000)));
  }
}

}  // namespace

int federate_push(const FederateOptions& opts, FedStats* stats) {
  FedMerger local;
  ser::Status s = local.open(opts.dir);
  if (!s.ok()) return fed_fail("cannot open corpus store", s.message());

  return fed_client_loop(opts, [&](Channel& chan) {
    // Restart-from-0 on every attempt: the hub acks re-sent entries as
    // duplicates, so a disconnect costs a retry, never a double-merge.
    if (stats != nullptr) *stats = FedStats{};
    FedRequestMsg request;
    request.mode = static_cast<std::uint8_t>(FedMode::kPush);
    if (!chan.send_frame(encode_fed_request(request), kFedFrameTimeoutMs)
             .ok()) {
      return FedClientOutcome::kTransient;
    }
    std::string payload;
    for (std::size_t i = 0; i < local.size(); ++i) {
      FedDeltaMsg delta;
      delta.program = local.program(i);
      delta.meta = local.meta(i);
      ser::Status ds =
          chan.send_frame(encode_fed_delta(delta), kFedFrameTimeoutMs);
      if (ds.ok()) ds = chan.recv_frame(&payload, kFedFrameTimeoutMs);
      FedAckMsg ack;
      if (ds.ok()) ds = decode_fed_ack(payload, &ack);
      if (!ds.ok()) {
        fed_fail("push interrupted", ds.message());
        return FedClientOutcome::kTransient;
      }
      if (stats != nullptr) {
        ++stats->streamed;
        const auto st = static_cast<FedAckStatus>(ack.status);
        if (st == FedAckStatus::kMerged) ++stats->merged;
        if (st == FedAckStatus::kDuplicate) ++stats->duplicates;
        if (st == FedAckStatus::kCorrupt) ++stats->corrupt;
      }
    }
    FedDoneMsg done;
    done.count = local.size();
    ser::Status ds =
        chan.send_frame(encode_fed_done(done), kFedFrameTimeoutMs);
    if (ds.ok()) ds = chan.recv_frame(&payload, kFedFrameTimeoutMs);
    FedDoneMsg hub_done;
    if (ds.ok()) ds = decode_fed_done(payload, &hub_done);
    if (!ds.ok()) {
      fed_fail("push final ack lost", ds.message());
      return FedClientOutcome::kTransient;
    }
    return FedClientOutcome::kDone;
  });
}

int federate_pull(const FederateOptions& opts, FedStats* stats) {
  FedMerger local;
  ser::Status s = local.open(opts.dir);
  if (!s.ok()) return fed_fail("cannot open corpus store", s.message());

  const int rc = fed_client_loop(opts, [&](Channel& chan) {
    if (stats != nullptr) *stats = FedStats{};
    FedRequestMsg request;
    request.mode = static_cast<std::uint8_t>(FedMode::kPull);
    if (!chan.send_frame(encode_fed_request(request), kFedFrameTimeoutMs)
             .ok()) {
      return FedClientOutcome::kTransient;
    }
    std::string payload;
    for (;;) {
      ser::Status ds = chan.recv_frame(&payload, kFedFrameTimeoutMs);
      if (!ds.ok()) {
        fed_fail("pull interrupted", ds.message());
        return FedClientOutcome::kTransient;
      }
      if (peek_type(payload) == MsgType::kFedDone) {
        return FedClientOutcome::kDone;
      }
      FedDeltaMsg delta;
      ds = decode_fed_delta(payload, &delta);
      FedAckMsg ack;
      if (!ds.ok()) {
        const std::string where = local.quarantine(payload);
        if (stats != nullptr) ++stats->corrupt;
        LOG_WARN("federate: quarantined corrupt delta to %s reason=\"%s\"",
                 where.empty() ? "(unwritable)" : where.c_str(),
                 ds.message().c_str());
        ack.status = static_cast<std::uint8_t>(FedAckStatus::kCorrupt);
      } else {
        const FedAckStatus st = local.merge(delta.program, delta.meta);
        ack.status = static_cast<std::uint8_t>(st);
        if (stats != nullptr) {
          if (st == FedAckStatus::kMerged) ++stats->merged;
          if (st == FedAckStatus::kDuplicate) ++stats->duplicates;
        }
      }
      if (!chan.send_frame(encode_fed_ack(ack), kFedFrameTimeoutMs).ok()) {
        return FedClientOutcome::kTransient;
      }
    }
  });
  if (rc != 0) return rc;
  s = local.flush();
  if (!s.ok()) return fed_fail("cannot flush corpus store", s.message());
  return 0;
}

}  // namespace chatfuzz::dist
