// Corpus federation over the dist transport: fleets exchange
// coverage-attributed corpus deltas (program + StoreEntryMeta) so hosts
// that fuzz independently can pool the tests that earned their keep.
//
//   chatfuzz federate serve <dir> --listen host:port   the hub
//   chatfuzz federate push  <dir> --connect host:port  send local entries
//   chatfuzz federate pull  <dir> --connect host:port  fetch hub entries
//
// Degradation-safe by construction:
//   - merges are ORDER-CANONICALIZED: the hub's store is rewritten sorted
//     by (content hash, program bytes) with commutative/idempotent metadata
//     merging, so the final store bytes are independent of who pushed
//     first, how pushes interleaved, or how often a push was retried;
//   - a re-push after a disconnect restarts from entry 0 and is IDEMPOTENT:
//     already-merged entries ack as kDuplicate, nothing double-counts;
//   - a CORRUPT delta is quarantined (<dir>/quarantine/delta-NNNN.bin) and
//     acked as kCorrupt — the session continues, one bad peer cannot abort
//     a hub;
//   - the same v4 handshake as campaigns: auth token, version gate, and a
//     kReject that tells an incompatible peer to stop redialing.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/generator.h"
#include "corpus/store.h"
#include "dist/protocol.h"

namespace chatfuzz::dist {

struct FederateOptions {
  std::string dir;      // corpus store directory (hub or local side)
  std::string listen;   // serve: host:port (port 0 = ephemeral)
  std::string connect;  // push/pull: hub host:port
  std::string token;    // shared secret (empty = open)
  std::string port_file;  // serve: write the bound "host:port\n" here
  /// serve: stop after this many sessions (0 = until *stop flips).
  std::size_t max_sessions = 0;
  /// push/pull: give up after this many consecutive failed attempts.
  int max_retries = 10;
  /// Client-side wire-fault injection (tests: idempotent re-push under
  /// faults). Seeded from plan.seed, not from any campaign.
  core::FaultPlan fault;
};

/// Counters for tests and CLI reporting.
struct FedStats {
  std::size_t merged = 0;      // new entries accepted
  std::size_t duplicates = 0;  // re-pushed entries already present
  std::size_t corrupt = 0;     // quarantined deltas
  std::size_t streamed = 0;    // deltas sent to the peer
  std::size_t sessions = 0;    // serve: completed sessions
};

/// In-memory canonical merger over one store directory. Load on open;
/// merge deltas; flush() sorts and rewrites the store so its bytes are a
/// pure function of the merged CONTENT, never of arrival order.
class FedMerger {
 public:
  /// Open (or create) the store at `dir`. Status error on a corrupt index.
  ser::Status open(const std::string& dir);

  /// Merge one delta. kMerged for new content, kDuplicate when the same
  /// program is already present (metadata still merges: elementwise max of
  /// counters, min test_index, union of new_bins — commutative, associative
  /// and idempotent, which is what makes merge order invisible).
  FedAckStatus merge(const core::Program& program,
                     const corpus::StoreEntryMeta& meta);

  /// Park an undecodable delta payload in <dir>/quarantine/delta-NNNN.bin.
  /// Returns the path (empty when even that failed — still non-fatal).
  std::string quarantine(const std::string& payload);

  /// Canonicalize (sort by content hash, then program bytes) and rewrite
  /// the store. Safe to call repeatedly; no-ops when nothing changed.
  ser::Status flush();

  std::size_t size() const { return items_.size(); }
  const core::Program& program(std::size_t i) const { return items_[i].prog; }
  const corpus::StoreEntryMeta& meta(std::size_t i) const {
    return items_[i].meta;
  }

 private:
  struct Item {
    std::uint64_t hash = 0;
    core::Program prog;
    corpus::StoreEntryMeta meta;
  };

  std::string dir_;
  std::vector<Item> items_;
  std::size_t quarantined_ = 0;
  bool dirty_ = false;
};

/// FNV-1a 64 over the program's instruction words — the federation content
/// key (program equality is verified on collision before deduping).
std::uint64_t fed_content_hash(const core::Program& program);

/// Run the hub. Blocks until max_sessions sessions completed or *stop is
/// flipped (checked a few times a second; pass nullptr to rely on
/// max_sessions alone). Writes the bound port to *ready_port after listen
/// succeeds (and to opts.port_file when set). Returns a process exit code.
int federate_serve(const FederateOptions& opts,
                   const std::atomic<bool>* stop = nullptr,
                   std::uint16_t* ready_port = nullptr,
                   FedStats* stats = nullptr);

/// Push every entry of the local store to the hub, reconnecting with
/// backoff on transient failures (each retry restarts from entry 0; the
/// hub's idempotent merge makes that safe). Exit code: 0 done, 1 transient
/// failures exhausted, 2 rejected by the hub.
int federate_push(const FederateOptions& opts, FedStats* stats = nullptr);

/// Fetch the hub's entries into the local store (same reconnect rules;
/// local merge is the same canonical merge the hub runs).
int federate_pull(const FederateOptions& opts, FedStats* stats = nullptr);

}  // namespace chatfuzz::dist
