#include "dist/fault.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace chatfuzz::dist {

namespace {

/// Hand-build the exact wire frame FrameChannel would send, so individual
/// header/payload bytes can be mangled before they hit the fd.
std::string raw_frame(const std::string& payload) {
  ser::Writer w;
  w.u32(kFrameMagic);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(ser::crc32(payload.data(), payload.size()));
  std::string bytes = w.buffer();
  bytes += payload;
  return bytes;
}

void small_delay(Rng& rng) {
  std::this_thread::sleep_for(
      std::chrono::milliseconds(1 + static_cast<int>(rng.below(8))));
}

}  // namespace

FaultInjector::FaultInjector(const core::FaultPlan& plan,
                             const Rng& campaign_rng)
    : plan_(plan),
      base_(campaign_rng.fork(kFaultStream)),
      budget_(plan.any() ? plan.max_faults : 0) {}

Rng FaultInjector::channel_rng(std::uint64_t ordinal) const {
  return base_.fork(ordinal);
}

std::optional<FaultInjector::Kind> FaultInjector::roll(Rng& channel_rng,
                                                       bool first_frame) {
  if (budget_ == 0) return std::nullopt;
  // One draw in [0, 1024); the plan's probabilities stack as cumulative
  // thresholds. Handshake faults only apply to a connection's first frame.
  const std::uint32_t dice =
      static_cast<std::uint32_t>(channel_rng.below(1024));
  std::uint32_t acc = 0;
  const auto hit = [&](std::uint32_t p, Kind k) -> std::optional<Kind> {
    acc += p;
    if (dice < acc) return k;
    return std::nullopt;
  };
  std::optional<Kind> kind;
  if (first_frame && !kind) kind = hit(plan_.p_handshake, Kind::kHandshake);
  if (!kind) kind = hit(plan_.p_drop, Kind::kDrop);
  if (!kind) kind = hit(plan_.p_truncate, Kind::kTruncate);
  if (!kind) kind = hit(plan_.p_corrupt, Kind::kCorrupt);
  if (!kind) kind = hit(plan_.p_wrong_crc, Kind::kWrongCrc);
  if (!kind) kind = hit(plan_.p_duplicate, Kind::kDuplicate);
  if (!kind) kind = hit(plan_.p_delay, Kind::kDelay);
  if (kind) {
    --budget_;
    ++injected_;
  }
  return kind;
}

FaultyChannel::FaultyChannel(std::unique_ptr<Channel> inner,
                             std::shared_ptr<FaultInjector> injector,
                             std::uint64_t ordinal)
    : inner_(std::move(inner)),
      injector_(std::move(injector)),
      rng_(injector_->channel_rng(ordinal)) {}

ser::Status FaultyChannel::send_raw(const std::string& bytes) {
  const int fd = inner_->poll_fd();
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd = {fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 10'000) > 0) continue;
      return ser::Status::error("fault injection: raw send stalled");
    }
    if (n < 0 && errno == EINTR) continue;
    return ser::Status::error(std::string("fault injection: raw send: ") +
                              std::strerror(errno));
  }
  return {};
}

ser::Status FaultyChannel::send_frame(const std::string& payload,
                                      int timeout_ms) {
  const auto kind = injector_->roll(rng_, first_frame_);
  first_frame_ = false;
  if (!kind) return inner_->send_frame(payload, timeout_ms);
  switch (*kind) {
    case FaultInjector::Kind::kDelay: {
      small_delay(rng_);
      return inner_->send_frame(payload, timeout_ms);
    }
    case FaultInjector::Kind::kDuplicate: {
      const ser::Status s = inner_->send_frame(payload, timeout_ms);
      if (s.ok()) (void)inner_->send_frame(payload, timeout_ms);
      return s;
    }
    case FaultInjector::Kind::kCorrupt: {
      std::string bytes = raw_frame(payload);
      if (payload.empty()) {
        bytes[8] ^= 0x5A;  // no payload byte to flip: mangle the CRC field
      } else {
        const std::size_t victim = 12 + rng_.below(payload.size());
        bytes[victim] ^= 0x5A;
      }
      // The peer sees a CRC mismatch and drops the connection; from the
      // sender's side the frame "went out fine".
      return send_raw(bytes);
    }
    case FaultInjector::Kind::kWrongCrc: {
      std::string bytes = raw_frame(payload);
      bytes[8] ^= 0xA5;  // CRC field lives at header bytes [8, 12)
      return send_raw(bytes);
    }
    case FaultInjector::Kind::kTruncate: {
      std::string bytes = raw_frame(payload);
      bytes.resize(std::max<std::size_t>(1, bytes.size() / 2));
      (void)send_raw(bytes);
      inner_->close();
      return ser::Status::error(
          "fault injection: outbound frame truncated, connection closed");
    }
    case FaultInjector::Kind::kHandshake:
    case FaultInjector::Kind::kDrop: {
      // Mid-frame teardown: leak the magic so the peer is provably inside
      // a frame when the stream dies, then close.
      (void)send_raw(raw_frame(payload).substr(0, 4));
      inner_->close();
      return ser::Status::error(
          "fault injection: connection dropped mid-frame");
    }
  }
  return inner_->send_frame(payload, timeout_ms);  // unreachable
}

ser::Status FaultyChannel::recv_frame(std::string* payload, int timeout_ms) {
  if (dup_inbound_) {
    *payload = std::move(*dup_inbound_);
    dup_inbound_.reset();
    return {};
  }
  const ser::Status inner = inner_->recv_frame(payload, timeout_ms);
  if (!inner.ok()) return inner;
  const auto kind = injector_->roll(rng_, first_frame_);
  first_frame_ = false;
  if (!kind) return inner;
  switch (*kind) {
    case FaultInjector::Kind::kDelay: {
      small_delay(rng_);
      return inner;
    }
    case FaultInjector::Kind::kDuplicate: {
      dup_inbound_ = *payload;
      return inner;
    }
    case FaultInjector::Kind::kCorrupt:
    case FaultInjector::Kind::kWrongCrc: {
      // The frame was consumed off the wire but arrives "mangled": exactly
      // what a byzantine peer sending a wrong-CRC reply looks like. The
      // stream itself stays intact; the caller decides to drop the peer.
      return ser::Status::error(
          "fault injection: inbound frame CRC mismatch (byzantine reply)");
    }
    case FaultInjector::Kind::kTruncate:
    case FaultInjector::Kind::kHandshake:
    case FaultInjector::Kind::kDrop: {
      inner_->close();
      return ser::Status::error(
          "fault injection: peer vanished mid-frame on receive");
    }
  }
  return inner;  // unreachable
}

std::unique_ptr<Channel> maybe_wrap_faulty(
    std::unique_ptr<Channel> chan,
    const std::shared_ptr<FaultInjector>& injector, std::uint64_t ordinal) {
  if (!injector || !injector->plan().any()) return chan;
  return std::make_unique<FaultyChannel>(std::move(chan), injector, ordinal);
}

}  // namespace chatfuzz::dist
