// `chatfuzz fleet status <host:port>`: live introspection of a running
// `fuzz --listen` fleet. Dials the coordinator as a PeerRole::kStatus peer
// (protocol v5), receives one aggregated kStatsReply — the per-peer table
// (pid, liveness, outstanding leases, folded results, heartbeat age) plus
// the coordinator's full metrics snapshot — prints it, and exits. Strictly
// observation-only: the query never joins the fleet, holds no lease, and
// cannot perturb campaign results.
#pragma once

#include <cstdio>
#include <string>

#include "dist/protocol.h"

namespace chatfuzz::dist {

/// Dial `hostport`, authenticate with `token`, fetch one fleet snapshot.
/// Returns false with *err set on connection/handshake/decode failure or
/// an explicit coordinator rejection.
bool fleet_status_query(const std::string& hostport, const std::string& token,
                        StatsReplyMsg* reply, std::string* err);

/// Human-readable rendering of a fleet snapshot (shared with tests).
std::string render_fleet_status(const StatsReplyMsg& reply);

/// CLI entry: query + print to `out`. Returns a process exit code.
int fleet_status_main(const std::string& hostport, const std::string& token,
                      std::FILE* out);

}  // namespace chatfuzz::dist
