#include "dist/protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "core/checkpoint.h"
#include "util/log.h"

namespace chatfuzz::dist {

namespace {

ser::Status proto_error(const char* what) {
  return ser::Status::error(std::string("dist protocol: ") + what);
}

/// Malformed-frame diagnostics carry the frame type, what broke, and WHERE
/// in the payload decoding stopped — a dropped peer's one-line warning then
/// pinpoints the corruption instead of reporting a bare status.
ser::Status decode_error(const char* frame, const ser::Reader& r,
                         const std::string& payload, const char* what) {
  const std::size_t at = payload.size() - r.remaining();
  return ser::Status::error(strformat(
      "dist protocol: %s frame: %s (payload byte %zu of %zu)", frame, what,
      at, payload.size()));
}

/// Payloads all start with the type tag; a decoder first consumes and
/// checks it.
bool take_type(ser::Reader& r, MsgType want) {
  const std::uint8_t t = r.u8();
  if (!r.ok() || t != static_cast<std::uint8_t>(want)) {
    r.fail();
    return false;
  }
  return true;
}

}  // namespace

MsgType peek_type(const std::string& payload) {
  if (payload.empty()) return MsgType::kInvalid;
  const auto t = static_cast<std::uint8_t>(payload[0]);
  if (t < static_cast<std::uint8_t>(MsgType::kHello) ||
      t > static_cast<std::uint8_t>(MsgType::kStatsReply)) {
    return MsgType::kInvalid;
  }
  return static_cast<MsgType>(t);
}

std::uint32_t config_fingerprint(const core::CampaignConfig& cfg) {
  ser::Writer w;
  core::write_campaign_config(w, cfg);
  return ser::crc32(w.buffer().data(), w.buffer().size());
}

std::string encode_hello(const HelloMsg& msg) {
  ser::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kHello));
  w.u32(msg.protocol);
  w.u64(msg.pid);
  w.u8(msg.role);
  w.str(msg.token);
  return w.take();
}

ser::Status decode_hello(const std::string& payload, HelloMsg* msg) {
  ser::Reader r(payload);
  if (!take_type(r, MsgType::kHello)) {
    return decode_error("hello", r, payload, "wrong type tag");
  }
  msg->protocol = r.u32();
  msg->pid = r.u64();
  msg->role = r.u8();
  msg->token = r.str();
  if (!r.done()) return decode_error("hello", r, payload, "malformed fields");
  return {};
}

std::string encode_config(const ConfigMsg& msg) {
  ser::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kConfig));
  w.u32(msg.protocol);
  core::write_campaign_config(w, msg.cfg);
  w.boolean(msg.use_suite);
  w.u64(msg.worker_index);
  w.u64(msg.max_lease_tests);
  w.boolean(msg.debug_hang);
  w.boolean(msg.superblocks);
  w.boolean(msg.collect_bbv);
  w.u32(msg.config_crc);
  w.u32(msg.heartbeat_ms);
  return w.take();
}

ser::Status decode_config(const std::string& payload, ConfigMsg* msg) {
  ser::Reader r(payload);
  if (!take_type(r, MsgType::kConfig)) {
    return decode_error("config", r, payload, "wrong type tag");
  }
  msg->protocol = r.u32();
  if (!core::read_campaign_config(r, msg->cfg)) {
    return decode_error("config", r, payload, "malformed campaign config");
  }
  msg->use_suite = r.boolean();
  msg->worker_index = r.u64();
  msg->max_lease_tests = r.u64();
  msg->debug_hang = r.boolean();
  msg->superblocks = r.boolean();
  msg->collect_bbv = r.boolean();
  msg->config_crc = r.u32();
  msg->heartbeat_ms = r.u32();
  if (!r.done()) return decode_error("config", r, payload, "malformed fields");
  return {};
}

std::string encode_lease(const LeaseMsg& msg) {
  ser::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kLease));
  w.u64(msg.lease_id);
  w.u64(msg.base_index);
  w.u64(msg.tests.size());
  for (const core::Program& p : msg.tests) w.vec_u32(p);
  return w.take();
}

ser::Status decode_lease(const std::string& payload, LeaseMsg* msg) {
  ser::Reader r(payload);
  if (!take_type(r, MsgType::kLease)) {
    return decode_error("lease", r, payload, "wrong type tag");
  }
  msg->lease_id = r.u64();
  msg->base_index = r.u64();
  const std::uint64_t n = r.u64();
  // Every program carries at least its own length prefix.
  if (!r.ok() || n > r.remaining() / 8) {
    return decode_error("lease", r, payload, "test count exceeds payload");
  }
  msg->tests.clear();
  msg->tests.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    msg->tests.push_back(r.vec_u32());
    if (!r.ok()) return decode_error("lease", r, payload, "malformed program");
  }
  if (!r.done()) return decode_error("lease", r, payload, "malformed fields");
  return {};
}

namespace {

/// Metric-bin journals: small indices, journal order (not necessarily
/// sorted — FSM/statement journals are first-hit order), so plain varints
/// rather than gap encoding.
void write_bin_journal(ser::Writer& w, const std::vector<std::size_t>& v) {
  w.varint(v.size());
  for (std::size_t x : v) w.varint(x);
}

bool read_bin_journal(ser::Reader& r, std::vector<std::size_t>& out) {
  out.clear();
  const std::uint64_t n = r.varint();
  if (!r.ok() || n > r.remaining()) {  // >= 1 byte per entry
    r.fail();
    return false;
  }
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(static_cast<std::size_t>(r.varint()));
  }
  return r.ok();
}

}  // namespace

void write_artifact(ser::Writer& w, const core::TestArtifact& art) {
  cov::write_bin_deltas(w, art.cond_bins);
  w.vec_u64(art.ctrl_states);
  write_bin_journal(w, art.toggle_bins);
  write_bin_journal(w, art.fsm_bins);
  write_bin_journal(w, art.stmt_bins);
  w.varint(art.cycles);
  w.varint(art.steps);
  mismatch::write_report_summary(w, art.report);
  // BBV: block starts are full addresses, counts are small — varints keep
  // the non-collecting case at one zero byte per artifact.
  w.varint(art.bbv.size());
  for (const auto& [start, count] : art.bbv) {
    w.u64(start);
    w.varint(count);
  }
}

bool read_artifact(ser::Reader& r, core::TestArtifact& art) {
  art.begin();
  if (!cov::read_bin_deltas(r, art.cond_bins)) return false;
  art.ctrl_states = r.vec_u64();
  if (!read_bin_journal(r, art.toggle_bins) ||
      !read_bin_journal(r, art.fsm_bins) ||
      !read_bin_journal(r, art.stmt_bins)) {
    return false;
  }
  art.cycles = r.varint();
  art.steps = r.varint();
  if (!r.ok()) return false;
  if (!mismatch::read_report_summary(r, art.report)) return false;
  const std::uint64_t blocks = r.varint();
  if (!r.ok() || blocks > r.remaining() / 9) {  // >= u64 + 1-byte varint
    r.fail();
    return false;
  }
  art.bbv.reserve(blocks);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    const std::uint64_t start = r.u64();
    const std::uint64_t count = r.varint();
    art.bbv.emplace_back(start, count);
  }
  return r.ok();
}

std::string encode_lease_result(const LeaseResultMsg& msg) {
  ser::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kLeaseResult));
  w.u64(msg.lease_id);
  w.u64(msg.artifacts.size());
  for (const core::TestArtifact& art : msg.artifacts) write_artifact(w, art);
  return w.take();
}

ser::Status decode_lease_result(const std::string& payload,
                                LeaseResultMsg* msg) {
  ser::Reader r(payload);
  if (!take_type(r, MsgType::kLeaseResult)) {
    return decode_error("lease-result", r, payload, "wrong type tag");
  }
  msg->lease_id = r.u64();
  const std::uint64_t n = r.u64();
  // An artifact is never smaller than its fixed-width fields (~16 bytes of
  // length prefixes and counters).
  if (!r.ok() || n > r.remaining() / 16) {
    return decode_error("lease-result", r, payload,
                        "artifact count exceeds payload");
  }
  msg->artifacts.clear();
  msg->artifacts.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!read_artifact(r, msg->artifacts[i])) {
      return decode_error("lease-result", r, payload, "malformed artifact");
    }
  }
  if (!r.done()) {
    return decode_error("lease-result", r, payload, "malformed fields");
  }
  return {};
}

std::string encode_shutdown() {
  ser::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kShutdown));
  return w.take();
}

std::string encode_reject(const RejectMsg& msg) {
  ser::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kReject));
  w.str(msg.reason);
  return w.take();
}

ser::Status decode_reject(const std::string& payload, RejectMsg* msg) {
  ser::Reader r(payload);
  if (!take_type(r, MsgType::kReject)) {
    return decode_error("reject", r, payload, "wrong type tag");
  }
  msg->reason = r.str();
  if (!r.done()) return decode_error("reject", r, payload, "malformed fields");
  return {};
}

std::string encode_heartbeat(const HeartbeatMsg& msg) {
  ser::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kHeartbeat));
  w.u64(msg.served);
  return w.take();
}

ser::Status decode_heartbeat(const std::string& payload, HeartbeatMsg* msg) {
  ser::Reader r(payload);
  if (!take_type(r, MsgType::kHeartbeat)) {
    return decode_error("heartbeat", r, payload, "wrong type tag");
  }
  msg->served = r.u64();
  if (!r.done()) {
    return decode_error("heartbeat", r, payload, "malformed fields");
  }
  return {};
}

std::string encode_fed_request(const FedRequestMsg& msg) {
  ser::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kFedRequest));
  w.u8(msg.mode);
  return w.take();
}

ser::Status decode_fed_request(const std::string& payload,
                               FedRequestMsg* msg) {
  ser::Reader r(payload);
  if (!take_type(r, MsgType::kFedRequest)) {
    return decode_error("fed-request", r, payload, "wrong type tag");
  }
  msg->mode = r.u8();
  if (!r.done() || msg->mode > static_cast<std::uint8_t>(FedMode::kPull)) {
    return decode_error("fed-request", r, payload, "malformed fields");
  }
  return {};
}

std::string encode_fed_delta(const FedDeltaMsg& msg) {
  ser::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kFedDelta));
  w.vec_u32(msg.program);
  w.u64(msg.meta.test_index);
  w.u32(msg.meta.standalone_bins);
  w.u32(msg.meta.incremental_bins);
  w.u32(msg.meta.mismatches);
  w.u64(msg.meta.ctrl_new);
  w.u64(msg.meta.phase_hash);
  w.vec_u32(msg.meta.new_bins);
  return w.take();
}

ser::Status decode_fed_delta(const std::string& payload, FedDeltaMsg* msg) {
  ser::Reader r(payload);
  if (!take_type(r, MsgType::kFedDelta)) {
    return decode_error("fed-delta", r, payload, "wrong type tag");
  }
  msg->program = r.vec_u32();
  if (!r.ok() || msg->program.empty()) {
    return decode_error("fed-delta", r, payload, "malformed or empty program");
  }
  msg->meta.test_index = r.u64();
  msg->meta.standalone_bins = r.u32();
  msg->meta.incremental_bins = r.u32();
  msg->meta.mismatches = r.u32();
  msg->meta.ctrl_new = r.u64();
  msg->meta.phase_hash = r.u64();
  msg->meta.new_bins = r.vec_u32();
  if (!r.done()) {
    return decode_error("fed-delta", r, payload, "malformed fields");
  }
  return {};
}

std::string encode_fed_ack(const FedAckMsg& msg) {
  ser::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kFedAck));
  w.u8(msg.status);
  w.str(msg.detail);
  return w.take();
}

ser::Status decode_fed_ack(const std::string& payload, FedAckMsg* msg) {
  ser::Reader r(payload);
  if (!take_type(r, MsgType::kFedAck)) {
    return decode_error("fed-ack", r, payload, "wrong type tag");
  }
  msg->status = r.u8();
  msg->detail = r.str();
  if (!r.done() ||
      msg->status > static_cast<std::uint8_t>(FedAckStatus::kCorrupt)) {
    return decode_error("fed-ack", r, payload, "malformed fields");
  }
  return {};
}

std::string encode_fed_done(const FedDoneMsg& msg) {
  ser::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kFedDone));
  w.u64(msg.count);
  return w.take();
}

ser::Status decode_fed_done(const std::string& payload, FedDoneMsg* msg) {
  ser::Reader r(payload);
  if (!take_type(r, MsgType::kFedDone)) {
    return decode_error("fed-done", r, payload, "wrong type tag");
  }
  msg->count = r.u64();
  if (!r.done()) {
    return decode_error("fed-done", r, payload, "malformed fields");
  }
  return {};
}

std::string encode_stats_request() {
  ser::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kStatsRequest));
  return w.take();
}

std::string encode_stats_reply(const StatsReplyMsg& msg) {
  ser::Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kStatsReply));
  w.u64(msg.metrics.size());
  for (const auto& [name, value] : msg.metrics) {
    w.str(name);
    w.f64(value);
  }
  w.u64(msg.peers.size());
  for (const PeerStatusEntry& p : msg.peers) {
    w.u64(p.pid);
    w.boolean(p.alive);
    w.boolean(p.demoted);
    w.u32(p.leases_held);
    w.u64(p.results);
    w.u64(p.heartbeat_age_ms);
  }
  return w.take();
}

ser::Status decode_stats_reply(const std::string& payload,
                               StatsReplyMsg* msg) {
  ser::Reader r(payload);
  if (!take_type(r, MsgType::kStatsReply)) {
    return decode_error("stats-reply", r, payload, "wrong type tag");
  }
  const std::uint64_t nm = r.u64();
  // Each metric carries at least a length prefix and an f64.
  if (!r.ok() || nm > r.remaining() / 9) {
    return decode_error("stats-reply", r, payload,
                        "metric count exceeds payload");
  }
  msg->metrics.clear();
  msg->metrics.reserve(nm);
  for (std::uint64_t i = 0; i < nm; ++i) {
    std::string name = r.str();
    const double value = r.f64();
    if (!r.ok()) {
      return decode_error("stats-reply", r, payload, "malformed metric");
    }
    msg->metrics.emplace_back(std::move(name), value);
  }
  const std::uint64_t np = r.u64();
  if (!r.ok() || np > r.remaining() / 24) {
    return decode_error("stats-reply", r, payload,
                        "peer count exceeds payload");
  }
  msg->peers.clear();
  msg->peers.reserve(np);
  for (std::uint64_t i = 0; i < np; ++i) {
    PeerStatusEntry p;
    p.pid = r.u64();
    p.alive = r.boolean();
    p.demoted = r.boolean();
    p.leases_held = r.u32();
    p.results = r.u64();
    p.heartbeat_age_ms = r.u64();
    if (!r.ok()) {
      return decode_error("stats-reply", r, payload, "malformed peer entry");
    }
    msg->peers.push_back(p);
  }
  if (!r.done()) {
    return decode_error("stats-reply", r, payload, "malformed fields");
  }
  return {};
}

// ---------------------------------------------------------------------------
// FrameChannel
// ---------------------------------------------------------------------------

FrameChannel& FrameChannel::operator=(FrameChannel&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void FrameChannel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ser::Status FrameChannel::send_frame(const std::string& payload,
                                     int timeout_ms) {
  if (fd_ < 0) return proto_error("send on closed channel");
  if (payload.size() > kMaxFramePayload) {
    return proto_error("frame payload exceeds the size limit");
  }
  ser::Writer header;
  header.u32(kFrameMagic);
  header.u32(static_cast<std::uint32_t>(payload.size()));
  header.u32(ser::crc32(payload.data(), payload.size()));
  const std::string& head = header.buffer();

  std::chrono::steady_clock::time_point deadline;
  const bool bounded = timeout_ms >= 0;
  if (bounded) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(timeout_ms);
  }
  // MSG_DONTWAIT keeps each send nonblocking regardless of fd flags (the
  // read side stays blocking); a full buffer parks in poll(POLLOUT) with
  // the remaining window instead of wedging in the kernel.
  const char* error = nullptr;
  const auto send_all = [&](const char* data, std::size_t size) -> bool {
    std::size_t off = 0;
    while (off < size) {
      const ssize_t n = ::send(fd_, data + off, size - off,
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK) return false;
        int wait_ms = -1;
        if (bounded) {
          const auto left =
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - std::chrono::steady_clock::now());
          if (left.count() <= 0) {
            error = "send timed out (peer not draining)";
            return false;
          }
          wait_ms = static_cast<int>(left.count());
        }
        struct pollfd pfd{fd_, POLLOUT, 0};
        const int pr = ::poll(&pfd, 1, wait_ms);
        if (pr < 0 && errno != EINTR) return false;
        if (pr == 0) {
          error = "send timed out (peer not draining)";
          return false;
        }
        continue;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  };
  if (!send_all(head.data(), head.size()) ||
      !send_all(payload.data(), payload.size())) {
    if (error != nullptr) return proto_error(error);
    return ser::Status::error(std::string("dist protocol: send failed: ") +
                              std::strerror(errno));
  }
  return {};
}

namespace {

/// Read exactly `size` bytes before `deadline` (or block forever when the
/// caller passed no timeout). Partial reads resume; EOF/error/timeout fail.
ser::Status read_exact(int fd, char* out, std::size_t size,
                       const std::chrono::steady_clock::time_point* deadline) {
  std::size_t off = 0;
  while (off < size) {
    int wait_ms = -1;
    if (deadline != nullptr) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          *deadline - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        return ser::Status::error(strformat(
            "dist protocol: receive timed out (%zu of %zu bytes)", off, size));
      }
      wait_ms = static_cast<int>(remaining.count());
    }
    struct pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, wait_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return ser::Status::error(std::string("dist protocol: poll failed: ") +
                                std::strerror(errno));
    }
    if (pr == 0) {
      return ser::Status::error(strformat(
          "dist protocol: receive timed out (%zu of %zu bytes)", off, size));
    }
    const ssize_t n = ::read(fd, out + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ser::Status::error(
          strformat("dist protocol: read failed at byte %zu of %zu: %s", off,
                    size, std::strerror(errno)));
    }
    if (n == 0) {
      return ser::Status::error(strformat(
          "dist protocol: peer closed the channel mid-frame "
          "(%zu of %zu bytes)", off, size));
    }
    off += static_cast<std::size_t>(n);
  }
  return {};
}

}  // namespace

ser::Status FrameChannel::recv_frame(std::string* payload, int timeout_ms) {
  if (fd_ < 0) return proto_error("receive on closed channel");
  std::chrono::steady_clock::time_point deadline;
  const std::chrono::steady_clock::time_point* dl = nullptr;
  if (timeout_ms >= 0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(timeout_ms);
    dl = &deadline;
  }
  char head[12];
  ser::Status s = read_exact(fd_, head, sizeof head, dl);
  if (!s.ok()) return s;
  ser::Reader hr(std::string_view(head, sizeof head));
  const std::uint32_t magic = hr.u32();
  const std::uint32_t len = hr.u32();
  const std::uint32_t crc = hr.u32();
  if (magic != kFrameMagic) return proto_error("bad frame magic");
  if (len > kMaxFramePayload) {
    return proto_error("frame length prefix exceeds the size limit");
  }
  payload->resize(len);
  s = read_exact(fd_, payload->data(), len, dl);
  if (!s.ok()) return s;
  if (ser::crc32(payload->data(), payload->size()) != crc) {
    return proto_error("frame CRC mismatch");
  }
  return {};
}

}  // namespace chatfuzz::dist
