#include "dist/coordinator.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <spawn.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

extern char** environ;

namespace chatfuzz::dist {

namespace {

/// Handshake window: covers exec + library init of a fresh worker. Lease
/// traffic uses cfg.dist.lease_timeout_ms instead (0 = forever).
constexpr int kHandshakeTimeoutMs = 60'000;

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::size_t Coordinator::effective_lease_tests(
    const core::CampaignConfig& cfg) {
  const std::size_t batch = std::max<std::size_t>(1, cfg.batch_size);
  if (cfg.dist.lease_tests != 0) {
    return std::min(cfg.dist.lease_tests, batch);
  }
  // Default: at least two leases per worker per batch, so a lost worker's
  // outstanding work re-issues at useful granularity and the tail of a
  // batch load-balances.
  const std::size_t procs = std::max<std::size_t>(1, cfg.dist.num_procs);
  return std::max<std::size_t>(1, (batch + 2 * procs - 1) / (2 * procs));
}

Coordinator::Coordinator(const core::CampaignConfig& cfg, bool use_suite)
    : cfg_(cfg), use_suite_(use_suite),
      lease_tests_(effective_lease_tests(cfg)) {
  // 64 is the poll-set bound below and far beyond any sane per-host
  // process fan-out; an absurd request degrades to 64, not to OOM.
  workers_.resize(std::min<std::size_t>(cfg.dist.num_procs, 64));
  for (std::size_t i = 0; i < workers_.size(); ++i) spawn_worker(i);
  if (live_workers() == 0) {
    throw std::runtime_error(
        "dist coordinator: no worker process survived the handshake");
  }
}

void Coordinator::spawn_worker(std::size_t index) {
  WorkerProc& w = workers_[index];
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    std::fprintf(stderr, "dist coordinator: socketpair failed: %s\n",
                 std::strerror(errno));
    return;
  }
  // The parent end must not leak into workers spawned later (a held-open
  // copy would mask this worker's EOF-on-death signal).
  ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);

  const std::string exe = cfg_.dist.worker_exe.empty()
                              ? std::string("/proc/self/exe")
                              : cfg_.dist.worker_exe;
  const std::string fd_arg = std::to_string(sv[1]);
  char* const argv[] = {const_cast<char*>(exe.c_str()),
                        const_cast<char*>("worker"),
                        const_cast<char*>(fd_arg.c_str()), nullptr};
  pid_t pid = -1;
  const int rc =
      ::posix_spawn(&pid, exe.c_str(), nullptr, nullptr, argv, environ);
  ::close(sv[1]);
  if (rc != 0) {
    ::close(sv[0]);
    std::fprintf(stderr, "dist coordinator: cannot spawn %s: %s\n",
                 exe.c_str(), std::strerror(rc));
    return;
  }
  w.pid = pid;
  w.chan = FrameChannel(sv[0]);
  w.alive = true;
  ++stats_.workers_spawned;

  // Handshake: hello (version check) then the campaign config.
  std::string payload;
  ser::Status s = w.chan.recv_frame(&payload, kHandshakeTimeoutMs);
  HelloMsg hello;
  if (s.ok()) s = decode_hello(payload, &hello);
  if (s.ok() && hello.protocol != kProtocolVersion) {
    s = ser::Status::error("worker speaks protocol v" +
                           std::to_string(hello.protocol) + ", expected v" +
                           std::to_string(kProtocolVersion));
  }
  if (s.ok()) {
    ConfigMsg config;
    config.cfg = cfg_;
    config.use_suite = use_suite_;
    config.worker_index = index;
    config.max_lease_tests = lease_tests_;
    config.debug_hang = index == cfg_.dist.debug_hang_worker;
    config.superblocks = cfg_.superblocks;
    config.collect_bbv = !cfg_.bbv_path.empty();
    s = w.chan.send_frame(encode_config(config));
  }
  if (!s.ok()) lose_worker(index, s.message(), nullptr);
}

void Coordinator::lose_worker(std::size_t index, const std::string& why,
                              std::vector<std::size_t>* requeue) {
  WorkerProc& w = workers_[index];
  if (!w.alive) return;
  std::fprintf(stderr, "dist coordinator: losing worker %zu (pid %d): %s\n",
               index, static_cast<int>(w.pid), why.c_str());
  w.chan.close();
  ::kill(w.pid, SIGKILL);
  ::waitpid(w.pid, nullptr, 0);
  w.alive = false;
  ++stats_.workers_lost;
  if (requeue != nullptr) {
    for (std::size_t l : w.leases) {
      requeue->push_back(l);
      ++stats_.leases_reissued;
    }
  }
  w.leases.clear();
}

std::size_t Coordinator::live_workers() const {
  std::size_t n = 0;
  for (const WorkerProc& w : workers_) n += w.alive ? 1 : 0;
  return n;
}

void Coordinator::maybe_fire_kill_injection() {
  const std::size_t target = cfg_.dist.debug_kill_worker;
  if (kill_fired_ || target >= workers_.size()) return;
  if (results_folded_ < cfg_.dist.debug_kill_after_results) return;
  kill_fired_ = true;
  if (workers_[target].alive) {
    // SIGKILL only — detection and lease reassignment must flow through the
    // same EOF path a real worker crash takes.
    ::kill(workers_[target].pid, SIGKILL);
  }
}

void Coordinator::run_batch(const std::vector<core::Program>& batch,
                            std::uint64_t base,
                            std::vector<core::TestArtifact>& artifacts,
                            const LeaseReadyFn& on_ready) {
  const std::size_t num_leases =
      (batch.size() + lease_tests_ - 1) / lease_tests_;
  // Queue of lease indices still to (re)assign; popped back-to-front so
  // first-time issue runs ascending. Order is scheduling only — the fold is
  // by canonical artifact slot, not arrival.
  std::vector<std::size_t> queue;
  queue.reserve(num_leases);
  for (std::size_t l = num_leases; l > 0; --l) queue.push_back(l - 1);
  std::vector<std::uint8_t> done(num_leases, 0);
  std::size_t remaining = num_leases;
  std::size_t next_ready = 0;  // first lease not yet announced to on_ready

  const auto lease_range = [&](std::size_t l) {
    const std::size_t start = l * lease_tests_;
    const std::size_t count = std::min(lease_tests_, batch.size() - start);
    return std::pair<std::size_t, std::size_t>(start, count);
  };

  /// Announce every contiguous completed lease past the fold frontier, as
  /// one span — keeps the engine folding in canonical order with no gaps
  /// while the remaining leases are still out simulating.
  const auto announce_ready = [&] {
    if (!on_ready) return;
    const std::size_t first = next_ready;
    while (next_ready < num_leases && done[next_ready] != 0) ++next_ready;
    if (next_ready == first) return;
    const std::size_t start = first * lease_tests_;
    const std::size_t end =
        std::min(batch.size(), next_ready * lease_tests_);
    on_ready(start, end - start);
  };

  LeaseResultMsg result;
  while (remaining > 0) {
    if (live_workers() == 0) {
      throw std::runtime_error(
          "dist coordinator: every worker process was lost; " +
          std::to_string(remaining) + " lease(s) of the current batch "
          "cannot be completed");
    }

    // Assign queued leases to survivors with capacity, round-robin so the
    // double-buffer slots fill evenly before anyone gets a second lease.
    for (std::size_t depth = 0; depth < 2 && !queue.empty(); ++depth) {
      for (std::size_t wi = 0; wi < workers_.size() && !queue.empty();
           ++wi) {
        WorkerProc& w = workers_[wi];
        if (!w.alive || w.leases.size() != depth) continue;
        const std::size_t l = queue.back();
        const auto [start, count] = lease_range(l);
        LeaseMsg lease;
        lease.lease_id = l;
        lease.base_index = base + start;
        lease.tests.assign(
            batch.begin() + static_cast<std::ptrdiff_t>(start),
            batch.begin() + static_cast<std::ptrdiff_t>(start + count));
        // Bound the send by the same no-progress window as receives: a
        // worker that stops draining its socket is hung, and a stalled
        // send must not keep run_batch from ever reaching the expiry loop.
        const int send_timeout =
            cfg_.dist.lease_timeout_ms != 0
                ? static_cast<int>(cfg_.dist.lease_timeout_ms)
                : -1;
        const ser::Status s =
            w.chan.send_frame(encode_lease(lease), send_timeout);
        if (!s.ok()) {
          // Dead on send: do NOT pop — the lease stays queued for a
          // survivor.
          lose_worker(wi, s.message(), &queue);
          continue;
        }
        queue.pop_back();
        w.leases.push_back(l);
        w.last_progress_ms = now_ms();
        ++stats_.leases_issued;
      }
    }
    maybe_fire_kill_injection();

    // Wait for any busy worker to deliver (or for a lease to time out).
    struct pollfd pfds[64];
    std::size_t worker_of_pfd[64];
    std::size_t n_pfds = 0;
    int timeout = -1;
    for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
      const WorkerProc& w = workers_[wi];
      if (!w.alive || w.leases.empty()) continue;
      if (n_pfds < 64) {
        pfds[n_pfds] = {w.chan.fd(), POLLIN, 0};
        worker_of_pfd[n_pfds] = wi;
        ++n_pfds;
      }
      if (cfg_.dist.lease_timeout_ms != 0) {
        const auto deadline =
            w.last_progress_ms +
            static_cast<std::int64_t>(cfg_.dist.lease_timeout_ms);
        const auto left = deadline - now_ms();
        const int left_ms = static_cast<int>(std::max<std::int64_t>(0, left));
        timeout = timeout < 0 ? left_ms : std::min(timeout, left_ms);
      }
    }
    if (n_pfds == 0) continue;  // survivors exist but all idle: reassign
    const int pr = ::poll(pfds, static_cast<nfds_t>(n_pfds), timeout);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("dist coordinator: poll: ") +
                               std::strerror(errno));
    }

    // Expire hung leases (poll timed out, or delivery raced the deadline).
    if (cfg_.dist.lease_timeout_ms != 0) {
      const std::int64_t now = now_ms();
      for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
        WorkerProc& w = workers_[wi];
        if (!w.alive || w.leases.empty()) continue;
        const bool readable = [&] {
          for (std::size_t p = 0; p < n_pfds; ++p) {
            if (worker_of_pfd[p] == wi) return (pfds[p].revents & POLLIN) != 0;
          }
          return false;
        }();
        if (!readable &&
            now - w.last_progress_ms >=
                static_cast<std::int64_t>(cfg_.dist.lease_timeout_ms)) {
          lose_worker(wi, "lease timed out (hung worker)", &queue);
        }
      }
    }

    for (std::size_t p = 0; p < n_pfds; ++p) {
      if ((pfds[p].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const std::size_t wi = worker_of_pfd[p];
      WorkerProc& w = workers_[wi];
      if (!w.alive) continue;  // lost above
      std::string payload;
      ser::Status s = w.chan.recv_frame(
          &payload, cfg_.dist.lease_timeout_ms != 0
                        ? static_cast<int>(cfg_.dist.lease_timeout_ms)
                        : -1);
      if (s.ok()) s = decode_lease_result(payload, &result);
      if (s.ok() &&
          (w.leases.empty() || result.lease_id != w.leases.front())) {
        // Leases are served FIFO over a FIFO socket, so anything but the
        // head is a protocol violation.
        s = ser::Status::error("worker answered lease " +
                               std::to_string(result.lease_id) +
                               " out of order or unheld");
      }
      if (s.ok()) {
        const std::size_t l = w.leases.front();
        const auto [start, count] = lease_range(l);
        if (result.artifacts.size() != count) {
          s = ser::Status::error("lease result carries " +
                                 std::to_string(result.artifacts.size()) +
                                 " artifacts, expected " +
                                 std::to_string(count));
        } else {
          // Canonical slots: WHERE a test ran never shows in the fold.
          for (std::size_t j = 0; j < count; ++j) {
            artifacts[start + j] = std::move(result.artifacts[j]);
          }
          done[l] = 1;
          --remaining;
          ++results_folded_;
          w.leases.erase(w.leases.begin());
          w.last_progress_ms = now_ms();
          announce_ready();
        }
      }
      if (!s.ok()) {
        lose_worker(wi, s.message(), &queue);
        continue;
      }
      maybe_fire_kill_injection();
    }
  }
}

Coordinator::~Coordinator() {
  for (WorkerProc& w : workers_) {
    if (!w.alive) continue;
    // Best-effort clean shutdown; EOF from the closed channel doubles as
    // the signal for workers that miss the frame.
    (void)w.chan.send_frame(encode_shutdown());
    w.chan.close();
  }
  // One shared grace window across all children, then force the
  // stragglers: teardown is bounded at ~5s total no matter how many
  // workers wedged, and the destructor can never hang.
  const std::int64_t deadline = now_ms() + 5'000;
  bool pending = true;
  while (pending && now_ms() < deadline) {
    pending = false;
    for (WorkerProc& w : workers_) {
      if (!w.alive) continue;
      if (::waitpid(w.pid, nullptr, WNOHANG) == w.pid) {
        w.alive = false;
      } else {
        pending = true;
      }
    }
    if (pending) ::usleep(100'000);
  }
  for (WorkerProc& w : workers_) {
    if (!w.alive) continue;
    ::kill(w.pid, SIGKILL);
    ::waitpid(w.pid, nullptr, 0);
    w.alive = false;
  }
}

}  // namespace chatfuzz::dist
