#include "dist/coordinator.h"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/rng.h"

namespace chatfuzz::dist {

namespace {

/// Handshake window for the initial fleet: covers exec + library init of a
/// fresh worker. Lease traffic uses cfg.dist.lease_timeout_ms instead.
constexpr int kHandshakeTimeoutMs = 60'000;
/// Handshake window for peers that join mid-campaign: they are already
/// running processes, so a peer that connects and then says nothing for
/// this long is a port-scanner, not a worker.
constexpr int kLateHandshakeTimeoutMs = 10'000;

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::size_t Coordinator::effective_lease_tests(
    const core::CampaignConfig& cfg) {
  const std::size_t batch = std::max<std::size_t>(1, cfg.batch_size);
  if (cfg.dist.lease_tests != 0) {
    return std::min(cfg.dist.lease_tests, batch);
  }
  // Default: at least two leases per worker per batch, so a lost worker's
  // outstanding work re-issues at useful granularity and the tail of a
  // batch load-balances.
  const std::size_t procs = std::max<std::size_t>(1, cfg.dist.num_procs);
  return std::max<std::size_t>(1, (batch + 2 * procs - 1) / (2 * procs));
}

std::int64_t Coordinator::effective_heartbeat_timeout_ms() const {
  if (cfg_.dist.heartbeat_ms == 0) return 0;
  if (cfg_.dist.heartbeat_timeout_ms != 0) {
    return cfg_.dist.heartbeat_timeout_ms;
  }
  return static_cast<std::int64_t>(cfg_.dist.heartbeat_ms) * 8;
}

Coordinator::Coordinator(const core::CampaignConfig& cfg, bool use_suite)
    : cfg_(cfg), use_suite_(use_suite),
      lease_tests_(effective_lease_tests(cfg)) {
  set_log_role("coord");
  if (cfg_.dist.fault.any()) {
    // The fault schedule forks off the campaign seed: reproducible, and
    // decorrelated from every generator stream.
    injector_ =
        std::make_shared<FaultInjector>(cfg_.dist.fault, Rng(cfg_.seed));
  }
  transport_ = make_transport(cfg_);
  std::vector<Peer> peers = transport_->start();
  for (Peer& p : peers) {
    (void)add_peer(std::move(p), kHandshakeTimeoutMs);
  }
  if (live_workers() == 0 && transport_->listen_fd() >= 0) {
    // Handshake faults can wipe the whole initial fleet; the workers are
    // redialing right now, so give them the reconnect window before
    // declaring the campaign dead on arrival.
    await_reconnect(static_cast<int>(cfg_.dist.reconnect_wait_ms));
  }
  if (live_workers() == 0) {
    throw std::runtime_error(
        "dist coordinator: no worker process survived the handshake");
  }
}

bool Coordinator::add_peer(Peer peer, int handshake_timeout_ms) {
  if (!peer.chan || !peer.chan->valid()) return false;
  std::unique_ptr<Channel> chan =
      maybe_wrap_faulty(std::move(peer.chan), injector_,
                        next_channel_ordinal_++);

  std::string payload;
  ser::Status s = chan->recv_frame(&payload, handshake_timeout_ms);
  HelloMsg hello;
  if (s.ok()) s = decode_hello(payload, &hello);
  if (!s.ok()) {
    LOG_WARN("dist: handshake failed reason=\"%s\"", s.message().c_str());
    chan->close();
    return false;
  }

  // Deliberate refusals get a kReject with the reason — the peer must stop
  // redialing, an incompatible worker will never become compatible.
  std::string reject;
  if (hello.protocol != kProtocolVersion) {
    reject = "protocol v" + std::to_string(hello.protocol) + ", expected v" +
             std::to_string(kProtocolVersion);
  } else if (hello.token != cfg_.dist.token) {
    reject = "bad auth token";
  }
  if (reject.empty() &&
      hello.role == static_cast<std::uint8_t>(PeerRole::kStatus)) {
    // Fleet introspection (`chatfuzz fleet status`): one aggregated
    // snapshot, then close. Observation-only — the peer never becomes a
    // worker and is not counted as rejected.
    (void)chan->send_frame(encode_stats_reply(build_fleet_reply()), 5'000);
    chan->close();
    LOG_INFO("dist: served fleet status query pid=%llu",
             static_cast<unsigned long long>(hello.pid));
    return false;
  }
  if (reject.empty() &&
      hello.role != static_cast<std::uint8_t>(PeerRole::kWorker)) {
    reject = "peer role is not 'worker' (federation endpoint is elsewhere)";
  }
  if (!reject.empty()) {
    LOG_WARN("dist: rejected peer pid=%llu reason=\"%s\"",
             static_cast<unsigned long long>(hello.pid), reject.c_str());
    (void)chan->send_frame(encode_reject(RejectMsg{reject}), 1'000);
    chan->close();
    ++stats_.peers_rejected;
    return false;
  }

  const std::size_t index = workers_.size();
  ConfigMsg config;
  config.cfg = cfg_;
  config.use_suite = use_suite_;
  config.worker_index = index;
  config.max_lease_tests = lease_tests_;
  // The hang injection fires once: on the TCP transport a lost worker's
  // replacement lands in a fresh slot, and re-arming there would hang the
  // whole recovered fleet.
  config.debug_hang =
      index == cfg_.dist.debug_hang_worker && !hang_sent_;
  if (config.debug_hang) hang_sent_ = true;
  config.superblocks = cfg_.superblocks;
  config.collect_bbv = !cfg_.bbv_path.empty();
  config.config_crc = config_fingerprint(cfg_);
  config.heartbeat_ms = cfg_.dist.heartbeat_ms;
  s = chan->send_frame(encode_config(config), handshake_timeout_ms);
  if (!s.ok()) {
    LOG_WARN("dist: handshake failed reason=\"%s\"", s.message().c_str());
    chan->close();
    return false;
  }

  WorkerPeer w;
  w.chan = std::move(chan);
  w.child_pid = peer.child_pid;
  w.hello_pid = static_cast<std::int64_t>(hello.pid);
  w.alive = true;
  w.last_progress_ms = now_ms();
  w.last_heartbeat_ms = w.last_progress_ms;
  workers_.push_back(std::move(w));
  ++stats_.workers_spawned;
  return true;
}

void Coordinator::accept_pending() {
  if (transport_->listen_fd() < 0) return;
  while (auto p = transport_->accept_peer()) {
    ++stats_.peers_accepted;
    (void)add_peer(std::move(*p), kLateHandshakeTimeoutMs);
  }
}

void Coordinator::await_reconnect(int window_ms) {
  const int lfd = transport_->listen_fd();
  if (lfd < 0) return;
  OBS_SPAN("dist.await_reconnect");
  LOG_WARN("dist: fleet empty, waiting up to %dms for a reconnect",
           window_ms);
  const std::int64_t deadline = now_ms() + window_ms;
  while (live_workers() == 0) {
    const std::int64_t left = deadline - now_ms();
    if (left <= 0) return;
    struct pollfd pfd = {lfd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(left));
    if (pr < 0 && errno != EINTR) return;
    if (pr > 0) accept_pending();
  }
}

void Coordinator::lose_worker(std::size_t index, LossCause cause,
                              const std::string& why,
                              std::vector<std::size_t>* requeue) {
  WorkerPeer& w = workers_[index];
  if (!w.alive) return;
  switch (cause) {
    case LossCause::kDisconnect: ++stats_.lost_disconnect; break;
    case LossCause::kNoProgress: ++stats_.lost_no_progress; break;
    case LossCause::kNoHeartbeat: ++stats_.lost_no_heartbeat; break;
  }
  // One structured line per dropped peer (S1 of the robustness contract):
  // everything an operator needs to grep a fleet incident.
  LOG_WARN("dist: dropped peer worker=%zu pid=%lld reason=\"%s\" "
           "leases_requeued=%zu",
           index, static_cast<long long>(w.hello_pid), why.c_str(),
           w.leases.size());
  w.chan->close();
  if (w.child_pid >= 0 && transport_->listen_fd() < 0) {
    // Socketpair children cannot reconnect — a lost one is dead weight,
    // kill and reap it now. TCP children stay: a disconnected one redials
    // on its own, and teardown reaps whatever is left.
    ::kill(w.child_pid, SIGKILL);
    ::waitpid(w.child_pid, nullptr, 0);
  }
  w.alive = false;
  ++stats_.workers_lost;
  if (requeue != nullptr) {
    for (const WorkerPeer::Hold& h : w.leases) {
      requeue->push_back(h.lease);
      ++stats_.leases_reissued;
    }
  }
  w.leases.clear();
}

std::size_t Coordinator::live_workers() const {
  std::size_t n = 0;
  for (const WorkerPeer& w : workers_) n += w.alive ? 1 : 0;
  return n;
}

void Coordinator::fleet_metrics(
    std::vector<std::pair<std::string, double>>* out) {
  const auto put = [&](const char* name, double v) {
    out->emplace_back(name, v);
  };
  put("fleet.workers_live", static_cast<double>(live_workers()));
  put("fleet.workers_spawned", static_cast<double>(stats_.workers_spawned));
  put("fleet.workers_lost", static_cast<double>(stats_.workers_lost));
  put("fleet.leases_issued", static_cast<double>(stats_.leases_issued));
  put("fleet.leases_reissued", static_cast<double>(stats_.leases_reissued));
  put("fleet.peers_accepted", static_cast<double>(stats_.peers_accepted));
  put("fleet.peers_rejected", static_cast<double>(stats_.peers_rejected));
  put("fleet.lost_disconnect", static_cast<double>(stats_.lost_disconnect));
  put("fleet.lost_no_progress", static_cast<double>(stats_.lost_no_progress));
  put("fleet.lost_no_heartbeat",
      static_cast<double>(stats_.lost_no_heartbeat));
  put("fleet.heartbeats_seen", static_cast<double>(stats_.heartbeats_seen));
  put("fleet.slow_demotions", static_cast<double>(stats_.slow_demotions));
  put("fleet.faults_injected", static_cast<double>(faults_injected()));

  // Latest per-worker registry snapshots, summed by metric name. Dead
  // peers keep contributing their last report — their work happened.
  std::map<std::string, double> agg;
  for (const WorkerPeer& w : workers_) {
    for (const auto& [name, value] : w.last_metrics) agg[name] += value;
  }
  for (const auto& [name, value] : agg) {
    out->emplace_back("fleet.worker." + name, value);
  }

  // Refresh: ask every live worker for its current snapshot. Replies ride
  // back through run_batch's poll loop like heartbeats; the NEXT call sees
  // them. Best-effort — a stalled send here must never take a peer down
  // (the lease/heartbeat paths own failure detection).
  for (WorkerPeer& w : workers_) {
    if (!w.alive) continue;
    (void)w.chan->send_frame(encode_stats_request(), 1'000);
  }
}

StatsReplyMsg Coordinator::build_fleet_reply() {
  StatsReplyMsg reply;
  // The coordinator lives inside the engine process, so its own registry
  // snapshot IS the campaign view (campaign.* counters, gauges, histos).
  reply.metrics = obs::registry().snapshot();
  fleet_metrics(&reply.metrics);
  const std::int64_t now = now_ms();
  for (const WorkerPeer& w : workers_) {
    PeerStatusEntry e;
    e.pid = static_cast<std::uint64_t>(w.hello_pid);
    e.alive = w.alive;
    e.demoted = w.demoted;
    e.leases_held = static_cast<std::uint32_t>(w.leases.size());
    e.results = w.results;
    e.heartbeat_age_ms =
        w.alive ? static_cast<std::uint64_t>(
                      std::max<std::int64_t>(0, now - w.last_heartbeat_ms))
                : ~0ull;
    reply.peers.push_back(e);
  }
  return reply;
}

std::size_t Coordinator::allowed_depth(std::size_t index) const {
  return workers_[index].demoted ? 1 : 2;
}

void Coordinator::note_lease_done(WorkerPeer& w, std::int64_t now) {
  const double sample =
      static_cast<double>(std::max<std::int64_t>(0, now - w.leases.front().issued_ms));
  w.ema_lease_ms =
      w.ema_samples == 0 ? sample : 0.7 * w.ema_lease_ms + 0.3 * sample;
  ++w.ema_samples;

  // Slow-host demotion: a worker whose completion EMA exceeds twice the
  // fleet median loses its double-buffer slot — it keeps simulating, it
  // just never queues two leases. Scheduling only; results fold into
  // canonical slots either way, so determinism is untouched. Sticky for
  // the rest of the campaign (a host that degraded once is suspect).
  std::vector<double> emas;
  for (const WorkerPeer& p : workers_) {
    if (p.alive && p.ema_samples >= 2) emas.push_back(p.ema_lease_ms);
  }
  if (emas.size() < 2) return;
  std::sort(emas.begin(), emas.end());
  const double median = emas[emas.size() / 2];
  for (WorkerPeer& p : workers_) {
    if (p.alive && !p.demoted && p.ema_samples >= 2 &&
        p.ema_lease_ms > 2.0 * median) {
      p.demoted = true;
      ++stats_.slow_demotions;
      LOG_WARN("dist: demoted slow peer pid=%lld ema=%.0fms median=%.0fms",
               static_cast<long long>(p.hello_pid), p.ema_lease_ms, median);
    }
  }
}

void Coordinator::maybe_fire_kill_injection() {
  const std::size_t target = cfg_.dist.debug_kill_worker;
  if (kill_fired_ || target >= workers_.size()) return;
  if (results_folded_ < cfg_.dist.debug_kill_after_results) return;
  kill_fired_ = true;
  if (workers_[target].alive) {
    // SIGKILL only — detection and lease reassignment must flow through the
    // same EOF path a real worker crash takes. TCP dial-ins carry no child
    // pid, so fall back to the pid from the hello (test fleets are local).
    const pid_t pid = workers_[target].child_pid >= 0
                          ? workers_[target].child_pid
                          : static_cast<pid_t>(workers_[target].hello_pid);
    if (pid > 0) ::kill(pid, SIGKILL);
  }
}

void Coordinator::run_batch(const std::vector<core::Program>& batch,
                            std::uint64_t base,
                            std::vector<core::TestArtifact>& artifacts,
                            const LeaseReadyFn& on_ready) {
  const std::size_t num_leases =
      (batch.size() + lease_tests_ - 1) / lease_tests_;
  // Queue of lease indices still to (re)assign; popped back-to-front so
  // first-time issue runs ascending. Order is scheduling only — the fold is
  // by canonical artifact slot, not arrival.
  std::vector<std::size_t> queue;
  queue.reserve(num_leases);
  for (std::size_t l = num_leases; l > 0; --l) queue.push_back(l - 1);
  std::vector<std::uint8_t> done(num_leases, 0);
  std::size_t remaining = num_leases;
  std::size_t next_ready = 0;  // first lease not yet announced to on_ready

  const auto lease_range = [&](std::size_t l) {
    const std::size_t start = l * lease_tests_;
    const std::size_t count = std::min(lease_tests_, batch.size() - start);
    return std::pair<std::size_t, std::size_t>(start, count);
  };

  /// Announce every contiguous completed lease past the fold frontier, as
  /// one span — keeps the engine folding in canonical order with no gaps
  /// while the remaining leases are still out simulating.
  const auto announce_ready = [&] {
    if (!on_ready) return;
    const std::size_t first = next_ready;
    while (next_ready < num_leases && done[next_ready] != 0) ++next_ready;
    if (next_ready == first) return;
    const std::size_t start = first * lease_tests_;
    const std::size_t end =
        std::min(batch.size(), next_ready * lease_tests_);
    on_ready(start, end - start);
  };

  const std::int64_t hb_timeout = effective_heartbeat_timeout_ms();

  LeaseResultMsg result;
  while (remaining > 0) {
    accept_pending();
    if (live_workers() == 0) {
      await_reconnect(static_cast<int>(cfg_.dist.reconnect_wait_ms));
      if (live_workers() == 0) {
        throw std::runtime_error(
            "dist coordinator: every worker process was lost; " +
            std::to_string(remaining) + " lease(s) of the current batch "
            "cannot be completed");
      }
    }

    // Assign queued leases to survivors with capacity, round-robin so the
    // double-buffer slots fill evenly before anyone gets a second lease.
    {
      OBS_SPAN("dist.lease_issue");
      for (std::size_t depth = 0; depth < 2 && !queue.empty(); ++depth) {
        for (std::size_t wi = 0; wi < workers_.size() && !queue.empty();
             ++wi) {
          WorkerPeer& w = workers_[wi];
          if (!w.alive || w.leases.size() != depth) continue;
          if (depth >= allowed_depth(wi)) continue;
          const std::size_t l = queue.back();
          const auto [start, count] = lease_range(l);
          LeaseMsg lease;
          lease.lease_id = l;
          lease.base_index = base + start;
          lease.tests.assign(
              batch.begin() + static_cast<std::ptrdiff_t>(start),
              batch.begin() + static_cast<std::ptrdiff_t>(start + count));
          // Bound the send by the same no-progress window as receives: a
          // worker that stops draining its socket is hung, and a stalled
          // send must not keep run_batch from ever reaching the expiry
          // loop.
          const int send_timeout =
              cfg_.dist.lease_timeout_ms != 0
                  ? static_cast<int>(cfg_.dist.lease_timeout_ms)
                  : -1;
          const ser::Status s =
              w.chan->send_frame(encode_lease(lease), send_timeout);
          if (!s.ok()) {
            // Dead on send: do NOT pop — the lease stays queued for a
            // survivor.
            lose_worker(wi, LossCause::kDisconnect, s.message(), &queue);
            continue;
          }
          queue.pop_back();
          w.leases.push_back({l, now_ms()});
          w.last_progress_ms = now_ms();
          ++stats_.leases_issued;
        }
      }
    }
    maybe_fire_kill_injection();

    // Wait for any worker to deliver (a result or a heartbeat), a lease or
    // heartbeat deadline to pass, or a new peer to dial in.
    struct pollfd pfds[66];
    std::size_t worker_of_pfd[66];
    std::size_t n_pfds = 0;
    const int lfd = transport_->listen_fd();
    if (lfd >= 0) {
      pfds[n_pfds] = {lfd, POLLIN, 0};
      worker_of_pfd[n_pfds] = static_cast<std::size_t>(-1);
      ++n_pfds;
    }
    int timeout = -1;
    const auto consider_deadline = [&](std::int64_t deadline) {
      const std::int64_t left = deadline - now_ms();
      const int left_ms = static_cast<int>(std::max<std::int64_t>(0, left));
      timeout = timeout < 0 ? left_ms : std::min(timeout, left_ms);
    };
    std::size_t busy = 0;
    for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
      const WorkerPeer& w = workers_[wi];
      if (!w.alive) continue;
      // Every live peer is polled, busy or not: idle peers still heartbeat,
      // disconnect, or get rejected frames to report.
      if (n_pfds < 66) {
        pfds[n_pfds] = {w.chan->poll_fd(), POLLIN, 0};
        worker_of_pfd[n_pfds] = wi;
        ++n_pfds;
      }
      if (!w.leases.empty()) {
        ++busy;
        if (cfg_.dist.lease_timeout_ms != 0) {
          consider_deadline(
              w.last_progress_ms +
              static_cast<std::int64_t>(cfg_.dist.lease_timeout_ms));
        }
      }
      if (hb_timeout > 0) {
        consider_deadline(w.last_heartbeat_ms + hb_timeout);
      }
    }
    if (busy == 0 && !queue.empty()) continue;  // survivors idle: reassign
    if (n_pfds == 0) continue;
    const int pr = ::poll(pfds, static_cast<nfds_t>(n_pfds), timeout);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("dist coordinator: poll: ") +
                               std::strerror(errno));
    }

    const auto readable = [&](std::size_t wi) {
      for (std::size_t p = 0; p < n_pfds; ++p) {
        if (worker_of_pfd[p] == wi) return (pfds[p].revents & POLLIN) != 0;
      }
      return false;
    };

    // Expire dead and hung peers (poll timed out, or delivery raced the
    // deadline). Heartbeat silence is checked first: "no heartbeat" means
    // the host/link is GONE, while "heartbeats current but the lease timed
    // out" means the worker is wedged — different failure, different
    // counter, same recovery (drop + re-issue).
    const std::int64_t now = now_ms();
    for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
      WorkerPeer& w = workers_[wi];
      if (!w.alive || readable(wi)) continue;
      if (hb_timeout > 0 && now - w.last_heartbeat_ms >= hb_timeout) {
        lose_worker(wi, LossCause::kNoHeartbeat,
                    "no heartbeat for " +
                        std::to_string(now - w.last_heartbeat_ms) +
                        "ms (dead or unreachable)",
                    &queue);
        continue;
      }
      if (!w.leases.empty() && cfg_.dist.lease_timeout_ms != 0 &&
          now - w.last_progress_ms >=
              static_cast<std::int64_t>(cfg_.dist.lease_timeout_ms)) {
        lose_worker(wi, LossCause::kNoProgress,
                    "lease timed out (worker hung: heartbeats current, "
                    "no result)",
                    &queue);
      }
    }

    for (std::size_t p = 0; p < n_pfds; ++p) {
      if ((pfds[p].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const std::size_t wi = worker_of_pfd[p];
      if (wi == static_cast<std::size_t>(-1)) {
        accept_pending();
        continue;
      }
      WorkerPeer& w = workers_[wi];
      if (!w.alive) continue;  // lost above
      std::string payload;
      ser::Status s = w.chan->recv_frame(
          &payload, cfg_.dist.lease_timeout_ms != 0
                        ? static_cast<int>(cfg_.dist.lease_timeout_ms)
                        : -1);
      if (s.ok() && peek_type(payload) == MsgType::kHeartbeat) {
        HeartbeatMsg hb;
        s = decode_heartbeat(payload, &hb);
        if (s.ok()) {
          w.last_heartbeat_ms = now_ms();
          ++stats_.heartbeats_seen;
          continue;
        }
      }
      if (s.ok() && peek_type(payload) == MsgType::kStatsReply) {
        // Telemetry answer to an earlier kStatsRequest — store it for
        // fleet_metrics and move on; it is liveness too, like a heartbeat.
        StatsReplyMsg sr;
        s = decode_stats_reply(payload, &sr);
        if (s.ok()) {
          w.last_metrics = std::move(sr.metrics);
          w.last_heartbeat_ms = now_ms();
          continue;
        }
      }
      OBS_SPAN("dist.result_decode");
      if (s.ok()) s = decode_lease_result(payload, &result);
      if (s.ok() &&
          (w.leases.empty() || result.lease_id != w.leases.front().lease)) {
        // Leases are served FIFO over a FIFO socket, so anything but the
        // head is a protocol violation.
        s = ser::Status::error("worker answered lease " +
                               std::to_string(result.lease_id) +
                               " out of order or unheld");
      }
      if (s.ok()) {
        const std::size_t l = w.leases.front().lease;
        const auto [start, count] = lease_range(l);
        if (result.artifacts.size() != count) {
          s = ser::Status::error("lease result carries " +
                                 std::to_string(result.artifacts.size()) +
                                 " artifacts, expected " +
                                 std::to_string(count));
        } else {
          // Canonical slots: WHERE a test ran never shows in the fold.
          for (std::size_t j = 0; j < count; ++j) {
            artifacts[start + j] = std::move(result.artifacts[j]);
          }
          done[l] = 1;
          --remaining;
          ++results_folded_;
          ++w.results;
          const std::int64_t tnow = now_ms();
          note_lease_done(w, tnow);
          w.leases.erase(w.leases.begin());
          w.last_progress_ms = tnow;
          w.last_heartbeat_ms = tnow;
          announce_ready();
        }
      }
      if (!s.ok()) {
        lose_worker(wi, LossCause::kDisconnect, s.message(), &queue);
        continue;
      }
      maybe_fire_kill_injection();
    }
  }
}

Coordinator::~Coordinator() {
  for (WorkerPeer& w : workers_) {
    if (!w.alive) continue;
    // Best-effort clean shutdown; EOF from the closed channel doubles as
    // the signal for workers that miss the frame.
    (void)w.chan->send_frame(encode_shutdown(), 1'000);
    w.chan->close();
    w.alive = false;
  }
  // One shared grace window across all spawned children, then force the
  // stragglers: teardown is bounded no matter how many workers wedged, and
  // the destructor can never hang. (External TCP peers just see EOF.)
  transport_->reap_children(5'000);
}

}  // namespace chatfuzz::dist
