#include "dist/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <spawn.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/log.h"

extern char** environ;

namespace chatfuzz::dist {

namespace {

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// How long TcpTransport::start() waits for its own spawned children to
/// dial back over loopback. Covers exec + library init, same rationale as
/// the coordinator's handshake window.
constexpr std::int64_t kLoopbackDialWindowMs = 60'000;

std::string worker_exe_of(const core::CampaignConfig& cfg) {
  return cfg.dist.worker_exe.empty() ? std::string("/proc/self/exe")
                                     : cfg.dist.worker_exe;
}

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

void tune_stream_socket(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Keepalive is the worker's dead-coordinator detector: frame reads block
  // across batch-boundary gaps of unbounded length, so a recv timeout
  // cannot distinguish "idle" from "gone" — the TCP stack can.
  ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
#ifdef TCP_KEEPIDLE
  int secs = 15;
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPIDLE, &secs, sizeof(secs));
  secs = 5;
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPINTVL, &secs, sizeof(secs));
  int probes = 3;
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPCNT, &probes, sizeof(probes));
#endif
}

bool resolve_ipv4(const std::string& host, in_addr* out) {
  if (host.empty()) {
    out->s_addr = htonl(INADDR_ANY);
    return true;
  }
  if (host == "localhost") {
    out->s_addr = htonl(INADDR_LOOPBACK);
    return true;
  }
  return ::inet_pton(AF_INET, host.c_str(), out) == 1;
}

}  // namespace

std::optional<HostPort> parse_hostport(const std::string& s) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon + 1 == s.size()) return std::nullopt;
  HostPort hp;
  hp.host = s.substr(0, colon);
  const std::string port_str = s.substr(colon + 1);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port > 65535) return std::nullopt;
  hp.port = static_cast<std::uint16_t>(port);
  in_addr dummy;
  if (!resolve_ipv4(hp.host, &dummy)) return std::nullopt;
  return hp;
}

int tcp_listen(const HostPort& hp, std::string* err) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(hp.port);
  if (!resolve_ipv4(hp.host, &addr.sin_addr)) {
    if (err != nullptr) *err = "cannot resolve host '" + hp.host + "'";
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err != nullptr) *err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  set_cloexec(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    if (err != nullptr) {
      *err = "cannot listen on " + hp.host + ":" + std::to_string(hp.port) +
             ": " + std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  // Nonblocking so accept_peer() never stalls the coordinator's poll loop.
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
  return fd;
}

int tcp_connect(const HostPort& hp, int timeout_ms, std::string* err) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(hp.port);
  if (!resolve_ipv4(hp.host, &addr.sin_addr)) {
    if (err != nullptr) *err = "cannot resolve host '" + hp.host + "'";
    return -1;
  }
  if (addr.sin_addr.s_addr == htonl(INADDR_ANY)) {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err != nullptr) *err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  set_cloexec(fd);
  // Nonblocking connect + poll, so a black-holed listener costs timeout_ms
  // instead of the kernel's multi-minute SYN retry budget.
  const int flags = ::fcntl(fd, F_GETFL);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    struct pollfd pfd = {fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, timeout_ms < 0 ? -1 : timeout_ms);
    if (rc <= 0) {
      if (err != nullptr) {
        *err = rc == 0 ? "connect timed out"
                       : std::string("poll: ") + std::strerror(errno);
      }
      ::close(fd);
      return -1;
    }
    int so_err = 0;
    socklen_t len = sizeof(so_err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_err, &len);
    if (so_err != 0) {
      if (err != nullptr) {
        *err = std::string("connect: ") + std::strerror(so_err);
      }
      ::close(fd);
      return -1;
    }
  } else if (rc != 0) {
    if (err != nullptr) *err = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking for frame I/O
  tune_stream_socket(fd);
  return fd;
}

std::uint16_t bound_port(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

// ---- Transport base -------------------------------------------------------

pid_t Transport::spawn(const std::string& exe,
                       const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 2);
  argv.push_back(const_cast<char*>(exe.c_str()));
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  pid_t pid = -1;
  const int rc =
      ::posix_spawn(&pid, exe.c_str(), nullptr, nullptr, argv.data(), environ);
  if (rc != 0) {
    LOG_ERROR("dist transport: cannot spawn %s: %s", exe.c_str(),
              std::strerror(rc));
    return -1;
  }
  children_.push_back(pid);
  return pid;
}

void Transport::reap_children(int grace_ms) {
  std::vector<std::uint8_t> pending(children_.size(), 1);
  std::size_t left = children_.size();
  const std::int64_t deadline = now_ms() + grace_ms;
  while (left > 0 && now_ms() < deadline) {
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (pending[i] == 0) continue;
      const pid_t rc = ::waitpid(children_[i], nullptr, WNOHANG);
      // rc < 0 (ECHILD): the caller already reaped this child after killing
      // it — nothing left to wait for.
      if (rc != 0) {
        pending[i] = 0;
        --left;
      }
    }
    if (left > 0) ::usleep(100'000);
  }
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (pending[i] == 0) continue;
    ::kill(children_[i], SIGKILL);
    ::waitpid(children_[i], nullptr, 0);
  }
  children_.clear();
}

// ---- SpawnTransport -------------------------------------------------------

SpawnTransport::SpawnTransport(const core::CampaignConfig& cfg)
    : num_procs_(std::min<std::size_t>(cfg.dist.num_procs, 64)),
      worker_exe_(worker_exe_of(cfg)),
      token_(cfg.dist.token) {}

std::vector<Peer> SpawnTransport::start() {
  std::vector<Peer> peers;
  peers.reserve(num_procs_);
  for (std::size_t i = 0; i < num_procs_; ++i) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      LOG_ERROR("dist transport: socketpair failed: %s", std::strerror(errno));
      continue;
    }
    // The parent end must not leak into workers spawned later (a held-open
    // copy would mask this worker's EOF-on-death signal).
    set_cloexec(sv[0]);
    std::vector<std::string> args = {"worker", std::to_string(sv[1])};
    if (!token_.empty()) {
      args.push_back("--token");
      args.push_back(token_);
    }
    const pid_t pid = spawn(worker_exe_, args);
    ::close(sv[1]);
    if (pid < 0) {
      ::close(sv[0]);
      continue;
    }
    Peer p;
    p.chan = std::make_unique<SocketChannel>(sv[0]);
    p.child_pid = pid;
    peers.push_back(std::move(p));
  }
  return peers;
}

// ---- TcpTransport ---------------------------------------------------------

TcpTransport::TcpTransport(const core::CampaignConfig& cfg)
    : num_procs_(std::min<std::size_t>(cfg.dist.num_procs, 64)),
      worker_exe_(worker_exe_of(cfg)),
      token_(cfg.dist.token) {
  const auto hp = parse_hostport(cfg.dist.listen);
  if (!hp) {
    throw std::runtime_error("dist transport: bad --listen address '" +
                             cfg.dist.listen + "' (want host:port)");
  }
  std::string err;
  listen_fd_ = tcp_listen(*hp, &err);
  if (listen_fd_ < 0) {
    throw std::runtime_error("dist transport: " + err);
  }
  port_ = hp->port != 0 ? hp->port : bound_port(listen_fd_);
  if (!cfg.dist.port_file.empty()) {
    // Ephemeral-port discovery for tests and scripts: the dial-able
    // address, one line, written only after listen() succeeded.
    const std::string host =
        (hp->host.empty() || hp->host == "0.0.0.0") ? "127.0.0.1" : hp->host;
    std::ofstream out(cfg.dist.port_file, std::ios::trunc);
    out << host << ":" << port_ << "\n";
  }
  LOG_INFO("dist transport: listening on %s:%u",
           hp->host.empty() ? "0.0.0.0" : hp->host.c_str(),
           static_cast<unsigned>(port_));
}

TcpTransport::~TcpTransport() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::vector<Peer> TcpTransport::start() {
  const std::string connect_arg = "127.0.0.1:" + std::to_string(port_);
  for (std::size_t i = 0; i < num_procs_; ++i) {
    std::vector<std::string> args = {"worker", "--connect", connect_arg};
    if (!token_.empty()) {
      args.push_back("--token");
      args.push_back(token_);
    }
    (void)spawn(worker_exe_, args);
  }
  // Wait for the spawned children to dial back. External workers may land
  // in the same window — a peer is a peer. With num_procs == 0 nothing is
  // awaited here: the campaign waits for external dial-ins via
  // accept_peer() from the coordinator's poll loop.
  std::vector<Peer> peers;
  const std::int64_t deadline = now_ms() + kLoopbackDialWindowMs;
  while (peers.size() < children_.size() && now_ms() < deadline) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    const std::int64_t left = deadline - now_ms();
    if (::poll(&pfd, 1, static_cast<int>(std::max<std::int64_t>(0, left))) <=
        0) {
      break;
    }
    auto p = accept_peer();
    if (p) peers.push_back(std::move(*p));
  }
  return peers;
}

std::optional<Peer> TcpTransport::accept_peer() {
  const int fd = ::accept(listen_fd_, nullptr, nullptr);
  if (fd < 0) return std::nullopt;
  set_cloexec(fd);
  // accept() on Linux inherits O_NONBLOCK on some paths; frame I/O wants
  // blocking semantics with its own poll-based deadlines.
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) & ~O_NONBLOCK);
  tune_stream_socket(fd);
  Peer p;
  p.chan = std::make_unique<SocketChannel>(fd);
  return p;
}

std::unique_ptr<Transport> make_transport(const core::CampaignConfig& cfg) {
  if (!cfg.dist.listen.empty()) {
    return std::make_unique<TcpTransport>(cfg);
  }
  return std::make_unique<SpawnTransport>(cfg);
}

}  // namespace chatfuzz::dist
