// Coordinator of the distributed campaign subsystem: owns N worker
// processes (re-exec'ed copies of this binary in the hidden `worker` mode,
// one socketpair each), splits every batch into fixed-size test-index
// leases, and collects one TestArtifact per test back into the batch's
// canonical slots. The campaign engine then folds those artifacts exactly
// as it folds thread-pool artifacts — which is the whole determinism story:
// the coordinator changes WHERE tests run, never what is folded or in what
// order, so results, coverage DB bytes, mismatch DB bytes and corpus-store
// bytes are bit-identical to a single-process run for any process count,
// worker thread count and lease schedule.
//
// Fault tolerance: a worker that dies (EOF/SIGKILL/crash) or exceeds the
// lease timeout is discarded and its outstanding lease is re-issued to a
// survivor. A lease is folded exactly once — reassignment only ever happens
// after the original worker's channel is closed, so a duplicate result
// cannot arrive. When the last worker is lost the batch (and campaign)
// fails with std::runtime_error, matching the engine's error contract.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/sim_worker.h"
#include "dist/protocol.h"

namespace chatfuzz::dist {

/// Observability counters (tests assert on these; benches report them).
struct CoordinatorStats {
  std::size_t workers_spawned = 0;
  std::size_t workers_lost = 0;    // died, crashed, or killed for a timeout
  std::size_t leases_issued = 0;   // first-time assignments
  std::size_t leases_reissued = 0; // reassignments after a lost worker
};

class Coordinator {
 public:
  /// Spawns and handshakes cfg.dist.num_procs workers. Throws
  /// std::runtime_error when no worker comes up.
  Coordinator(const core::CampaignConfig& cfg, bool use_suite);
  /// Sends shutdown to survivors and reaps every child.
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Ready notification for the engine's incremental fold: artifact slots
  /// [start, start+count) are filled AND every slot before them has already
  /// been announced — calls arrive in canonical order with no gaps, so the
  /// engine folds lease results while later leases are still simulating
  /// (the coordinator's decode+fold overlaps worker wall-clock instead of
  /// serializing after the batch barrier).
  using LeaseReadyFn =
      std::function<void(std::size_t start, std::size_t count)>;

  /// Simulate `batch` (global indices [base, base+batch.size())) across the
  /// worker pool. artifacts[i] receives test base+i's artifact; the vector
  /// must already have batch.size() slots. Throws when every worker is
  /// lost.
  void run_batch(const std::vector<core::Program>& batch, std::uint64_t base,
                 std::vector<core::TestArtifact>& artifacts,
                 const LeaseReadyFn& on_ready = {});

  const CoordinatorStats& stats() const { return stats_; }
  std::size_t live_workers() const;

  /// Tests per lease for this config: cfg.dist.lease_tests, or the
  /// ceil(batch / 2*procs) default, clamped to [1, batch_size].
  static std::size_t effective_lease_tests(const core::CampaignConfig& cfg);

 private:
  struct WorkerProc {
    pid_t pid = -1;
    FrameChannel chan;
    bool alive = false;
    /// Outstanding leases, FIFO (workers serve strictly in order, so
    /// results must arrive front-first). Capped at two: the second lease
    /// double-buffers — it sits in the worker's socket so the worker rolls
    /// straight into it while the coordinator decodes and folds the
    /// previous result, instead of idling a round-trip per lease.
    std::vector<std::size_t> leases;
    std::int64_t last_progress_ms = 0;  // steady ms of last assign/result
  };

  void spawn_worker(std::size_t index);
  /// Close, kill, reap; re-queues the outstanding lease if any.
  void lose_worker(std::size_t index, const std::string& why,
                   std::vector<std::size_t>* requeue);
  void maybe_fire_kill_injection();

  core::CampaignConfig cfg_;
  bool use_suite_ = false;
  std::size_t lease_tests_ = 1;
  std::vector<WorkerProc> workers_;
  CoordinatorStats stats_;
  std::size_t results_folded_ = 0;
  bool kill_fired_ = false;
};

}  // namespace chatfuzz::dist
