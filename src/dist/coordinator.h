// Coordinator of the distributed campaign subsystem: owns a fleet of worker
// peers (local socketpair children, or TCP dial-ins that may join and
// REJOIN mid-campaign), splits every batch into fixed-size test-index
// leases, and collects one TestArtifact per test back into the batch's
// canonical slots. The campaign engine then folds those artifacts exactly
// as it folds thread-pool artifacts — which is the whole determinism story:
// the coordinator changes WHERE tests run, never what is folded or in what
// order, so results, coverage DB bytes, mismatch DB bytes and corpus-store
// bytes are bit-identical to a single-process run for any process count,
// worker thread count, lease schedule — and any fault schedule.
//
// Fault tolerance: a worker that disconnects (EOF/SIGKILL/crash/wire
// fault), goes silent past the heartbeat window (dead host), or keeps
// heartbeating without ever completing a lease (hung host) is dropped and
// its outstanding leases re-issue to survivors; the three causes are
// counted separately. A lease is folded exactly once — reassignment only
// ever happens after the original worker's channel is closed, so a
// duplicate result cannot arrive. On the TCP transport a dropped worker
// redials with capped exponential backoff and comes back as a fresh peer;
// persistently slow hosts keep working but lose their double-buffer slot.
// Only when every peer is gone AND nobody redials within reconnect_wait_ms
// does the batch (and campaign) fail with std::runtime_error.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/sim_worker.h"
#include "dist/fault.h"
#include "dist/protocol.h"
#include "dist/transport.h"

namespace chatfuzz::dist {

/// Observability counters (tests assert on these; benches report them).
struct CoordinatorStats {
  std::size_t workers_spawned = 0;   // completed handshakes (reconnects too)
  std::size_t workers_lost = 0;      // = the three lost_* causes below
  std::size_t leases_issued = 0;     // first-time assignments
  std::size_t leases_reissued = 0;   // reassignments after a lost worker
  std::size_t peers_accepted = 0;    // TCP accepts, initial + redials
  std::size_t peers_rejected = 0;    // refused at handshake (token/version/
                                     // config fingerprint/role)
  std::size_t lost_disconnect = 0;   // EOF, wire fault, protocol violation
  std::size_t lost_no_progress = 0;  // hung: heartbeats fine, no results
  std::size_t lost_no_heartbeat = 0; // dead: silence past heartbeat window
  std::size_t heartbeats_seen = 0;
  std::size_t slow_demotions = 0;    // double-buffer slots revoked
};

class Coordinator {
 public:
  /// Brings up the transport (spawn and/or listen+accept) and handshakes
  /// the initial fleet. Throws std::runtime_error when no worker comes up.
  Coordinator(const core::CampaignConfig& cfg, bool use_suite);
  /// Sends shutdown to survivors and reaps every spawned child.
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Ready notification for the engine's incremental fold: artifact slots
  /// [start, start+count) are filled AND every slot before them has already
  /// been announced — calls arrive in canonical order with no gaps, so the
  /// engine folds lease results while later leases are still simulating
  /// (the coordinator's decode+fold overlaps worker wall-clock instead of
  /// serializing after the batch barrier).
  using LeaseReadyFn =
      std::function<void(std::size_t start, std::size_t count)>;

  /// Simulate `batch` (global indices [base, base+batch.size())) across the
  /// worker pool. artifacts[i] receives test base+i's artifact; the vector
  /// must already have batch.size() slots. Throws when every worker is
  /// lost and nobody reconnects in time.
  void run_batch(const std::vector<core::Program>& batch, std::uint64_t base,
                 std::vector<core::TestArtifact>& artifacts,
                 const LeaseReadyFn& on_ready = {});

  const CoordinatorStats& stats() const { return stats_; }
  std::size_t live_workers() const;

  /// Fleet telemetry for the --stats NDJSON stream: appends the
  /// coordinator's own counters (fleet.leases_issued, fleet.lost_*, ...)
  /// and the per-worker obs-registry snapshots aggregated by name
  /// (fleet.worker.<metric>, summed across peers). Also fires a
  /// kStatsRequest at every live worker so the NEXT snapshot is fresh —
  /// replies are absorbed by run_batch's poll loop out-of-band, exactly
  /// like heartbeats. Observation-only.
  void fleet_metrics(std::vector<std::pair<std::string, double>>* out);
  /// Wire faults the injector has fired so far (0 when injection is off).
  std::size_t faults_injected() const {
    return injector_ ? injector_->injected() : 0;
  }

  /// Tests per lease for this config: cfg.dist.lease_tests, or the
  /// ceil(batch / 2*procs) default, clamped to [1, batch_size].
  static std::size_t effective_lease_tests(const core::CampaignConfig& cfg);

 private:
  struct WorkerPeer {
    std::unique_ptr<Channel> chan;
    pid_t child_pid = -1;       // local child behind this channel, if any
    std::int64_t hello_pid = 0; // pid the worker reported in its hello
    bool alive = false;
    /// Outstanding leases, FIFO (workers serve strictly in order, so
    /// results must arrive front-first). Capped at two: the second lease
    /// double-buffers — it sits in the worker's socket so the worker rolls
    /// straight into it while the coordinator decodes and folds the
    /// previous result, instead of idling a round-trip per lease.
    struct Hold {
      std::size_t lease = 0;
      std::int64_t issued_ms = 0;
    };
    std::vector<Hold> leases;
    std::int64_t last_progress_ms = 0;   // steady ms of last assign/result
    std::int64_t last_heartbeat_ms = 0;  // steady ms of last frame of ANY kind
    /// Completion-time EMA for slow-host detection. Scheduling only: a
    /// demoted worker still gets leases, just never two at once.
    double ema_lease_ms = 0.0;
    std::size_t ema_samples = 0;
    bool demoted = false;
    std::uint64_t results = 0;  // lease results folded from this peer
    /// Latest kStatsReply metric snapshot from this worker (telemetry).
    std::vector<std::pair<std::string, double>> last_metrics;
  };

  enum class LossCause { kDisconnect, kNoProgress, kNoHeartbeat };

  /// Handshake one transport peer into the fleet (wraps the channel with
  /// the fault injector when armed). Returns false when the peer was
  /// rejected or the handshake failed.
  bool add_peer(Peer peer, int handshake_timeout_ms);
  /// Drain the transport's pending accepts (nonblocking).
  void accept_pending();
  /// Block up to `window_ms` waiting for a dial-in to restore the fleet.
  void await_reconnect(int window_ms);
  /// Close, classify, log (one structured line), re-queue held leases.
  void lose_worker(std::size_t index, LossCause cause, const std::string& why,
                   std::vector<std::size_t>* requeue);
  /// Double-buffer depth for this worker: 1 when demoted as slow, 2 else.
  std::size_t allowed_depth(std::size_t index) const;
  void note_lease_done(WorkerPeer& w, std::int64_t now);
  void maybe_fire_kill_injection();
  std::int64_t effective_heartbeat_timeout_ms() const;
  /// The kStatus handshake answer: fleet table + aggregated metrics.
  StatsReplyMsg build_fleet_reply();

  core::CampaignConfig cfg_;
  bool use_suite_ = false;
  std::size_t lease_tests_ = 1;
  std::unique_ptr<Transport> transport_;
  std::shared_ptr<FaultInjector> injector_;
  std::uint64_t next_channel_ordinal_ = 0;
  std::vector<WorkerPeer> workers_;
  CoordinatorStats stats_;
  std::size_t results_folded_ = 0;
  bool kill_fired_ = false;
  bool hang_sent_ = false;
};

}  // namespace chatfuzz::dist
