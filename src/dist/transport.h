// Transport seam of the distributed campaign subsystem: where worker
// connections come from, abstracted away from the coordinator's scheduling
// logic. Two backends:
//
//   SpawnTransport  the PR-5 path — posix_spawn children of this binary
//                   over socketpairs, one per worker slot. No late joiners:
//                   a lost child stays lost.
//   TcpTransport    bind+listen on cfg.dist.listen; spawn num_procs local
//                   children that dial the listener back over loopback
//                   (self-contained fleets for tests/CI), and accept
//                   external `chatfuzz worker --connect` dial-ins — before
//                   AND during the campaign, which is what makes worker
//                   reconnect-with-backoff work: a reconnected worker is
//                   just a freshly accepted peer.
//
// The Channel interface is the same seam one level down: FrameChannel is
// the concrete socket implementation, and dist::FaultyChannel (fault.h)
// wraps any Channel to inject wire faults for the dist_fault suite.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "dist/protocol.h"

namespace chatfuzz::dist {

/// One framed peer link. Implementations must surface every failure as a
/// ser::Status (never a crash), exactly like FrameChannel.
class Channel {
 public:
  virtual ~Channel() = default;
  virtual bool valid() const = 0;
  /// fd to include in a poll() set for readability. A wrapper returns its
  /// inner channel's fd — whatever trickery it plays happens per frame.
  virtual int poll_fd() const = 0;
  virtual void close() = 0;
  virtual ser::Status send_frame(const std::string& payload,
                                 int timeout_ms = -1) = 0;
  virtual ser::Status recv_frame(std::string* payload, int timeout_ms = -1) = 0;
};

/// The plain FrameChannel behind the Channel seam.
class SocketChannel final : public Channel {
 public:
  SocketChannel() = default;
  explicit SocketChannel(int fd) : chan_(fd) {}
  bool valid() const override { return chan_.valid(); }
  int poll_fd() const override { return chan_.fd(); }
  void close() override { chan_.close(); }
  ser::Status send_frame(const std::string& payload,
                         int timeout_ms = -1) override {
    return chan_.send_frame(payload, timeout_ms);
  }
  ser::Status recv_frame(std::string* payload, int timeout_ms = -1) override {
    return chan_.recv_frame(payload, timeout_ms);
  }

 private:
  FrameChannel chan_;
};

/// A connected (not yet handshaked) peer as handed to the coordinator.
struct Peer {
  std::unique_ptr<Channel> chan;
  /// Local child pid when this transport spawned the process behind the
  /// channel; -1 for TCP dial-ins (the worker reports its pid in the hello,
  /// but a remote pid is not killable — only the channel is).
  pid_t child_pid = -1;
};

class Transport {
 public:
  virtual ~Transport() = default;
  /// Bring up the initial fleet: spawn children and/or wait for dial-ins.
  /// May return fewer peers than configured (each missing one is logged);
  /// deciding whether zero is fatal is the caller's job.
  virtual std::vector<Peer> start() = 0;
  /// fd to poll for late arrivals, or -1 when the backend cannot accept any.
  virtual int listen_fd() const { return -1; }
  /// Accept one pending late peer without blocking; nullopt when none.
  virtual std::optional<Peer> accept_peer() { return std::nullopt; }

  /// Every child process this transport spawned (reconnecting TCP workers
  /// keep their pid across redials; the list never shrinks).
  const std::vector<pid_t>& child_pids() const { return children_; }
  /// Reap all spawned children: a shared grace window for voluntary exits
  /// (the coordinator has already sent shutdown frames / closed channels),
  /// then SIGKILL for the stragglers. Idempotent; never hangs.
  void reap_children(int grace_ms);

 protected:
  /// posix_spawn `exe` with `args` (argv[0] = exe). Returns -1 on failure.
  pid_t spawn(const std::string& exe, const std::vector<std::string>& args);

  std::vector<pid_t> children_;
};

/// Socketpair backend (cfg.dist.listen empty).
class SpawnTransport final : public Transport {
 public:
  explicit SpawnTransport(const core::CampaignConfig& cfg);
  std::vector<Peer> start() override;

 private:
  std::size_t num_procs_;
  std::string worker_exe_;
  std::string token_;
};

/// TCP backend (cfg.dist.listen = "host:port"). Throws std::runtime_error
/// when the listener cannot be bound.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(const core::CampaignConfig& cfg);
  ~TcpTransport() override;
  std::vector<Peer> start() override;
  int listen_fd() const override { return listen_fd_; }
  std::optional<Peer> accept_peer() override;
  std::uint16_t port() const { return port_; }

 private:
  std::size_t num_procs_;
  std::string worker_exe_;
  std::string token_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Backend selection: TcpTransport when cfg.dist.listen is set, the
/// socketpair SpawnTransport otherwise.
std::unique_ptr<Transport> make_transport(const core::CampaignConfig& cfg);

// ---- TCP plumbing (shared with the worker / federation dial side) ---------

struct HostPort {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Parse "host:port" (IPv4 dotted quad, "localhost", or empty host for
/// 0.0.0.0). Port 0 is allowed (ephemeral bind). nullopt on syntax errors.
std::optional<HostPort> parse_hostport(const std::string& s);

/// Bind+listen; returns the fd (CLOEXEC, SO_REUSEADDR, nonblocking accepts)
/// or -1 with *err set.
int tcp_listen(const HostPort& hp, std::string* err);
/// Connect with a bounded wait; returns the fd (TCP_NODELAY + keepalive,
/// so a vanished peer is detected even while blocked in a frame read) or
/// -1 with *err set.
int tcp_connect(const HostPort& hp, int timeout_ms, std::string* err);
/// The locally bound port of a listening fd (resolves an ephemeral :0).
std::uint16_t bound_port(int listen_fd);

}  // namespace chatfuzz::dist
