#include "dist/worker.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/sim_worker.h"
#include "dist/protocol.h"

namespace chatfuzz::dist {

namespace {

int fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "chatfuzz worker: %s%s%s\n", what,
               detail.empty() ? "" : ": ", detail.c_str());
  return 1;
}

/// Run one lease across the stack pool via the shared span runner
/// (core::run_span: increasing in-lease claim order per stack). Because
/// every stack's ctrl dedup set is reset at the lease boundary first, the
/// artifacts cannot under-report a state some earlier (possibly
/// reassigned-away) lease saw. Returns false on a simulation exception
/// (reported to stderr).
bool run_lease(const core::CampaignConfig& cfg, bool use_suite,
               std::vector<std::unique_ptr<core::SimStack>>& stacks,
               const LeaseMsg& lease,
               std::vector<core::TestArtifact>& artifacts) {
  artifacts.resize(lease.tests.size());
  for (auto& stack : stacks) {
    for (auto& dut : stack->duts) dut->ctrl_cov().reset();
  }
  try {
    core::run_span(stacks, cfg, use_suite, lease.tests.data(),
                   lease.tests.size(), lease.base_index, artifacts.data());
  } catch (const std::exception& e) {
    fail("simulation failed", e.what());
    return false;
  } catch (...) {
    fail("simulation failed", "unknown exception");
    return false;
  }
  return true;
}

}  // namespace

int worker_main(int fd) {
  FrameChannel chan(fd);

  HelloMsg hello;
  hello.pid = static_cast<std::uint64_t>(::getpid());
  ser::Status s = chan.send_frame(encode_hello(hello));
  if (!s.ok()) return fail("cannot greet coordinator", s.message());

  std::string payload;
  s = chan.recv_frame(&payload);
  if (!s.ok()) return fail("no config from coordinator", s.message());
  ConfigMsg config;
  s = decode_config(payload, &config);
  if (!s.ok()) return fail("bad config", s.message());
  if (config.protocol != kProtocolVersion) {
    return fail("protocol version mismatch",
                "coordinator speaks v" + std::to_string(config.protocol));
  }
  core::CampaignConfig& cfg = config.cfg;
  // Re-apply the per-run knobs write_campaign_config excludes: the dispatch
  // engine, and BBV collection — run_one() keys collection off a non-empty
  // bbv_path, so the worker sets the "collect without writing" sentinel (the
  // coordinator owns the file; workers only ship BBVs inside artifacts).
  cfg.superblocks = config.superblocks;
  cfg.bbv_path = config.collect_bbv ? "-" : "";
  const bool use_suite = config.use_suite;

  // Thread pool sizing mirrors the in-process engine: num_workers threads
  // (0 = hardware concurrency), clamped to the widest lease this campaign
  // will ever hand out — wider stacks would be dead weight.
  const std::size_t requested = std::max<std::size_t>(
      1, cfg.num_workers != 0 ? cfg.num_workers
                              : std::thread::hardware_concurrency());
  const std::size_t num_stacks = std::min(
      requested, std::max<std::size_t>(1, config.max_lease_tests));
  std::vector<std::unique_ptr<core::SimStack>> stacks;
  stacks.reserve(num_stacks);
  try {
    for (std::size_t i = 0; i < num_stacks; ++i) {
      stacks.push_back(std::make_unique<core::SimStack>(cfg, use_suite));
    }
  } catch (const std::exception& e) {
    return fail("cannot build simulation stacks", e.what());
  }

  LeaseMsg lease;
  LeaseResultMsg result;
  bool hang_armed = config.debug_hang;
  for (;;) {
    s = chan.recv_frame(&payload);
    // EOF here means the coordinator died (or dropped us); there is nobody
    // left to report to, so just exit nonzero.
    if (!s.ok()) return fail("lost coordinator", s.message());
    switch (peek_type(payload)) {
      case MsgType::kShutdown:
        return 0;
      case MsgType::kLease: {
        s = decode_lease(payload, &lease);
        if (!s.ok()) return fail("bad lease", s.message());
        if (hang_armed) {
          // Fault injection: simulate a wedged worker. The coordinator's
          // lease timeout must kill us and re-issue the lease.
          ::pause();
          return 1;
        }
        result.lease_id = lease.lease_id;
        if (!run_lease(cfg, use_suite, stacks, lease, result.artifacts)) {
          return 1;
        }
        s = chan.send_frame(encode_lease_result(result));
        if (!s.ok()) return fail("cannot return lease result", s.message());
        break;
      }
      default:
        return fail("unexpected frame from coordinator", "");
    }
  }
}

std::optional<int> maybe_worker_main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "worker") != 0) return std::nullopt;
  if (argc != 3) {
    return fail("usage: worker <fd>",
                "(internal mode; spawned by fuzz --procs)");
  }
  char* end = nullptr;
  const long fd = std::strtol(argv[2], &end, 10);
  if (end == argv[2] || *end != '\0' || fd < 0) {
    return fail("worker fd must be a non-negative integer", argv[2]);
  }
  return worker_main(static_cast<int>(fd));
}

}  // namespace chatfuzz::dist
