#include "dist/worker.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/sim_worker.h"
#include "dist/protocol.h"
#include "dist/transport.h"
#include "obs/metrics.h"
#include "util/log.h"
#include "util/rng.h"

namespace chatfuzz::dist {

namespace {

int fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "chatfuzz worker: %s%s%s\n", what,
               detail.empty() ? "" : ": ", detail.c_str());
  return 1;
}

/// Run one lease across the stack pool via the shared span runner
/// (core::run_span: increasing in-lease claim order per stack). Because
/// every stack's ctrl dedup set is reset at the lease boundary first, the
/// artifacts cannot under-report a state some earlier (possibly
/// reassigned-away) lease saw. Returns false on a simulation exception
/// (reported to stderr).
bool run_lease(const core::CampaignConfig& cfg, bool use_suite,
               std::vector<std::unique_ptr<core::SimStack>>& stacks,
               const LeaseMsg& lease,
               std::vector<core::TestArtifact>& artifacts) {
  artifacts.resize(lease.tests.size());
  for (auto& stack : stacks) {
    for (auto& dut : stack->duts) dut->ctrl_cov().reset();
  }
  try {
    core::run_span(stacks, cfg, use_suite, lease.tests.data(),
                   lease.tests.size(), lease.base_index, artifacts.data());
  } catch (const std::exception& e) {
    fail("simulation failed", e.what());
    return false;
  } catch (...) {
    fail("simulation failed", "unknown exception");
    return false;
  }
  return true;
}

/// Beats encode_heartbeat over the shared channel every period until
/// stopped. Sends share one mutex with the main loop's result sends (one
/// thread sends OR the other; concurrent send+recv on a socket is fine).
/// The thread is what keeps a HUNG worker (wedged in simulation — or in
/// the deliberate debug_hang pause) visibly distinct from a DEAD one.
class HeartbeatThread {
 public:
  HeartbeatThread(FrameChannel& chan, std::mutex& send_mu,
                  std::uint32_t period_ms,
                  const std::atomic<std::uint64_t>& served) {
    if (period_ms == 0) return;
    thread_ = std::thread([this, &chan, &send_mu, period_ms, &served] {
      while (!stop_.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(period_ms));
        if (stop_.load(std::memory_order_relaxed)) break;
        HeartbeatMsg hb;
        hb.served = served.load(std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(send_mu);
        if (!chan.valid()) break;
        // Short bound: a heartbeat that cannot leave is a dead link, and
        // the main loop's recv will notice; never block teardown on it.
        if (!chan.send_frame(encode_heartbeat(hb), 1'000).ok()) break;
      }
    });
  }
  ~HeartbeatThread() {
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

enum class ServeOutcome {
  kShutdown,   // clean end of campaign
  kRejected,   // coordinator refused us — fatal, do not redial
  kTransient,  // connection-level failure — redial (TCP mode)
};

/// One full serve session over a connected channel: handshake, then leases
/// until shutdown or failure. `*handshook` reports whether the config
/// arrived (the redial loop resets its failure counter on it).
ServeOutcome serve(FrameChannel& chan, const WorkerOptions& opts,
                   bool* handshook) {
  *handshook = false;

  HelloMsg hello;
  hello.pid = static_cast<std::uint64_t>(::getpid());
  hello.role = static_cast<std::uint8_t>(PeerRole::kWorker);
  hello.token = opts.token;
  ser::Status s = chan.send_frame(encode_hello(hello));
  if (!s.ok()) {
    fail("cannot greet coordinator", s.message());
    return ServeOutcome::kTransient;
  }

  std::string payload;
  s = chan.recv_frame(&payload);
  if (!s.ok()) {
    fail("no config from coordinator", s.message());
    return ServeOutcome::kTransient;
  }
  if (peek_type(payload) == MsgType::kReject) {
    RejectMsg reject;
    if (decode_reject(payload, &reject).ok()) {
      fail("rejected by coordinator", reject.reason);
    } else {
      fail("rejected by coordinator", "");
    }
    return ServeOutcome::kRejected;
  }
  ConfigMsg config;
  s = decode_config(payload, &config);
  if (!s.ok()) {
    fail("bad config", s.message());
    return ServeOutcome::kTransient;
  }
  if (config.protocol != kProtocolVersion) {
    fail("protocol version mismatch",
         "coordinator speaks v" + std::to_string(config.protocol));
    return ServeOutcome::kRejected;
  }
  // Fingerprint the config with OUR serializer, before touching it: if the
  // bytes round-tripped differently than the coordinator wrote them, the
  // two binaries disagree about the config layout and every downstream
  // determinism guarantee is off — refuse the pairing.
  if (config.config_crc != 0 &&
      config_fingerprint(config.cfg) != config.config_crc) {
    fail("config fingerprint mismatch",
         "mixed binaries with drifted serializers");
    return ServeOutcome::kRejected;
  }
  *handshook = true;
  set_log_role("worker " + std::to_string(config.worker_index));

  core::CampaignConfig& cfg = config.cfg;
  // Re-apply the per-run knobs write_campaign_config excludes: the dispatch
  // engine, and BBV collection — run_one() keys collection off a non-empty
  // bbv_path, so the worker sets the "collect without writing" sentinel (the
  // coordinator owns the file; workers only ship BBVs inside artifacts).
  cfg.superblocks = config.superblocks;
  cfg.bbv_path = config.collect_bbv ? "-" : "";
  const bool use_suite = config.use_suite;

  // Thread pool sizing mirrors the in-process engine: num_workers threads
  // (0 = hardware concurrency), clamped to the widest lease this campaign
  // will ever hand out — wider stacks would be dead weight.
  const std::size_t requested = std::max<std::size_t>(
      1, cfg.num_workers != 0 ? cfg.num_workers
                              : std::thread::hardware_concurrency());
  const std::size_t num_stacks = std::min(
      requested, std::max<std::size_t>(1, config.max_lease_tests));
  std::vector<std::unique_ptr<core::SimStack>> stacks;
  stacks.reserve(num_stacks);
  try {
    for (std::size_t i = 0; i < num_stacks; ++i) {
      stacks.push_back(std::make_unique<core::SimStack>(cfg, use_suite));
    }
  } catch (const std::exception& e) {
    fail("cannot build simulation stacks", e.what());
    return ServeOutcome::kTransient;
  }

  std::mutex send_mu;
  std::atomic<std::uint64_t> served{0};
  HeartbeatThread heartbeat(chan, send_mu, config.heartbeat_ms, served);

  LeaseMsg lease;
  LeaseResultMsg result;
  bool hang_armed = config.debug_hang;
  for (;;) {
    s = chan.recv_frame(&payload);
    // EOF here means the coordinator died or dropped us. In socketpair
    // mode there is nobody left to report to; in TCP mode the caller
    // redials.
    if (!s.ok()) {
      fail("lost coordinator", s.message());
      return ServeOutcome::kTransient;
    }
    switch (peek_type(payload)) {
      case MsgType::kShutdown:
        return ServeOutcome::kShutdown;
      case MsgType::kStatsRequest: {
        // Telemetry: snapshot this process's obs registry (sim.* counters
        // drained from the stacks by run_one) and send it back. Shares the
        // send mutex with results and heartbeats; short bound, best-effort
        // — a failed stats send is the recv path's problem to notice.
        StatsReplyMsg sr;
        sr.metrics = obs::registry().snapshot();
        std::lock_guard<std::mutex> lock(send_mu);
        (void)chan.send_frame(encode_stats_reply(sr), 1'000);
        break;
      }
      case MsgType::kLease: {
        s = decode_lease(payload, &lease);
        if (!s.ok()) {
          fail("bad lease", s.message());
          return ServeOutcome::kTransient;
        }
        if (hang_armed) {
          // Fault injection: simulate a wedged worker. The MAIN thread
          // stalls forever while the heartbeat thread keeps beating —
          // exactly the hung-not-dead signature the coordinator's two
          // timeouts exist to tell apart. Never returns.
          ::pause();
          return ServeOutcome::kTransient;
        }
        result.lease_id = lease.lease_id;
        if (!run_lease(cfg, use_suite, stacks, lease, result.artifacts)) {
          return ServeOutcome::kTransient;
        }
        {
          std::lock_guard<std::mutex> lock(send_mu);
          s = chan.send_frame(encode_lease_result(result));
        }
        if (!s.ok()) {
          fail("cannot return lease result", s.message());
          return ServeOutcome::kTransient;
        }
        served.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      default:
        fail("unexpected frame from coordinator", "");
        return ServeOutcome::kTransient;
    }
  }
}

}  // namespace

int worker_main(int fd, const WorkerOptions& opts) {
  FrameChannel chan(fd);
  bool handshook = false;
  switch (serve(chan, opts, &handshook)) {
    case ServeOutcome::kShutdown: return 0;
    case ServeOutcome::kRejected: return 2;
    case ServeOutcome::kTransient: return 1;
  }
  return 1;
}

int worker_connect_main(const std::string& hostport,
                        const WorkerOptions& opts) {
  const auto hp = parse_hostport(hostport);
  if (!hp) {
    return fail("bad --connect address (want host:port)", hostport);
  }
  // Capped exponential backoff + jitter. The jitter stream is seeded from
  // the pid — reconnect pacing is pure scheduling, campaign determinism
  // never depends on it, and distinct workers must NOT thunder in lockstep.
  Rng jitter(0x9e3779b97f4a7c15ull ^
             static_cast<std::uint64_t>(::getpid()));
  std::uint32_t backoff_ms = 50;
  int failures = 0;
  for (;;) {
    std::string err;
    const int fd = tcp_connect(*hp, 5'000, &err);
    if (fd < 0) {
      fail("cannot reach coordinator", err);
    } else {
      FrameChannel chan(fd);
      bool handshook = false;
      const ServeOutcome outcome = serve(chan, opts, &handshook);
      if (outcome == ServeOutcome::kShutdown) return 0;
      if (outcome == ServeOutcome::kRejected) return 2;
      if (handshook) {
        // The fleet was healthy until just now: treat the next dial as a
        // fresh start.
        failures = 0;
        backoff_ms = 50;
      }
    }
    if (++failures > opts.max_retries) {
      return fail("giving up after repeated connection failures",
                  std::to_string(failures - 1) + " consecutive");
    }
    // Sleep backoff ± 25% jitter, then double up to the cap.
    const std::uint32_t spread = std::max<std::uint32_t>(1, backoff_ms / 2);
    const std::uint32_t wait =
        backoff_ms - backoff_ms / 4 +
        static_cast<std::uint32_t>(jitter.below(spread));
    std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    backoff_ms = std::min<std::uint32_t>(backoff_ms * 2, 2'000);
  }
}

std::optional<int> maybe_worker_main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "worker") != 0) return std::nullopt;
  WorkerOptions opts;
  std::string connect;
  long fd = -1;
  bool have_fd = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect = argv[++i];
    } else if (arg == "--token" && i + 1 < argc) {
      opts.token = argv[++i];
    } else if (arg == "--retries" && i + 1 < argc) {
      opts.max_retries = std::atoi(argv[++i]);
    } else if (!have_fd && arg.rfind("--", 0) != 0) {
      char* end = nullptr;
      fd = std::strtol(argv[i], &end, 10);
      if (end == argv[i] || *end != '\0' || fd < 0) {
        return fail("worker fd must be a non-negative integer", argv[i]);
      }
      have_fd = true;
    } else {
      return fail("usage: worker <fd> [--token t] | worker --connect "
                  "host:port [--token t] [--retries n]",
                  arg);
    }
  }
  if (!connect.empty() && have_fd) {
    return fail("worker takes either <fd> or --connect, not both", "");
  }
  if (!connect.empty()) return worker_connect_main(connect, opts);
  if (have_fd) return worker_main(static_cast<int>(fd), opts);
  return fail("usage: worker <fd> [--token t] | worker --connect host:port "
              "[--token t] [--retries n]",
              "(internal mode; spawned by fuzz --procs / --listen)");
}

}  // namespace chatfuzz::dist
