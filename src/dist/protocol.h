// Wire protocol of the distributed campaign subsystem: length-prefixed,
// CRC'd frames over a connected stream socket (the coordinator/worker
// socketpair), with versioned messages encoded through util/serialize.
//
//   frame   := [magic u32][payload_len u32][crc32(payload) u32][payload]
//   payload := [msg type u8][fields...]
//
// Contract: a malformed frame — wrong magic, absurd length, CRC failure,
// short read, unknown message type, truncated fields — surfaces as a
// ser::Status error (or a failed Reader), NEVER as a crash or an
// out-of-bounds read; every decoder bounds-checks counts against the bytes
// actually present. The protocol version travels in the hello/config
// handshake and is exact-match: a coordinator refuses workers speaking
// anything else.
//
// Message flow (coordinator <-> worker):
//   worker -> kHello            once, immediately after exec
//   coord  -> kConfig           campaign config + per-worker knobs
//   coord  -> kLease            a [base, base+n) slice of a batch, with
//                               the test programs (the generator lives on
//                               the coordinator; workers only simulate)
//   worker -> kLeaseResult      per-test artifacts: sparse coverage deltas,
//                               metric bins, ctrl states, mismatch records
//                               with signatures, cycle/step stats — and no
//                               trace or test bytes (the coordinator keeps
//                               the batch it generated, so result frames
//                               stay small)
//   coord  -> kShutdown         clean exit at campaign end
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/sim_worker.h"
#include "corpus/store.h"
#include "util/serialize.h"

namespace chatfuzz::dist {

// v2: config frames carry the superblock/BBV knobs; artifact encodings
// carry the per-test basic-block vector (empty unless collection is on).
// v3: the campaign config inside kConfig frames carries the multi-DUT list
// and the out-of-order backend fields (core::write_campaign_config v4
// layout) — a v2 worker would build the wrong simulation stacks, so the
// version gate must refuse the pairing.
// v4: the multi-host handshake. Hellos carry an auth token and a peer role
// (campaign worker vs. federation client); configs carry a fingerprint
// (CRC) of the coordinator's own write_campaign_config bytes so mixed
// binaries whose serializers drifted are refused even when the version
// numbers agree; kReject tells a refused peer WHY before the close (so it
// can stop redialing); kHeartbeat carries worker liveness between results;
// kFed* carry corpus federation deltas.
// v5: fleet introspection. A kStatus-role hello asks for one kStatsReply
// (the coordinator's aggregated fleet state) and the connection closes —
// the `chatfuzz fleet status` CLI; kStatsRequest asks a worker to answer
// with a kStatsReply snapshot of its own obs metrics registry, which the
// coordinator folds into the --stats NDJSON stream. Observation-only: no
// stats frame ever carries or mutates campaign state.
inline constexpr std::uint32_t kProtocolVersion = 5;
inline constexpr std::uint32_t kFrameMagic = 0x4346444D;  // "CFDM"
/// Upper bound on one frame's payload; a length prefix beyond this is
/// treated as corruption (it would otherwise become an allocation bomb).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 28;  // 256 MiB

enum class MsgType : std::uint8_t {
  kInvalid = 0,
  kHello = 1,
  kConfig = 2,
  kLease = 3,
  kLeaseResult = 4,
  kShutdown = 5,
  kReject = 6,
  kHeartbeat = 7,
  kFedRequest = 8,
  kFedDelta = 9,
  kFedAck = 10,
  kFedDone = 11,
  kStatsRequest = 12,
  kStatsReply = 13,
};

/// What a hello's sender wants from the connection.
enum class PeerRole : std::uint8_t { kWorker = 0, kFederate = 1, kStatus = 2 };

struct HelloMsg {
  std::uint32_t protocol = kProtocolVersion;
  std::uint64_t pid = 0;
  std::uint8_t role = static_cast<std::uint8_t>(PeerRole::kWorker);
  std::string token;  // must equal the listener's token (empty = open)
};

struct ConfigMsg {
  std::uint32_t protocol = kProtocolVersion;
  core::CampaignConfig cfg;        // simulation-relevant subset (see
                                   // core::write_campaign_config)
  bool use_suite = false;          // attach the toggle/FSM/statement suite
  std::uint64_t worker_index = 0;  // this worker's slot (diagnostics)
  std::uint64_t max_lease_tests = 1;  // cap for the worker's thread pool
  bool debug_hang = false;         // fault injection: stall on first lease
  // Per-run knobs that write_campaign_config deliberately excludes (they
  // are scheduling/persistence, not checkpoint state) but that workers must
  // still honor for the current run:
  bool superblocks = true;         // dispatch engine selection
  bool collect_bbv = false;        // record per-test BBVs into artifacts
  /// config_fingerprint() of cfg as the coordinator serialized it. The
  /// worker recomputes the fingerprint from its own decode and refuses the
  /// pairing on mismatch — catches layout drift between mixed builds that
  /// a bare version number cannot.
  std::uint32_t config_crc = 0;
  std::uint32_t heartbeat_ms = 0;  // worker heartbeat period (0 = off)
};

/// Why a peer is being turned away (sent instead of a config/ack; the
/// peer must treat it as fatal and stop redialing).
struct RejectMsg {
  std::string reason;
};

struct HeartbeatMsg {
  std::uint64_t served = 0;  // leases completed so far (diagnostics)
};

// ---- corpus federation ----------------------------------------------------
// One session = hello, kFedRequest, then either the client streams
// kFedDelta frames (push; each is acked) or the server does (pull), ended
// by kFedDone. Deltas are keyed by program content, so a re-push after a
// disconnect is idempotent: already-merged entries ack as kDuplicate.

enum class FedMode : std::uint8_t { kPush = 0, kPull = 1 };

struct FedRequestMsg {
  std::uint8_t mode = static_cast<std::uint8_t>(FedMode::kPush);
};

/// One coverage-attributed corpus entry in flight.
struct FedDeltaMsg {
  core::Program program;
  corpus::StoreEntryMeta meta;
};

enum class FedAckStatus : std::uint8_t {
  kMerged = 0,
  kDuplicate = 1,
  kCorrupt = 2,  // quarantined on the receiver, session continues
};

struct FedAckMsg {
  std::uint8_t status = static_cast<std::uint8_t>(FedAckStatus::kMerged);
  std::string detail;
};

struct FedDoneMsg {
  std::uint64_t count = 0;  // deltas the sender streamed
};

struct LeaseMsg {
  std::uint64_t lease_id = 0;
  std::uint64_t base_index = 0;    // global index of tests[0]
  std::vector<core::Program> tests;
};

struct LeaseResultMsg {
  std::uint64_t lease_id = 0;
  std::vector<core::TestArtifact> artifacts;  // one per leased test, in order
};

// ---- fleet introspection (v5) ---------------------------------------------

/// Live view of one peer as the coordinator sees it (kStatus replies).
struct PeerStatusEntry {
  std::uint64_t pid = 0;
  bool alive = false;
  bool demoted = false;          // exceeded the slow-peer EMA threshold
  std::uint32_t leases_held = 0; // outstanding right now
  std::uint64_t results = 0;     // lease results folded from this peer
  std::uint64_t heartbeat_age_ms = 0;  // since the last heartbeat (or ~0)
};

/// A metrics snapshot: name/value pairs from the sender's obs registry,
/// plus (coordinator -> status client only) the per-peer fleet table.
struct StatsReplyMsg {
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<PeerStatusEntry> peers;
};

/// Type tag of an encoded payload (kInvalid when empty).
MsgType peek_type(const std::string& payload);

/// CRC of `cfg` as write_campaign_config serializes it on THIS binary —
/// both handshake sides compute it independently; a mismatch means their
/// serializers disagree about the config layout.
std::uint32_t config_fingerprint(const core::CampaignConfig& cfg);

std::string encode_hello(const HelloMsg& msg);
std::string encode_config(const ConfigMsg& msg);
std::string encode_lease(const LeaseMsg& msg);
std::string encode_lease_result(const LeaseResultMsg& msg);
std::string encode_shutdown();
std::string encode_reject(const RejectMsg& msg);
std::string encode_heartbeat(const HeartbeatMsg& msg);
std::string encode_fed_request(const FedRequestMsg& msg);
std::string encode_fed_delta(const FedDeltaMsg& msg);
std::string encode_fed_ack(const FedAckMsg& msg);
std::string encode_fed_done(const FedDoneMsg& msg);
std::string encode_stats_request();
std::string encode_stats_reply(const StatsReplyMsg& msg);

/// Decoders verify the type tag, every field, and full consumption of the
/// payload. On error the out-param may be partially filled; the Status
/// carries the frame type, the payload byte offset where decoding stopped,
/// and what broke.
ser::Status decode_hello(const std::string& payload, HelloMsg* msg);
ser::Status decode_config(const std::string& payload, ConfigMsg* msg);
ser::Status decode_lease(const std::string& payload, LeaseMsg* msg);
ser::Status decode_lease_result(const std::string& payload,
                                LeaseResultMsg* msg);
ser::Status decode_reject(const std::string& payload, RejectMsg* msg);
ser::Status decode_heartbeat(const std::string& payload, HeartbeatMsg* msg);
ser::Status decode_fed_request(const std::string& payload, FedRequestMsg* msg);
ser::Status decode_fed_delta(const std::string& payload, FedDeltaMsg* msg);
ser::Status decode_fed_ack(const std::string& payload, FedAckMsg* msg);
ser::Status decode_fed_done(const std::string& payload, FedDoneMsg* msg);
ser::Status decode_stats_reply(const std::string& payload, StatsReplyMsg* msg);

/// Per-test artifact encoding (shared by result frames; exposed for tests).
void write_artifact(ser::Writer& w, const core::TestArtifact& art);
bool read_artifact(ser::Reader& r, core::TestArtifact& art);

// ---------------------------------------------------------------------------
// FrameChannel: frame transport over one connected stream-socket fd. Writes
// use send(MSG_NOSIGNAL) so a peer death yields a Status error instead of
// SIGPIPE; reads can carry a deadline (poll + partial-read resume) for
// hung-peer detection. Not thread-safe; each side owns its channel.
// ---------------------------------------------------------------------------
class FrameChannel {
 public:
  FrameChannel() = default;
  explicit FrameChannel(int fd) : fd_(fd) {}
  FrameChannel(FrameChannel&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  FrameChannel& operator=(FrameChannel&& o) noexcept;
  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;
  ~FrameChannel() { close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Send one complete frame around `payload`. `timeout_ms` < 0 blocks
  /// until the peer drains its socket or dies; otherwise a peer that stops
  /// reading for the whole window turns the stalled send into an error
  /// (the coordinator passes its hung-worker timeout here, so a wedged
  /// worker cannot hang it in send any more than in receive).
  ser::Status send_frame(const std::string& payload, int timeout_ms = -1);

  /// Receive one complete frame's payload. `timeout_ms` < 0 blocks until
  /// the peer delivers or dies; otherwise the whole frame must arrive
  /// within the window. EOF, timeout and corruption all return errors.
  ser::Status recv_frame(std::string* payload, int timeout_ms = -1);

 private:
  int fd_ = -1;
};

}  // namespace chatfuzz::dist
