// Wire protocol of the distributed campaign subsystem: length-prefixed,
// CRC'd frames over a connected stream socket (the coordinator/worker
// socketpair), with versioned messages encoded through util/serialize.
//
//   frame   := [magic u32][payload_len u32][crc32(payload) u32][payload]
//   payload := [msg type u8][fields...]
//
// Contract: a malformed frame — wrong magic, absurd length, CRC failure,
// short read, unknown message type, truncated fields — surfaces as a
// ser::Status error (or a failed Reader), NEVER as a crash or an
// out-of-bounds read; every decoder bounds-checks counts against the bytes
// actually present. The protocol version travels in the hello/config
// handshake and is exact-match: a coordinator refuses workers speaking
// anything else.
//
// Message flow (coordinator <-> worker):
//   worker -> kHello            once, immediately after exec
//   coord  -> kConfig           campaign config + per-worker knobs
//   coord  -> kLease            a [base, base+n) slice of a batch, with
//                               the test programs (the generator lives on
//                               the coordinator; workers only simulate)
//   worker -> kLeaseResult      per-test artifacts: sparse coverage deltas,
//                               metric bins, ctrl states, mismatch records
//                               with signatures, cycle/step stats — and no
//                               trace or test bytes (the coordinator keeps
//                               the batch it generated, so result frames
//                               stay small)
//   coord  -> kShutdown         clean exit at campaign end
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/sim_worker.h"
#include "util/serialize.h"

namespace chatfuzz::dist {

// v2: config frames carry the superblock/BBV knobs; artifact encodings
// carry the per-test basic-block vector (empty unless collection is on).
// v3: the campaign config inside kConfig frames carries the multi-DUT list
// and the out-of-order backend fields (core::write_campaign_config v4
// layout) — a v2 worker would build the wrong simulation stacks, so the
// version gate must refuse the pairing.
inline constexpr std::uint32_t kProtocolVersion = 3;
inline constexpr std::uint32_t kFrameMagic = 0x4346444D;  // "CFDM"
/// Upper bound on one frame's payload; a length prefix beyond this is
/// treated as corruption (it would otherwise become an allocation bomb).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 28;  // 256 MiB

enum class MsgType : std::uint8_t {
  kInvalid = 0,
  kHello = 1,
  kConfig = 2,
  kLease = 3,
  kLeaseResult = 4,
  kShutdown = 5,
};

struct HelloMsg {
  std::uint32_t protocol = kProtocolVersion;
  std::uint64_t pid = 0;
};

struct ConfigMsg {
  std::uint32_t protocol = kProtocolVersion;
  core::CampaignConfig cfg;        // simulation-relevant subset (see
                                   // core::write_campaign_config)
  bool use_suite = false;          // attach the toggle/FSM/statement suite
  std::uint64_t worker_index = 0;  // this worker's slot (diagnostics)
  std::uint64_t max_lease_tests = 1;  // cap for the worker's thread pool
  bool debug_hang = false;         // fault injection: stall on first lease
  // Per-run knobs that write_campaign_config deliberately excludes (they
  // are scheduling/persistence, not checkpoint state) but that workers must
  // still honor for the current run:
  bool superblocks = true;         // dispatch engine selection
  bool collect_bbv = false;        // record per-test BBVs into artifacts
};

struct LeaseMsg {
  std::uint64_t lease_id = 0;
  std::uint64_t base_index = 0;    // global index of tests[0]
  std::vector<core::Program> tests;
};

struct LeaseResultMsg {
  std::uint64_t lease_id = 0;
  std::vector<core::TestArtifact> artifacts;  // one per leased test, in order
};

/// Type tag of an encoded payload (kInvalid when empty).
MsgType peek_type(const std::string& payload);

std::string encode_hello(const HelloMsg& msg);
std::string encode_config(const ConfigMsg& msg);
std::string encode_lease(const LeaseMsg& msg);
std::string encode_lease_result(const LeaseResultMsg& msg);
std::string encode_shutdown();

/// Decoders verify the type tag, every field, and full consumption of the
/// payload. On error the out-param may be partially filled; the Status
/// says what broke.
ser::Status decode_hello(const std::string& payload, HelloMsg* msg);
ser::Status decode_config(const std::string& payload, ConfigMsg* msg);
ser::Status decode_lease(const std::string& payload, LeaseMsg* msg);
ser::Status decode_lease_result(const std::string& payload,
                                LeaseResultMsg* msg);

/// Per-test artifact encoding (shared by result frames; exposed for tests).
void write_artifact(ser::Writer& w, const core::TestArtifact& art);
bool read_artifact(ser::Reader& r, core::TestArtifact& art);

// ---------------------------------------------------------------------------
// FrameChannel: frame transport over one connected stream-socket fd. Writes
// use send(MSG_NOSIGNAL) so a peer death yields a Status error instead of
// SIGPIPE; reads can carry a deadline (poll + partial-read resume) for
// hung-peer detection. Not thread-safe; each side owns its channel.
// ---------------------------------------------------------------------------
class FrameChannel {
 public:
  FrameChannel() = default;
  explicit FrameChannel(int fd) : fd_(fd) {}
  FrameChannel(FrameChannel&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  FrameChannel& operator=(FrameChannel&& o) noexcept;
  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;
  ~FrameChannel() { close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Send one complete frame around `payload`. `timeout_ms` < 0 blocks
  /// until the peer drains its socket or dies; otherwise a peer that stops
  /// reading for the whole window turns the stalled send into an error
  /// (the coordinator passes its hung-worker timeout here, so a wedged
  /// worker cannot hang it in send any more than in receive).
  ser::Status send_frame(const std::string& payload, int timeout_ms = -1);

  /// Receive one complete frame's payload. `timeout_ms` < 0 blocks until
  /// the peer delivers or dies; otherwise the whole frame must arrive
  /// within the window. EOF, timeout and corruption all return errors.
  ser::Status recv_frame(std::string* payload, int timeout_ms = -1);

 private:
  int fd_ = -1;
};

}  // namespace chatfuzz::dist
