// Seeded wire-fault injection for the dist_fault suite. FaultyChannel wraps
// any dist::Channel on the COORDINATOR side and misbehaves like a hostile
// network in both directions:
//
//   outbound  frames are delayed, duplicated, payload-corrupted, sent with
//             a wrong CRC, truncated mid-frame, or the connection is torn
//             down mid-send;
//   inbound   the real frame is consumed off the wire but reported as
//             corrupt or as a mid-frame disconnect — byte-for-byte
//             equivalent to the peer (or the wire) having mangled it,
//             which is how "byzantine wrong-CRC replies" are modeled
//             without cross-process RNG coordination.
//
// Determinism: the schedule is a pure function of the campaign seed, the
// connection ordinal and the frame sequence on that channel. The shared
// max_faults budget bounds every schedule — once spent, all channels run
// clean, so a fault campaign always terminates. The robustness claim under
// test is that ANY such schedule leaves campaign results bit-identical to a
// clean run: faults may move work between workers and force reconnects,
// never change what is folded.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/campaign.h"
#include "dist/transport.h"
#include "util/rng.h"

namespace chatfuzz::dist {

/// Rng stream id for the fault subsystem's fork off the campaign seed —
/// distinct from every per-test / per-worker stream the generator uses.
inline constexpr std::uint64_t kFaultStream = 0xFA17'0001;

/// Shared across every channel of one campaign: holds the plan and the
/// global fault budget. Channels roll their own dice (per-channel forked
/// Rng) but draw from this common budget.
class FaultInjector {
 public:
  enum class Kind {
    kDrop,       // close the connection mid-frame
    kTruncate,   // send a partial frame, then close
    kCorrupt,    // flip a payload byte (CRC now wrong on arrival)
    kWrongCrc,   // intact payload, deliberately wrong CRC field
    kDuplicate,  // the same frame twice
    kDelay,      // hold the frame for a few ms
    kHandshake,  // fail the very first frame of a connection
  };

  FaultInjector(const core::FaultPlan& plan, const Rng& campaign_rng);

  /// Roll the dice for one frame. nullopt = run clean (also whenever the
  /// budget is spent). A hit decrements the shared budget.
  std::optional<Kind> roll(Rng& channel_rng, bool first_frame);

  const core::FaultPlan& plan() const { return plan_; }
  std::size_t injected() const { return injected_; }
  /// Per-channel dice stream for connection `ordinal` (stable across the
  /// campaign: the Nth accepted connection always rolls the same dice).
  Rng channel_rng(std::uint64_t ordinal) const;

 private:
  core::FaultPlan plan_;
  Rng base_;  // campaign_rng.fork(kFaultStream); channel_rng forks off this
  std::uint32_t budget_ = 0;
  std::size_t injected_ = 0;
};

/// Channel wrapper that applies one injector's faults to a single peer
/// connection. poll_fd() is the inner fd; note a duplicated INBOUND frame
/// is stashed and delivered on the next recv_frame call, which a poll()er
/// only reaches once the fd turns readable again (heartbeats make that
/// prompt).
class FaultyChannel final : public Channel {
 public:
  FaultyChannel(std::unique_ptr<Channel> inner,
                std::shared_ptr<FaultInjector> injector, std::uint64_t ordinal);

  bool valid() const override { return inner_->valid(); }
  int poll_fd() const override { return inner_->poll_fd(); }
  void close() override { inner_->close(); }
  ser::Status send_frame(const std::string& payload,
                         int timeout_ms = -1) override;
  ser::Status recv_frame(std::string* payload, int timeout_ms = -1) override;

 private:
  /// Push raw bytes (a hand-built, possibly malformed frame) at the fd
  /// underneath the inner channel — Channel itself only sends well-formed
  /// frames.
  ser::Status send_raw(const std::string& bytes);

  std::unique_ptr<Channel> inner_;
  std::shared_ptr<FaultInjector> injector_;
  Rng rng_;
  bool first_frame_ = true;
  std::optional<std::string> dup_inbound_;
};

/// Wrap `chan` when the plan is armed; pass-through otherwise.
std::unique_ptr<Channel> maybe_wrap_faulty(
    std::unique_ptr<Channel> chan,
    const std::shared_ptr<FaultInjector>& injector, std::uint64_t ordinal);

}  // namespace chatfuzz::dist
