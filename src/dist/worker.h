// Worker-process entry point of the distributed campaign subsystem. A
// worker is this same binary re-exec'ed with `worker <fd>` argv (hidden
// from normal usage): it speaks the dist protocol over the inherited
// socketpair fd, builds a pool of core::SimStack simulation stacks from the
// coordinator's Config message, and runs each incoming lease through the
// PR-4 streaming engine — multi-threaded inside the process exactly like
// the in-process pool — shipping back one TestArtifact per test.
//
// Determinism: artifacts depend only on (program, campaign seed, global
// test index). The one piece of stack state that could leak between work
// units — the ctrl-reg dedup set — is reset at every lease boundary, so a
// lease produces identical folded results no matter which worker runs it,
// in what order, or after how many reassignments.
#pragma once

#include <optional>

namespace chatfuzz::dist {

/// Serve leases over `fd` until shutdown/EOF. Returns the process exit
/// code: 0 on a clean shutdown, nonzero on protocol violation, coordinator
/// death, or a simulation failure (diagnostics on stderr). Never throws.
int worker_main(int fd);

/// Route a `worker <fd>` argv into worker_main(). Call first thing in
/// main() of any binary that wants to serve as its own campaign worker
/// (the CLI, the dist test, the dist bench); returns the exit code to
/// propagate, or nullopt when the invocation is not a worker re-exec.
std::optional<int> maybe_worker_main(int argc, char** argv);

}  // namespace chatfuzz::dist
