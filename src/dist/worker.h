// Worker-process entry point of the distributed campaign subsystem. A
// worker is this same binary re-exec'ed in a hidden argv mode: either
// `worker <fd>` (spawned over a socketpair by the local coordinator) or
// `worker --connect host:port [--token t]` (a multi-host fleet member
// dialing a TCP coordinator). Both speak the dist protocol over one framed
// channel, build a pool of core::SimStack simulation stacks from the
// coordinator's Config message, and run each incoming lease through the
// streaming engine — multi-threaded inside the process exactly like the
// in-process pool — shipping back one TestArtifact per test.
//
// Fault tolerance (TCP mode): a transient failure — dropped connection,
// corrupt frame, coordinator restart — sends the worker back into a
// redial loop with capped exponential backoff + jitter; a kReject from the
// coordinator (bad token, version/config mismatch) is fatal and stops the
// redialing, because an incompatible worker never becomes compatible.
// While serving, a background heartbeat thread beats every
// config.heartbeat_ms so the coordinator can tell this process being HUNG
// (heartbeats flowing, no results) from being DEAD (silence).
//
// Determinism: artifacts depend only on (program, campaign seed, global
// test index). The one piece of stack state that could leak between work
// units — the ctrl-reg dedup set — is reset at every lease boundary, so a
// lease produces identical folded results no matter which worker runs it,
// in what order, or after how many reassignments or reconnects.
#pragma once

#include <optional>
#include <string>

namespace chatfuzz::dist {

struct WorkerOptions {
  /// Auth token sent in the hello; must match the coordinator's --token.
  std::string token;
  /// TCP mode: give up after this many consecutive failed dial/handshake
  /// attempts (the counter resets every time a handshake completes).
  int max_retries = 60;
};

/// Serve leases over an already-connected `fd` until shutdown/EOF. Returns
/// the process exit code: 0 on a clean shutdown, 1 on protocol violation,
/// coordinator death, or a simulation failure, 2 when the coordinator
/// rejected us (diagnostics on stderr). Never throws.
int worker_main(int fd, const WorkerOptions& opts = {});

/// TCP fleet member: dial `hostport`, serve, and redial with capped
/// exponential backoff + jitter on transient failures. Exit codes as
/// worker_main; a kReject ends the loop immediately.
int worker_connect_main(const std::string& hostport, const WorkerOptions& opts);

/// Route a `worker ...` argv into the right entry point. Call first thing
/// in main() of any binary that wants to serve as its own campaign worker
/// (the CLI, the dist tests, the dist bench); returns the exit code to
/// propagate, or nullopt when the invocation is not a worker re-exec.
std::optional<int> maybe_worker_main(int argc, char** argv);

}  // namespace chatfuzz::dist
