#include "dist/fleet.h"

#include <unistd.h>

#include <cinttypes>
#include <cmath>

#include "dist/transport.h"
#include "util/log.h"

namespace chatfuzz::dist {

bool fleet_status_query(const std::string& hostport, const std::string& token,
                        StatsReplyMsg* reply, std::string* err) {
  const auto hp = parse_hostport(hostport);
  if (!hp) {
    *err = "bad address \"" + hostport + "\" (want host:port)";
    return false;
  }
  const int fd = tcp_connect(*hp, 5'000, err);
  if (fd < 0) return false;
  FrameChannel chan(fd);

  HelloMsg hello;
  hello.pid = static_cast<std::uint64_t>(::getpid());
  hello.role = static_cast<std::uint8_t>(PeerRole::kStatus);
  hello.token = token;
  ser::Status s = chan.send_frame(encode_hello(hello), 5'000);
  if (!s.ok()) {
    *err = "cannot greet coordinator: " + s.message();
    return false;
  }
  std::string payload;
  s = chan.recv_frame(&payload, 10'000);
  if (!s.ok()) {
    *err = "no reply from coordinator: " + s.message();
    return false;
  }
  if (peek_type(payload) == MsgType::kReject) {
    RejectMsg reject;
    *err = decode_reject(payload, &reject).ok()
               ? "rejected by coordinator: " + reject.reason
               : "rejected by coordinator";
    return false;
  }
  s = decode_stats_reply(payload, reply);
  if (!s.ok()) {
    *err = "bad stats reply: " + s.message();
    return false;
  }
  return true;
}

std::string render_fleet_status(const StatsReplyMsg& reply) {
  std::string out;
  std::size_t live = 0;
  for (const PeerStatusEntry& p : reply.peers) live += p.alive ? 1 : 0;
  out += strformat("fleet: %zu peer(s), %zu live\n", reply.peers.size(),
                   live);
  if (!reply.peers.empty()) {
    out += "  peer        pid  state  leases   results  heartbeat\n";
  }
  for (std::size_t i = 0; i < reply.peers.size(); ++i) {
    const PeerStatusEntry& p = reply.peers[i];
    const char* state = !p.alive ? "lost" : p.demoted ? "slow" : "ok";
    std::string hb = "-";
    if (p.alive && p.heartbeat_age_ms != ~0ull) {
      hb = strformat("%" PRIu64 "ms ago", p.heartbeat_age_ms);
    }
    out += strformat("  %4zu  %9" PRIu64 "  %-5s  %6u  %8" PRIu64 "  %s\n",
                     i, p.pid, state, p.leases_held, p.results, hb.c_str());
  }
  out += strformat("metrics: %zu\n", reply.metrics.size());
  for (const auto& [name, value] : reply.metrics) {
    // Counters dominate; print integral values without a fraction.
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < 1e15) {
      out += strformat("  %-40s %lld\n", name.c_str(),
                       static_cast<long long>(value));
    } else {
      out += strformat("  %-40s %.6g\n", name.c_str(), value);
    }
  }
  return out;
}

int fleet_status_main(const std::string& hostport, const std::string& token,
                      std::FILE* out) {
  StatsReplyMsg reply;
  std::string err;
  if (!fleet_status_query(hostport, token, &reply, &err)) {
    LOG_ERROR("fleet status: %s", err.c_str());
    return 1;
  }
  const std::string text = render_fleet_status(reply);
  std::fwrite(text.data(), 1, text.size(), out);
  return 0;
}

}  // namespace chatfuzz::dist
