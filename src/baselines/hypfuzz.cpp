#include "baselines/hypfuzz.h"

#include <algorithm>
#include <string>

namespace chatfuzz::baselines {

std::vector<core::Program> HypFuzzer::next_batch(std::size_t n) {
  // Directed tests synthesized by the solver go out first (the formal
  // engine's stimuli are replayed at the head of the next fuzzing round),
  // then the mutational engine fills the remainder of the batch.
  std::vector<Program> out;
  out.reserve(n);
  while (!directed_queue_.empty() && out.size() < n) {
    out.push_back(std::move(directed_queue_.front()));
    directed_queue_.pop_front();
  }
  if (out.size() < n) {
    std::vector<Program> rest = MutationalFuzzer::next_batch(n - out.size());
    for (Program& p : rest) out.push_back(std::move(p));
  }
  return out;
}

void HypFuzzer::feedback(const core::Feedback& fb) {
  MutationalFuzzer::feedback(fb);
  if (fb.coverages == nullptr) return;

  std::size_t new_bins = 0;
  for (const cov::TestCoverage& tc : *fb.coverages) {
    new_bins += tc.incremental_bins;
  }
  if (new_bins > 0) {
    stagnant_ = 0;
    return;
  }
  if (++stagnant_ >= hyp_.stagnation_batches && fb.db != nullptr) {
    stagnant_ = 0;
    escalate(*fb.db);
  }
}

void HypFuzzer::escalate(const cov::CoverageDB& db) {
  ++escalations_;
  unsigned handed = 0;
  for (const cov::UncoveredPoint& up : cov::uncovered_points(db)) {
    if (handed >= hyp_.points_per_escalation) break;
    if (!attempted_.insert(up.name).second) continue;  // one attempt per point
    if (solver_.provably_unreachable(up.name)) {
      ++unreachable_;
      continue;
    }
    ++handed;
    if (std::optional<Program> prog = solver_.solve(up)) {
      ++solved_;
      directed_queue_.push_back(std::move(*prog));
    }
  }
}

void HypFuzzer::save_state(ser::Writer& w) const {
  MutationalFuzzer::save_state(w);
  w.u64(directed_queue_.size());
  for (const Program& p : directed_queue_) {
    w.vec_u32(p);
  }
  std::vector<std::string> attempted(attempted_.begin(), attempted_.end());
  std::sort(attempted.begin(), attempted.end());
  w.u64(attempted.size());
  for (const std::string& name : attempted) w.str(name);
  w.u32(stagnant_);
  w.u64(escalations_);
  w.u64(solved_);
  w.u64(unreachable_);
}

bool HypFuzzer::restore_state(ser::Reader& r) {
  if (!MutationalFuzzer::restore_state(r)) return false;
  std::deque<Program> queue;
  const std::uint64_t nq = r.u64();
  for (std::uint64_t i = 0; i < nq && r.ok(); ++i) queue.push_back(r.vec_u32());
  std::unordered_set<std::string> attempted;
  const std::uint64_t na = r.u64();
  for (std::uint64_t i = 0; i < na && r.ok(); ++i) attempted.insert(r.str());
  const std::uint32_t stagnant = r.u32();
  const std::uint64_t escalations = r.u64();
  const std::uint64_t solved = r.u64();
  const std::uint64_t unreachable = r.u64();
  if (!r.ok()) return false;
  directed_queue_ = std::move(queue);
  attempted_ = std::move(attempted);
  stagnant_ = stagnant;
  escalations_ = static_cast<std::size_t>(escalations);
  solved_ = static_cast<std::size_t>(solved);
  unreachable_ = static_cast<std::size_t>(unreachable);
  return true;
}

}  // namespace chatfuzz::baselines
