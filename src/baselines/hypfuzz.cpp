#include "baselines/hypfuzz.h"

#include <string>

namespace chatfuzz::baselines {

std::vector<core::Program> HypFuzzer::next_batch(std::size_t n) {
  // Directed tests synthesized by the solver go out first (the formal
  // engine's stimuli are replayed at the head of the next fuzzing round),
  // then the mutational engine fills the remainder of the batch.
  std::vector<Program> out;
  out.reserve(n);
  while (!directed_queue_.empty() && out.size() < n) {
    out.push_back(std::move(directed_queue_.front()));
    directed_queue_.pop_front();
  }
  if (out.size() < n) {
    std::vector<Program> rest = MutationalFuzzer::next_batch(n - out.size());
    for (Program& p : rest) out.push_back(std::move(p));
  }
  return out;
}

void HypFuzzer::feedback(const core::Feedback& fb) {
  MutationalFuzzer::feedback(fb);
  if (fb.coverages == nullptr) return;

  std::size_t new_bins = 0;
  for (const cov::TestCoverage& tc : *fb.coverages) {
    new_bins += tc.incremental_bins;
  }
  if (new_bins > 0) {
    stagnant_ = 0;
    return;
  }
  if (++stagnant_ >= hyp_.stagnation_batches && fb.db != nullptr) {
    stagnant_ = 0;
    escalate(*fb.db);
  }
}

void HypFuzzer::escalate(const cov::CoverageDB& db) {
  ++escalations_;
  unsigned handed = 0;
  for (const cov::UncoveredPoint& up : cov::uncovered_points(db)) {
    if (handed >= hyp_.points_per_escalation) break;
    if (!attempted_.insert(up.name).second) continue;  // one attempt per point
    if (solver_.provably_unreachable(up.name)) {
      ++unreachable_;
      continue;
    }
    ++handed;
    if (std::optional<Program> prog = solver_.solve(up)) {
      ++solved_;
      directed_queue_.push_back(std::move(*prog));
    }
  }
}

}  // namespace chatfuzz::baselines
