// HyPFuzz-style hybrid fuzzer (Chen et al. [3] in the paper): a
// coverage-guided mutational fuzzer that, when coverage stagnates, escalates
// the hardest still-uncovered points to a "formal engine" (our PointSolver)
// and injects the synthesized directed tests back into the fuzzing corpus.
// The published tool alternates between a TheHuzz-class fuzzer and
// JasperGold exactly this way; the scheduler below reproduces the
// stagnation-triggered switch-over.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "baselines/mutational.h"
#include "baselines/point_solver.h"

namespace chatfuzz::baselines {

struct HypFuzzConfig {
  MutationConfig mut;
  /// Consecutive feedback batches without incremental coverage before the
  /// formal engine is consulted.
  unsigned stagnation_batches = 2;
  /// Uncovered points handed to the solver per escalation.
  unsigned points_per_escalation = 16;
  /// Relative per-test cost: the paper treats formal calls as amortized into
  /// the fuzzing loop; keep 1.0 so comparisons are in tests, like Fig. 2.
  double time_factor = 1.0;
};

class HypFuzzer final : public MutationalFuzzer {
 public:
  explicit HypFuzzer(std::uint64_t seed, HypFuzzConfig cfg = {},
                     sim::Platform plat = {})
      : MutationalFuzzer(cfg.mut, seed), hyp_(cfg), solver_(plat) {}

  std::string name() const override { return "HyPFuzz"; }
  double time_per_test_factor() const override { return hyp_.time_factor; }

  std::vector<Program> next_batch(std::size_t n) override;
  void feedback(const core::Feedback& fb) override;

  void save_state(ser::Writer& w) const override;
  bool restore_state(ser::Reader& r) override;

  /// Statistics for benches/tests.
  std::size_t escalations() const { return escalations_; }
  std::size_t queued_directed() const { return directed_queue_.size(); }
  std::size_t solved_points() const { return solved_; }
  std::size_t unreachable_points() const { return unreachable_; }

 protected:
  /// Corpus retention uses TheHuzz's code-coverage scoring (HyPFuzz inherits
  /// TheHuzz's seed/mutation engine, per the paper's related-work section).
  double score(const cov::TestCoverage& tc, std::uint64_t) const override {
    return 10.0 * static_cast<double>(tc.incremental_bins) +
           tc.standalone_percent();
  }

 private:
  void escalate(const cov::CoverageDB& db);

  HypFuzzConfig hyp_;
  PointSolver solver_;
  std::deque<Program> directed_queue_;
  std::unordered_set<std::string> attempted_;
  unsigned stagnant_ = 0;
  std::size_t escalations_ = 0;
  std::size_t solved_ = 0;
  std::size_t unreachable_ = 0;
};

}  // namespace chatfuzz::baselines
