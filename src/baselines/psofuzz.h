// PSOFuzz-style fuzzer (Chen et al. [4] in the paper): particle swarm
// optimization over the mutation scheduler of a TheHuzz-class fuzzer. Each
// particle is a point in mutation-strategy space — per-operator selection
// weights plus the fresh-seed probability. Particles take turns steering
// test generation; their fitness is the incremental coverage their tests
// earn, and the swarm update (inertia + cognitive pull toward each
// particle's personal best + social pull toward the global best) moves the
// scheduler toward operator mixes that keep discovering new points.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/mutational.h"

namespace chatfuzz::baselines {

struct PsoConfig {
  MutationConfig mut;
  unsigned num_particles = 8;
  double inertia = 0.72;    // canonical Clerc-Kennedy constriction values
  double cognitive = 1.49;
  double social = 1.49;
  double weight_min = 0.05; // position clamp: no operator ever fully dies
  double weight_max = 4.0;
};

class PsoFuzzer final : public MutationalFuzzer {
 public:
  explicit PsoFuzzer(std::uint64_t seed, PsoConfig cfg = {});

  std::string name() const override { return "PSOFuzz"; }
  std::vector<Program> next_batch(std::size_t n) override;
  void feedback(const core::Feedback& fb) override;

  void save_state(ser::Writer& w) const override;
  bool restore_state(ser::Reader& r) override;

  /// Introspection for tests/benches.
  std::size_t num_particles() const { return particles_.size(); }
  const std::vector<double>& particle_weights(std::size_t i) const {
    return particles_[i].pos;
  }
  double global_best_fitness() const { return gbest_fitness_; }
  std::size_t swarm_updates() const { return updates_; }

 protected:
  double score(const cov::TestCoverage& tc, std::uint64_t) const override {
    return 10.0 * static_cast<double>(tc.incremental_bins) +
           tc.standalone_percent();
  }

 private:
  struct Particle {
    std::vector<double> pos;   // kNumMutationOps weights + [last] p_seed
    std::vector<double> vel;
    std::vector<double> best_pos;
    double best_fitness = -1.0;
    double batch_fitness = 0.0;  // accumulator for the in-flight batch
    unsigned batch_tests = 0;
  };

  void update_swarm();

  PsoConfig pso_;
  std::vector<Particle> particles_;
  std::vector<double> gbest_pos_;
  double gbest_fitness_ = -1.0;
  std::vector<std::size_t> assignment_;  // test index -> particle index
  std::size_t updates_ = 0;
};

}  // namespace chatfuzz::baselines
