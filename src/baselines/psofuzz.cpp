#include "baselines/psofuzz.h"

#include <algorithm>

namespace chatfuzz::baselines {

namespace {
constexpr double kSeedProbMin = 0.05;
constexpr double kSeedProbMax = 0.9;
}  // namespace

PsoFuzzer::PsoFuzzer(std::uint64_t seed, PsoConfig cfg)
    : MutationalFuzzer(cfg.mut, seed), pso_(cfg) {
  // Dimensions: one weight per mutation operator plus the seed probability.
  const std::size_t dims = kNumMutationOps + 1;
  particles_.resize(std::max(1u, pso_.num_particles));
  for (Particle& p : particles_) {
    p.pos.resize(dims);
    p.vel.assign(dims, 0.0);
    for (std::size_t d = 0; d < kNumMutationOps; ++d) {
      p.pos[d] = pso_.weight_min +
                 rng_.uniform() * (pso_.weight_max - pso_.weight_min);
    }
    p.pos[kNumMutationOps] =
        kSeedProbMin + rng_.uniform() * (kSeedProbMax - kSeedProbMin);
    p.best_pos = p.pos;
  }
  gbest_pos_ = particles_.front().pos;
}

std::vector<core::Program> PsoFuzzer::next_batch(std::size_t n) {
  std::vector<Program> out;
  out.reserve(n);
  assignment_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t pi = i % particles_.size();
    Particle& part = particles_[pi];
    assignment_.push_back(pi);
    const double p_seed = part.pos[kNumMutationOps];
    if (corpus_size() == 0 || rng_.chance(p_seed)) {
      out.push_back(corpus::random_valid_program(rng_, cfg_.seed_instrs));
      continue;
    }
    std::vector<double> parent_weights;
    parent_weights.reserve(corpus_size());
    for (std::size_t c = 0; c < corpus_size(); ++c) {
      parent_weights.push_back(corpus_score(c) + 1.0);
    }
    const Program& parent =
        corpus_program(rng_.weighted_pick(parent_weights));
    const std::vector<double> op_weights(
        part.pos.begin(), part.pos.begin() + kNumMutationOps);
    out.push_back(mutate_weighted(parent, op_weights));
  }
  return out;
}

void PsoFuzzer::feedback(const core::Feedback& fb) {
  MutationalFuzzer::feedback(fb);  // corpus retention, as in TheHuzz
  if (fb.coverages == nullptr ||
      assignment_.size() != fb.coverages->size()) {
    return;
  }
  for (Particle& p : particles_) {
    p.batch_fitness = 0.0;
    p.batch_tests = 0;
  }
  for (std::size_t i = 0; i < assignment_.size(); ++i) {
    Particle& p = particles_[assignment_[i]];
    p.batch_fitness += static_cast<double>((*fb.coverages)[i].incremental_bins);
    ++p.batch_tests;
  }
  update_swarm();
}

void PsoFuzzer::update_swarm() {
  ++updates_;
  // Personal / global best refresh on per-test-normalized fitness.
  for (Particle& p : particles_) {
    if (p.batch_tests == 0) continue;
    const double fitness = p.batch_fitness / p.batch_tests;
    if (fitness > p.best_fitness) {
      p.best_fitness = fitness;
      p.best_pos = p.pos;
    }
    if (fitness > gbest_fitness_) {
      gbest_fitness_ = fitness;
      gbest_pos_ = p.pos;
    }
  }
  // Velocity and position update.
  for (Particle& p : particles_) {
    for (std::size_t d = 0; d < p.pos.size(); ++d) {
      const double r1 = rng_.uniform();
      const double r2 = rng_.uniform();
      p.vel[d] = pso_.inertia * p.vel[d] +
                 pso_.cognitive * r1 * (p.best_pos[d] - p.pos[d]) +
                 pso_.social * r2 * (gbest_pos_[d] - p.pos[d]);
      p.pos[d] += p.vel[d];
    }
    for (std::size_t d = 0; d < kNumMutationOps; ++d) {
      p.pos[d] = std::clamp(p.pos[d], pso_.weight_min, pso_.weight_max);
    }
    p.pos[kNumMutationOps] =
        std::clamp(p.pos[kNumMutationOps], kSeedProbMin, kSeedProbMax);
  }
}

void PsoFuzzer::save_state(ser::Writer& w) const {
  MutationalFuzzer::save_state(w);
  w.u64(particles_.size());
  for (const Particle& p : particles_) {
    w.vec_f64(p.pos);
    w.vec_f64(p.vel);
    w.vec_f64(p.best_pos);
    w.f64(p.best_fitness);
    w.f64(p.batch_fitness);
    w.u32(p.batch_tests);
  }
  w.vec_f64(gbest_pos_);
  w.f64(gbest_fitness_);
  w.vec_size(assignment_);
  w.u64(updates_);
}

bool PsoFuzzer::restore_state(ser::Reader& r) {
  if (!MutationalFuzzer::restore_state(r)) return false;
  std::vector<Particle> particles;
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    Particle p;
    p.pos = r.vec_f64();
    p.vel = r.vec_f64();
    p.best_pos = r.vec_f64();
    p.best_fitness = r.f64();
    p.batch_fitness = r.f64();
    p.batch_tests = r.u32();
    particles.push_back(std::move(p));
  }
  std::vector<double> gbest_pos = r.vec_f64();
  const double gbest_fitness = r.f64();
  std::vector<std::size_t> assignment = r.vec_size();
  const std::uint64_t updates = r.u64();
  if (!r.ok()) return false;
  particles_ = std::move(particles);
  gbest_pos_ = std::move(gbest_pos);
  gbest_fitness_ = gbest_fitness;
  assignment_ = std::move(assignment);
  updates_ = static_cast<std::size_t>(updates);
  return true;
}

}  // namespace chatfuzz::baselines
