// PointSolver: the "formal engine" role of a HyPFuzz-style hybrid fuzzer
// (Chen et al. [3] in the paper). The real HyPFuzz hands an uncovered
// coverage point to a commercial formal tool (JasperGold), which — armed
// with full knowledge of the netlist — synthesizes a stimulus reaching that
// point. Offline we substitute a deterministic template solver that parses
// the structured point names our DUT model registers (cross.<priv>.op.<mnem>,
// trap.cross.<cause>.<priv>, csr.write.0x<addr>, cache.*, seq.*, tlb.*, ...)
// and emits a directed program triggering the point. Like the formal tool it
// replaces, it also classifies some points as unreachable (interrupt / debug
// / ECC / PMP tails that have no architectural trigger in this testbench).
#pragma once

#include <optional>
#include <string_view>

#include "core/generator.h"
#include "coverage/merge.h"
#include "isasim/platform.h"

namespace chatfuzz::baselines {

class PointSolver {
 public:
  explicit PointSolver(sim::Platform plat = {}) : plat_(plat) {}

  /// Synthesize a program whose execution covers `point` (primarily its
  /// missing true-bin; templates hit the false bin as a side effect for
  /// gated points). Returns nullopt when the point is outside the solver's
  /// template vocabulary or provably unreachable — the formal tool's
  /// "property unreachable / timeout" verdicts.
  std::optional<core::Program> solve(const cov::UncoveredPoint& point) const;

  /// True when the solver classifies the point as architecturally
  /// unreachable in this testbench (interrupt/debug/ECC/PMP tails).
  static bool unreachable(std::string_view name);

  /// Platform-aware classification: with CLINT stimulus enabled the M-mode
  /// software/timer pending lines (irq.pending1 / irq.pending3) become
  /// solvable; everything else follows unreachable().
  bool provably_unreachable(std::string_view name) const {
    if (plat_.clint_enabled &&
        (name == "irq.pending1" || name == "irq.pending3")) {
      return false;
    }
    return unreachable(name);
  }

 private:
  sim::Platform plat_;
};

}  // namespace chatfuzz::baselines
