#include "baselines/mutational.h"

#include <algorithm>

#include "riscv/decode.h"
#include "riscv/encode.h"

namespace chatfuzz::baselines {

std::vector<Program> MutationalFuzzer::next_batch(std::size_t n) {
  std::vector<Program> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (corpus_.empty() || rng_.chance(cfg_.p_seed)) {
      out.push_back(corpus::random_valid_program(rng_, cfg_.seed_instrs));
    } else {
      // Score-weighted parent selection.
      std::vector<double> weights;
      weights.reserve(corpus_.size());
      for (const Entry& e : corpus_) weights.push_back(e.score + 1.0);
      out.push_back(mutate(corpus_[rng_.weighted_pick(weights)].program));
    }
  }
  last_batch_ = out;
  return out;
}

Program MutationalFuzzer::mutate(const Program& parent) {
  Program child = parent;
  const auto n = static_cast<unsigned>(
      rng_.range(cfg_.mutations_min, cfg_.mutations_max));
  for (unsigned i = 0; i < n; ++i) apply_one_mutation(child);
  if (child.empty()) child.push_back(riscv::enc_i(riscv::Opcode::kAddi, 0, 0, 0));
  return child;
}

void MutationalFuzzer::splice_from_corpus(Program& p) {
  if (corpus_.empty()) return;
  const Program& donor = corpus_[rng_.below(corpus_.size())].program;
  if (donor.empty()) return;
  const std::size_t from = rng_.below(donor.size());
  const std::size_t len =
      1 + rng_.below(std::min<std::size_t>(donor.size() - from, 6));
  const std::size_t at = rng_.below(p.size() + 1);
  p.insert(p.begin() + static_cast<std::ptrdiff_t>(at), donor.begin() + static_cast<std::ptrdiff_t>(from),
           donor.begin() + static_cast<std::ptrdiff_t>(from + len));
  if (p.size() > 48) p.resize(48);  // bound test length
}

void MutationalFuzzer::apply_one_mutation(Program& p) {
  if (p.empty()) return;
  if (rng_.chance(0.2)) {
    apply_mutation(p, kOpSplice);
    return;
  }
  apply_mutation(p, 1 + static_cast<unsigned>(rng_.below(kNumMutationOps - 1)));
}

Program MutationalFuzzer::mutate_weighted(
    const Program& parent, const std::vector<double>& op_weights) {
  Program child = parent;
  const auto n = static_cast<unsigned>(
      rng_.range(cfg_.mutations_min, cfg_.mutations_max));
  for (unsigned i = 0; i < n; ++i) {
    apply_mutation(child, static_cast<unsigned>(rng_.weighted_pick(op_weights)));
  }
  if (child.empty()) {
    child.push_back(riscv::enc_i(riscv::Opcode::kAddi, 0, 0, 0));
  }
  return child;
}

void MutationalFuzzer::apply_mutation(Program& p, unsigned op) {
  if (p.empty()) return;
  if (op == kOpSplice) {
    splice_from_corpus(p);
    return;
  }
  const std::size_t at = rng_.below(p.size());
  switch (op) {
    case kOpBitFlip: {  // may produce an invalid word, as in real fuzzers
      p[at] ^= 1u << rng_.below(32);
      break;
    }
    case kOpByteFlip: {
      p[at] ^= 0xffu << (8 * rng_.below(4));
      break;
    }
    case kOpSwap: {
      const std::size_t other = rng_.below(p.size());
      std::swap(p[at], p[other]);
      break;
    }
    case kOpDelete: {
      if (p.size() > 1) p.erase(p.begin() + static_cast<std::ptrdiff_t>(at));
      break;
    }
    case kOpClone: {  // duplicate an instruction nearby
      p.insert(p.begin() + static_cast<std::ptrdiff_t>(at), p[at]);
      break;
    }
    default: {  // opcode-preserving operand re-randomization (keeps valid)
      riscv::Decoded d = riscv::decode(p[at]);
      if (!d.valid()) {
        p[at] ^= 1u << rng_.below(32);
        break;
      }
      d.rd = static_cast<std::uint8_t>(rng_.below(32));
      d.rs1 = static_cast<std::uint8_t>(rng_.below(32));
      d.rs2 = static_cast<std::uint8_t>(rng_.below(32));
      switch (riscv::spec(d.op).format) {
        case riscv::Format::kI: case riscv::Format::kS:
          d.imm = rng_.range(-2048, 2047);
          break;
        case riscv::Format::kIShift64: d.imm = rng_.range(0, 63); break;
        case riscv::Format::kIShift32: d.imm = rng_.range(0, 31); break;
        case riscv::Format::kB: d.imm = rng_.range(-512, 511) * 2; break;
        case riscv::Format::kU: d.imm = rng_.range(-512, 511) << 12; break;
        case riscv::Format::kJ: d.imm = rng_.range(-1024, 1023) * 2; break;
        default: break;
      }
      p[at] = riscv::encode(d);
      break;
    }
  }
}

void MutationalFuzzer::feedback(const Feedback& fb) {
  if (fb.batch == nullptr || fb.coverages == nullptr) return;
  for (std::size_t i = 0; i < fb.batch->size(); ++i) {
    const std::uint64_t ctrl =
        fb.ctrl_new_states != nullptr ? (*fb.ctrl_new_states)[i] : 0;
    const double s = score((*fb.coverages)[i], ctrl);
    if (s <= 0.0) continue;
    corpus_.push_back({(*fb.batch)[i], s});
  }
  if (corpus_.size() > cfg_.corpus_cap) {
    std::sort(corpus_.begin(), corpus_.end(),
              [](const Entry& x, const Entry& y) { return x.score > y.score; });
    corpus_.resize(cfg_.corpus_cap);
  }
}

void MutationalFuzzer::save_state(ser::Writer& w) const {
  ser::write_rng(w, rng_);
  w.u64(corpus_.size());
  for (const Entry& e : corpus_) {
    w.vec_u32(e.program);
    w.f64(e.score);
  }
  w.u64(last_batch_.size());
  for (const Program& p : last_batch_) w.vec_u32(p);
}

bool MutationalFuzzer::restore_state(ser::Reader& r) {
  Rng rng;
  if (!ser::read_rng(r, rng)) return false;
  std::vector<Entry> corpus;
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    Entry e;
    e.program = r.vec_u32();
    e.score = r.f64();
    corpus.push_back(std::move(e));
  }
  std::vector<Program> last;
  const std::uint64_t m = r.u64();
  for (std::uint64_t i = 0; i < m && r.ok(); ++i) last.push_back(r.vec_u32());
  if (!r.ok()) return false;
  rng_ = rng;
  corpus_ = std::move(corpus);
  last_batch_ = std::move(last);
  return true;
}

}  // namespace chatfuzz::baselines
