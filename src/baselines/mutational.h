// Baseline fuzzers reimplemented per their published algorithms:
//
//  * TheHuzzFuzzer  — coverage-guided mutational fuzzing (Kande et al.,
//    USENIX Sec'22): random valid-instruction seeds; corpus of
//    best-scoring inputs by coverage feedback; mutation operators
//    bit/byte-flip, swap, delete, clone (plus opcode-preserving operand
//    re-randomization, TheHuzz's "identify valid instructions" property).
//  * DifuzzRtlFuzzer — same engine but guided by control-register coverage
//    (Hur et al., S&P'21) and ~3.33x higher per-test cost (paper §I).
//  * RandomFuzzer   — random regression: fresh random valid programs, no
//    feedback.
#pragma once

#include <cstdint>
#include <vector>

#include "core/generator.h"
#include "corpus/generator.h"
#include "util/rng.h"

namespace chatfuzz::baselines {

using core::Feedback;
using core::InputGenerator;
using core::Program;

struct MutationConfig {
  unsigned seed_instrs = 20;       // instructions per seed program
  std::size_t corpus_cap = 64;     // best inputs kept
  unsigned mutations_min = 1;
  unsigned mutations_max = 3;
  double p_seed = 0.25;            // chance of a fresh seed vs. a mutant
};

/// Shared corpus + mutation engine; subclasses differ only in scoring.
class MutationalFuzzer : public InputGenerator {
 public:
  MutationalFuzzer(MutationConfig cfg, std::uint64_t seed)
      : cfg_(cfg), rng_(seed) {}

  std::vector<Program> next_batch(std::size_t n) override;
  void feedback(const Feedback& fb) override;

  bool supports_snapshot() const override { return true; }
  void save_state(ser::Writer& w) const override;
  bool restore_state(ser::Reader& r) override;

 protected:
  /// Score a test from its feedback; higher keeps it in the corpus.
  virtual double score(const cov::TestCoverage& tc,
                       std::uint64_t ctrl_new) const = 0;

  Program mutate(const Program& parent);

  /// Mutation operator indices (PSOFuzz schedules over these).
  enum MutOp : unsigned {
    kOpSplice = 0,
    kOpBitFlip,
    kOpByteFlip,
    kOpSwap,
    kOpDelete,
    kOpClone,
    kOpOperandRerand,
    kNumMutationOps,
  };

  /// Apply one specific operator (shared by the uniform scheduler and
  /// PSO-weighted schedulers).
  void apply_mutation(Program& p, unsigned op);

  /// Mutate with per-operator weights instead of the default distribution.
  Program mutate_weighted(const Program& parent,
                          const std::vector<double>& op_weights);

  std::size_t corpus_size() const { return corpus_.size(); }
  const Program& corpus_program(std::size_t i) const {
    return corpus_[i].program;
  }
  double corpus_score(std::size_t i) const { return corpus_[i].score; }

  MutationConfig cfg_;
  Rng rng_;

 private:
  void apply_one_mutation(Program& p);
  /// Cross-input cloning (AFL-style splice): copy a slice from another
  /// corpus entry — how working idiom blocks (privilege dances, lr/sc
  /// pairs) propagate through a mutational corpus.
  void splice_from_corpus(Program& p);

  struct Entry {
    Program program;
    double score = 0.0;
  };
  std::vector<Entry> corpus_;
  std::vector<Program> last_batch_;
};

class TheHuzzFuzzer final : public MutationalFuzzer {
 public:
  explicit TheHuzzFuzzer(std::uint64_t seed, MutationConfig cfg = {})
      : MutationalFuzzer(cfg, seed) {}
  std::string name() const override { return "TheHuzz"; }

 protected:
  double score(const cov::TestCoverage& tc, std::uint64_t) const override {
    // Code-coverage feedback: new points dominate, stand-alone breaks ties.
    return 10.0 * static_cast<double>(tc.incremental_bins) +
           tc.standalone_percent();
  }
};

class DifuzzRtlFuzzer final : public MutationalFuzzer {
 public:
  explicit DifuzzRtlFuzzer(std::uint64_t seed, MutationConfig cfg = {})
      : MutationalFuzzer(cfg, seed) {}
  std::string name() const override { return "DifuzzRTL"; }
  double time_per_test_factor() const override { return 3.33; }

 protected:
  double score(const cov::TestCoverage&, std::uint64_t ctrl_new) const override {
    return static_cast<double>(ctrl_new);  // control-register coverage only
  }
};

class RandomFuzzer final : public InputGenerator {
 public:
  explicit RandomFuzzer(std::uint64_t seed, unsigned instrs = 20)
      : rng_(seed), instrs_(instrs) {}
  std::string name() const override { return "Random"; }
  std::vector<Program> next_batch(std::size_t n) override {
    std::vector<Program> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(corpus::random_valid_program(rng_, instrs_));
    }
    return out;
  }

  bool supports_snapshot() const override { return true; }
  void save_state(ser::Writer& w) const override { ser::write_rng(w, rng_); }
  bool restore_state(ser::Reader& r) override {
    return ser::read_rng(r, rng_);
  }

 private:
  Rng rng_;
  unsigned instrs_;
};

}  // namespace chatfuzz::baselines
