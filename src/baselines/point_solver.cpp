#include "baselines/point_solver.h"

#include <charconv>
#include <string>

#include "riscv/builder.h"
#include "riscv/csr.h"
#include "riscv/encode.h"
#include "riscv/instr.h"

namespace chatfuzz::baselines {
namespace {

using core::Program;
using riscv::Opcode;
using riscv::ProgramBuilder;

// Register conventions (see sim::initial_regs): even registers hold aligned
// data-region pointers, odd registers hold small integers. The templates use
// x5..x7 as scratch, x10/x14 as pointers, x11/x13 as integer operands.
constexpr unsigned kT0 = 5, kT1 = 6, kT2 = 7;
constexpr unsigned kPtr = 10, kPtr2 = 14;
constexpr unsigned kInt = 11, kInt2 = 13;
constexpr unsigned kDst = 12;

/// Drop from M-mode to U or S: clear/set mstatus.MPP, point mepc just past
/// the mret, and return. The magic trap handler brings the hart back to
/// M-mode on the first exception, so templates may trap freely afterwards.
void drop_priv(ProgramBuilder& b, bool to_supervisor) {
  b.li(kT0, 3);
  b.raw(riscv::enc_shift(Opcode::kSlli, kT0, kT0, 11));
  b.raw(riscv::enc_csr(Opcode::kCsrrc, 0, riscv::csr::kMstatus, kT0));
  if (to_supervisor) {
    b.li(kT1, 1);
    b.raw(riscv::enc_shift(Opcode::kSlli, kT1, kT1, 11));
    b.raw(riscv::enc_csr(Opcode::kCsrrs, 0, riscv::csr::kMstatus, kT1));
  }
  b.auipc(kT2, 0);
  b.addi(kT2, kT2, 16);
  b.raw(riscv::enc_csr(Opcode::kCsrrw, 0, riscv::csr::kMepc, kT2));
  b.raw(riscv::enc_sys(Opcode::kMret));
}

/// One representative instruction of `op` with operands that execute
/// sensibly from the deterministic reset register file.
void emit_opcode(ProgramBuilder& b, Opcode op) {
  const riscv::InstrSpec& s = riscv::spec(op);
  switch (s.format) {
    case riscv::Format::kR:
      b.raw(riscv::enc_r(op, kDst, kInt, kInt2));
      break;
    case riscv::Format::kI:
      if (op == Opcode::kJalr) {
        b.auipc(kT2, 0);
        b.raw(riscv::enc_i(op, 0, kT2, 8));  // lands right after the jalr
      } else if (s.match == 0x3u || (s.match & 0x7fu) == 0x03u) {  // loads
        b.raw(riscv::enc_i(op, kDst, kPtr, 0));
      } else {
        b.raw(riscv::enc_i(op, kDst, kInt, 5));
      }
      break;
    case riscv::Format::kIShift64:
      b.raw(riscv::enc_shift(op, kDst, kInt, 7));
      break;
    case riscv::Format::kIShift32:
      b.raw(riscv::enc_shift(op, kDst, kInt, 3));
      break;
    case riscv::Format::kS:
      b.raw(riscv::enc_s(op, kPtr, kInt, 0));
      break;
    case riscv::Format::kB:
      b.raw(riscv::enc_b(op, kInt, kInt2, 4));  // either outcome falls through
      break;
    case riscv::Format::kU:
      b.raw(riscv::enc_u(op, kDst, 1));
      break;
    case riscv::Format::kJ:
      b.raw(riscv::enc_j(op, 1, 4));
      break;
    case riscv::Format::kFence:
    case riscv::Format::kSystem:
      b.raw(riscv::enc_sys(op));
      break;
    case riscv::Format::kSfence:
      b.raw(riscv::enc_sfence(0, 0));  // full flush; legal in M-mode
      break;
    case riscv::Format::kCsr:
      // The user-readable cycle counter: legal from U/S (mcounteren resets
      // to all-ones in this testbench), and csrrs/c with rs1=x0 never write.
      b.raw(riscv::enc_csr(op, kDst, riscv::csr::kCycle, 0));
      break;
    case riscv::Format::kCsrImm:
      b.raw(riscv::enc_csr(op, kDst, riscv::csr::kCycle, 0));
      break;
    case riscv::Format::kAmo:
      b.raw(riscv::enc_amo(op, kDst, kPtr, kInt, false, false));
      break;
    case riscv::Format::kLoadRes:
      b.raw(riscv::enc_amo(op, kDst, kPtr, 0, false, false));
      break;
  }
}

Opcode opcode_by_mnemonic(std::string_view mnem) {
  for (std::size_t i = 0; i < riscv::kNumOpcodes; ++i) {
    if (riscv::all_specs()[i].mnemonic == mnem) {
      return static_cast<Opcode>(i);
    }
  }
  return Opcode::kInvalid;
}

/// Class representative used by the cross.<priv>.<class> templates.
void emit_class(ProgramBuilder& b, std::string_view cls) {
  if (cls == "load") {
    b.ld(kDst, kPtr, 0);
  } else if (cls == "store") {
    b.sd(kPtr, kInt, 0);
  } else if (cls == "amo") {
    b.raw(riscv::enc_amo(Opcode::kAmoAddD, kDst, kPtr, kInt, false, false));
  } else if (cls == "lrsc") {
    b.raw(riscv::enc_amo(Opcode::kLrD, kDst, kPtr, 0, false, false));
    b.raw(riscv::enc_amo(Opcode::kScD, kDst, kPtr, kInt, false, false));
  } else if (cls == "csr") {
    b.raw(riscv::enc_csr(Opcode::kCsrrs, kDst, riscv::csr::kCycle, 0));
  } else if (cls == "muldiv") {
    b.mul(kDst, kInt, kInt2);
  } else if (cls == "fencei") {
    b.fence_i();
  } else if (cls == "branch") {
    b.raw(riscv::enc_b(Opcode::kBeq, kInt, kInt, 4));
  }
}

/// Trigger one synchronous exception cause. The magic handler resumes
/// execution in M-mode just past the faulting instruction.
void emit_cause(ProgramBuilder& b, std::string_view cause) {
  if (cause == "illegal") {
    b.raw(0xffffffffu);
  } else if (cause == "breakpoint") {
    b.ebreak();
  } else if (cause == "load_misaligned") {
    b.ld(kDst, kPtr, 1);
  } else if (cause == "load_fault") {
    b.li(kT0, 256);  // below the RAM window
    b.ld(kDst, kT0, 0);
  } else if (cause == "store_misaligned") {
    b.sd(kPtr, kInt, 1);
  } else if (cause == "store_fault") {
    b.li(kT0, 256);
    b.sd(kT0, kInt, 0);
  } else {  // ecall
    b.ecall();
  }
}

/// Straight-line fetch footprint of at least ways+1 lines per I$ set,
/// executed twice via a counted backward loop: every set receives more
/// distinct tags than it has ways, covering fetch-side eviction points for
/// *all* sets. Sized for the RocketCore-class I$ (8 sets x 2 ways x 32 B:
/// 24 lines = 192 instructions needed; 240 gives margin).
Program icache_evict_program() {
  ProgramBuilder b;
  b.li(kT0, 2);
  b.label("pass");
  for (int i = 0; i < 240; ++i) b.addi(0, 0, 0);
  b.addi(kT0, kT0, -1);
  b.branch_to(Opcode::kBne, kT0, 0, "pass");
  return b.seal();
}

/// Touch ways+1 distinct tags in every D$ set (RocketCore-class geometry:
/// 16 sets x 2 ways x 32 B lines, so the conflict stride is 512 B). The
/// first sweep stores (filling dirty lines), the next two load at +1 and +2
/// tags: every set then evicts both a valid and a dirty line.
Program dcache_evict_program() {
  constexpr unsigned kSets = 16, kLine = 32;
  constexpr unsigned kStride = kSets * kLine;
  ProgramBuilder b;
  b.auipc(kT1, 0x80);                  // anchor inside the data region
  b.raw(riscv::enc_i(Opcode::kAndi, kT1, kT1,
                     -static_cast<std::int32_t>(kStride)));  // stride-align
  for (unsigned s = 0; s < kSets; ++s) {
    b.sd(kT1, kInt, static_cast<std::int32_t>(s * kLine));
  }
  for (unsigned w = 1; w <= 2; ++w) {
    for (unsigned s = 0; s < kSets; ++s) {
      b.ld(kDst, kT1, static_cast<std::int32_t>(w * kStride + s * kLine));
    }
  }
  return b.seal();
}

/// Two consecutive backward-taken branches (also two consecutive
/// first-seen-taken mispredictions). See the label layout in the comments.
Program backward_pair_program() {
  ProgramBuilder b;
  b.addi(kT0, 0, 1);
  b.jal_to(0, "X");
  b.label("Z");
  b.addi(kT0, kT0, -1);
  b.addi(0, 0, 0);
  b.label("Y");
  b.branch_to(Opcode::kBne, kT0, 0, "Z");  // backward, taken on first pass
  b.jal_to(0, "exit");
  b.label("X");
  b.branch_to(Opcode::kBeq, 0, 0, "Y");  // backward, always taken
  b.addi(0, 0, 0);
  b.label("exit");
  b.addi(0, 0, 0);
  return b.seal();
}

/// Supervisor-only identity map of RAM through a single gigapage leaf,
/// placed in the (reserved) last RAM page. `flags` below grants R/W/X with
/// A/D pre-set so no Svade fault interferes with the bins under test.
constexpr std::uint32_t kLeafFlags = static_cast<std::uint32_t>(
    riscv::sv39::kPteV | riscv::sv39::kPteR | riscv::sv39::kPteW |
    riscv::sv39::kPteX | riscv::sv39::kPteA | riscv::sv39::kPteD);

std::uint64_t root_pt_page(const sim::Platform& plat) {
  return plat.ram_base + plat.ram_size - 0x1000;
}

/// Full Sv39 bring-up with a nonzero ASID, then translated loads/stores from
/// supervisor mode; covers every reachable TLB bin. The first S-mode fetch
/// misses (refill walk through the gigapage leaf => superpage), the next
/// fetch in the same page hits, and the data page walks then hits; the store
/// drives the write-permission comparator.
Program tlb_program(const sim::Platform& plat) {
  ProgramBuilder b(plat.ram_base);
  b.sv39_identity_map(plat.ram_base, root_pt_page(plat), kLeafFlags, kT0, kT1);
  // Re-install satp with ASID = 1 for the asid_nonzero bin. The CSR write
  // flushes the TLB, so every translated access below starts cold.
  b.csrrs(kT0, riscv::csr::kSatp, 0);
  b.li(kT1, 1);
  b.slli(kT1, kT1, 44);
  b.or_(kT0, kT0, kT1);
  b.csrrw(0, riscv::csr::kSatp, kT0);
  b.sfence_vma();
  b.enter_priv(1, kT2);
  // Anchor a page-aligned pointer into the (identity-mapped) data region.
  const std::uint64_t anchor_pc = b.pc();
  b.auipc(kT1, 0x80);  // anchor_pc + 0x80000: inside the data region
  const std::uint64_t base = anchor_pc + 0x80000;
  const auto to_page = static_cast<std::int32_t>(0x1000 - (base & 0xfff));
  b.addi(kT1, kT1, to_page);
  b.ld(kDst, kT1, 0);   // data-page refill walk
  b.ld(kDst, kT1, 8);   // same vpn: TLB hit
  b.sd(kT1, kInt, 16);  // store-permission path
  return b.seal();
}

/// Page-table-walker fault bin: after the same bring-up, touch a virtual
/// page whose root slot was never written (V=0 => load page fault).
Program ptw_fault_program(const sim::Platform& plat) {
  ProgramBuilder b(plat.ram_base);
  b.sv39_identity_map(plat.ram_base, root_pt_page(plat), kLeafFlags, kT0, kT1);
  b.enter_priv(1, kT2);
  b.li(kT1, 0x1000);  // vpn2 = 0: unmapped
  b.raw(riscv::enc_i(Opcode::kLb, kDst, kT1, 0));
  return b.seal();
}

std::optional<Program> solve_seq(std::string_view which) {
  ProgramBuilder b;
  if (which == "div_after_div") {
    b.div(kDst, kInt, kInt2).div(kDst, kInt2, kInt);
  } else if (which == "muldiv_chain") {
    b.mul(kDst, kInt, kInt2).mul(kDst, kDst, kInt);
  } else if (which == "branch_after_taken_branch") {
    b.raw(riscv::enc_b(Opcode::kBeq, 0, 0, 4));
    b.raw(riscv::enc_b(Opcode::kBeq, 0, 0, 4));
  } else if (which == "amo_after_amo") {
    b.raw(riscv::enc_amo(Opcode::kAmoAddD, kDst, kPtr, kInt, false, false));
    b.raw(riscv::enc_amo(Opcode::kAmoOrD, kDst, kPtr, kInt2, false, false));
  } else if (which == "store_to_load_forward") {
    b.sd(kPtr, kInt, 0).ld(kDst, kPtr, 0);
  } else if (which == "double_mispredict" || which == "backward_branch_pair") {
    return backward_pair_program();
  } else if (which == "double_trap") {
    b.ebreak().ebreak();
  } else if (which == "fencei_after_store") {
    b.sd(kPtr, kInt, 0).fence_i();
  } else if (which == "trap_after_csr_write") {
    b.csrrw(0, riscv::csr::kMscratch, kInt).ebreak();
  } else if (which == "load_after_amo") {
    b.raw(riscv::enc_amo(Opcode::kAmoAddD, kDst, kPtr, kInt, false, false));
    b.ld(kDst, kPtr, 0);
  } else if (which == "jump_after_trap") {
    b.ebreak().jal(0, 4);
  } else {
    return std::nullopt;
  }
  return b.seal();
}

std::optional<Program> solve_cache(std::string_view which, bool super) {
  ProgramBuilder b;
  if (which == "double_dcache_miss") {
    b.ld(kDst, kPtr, 0).ld(kDst, kPtr, 1024);
  } else if (which == "ic_dc_miss_same_instr") {
    b.fence_i().ld(kDst, kPtr, 0);
  } else if (which == "icache_miss_and_mispredict") {
    b.fence_i();
    b.raw(riscv::enc_b(Opcode::kBeq, 0, 0, 8));
    b.addi(0, 0, 0);
  } else if (which == "dcache_hit_dirty") {
    b.sd(kPtr, kInt, 0).ld(kDst, kPtr, 0);
  } else if (which == "amo_dcache_miss") {
    b.raw(riscv::enc_amo(Opcode::kAmoAddD, kDst, kPtr, kInt, false, false));
  } else if (which == "lrsc_dcache_miss") {
    b.raw(riscv::enc_amo(Opcode::kLrD, kDst, kPtr, 0, false, false));
  } else if (which == "store_clobbers_reservation") {
    b.raw(riscv::enc_amo(Opcode::kLrD, kDst, kPtr, 0, false, false));
    b.sd(kPtr, kInt, 0);
    b.raw(riscv::enc_amo(Opcode::kScD, kDst, kPtr, kInt, false, false));
  } else if (which == "mem_fault_in_user") {
    drop_priv(b, false);
    b.li(kT0, 256);
    b.ld(kDst, kT0, 0);
  } else if (which == "misaligned_store_trap") {
    b.sd(kPtr, kInt, 1);
  } else if (which == "sc_success_in_super" || super) {
    drop_priv(b, true);
    b.raw(riscv::enc_amo(Opcode::kLrD, kDst, kPtr, 0, false, false));
    b.raw(riscv::enc_amo(Opcode::kScD, kDst, kPtr, kInt, false, false));
  } else {
    return std::nullopt;
  }
  return b.seal();
}

std::optional<Program> solve_muldiv(std::string_view which) {
  ProgramBuilder b;
  if (which == "div0_word") {
    b.li(kT0, 0);
    b.raw(riscv::enc_r(Opcode::kDivw, kDst, kInt, kT0));
  } else if (which == "overflow_rem") {
    b.li(kT0, 1);
    b.raw(riscv::enc_shift(Opcode::kSlli, kT0, kT0, 63));  // INT64_MIN
    b.li(kT1, -1);
    b.raw(riscv::enc_r(Opcode::kRem, kDst, kT0, kT1));
  } else if (which == "high_sign_mix") {
    b.li(kT0, -7);
    b.raw(riscv::enc_r(Opcode::kMulh, kDst, kT0, kInt));
  } else if (which == "div_equal_operands") {
    b.div(kDst, kInt, kInt);
  } else if (which == "mul_result_zero") {
    b.mul(kDst, kInt, 0);
  } else if (which == "div_after_load") {
    b.ld(kT0, kPtr, 0);
    b.div(kDst, kT0, kInt);
  } else {
    return std::nullopt;
  }
  return b.seal();
}

}  // namespace

bool PointSolver::unreachable(std::string_view name) {
  return name.starts_with("irq.") || name.starts_with("debug.") ||
         name.starts_with("ecc.") || name.starts_with("pmp.") ||
         name == "counter.overflow" ||
         // Fetch outside the RAM window is a testbench stop condition, not
         // an instruction access fault, and cause 10 is reserved: neither
         // per-cause point can fire.
         name == "trap.cause1" || name == "trap.cause10";
}

/// Arm both CLINT sources with interrupts enabled: msip fires immediately,
/// the timer a few instructions later. Covers irq.pending1 and irq.pending3.
Program irq_program(const sim::Platform& plat) {
  auto li_addr = [](ProgramBuilder& b, unsigned rd, std::uint64_t addr) {
    const auto value = static_cast<std::int32_t>(addr);
    const std::int32_t hi = (value + 0x800) >> 12;
    b.raw(riscv::enc_u(Opcode::kLui, rd, hi));
    b.addi(rd, rd, value - (hi << 12));
  };
  ProgramBuilder b(plat.ram_base);
  b.li(kT2, (1 << 7) | (1 << 3));  // MTIE | MSIE
  b.raw(riscv::enc_csr(Opcode::kCsrrs, 0, riscv::csr::kMie, kT2));
  b.li(kT2, 1 << 3);               // mstatus.MIE
  b.raw(riscv::enc_csr(Opcode::kCsrrs, 0, riscv::csr::kMstatus, kT2));
  li_addr(b, kT0, plat.clint_base + sim::ClintState::kMtimecmpOff);
  b.li(kT1, 24);
  b.sd(kT0, kT1, 0);
  li_addr(b, kT0, plat.clint_base + sim::ClintState::kMsipOff);
  b.li(kT1, 1);
  b.sw(kT0, kT1, 0);
  for (int i = 0; i < 20; ++i) b.addi(0, 0, 0);
  return b.seal();
}

std::optional<core::Program> PointSolver::solve(
    const cov::UncoveredPoint& point) const {
  const std::string_view name = point.name;
  if (name.starts_with("irq.")) {
    return provably_unreachable(name)
               ? std::nullopt
               : std::optional<core::Program>(irq_program(plat_));
  }
  if (unreachable(name)) return std::nullopt;

  // cross.<priv>.op.<mnemonic> — privilege-gated decode chains.
  if (name.starts_with("cross.")) {
    const bool super = name.starts_with("cross.super.");
    std::string_view rest = name.substr(super ? 12 : 11);
    ProgramBuilder b(plat_.ram_base);
    drop_priv(b, super);
    if (rest.starts_with("op.")) {
      const Opcode op = opcode_by_mnemonic(rest.substr(3));
      if (op == Opcode::kInvalid) return std::nullopt;
      emit_opcode(b, op);
    } else {
      emit_class(b, rest);
    }
    b.addi(0, 0, 0);
    return b.seal();
  }

  // trap.cross.<cause>.<priv>
  if (name.starts_with("trap.cross.")) {
    std::string_view rest = name.substr(11);
    const auto dot = rest.rfind('.');
    if (dot == std::string_view::npos) return std::nullopt;
    const bool super = rest.substr(dot + 1) == "super";
    ProgramBuilder b(plat_.ram_base);
    drop_priv(b, super);
    emit_cause(b, rest.substr(0, dot));
    b.addi(0, 0, 0);
    return b.seal();
  }
  if (name.starts_with("trap.cause")) {  // plain per-cause points
    unsigned cause = 0;
    std::from_chars(name.data() + 10, name.data() + name.size(), cause);
    ProgramBuilder b(plat_.ram_base);
    switch (cause) {
      case 0:  // instruction address misaligned: jal to pc+2
        b.raw(riscv::enc_j(Opcode::kJal, 0, 2));
        break;
      case 2: emit_cause(b, "illegal"); break;
      case 3: emit_cause(b, "breakpoint"); break;
      case 4: emit_cause(b, "load_misaligned"); break;
      case 5: emit_cause(b, "load_fault"); break;
      case 6: emit_cause(b, "store_misaligned"); break;
      case 7: emit_cause(b, "store_fault"); break;
      case 8:  // ecall from U
        drop_priv(b, false);
        b.ecall();
        break;
      case 9:  // ecall from S
        drop_priv(b, true);
        b.ecall();
        break;
      case 11: b.ecall(); break;  // ecall from M
      default: return std::nullopt;
    }
    b.addi(0, 0, 0);
    return b.seal();
  }

  // csr.write.0x<addr>
  if (name.starts_with("csr.write.0x")) {
    unsigned addr = 0;
    const auto* first = name.data() + 12;
    std::from_chars(first, name.data() + name.size(), addr, 16);
    ProgramBuilder b(plat_.ram_base);
    b.li(kT0, 0x15);
    b.csrrw(0, static_cast<std::uint16_t>(addr), kT0);
    return b.seal();
  }

  if (name.starts_with("tlb.")) return tlb_program(plat_);
  if (name == "ptw.fault" || name.starts_with("ptw.")) {
    return ptw_fault_program(plat_);
  }
  if (name.starts_with("seq.")) return solve_seq(name.substr(4));
  if (name.starts_with("cache.")) {
    return solve_cache(name.substr(6), false);
  }
  if (name.starts_with("muldiv.")) return solve_muldiv(name.substr(7));
  if (name.starts_with("fetch.icache.")) return icache_evict_program();
  if (name.starts_with("mem.dcache.")) return dcache_evict_program();

  // Per-opcode decode select chain: emit that opcode in M-mode.
  if (name.starts_with("decode.sel.")) {
    const Opcode op = opcode_by_mnemonic(name.substr(11));
    if (op == Opcode::kInvalid) return std::nullopt;
    ProgramBuilder b(plat_.ram_base);
    emit_opcode(b, op);
    b.addi(0, 0, 0);
    return b.seal();
  }

  // Decode class signals.
  if (name.starts_with("decode.is_")) {
    const std::string_view cls = name.substr(10);
    ProgramBuilder b(plat_.ram_base);
    if (cls == "jal") {
      b.jal(1, 4);
    } else if (cls == "jalr") {
      b.auipc(kT2, 0);
      b.raw(riscv::enc_i(Opcode::kJalr, 0, kT2, 8));
    } else if (cls == "alu_reg") {
      b.add(kDst, kInt, kInt2);
    } else if (cls == "alu_imm") {
      b.addi(kDst, kInt, 5);
    } else if (cls == "w_form") {
      b.raw(riscv::enc_r(Opcode::kAddw, kDst, kInt, kInt2));
    } else if (cls == "amo") {
      b.raw(riscv::enc_amo(Opcode::kAmoAddD, kDst, kPtr, kInt, false, false));
    } else if (cls == "lr") {
      b.raw(riscv::enc_amo(Opcode::kLrD, kDst, kPtr, 0, false, false));
    } else if (cls == "sc") {
      b.raw(riscv::enc_amo(Opcode::kLrD, kDst, kPtr, 0, false, false));
      b.raw(riscv::enc_amo(Opcode::kScD, kDst, kPtr, kInt, false, false));
    } else if (cls == "system") {
      b.ecall();
    } else if (cls == "load") {
      b.ld(kDst, kPtr, 0);
    } else if (cls == "store") {
      b.sd(kPtr, kInt, 0);
    } else if (cls == "branch") {
      b.raw(riscv::enc_b(Opcode::kBeq, 0, 0, 4));
    } else if (cls == "muldiv") {
      b.mul(kDst, kInt, kInt2);
    } else if (cls == "div") {
      b.div(kDst, kInt, kInt2);
    } else if (cls == "csr") {
      b.csrrw(kDst, riscv::csr::kMscratch, kInt);
    } else if (cls == "fence") {
      b.fence();
    } else {
      return std::nullopt;
    }
    b.addi(0, 0, 0);
    return b.seal();
  }

  // Execute-stage operand/result conditions.
  if (name.starts_with("exec.")) {
    const std::string_view which = name.substr(5);
    ProgramBuilder b(plat_.ram_base);
    if (which == "result_negative") {
      b.addi(kDst, 0, -5);
    } else if (which == "rs1_eq_rs2") {
      b.add(kDst, kInt, kInt);
    } else if (which == "shamt_zero") {
      b.raw(riscv::enc_shift(Opcode::kSlli, kDst, kInt, 0));
    } else if (which == "target_misaligned") {
      b.raw(riscv::enc_j(Opcode::kJal, 0, 2));
    } else if (which == "result_zero") {
      b.add(kDst, 0, 0);
    } else if (which == "branch_taken") {
      b.raw(riscv::enc_b(Opcode::kBeq, 0, 0, 4));
    } else if (which == "branch_backward") {
      return backward_pair_program();
    } else if (which.starts_with("bypass") || which == "load_use") {
      b.ld(kT0, kPtr, 0);
      b.add(kDst, kT0, kT0);
      b.add(kDst, kDst, kT0);
    } else {
      return std::nullopt;
    }
    b.addi(0, 0, 0);
    return b.seal();
  }

  // Memory-unit conditions not covered by the cache templates.
  if (name.starts_with("mem.")) {
    const std::string_view which = name.substr(4);
    ProgramBuilder b(plat_.ram_base);
    if (which == "misaligned") {
      b.ld(kDst, kPtr, 1);
    } else if (which == "access_fault") {
      b.li(kT0, 256);
      b.ld(kDst, kT0, 0);
    } else if (which == "sc_success" || which == "reservation_valid") {
      b.raw(riscv::enc_amo(Opcode::kLrD, kDst, kPtr, 0, false, false));
      b.raw(riscv::enc_amo(Opcode::kScD, kDst, kPtr, kInt, false, false));
    } else if (which == "amo_minmax") {
      b.raw(riscv::enc_amo(Opcode::kAmoMinD, kDst, kPtr, kInt, false, false));
    } else if (which == "amo_logic") {
      b.raw(riscv::enc_amo(Opcode::kAmoAndD, kDst, kPtr, kInt, false, false));
    } else if (which == "store" || which == "size8") {
      b.sd(kPtr, kInt, 0);
    } else {
      return std::nullopt;
    }
    b.addi(0, 0, 0);
    return b.seal();
  }

  // Shallow per-unit points (decode.*, ex.*, mem.*, csr.*): any structured
  // corpus function exercises them; hand back a small representative mix.
  ProgramBuilder b(plat_.ram_base);
  b.ld(kDst, kPtr, 0);
  b.sd(kPtr, kDst, 8);
  b.mul(kDst, kInt, kInt2);
  b.div(kDst, kInt, kInt2);
  b.raw(riscv::enc_b(Opcode::kBne, kInt, kInt2, 4));
  b.csrrw(kDst, riscv::csr::kMscratch, kInt);
  b.fence_i();
  return b.seal();
}

}  // namespace chatfuzz::baselines
