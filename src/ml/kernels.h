// Vectorized CPU kernel subsystem backing the GPT hot paths (forward,
// backward, incremental gen_step). Two implementations of every kernel live
// here side by side:
//
//   *_ref    — the seed's naive triple loops, kept verbatim as the semantic
//              reference for parity tests and speedup benches;
//   the rest — cache-friendly, compiler-vectorizable rewrites. The key
//              transform is the SAXPY loop order (accumulate whole output
//              rows with unit stride) which the compiler vectorizes without
//              -ffast-math, because no floating-point reduction has to be
//              reassociated.
//
// Determinism contract: for a given build, every kernel accumulates each
// output element in a fixed order (ascending reduction index) that does not
// depend on the thread count, so results are bit-identical run to run and
// for any set_num_threads() value. Threads only ever split work across
// *disjoint* output ranges (rows for forward/dinp, output channels for
// dweight/dbias), never across a reduction.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace chatfuzz::ml::kern {

// ---- intra-batch thread splitter -------------------------------------------
// A small persistent worker pool (the campaign engine's pool idiom, scoped
// to kernel calls). Default is single-threaded; CHATFUZZ_ML_THREADS seeds
// the initial value ("0" = all hardware threads). Campaign workers already
// parallelize across tests, so kernel threading is opt-in for the training
// benches that run one big model on an otherwise idle machine.

/// Current kernel thread count (>= 1).
int num_threads();

/// Set the kernel thread count (clamped to >= 1). Thread-safe with respect
/// to concurrent kernel calls is NOT guaranteed; configure at startup or
/// between training phases.
void set_num_threads(int n);

/// Thread count requested by CHATFUZZ_ML_THREADS (default 1, "0" = all
/// hardware threads, malformed values fall back to 1).
int env_threads();

// ---- scalar GELU (shared by both implementations) ---------------------------
inline float gelu_scalar(float x) {
  constexpr float kS = 0.7978845608028654f;  // sqrt(2/pi)
  const float cube = 0.044715f * x * x * x;
  return 0.5f * x * (1.f + std::tanh(kS * (x + cube)));
}

// ---- reference kernels (seed-naive; parity baseline) ------------------------
// Live in kernels_ref.cpp, which is compiled at the project's base
// optimization level on purpose: the bench speedups are measured against
// the seed's kernels as the seed built them, not against a turbo-charged
// copy of the naive loops.
// out[n, o] = bias[o] + sum_i inp[n, i] * w[o, i]   (w is [Cout, Cin] rows)
void matmul_forward_ref(float* out, const float* inp, const float* w,
                        const float* bias, int N, int Cin, int Cout);
void matmul_backward_ref(float* dinp, float* dw, float* dbias,
                         const float* dout, const float* inp, const float* w,
                         int N, int Cin, int Cout);
void gelu_forward_ref(float* out, const float* inp, int N);
void gelu_backward_ref(float* dinp, const float* inp, const float* dout,
                       int N);

// ---- optimized kernels -------------------------------------------------------
/// Row-blocked, vectorizable matmul. Same signature and math as the
/// reference; internally transposes `w` into a per-thread scratch so the
/// inner loop streams both operands with unit stride.
void matmul_forward(float* out, const float* inp, const float* w,
                    const float* bias, int N, int Cin, int Cout);

/// dinp += dout @ w, dw += dout^T @ inp, dbias += colsum(dout).
/// Accumulation order per element matches the reference exactly.
void matmul_backward(float* dinp, float* dw, float* dbias, const float* dout,
                     const float* inp, const float* w, int N, int Cin,
                     int Cout);

/// Fused bias + GELU epilogue: pre = inp @ w^T + bias, post = gelu(pre),
/// computed row by row so `pre` is still hot in cache when the activation
/// runs. Both buffers are written (backward needs the pre-activation).
void matmul_bias_gelu_forward(float* pre, float* post, const float* inp,
                              const float* w, const float* bias, int N,
                              int Cin, int Cout);

void gelu_forward(float* out, const float* inp, int N);
void gelu_backward(float* dinp, const float* inp, const float* dout, int N);

// ---- packed weights for incremental decode -----------------------------------
/// A transposed ([Cin, Cout], unit stride over Cout) copy of a [Cout, Cin]
/// weight matrix. gen_step packs every weight once per generation so each
/// per-token matvec streams the packed buffer linearly front to back —
/// exactly the access pattern hardware prefetchers are built for.
struct PackedMat {
  int cout = 0, cin = 0;
  std::vector<float> t;  // [cin, cout]

  bool empty() const { return t.empty(); }
};

/// Fill `dst` with the transpose of w ([Cout, Cin] row-major).
void pack_transpose(PackedMat& dst, const float* w, int Cout, int Cin);

/// out[n, o] = bias[o] + sum_i inp[n, i] * W[o, i], with W pre-packed.
void matmul_forward_packed(float* out, const float* inp, const PackedMat& wt,
                           const float* bias, int N);

/// Fused packed matmul + bias + GELU (see matmul_bias_gelu_forward).
/// Inference-only: the activation uses a vectorizable polynomial tanh
/// (|rel err| < 3e-6) instead of libm — training paths keep exact GELU.
void matmul_bias_gelu_forward_packed(float* pre, float* post, const float* inp,
                                     const PackedMat& wt, const float* bias,
                                     int N);

}  // namespace chatfuzz::ml::kern
