// AdamW over the flat parameter/gradient buffers of Gpt.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/serialize.h"

namespace chatfuzz::ml {

struct AdamWConfig {
  float lr = 3e-4f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.01f;
  float grad_clip = 1.0f;  // global-norm clip; <= 0 disables
};

class AdamW {
 public:
  explicit AdamW(std::size_t num_params, AdamWConfig cfg = {})
      : cfg_(cfg), m_(num_params, 0.f), v_(num_params, 0.f) {}

  const AdamWConfig& config() const { return cfg_; }
  void set_lr(float lr) { cfg_.lr = lr; }

  /// One update step: params -= lr * mhat / (sqrt(vhat) + eps) + decay.
  void step(std::vector<float>& params, std::vector<float>& grads) {
    ++t_;
    if (cfg_.grad_clip > 0.f) {
      double norm2 = 0.0;
      for (float g : grads) norm2 += static_cast<double>(g) * g;
      const double norm = std::sqrt(norm2);
      if (norm > cfg_.grad_clip) {
        const float scale = cfg_.grad_clip / static_cast<float>(norm);
        for (float& g : grads) g *= scale;
      }
    }
    const float bc1 = 1.f - std::pow(cfg_.beta1, static_cast<float>(t_));
    const float bc2 = 1.f - std::pow(cfg_.beta2, static_cast<float>(t_));
    for (std::size_t i = 0; i < params.size(); ++i) {
      m_[i] = cfg_.beta1 * m_[i] + (1.f - cfg_.beta1) * grads[i];
      v_[i] = cfg_.beta2 * v_[i] + (1.f - cfg_.beta2) * grads[i] * grads[i];
      const float mhat = m_[i] / bc1;
      const float vhat = v_[i] / bc2;
      params[i] -= cfg_.lr * (mhat / (std::sqrt(vhat) + cfg_.eps) +
                              cfg_.weight_decay * params[i]);
    }
  }

  std::uint64_t steps() const { return t_; }

  /// Snapshot / restore the optimizer moments and step count (bias
  /// correction depends on t_, so resumed training continues exactly).
  void save_state(ser::Writer& w) const {
    w.u64(t_);
    w.vec_f32(m_);
    w.vec_f32(v_);
  }
  bool restore_state(ser::Reader& r) {
    const std::uint64_t t = r.u64();
    std::vector<float> m = r.vec_f32();
    std::vector<float> v = r.vec_f32();
    if (!r.ok() || m.size() != m_.size() || v.size() != v_.size()) {
      r.fail();
      return false;
    }
    t_ = t;
    m_ = std::move(m);
    v_ = std::move(v);
    return true;
  }

 private:
  AdamWConfig cfg_;
  std::uint64_t t_ = 0;
  std::vector<float> m_, v_;
};

}  // namespace chatfuzz::ml
