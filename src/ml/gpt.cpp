#include "ml/gpt.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ml/kernels.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace chatfuzz::ml {

// ---------------------------------------------------------------------------
// Parameter layout: one flat buffer, offsets computed once per config.
// ---------------------------------------------------------------------------
struct Gpt::Layout {
  // global tensors
  std::size_t wte, wpe, lnfw, lnfb, valw, valb;
  // per-layer tensor offsets relative to layer base
  std::size_t ln1w, ln1b, qkvw, qkvb, attprojw, attprojb;
  std::size_t ln2w, ln2b, fcw, fcb, fcprojw, fcprojb;
  std::size_t layer_base, per_layer, total;

  static Layout make(const GptConfig& c) {
    const std::size_t C = c.n_embd, V = c.vocab, T = c.ctx;
    Layout o{};
    std::size_t at = 0;
    o.wte = at; at += V * C;
    o.wpe = at; at += T * C;
    o.layer_base = at;
    std::size_t l = 0;
    o.ln1w = l; l += C;
    o.ln1b = l; l += C;
    o.qkvw = l; l += 3 * C * C;
    o.qkvb = l; l += 3 * C;
    o.attprojw = l; l += C * C;
    o.attprojb = l; l += C;
    o.ln2w = l; l += C;
    o.ln2b = l; l += C;
    o.fcw = l; l += 4 * C * C;
    o.fcb = l; l += 4 * C;
    o.fcprojw = l; l += 4 * C * C;
    o.fcprojb = l; l += C;
    o.per_layer = l;
    at += o.per_layer * c.n_layer;
    o.lnfw = at; at += C;
    o.lnfb = at; at += C;
    o.valw = at; at += C;
    o.valb = at; at += 1;
    o.total = at;
    return o;
  }
};

namespace {

// ---- matmul/GELU dispatch --------------------------------------------------
// The heavy kernels live in ml/kernels.{h,cpp}; `ref` selects the seed's
// naive loops (benchmark baseline, parity tests) over the vectorized path.

void mm_fwd(bool ref, float* out, const float* inp, const float* w,
            const float* bias, int N, int Cin, int Cout) {
  if (ref) {
    kern::matmul_forward_ref(out, inp, w, bias, N, Cin, Cout);
  } else {
    kern::matmul_forward(out, inp, w, bias, N, Cin, Cout);
  }
}

void mm_bwd(bool ref, float* dinp, float* dw, float* dbias, const float* dout,
            const float* inp, const float* w, int N, int Cin, int Cout) {
  if (ref) {
    kern::matmul_backward_ref(dinp, dw, dbias, dout, inp, w, N, Cin, Cout);
  } else {
    kern::matmul_backward(dinp, dw, dbias, dout, inp, w, N, Cin, Cout);
  }
}

// ---- layer kernels (llm.c style, naive CPU loops) -------------------------

void encoder_forward(float* out, const int* tokens, const float* wte,
                     const float* wpe, int B, int T, int C) {
  for (int b = 0; b < B; ++b) {
    for (int t = 0; t < T; ++t) {
      float* o = out + (b * T + t) * C;
      const float* we = wte + tokens[b * T + t] * C;
      const float* pe = wpe + t * C;
      for (int c = 0; c < C; ++c) o[c] = we[c] + pe[c];
    }
  }
}

void encoder_backward(float* dwte, float* dwpe, const float* dout,
                      const int* tokens, int B, int T, int C) {
  for (int b = 0; b < B; ++b) {
    for (int t = 0; t < T; ++t) {
      const float* d = dout + (b * T + t) * C;
      float* dwt = dwte + tokens[b * T + t] * C;
      float* dwp = dwpe + t * C;
      for (int c = 0; c < C; ++c) {
        dwt[c] += d[c];
        dwp[c] += d[c];
      }
    }
  }
}

void layernorm_forward(float* out, float* mean, float* rstd, const float* inp,
                       const float* w, const float* b, int N, int C) {
  for (int n = 0; n < N; ++n) {
    const float* x = inp + n * C;
    float m = 0.f;
    for (int c = 0; c < C; ++c) m += x[c];
    m /= static_cast<float>(C);
    float v = 0.f;
    for (int c = 0; c < C; ++c) {
      const float d = x[c] - m;
      v += d * d;
    }
    v /= static_cast<float>(C);
    const float rs = 1.f / std::sqrt(v + 1e-5f);
    float* o = out + n * C;
    for (int c = 0; c < C; ++c) o[c] = (x[c] - m) * rs * w[c] + b[c];
    mean[n] = m;
    rstd[n] = rs;
  }
}

void layernorm_backward(float* dinp, float* dw, float* db, const float* dout,
                        const float* inp, const float* mean, const float* rstd,
                        const float* w, int N, int C) {
  for (int n = 0; n < N; ++n) {
    const float* x = inp + n * C;
    const float* d = dout + n * C;
    const float m = mean[n], rs = rstd[n];
    float dnorm_mean = 0.f, dnorm_norm_mean = 0.f;
    for (int c = 0; c < C; ++c) {
      const float norm = (x[c] - m) * rs;
      const float dnorm = w[c] * d[c];
      dnorm_mean += dnorm;
      dnorm_norm_mean += dnorm * norm;
    }
    dnorm_mean /= static_cast<float>(C);
    dnorm_norm_mean /= static_cast<float>(C);
    float* di = dinp + n * C;
    for (int c = 0; c < C; ++c) {
      const float norm = (x[c] - m) * rs;
      const float dnorm = w[c] * d[c];
      dw[c] += norm * d[c];
      db[c] += d[c];
      di[c] += (dnorm - dnorm_mean - norm * dnorm_norm_mean) * rs;
    }
  }
}

void attention_forward(float* out, float* preatt, float* att, const float* qkv,
                       int B, int T, int C, int NH) {
  const int hs = C / NH;
  const float scale = 1.f / std::sqrt(static_cast<float>(hs));
  for (int b = 0; b < B; ++b) {
    for (int t = 0; t < T; ++t) {
      for (int h = 0; h < NH; ++h) {
        const float* q = qkv + (b * T + t) * 3 * C + h * hs;
        float* pre = preatt + ((b * NH + h) * T + t) * T;
        float* a = att + ((b * NH + h) * T + t) * T;
        float maxv = -1e30f;
        for (int t2 = 0; t2 <= t; ++t2) {
          const float* k = qkv + (b * T + t2) * 3 * C + C + h * hs;
          float dot = 0.f;
          for (int i = 0; i < hs; ++i) dot += q[i] * k[i];
          dot *= scale;
          pre[t2] = dot;
          if (dot > maxv) maxv = dot;
        }
        float sum = 0.f;
        for (int t2 = 0; t2 <= t; ++t2) {
          const float e = std::exp(pre[t2] - maxv);
          a[t2] = e;
          sum += e;
        }
        const float inv = sum > 0.f ? 1.f / sum : 0.f;
        for (int t2 = 0; t2 <= t; ++t2) a[t2] *= inv;
        for (int t2 = t + 1; t2 < T; ++t2) {
          pre[t2] = 0.f;
          a[t2] = 0.f;
        }
        float* o = out + (b * T + t) * C + h * hs;
        for (int i = 0; i < hs; ++i) o[i] = 0.f;
        for (int t2 = 0; t2 <= t; ++t2) {
          const float* v = qkv + (b * T + t2) * 3 * C + 2 * C + h * hs;
          const float w = a[t2];
          for (int i = 0; i < hs; ++i) o[i] += w * v[i];
        }
      }
    }
  }
}

void attention_backward(float* dqkv, float* dpreatt, float* datt,
                        const float* dout, const float* qkv, const float* att,
                        int B, int T, int C, int NH) {
  const int hs = C / NH;
  const float scale = 1.f / std::sqrt(static_cast<float>(hs));
  for (int b = 0; b < B; ++b) {
    for (int t = 0; t < T; ++t) {
      for (int h = 0; h < NH; ++h) {
        const float* a = att + ((b * NH + h) * T + t) * T;
        float* da = datt + ((b * NH + h) * T + t) * T;
        float* dpre = dpreatt + ((b * NH + h) * T + t) * T;
        const float* d = dout + (b * T + t) * C + h * hs;
        // through weighted sum of V
        for (int t2 = 0; t2 <= t; ++t2) {
          const float* v = qkv + (b * T + t2) * 3 * C + 2 * C + h * hs;
          float* dv = dqkv + (b * T + t2) * 3 * C + 2 * C + h * hs;
          float acc = 0.f;
          for (int i = 0; i < hs; ++i) {
            acc += v[i] * d[i];
            dv[i] += a[t2] * d[i];
          }
          da[t2] += acc;
        }
        // through softmax
        for (int t2 = 0; t2 <= t; ++t2) {
          float acc = 0.f;
          for (int t3 = 0; t3 <= t; ++t3) {
            const float indicator = t2 == t3 ? 1.f : 0.f;
            acc += a[t3] * (indicator - a[t2]) * da[t3];
          }
          dpre[t2] += acc;
        }
        // through q.k
        const float* q = qkv + (b * T + t) * 3 * C + h * hs;
        float* dq = dqkv + (b * T + t) * 3 * C + h * hs;
        for (int t2 = 0; t2 <= t; ++t2) {
          const float* k = qkv + (b * T + t2) * 3 * C + C + h * hs;
          float* dk = dqkv + (b * T + t2) * 3 * C + C + h * hs;
          const float g = dpre[t2] * scale;
          for (int i = 0; i < hs; ++i) {
            dq[i] += g * k[i];
            dk[i] += g * q[i];
          }
        }
      }
    }
  }
}

void residual_forward(float* out, const float* a, const float* b, int N) {
  for (int n = 0; n < N; ++n) out[n] = a[n] + b[n];
}

void softmax_forward(float* probs, const float* logits, int N, int V) {
  for (int n = 0; n < N; ++n) {
    const float* l = logits + n * V;
    float* p = probs + n * V;
    float maxv = -1e30f;
    for (int v = 0; v < V; ++v) maxv = l[v] > maxv ? l[v] : maxv;
    float sum = 0.f;
    for (int v = 0; v < V; ++v) {
      p[v] = std::exp(l[v] - maxv);
      sum += p[v];
    }
    const float inv = 1.f / sum;
    for (int v = 0; v < V; ++v) p[v] *= inv;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Activation arena layout (depends on B, T).
// ---------------------------------------------------------------------------
namespace {
struct ActLayout {
  // per-layer strides
  std::size_t ln1, ln1_mean, ln1_rstd, qkv, atty, preatt, att, attproj,
      res2, ln2, ln2_mean, ln2_rstd, fch, fch_gelu, fcproj, res3, per_layer;
  // globals
  std::size_t encoded, lnf, lnf_mean, lnf_rstd, logits, probs, values, total;
  std::size_t layer_base;

  static ActLayout make(const GptConfig& c, int B, int T) {
    const std::size_t BT = static_cast<std::size_t>(B) * T;
    const std::size_t C = c.n_embd, V = c.vocab, NH = c.n_head;
    ActLayout o{};
    std::size_t at = 0;
    o.encoded = at; at += BT * C;
    o.layer_base = at;
    std::size_t l = 0;
    o.ln1 = l; l += BT * C;
    o.ln1_mean = l; l += BT;
    o.ln1_rstd = l; l += BT;
    o.qkv = l; l += BT * 3 * C;
    o.atty = l; l += BT * C;
    o.preatt = l; l += static_cast<std::size_t>(B) * NH * T * T;
    o.att = l; l += static_cast<std::size_t>(B) * NH * T * T;
    o.attproj = l; l += BT * C;
    o.res2 = l; l += BT * C;
    o.ln2 = l; l += BT * C;
    o.ln2_mean = l; l += BT;
    o.ln2_rstd = l; l += BT;
    o.fch = l; l += BT * 4 * C;
    o.fch_gelu = l; l += BT * 4 * C;
    o.fcproj = l; l += BT * C;
    o.res3 = l; l += BT * C;
    o.per_layer = l;
    at += o.per_layer * c.n_layer;
    o.lnf = at; at += BT * C;
    o.lnf_mean = at; at += BT;
    o.lnf_rstd = at; at += BT;
    o.logits = at; at += BT * V;
    o.probs = at; at += BT * V;
    o.values = at; at += BT;
    o.total = at;
    return o;
  }
};
}  // namespace

Gpt::Gpt(GptConfig cfg, std::uint64_t seed) : cfg_(cfg) {
  // Hard config validation (kept in release builds): every downstream
  // buffer — KV caches, generation scratch, the attention-score buffer —
  // is sized from these fields, so a bad config must fail here, loudly,
  // not as an out-of-bounds write deep inside gen_step.
  if (cfg_.ctx <= 0 || cfg_.vocab <= 0 || cfg_.n_layer < 0 ||
      cfg_.n_head <= 0 || cfg_.n_embd <= 0 || cfg_.n_embd % cfg_.n_head != 0) {
    std::fprintf(stderr,
                 "Gpt: invalid config (vocab=%d ctx=%d n_layer=%d n_head=%d "
                 "n_embd=%d); ctx/vocab/n_embd must be positive and n_embd "
                 "divisible by n_head\n",
                 cfg_.vocab, cfg_.ctx, cfg_.n_layer, cfg_.n_head, cfg_.n_embd);
    std::abort();
  }
  const Layout lay = Layout::make(cfg_);
  params_.assign(lay.total, 0.f);
  grads_.assign(lay.total, 0.f);

  Rng rng(seed);
  auto gauss = [&rng] {
    // Box-Muller
    const double u1 = rng.uniform() + 1e-12;
    const double u2 = rng.uniform();
    return static_cast<float>(std::sqrt(-2.0 * std::log(u1)) *
                              std::cos(6.283185307179586 * u2));
  };
  auto fill = [&](std::size_t off, std::size_t n, float stddev) {
    for (std::size_t i = 0; i < n; ++i) params_[off + i] = gauss() * stddev;
  };
  const std::size_t C = cfg_.n_embd;
  const float res_scale =
      0.02f / std::sqrt(2.f * static_cast<float>(cfg_.n_layer));
  fill(lay.wte, static_cast<std::size_t>(cfg_.vocab) * C, 0.02f);
  fill(lay.wpe, static_cast<std::size_t>(cfg_.ctx) * C, 0.01f);
  for (int l = 0; l < cfg_.n_layer; ++l) {
    const std::size_t base = lay.layer_base + l * lay.per_layer;
    for (std::size_t i = 0; i < C; ++i) params_[base + lay.ln1w + i] = 1.f;
    for (std::size_t i = 0; i < C; ++i) params_[base + lay.ln2w + i] = 1.f;
    fill(base + lay.qkvw, 3 * C * C, 0.02f);
    fill(base + lay.attprojw, C * C, res_scale);
    fill(base + lay.fcw, 4 * C * C, 0.02f);
    fill(base + lay.fcprojw, 4 * C * C, res_scale);
  }
  for (std::size_t i = 0; i < C; ++i) params_[lay.lnfw + i] = 1.f;
  fill(lay.valw, C, 0.02f);
}

void Gpt::zero_grad() { std::fill(grads_.begin(), grads_.end(), 0.f); }

void Gpt::copy_params_from(const Gpt& other) {
  assert(params_.size() == other.params_.size());
  params_ = other.params_;
}

void Gpt::ensure_acts(int B, int T) {
  if (B == B_ && T == T_ && !acts_.empty()) return;
  B_ = B;
  T_ = T;
  const ActLayout a = ActLayout::make(cfg_, B, T);
  acts_.assign(a.total, 0.f);
  dacts_.assign(a.total, 0.f);
}

const float* Gpt::acts_ptr(ActName which) const {
  const ActLayout a = ActLayout::make(cfg_, B_, T_);
  switch (which) {
    case kActEncoded: return acts_.data() + a.encoded;
    case kActLnf: return acts_.data() + a.lnf;
    case kActLnfMean: return acts_.data() + a.lnf_mean;
    case kActLnfRstd: return acts_.data() + a.lnf_rstd;
    case kActLogits: return acts_.data() + a.logits;
    case kActProbs: return acts_.data() + a.probs;
    case kActValues: return acts_.data() + a.values;
  }
  return nullptr;
}

void Gpt::forward(const int* tokens, int B, int T) {
  assert(T <= cfg_.ctx);
  ensure_acts(B, T);
  const Layout p = Layout::make(cfg_);
  const ActLayout a = ActLayout::make(cfg_, B, T);
  const int C = cfg_.n_embd, NH = cfg_.n_head, V = cfg_.vocab;
  const int BT = B * T;
  float* acts = acts_.data();
  const float* prm = params_.data();

  const bool ref = use_ref_kernels_;

  encoder_forward(acts + a.encoded, tokens, prm + p.wte, prm + p.wpe, B, T, C);
  const float* residual = acts + a.encoded;
  for (int l = 0; l < cfg_.n_layer; ++l) {
    const std::size_t pb = p.layer_base + l * p.per_layer;
    const std::size_t ab = a.layer_base + l * a.per_layer;
    layernorm_forward(acts + ab + a.ln1, acts + ab + a.ln1_mean,
                      acts + ab + a.ln1_rstd, residual, prm + pb + p.ln1w,
                      prm + pb + p.ln1b, BT, C);
    mm_fwd(ref, acts + ab + a.qkv, acts + ab + a.ln1, prm + pb + p.qkvw,
           prm + pb + p.qkvb, BT, C, 3 * C);
    attention_forward(acts + ab + a.atty, acts + ab + a.preatt,
                      acts + ab + a.att, acts + ab + a.qkv, B, T, C, NH);
    mm_fwd(ref, acts + ab + a.attproj, acts + ab + a.atty,
           prm + pb + p.attprojw, prm + pb + p.attprojb, BT, C, C);
    residual_forward(acts + ab + a.res2, residual, acts + ab + a.attproj,
                     BT * C);
    layernorm_forward(acts + ab + a.ln2, acts + ab + a.ln2_mean,
                      acts + ab + a.ln2_rstd, acts + ab + a.res2,
                      prm + pb + p.ln2w, prm + pb + p.ln2b, BT, C);
    if (ref) {
      kern::matmul_forward_ref(acts + ab + a.fch, acts + ab + a.ln2,
                               prm + pb + p.fcw, prm + pb + p.fcb, BT, C,
                               4 * C);
      kern::gelu_forward_ref(acts + ab + a.fch_gelu, acts + ab + a.fch,
                             BT * 4 * C);
    } else {
      kern::matmul_bias_gelu_forward(acts + ab + a.fch, acts + ab + a.fch_gelu,
                                     acts + ab + a.ln2, prm + pb + p.fcw,
                                     prm + pb + p.fcb, BT, C, 4 * C);
    }
    mm_fwd(ref, acts + ab + a.fcproj, acts + ab + a.fch_gelu,
           prm + pb + p.fcprojw, prm + pb + p.fcprojb, BT, 4 * C, C);
    residual_forward(acts + ab + a.res3, acts + ab + a.res2,
                     acts + ab + a.fcproj, BT * C);
    residual = acts + ab + a.res3;
  }
  layernorm_forward(acts + a.lnf, acts + a.lnf_mean, acts + a.lnf_rstd,
                    residual, prm + p.lnfw, prm + p.lnfb, BT, C);
  // tied LM head: logits = lnf @ wte^T
  mm_fwd(ref, acts + a.logits, acts + a.lnf, prm + p.wte, nullptr, BT, C, V);
  softmax_forward(acts + a.probs, acts + a.logits, BT, V);
  // value head
  mm_fwd(ref, acts + a.values, acts + a.lnf, prm + p.valw, prm + p.valb,
         BT, C, 1);
}

float Gpt::logprob(int b, int t, int tok) const {
  const ActLayout a = ActLayout::make(cfg_, B_, T_);
  const float pr = acts_[a.probs + (static_cast<std::size_t>(b) * T_ + t) *
                                       cfg_.vocab + tok];
  return std::log(pr + 1e-10f);
}

void Gpt::backward_from(const int* tokens, const float* dlogits,
                        const float* dvalues, int B, int T) {
  assert(B == B_ && T == T_);
  const Layout p = Layout::make(cfg_);
  const ActLayout a = ActLayout::make(cfg_, B, T);
  const int C = cfg_.n_embd, NH = cfg_.n_head, V = cfg_.vocab;
  const int BT = B * T;
  const float* acts = acts_.data();
  float* dacts = dacts_.data();
  const float* prm = params_.data();
  float* grd = grads_.data();
  std::fill(dacts_.begin(), dacts_.end(), 0.f);

  // value head backward: dlnf += dvalues * valw; dvalw += sum dvalues*lnf
  if (dvalues != nullptr) {
    for (int n = 0; n < BT; ++n) {
      const float g = dvalues[n];
      if (g == 0.f) continue;
      grd[p.valb] += g;
      const float* lnfx = acts + a.lnf + static_cast<std::size_t>(n) * C;
      float* dlnfx = dacts + a.lnf + static_cast<std::size_t>(n) * C;
      for (int c = 0; c < C; ++c) {
        grd[p.valw + c] += g * lnfx[c];
        dlnfx[c] += g * prm[p.valw + c];
      }
    }
  }
  const bool ref = use_ref_kernels_;
  // LM head backward (tied weights): dlnf += dlogits @ wte; dwte += ...
  mm_bwd(ref, dacts + a.lnf, grd + p.wte, nullptr, dlogits, acts + a.lnf,
         prm + p.wte, BT, C, V);

  // final layernorm
  const std::size_t last_ab = a.layer_base + (cfg_.n_layer - 1) * a.per_layer;
  const float* residual = cfg_.n_layer > 0 ? acts + last_ab + a.res3
                                           : acts + a.encoded;
  float* dresidual = cfg_.n_layer > 0 ? dacts + last_ab + a.res3
                                      : dacts + a.encoded;
  layernorm_backward(dresidual, grd + p.lnfw, grd + p.lnfb, dacts + a.lnf,
                     residual, acts + a.lnf_mean, acts + a.lnf_rstd,
                     prm + p.lnfw, BT, C);

  for (int l = cfg_.n_layer - 1; l >= 0; --l) {
    const std::size_t pb = p.layer_base + l * p.per_layer;
    const std::size_t ab = a.layer_base + l * a.per_layer;
    const float* res_in =
        l == 0 ? acts + a.encoded : acts + a.layer_base + (l - 1) * a.per_layer + a.res3;
    float* dres_in =
        l == 0 ? dacts + a.encoded
               : dacts + a.layer_base + (l - 1) * a.per_layer + a.res3;
    float* dres3 = dacts + ab + a.res3;
    // res3 = res2 + fcproj
    float* dres2 = dacts + ab + a.res2;
    float* dfcproj = dacts + ab + a.fcproj;
    for (int n = 0; n < BT * C; ++n) {
      dres2[n] += dres3[n];
      dfcproj[n] += dres3[n];
    }
    mm_bwd(ref, dacts + ab + a.fch_gelu, grd + pb + p.fcprojw,
           grd + pb + p.fcprojb, dfcproj, acts + ab + a.fch_gelu,
           prm + pb + p.fcprojw, BT, 4 * C, C);
    kern::gelu_backward(dacts + ab + a.fch, acts + ab + a.fch,
                        dacts + ab + a.fch_gelu, BT * 4 * C);
    mm_bwd(ref, dacts + ab + a.ln2, grd + pb + p.fcw, grd + pb + p.fcb,
           dacts + ab + a.fch, acts + ab + a.ln2, prm + pb + p.fcw,
           BT, C, 4 * C);
    layernorm_backward(dres2, grd + pb + p.ln2w, grd + pb + p.ln2b,
                       dacts + ab + a.ln2, acts + ab + a.res2,
                       acts + ab + a.ln2_mean, acts + ab + a.ln2_rstd,
                       prm + pb + p.ln2w, BT, C);
    // res2 = residual_in + attproj
    float* dattproj = dacts + ab + a.attproj;
    for (int n = 0; n < BT * C; ++n) {
      dres_in[n] += dres2[n];
      dattproj[n] += dres2[n];
    }
    mm_bwd(ref, dacts + ab + a.atty, grd + pb + p.attprojw,
           grd + pb + p.attprojb, dattproj, acts + ab + a.atty,
           prm + pb + p.attprojw, BT, C, C);
    attention_backward(dacts + ab + a.qkv, dacts + ab + a.preatt,
                       dacts + ab + a.att, dacts + ab + a.atty,
                       acts + ab + a.qkv, acts + ab + a.att, B, T, C, NH);
    mm_bwd(ref, dacts + ab + a.ln1, grd + pb + p.qkvw, grd + pb + p.qkvb,
           dacts + ab + a.qkv, acts + ab + a.ln1, prm + pb + p.qkvw,
           BT, C, 3 * C);
    layernorm_backward(dres_in, grd + pb + p.ln1w, grd + pb + p.ln1b,
                       dacts + ab + a.ln1, res_in, acts + ab + a.ln1_mean,
                       acts + ab + a.ln1_rstd, prm + pb + p.ln1w, BT, C);
  }
  encoder_backward(grd + p.wte, grd + p.wpe, dacts + a.encoded, tokens, B, T,
                   C);
}

float Gpt::backward_lm(const int* tokens, const int* targets, int B, int T) {
  const ActLayout a = ActLayout::make(cfg_, B, T);
  const int V = cfg_.vocab;
  const int BT = B * T;
  // count valid targets
  int count = 0;
  for (int n = 0; n < BT; ++n) count += targets[n] >= 0 ? 1 : 0;
  if (count == 0) return 0.f;

  std::vector<float> dlogits(static_cast<std::size_t>(BT) * V, 0.f);
  const float* probs = acts_.data() + a.probs;
  float loss = 0.f;
  const float inv = 1.f / static_cast<float>(count);
  for (int n = 0; n < BT; ++n) {
    const int tgt = targets[n];
    if (tgt < 0) continue;
    const float* pr = probs + static_cast<std::size_t>(n) * V;
    loss += -std::log(pr[tgt] + 1e-10f);
    float* dl = dlogits.data() + static_cast<std::size_t>(n) * V;
    for (int v = 0; v < V; ++v) dl[v] = pr[v] * inv;
    dl[tgt] -= inv;
  }
  backward_from(tokens, dlogits.data(), nullptr, B, T);
  return loss * inv;
}

// ---------------------------------------------------------------------------
// Incremental generation with KV caches.
// ---------------------------------------------------------------------------
Gpt::GenState Gpt::gen_begin(int B) const {
  assert(B > 0);
  GenState s;
  s.B = B;
  s.t = 0;
  const std::size_t cache =
      static_cast<std::size_t>(cfg_.n_layer) * B * cfg_.ctx * cfg_.n_embd;
  s.kcache.assign(cache, 0.f);
  s.vcache.assign(cache, 0.f);
  // scratch: x, ln, qkv, atty, proj, fch, fgel per batch row
  const std::size_t C = cfg_.n_embd;
  s.scratch.assign(static_cast<std::size_t>(B) * (C * 5 + 3 * C + 8 * C), 0.f);
  // Attention-score and layernorm scratch, sized from the config (the seed
  // used a fixed float[512] stack buffer here, which a large-ctx config
  // would silently overrun).
  s.att.assign(static_cast<std::size_t>(cfg_.ctx), 0.f);
  s.norm.assign(static_cast<std::size_t>(2) * B, 0.f);
  if (!use_ref_kernels_) {
    // Packed (transposed) weight views: one pack per generation, then every
    // per-token matvec streams weights linearly (see kern::PackedMat). Pack
    // cost is one pass over the parameters — amortized across ctx tokens.
    const Layout p = Layout::make(cfg_);
    const float* prm = params_.data();
    const int Ci = cfg_.n_embd;
    s.wpack.resize(static_cast<std::size_t>(cfg_.n_layer) * 4 + 1);
    for (int l = 0; l < cfg_.n_layer; ++l) {
      const std::size_t pb = p.layer_base + l * p.per_layer;
      kern::pack_transpose(s.wpack[l * 4 + 0], prm + pb + p.qkvw, 3 * Ci, Ci);
      kern::pack_transpose(s.wpack[l * 4 + 1], prm + pb + p.attprojw, Ci, Ci);
      kern::pack_transpose(s.wpack[l * 4 + 2], prm + pb + p.fcw, 4 * Ci, Ci);
      kern::pack_transpose(s.wpack[l * 4 + 3], prm + pb + p.fcprojw, Ci,
                           4 * Ci);
    }
    kern::pack_transpose(s.wpack.back(), prm + p.wte, cfg_.vocab, Ci);
  }
  return s;
}

void Gpt::gen_step(GenState& s, const int* tokens_t, float* logits_out) const {
  OBS_SPAN("ml.gen_step");
  const Layout p = Layout::make(cfg_);
  const int C = cfg_.n_embd, NH = cfg_.n_head, V = cfg_.vocab;
  const int hs = C / NH;
  const int B = s.B;
  const int pos = s.t;
  assert(pos < cfg_.ctx);
  const float* prm = params_.data();
  const float scale = 1.f / std::sqrt(static_cast<float>(hs));
  // Packed weights are built by gen_begin; toggling the kernel path between
  // gen_begin and gen_step is not supported.
  const bool ref = s.wpack.empty();

  float* x = s.scratch.data();               // [B, C]
  float* ln = x + static_cast<std::size_t>(B) * C;       // [B, C]
  float* qkv = ln + static_cast<std::size_t>(B) * C;     // [B, 3C]
  float* atty = qkv + static_cast<std::size_t>(B) * 3 * C;  // [B, C]
  float* proj = atty + static_cast<std::size_t>(B) * C;     // [B, C]
  float* fch = proj + static_cast<std::size_t>(B) * C;      // [B, 4C]
  float* fgel = fch + static_cast<std::size_t>(B) * 4 * C;  // [B, 4C]
  float* att = s.att.data();                                // [ctx]
  float* mean = s.norm.data();                              // [B]
  float* rstd = mean + B;                                   // [B]

  for (int b = 0; b < B; ++b) {
    const float* we = prm + p.wte + static_cast<std::size_t>(tokens_t[b]) * C;
    const float* pe = prm + p.wpe + static_cast<std::size_t>(pos) * C;
    for (int c = 0; c < C; ++c) x[b * C + c] = we[c] + pe[c];
  }

  for (int l = 0; l < cfg_.n_layer; ++l) {
    const std::size_t pb = p.layer_base + l * p.per_layer;
    layernorm_forward(ln, mean, rstd, x, prm + pb + p.ln1w,
                      prm + pb + p.ln1b, B, C);
    if (ref) {
      kern::matmul_forward_ref(qkv, ln, prm + pb + p.qkvw, prm + pb + p.qkvb,
                               B, C, 3 * C);
    } else {
      kern::matmul_forward_packed(qkv, ln, s.wpack[l * 4 + 0],
                                  prm + pb + p.qkvb, B);
    }
    // append k/v to cache
    for (int b = 0; b < B; ++b) {
      float* kc = s.kcache.data() +
                  ((static_cast<std::size_t>(l) * B + b) * cfg_.ctx + pos) * C;
      float* vc = s.vcache.data() +
                  ((static_cast<std::size_t>(l) * B + b) * cfg_.ctx + pos) * C;
      std::memcpy(kc, qkv + b * 3 * C + C, sizeof(float) * C);
      std::memcpy(vc, qkv + b * 3 * C + 2 * C, sizeof(float) * C);
    }
    // attention over cache
    for (int b = 0; b < B; ++b) {
      const float* kbase =
          s.kcache.data() + (static_cast<std::size_t>(l) * B + b) * cfg_.ctx * C;
      const float* vbase =
          s.vcache.data() + (static_cast<std::size_t>(l) * B + b) * cfg_.ctx * C;
      for (int h = 0; h < NH; ++h) {
        const float* q = qkv + b * 3 * C + h * hs;
        float maxv = -1e30f;
        for (int t2 = 0; t2 <= pos; ++t2) {
          const float* k = kbase + static_cast<std::size_t>(t2) * C + h * hs;
          float dot = 0.f;
          for (int i = 0; i < hs; ++i) dot += q[i] * k[i];
          dot *= scale;
          att[t2] = dot;
          maxv = dot > maxv ? dot : maxv;
        }
        float sum = 0.f;
        for (int t2 = 0; t2 <= pos; ++t2) {
          att[t2] = std::exp(att[t2] - maxv);
          sum += att[t2];
        }
        const float inv = 1.f / sum;
        float* o = atty + b * C + h * hs;
        for (int i = 0; i < hs; ++i) o[i] = 0.f;
        for (int t2 = 0; t2 <= pos; ++t2) {
          const float* v = vbase + static_cast<std::size_t>(t2) * C + h * hs;
          const float w = att[t2] * inv;
          for (int i = 0; i < hs; ++i) o[i] += w * v[i];
        }
      }
    }
    if (ref) {
      kern::matmul_forward_ref(proj, atty, prm + pb + p.attprojw,
                               prm + pb + p.attprojb, B, C, C);
    } else {
      kern::matmul_forward_packed(proj, atty, s.wpack[l * 4 + 1],
                                  prm + pb + p.attprojb, B);
    }
    for (int n = 0; n < B * C; ++n) x[n] += proj[n];
    layernorm_forward(ln, mean, rstd, x, prm + pb + p.ln2w,
                      prm + pb + p.ln2b, B, C);
    if (ref) {
      kern::matmul_forward_ref(fch, ln, prm + pb + p.fcw, prm + pb + p.fcb,
                               B, C, 4 * C);
      kern::gelu_forward_ref(fgel, fch, B * 4 * C);
      kern::matmul_forward_ref(proj, fgel, prm + pb + p.fcprojw,
                               prm + pb + p.fcprojb, B, 4 * C, C);
    } else {
      kern::matmul_bias_gelu_forward_packed(fch, fgel, ln, s.wpack[l * 4 + 2],
                                            prm + pb + p.fcb, B);
      kern::matmul_forward_packed(proj, fgel, s.wpack[l * 4 + 3],
                                  prm + pb + p.fcprojb, B);
    }
    for (int n = 0; n < B * C; ++n) x[n] += proj[n];
  }
  layernorm_forward(ln, mean, rstd, x, prm + p.lnfw, prm + p.lnfb, B, C);
  if (ref) {
    kern::matmul_forward_ref(logits_out, ln, prm + p.wte, nullptr, B, C, V);
  } else {
    kern::matmul_forward_packed(logits_out, ln, s.wpack.back(), nullptr, B);
  }
  ++s.t;
}

// ---------------------------------------------------------------------------
// Persistence.
// ---------------------------------------------------------------------------
namespace {
constexpr std::uint32_t kModelMagic = 0x43465A4D;  // "CFZM"
constexpr std::uint32_t kModelVersion = 1;
}  // namespace

void Gpt::save_state(ser::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(cfg_.vocab));
  w.u32(static_cast<std::uint32_t>(cfg_.ctx));
  w.u32(static_cast<std::uint32_t>(cfg_.n_layer));
  w.u32(static_cast<std::uint32_t>(cfg_.n_head));
  w.u32(static_cast<std::uint32_t>(cfg_.n_embd));
  w.vec_f32(params_);
}

bool Gpt::restore_state(ser::Reader& r) {
  const std::uint32_t vocab = r.u32();
  const std::uint32_t ctx = r.u32();
  const std::uint32_t n_layer = r.u32();
  const std::uint32_t n_head = r.u32();
  const std::uint32_t n_embd = r.u32();
  std::vector<float> params = r.vec_f32();
  if (!r.ok() || static_cast<int>(vocab) != cfg_.vocab ||
      static_cast<int>(ctx) != cfg_.ctx ||
      static_cast<int>(n_layer) != cfg_.n_layer ||
      static_cast<int>(n_head) != cfg_.n_head ||
      static_cast<int>(n_embd) != cfg_.n_embd ||
      params.size() != params_.size()) {
    r.fail();
    return false;
  }
  params_ = std::move(params);
  return true;
}

ser::Status Gpt::save(const std::string& path) const {
  ser::Writer w;
  save_state(w);
  return ser::write_file(path, kModelMagic, kModelVersion, w.buffer());
}

ser::Status Gpt::load(const std::string& path) {
  std::string payload;
  ser::Status s =
      ser::read_file(path, kModelMagic, kModelVersion, "model", &payload);
  if (!s.ok()) return s;
  ser::Reader r(payload);
  if (!restore_state(r)) {
    return ser::Status::error(
        path + ": model config does not match this build (want vocab=" +
        std::to_string(cfg_.vocab) + " ctx=" + std::to_string(cfg_.ctx) +
        " layers=" + std::to_string(cfg_.n_layer) +
        " heads=" + std::to_string(cfg_.n_head) +
        " embd=" + std::to_string(cfg_.n_embd) + ", or payload is truncated)");
  }
  return {};
}

}  // namespace chatfuzz::ml
