// PPO trainer for the LM policy (training stages 2 and 3 of the paper):
// clipped surrogate objective, per-token KL penalty against a frozen
// reference model (keeps the policy near the pretrained language), value
// head baseline, AdamW updates. Rewards arrive per *sequence* from a
// deterministic reward agent — the disassembler in stage 2 (Eq. 1), the
// Coverage Calculator in stage 3.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/adamw.h"
#include "ml/gpt.h"
#include "ml/sampler.h"
#include "util/rng.h"

namespace chatfuzz::ml {

struct PpoConfig {
  float clip = 0.2f;        // PPO ratio clip epsilon
  float kl_beta = 0.05f;    // per-token KL penalty coefficient
  float vf_coef = 0.5f;     // value-loss weight
  float entropy_coef = 0.f; // entropy bonus weight (0 disables)
  int ppo_epochs = 2;       // optimization passes per batch
  float lr = 1e-4f;
  float reward_scale = 0.05f;     // scales raw environment rewards
  bool whiten_advantages = true;
};

struct PpoStats {
  float mean_env_reward = 0.f;  // raw (unscaled) reward mean
  float mean_kl = 0.f;          // mean logp_old - logp_ref over actions
  float policy_loss = 0.f;
  float value_loss = 0.f;
  float clip_fraction = 0.f;
  float mean_entropy = 0.f;  // policy entropy at action positions (nats)
  std::size_t num_actions = 0;
};

class PpoTrainer {
 public:
  /// `reference` must be a frozen snapshot of the policy (same config);
  /// it is only read.
  PpoTrainer(Gpt& policy, const Gpt& reference, PpoConfig cfg = {});

  /// One PPO update on a batch of generations with their terminal rewards
  /// (rewards[i] corresponds to gens[i]). Sequences with empty responses are
  /// skipped.
  ///
  /// `token_rewards`, when non-null, supplies dense per-response-token shaping
  /// (same outer size as gens; inner size = response length). Deterministic
  /// reward agents such as the disassembler decompose per instruction, and
  /// dense attribution makes small-scale PPO converge in far fewer batches
  /// than a single terminal reward.
  PpoStats update(const std::vector<Generation>& gens,
                  const std::vector<double>& rewards,
                  const std::vector<std::vector<float>>* token_rewards = nullptr);

  AdamW& optimizer() { return opt_; }
  const PpoConfig& config() const { return cfg_; }

 private:
  Gpt& policy_;
  const Gpt& ref_;
  PpoConfig cfg_;
  AdamW opt_;
};

}  // namespace chatfuzz::ml
