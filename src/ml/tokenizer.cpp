#include "ml/tokenizer.h"

namespace chatfuzz::ml {

std::vector<int> Tokenizer::encode(std::span<const std::uint32_t> program,
                                   bool with_bos, bool with_eos) const {
  std::vector<int> tokens;
  tokens.reserve(program.size() * kTokensPerInstr + 2);
  if (with_bos) tokens.push_back(kBos);
  for (std::uint32_t w : program) {
    for (int i = 0; i < kTokensPerInstr; ++i) {
      tokens.push_back(static_cast<int>((w >> (8 * i)) & 0xff));
    }
  }
  if (with_eos) tokens.push_back(kEos);
  return tokens;
}

std::vector<std::uint32_t> Tokenizer::decode(std::span<const int> tokens) const {
  std::vector<std::uint32_t> words;
  std::uint32_t current = 0;
  int have = 0;
  for (int t : tokens) {
    if (t == kEos) break;
    if (t < 0 || t >= kByteVocab) continue;  // skip BOS/PAD/garbage
    current |= static_cast<std::uint32_t>(t) << (8 * have);
    if (++have == kTokensPerInstr) {
      words.push_back(current);
      current = 0;
      have = 0;
    }
  }
  return words;
}

}  // namespace chatfuzz::ml
