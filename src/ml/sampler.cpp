#include "ml/sampler.h"

#include <algorithm>
#include <cmath>

namespace chatfuzz::ml {

int Sampler::sample_row(const float* logits, int vocab, Rng& rng,
                        bool ban_eos, float* logp_out) const {
  // Full-distribution log-softmax (PPO's logp_old must match what training
  // recomputes, independent of sampling temperature / top-k truncation).
  float maxv = -1e30f;
  for (int v = 0; v < vocab; ++v) maxv = std::max(maxv, logits[v]);
  double denom = 0.0;
  for (int v = 0; v < vocab; ++v) denom += std::exp(logits[v] - maxv);
  const double log_denom = std::log(denom);

  // Sampling distribution: temperature + top-k.
  const float invt = cfg_.temperature > 0.f ? 1.f / cfg_.temperature : 1.f;
  std::vector<std::pair<float, int>> scored(vocab);
  for (int v = 0; v < vocab; ++v) {
    const bool banned = ban_eos && v == cfg_.eos_token;
    scored[v] = {banned ? -1e30f : logits[v] * invt, v};
  }
  int k = cfg_.top_k > 0 ? std::min(cfg_.top_k, vocab) : vocab;
  std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                    [](auto& x, auto& y) { return x.first > y.first; });
  float smax = scored[0].first;
  if (cfg_.top_p < 1.f) {
    // Nucleus filter (applied after top-k, as in the HF generate stack):
    // keep the smallest sorted prefix holding >= top_p of the *tempered*
    // distribution's mass; the mass denominator spans the full vocabulary.
    double full = 0.0;
    for (const auto& [score, _] : scored) full += std::exp(score - smax);
    double cum = 0.0;
    int kept = 0;
    while (kept < k) {
      cum += std::exp(scored[kept].first - smax);
      ++kept;
      if (cum / full >= cfg_.top_p) break;
    }
    k = kept;
  }
  double ssum = 0.0;
  for (int i = 0; i < k; ++i) ssum += std::exp(scored[i].first - smax);
  double r = rng.uniform() * ssum;
  int chosen = scored[k - 1].second;
  for (int i = 0; i < k; ++i) {
    const double p = std::exp(scored[i].first - smax);
    if (r < p) {
      chosen = scored[i].second;
      break;
    }
    r -= p;
  }
  if (logp_out != nullptr) {
    *logp_out = static_cast<float>(logits[chosen] - maxv - log_denom);
  }
  return chosen;
}

std::vector<Generation> Sampler::generate(
    const Gpt& model, const std::vector<std::vector<int>>& prompts,
    Rng& rng) const {
  const int B = static_cast<int>(prompts.size());
  const int ctx = model.config().ctx;
  std::vector<Generation> gens(B);
  for (int b = 0; b < B; ++b) gens[b].prompt = prompts[b];

  Gpt::GenState state = model.gen_begin(B);
  std::vector<int> cur(B);
  std::vector<bool> done(B, false);
  for (int b = 0; b < B; ++b) cur[b] = prompts[b].front();

  std::vector<float> logits(static_cast<std::size_t>(B) * model.config().vocab);
  const int vocab = model.config().vocab;

  for (int pos = 0; pos + 1 < ctx; ++pos) {
    bool any_active = false;
    for (int b = 0; b < B; ++b) any_active = any_active || !done[b];
    if (!any_active) break;

    model.gen_step(state, cur.data(), logits.data());

    for (int b = 0; b < B; ++b) {
      const auto prompt_len = static_cast<int>(prompts[b].size());
      if (pos + 1 < prompt_len) {
        cur[b] = prompts[b][pos + 1];  // still consuming the prompt
        continue;
      }
      if (done[b]) {
        cur[b] = cfg_.eos_token;  // keep the lane warm; outputs discarded
        continue;
      }
      float logp = 0.f;
      const bool ban_eos =
          static_cast<int>(gens[b].response.size()) < cfg_.min_new_tokens;
      const int tok = sample_row(logits.data() +
                                     static_cast<std::size_t>(b) * vocab,
                                 vocab, rng, ban_eos, &logp);
      gens[b].response.push_back(tok);
      gens[b].response_logps.push_back(logp);
      cur[b] = tok;
      if ((cfg_.stop_at_eos && tok == cfg_.eos_token) ||
          static_cast<int>(gens[b].response.size()) >= cfg_.max_new_tokens) {
        done[b] = true;
      }
    }
  }
  return gens;
}

}  // namespace chatfuzz::ml
