// Byte-pair-encoding tokenizer trained on the machine-language corpus
// (paper §IV-C1: "we trained a tokenizer on the full ISA"). The byte-level
// Tokenizer gives a fixed 4-tokens-per-instruction representation; this BPE
// variant learns merges over instruction byte streams, so frequent encodings
// (common opcodes, common register pairs, whole hot instructions) compress
// to single tokens — the same trade HuggingFace's GPT-2 tokenizer makes for
// natural language.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/serialize.h"

namespace chatfuzz::ml {

class BpeTokenizer {
 public:
  /// Train a tokenizer on a corpus of programs. `vocab_size` counts the 256
  /// base bytes, the learned merges, and the three specials (BOS/EOS/PAD);
  /// it must be at least 259.
  static BpeTokenizer train(
      const std::vector<std::vector<std::uint32_t>>& corpus, int vocab_size);

  int vocab_size() const { return 256 + static_cast<int>(merges_.size()) + 3; }
  int num_merges() const { return static_cast<int>(merges_.size()); }
  int bos() const { return 256 + num_merges(); }
  int eos() const { return bos() + 1; }
  int pad() const { return bos() + 2; }

  /// Encode a program: bytes of each little-endian word, merged bottom-up.
  std::vector<int> encode(std::span<const std::uint32_t> program,
                          bool with_bos = true, bool with_eos = false) const;

  /// Decode back to instruction words; specials skipped, stops at EOS,
  /// trailing partial words dropped (mirrors Tokenizer::decode).
  std::vector<std::uint32_t> decode(std::span<const int> tokens) const;

  /// Mean bytes per token over a corpus (compression; 1.0 = byte level).
  double compression_ratio(
      const std::vector<std::vector<std::uint32_t>>& corpus) const;

  // ---- persistence ----------------------------------------------------------
  std::string serialize() const;
  static std::optional<BpeTokenizer> deserialize(const std::string& text);

  /// Binary-framework embedding (campaign/pipeline snapshots): the learned
  /// vocab travels as a sub-stream of a larger checkpoint.
  void save_state(ser::Writer& w) const {
    w.u64(merges_.size());
    for (const auto& [a, b] : merges_) {
      w.u32(static_cast<std::uint32_t>(a));
      w.u32(static_cast<std::uint32_t>(b));
    }
  }
  bool restore_state(ser::Reader& r) {
    const std::uint64_t n = r.u64();
    if (!r.ok() || n > r.remaining() / 8) {
      r.fail();
      return false;
    }
    std::vector<std::pair<int, int>> merges;
    merges.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const int a = static_cast<int>(r.u32());
      const int b = static_cast<int>(r.u32());
      // A merge may only reference base bytes or earlier merges.
      if (a < 0 || b < 0 || a >= 256 + static_cast<int>(i) ||
          b >= 256 + static_cast<int>(i)) {
        r.fail();
        return false;
      }
      merges.emplace_back(a, b);
    }
    if (!r.ok()) return false;
    merges_ = std::move(merges);
    return true;
  }

 private:
  BpeTokenizer() = default;

  /// Byte expansion of each token id (base bytes + merged sequences).
  std::vector<std::uint8_t> expand(int token) const;

  // merges_[i]: the pair of token ids that merge into id 256+i.
  std::vector<std::pair<int, int>> merges_;
};

}  // namespace chatfuzz::ml
