// Autoregressive sampling from a Gpt with temperature + top-k, using the
// KV-cache generation path. Deterministic under a fixed Rng.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/gpt.h"
#include "util/rng.h"

namespace chatfuzz::ml {

struct SampleConfig {
  float temperature = 1.0f;
  int top_k = 40;       // 0 = full distribution
  float top_p = 1.0f;   // nucleus sampling: keep the smallest prefix with
                        // this much probability mass (1.0 = disabled)
  int max_new_tokens = 64;
  int min_new_tokens = 0;  // EOS is masked out before this many tokens
  bool stop_at_eos = true;
  int eos_token = 257;  // Tokenizer::kEos
};

/// One generated sequence: prompt + continuation, with per-continuation-token
/// log-probabilities under the sampling model (needed by PPO as logp_old).
struct Generation {
  std::vector<int> prompt;
  std::vector<int> response;          // generated tokens only
  std::vector<float> response_logps;  // logp of each response token
};

class Sampler {
 public:
  explicit Sampler(SampleConfig cfg = {}) : cfg_(cfg) {}
  const SampleConfig& config() const { return cfg_; }

  /// Generate continuations for a batch of prompts (ragged). All prompts
  /// must be non-empty and fit within model ctx together with
  /// max_new_tokens.
  std::vector<Generation> generate(const Gpt& model,
                                   const std::vector<std::vector<int>>& prompts,
                                   Rng& rng) const;

 private:
  int sample_row(const float* logits, int vocab, Rng& rng, bool ban_eos,
                 float* logp_out) const;
  SampleConfig cfg_;
};

}  // namespace chatfuzz::ml
