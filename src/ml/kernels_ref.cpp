// Reference kernels: the seed's naive triple loops, verbatim. This file is
// deliberately compiled at the project's base optimization level (no -O3 /
// -march boost — see CMakeLists.txt): it is the parity oracle for the
// vectorized kernels AND the baseline the throughput bench measures speedups
// against, so it must stay representative of the seed build.
#include <cmath>

#include "ml/kernels.h"

namespace chatfuzz::ml::kern {

void matmul_forward_ref(float* out, const float* inp, const float* w,
                        const float* bias, int N, int Cin, int Cout) {
  for (int n = 0; n < N; ++n) {
    const float* x = inp + static_cast<std::size_t>(n) * Cin;
    float* o = out + static_cast<std::size_t>(n) * Cout;
    for (int oc = 0; oc < Cout; ++oc) {
      const float* wr = w + static_cast<std::size_t>(oc) * Cin;
      float acc = bias != nullptr ? bias[oc] : 0.f;
      for (int i = 0; i < Cin; ++i) acc += x[i] * wr[i];
      o[oc] = acc;
    }
  }
}

void matmul_backward_ref(float* dinp, float* dw, float* dbias,
                         const float* dout, const float* inp, const float* w,
                         int N, int Cin, int Cout) {
  for (int n = 0; n < N; ++n) {
    const float* d = dout + static_cast<std::size_t>(n) * Cout;
    float* di = dinp + static_cast<std::size_t>(n) * Cin;
    for (int oc = 0; oc < Cout; ++oc) {
      const float* wr = w + static_cast<std::size_t>(oc) * Cin;
      const float g = d[oc];
      for (int i = 0; i < Cin; ++i) di[i] += g * wr[i];
    }
  }
  for (int n = 0; n < N; ++n) {
    const float* d = dout + static_cast<std::size_t>(n) * Cout;
    const float* x = inp + static_cast<std::size_t>(n) * Cin;
    for (int oc = 0; oc < Cout; ++oc) {
      float* dwr = dw + static_cast<std::size_t>(oc) * Cin;
      const float g = d[oc];
      if (dbias != nullptr) dbias[oc] += g;
      for (int i = 0; i < Cin; ++i) dwr[i] += g * x[i];
    }
  }
}

void gelu_forward_ref(float* out, const float* inp, int N) {
  for (int n = 0; n < N; ++n) out[n] = gelu_scalar(inp[n]);
}

void gelu_backward_ref(float* dinp, const float* inp, const float* dout,
                       int N) {
  constexpr float kS = 0.7978845608028654f;  // sqrt(2/pi)
  for (int n = 0; n < N; ++n) {
    const float x = inp[n];
    const float cube = 0.044715f * x * x * x;
    const float tanh_arg = kS * (x + cube);
    const float tanh_out = std::tanh(tanh_arg);
    const float cosh_v = std::cosh(tanh_arg);
    const float sech2 = 1.f / (cosh_v * cosh_v);
    const float local =
        0.5f * (1.f + tanh_out) +
        x * 0.5f * sech2 * kS * (1.f + 3.f * 0.044715f * x * x);
    dinp[n] += local * dout[n];
  }
}

}  // namespace chatfuzz::ml::kern
