#include "ml/bpe.h"

#include <charconv>
#include <map>
#include <sstream>

namespace chatfuzz::ml {
namespace {

std::vector<int> to_bytes(std::span<const std::uint32_t> program) {
  std::vector<int> out;
  out.reserve(program.size() * 4);
  for (std::uint32_t w : program) {
    for (unsigned i = 0; i < 4; ++i) {
      out.push_back(static_cast<int>((w >> (8 * i)) & 0xff));
    }
  }
  return out;
}

/// Replace every occurrence of (a,b) in `seq` with `id`, in place.
void apply_merge(std::vector<int>& seq, int a, int b, int id) {
  std::size_t w = 0;
  for (std::size_t r = 0; r < seq.size(); ++r) {
    if (r + 1 < seq.size() && seq[r] == a && seq[r + 1] == b) {
      seq[w++] = id;
      ++r;
    } else {
      seq[w++] = seq[r];
    }
  }
  seq.resize(w);
}

}  // namespace

BpeTokenizer BpeTokenizer::train(
    const std::vector<std::vector<std::uint32_t>>& corpus, int vocab_size) {
  BpeTokenizer tok;
  const int target_merges = std::max(0, vocab_size - 256 - 3);

  std::vector<std::vector<int>> seqs;
  seqs.reserve(corpus.size());
  for (const auto& p : corpus) seqs.push_back(to_bytes(p));

  for (int m = 0; m < target_merges; ++m) {
    // Most frequent adjacent pair across the working corpus; ties break on
    // the smaller pair for determinism.
    std::map<std::pair<int, int>, std::size_t> counts;
    for (const auto& s : seqs) {
      for (std::size_t i = 0; i + 1 < s.size(); ++i) {
        ++counts[{s[i], s[i + 1]}];
      }
    }
    std::pair<int, int> best{-1, -1};
    std::size_t best_count = 1;  // require at least 2 occurrences
    for (const auto& [pair, count] : counts) {
      if (count > best_count) {
        best_count = count;
        best = pair;
      }
    }
    if (best.first < 0) break;  // nothing left worth merging
    const int id = 256 + static_cast<int>(tok.merges_.size());
    tok.merges_.push_back(best);
    for (auto& s : seqs) apply_merge(s, best.first, best.second, id);
  }
  return tok;
}

std::vector<int> BpeTokenizer::encode(std::span<const std::uint32_t> program,
                                      bool with_bos, bool with_eos) const {
  std::vector<int> seq = to_bytes(program);
  // Merges must apply in rank order: earlier merges created the ids later
  // merges refer to.
  for (std::size_t i = 0; i < merges_.size(); ++i) {
    apply_merge(seq, merges_[i].first, merges_[i].second,
                256 + static_cast<int>(i));
  }
  std::vector<int> out;
  out.reserve(seq.size() + 2);
  if (with_bos) out.push_back(bos());
  out.insert(out.end(), seq.begin(), seq.end());
  if (with_eos) out.push_back(eos());
  return out;
}

std::vector<std::uint8_t> BpeTokenizer::expand(int token) const {
  if (token < 256) return {static_cast<std::uint8_t>(token)};
  const int idx = token - 256;
  if (idx >= static_cast<int>(merges_.size())) return {};  // special
  auto left = expand(merges_[idx].first);
  const auto right = expand(merges_[idx].second);
  left.insert(left.end(), right.begin(), right.end());
  return left;
}

std::vector<std::uint32_t> BpeTokenizer::decode(
    std::span<const int> tokens) const {
  std::vector<std::uint8_t> bytes;
  for (int t : tokens) {
    if (t == eos()) break;
    if (t == bos() || t == pad()) continue;
    if (t < 0 || t >= vocab_size()) continue;
    const auto ex = expand(t);
    bytes.insert(bytes.end(), ex.begin(), ex.end());
  }
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i + 4 <= bytes.size(); i += 4) {
    out.push_back(static_cast<std::uint32_t>(bytes[i]) |
                  (static_cast<std::uint32_t>(bytes[i + 1]) << 8) |
                  (static_cast<std::uint32_t>(bytes[i + 2]) << 16) |
                  (static_cast<std::uint32_t>(bytes[i + 3]) << 24));
  }
  return out;
}

double BpeTokenizer::compression_ratio(
    const std::vector<std::vector<std::uint32_t>>& corpus) const {
  std::size_t bytes = 0, tokens = 0;
  for (const auto& p : corpus) {
    bytes += 4 * p.size();
    tokens += encode(p, false, false).size();
  }
  return tokens == 0 ? 1.0
                     : static_cast<double>(bytes) / static_cast<double>(tokens);
}

std::string BpeTokenizer::serialize() const {
  std::ostringstream os;
  os << "bpe v1 " << merges_.size() << "\n";
  for (const auto& [a, b] : merges_) os << a << " " << b << "\n";
  return os.str();
}

std::optional<BpeTokenizer> BpeTokenizer::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string tag, version;
  std::size_t n = 0;
  if (!(is >> tag >> version >> n) || tag != "bpe" || version != "v1") {
    return std::nullopt;
  }
  BpeTokenizer tok;
  tok.merges_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    int a = 0, b = 0;
    if (!(is >> a >> b)) return std::nullopt;
    const int limit = 256 + static_cast<int>(i);
    if (a < 0 || b < 0 || a >= limit || b >= limit) return std::nullopt;
    tok.merges_.emplace_back(a, b);
  }
  return tok;
}

}  // namespace chatfuzz::ml
