// ISA tokenizer (paper §IV-C1): translates machine-code test vectors to and
// from token streams for the language model. Byte-level over little-endian
// instruction words (the GPT-2 byte-level scheme applied to machine code),
// with BOS/EOS/PAD specials. Each 32-bit instruction is exactly four tokens,
// so the positional embedding can learn the instruction period.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace chatfuzz::ml {

class Tokenizer {
 public:
  static constexpr int kByteVocab = 256;
  static constexpr int kBos = 256;
  static constexpr int kEos = 257;
  static constexpr int kPad = 258;
  static constexpr int kVocabSize = 259;
  static constexpr int kTokensPerInstr = 4;

  /// Encode a program to tokens. Adds BOS; adds EOS if `with_eos`.
  std::vector<int> encode(std::span<const std::uint32_t> program,
                          bool with_bos = true, bool with_eos = false) const;

  /// Decode tokens back to instruction words. Specials are skipped; decoding
  /// stops at EOS; trailing bytes that do not complete a word are dropped.
  std::vector<std::uint32_t> decode(std::span<const int> tokens) const;

  /// Number of *complete* instructions a token span decodes to.
  std::size_t instr_count(std::span<const int> tokens) const {
    return decode(tokens).size();
  }
};

}  // namespace chatfuzz::ml
