// GPT-2-class decoder-only transformer with manual forward/backward on CPU
// (llm.c-style flat buffers): token+position embeddings, pre-norm causal
// self-attention blocks, GELU MLPs, tied LM head, plus a scalar value head
// for PPO. This is the "LLM-based Input Generator" of the paper, scaled to
// CPU-trainable size (see DESIGN.md substitution table).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/kernels.h"
#include "util/serialize.h"

namespace chatfuzz::ml {

struct GptConfig {
  int vocab = 259;   // Tokenizer::kVocabSize
  int ctx = 128;     // max sequence length in tokens
  int n_layer = 4;
  int n_head = 4;
  int n_embd = 128;

  /// Paper-scale training benches (stage-1/2 convergence studies).
  static GptConfig paper() { return GptConfig{}; }
  /// Campaign config: small enough that a full fuzzing loop (generate →
  /// simulate → PPO) runs in seconds per batch on one CPU core.
  static GptConfig small() { return GptConfig{259, 128, 2, 4, 64}; }
  /// Unit-test config (gradient checks etc.).
  static GptConfig tiny() { return GptConfig{64, 32, 1, 2, 16}; }

  int head_size() const { return n_embd / n_head; }
};

/// Flat-buffer GPT-2 model. All parameters live in one contiguous vector
/// (same layout for gradients), which makes the optimizer and
/// reference-model snapshots trivial.
class Gpt {
 public:
  /// Validates the config hard (even in release builds): ctx/vocab/n_embd
  /// must be positive and n_embd divisible by n_head — generation scratch
  /// and the attention head split are sized from these.
  Gpt(GptConfig cfg, std::uint64_t seed);

  const GptConfig& config() const { return cfg_; }
  std::size_t num_params() const { return params_.size(); }
  std::vector<float>& params() { return params_; }
  const std::vector<float>& params() const { return params_; }
  std::vector<float>& grads() { return grads_; }
  void zero_grad();

  /// Make this model a parameter copy of `other` (reference snapshots).
  void copy_params_from(const Gpt& other);

  // ---- training-path forward/backward -------------------------------------
  /// Forward over a [B,T] token batch. Computes logits, log-softmax-ready
  /// probs, and the value head. T must be <= ctx; tokens in [0, vocab).
  void forward(const int* tokens, int B, int T);

  /// Language-model loss vs. targets [B,T] (target -1 = ignore position).
  /// Must follow forward() on the same batch. Accumulates gradients and
  /// returns mean cross-entropy over non-ignored positions.
  float backward_lm(const int* tokens, const int* targets, int B, int T);

  /// Policy-gradient path: caller supplies dL/dlogits [B,T,V] and
  /// dL/dvalue [B,T]; gradients are accumulated into grads().
  void backward_from(const int* tokens, const float* dlogits,
                     const float* dvalues, int B, int T);

  /// Views of the last forward's outputs.
  const float* logits() const { return acts_ptr(kActLogits); }
  const float* probs() const { return acts_ptr(kActProbs); }
  const float* values() const { return acts_ptr(kActValues); }
  int last_B() const { return B_; }
  int last_T() const { return T_; }

  /// Log-probability of token `tok` at (b, t) from the last forward.
  float logprob(int b, int t, int tok) const;

  // ---- incremental (KV-cache) generation path ------------------------------
  /// Opaque per-generation state: per-layer K/V caches for a batch, packed
  /// (transposed) weight views so each per-token matvec streams weights
  /// linearly, and all decode scratch (including the attention-score buffer,
  /// sized from cfg.ctx — no fixed-size stack arrays).
  struct GenState {
    int B = 0;
    int t = 0;  // positions already consumed
    std::vector<float> kcache, vcache;  // [L, B, ctx, C]
    std::vector<float> scratch;
    std::vector<float> att;          // [ctx] attention-score scratch
    std::vector<float> norm;         // [2, B] layernorm mean/rstd scratch
    std::vector<kern::PackedMat> wpack;  // per layer: qkv, attproj, fc,
                                         // fcproj; then the tied LM head
  };

  /// Begin incremental generation for a batch of B sequences.
  GenState gen_begin(int B) const;

  /// Feed one token per sequence (tokens_t[B], position = state.t) and get
  /// next-token logits [B, vocab] in logits_out. Advances state.t.
  void gen_step(GenState& state, const int* tokens_t, float* logits_out) const;

  // ---- persistence ----------------------------------------------------------
  /// Versioned + checksummed model file (util/serialize.h container). On
  /// failure the Status carries the path and errno / truncation / config
  /// detail — callers must surface it, not silently fall back to a fresh
  /// model. load() requires the file's config to match this model's.
  ser::Status save(const std::string& path) const;
  ser::Status load(const std::string& path);

  /// Embed / extract the parameters within a larger snapshot stream
  /// (campaign checkpoints). Config is validated the same way load() does.
  void save_state(ser::Writer& w) const;
  bool restore_state(ser::Reader& r);

  /// Route all matmul/GELU work through the seed's naive reference kernels
  /// instead of the vectorized subsystem (ml/kernels.h). Benchmark and
  /// parity-test hook; off by default.
  void set_use_ref_kernels(bool ref) { use_ref_kernels_ = ref; }
  bool use_ref_kernels() const { return use_ref_kernels_; }

 private:
  enum ActName {
    kActEncoded, kActLnf, kActLnfMean, kActLnfRstd, kActLogits, kActProbs,
    kActValues,
  };
  const float* acts_ptr(ActName which) const;
  void ensure_acts(int B, int T);

  GptConfig cfg_;
  std::vector<float> params_;
  std::vector<float> grads_;
  bool use_ref_kernels_ = false;

  // Activation & activation-gradient arenas for the current (B,T).
  int B_ = 0, T_ = 0;
  std::vector<float> acts_;
  std::vector<float> dacts_;

  struct Layout;  // parameter/activation offset tables
};

}  // namespace chatfuzz::ml
