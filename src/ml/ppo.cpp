#include "ml/ppo.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "ml/tokenizer.h"
#include "obs/trace.h"

namespace chatfuzz::ml {

PpoTrainer::PpoTrainer(Gpt& policy, const Gpt& reference, PpoConfig cfg)
    : policy_(policy),
      ref_(reference),
      cfg_(cfg),
      opt_(policy.num_params(), AdamWConfig{cfg.lr}) {}

PpoStats PpoTrainer::update(const std::vector<Generation>& gens,
                            const std::vector<double>& rewards,
                            const std::vector<std::vector<float>>* token_rewards) {
  OBS_SPAN("ml.ppo_update");
  PpoStats stats;

  // Keep only sequences with a non-empty response.
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < gens.size(); ++i) {
    if (!gens[i].response.empty()) keep.push_back(i);
  }
  if (keep.empty()) return stats;

  const int B = static_cast<int>(keep.size());
  int T = 0;
  for (std::size_t i : keep) {
    T = std::max(T, static_cast<int>(gens[i].prompt.size() +
                                     gens[i].response.size()));
  }
  T = std::min(T, policy_.config().ctx);
  const int V = policy_.config().vocab;

  // Padded token batch; actions are response tokens; the logits that chose
  // the response token at sequence position s live at position s-1.
  std::vector<int> tokens(static_cast<std::size_t>(B) * T, Tokenizer::kPad);
  struct Action {
    int b;
    int t_logits;   // position whose logits produced the action
    int token;
    float logp_old;
    float shaped;   // dense per-token reward (pre-scaling)
  };
  std::vector<Action> actions;
  for (int bi = 0; bi < B; ++bi) {
    const Generation& g = gens[keep[bi]];
    const int plen = static_cast<int>(g.prompt.size());
    const std::vector<float>* tr =
        token_rewards != nullptr ? &(*token_rewards)[keep[bi]] : nullptr;
    int t = 0;
    for (int tok : g.prompt) {
      if (t >= T) break;
      tokens[bi * T + t++] = tok;
    }
    for (std::size_t j = 0; j < g.response.size(); ++j) {
      if (t >= T) break;
      tokens[bi * T + t] = g.response[j];
      const float shaped = tr != nullptr && j < tr->size() ? (*tr)[j] : 0.f;
      actions.push_back({bi, plen + static_cast<int>(j) - 1, g.response[j],
                         g.response_logps[j], shaped});
      ++t;
    }
  }
  if (actions.empty()) return stats;
  stats.num_actions = actions.size();

  // Reference logprobs (frozen model) for the KL penalty.
  Gpt& mutable_ref = const_cast<Gpt&>(ref_);  // forward only; no grads
  mutable_ref.forward(tokens.data(), B, T);
  std::vector<float> logp_ref(actions.size());
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const Action& a = actions[i];
    logp_ref[i] = mutable_ref.logprob(a.b, a.t_logits, a.token);
  }

  // Per-token rewards: -beta * (logp_old - logp_ref), terminal env reward
  // added on the last action of each sequence (trl-style shaping).
  std::vector<float> act_rewards(actions.size(), 0.f);
  double kl_sum = 0.0;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const float kl = actions[i].logp_old - logp_ref[i];
    kl_sum += kl;
    act_rewards[i] = -cfg_.kl_beta * kl + cfg_.reward_scale * actions[i].shaped;
  }
  stats.mean_kl = static_cast<float>(kl_sum / static_cast<double>(actions.size()));
  double env_sum = 0.0;
  for (int bi = 0; bi < B; ++bi) {
    env_sum += rewards[keep[bi]];
    // find last action of sequence bi
    for (std::size_t i = actions.size(); i-- > 0;) {
      if (actions[i].b == bi) {
        act_rewards[i] +=
            cfg_.reward_scale * static_cast<float>(rewards[keep[bi]]);
        break;
      }
    }
  }
  stats.mean_env_reward = static_cast<float>(env_sum / B);

  // Returns: undiscounted reward-to-go within each sequence.
  std::vector<float> returns(actions.size(), 0.f);
  for (int bi = 0; bi < B; ++bi) {
    float acc = 0.f;
    for (std::size_t i = actions.size(); i-- > 0;) {
      if (actions[i].b != bi) continue;
      acc += act_rewards[i];
      returns[i] = acc;
    }
  }

  // Advantages from the pre-update value estimates.
  policy_.forward(tokens.data(), B, T);
  std::vector<float> adv(actions.size());
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const Action& a = actions[i];
    const float v = policy_.values()[a.b * T + a.t_logits];
    adv[i] = returns[i] - v;
  }
  if (cfg_.whiten_advantages && adv.size() > 1) {
    double mean = 0.0;
    for (float x : adv) mean += x;
    mean /= static_cast<double>(adv.size());
    double var = 0.0;
    for (float x : adv) var += (x - mean) * (x - mean);
    var /= static_cast<double>(adv.size());
    const float inv = 1.f / (std::sqrt(static_cast<float>(var)) + 1e-6f);
    for (float& x : adv) x = (x - static_cast<float>(mean)) * inv;
  }

  // PPO epochs.
  const float inv_n = 1.f / static_cast<float>(actions.size());
  for (int epoch = 0; epoch < cfg_.ppo_epochs; ++epoch) {
    if (epoch > 0) policy_.forward(tokens.data(), B, T);
    std::vector<float> dlogits(static_cast<std::size_t>(B) * T * V, 0.f);
    std::vector<float> dvalues(static_cast<std::size_t>(B) * T, 0.f);

    double pol_loss = 0.0, val_loss = 0.0, entropy_sum = 0.0;
    std::size_t clipped = 0;
    for (std::size_t i = 0; i < actions.size(); ++i) {
      const Action& a = actions[i];
      const float logp_new = policy_.logprob(a.b, a.t_logits, a.token);
      const float ratio = std::exp(logp_new - a.logp_old);
      const float lo = 1.f - cfg_.clip, hi = 1.f + cfg_.clip;
      const float unclipped = ratio * adv[i];
      const float clippedv = std::clamp(ratio, lo, hi) * adv[i];
      pol_loss += -std::min(unclipped, clippedv);
      const bool clip_active = ratio < lo || ratio > hi;
      if (clip_active) ++clipped;
      // Gradient flows only through the unclipped branch when it is the min
      // (or when clipping is inactive, where both branches coincide).
      float g = 0.f;
      if (unclipped <= clippedv || !clip_active) {
        g = -inv_n * ratio * adv[i];  // dL/dlogp_new
      }
      if (g != 0.f) {
        const float* pr = policy_.probs() +
                          (static_cast<std::size_t>(a.b) * T + a.t_logits) * V;
        float* dl = dlogits.data() +
                    (static_cast<std::size_t>(a.b) * T + a.t_logits) * V;
        for (int v = 0; v < V; ++v) dl[v] += g * -pr[v];
        dl[a.token] += g;
      }
      // Entropy bonus: maximizing H adds entropy_coef * p_v*(log p_v + H)
      // to dL/dlogit_v (loss carries -entropy_coef * H).
      if (cfg_.entropy_coef > 0.f || epoch == 0) {
        const float* pr = policy_.probs() +
                          (static_cast<std::size_t>(a.b) * T + a.t_logits) * V;
        double h = 0.0;
        for (int v = 0; v < V; ++v) {
          if (pr[v] > 1e-12f) h -= pr[v] * std::log(pr[v]);
        }
        if (epoch == 0) entropy_sum += h;
        if (cfg_.entropy_coef > 0.f) {
          float* dl = dlogits.data() +
                      (static_cast<std::size_t>(a.b) * T + a.t_logits) * V;
          const auto hf = static_cast<float>(h);
          for (int v = 0; v < V; ++v) {
            if (pr[v] > 1e-12f) {
              dl[v] += cfg_.entropy_coef * inv_n * pr[v] *
                       (std::log(pr[v]) + hf);
            }
          }
        }
      }
      // Value loss on the same positions.
      const float v_now = policy_.values()[a.b * T + a.t_logits];
      const float verr = v_now - returns[i];
      val_loss += 0.5 * verr * verr;
      dvalues[a.b * T + a.t_logits] += cfg_.vf_coef * verr * inv_n;
    }
    policy_.zero_grad();
    policy_.backward_from(tokens.data(), dlogits.data(), dvalues.data(), B, T);
    opt_.step(policy_.params(), policy_.grads());

    if (epoch == 0) {
      stats.policy_loss = static_cast<float>(pol_loss * inv_n);
      stats.value_loss = static_cast<float>(val_loss * inv_n);
      stats.clip_fraction =
          static_cast<float>(clipped) / static_cast<float>(actions.size());
      stats.mean_entropy = static_cast<float>(entropy_sum * inv_n);
    }
  }
  return stats;
}

}  // namespace chatfuzz::ml
