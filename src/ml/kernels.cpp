#include "ml/kernels.h"

#include <atomic>
#include <cassert>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <mutex>
#include <thread>

#include "util/parse.h"

namespace chatfuzz::ml::kern {

// ===========================================================================
// Thread splitter: a lazily started persistent pool. Work is dispatched as a
// fixed list of disjoint [lo, hi) ranges — one per participant, computed from
// the range arithmetic alone — so the partitioning (and therefore every
// output bit) is independent of scheduling. The calling thread always
// executes partition 0 itself.
// ===========================================================================
namespace {

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  ~Pool() { shutdown(); }

  void ensure_workers(int workers) {
    if (static_cast<int>(threads_.size()) >= workers) return;
    const std::lock_guard<std::mutex> lock(mu_);
    while (static_cast<int>(threads_.size()) < workers) {
      const int id = static_cast<int>(threads_.size());
      threads_.emplace_back([this, id] { worker_loop(id); });
    }
  }

  /// Run fn(part) for part in [0, parts) using parts-1 pooled workers plus
  /// the caller. Returns after every part has finished.
  void run(int parts, const std::function<void(int)>& fn) {
    assert(parts >= 1);
    if (parts == 1) {
      fn(0);
      return;
    }
    ensure_workers(parts - 1);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      fn_ = &fn;
      parts_ = parts;
      pending_ = parts - 1;
      ++epoch_;
    }
    cv_.notify_all();
    fn(0);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    fn_ = nullptr;
  }

 private:
  void worker_loop(int id) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* fn = nullptr;
      int part = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return quit_ || (epoch_ != seen && id + 1 < parts_); });
        if (quit_) return;
        seen = epoch_;
        fn = fn_;
        part = id + 1;  // the caller runs part 0
      }
      (*fn)(part);
      {
        const std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  void shutdown() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      quit_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
    threads_.clear();
  }

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_, done_cv_;
  const std::function<void(int)>* fn_ = nullptr;
  int parts_ = 0;
  int pending_ = 0;
  std::uint64_t epoch_ = 0;
  bool quit_ = false;
};

int g_threads = 0;  // 0 = not yet initialized from the environment

/// Deterministic contiguous partition of [0, total) into `parts` ranges.
std::pair<int, int> partition(int total, int parts, int part) {
  const int base = total / parts, rem = total % parts;
  const int lo = part * base + (part < rem ? part : rem);
  return {lo, lo + base + (part < rem ? 1 : 0)};
}

/// Split [0, total) across the configured threads and run body(lo, hi) on
/// each range. Falls back to a single inline call when the work is too small
/// to amortize the dispatch or threading is off.
template <typename Body>
void parallel_ranges(int total, std::size_t work_per_item, const Body& body) {
  const int nt = num_threads();
  constexpr std::size_t kMinWorkPerThread = 1 << 15;
  int parts = nt;
  if (parts > total) parts = total;
  if (parts > 1 &&
      static_cast<std::size_t>(total) * work_per_item / parts < kMinWorkPerThread) {
    parts = 1;
  }
  if (parts <= 1) {
    body(0, total);
    return;
  }
  const std::function<void(int)> fn = [&](int part) {
    const auto [lo, hi] = partition(total, parts, part);
    body(lo, hi);
  };
  Pool::instance().run(parts, fn);
}

// ---- vectorizable GELU for the incremental-decode path ---------------------
// libm tanhf is scalar and dominates gen_step once the matmuls are packed
// (4C GELUs per layer per lane per token). This branch-free polynomial
// tanh — exp2-style range reduction, degree-5 e^r polynomial, bit-trick
// scale — is pure float arithmetic, so the whole activation loop
// auto-vectorizes. |rel err| < 3e-6, far inside the generation path's
// parity tolerance. Training keeps exact libm GELU (gelu_scalar) so
// gradients and the *_ref parity stay bit-comparable.

inline float fast_exp(float x) {
  x = x < -87.f ? -87.f : x;
  x = x > 88.f ? 88.f : x;
  const float nf = std::floor(x * 1.44269504089f + 0.5f);
  const float r = x - nf * 0.69314718056f;
  float p = 0.008333333f;
  p = p * r + 0.041666667f;
  p = p * r + 0.166666667f;
  p = p * r + 0.5f;
  p = p * r + 1.f;
  p = p * r + 1.f;
  const std::int32_t bits = (static_cast<std::int32_t>(nf) + 127) << 23;
  float scale;
  std::memcpy(&scale, &bits, sizeof scale);
  return p * scale;
}

inline float fast_tanh(float x) {
  const float xc = x < -9.f ? -9.f : (x > 9.f ? 9.f : x);
  const float e = fast_exp(2.f * xc);
  return (e - 1.f) / (e + 1.f);
}

inline float gelu_fast(float x) {
  constexpr float kS = 0.7978845608028654f;  // sqrt(2/pi)
  const float cube = 0.044715f * x * x * x;
  return 0.5f * x * (1.f + fast_tanh(kS * (x + cube)));
}

/// NB output rows in SAXPY order: each row starts at bias and accumulates
/// x[n, i] * wt_row_i with ascending i. Unit stride on every stream and no
/// loop-carried dependence in the oc loop, so it vectorizes as-is — and
/// blocking NB rows per weight pass means the packed matrix is streamed
/// from memory once per block instead of once per row (the matvec is
/// bandwidth-bound; this is worth more than any further unrolling).
/// Accumulation order per output element is ascending i for every NB, so
/// results do not depend on the blocking.
template <int NB>
void rows_forward_packed(float* out, const float* inp, const float* wt,
                         const float* bias, int Cin, int Cout) {
  for (int n = 0; n < NB; ++n) {
    float* o = out + static_cast<std::size_t>(n) * Cout;
    if (bias != nullptr) {
      for (int oc = 0; oc < Cout; ++oc) o[oc] = bias[oc];
    } else {
      for (int oc = 0; oc < Cout; ++oc) o[oc] = 0.f;
    }
  }
  for (int i = 0; i < Cin; ++i) {
    const float* wr = wt + static_cast<std::size_t>(i) * Cout;
    for (int n = 0; n < NB; ++n) {
      const float a = inp[static_cast<std::size_t>(n) * Cin + i];
      float* o = out + static_cast<std::size_t>(n) * Cout;
      for (int oc = 0; oc < Cout; ++oc) o[oc] += a * wr[oc];
    }
  }
}

/// Forward rows [n0, n1) against a packed matrix, blocked 8/4/1.
void range_forward_packed(float* out, const float* inp, const float* wt,
                          const float* bias, int n0, int n1, int Cin,
                          int Cout) {
  int n = n0;
  for (; n + 8 <= n1; n += 8) {
    rows_forward_packed<8>(out + static_cast<std::size_t>(n) * Cout,
                           inp + static_cast<std::size_t>(n) * Cin, wt, bias,
                           Cin, Cout);
  }
  for (; n + 4 <= n1; n += 4) {
    rows_forward_packed<4>(out + static_cast<std::size_t>(n) * Cout,
                           inp + static_cast<std::size_t>(n) * Cin, wt, bias,
                           Cin, Cout);
  }
  for (; n < n1; ++n) {
    rows_forward_packed<1>(out + static_cast<std::size_t>(n) * Cout,
                           inp + static_cast<std::size_t>(n) * Cin, wt, bias,
                           Cin, Cout);
  }
}

/// Per-thread transpose scratch. Each campaign/training thread that calls
/// matmul_forward keeps its own buffer, so concurrent models never share.
std::vector<float>& transpose_scratch() {
  static thread_local std::vector<float> scratch;
  return scratch;
}

/// Transpose w [Cout, Cin] into scratch [Cin, Cout], blocked so each tile's
/// source and destination lines stay cache-resident; the inner loop walks
/// the destination contiguously (strided reads prefetch much better than
/// strided writes).
void transpose_into(float* dst, const float* w, int Cout, int Cin) {
  constexpr int kB = 32;
  for (int i0 = 0; i0 < Cin; i0 += kB) {
    const int i1 = i0 + kB < Cin ? i0 + kB : Cin;
    for (int o0 = 0; o0 < Cout; o0 += kB) {
      const int o1 = o0 + kB < Cout ? o0 + kB : Cout;
      for (int i = i0; i < i1; ++i) {
        float* drow = dst + static_cast<std::size_t>(i) * Cout;
        for (int oc = o0; oc < o1; ++oc) {
          drow[oc] = w[static_cast<std::size_t>(oc) * Cin + i];
        }
      }
    }
  }
}

}  // namespace

int env_threads() {
  const char* env = std::getenv("CHATFUZZ_ML_THREADS");
  if (env == nullptr) return 1;
  const auto parsed = parse_count(env);
  if (!parsed) {
    std::fprintf(stderr,
                 "[kernels] ignoring malformed CHATFUZZ_ML_THREADS=\"%s\" "
                 "(using 1 thread)\n",
                 env);
    return 1;
  }
  if (*parsed == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }
  return static_cast<int>(*parsed);
}

int num_threads() {
  if (g_threads == 0) g_threads = env_threads();
  return g_threads;
}

void set_num_threads(int n) { g_threads = n < 1 ? 1 : n; }

// ===========================================================================
// Optimized kernels.
// ===========================================================================
void pack_transpose(PackedMat& dst, const float* w, int Cout, int Cin) {
  dst.cout = Cout;
  dst.cin = Cin;
  dst.t.resize(static_cast<std::size_t>(Cout) * Cin);
  transpose_into(dst.t.data(), w, Cout, Cin);
}

void matmul_forward_packed(float* out, const float* inp, const PackedMat& wt,
                           const float* bias, int N) {
  const int Cin = wt.cin, Cout = wt.cout;
  parallel_ranges(N, static_cast<std::size_t>(Cin) * Cout, [&](int n0, int n1) {
    range_forward_packed(out, inp, wt.t.data(), bias, n0, n1, Cin, Cout);
  });
}

void matmul_bias_gelu_forward_packed(float* pre, float* post, const float* inp,
                                     const PackedMat& wt, const float* bias,
                                     int N) {
  const int Cin = wt.cin, Cout = wt.cout;
  parallel_ranges(N, static_cast<std::size_t>(Cin) * Cout, [&](int n0, int n1) {
    range_forward_packed(pre, inp, wt.t.data(), bias, n0, n1, Cin, Cout);
    float* p = pre + static_cast<std::size_t>(n0) * Cout;
    float* g = post + static_cast<std::size_t>(n0) * Cout;
    const std::size_t cnt = static_cast<std::size_t>(n1 - n0) * Cout;
    for (std::size_t k = 0; k < cnt; ++k) g[k] = gelu_fast(p[k]);
  });
}

void matmul_forward(float* out, const float* inp, const float* w,
                    const float* bias, int N, int Cin, int Cout) {
  std::vector<float>& wt = transpose_scratch();
  wt.resize(static_cast<std::size_t>(Cout) * Cin);
  transpose_into(wt.data(), w, Cout, Cin);
  parallel_ranges(N, static_cast<std::size_t>(Cin) * Cout, [&](int n0, int n1) {
    range_forward_packed(out, inp, wt.data(), bias, n0, n1, Cin, Cout);
  });
}

void matmul_bias_gelu_forward(float* pre, float* post, const float* inp,
                              const float* w, const float* bias, int N,
                              int Cin, int Cout) {
  std::vector<float>& wt = transpose_scratch();
  wt.resize(static_cast<std::size_t>(Cout) * Cin);
  transpose_into(wt.data(), w, Cout, Cin);
  parallel_ranges(N, static_cast<std::size_t>(Cin) * Cout, [&](int n0, int n1) {
    range_forward_packed(pre, inp, wt.data(), bias, n0, n1, Cin, Cout);
    float* p = pre + static_cast<std::size_t>(n0) * Cout;
    float* g = post + static_cast<std::size_t>(n0) * Cout;
    const std::size_t cnt = static_cast<std::size_t>(n1 - n0) * Cout;
    for (std::size_t k = 0; k < cnt; ++k) g[k] = gelu_scalar(p[k]);
  });
}

void matmul_backward(float* dinp, float* dw, float* dbias, const float* dout,
                     const float* inp, const float* w, int N, int Cin,
                     int Cout) {
  // dinp[n, :] += sum_oc dout[n, oc] * w[oc, :] — already SAXPY over i in
  // the reference order; rows are independent, so split by n.
  parallel_ranges(N, static_cast<std::size_t>(Cin) * Cout, [&](int n0, int n1) {
    for (int n = n0; n < n1; ++n) {
      const float* d = dout + static_cast<std::size_t>(n) * Cout;
      float* di = dinp + static_cast<std::size_t>(n) * Cin;
      for (int oc = 0; oc < Cout; ++oc) {
        const float* wr = w + static_cast<std::size_t>(oc) * Cin;
        const float g = d[oc];
        for (int i = 0; i < Cin; ++i) di[i] += g * wr[i];
      }
    }
  });
  // dw[oc, :] += sum_n dout[n, oc] * inp[n, :], dbias[oc] += sum_n dout[n, oc].
  // Each thread owns a contiguous oc range and walks n in ascending order,
  // so every dw/dbias element sees the same accumulation order as the
  // reference no matter how many threads run.
  parallel_ranges(Cout, static_cast<std::size_t>(Cin) * N, [&](int o0, int o1) {
    for (int n = 0; n < N; ++n) {
      const float* d = dout + static_cast<std::size_t>(n) * Cout;
      const float* x = inp + static_cast<std::size_t>(n) * Cin;
      for (int oc = o0; oc < o1; ++oc) {
        float* dwr = dw + static_cast<std::size_t>(oc) * Cin;
        const float g = d[oc];
        if (dbias != nullptr) dbias[oc] += g;
        for (int i = 0; i < Cin; ++i) dwr[i] += g * x[i];
      }
    }
  });
}

void gelu_forward(float* out, const float* inp, int N) {
  gelu_forward_ref(out, inp, N);
}

void gelu_backward(float* dinp, const float* inp, const float* dout, int N) {
  gelu_backward_ref(dinp, inp, dout, N);
}

}  // namespace chatfuzz::ml::kern
