// Learning-rate schedules for the training stages: linear warmup followed by
// constant, cosine, or linear decay — the standard HuggingFace Trainer
// schedules the paper's Python stack defaults to.
#pragma once

#include <algorithm>
#include <cmath>
#include <numbers>

namespace chatfuzz::ml {

struct LrSchedule {
  enum class Kind { kConstant, kCosine, kLinear };

  Kind kind = Kind::kConstant;
  float base_lr = 3e-4f;
  int warmup_steps = 0;     // linear ramp 0 -> base_lr
  int total_steps = 1;      // decay horizon (ignored for kConstant)
  float min_lr = 0.f;       // floor after decay

  /// Learning rate at 0-based optimizer step `step`.
  float at(int step) const {
    if (warmup_steps > 0 && step < warmup_steps) {
      return base_lr * static_cast<float>(step + 1) /
             static_cast<float>(warmup_steps);
    }
    if (kind == Kind::kConstant) return base_lr;
    const int horizon = std::max(1, total_steps - warmup_steps);
    const float t = std::clamp(
        static_cast<float>(step - warmup_steps) / static_cast<float>(horizon),
        0.f, 1.f);
    float factor = 1.f;
    if (kind == Kind::kCosine) {
      factor = 0.5f * (1.f + std::cos(std::numbers::pi_v<float> * t));
    } else {  // kLinear
      factor = 1.f - t;
    }
    return min_lr + (base_lr - min_lr) * factor;
  }
};

}  // namespace chatfuzz::ml
