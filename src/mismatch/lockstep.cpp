#include "mismatch/lockstep.h"

namespace chatfuzz::mismatch {

void LockstepComparator::begin(const MismatchDetector& detector,
                               sim::IsaSim& golden, Report& out,
                               std::size_t dut_index) {
  detector_ = &detector;
  golden_ = &golden;
  out_ = &out;
  dut_index_ = dut_index;
  if (dut_index == 0) {
    // Primary DUT starts the test's report; later DUTs of a multi-DUT run
    // append to it so one Report carries the whole test's diff.
    out.mismatches.clear();  // reused across tests; capacity is retained
    out.raw_count = 0;
    out.filtered_count = 0;
  }
  index_ = 0;
  diverged_ = false;
  golden_short_ = false;
  golden.set_sink(&discard_);
}

void LockstepComparator::emit(Mismatch&& m) {
  m.dut_index = dut_index_;  // before finalize(): part of the signature
  ++out_->raw_count;
  if (!detector_->finalize(m)) {
    ++out_->filtered_count;
    return;
  }
  out_->mismatches.push_back(std::move(m));
}

void LockstepComparator::on_commit(const sim::CommitRecord& d) {
  // Past the first control-flow divergence everything is noise from the
  // same root cause, and past the golden model's end there is nothing left
  // to pull — either way the remaining DUT commits only matter to coverage.
  if (diverged_ || golden_short_) return;
  const std::optional<sim::CommitRecord> g = golden_->step();
  if (!g) {
    // Golden trace ended first. Stage the length mismatch now: the current
    // DUT record is its first unmatched commit, the previous pair holds the
    // golden model's final one.
    golden_short_ = true;
    length_ = Mismatch{Kind::kLength, index_, {}, {}, {}, Finding::kOther};
    if (index_ > 0) {
      length_.dut = d;
      length_.golden = last_golden_;
    }
    return;
  }
  if (d.pc != g->pc) {
    emit({Kind::kPcDivergence, index_, d, *g, {}, Finding::kOther});
    diverged_ = true;
    return;
  }
  if (d.instr != g->instr) {
    emit({Kind::kStaleInstr, index_, d, *g, {}, Finding::kOther});
    diverged_ = true;
    return;
  }
  if (d.exception != g->exception) {
    emit({Kind::kException, index_, d, *g, {}, Finding::kOther});
  }
  if (d.has_rd_write != g->has_rd_write) {
    emit({Kind::kRdPresence, index_, d, *g, {}, Finding::kOther});
  } else if (d.has_rd_write && (d.rd != g->rd || d.rd_value != g->rd_value)) {
    emit({Kind::kRdValue, index_, d, *g, {}, Finding::kOther});
  }
  if (d.has_mem != g->has_mem) {
    emit({Kind::kMemPresence, index_, d, *g, {}, Finding::kOther});
  } else if (d.has_mem &&
             (d.mem_addr != g->mem_addr || d.mem_value != g->mem_value ||
              d.mem_size != g->mem_size)) {
    emit({Kind::kMemValue, index_, d, *g, {}, Finding::kOther});
  }
  last_dut_ = d;
  last_golden_ = *g;
  ++index_;
}

void LockstepComparator::finish() {
  if (!diverged_) {
    if (golden_short_) {
      emit(std::move(length_));
    } else if (const std::optional<sim::CommitRecord> g = golden_->step()) {
      // Every DUT commit was matched; one probe step decides whether the
      // golden trace runs longer. This replaces running the golden model to
      // its own step limit just to learn the two lengths differ.
      Mismatch m{Kind::kLength, index_, {}, {}, {}, Finding::kOther};
      if (index_ > 0) {
        m.dut = last_dut_;
        m.golden = *g;
      }
      emit(std::move(m));
    }
  }
  golden_->set_sink(nullptr);
  detector_ = nullptr;
  golden_ = nullptr;
  out_ = nullptr;
}

}  // namespace chatfuzz::mismatch
