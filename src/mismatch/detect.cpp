#include "mismatch/detect.h"

#include <algorithm>

#include "riscv/alu.h"
#include "riscv/csr.h"
#include "riscv/decode.h"

namespace chatfuzz::mismatch {

using riscv::Opcode;

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kStaleInstr: return "stale-instr";
    case Kind::kPcDivergence: return "pc-divergence";
    case Kind::kRdPresence: return "rd-presence";
    case Kind::kRdValue: return "rd-value";
    case Kind::kMemPresence: return "mem-presence";
    case Kind::kMemValue: return "mem-value";
    case Kind::kException: return "exception";
    case Kind::kLength: return "trace-length";
  }
  return "unknown";
}

const char* finding_name(Finding f) {
  switch (f) {
    case Finding::kBug1CacheCoherency: return "Bug1 cache-coherency (CWE-1202)";
    case Finding::kBug2TracerMulDiv: return "Bug2 tracer drops mul/div wb (CWE-440)";
    case Finding::kF1ExceptionPriority: return "Finding1 exception-priority";
    case Finding::kF2AmoIntoX0: return "Finding2 AMO rd=x0 trace";
    case Finding::kF3X0TraceWrite: return "Finding3 x0 trace write";
    case Finding::kOther: return "unclassified";
  }
  return "unknown";
}

namespace {
bool is_amo_instr(Opcode op) {
  const auto& s = riscv::spec(op);
  return s.ext == riscv::Ext::kA && s.format == riscv::Format::kAmo &&
         op != Opcode::kScW && op != Opcode::kScD;
}
bool is_jump_instr(Opcode op) {
  return op == Opcode::kJal || op == Opcode::kJalr;
}
bool is_misaligned_exc(riscv::Exception e) {
  return e == riscv::Exception::kLoadAddrMisaligned ||
         e == riscv::Exception::kStoreAddrMisaligned;
}
bool is_access_fault_exc(riscv::Exception e) {
  return e == riscv::Exception::kLoadAccessFault ||
         e == riscv::Exception::kStoreAccessFault;
}
}  // namespace

Finding classify(const Mismatch& m) {
  const riscv::Decoded d = riscv::decode(m.golden.instr);
  switch (m.kind) {
    case Kind::kStaleInstr:
      return Finding::kBug1CacheCoherency;
    case Kind::kRdPresence:
      if (!m.dut.has_rd_write && m.golden.has_rd_write && d.valid() &&
          riscv::is_muldiv(d.op)) {
        return Finding::kBug2TracerMulDiv;
      }
      if (m.dut.has_rd_write && m.dut.rd == 0 && d.valid()) {
        if (is_amo_instr(d.op)) return Finding::kF2AmoIntoX0;
        if (is_jump_instr(d.op)) return Finding::kF3X0TraceWrite;
      }
      return Finding::kOther;
    case Kind::kException:
      if (is_access_fault_exc(m.dut.exception) &&
          is_misaligned_exc(m.golden.exception)) {
        return Finding::kF1ExceptionPriority;
      }
      return Finding::kOther;
    default:
      return Finding::kOther;
  }
}

std::string signature_of(const Mismatch& m) {
  const riscv::Decoded d = riscv::decode(m.golden.instr);
  std::string sig = kind_name(m.kind);
  sig += ':';
  sig += d.valid() ? std::string(riscv::mnemonic(d.op)) : "invalid";
  switch (m.kind) {
    case Kind::kException:
      sig += std::string(":dut=") + riscv::exception_name(m.dut.exception) +
             ":gold=" + riscv::exception_name(m.golden.exception);
      break;
    case Kind::kRdPresence:
      sig += m.dut.has_rd_write ? ":dut-extra" : ":dut-missing";
      if ((m.dut.has_rd_write && m.dut.rd == 0) ||
          (m.golden.has_rd_write && m.golden.rd == 0)) {
        sig += ":x0";
      }
      break;
    case Kind::kRdValue:
      if (d.valid() && riscv::spec(d.op).ext == riscv::Ext::kZicsr) {
        char buf[16];
        std::snprintf(buf, sizeof buf, ":csr%03x", d.csr);
        sig += buf;
      }
      break;
    case Kind::kMemPresence:
      sig += m.dut.has_mem ? ":dut-extra" : ":dut-missing";
      break;
    default:
      break;
  }
  if (m.dut_index != 0) {
    // Multi-DUT campaigns: the same root cause on a different backend is a
    // different bug, so the backend ordinal is part of the dedup key. The
    // primary DUT keeps the historical signatures unchanged.
    sig += ":dut" + std::to_string(m.dut_index);
  }
  return sig;
}

FilterRule counter_csr_filter() {
  return [](const Mismatch& m) {
    if (m.kind != Kind::kRdValue) return false;
    const riscv::Decoded d = riscv::decode(m.golden.instr);
    if (!d.valid() || riscv::spec(d.op).ext != riscv::Ext::kZicsr) return false;
    namespace c = riscv::csr;
    return d.csr == c::kCycle || d.csr == c::kTime || d.csr == c::kMcycle;
  };
}

bool MismatchDetector::finalize(Mismatch& m) const {
  m.signature = signature_of(m);
  m.finding = classify(m);
  for (const FilterRule& rule : filters_) {
    if (rule(m)) return false;
  }
  return true;
}

Report MismatchDetector::compare(const sim::Trace& dut,
                                 const sim::Trace& golden) const {
  Report report;
  bool diverged = false;

  auto emit = [&](Mismatch&& m) {
    ++report.raw_count;
    if (!finalize(m)) {
      ++report.filtered_count;
      return;
    }
    report.mismatches.push_back(std::move(m));
  };

  const std::size_t n = std::min(dut.size(), golden.size());
  for (std::size_t i = 0; i < n && !diverged; ++i) {
    const sim::CommitRecord& d = dut[i];
    const sim::CommitRecord& g = golden[i];
    if (d.pc != g.pc) {
      emit({Kind::kPcDivergence, i, d, g, {}, Finding::kOther});
      diverged = true;
      break;
    }
    if (d.instr != g.instr) {
      emit({Kind::kStaleInstr, i, d, g, {}, Finding::kOther});
      diverged = true;
      break;
    }
    if (d.exception != g.exception) {
      emit({Kind::kException, i, d, g, {}, Finding::kOther});
    }
    if (d.has_rd_write != g.has_rd_write) {
      emit({Kind::kRdPresence, i, d, g, {}, Finding::kOther});
    } else if (d.has_rd_write &&
               (d.rd != g.rd || d.rd_value != g.rd_value)) {
      emit({Kind::kRdValue, i, d, g, {}, Finding::kOther});
    }
    if (d.has_mem != g.has_mem) {
      emit({Kind::kMemPresence, i, d, g, {}, Finding::kOther});
    } else if (d.has_mem && (d.mem_addr != g.mem_addr ||
                             d.mem_value != g.mem_value ||
                             d.mem_size != g.mem_size)) {
      emit({Kind::kMemValue, i, d, g, {}, Finding::kOther});
    }
  }
  if (!diverged && dut.size() != golden.size()) {
    Mismatch m{Kind::kLength, n, {}, {}, {}, Finding::kOther};
    if (n > 0) {
      m.dut = dut[std::min(n, dut.size() - 1)];
      m.golden = golden[std::min(n, golden.size() - 1)];
    }
    emit(std::move(m));
  }
  return report;
}

void MismatchDetector::accumulate(const Report& report) {
  total_raw_ += report.raw_count;
  total_post_filter_ += report.mismatches.size();
  for (const Mismatch& m : report.mismatches) {
    ++unique_signatures_[m.signature];
    signature_findings_.emplace(m.signature, m.finding);
  }
}

std::unordered_set<Finding> MismatchDetector::findings_seen() const {
  std::unordered_set<Finding> out;
  for (const auto& [sig, finding] : signature_findings_) out.insert(finding);
  return out;
}

void MismatchDetector::save_state(ser::Writer& w) const {
  w.u64(total_raw_);
  w.u64(total_post_filter_);
  std::vector<std::string> sigs;
  sigs.reserve(unique_signatures_.size());
  for (const auto& [sig, count] : unique_signatures_) sigs.push_back(sig);
  std::sort(sigs.begin(), sigs.end());
  w.u64(sigs.size());
  for (const std::string& sig : sigs) {
    w.str(sig);
    w.u64(unique_signatures_.at(sig));
    const auto it = signature_findings_.find(sig);
    w.u32(static_cast<std::uint32_t>(
        it != signature_findings_.end() ? it->second : Finding::kOther));
  }
}

bool MismatchDetector::restore_state(ser::Reader& r) {
  const std::uint64_t raw = r.u64();
  const std::uint64_t post = r.u64();
  const std::uint64_t n = r.u64();
  std::unordered_map<std::string, std::size_t> sigs;
  std::unordered_map<std::string, Finding> finds;
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    std::string sig = r.str();
    const std::uint64_t count = r.u64();
    const std::uint32_t finding = r.u32();
    if (finding > static_cast<std::uint32_t>(Finding::kOther)) {
      r.fail();
      break;
    }
    finds.emplace(sig, static_cast<Finding>(finding));
    sigs.emplace(std::move(sig), static_cast<std::size_t>(count));
  }
  if (!r.ok()) return false;
  total_raw_ = static_cast<std::size_t>(raw);
  total_post_filter_ = static_cast<std::size_t>(post);
  unique_signatures_ = std::move(sigs);
  signature_findings_ = std::move(finds);
  return true;
}

namespace {

void write_commit_record(ser::Writer& w, const sim::CommitRecord& rec) {
  w.u64(rec.pc);
  w.u32(rec.instr);
  w.boolean(rec.has_rd_write);
  w.u8(rec.rd);
  w.u64(rec.rd_value);
  w.boolean(rec.has_mem);
  w.boolean(rec.mem_is_store);
  w.u64(rec.mem_addr);
  w.u64(rec.mem_value);
  w.u8(rec.mem_size);
  w.u8(static_cast<std::uint8_t>(rec.exception));
  w.u8(static_cast<std::uint8_t>(rec.priv));
}

bool read_commit_record(ser::Reader& r, sim::CommitRecord& rec) {
  rec.pc = r.u64();
  rec.instr = r.u32();
  rec.has_rd_write = r.boolean();
  rec.rd = r.u8();
  rec.rd_value = r.u64();
  rec.has_mem = r.boolean();
  rec.mem_is_store = r.boolean();
  rec.mem_addr = r.u64();
  rec.mem_value = r.u64();
  rec.mem_size = r.u8();
  const std::uint8_t exc = r.u8();
  const std::uint8_t priv = r.u8();
  // Exception causes are the RISC-V mcause codes plus the kNone sentinel;
  // privilege is U/S/M. Anything else is wire corruption the CRC missed or
  // a foreign writer — fail, don't fabricate enum values.
  if (!riscv::is_valid_cause(exc) &&
      exc != static_cast<std::uint8_t>(riscv::Exception::kNone)) {
    r.fail();
    return false;
  }
  if (priv != static_cast<std::uint8_t>(riscv::Priv::kUser) &&
      priv != static_cast<std::uint8_t>(riscv::Priv::kSupervisor) &&
      priv != static_cast<std::uint8_t>(riscv::Priv::kMachine)) {
    r.fail();
    return false;
  }
  rec.exception = static_cast<riscv::Exception>(exc);
  rec.priv = static_cast<riscv::Priv>(priv);
  return r.ok();
}

}  // namespace

void write_report(ser::Writer& w, const Report& report) {
  w.u64(report.raw_count);
  w.u64(report.filtered_count);
  w.u64(report.mismatches.size());
  for (const Mismatch& m : report.mismatches) {
    w.u8(static_cast<std::uint8_t>(m.kind));
    w.u64(m.index);
    w.u64(m.dut_index);
    write_commit_record(w, m.dut);
    write_commit_record(w, m.golden);
    w.str(m.signature);
    w.u8(static_cast<std::uint8_t>(m.finding));
  }
}

bool read_report(ser::Reader& r, Report& out) {
  out.mismatches.clear();
  out.raw_count = static_cast<std::size_t>(r.u64());
  out.filtered_count = static_cast<std::size_t>(r.u64());
  const std::uint64_t n = r.u64();
  // Each record is >= 90 payload bytes; reject counts the payload cannot
  // hold before reserving.
  if (!r.ok() || n > r.remaining() / 90) {
    r.fail();
    return false;
  }
  out.mismatches.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Mismatch m;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(Kind::kLength)) {
      r.fail();
      return false;
    }
    m.kind = static_cast<Kind>(kind);
    m.index = static_cast<std::size_t>(r.u64());
    m.dut_index = static_cast<std::size_t>(r.u64());
    if (!read_commit_record(r, m.dut)) return false;
    if (!read_commit_record(r, m.golden)) return false;
    m.signature = r.str();
    const std::uint8_t finding = r.u8();
    if (finding > static_cast<std::uint8_t>(Finding::kOther)) {
      r.fail();
      return false;
    }
    m.finding = static_cast<Finding>(finding);
    if (!r.ok()) return false;
    out.mismatches.push_back(std::move(m));
  }
  return r.ok();
}

void write_report_summary(ser::Writer& w, const Report& report) {
  w.varint(report.raw_count);
  w.varint(report.filtered_count);
  // Count the runs first (one cheap pass; mismatch lists are short).
  std::size_t runs = 0;
  for (std::size_t i = 0; i < report.mismatches.size(); ++i) {
    const Mismatch& m = report.mismatches[i];
    if (i == 0 || m.kind != report.mismatches[i - 1].kind ||
        m.finding != report.mismatches[i - 1].finding ||
        m.signature != report.mismatches[i - 1].signature) {
      ++runs;
    }
  }
  w.varint(runs);
  for (std::size_t i = 0; i < report.mismatches.size();) {
    const Mismatch& m = report.mismatches[i];
    std::size_t j = i + 1;
    while (j < report.mismatches.size() &&
           report.mismatches[j].kind == m.kind &&
           report.mismatches[j].finding == m.finding &&
           report.mismatches[j].signature == m.signature) {
      ++j;
    }
    w.u8(static_cast<std::uint8_t>(m.kind));
    w.u8(static_cast<std::uint8_t>(m.finding));
    w.str(m.signature);
    w.varint(j - i);
    i = j;
  }
}

bool read_report_summary(ser::Reader& r, Report& out) {
  out.mismatches.clear();
  out.raw_count = static_cast<std::size_t>(r.varint());
  out.filtered_count = static_cast<std::size_t>(r.varint());
  const std::uint64_t runs = r.varint();
  // A run is at least 11 payload bytes (two enum bytes, the signature's
  // length prefix, one count byte).
  if (!r.ok() || runs > r.remaining() / 11) {
    r.fail();
    return false;
  }
  // Post-filter records can never outnumber the raw observations; a count
  // beyond that is corruption, not a big test.
  const std::uint64_t max_records = out.raw_count;
  std::uint64_t total = 0;
  for (std::uint64_t g = 0; g < runs; ++g) {
    const std::uint8_t kind = r.u8();
    const std::uint8_t finding = r.u8();
    if (!r.ok() || kind > static_cast<std::uint8_t>(Kind::kLength) ||
        finding > static_cast<std::uint8_t>(Finding::kOther)) {
      r.fail();
      return false;
    }
    Mismatch m;
    m.kind = static_cast<Kind>(kind);
    m.finding = static_cast<Finding>(finding);
    m.signature = r.str();
    const std::uint64_t count = r.varint();
    if (!r.ok() || count == 0 || total + count > max_records) {
      r.fail();
      return false;
    }
    total += count;
    for (std::uint64_t k = 0; k < count; ++k) out.mismatches.push_back(m);
  }
  return r.ok();
}

}  // namespace chatfuzz::mismatch
