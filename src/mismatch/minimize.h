// Test-case minimization: given a fuzz input whose traces mismatch, shrink
// it to a minimal reproducer while preserving the *same* mismatch signature.
// This is the step between "the fuzzer found 6K mismatches" and the paper's
// "detailed manual analysis" — engineers debug the 4-instruction repro, not
// the 30-instruction fuzz soup.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "isasim/platform.h"
#include "rtlsim/config.h"

namespace chatfuzz::mismatch {

using Program = std::vector<std::uint32_t>;

struct MinimizeConfig {
  rtl::CoreConfig core = rtl::CoreConfig::rocket();
  sim::Platform platform{};
  std::size_t max_rounds = 8;  // delta-debugging passes before giving up
};

struct MinimizeResult {
  Program reduced;
  std::string signature;     // the preserved mismatch signature
  std::size_t original_size = 0;
  std::size_t tests_run = 0;  // co-simulations spent minimizing
  bool reproduced = false;    // false: input did not mismatch at all
};

/// Shrink `test` while its first surviving mismatch keeps the same
/// signature. Uses ddmin-style chunk removal followed by single-instruction
/// removal and NOP (addi x0,x0,0) substitution; deterministic.
MinimizeResult minimize(const Program& test, const MinimizeConfig& cfg = {});

/// Convenience: the signature of the first surviving mismatch of `test`, or
/// "" if the run produces none.
std::string first_signature(const Program& test, const MinimizeConfig& cfg = {});

}  // namespace chatfuzz::mismatch
