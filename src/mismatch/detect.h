// Mismatch Detector (§IV-A of the paper): differential comparison of the
// DUT trace against the golden-model trace, signature-based deduplication
// (the paper's "automated filtration" that reduced ~5,866 raw mismatches to
// >100 unique ones), verification-engineer filter rules for known false
// positives, and classification of the paper's five findings.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "isasim/trace.h"
#include "util/serialize.h"

namespace chatfuzz::mismatch {

enum class Kind {
  kStaleInstr,   // same pc, different instruction bits (I$ incoherence)
  kPcDivergence, // control flow diverged
  kRdPresence,   // one side has a destination write the other lacks
  kRdValue,      // both wrote rd, values differ
  kMemPresence,  // one side has a memory access the other lacks
  kMemValue,     // memory address/value/size differ
  kException,    // different (or one-sided) exception cause
  kLength,       // one trace ended early with no earlier divergence
};

const char* kind_name(Kind k);

/// The paper's named findings, used to label classified mismatches.
enum class Finding {
  kBug1CacheCoherency,  // CWE-1202
  kBug2TracerMulDiv,    // CWE-440
  kF1ExceptionPriority,
  kF2AmoIntoX0,
  kF3X0TraceWrite,
  kOther,
};

const char* finding_name(Finding f);

struct Mismatch {
  Kind kind;
  std::size_t index = 0;        // trace position
  sim::CommitRecord dut;        // record from the DUT (RTL model)
  sim::CommitRecord golden;     // record from the golden model
  std::string signature;        // dedup key
  Finding finding = Finding::kOther;
  /// Which DUT of a multi-DUT campaign diverged (position in the campaign's
  /// DUT list). 0 for single-DUT runs; signature_of folds non-zero ordinals
  /// into the signature so the same root cause on different backends stays
  /// distinct in the campaign-wide tally.
  std::size_t dut_index = 0;
};

/// A filter rule suppresses known-benign mismatches (§IV-A: engineers "add
/// filters ... to filter out most of the false positive mismatches").
/// Returns true if the mismatch should be dropped.
using FilterRule = std::function<bool(const Mismatch&)>;

/// Built-in rule: reads of free-running counter CSRs (cycle/time/mcycle)
/// legitimately differ between an ISS and RTL; drop rd-value mismatches on
/// them.
FilterRule counter_csr_filter();

struct Report {
  std::vector<Mismatch> mismatches;      // post-filter
  std::size_t raw_count = 0;             // pre-filter mismatch records
  std::size_t filtered_count = 0;        // dropped by filter rules
};

/// Full-fidelity Report encoding: counters plus every post-filter record
/// with both commit records, the signature and the classification. Used
/// where the record details matter (report byte-equivalence tests,
/// archival). read_report validates enum ranges and fails the reader on
/// malformed input instead of constructing out-of-range values.
void write_report(ser::Writer& w, const Report& report);
bool read_report(ser::Reader& r, Report& out);

/// Signature-level Report encoding — what a distributed campaign worker
/// ships back (src/dist/): counters plus consecutive runs of identical
/// (kind, finding, signature) records collapsed to one entry with a count.
/// The reconstructed records carry exactly those three fields (the commit
/// records are left empty), which is everything campaign-wide accumulation
/// consumes — accumulate() tallies per-signature counts and findings, and
/// the engine's fold only reads mismatches.size() — so the folded
/// signature DB is byte-identical to a local run's at a fraction of the
/// frame bytes. Run-length grouping preserves record order, so a signature
/// whose classification differs between instances resolves to the same
/// last-writer-wins finding either way.
void write_report_summary(ser::Writer& w, const Report& report);
bool read_report_summary(ser::Reader& r, Report& out);

class MismatchDetector {
 public:
  MismatchDetector() = default;

  void add_filter(FilterRule rule) { filters_.push_back(std::move(rule)); }
  /// Installs the default filter set used by the campaigns.
  void install_default_filters() { add_filter(counter_csr_filter()); }

  /// Compare one test input's two traces. Comparison stops at the first
  /// control-flow divergence (everything after is noise from the same root
  /// cause), matching how trace diffing is done in practice.
  Report compare(const sim::Trace& dut, const sim::Trace& golden) const;

  /// Finish a raw mismatch record: fills signature and finding, then runs
  /// the filter rules. Returns false when a rule suppresses it. Shared by
  /// compare() and the streaming LockstepComparator so both emit identical
  /// Report contents.
  bool finalize(Mismatch& m) const;

  /// Accumulate a report into the campaign-wide tally.
  void accumulate(const Report& report);

  // Campaign-wide statistics (the paper's §V-B numbers).
  std::size_t total_raw() const { return total_raw_; }
  std::size_t total_post_filter() const { return total_post_filter_; }
  std::size_t unique_count() const { return unique_signatures_.size(); }
  const std::unordered_map<std::string, std::size_t>& unique_signatures() const {
    return unique_signatures_;
  }
  /// Distinct findings observed so far (classification labels).
  std::unordered_set<Finding> findings_seen() const;

  /// Snapshot / restore the campaign-wide tally (signature database and
  /// counters; filter rules are code, reinstalled by the owner). Signatures
  /// are serialized in sorted order so the bytes do not depend on hash-map
  /// iteration order.
  void save_state(ser::Writer& w) const;
  bool restore_state(ser::Reader& r);

 private:
  std::vector<FilterRule> filters_;
  std::size_t total_raw_ = 0;
  std::size_t total_post_filter_ = 0;
  std::unordered_map<std::string, std::size_t> unique_signatures_;
  std::unordered_map<std::string, Finding> signature_findings_;

  friend struct DetectorTestPeer;
};

/// Classify a mismatch against the paper's known findings.
Finding classify(const Mismatch& m);

/// Build the dedup signature for a mismatch: kind + mnemonic + exception
/// names + which side carries the extra effect. Instances of the same root
/// cause collapse to one signature.
std::string signature_of(const Mismatch& m);

}  // namespace chatfuzz::mismatch
