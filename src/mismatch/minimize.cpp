#include "mismatch/minimize.h"

#include "isasim/sim.h"
#include "mismatch/detect.h"
#include "riscv/encode.h"
#include "rtlsim/core.h"

namespace chatfuzz::mismatch {

namespace {

/// Co-simulate and return the first surviving mismatch signature ("" when
/// the traces agree).
std::string run_signature(const Program& test, const MinimizeConfig& cfg,
                          std::size_t& tests_run) {
  ++tests_run;
  cov::CoverageDB db;
  rtl::RtlCore dut(cfg.core, db, cfg.platform);
  sim::IsaSim golden(cfg.platform);
  dut.reset(test);
  golden.reset(test);
  const sim::RunResult dr = dut.run();
  const sim::RunResult gr = golden.run();
  MismatchDetector detector;
  detector.install_default_filters();
  const Report rep = detector.compare(dr.trace, gr.trace);
  return rep.mismatches.empty() ? std::string() : rep.mismatches.front().signature;
}

}  // namespace

std::string first_signature(const Program& test, const MinimizeConfig& cfg) {
  std::size_t dummy = 0;
  return run_signature(test, cfg, dummy);
}

MinimizeResult minimize(const Program& test, const MinimizeConfig& cfg) {
  MinimizeResult result;
  result.original_size = test.size();
  result.signature = run_signature(test, cfg, result.tests_run);
  if (result.signature.empty()) {
    result.reduced = test;
    return result;  // nothing to preserve
  }
  result.reproduced = true;

  Program current = test;
  auto still_reproduces = [&](const Program& candidate) {
    return run_signature(candidate, cfg, result.tests_run) == result.signature;
  };

  // Phase 1: ddmin-style chunk removal with shrinking chunk sizes.
  for (std::size_t round = 0; round < cfg.max_rounds; ++round) {
    bool any_removed = false;
    for (std::size_t chunk = std::max<std::size_t>(current.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
      for (std::size_t at = 0; at + chunk <= current.size();) {
        Program candidate = current;
        candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(at),
                        candidate.begin() + static_cast<std::ptrdiff_t>(at + chunk));
        if (!candidate.empty() && still_reproduces(candidate)) {
          current = std::move(candidate);
          any_removed = true;
          // retry same position (new content slid in)
        } else {
          at += chunk;
        }
      }
      if (chunk == 1) break;
    }
    if (!any_removed) break;
  }

  // Phase 2: NOP substitution — instructions that must occupy space (branch
  // shapes) but whose behaviour is irrelevant become canonical NOPs.
  const std::uint32_t kNop = riscv::enc_i(riscv::Opcode::kAddi, 0, 0, 0);
  for (std::size_t at = 0; at < current.size(); ++at) {
    if (current[at] == kNop) continue;
    Program candidate = current;
    candidate[at] = kNop;
    if (still_reproduces(candidate)) current = std::move(candidate);
  }

  result.reduced = std::move(current);
  return result;
}

}  // namespace chatfuzz::mismatch
