// Streaming lockstep co-simulation: a CommitSink that diffs the DUT's
// commit stream against the golden model while the DUT is still running.
// Attach it as the DUT's sink; every DUT commit pulls exactly one golden
// commit and compares the pair on the spot, so neither side ever
// materializes a trace and the golden model executes at most one
// instruction past the DUT's last commit. Comparison semantics are
// byte-for-byte those of MismatchDetector::compare() on the two full
// traces — same mismatch kinds, indices, records, signatures, findings,
// filter decisions and counts — which the lockstep parity suite enforces.
#pragma once

#include "isasim/sim.h"
#include "isasim/trace.h"
#include "mismatch/detect.h"

namespace chatfuzz::mismatch {

class LockstepComparator final : public sim::CommitSink {
 public:
  LockstepComparator() = default;

  /// Arm for one test. `golden` must be reset to the same program (and
  /// register seed) as the DUT — resetting it AFTER begin() lets the reset
  /// see the attached sink and skip its trace scratch; the comparator steps
  /// it on demand and swallows its commit stream, so it stops early once
  /// the comparison has diverged. `out` is cleared and reused — pooled
  /// campaign artifacts keep their mismatch capacity across tests.
  /// `detector` supplies the filter rules; all three must outlive the run.
  ///
  /// `dut_index` is the backend's position in a multi-DUT campaign's DUT
  /// list: every emitted Mismatch is stamped with it (which suffixes the
  /// dedup signature for non-primary DUTs), and `out` is cleared only for
  /// DUT 0 — later DUTs of the same test append, and the raw/filtered
  /// counters accumulate, so one Report carries the whole test's diff.
  void begin(const MismatchDetector& detector, sim::IsaSim& golden,
             Report& out, std::size_t dut_index = 0);

  /// DUT commit arrives: pull the matching golden commit and compare.
  void on_commit(const sim::CommitRecord& dut) override;

  /// The DUT run ended: resolve the trace-length check (one golden probe
  /// step at most) and detach from the golden model.
  void finish();

 private:
  void emit(Mismatch&& m);

  const MismatchDetector* detector_ = nullptr;
  sim::IsaSim* golden_ = nullptr;
  Report* out_ = nullptr;
  std::size_t dut_index_ = 0; // backend ordinal stamped on every mismatch
  std::size_t index_ = 0;     // compared pairs so far
  bool diverged_ = false;     // control flow split; comparison is over
  bool golden_short_ = false; // golden ended first; length staged below
  Mismatch length_;
  // The most recent compared pair — the only per-test context kept
  // (length-mismatch reports cite the records flanking the point where one
  // trace ended).
  sim::CommitRecord last_dut_, last_golden_;
  sim::DiscardSink discard_;
};

}  // namespace chatfuzz::mismatch
