// Machine-language training corpus (paper §III-A): the paper statically
// harvests ~500K function-granular test vectors from a compiled Linux
// kernel. Offline we synthesize the equivalent: a generator that emits
// function-shaped RV64 machine code with realistic register def-use chains,
// control flow, stack traffic, and rare-instruction frequencies. What the LM
// must learn — valid encodings arranged in *interdependent* sequences — is
// preserved (see DESIGN.md substitution table).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/serialize.h"

namespace chatfuzz::corpus {

using Program = std::vector<std::uint32_t>;

struct CorpusConfig {
  unsigned min_instrs = 10;
  unsigned max_instrs = 26;
  // Idiom mix (relative weights).
  double w_alu_chain = 4.0;
  double w_load_compute_store = 3.0;
  double w_if_else = 2.0;
  double w_loop = 1.5;
  double w_muldiv = 1.2;
  double w_csr = 0.8;
  double w_amo = 0.7;
  double w_lrsc = 0.5;
  double w_fence = 0.4;
  double w_priv = 1.2;   // mstatus dance + mret/sret (privilege transitions)
  /// CLINT interrupt-arming idiom (mtimecmp/msip stores + mie/mstatus
  /// enables). Zero by default: the paper's harness has no interrupt
  /// stimulus; campaigns with Platform::clint_enabled raise this.
  double w_irq = 0.0;
  /// Sv39 bring-up idiom (identity-map a gigapage, install satp, optionally
  /// delegate page faults, drop to S/U). Everything after it in the function
  /// runs translated, so one occurrence flips the rest of the sample into
  /// the privileged/VM fuzzing surface.
  double w_vm = 0.6;
  /// Memory-ordering stress kernels (store-forward, pair-alias,
  /// pointer-chase, speculative wrong-path store): div-fed stores with
  /// dependent or overlapping loads. On an out-of-order LSU these force
  /// store-to-load forwarding, partial-overlap merges and load-behind-store
  /// scheduling (the ooo.lsu.* / ooo.squash.* points); on the in-order core
  /// they are ordinary RAW memory idioms.
  double w_lsu = 2.5;
  std::uint64_t clint_base = 0x0200'0000ull;
  /// Physical RAM window the VM idiom identity-maps; the root page table
  /// lives at ram_base + pt_offset (the page just above the data region).
  std::uint64_t ram_base = 0x8000'0000ull;
  std::uint64_t pt_offset = 0xff000ull;
  bool with_prologue = true;
};

/// Generates function-granular machine-code samples. Deterministic under a
/// fixed seed.
class CorpusGenerator {
 public:
  explicit CorpusGenerator(CorpusConfig cfg = {}, std::uint64_t seed = 42)
      : cfg_(cfg), rng_(seed) {}

  /// One function-shaped sample (prologue, idiom body, epilogue).
  Program function();

  /// A dataset of n samples.
  std::vector<Program> dataset(std::size_t n);

  /// A prompt for RL rollouts: `k` instructions from the *body* of a fresh
  /// sample (the paper seeds each rollout with 2-5 instructions of a dataset
  /// item; skipping the fixed prologue keeps prompts diverse).
  Program prompt(unsigned k);

  /// Snapshot / restore the stream position (RNG + def-use tracking), so a
  /// restored generator emits the exact samples the saved one would have.
  void save_state(ser::Writer& w) const;
  bool restore_state(ser::Reader& r);

 private:
  // Idiom emitters append to `out` and update the def-use state.
  void emit_alu_chain(Program& out);
  void emit_load_compute_store(Program& out);
  void emit_if_else(Program& out);
  void emit_loop(Program& out);
  void emit_muldiv(Program& out);
  void emit_csr(Program& out);
  void emit_amo(Program& out);
  void emit_lrsc(Program& out);
  void emit_fence(Program& out);
  void emit_priv(Program& out);
  void emit_irq(Program& out);
  void emit_vm(Program& out);
  void emit_lsu(Program& out);

  /// A register recently written (for operand entanglement), or a random
  /// caller-saved register when none is tracked.
  unsigned recent_reg();
  /// A register holding a RAM pointer (even registers at platform reset).
  unsigned pointer_reg();
  /// Pick a destination and remember it as recently defined.
  unsigned def_reg();

  CorpusConfig cfg_;
  Rng rng_;
  std::vector<unsigned> recent_;
};

/// Unstructured baseline seed generator (TheHuzz-style): uniformly random
/// *valid* instructions with random operand fields — syntactically legal but
/// with no data/control-flow entanglement.
Program random_valid_program(Rng& rng, unsigned num_instrs);

}  // namespace chatfuzz::corpus
