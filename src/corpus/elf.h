// Minimal ELF64 object reader/writer for the static training-data pipeline
// (paper §III-A): the authors compile the Linux kernel, disassemble the
// resulting binaries, locate function start/end via the symbol table, and
// emit each function's machine code as one training entry. This module is
// that pipeline's container layer — it produces RISC-V ELF64 relocatable
// images with a .text section and FUNC symbols, and extracts per-function
// machine code back out of them.
//
// Scope: little-endian ELF64, one .text section, .symtab/.strtab/.shstrtab.
// That is exactly the subset the harvesting pipeline touches; anything else
// in a real object (relocations, debug info) is metadata the paper's
// representation step deliberately strips.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace chatfuzz::corpus {

/// One function's machine code plus its symbol-table identity.
struct ElfFunction {
  std::string name;
  std::uint64_t address = 0;            // st_value
  std::vector<std::uint32_t> code;      // instruction words
};

/// Build a relocatable ELF64 (EM_RISCV) image: all functions are laid out
/// back-to-back in .text and given STT_FUNC symbols with correct size.
std::vector<std::uint8_t> write_elf(const std::vector<ElfFunction>& functions,
                                    std::uint64_t text_base = 0x8000'0000ull);

/// Parse an image produced by write_elf (or any conforming subset-ELF).
/// Returns nullopt on malformed input: bad magic, truncated headers,
/// out-of-range section offsets, or symbols pointing outside .text.
std::optional<std::vector<ElfFunction>> read_elf(
    const std::vector<std::uint8_t>& image);

/// The paper's "static data collection" step end-to-end: given a compiled
/// binary, recover the per-function training entries (function machine code
/// only, metadata stripped). Functions with no code are dropped.
std::vector<std::vector<std::uint32_t>> harvest_dataset(
    const std::vector<std::uint8_t>& image);

class CorpusGenerator;

/// A "compiled binary" for the pipeline above: n generated function bodies
/// packaged as an ELF object, the artifact the paper obtains by compiling
/// kernel sources. harvest_dataset(synthesize_compiled_binary(gen, n))
/// round-trips to exactly the generator's samples.
std::vector<std::uint8_t> synthesize_compiled_binary(CorpusGenerator& gen,
                                                     std::size_t n);

}  // namespace chatfuzz::corpus
