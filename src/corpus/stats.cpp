#include "corpus/stats.h"

#include <algorithm>
#include <cinttypes>
#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <unordered_map>

#include "util/log.h"

namespace chatfuzz::corpus {

StoreStats collect_store_stats(const CorpusStore& store) {
  StoreStats s;
  s.dir = store.dir();
  s.entries = store.size();
  s.shards = store.num_shards();
  s.shard_capacity = store.shard_capacity();

  std::error_code ec;
  const std::uintmax_t index_size =
      std::filesystem::file_size(store.dir() + "/index.bin", ec);
  if (!ec) s.disk_bytes += index_size;
  for (std::size_t sh = 0; sh < store.num_shards(); ++sh) {
    const std::uintmax_t n =
        std::filesystem::file_size(store.shard_path(sh), ec);
    if (!ec) s.disk_bytes += n;
  }

  std::unordered_map<std::uint64_t, std::size_t> phases;
  for (std::size_t i = 0; i < store.size(); ++i) {
    const StoreEntryMeta& m = store.meta(i);
    s.program_words += store.program_words(i);
    s.attributed_bins += m.new_bins.size();
    s.ctrl_new += m.ctrl_new;
    if (m.mismatches > 0) ++s.with_mismatch;
    if (m.phase_hash == 0) ++s.phases_unhashed;
    else ++phases[m.phase_hash];
    std::size_t bucket = 0;
    for (std::size_t n = m.new_bins.size(); n != 0; n >>= 1) ++bucket;
    s.attribution[std::min(bucket, StoreStats::kBuckets - 1)] += 1;
  }
  s.phases_distinct = phases.size();
  for (const auto& [hash, n] : phases) {
    if (n >= 4) ++s.phase_mult_4_plus;
    else if (n >= 2) ++s.phase_mult_2_3;
    else ++s.phase_mult_unique;
  }
  return s;
}

std::string render_store_stats(const StoreStats& s) {
  std::string out;
  out += strformat("corpus %s\n", s.dir.c_str());
  out += strformat("  entries:          %" PRIu64 "\n", s.entries);
  out += strformat("  shards:           %" PRIu64
                   " (capacity %" PRIu64 " entries each)\n",
                   s.shards, s.shard_capacity);
  out += strformat("  program bytes:    %" PRIu64
                   " (%" PRIu64 " instruction words)\n",
                   s.program_words * 4, s.program_words);
  out += strformat("  bytes on disk:    %" PRIu64 " (index + shards)\n",
                   s.disk_bytes);
  out += strformat("  attributed bins:  %" PRIu64
                   " condition bins first covered\n",
                   s.attributed_bins);
  out += strformat("  ctrl states:      %" PRIu64 " first observed\n",
                   s.ctrl_new);
  out += strformat("  with mismatch:    %" PRIu64 " entries\n",
                   s.with_mismatch);
  out += "  first-covered-bin attribution histogram:\n";
  for (std::size_t b = 0; b < StoreStats::kBuckets; ++b) {
    if (s.attribution[b] == 0) continue;
    const std::uint64_t lo = b == 0 ? 0 : std::uint64_t{1} << (b - 1);
    const std::uint64_t hi = (std::uint64_t{1} << b) - 1;
    if (b == StoreStats::kBuckets - 1) {
      out += strformat("    >=%4" PRIu64 " bins: %" PRIu64 " entries\n", lo,
                       s.attribution[b]);
    } else if (lo == hi || b == 0) {
      out += strformat("    %6" PRIu64 " bins: %" PRIu64 " entries\n", lo,
                       s.attribution[b]);
    } else {
      out += strformat("  %4" PRIu64 "-%4" PRIu64 " bins: %" PRIu64
                       " entries\n",
                       lo, hi, s.attribution[b]);
    }
  }
  out += strformat("  phase signatures: %" PRIu64 " distinct across %" PRIu64
                   " hashed entries (%" PRIu64 " unhashed)\n",
                   s.phases_distinct, s.entries - s.phases_unhashed,
                   s.phases_unhashed);
  if (s.phases_distinct > 0) {
    out += strformat("    phase multiplicity: %" PRIu64 " unique, %" PRIu64
                     " x2-3, %" PRIu64 " x4+\n",
                     s.phase_mult_unique, s.phase_mult_2_3,
                     s.phase_mult_4_plus);
  }
  return out;
}

namespace {

void append_json_string(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += strformat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void append_field(std::string* out, const char* key, std::uint64_t v,
                  bool* first) {
  if (!*first) *out += ",";
  *first = false;
  *out += strformat("\"%s\":%" PRIu64, key, v);
}

/// Find `"key":` at top level and parse the u64 after it.
bool read_u64(const std::string& json, const char* key, std::uint64_t* out) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  const char* p = json.c_str() + at + needle.size();
  char* end = nullptr;
  *out = std::strtoull(p, &end, 10);
  return end != p;
}

/// Unescape the string value of `"key":"..."` (the inverse of
/// append_json_string for the escapes it emits).
bool read_string(const std::string& json, const char* key, std::string* out) {
  const std::string needle = "\"" + std::string(key) + "\":\"";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  out->clear();
  for (std::size_t i = at + needle.size(); i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"') return true;
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (++i >= json.size()) return false;
    switch (json[i]) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case 'n': out->push_back('\n'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (i + 4 >= json.size()) return false;
        out->push_back(static_cast<char>(
            std::strtoul(json.substr(i + 1, 4).c_str(), nullptr, 16)));
        i += 4;
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated
}

}  // namespace

std::string store_stats_to_json(const StoreStats& s) {
  std::string out = "{";
  out += "\"dir\":";
  append_json_string(&out, s.dir);
  bool first = false;
  append_field(&out, "entries", s.entries, &first);
  append_field(&out, "shards", s.shards, &first);
  append_field(&out, "shard_capacity", s.shard_capacity, &first);
  append_field(&out, "program_words", s.program_words, &first);
  append_field(&out, "program_bytes", s.program_words * 4, &first);
  append_field(&out, "disk_bytes", s.disk_bytes, &first);
  append_field(&out, "attributed_bins", s.attributed_bins, &first);
  append_field(&out, "ctrl_new", s.ctrl_new, &first);
  append_field(&out, "with_mismatch", s.with_mismatch, &first);
  out += ",\"attribution_histogram\":[";
  for (std::size_t b = 0; b < StoreStats::kBuckets; ++b) {
    if (b != 0) out += ",";
    out += strformat("%" PRIu64, s.attribution[b]);
  }
  out += "]";
  append_field(&out, "phases_distinct", s.phases_distinct, &first);
  append_field(&out, "phases_unhashed", s.phases_unhashed, &first);
  append_field(&out, "phase_mult_unique", s.phase_mult_unique, &first);
  append_field(&out, "phase_mult_2_3", s.phase_mult_2_3, &first);
  append_field(&out, "phase_mult_4_plus", s.phase_mult_4_plus, &first);
  out += "}\n";
  return out;
}

bool parse_store_stats_json(const std::string& json, StoreStats* out) {
  *out = StoreStats{};
  if (!read_string(json, "dir", &out->dir)) return false;
  bool ok = read_u64(json, "entries", &out->entries) &&
            read_u64(json, "shards", &out->shards) &&
            read_u64(json, "shard_capacity", &out->shard_capacity) &&
            read_u64(json, "program_words", &out->program_words) &&
            read_u64(json, "disk_bytes", &out->disk_bytes) &&
            read_u64(json, "attributed_bins", &out->attributed_bins) &&
            read_u64(json, "ctrl_new", &out->ctrl_new) &&
            read_u64(json, "with_mismatch", &out->with_mismatch) &&
            read_u64(json, "phases_distinct", &out->phases_distinct) &&
            read_u64(json, "phases_unhashed", &out->phases_unhashed) &&
            read_u64(json, "phase_mult_unique", &out->phase_mult_unique) &&
            read_u64(json, "phase_mult_2_3", &out->phase_mult_2_3) &&
            read_u64(json, "phase_mult_4_plus", &out->phase_mult_4_plus);
  if (!ok) return false;
  const std::size_t at = json.find("\"attribution_histogram\":[");
  if (at == std::string::npos) return false;
  const char* p = json.c_str() + at + 25;
  for (std::size_t b = 0; b < StoreStats::kBuckets; ++b) {
    char* end = nullptr;
    out->attribution[b] = std::strtoull(p, &end, 10);
    if (end == p) return false;
    p = end;
    if (*p == ',') ++p;
  }
  return *p == ']';
}

}  // namespace chatfuzz::corpus
