// Replay-free corpus introspection, straight off the store index: size,
// disk footprint, coverage-attribution histogram, phase-signature spread.
// One collection pass feeds both renderings — the human table the
// `chatfuzz corpus stats` command always printed, and a machine-readable
// JSON object (`corpus stats --json`) for dashboards and CI. The JSON
// round-trips through parse_store_stats_json so tooling (and the obs test
// suite) can consume it without a JSON library.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "corpus/store.h"

namespace chatfuzz::corpus {

struct StoreStats {
  /// Attribution histogram bucket count: bucket k holds entries whose
  /// first-covered-bin count lands in [2^(k-1), 2^k) (bucket 0 = zero).
  static constexpr std::size_t kBuckets = 12;

  std::string dir;
  std::uint64_t entries = 0;
  std::uint64_t shards = 0;
  std::uint64_t shard_capacity = 0;
  std::uint64_t program_words = 0;
  std::uint64_t disk_bytes = 0;       // index + shard files
  std::uint64_t attributed_bins = 0;  // condition bins first covered
  std::uint64_t ctrl_new = 0;         // ctrl-reg states first observed
  std::uint64_t with_mismatch = 0;    // entries archived with a mismatch
  std::array<std::uint64_t, kBuckets> attribution = {};
  std::uint64_t phases_distinct = 0;  // across hashed entries
  std::uint64_t phases_unhashed = 0;  // phase_hash == 0 (never replayed)
  /// Phase multiplicity: distinct phases represented by exactly 1, 2-3,
  /// and 4+ archived tests.
  std::uint64_t phase_mult_unique = 0;
  std::uint64_t phase_mult_2_3 = 0;
  std::uint64_t phase_mult_4_plus = 0;

  bool operator==(const StoreStats&) const = default;
};

/// One pass over an open store's index (no program reads, no replay).
StoreStats collect_store_stats(const CorpusStore& store);

/// The classic `corpus stats` table.
std::string render_store_stats(const StoreStats& s);

/// Single flat JSON object, keys stable for scripting.
std::string store_stats_to_json(const StoreStats& s);

/// Inverse of store_stats_to_json (exact round-trip on its own output).
/// Returns false on malformed input or a missing key.
bool parse_store_stats_json(const std::string& json, StoreStats* out);

}  // namespace chatfuzz::corpus
