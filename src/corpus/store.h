// Persistent on-disk test corpus: the durable artifact of a fuzzing
// campaign. Tests that earned their keep (new coverage, a mismatch) are
// appended together with their metadata and coverage attribution; programs
// live in fixed-capacity shard files and an index file carries all metadata
// plus each entry's (shard, offset) — the layout long-running sharded
// campaigns and cross-campaign corpus reuse are built on.
//
// Layout of a store directory:
//   <dir>/index.bin        versioned+checksummed index (util/serialize.h)
//   <dir>/shard-0000.bin   raw little-endian instruction words
//   <dir>/shard-0001.bin   ...
//
// Crash-safety contract: shards are append-only and the index is rewritten
// atomically by flush(). A crash can leave shard bytes beyond what the index
// references — they are unreachable garbage, reclaimed by the next append or
// truncate(). Campaign checkpoints record the entry count at snapshot time
// and resume() truncates back to it, which keeps the store byte-identical
// to an uninterrupted run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/generator.h"
#include "util/serialize.h"

namespace chatfuzz::corpus {

/// Per-entry metadata: where the test came from and what it contributed.
struct StoreEntryMeta {
  std::uint64_t test_index = 0;      // global campaign test index
  std::uint32_t standalone_bins = 0; // condition bins this test hit
  std::uint32_t incremental_bins = 0;// bins newly covered by this test
  std::uint32_t mismatches = 0;      // post-filter mismatch records
  std::uint64_t ctrl_new = 0;        // new ctrl-reg states
  /// Phase signature of the test's basic-block vector (riscv::
  /// bbv_phase_hash over the DUT's commit stream). 0 = not yet computed:
  /// campaigns always archive 0 and `corpus minimize` fills it by replay,
  /// then uses it to collapse phase-duplicate mismatch entries. Keeping the
  /// campaign path hash-free makes the store bytes independent of whether
  /// BBV collection (or superblock dispatch) was on.
  std::uint64_t phase_hash = 0;
  /// Coverage attribution: the condition bins this test covered FIRST
  /// (disjoint across entries by construction — the basis for replay-free
  /// corpus audits).
  std::vector<std::uint32_t> new_bins;
};

class CorpusStore {
 public:
  static constexpr std::size_t kDefaultShardCapacity = 256;  // entries/shard

  /// Open an existing store or create an empty one at `dir` (the directory
  /// is created if needed). Fails cleanly on a corrupt/truncated/foreign
  /// index file.
  ser::Status open(const std::string& dir,
                   std::size_t shard_capacity = kDefaultShardCapacity);

  /// Append one program + metadata. The program bytes go to the current
  /// shard immediately; the index entry is buffered until flush().
  ser::Status append(const core::Program& program, const StoreEntryMeta& meta);

  /// Atomically rewrite the index to cover everything appended so far.
  ser::Status flush();

  /// Drop entries [n, size()) — the resume path's rollback to a checkpoint.
  /// Shard files are trimmed so a subsequent append reproduces the exact
  /// bytes an uninterrupted run would have written. Implies flush().
  ser::Status truncate(std::size_t n);

  std::size_t size() const { return entries_.size(); }
  const StoreEntryMeta& meta(std::size_t i) const { return entries_[i].meta; }
  /// Fill entry i's phase signature (tooling: `corpus minimize` replays the
  /// entry to compute it). Buffered like appends; flush() persists it.
  void set_phase_hash(std::size_t i, std::uint64_t h) {
    entries_[i].meta.phase_hash = h;
  }
  /// Stored program length in u32 instruction words (tooling/stats).
  std::size_t program_words(std::size_t i) const {
    return entries_[i].num_words;
  }
  /// Number of shard files the entries span (0 for an empty store).
  std::size_t num_shards() const {
    return entries_.empty() ? 0 : entries_.back().shard + 1;
  }
  ser::Status read_program(std::size_t i, core::Program* out) const;
  const std::string& dir() const { return dir_; }
  std::size_t shard_capacity() const { return shard_capacity_; }
  /// Shard file the entry lives in (for tests / tooling).
  std::string shard_path(std::size_t shard) const;

 private:
  struct Entry {
    std::uint32_t shard = 0;
    std::uint64_t offset_words = 0;  // into the shard, in u32 words
    std::uint32_t num_words = 0;
    StoreEntryMeta meta;
  };

  std::string dir_;
  std::size_t shard_capacity_ = kDefaultShardCapacity;
  std::vector<Entry> entries_;
};

}  // namespace chatfuzz::corpus
