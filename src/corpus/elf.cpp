#include "corpus/elf.h"
#include "corpus/generator.h"

#include <cstring>

namespace chatfuzz::corpus {
namespace {

// ELF constants (the subset we emit/accept).
constexpr std::uint8_t kMagic[4] = {0x7f, 'E', 'L', 'F'};
constexpr std::uint8_t kClass64 = 2;
constexpr std::uint8_t kDataLsb = 1;
constexpr std::uint16_t kTypeRel = 1;
constexpr std::uint16_t kMachineRiscv = 243;
constexpr std::uint32_t kShtProgbits = 1;
constexpr std::uint32_t kShtSymtab = 2;
constexpr std::uint32_t kShtStrtab = 3;
constexpr std::uint8_t kSttFunc = 2;
constexpr std::uint8_t kBindGlobal = 1;

constexpr std::size_t kEhdrSize = 64;
constexpr std::size_t kShdrSize = 64;
constexpr std::size_t kSymSize = 24;

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), b, b + n);
  }
  void pad_to(std::size_t offset) { out_.resize(offset, 0); }
  std::size_t size() const { return out_.size(); }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  void le(std::uint64_t v, unsigned n) {
    for (unsigned i = 0; i < n; ++i) out_.push_back((v >> (8 * i)) & 0xff);
  }
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  Reader(const std::vector<std::uint8_t>& data) : data_(data) {}

  bool in_range(std::size_t off, std::size_t n) const {
    return off <= data_.size() && n <= data_.size() - off;
  }
  std::uint16_t u16(std::size_t off) const { return le(off, 2); }
  std::uint32_t u32(std::size_t off) const {
    return static_cast<std::uint32_t>(le(off, 4));
  }
  std::uint64_t u64(std::size_t off) const { return le(off, 8); }
  const std::uint8_t* at(std::size_t off) const { return data_.data() + off; }

 private:
  std::uint64_t le(std::size_t off, unsigned n) const {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(data_[off + i]) << (8 * i);
    }
    return v;
  }
  const std::vector<std::uint8_t>& data_;
};

struct SectionHeader {
  std::uint32_t name_off = 0;
  std::uint32_t type = 0;
  std::uint64_t addr = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint32_t link = 0;
  std::uint64_t entsize = 0;
};

void write_shdr(Writer& w, const SectionHeader& s) {
  w.u32(s.name_off);
  w.u32(s.type);
  w.u64(0);          // flags
  w.u64(s.addr);
  w.u64(s.offset);
  w.u64(s.size);
  w.u32(s.link);
  w.u32(0);          // info
  w.u64(8);          // addralign
  w.u64(s.entsize);
}

}  // namespace

std::vector<std::uint8_t> write_elf(const std::vector<ElfFunction>& functions,
                                    std::uint64_t text_base) {
  // Layout: Ehdr | .text | .symtab | .strtab | .shstrtab | section headers.
  std::vector<std::uint8_t> text;
  struct SymPlan {
    std::uint32_t name_off;
    std::uint64_t value;
    std::uint64_t size;
  };
  std::vector<SymPlan> syms;
  std::string strtab(1, '\0');
  for (const ElfFunction& f : functions) {
    SymPlan sp;
    sp.name_off = static_cast<std::uint32_t>(strtab.size());
    strtab += f.name;
    strtab += '\0';
    sp.value = text_base + text.size();
    sp.size = 4ull * f.code.size();
    syms.push_back(sp);
    for (std::uint32_t word : f.code) {
      for (unsigned i = 0; i < 4; ++i) {
        text.push_back(static_cast<std::uint8_t>((word >> (8 * i)) & 0xff));
      }
    }
  }

  const std::string shstrtab =
      std::string(1, '\0') + ".text" + '\0' + ".symtab" + '\0' + ".strtab" +
      '\0' + ".shstrtab" + '\0';
  constexpr std::uint32_t kNameText = 1, kNameSymtab = 7, kNameStrtab = 15,
                          kNameShstrtab = 23;

  const std::size_t text_off = kEhdrSize;
  const std::size_t symtab_off = text_off + text.size();
  const std::size_t symtab_size = kSymSize * (1 + syms.size());  // null sym
  const std::size_t strtab_off = symtab_off + symtab_size;
  const std::size_t shstrtab_off = strtab_off + strtab.size();
  std::size_t shoff = shstrtab_off + shstrtab.size();
  shoff = (shoff + 7) & ~std::size_t{7};

  Writer w;
  // Ehdr.
  w.bytes(kMagic, 4);
  w.u8(kClass64);
  w.u8(kDataLsb);
  w.u8(1);  // EV_CURRENT
  for (int i = 0; i < 9; ++i) w.u8(0);
  w.u16(kTypeRel);
  w.u16(kMachineRiscv);
  w.u32(1);             // version
  w.u64(0);             // entry
  w.u64(0);             // phoff
  w.u64(shoff);         // shoff
  w.u32(0);             // flags
  w.u16(kEhdrSize);     // ehsize
  w.u16(0);             // phentsize
  w.u16(0);             // phnum
  w.u16(kShdrSize);     // shentsize
  w.u16(5);             // shnum: null, .text, .symtab, .strtab, .shstrtab
  w.u16(4);             // shstrndx

  // Section bodies.
  w.bytes(text.data(), text.size());
  for (int i = 0; i < 24; ++i) w.u8(0);  // null symbol
  for (const SymPlan& sp : syms) {
    w.u32(sp.name_off);
    w.u8((kBindGlobal << 4) | kSttFunc);  // st_info
    w.u8(0);                              // st_other
    w.u16(1);                             // st_shndx: .text
    w.u64(sp.value);
    w.u64(sp.size);
  }
  w.bytes(strtab.data(), strtab.size());
  w.bytes(shstrtab.data(), shstrtab.size());
  w.pad_to(shoff);

  // Section headers.
  write_shdr(w, {});  // SHN_UNDEF
  write_shdr(w, {kNameText, kShtProgbits, text_base, text_off, text.size(),
                 0, 0});
  write_shdr(w, {kNameSymtab, kShtSymtab, 0, symtab_off, symtab_size,
                 /*link=strtab index*/ 3, kSymSize});
  write_shdr(w, {kNameStrtab, kShtStrtab, 0, strtab_off, strtab.size(), 0, 0});
  write_shdr(w, {kNameShstrtab, kShtStrtab, 0, shstrtab_off, shstrtab.size(),
                 0, 0});
  return w.take();
}

std::optional<std::vector<ElfFunction>> read_elf(
    const std::vector<std::uint8_t>& image) {
  Reader r(image);
  if (!r.in_range(0, kEhdrSize)) return std::nullopt;
  if (std::memcmp(r.at(0), kMagic, 4) != 0) return std::nullopt;
  if (image[4] != kClass64 || image[5] != kDataLsb) return std::nullopt;
  if (r.u16(18) != kMachineRiscv) return std::nullopt;

  const std::uint64_t shoff = r.u64(40);
  const std::uint16_t shentsize = r.u16(58);
  const std::uint16_t shnum = r.u16(60);
  if (shentsize != kShdrSize) return std::nullopt;
  if (!r.in_range(shoff, std::size_t{shnum} * kShdrSize)) return std::nullopt;

  struct Sec {
    std::uint32_t type;
    std::uint64_t addr, offset, size, link, entsize;
  };
  std::vector<Sec> secs;
  for (std::uint16_t i = 0; i < shnum; ++i) {
    const std::size_t base = shoff + std::size_t{i} * kShdrSize;
    Sec s;
    s.type = r.u32(base + 4);
    s.addr = r.u64(base + 16);
    s.offset = r.u64(base + 24);
    s.size = r.u64(base + 32);
    s.link = r.u32(base + 40);
    s.entsize = r.u64(base + 56);
    if (s.type != 8 /*SHT_NOBITS*/ && !r.in_range(s.offset, s.size)) {
      return std::nullopt;
    }
    secs.push_back(s);
  }

  // Locate .text (first PROGBITS) and .symtab.
  const Sec* text = nullptr;
  const Sec* symtab = nullptr;
  for (const Sec& s : secs) {
    if (s.type == kShtProgbits && text == nullptr) text = &s;
    if (s.type == kShtSymtab && symtab == nullptr) symtab = &s;
  }
  if (text == nullptr || symtab == nullptr) return std::nullopt;
  if (symtab->entsize != kSymSize || symtab->link >= secs.size()) {
    return std::nullopt;
  }
  const Sec& strtab = secs[symtab->link];
  if (strtab.type != kShtStrtab) return std::nullopt;

  std::vector<ElfFunction> out;
  const std::size_t nsyms = symtab->size / kSymSize;
  for (std::size_t i = 1; i < nsyms; ++i) {  // skip the null symbol
    const std::size_t base = symtab->offset + i * kSymSize;
    const std::uint32_t name_off = r.u32(base);
    const std::uint8_t info = image[base + 4];
    if ((info & 0xf) != kSttFunc) continue;
    const std::uint64_t value = r.u64(base + 8);
    const std::uint64_t size = r.u64(base + 16);

    if (value < text->addr) return std::nullopt;
    const std::uint64_t rel = value - text->addr;
    if (rel > text->size || size > text->size - rel) return std::nullopt;
    if (name_off >= strtab.size) return std::nullopt;

    ElfFunction f;
    f.address = value;
    // NUL-terminated name, bounded by the strtab.
    const char* s = reinterpret_cast<const char*>(r.at(strtab.offset + name_off));
    const std::size_t maxlen = strtab.size - name_off;
    f.name.assign(s, strnlen(s, maxlen));
    f.code.reserve(size / 4);
    for (std::uint64_t o = 0; o + 4 <= size; o += 4) {
      const std::size_t p = text->offset + rel + o;
      f.code.push_back(static_cast<std::uint32_t>(image[p]) |
                       (static_cast<std::uint32_t>(image[p + 1]) << 8) |
                       (static_cast<std::uint32_t>(image[p + 2]) << 16) |
                       (static_cast<std::uint32_t>(image[p + 3]) << 24));
    }
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<std::vector<std::uint32_t>> harvest_dataset(
    const std::vector<std::uint8_t>& image) {
  std::vector<std::vector<std::uint32_t>> out;
  if (const auto funcs = read_elf(image)) {
    for (const ElfFunction& f : *funcs) {
      if (!f.code.empty()) out.push_back(f.code);
    }
  }
  return out;
}

std::vector<std::uint8_t> synthesize_compiled_binary(CorpusGenerator& gen,
                                                     std::size_t n) {
  std::vector<ElfFunction> funcs;
  funcs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ElfFunction f;
    f.name = "func_" + std::to_string(i);
    f.code = gen.function();
    funcs.push_back(std::move(f));
  }
  return write_elf(funcs);
}

}  // namespace chatfuzz::corpus
