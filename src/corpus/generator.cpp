#include "corpus/generator.h"

#include <array>

#include "riscv/builder.h"
#include "riscv/csr.h"
#include "riscv/encode.h"

namespace chatfuzz::corpus {

using riscv::Opcode;

namespace {
// Caller-saved integer registers (t0-t6, a0-a7) — the pool compiled code
// churns through.
constexpr std::array<unsigned, 15> kScratch = {5,  6,  7,  10, 11, 12, 13, 14,
                                               15, 16, 17, 28, 29, 30, 31};
// Registers initialized to RAM pointers by the platform (even registers).
constexpr std::array<unsigned, 8> kPointers = {4, 6, 8, 10, 12, 14, 16, 18};

// Compiled code exercises essentially the whole integer ISA; the generator's
// vocabulary therefore spans every RV64IMA opcode (rare ones at low weight
// via idiom frequencies), matching static collection from a real kernel.
constexpr std::array<Opcode, 15> kAluRegOps = {
    Opcode::kAdd,  Opcode::kSub,  Opcode::kXor, Opcode::kOr,   Opcode::kAnd,
    Opcode::kSll,  Opcode::kSrl,  Opcode::kSra, Opcode::kAddw, Opcode::kSubw,
    Opcode::kSllw, Opcode::kSrlw, Opcode::kSraw, Opcode::kSlt, Opcode::kSltu};
constexpr std::array<Opcode, 8> kAluImmOps = {
    Opcode::kAddi, Opcode::kXori,  Opcode::kOri,  Opcode::kAndi,
    Opcode::kSlti, Opcode::kAddiw, Opcode::kSltiu, Opcode::kAddi};
constexpr std::array<Opcode, 6> kShiftImmOps = {
    Opcode::kSlli,  Opcode::kSrli,  Opcode::kSrai,
    Opcode::kSlliw, Opcode::kSrliw, Opcode::kSraiw};
constexpr std::array<Opcode, 13> kMulDivOps = {
    Opcode::kMul,  Opcode::kMulh, Opcode::kMulhu, Opcode::kMulhsu,
    Opcode::kDiv,  Opcode::kDivu, Opcode::kRem,   Opcode::kRemu,
    Opcode::kMulw, Opcode::kDivw, Opcode::kDivuw, Opcode::kRemw,
    Opcode::kRemuw};
constexpr std::array<Opcode, 6> kBranchOps = {
    Opcode::kBeq, Opcode::kBne, Opcode::kBlt,
    Opcode::kBge, Opcode::kBltu, Opcode::kBgeu};
constexpr std::array<Opcode, 7> kLoadOps = {
    Opcode::kLb, Opcode::kLh, Opcode::kLw,  Opcode::kLd,
    Opcode::kLbu, Opcode::kLhu, Opcode::kLwu};
constexpr std::array<Opcode, 4> kStoreOps = {Opcode::kSb, Opcode::kSh,
                                             Opcode::kSw, Opcode::kSd};
constexpr std::array<Opcode, 18> kAmoOps = {
    Opcode::kAmoSwapW, Opcode::kAmoAddW,  Opcode::kAmoXorW, Opcode::kAmoOrW,
    Opcode::kAmoAndW,  Opcode::kAmoMinW,  Opcode::kAmoMaxW,
    Opcode::kAmoMinuW, Opcode::kAmoMaxuW, Opcode::kAmoSwapD,
    Opcode::kAmoAddD,  Opcode::kAmoXorD,  Opcode::kAmoOrD,
    Opcode::kAmoAndD,  Opcode::kAmoMinD,  Opcode::kAmoMaxD,
    Opcode::kAmoMinuD, Opcode::kAmoMaxuD};
constexpr std::array<std::uint16_t, 16> kCsrPool = {
    riscv::csr::kMscratch, riscv::csr::kMstatus, riscv::csr::kMtvec,
    riscv::csr::kMepc,     riscv::csr::kMcause,  riscv::csr::kSscratch,
    riscv::csr::kSatp,     riscv::csr::kMinstret, riscv::csr::kCycle,
    riscv::csr::kInstret,  riscv::csr::kMie,      riscv::csr::kMedeleg,
    // S-mode trap CSRs: reading these back after a delegated trap is what
    // makes a wrong-delegation DUT visible as an architectural mismatch.
    riscv::csr::kSstatus,  riscv::csr::kSepc,     riscv::csr::kScause,
    riscv::csr::kStvec};
}  // namespace

unsigned CorpusGenerator::recent_reg() {
  if (!recent_.empty() && rng_.chance(0.75)) {
    return recent_[rng_.below(recent_.size())];
  }
  return kScratch[rng_.below(kScratch.size())];
}

unsigned CorpusGenerator::pointer_reg() {
  return kPointers[rng_.below(kPointers.size())];
}

unsigned CorpusGenerator::def_reg() {
  const unsigned rd = kScratch[rng_.below(kScratch.size())];
  recent_.push_back(rd);
  if (recent_.size() > 4) recent_.erase(recent_.begin());
  return rd;
}

void CorpusGenerator::save_state(ser::Writer& w) const {
  ser::write_rng(w, rng_);
  std::vector<std::uint32_t> recent(recent_.begin(), recent_.end());
  w.vec_u32(recent);
}

bool CorpusGenerator::restore_state(ser::Reader& r) {
  Rng rng;
  if (!ser::read_rng(r, rng)) return false;
  const std::vector<std::uint32_t> recent = r.vec_u32();
  if (!r.ok()) return false;
  rng_ = rng;
  recent_.assign(recent.begin(), recent.end());
  return true;
}

void CorpusGenerator::emit_alu_chain(Program& out) {
  const unsigned n = static_cast<unsigned>(rng_.range(2, 4));
  for (unsigned i = 0; i < n; ++i) {
    const double roll = rng_.uniform();
    if (roll < 0.35) {
      const Opcode op = kAluImmOps[rng_.below(kAluImmOps.size())];
      out.push_back(riscv::enc_i(op, def_reg(), recent_reg(),
                                 static_cast<std::int32_t>(rng_.range(-512, 511))));
    } else if (roll < 0.5) {
      out.push_back(riscv::enc_shift(kShiftImmOps[rng_.below(kShiftImmOps.size())],
                                     def_reg(), recent_reg(),
                                     static_cast<unsigned>(rng_.range(0, 31))));
    } else if (roll < 0.58) {
      out.push_back(riscv::enc_u(rng_.chance(0.5) ? Opcode::kLui : Opcode::kAuipc,
                                 def_reg(),
                                 static_cast<std::int32_t>(rng_.range(-256, 255))));
    } else {
      const Opcode op = kAluRegOps[rng_.below(kAluRegOps.size())];
      out.push_back(riscv::enc_r(op, def_reg(), recent_reg(), recent_reg()));
    }
  }
}

void CorpusGenerator::emit_load_compute_store(Program& out) {
  const unsigned base = pointer_reg();
  const Opcode load = kLoadOps[rng_.below(kLoadOps.size())];
  const Opcode store = kStoreOps[rng_.below(kStoreOps.size())];
  // Offset aligned to the larger of the two access sizes.
  const auto off = static_cast<std::int32_t>(rng_.range(0, 31) * 8);
  const unsigned t = def_reg();
  out.push_back(riscv::enc_i(load, t, base, off));
  if (rng_.chance(0.4)) {
    out.push_back(riscv::enc_shift(kShiftImmOps[rng_.below(kShiftImmOps.size())],
                                   def_reg(), t,
                                   static_cast<unsigned>(rng_.range(0, 31))));
  } else {
    out.push_back(riscv::enc_r(kAluRegOps[rng_.below(kAluRegOps.size())],
                               def_reg(), t, recent_reg()));
  }
  out.push_back(riscv::enc_s(store, base, recent_.back(), off));
}

void CorpusGenerator::emit_if_else(Program& out) {
  const Opcode br = kBranchOps[rng_.below(kBranchOps.size())];
  const unsigned skip = static_cast<unsigned>(rng_.range(1, 3));
  out.push_back(riscv::enc_b(br, recent_reg(), recent_reg(),
                             static_cast<std::int32_t>(4 * (skip + 1))));
  for (unsigned i = 0; i < skip; ++i) {
    out.push_back(riscv::enc_i(kAluImmOps[rng_.below(kAluImmOps.size())],
                               def_reg(), recent_reg(),
                               static_cast<std::int32_t>(rng_.range(-64, 63))));
  }
}

void CorpusGenerator::emit_loop(Program& out) {
  const unsigned counter = def_reg();
  const auto trips = static_cast<std::int32_t>(rng_.range(2, 5));
  out.push_back(riscv::enc_i(Opcode::kAddi, counter, 0, trips));
  const unsigned body = static_cast<unsigned>(rng_.range(1, 2));
  for (unsigned i = 0; i < body; ++i) {
    out.push_back(riscv::enc_r(kAluRegOps[rng_.below(kAluRegOps.size())],
                               def_reg(), recent_reg(), recent_reg()));
  }
  out.push_back(riscv::enc_i(Opcode::kAddi, counter, counter, -1));
  out.push_back(riscv::enc_b(Opcode::kBne, counter, 0,
                             -static_cast<std::int32_t>(4 * (body + 1))));
}

void CorpusGenerator::emit_muldiv(Program& out) {
  if (rng_.chance(0.3)) {
    // Mixed-sign operands: negate one input first (kernels divide signed
    // quantities all the time; exercises the divider's sign logic).
    const unsigned neg = def_reg();
    out.push_back(riscv::enc_r(Opcode::kSub, neg, 0, recent_reg()));
  }
  const unsigned n = static_cast<unsigned>(rng_.range(1, 2));
  for (unsigned i = 0; i < n; ++i) {
    out.push_back(riscv::enc_r(kMulDivOps[rng_.below(kMulDivOps.size())],
                               def_reg(), recent_reg(), recent_reg()));
  }
}

void CorpusGenerator::emit_csr(Program& out) {
  const std::uint16_t csr = kCsrPool[rng_.below(kCsrPool.size())];
  // cycle/time/mcycle are the timing counters the two implementations
  // legitimately disagree on (the DUT models cache-miss cycles, the golden
  // ISS counts steps). The mismatch filter hides the read itself, but a
  // live destination would leak the implementation-defined value into
  // address/branch dataflow and poison every downstream comparison — so
  // those reads sink to x0, which still drives the CSR access-check path.
  const bool timing = csr == riscv::csr::kCycle || csr == riscv::csr::kTime ||
                      csr == riscv::csr::kMcycle;
  const auto rd = [&] { return timing ? 0u : def_reg(); };
  switch (rng_.below(5)) {
    case 0:
      out.push_back(riscv::enc_csr(Opcode::kCsrrs, rd(), csr, 0));
      break;
    case 1:
      out.push_back(riscv::enc_csr(Opcode::kCsrrw, 0, csr, recent_reg()));
      break;
    case 2:
      out.push_back(riscv::enc_csr(Opcode::kCsrrc, rd(), csr, recent_reg()));
      break;
    case 3:
      out.push_back(riscv::enc_csr(
          rng_.chance(0.5) ? Opcode::kCsrrsi : Opcode::kCsrrci, rd(), csr,
          static_cast<unsigned>(rng_.range(0, 31))));
      break;
    default:
      out.push_back(riscv::enc_csr(Opcode::kCsrrwi, 0, csr,
                                   static_cast<unsigned>(rng_.range(0, 31))));
      break;
  }
}

void CorpusGenerator::emit_amo(Program& out) {
  out.push_back(riscv::enc_amo(kAmoOps[rng_.below(kAmoOps.size())], def_reg(),
                               pointer_reg(), recent_reg(), rng_.chance(0.2),
                               rng_.chance(0.2)));
}

void CorpusGenerator::emit_lrsc(Program& out) {
  const unsigned ptr = pointer_reg();
  const bool dword = rng_.chance(0.4);
  if (rng_.chance(0.15)) {
    // Unpaired sc (retry loops end up with these): fails by construction.
    out.push_back(riscv::enc_amo(dword ? Opcode::kScD : Opcode::kScW,
                                 def_reg(), ptr, recent_reg()));
    return;
  }
  out.push_back(riscv::enc_amo(dword ? Opcode::kLrD : Opcode::kLrW, def_reg(),
                               ptr, 0));
  if (rng_.chance(0.25)) {
    // An intervening store to the reserved line kills the reservation.
    out.push_back(riscv::enc_s(Opcode::kSw, ptr, recent_reg(), 0));
  }
  out.push_back(riscv::enc_amo(dword ? Opcode::kScD : Opcode::kScW, def_reg(),
                               ptr, recent_reg()));
}

void CorpusGenerator::emit_fence(Program& out) {
  out.push_back(
      riscv::enc_sys(rng_.chance(0.5) ? Opcode::kFence : Opcode::kFenceI));
}

void CorpusGenerator::emit_priv(Program& out) {
  if (rng_.chance(0.2)) {
    out.push_back(riscv::enc_sys(rng_.chance(0.5) ? Opcode::kEcall
                                                  : Opcode::kEbreak));
    return;
  }
  // Arrange mepc to land just past the mret, optionally set MPP=S, and
  // return — a real privilege transition (M -> S/U) that exercises the trap
  // unit and unlocks the supervisor-mode condition crosses.
  const unsigned t = def_reg();
  const bool to_supervisor = rng_.chance(0.5);
  if (to_supervisor) {
    const unsigned m = def_reg();
    out.push_back(riscv::enc_i(Opcode::kAddi, m, 0, 1));
    out.push_back(riscv::enc_shift(Opcode::kSlli, m, m, 11));  // MPP = 0b01
    out.push_back(riscv::enc_csr(Opcode::kCsrrs, 0, riscv::csr::kMstatus, m));
  }
  out.push_back(riscv::enc_u(Opcode::kAuipc, t, 0));
  out.push_back(riscv::enc_i(Opcode::kAddi, t, t, 16));
  out.push_back(riscv::enc_csr(Opcode::kCsrrw, 0, riscv::csr::kMepc, t));
  out.push_back(riscv::enc_sys(Opcode::kMret));
  if (to_supervisor && rng_.chance(0.3)) {
    // Running in S-mode now; sret bounces to U using whatever SPP holds.
    out.push_back(riscv::enc_sys(Opcode::kSret));
  }
}

void CorpusGenerator::emit_irq(Program& out) {
  // CLINT arming idiom: enable a machine interrupt source in mie (+ the
  // global mstatus.MIE), then store to mtimecmp or msip. Mirrors how kernel
  // timer code arms the SiFive CLINT.
  const unsigned t0 = def_reg();
  const unsigned t1 = def_reg();
  const bool timer = rng_.chance(0.6);
  out.push_back(riscv::enc_i(Opcode::kAddi, t1, 0,
                             timer ? (1 << 7) : (1 << 3)));
  out.push_back(riscv::enc_csr(Opcode::kCsrrs, 0, riscv::csr::kMie, t1));
  if (rng_.chance(0.8)) {
    out.push_back(riscv::enc_i(Opcode::kAddi, t1, 0, 1 << 3));
    out.push_back(riscv::enc_csr(Opcode::kCsrrs, 0, riscv::csr::kMstatus, t1));
  }
  const std::uint64_t addr =
      cfg_.clint_base + (timer ? 0x4000ull : 0x0ull);  // mtimecmp / msip
  const auto value = static_cast<std::int32_t>(addr);
  const std::int32_t hi = (value + 0x800) >> 12;
  out.push_back(riscv::enc_u(Opcode::kLui, t0, hi));
  out.push_back(riscv::enc_i(Opcode::kAddi, t0, t0, value - (hi << 12)));
  if (timer) {
    out.push_back(riscv::enc_i(Opcode::kAddi, t1, 0,
                               static_cast<std::int32_t>(rng_.range(8, 64))));
    out.push_back(riscv::enc_s(Opcode::kSd, t0, t1, 0));
  } else {
    out.push_back(riscv::enc_i(Opcode::kAddi, t1, 0, 1));
    out.push_back(riscv::enc_s(Opcode::kSw, t0, t1, 0));
  }
}

void CorpusGenerator::emit_vm(Program& out) {
  // Sv39 bring-up idiom (kernel early-boot shape): identity-map the RAM
  // gigapage in a root PT one page above the data region, sometimes
  // delegate the page-fault causes to S-mode, install satp and drop to S or
  // U. The remainder of the function then executes translated — loads,
  // stores and fetches all walk the page table, and an occasional read-only
  // or supervisor-only mapping turns later idioms into page-fault stimulus.
  namespace pv = riscv::sv39;
  const bool user = rng_.chance(0.5);
  std::uint64_t flags = pv::kPteV | pv::kPteR | pv::kPteX | pv::kPteA;
  if (rng_.chance(0.85)) flags |= pv::kPteW;  // else read-only: stores fault
  if (rng_.chance(0.9)) flags |= pv::kPteD;   // else first store faults (!D)
  if (user) {
    flags |= pv::kPteU;
  } else if (rng_.chance(0.1)) {
    flags |= pv::kPteU;  // S-mode on U pages: fetch faults, SUM-gated data
  }
  riscv::ProgramBuilder b;
  if (rng_.chance(0.5)) {
    // Delegate page faults (and sometimes ecall-from-U / illegal) to S.
    std::int32_t mask = (1 << 12) | (1 << 13) | (1 << 15);
    if (rng_.chance(0.4)) mask |= (1 << 8) | (1 << 2);
    const unsigned t = def_reg();
    b.li(t, mask);
    b.csrrs(0, riscv::csr::kMedeleg, t);
  }
  // Fixed t0/t1/t2 scratch: the preamble needs distinct registers.
  b.sv39_identity_map(cfg_.ram_base, cfg_.ram_base + cfg_.pt_offset,
                      static_cast<std::uint32_t>(flags), 5, 6);
  b.enter_priv(user ? 0u : 1u, 7);
  // Post-transition stimulus: the idiom often lands at the end of the
  // instruction budget, so it exercises its own mapping — a translated
  // store+load through a data pointer drives the W/D permission checks.
  const unsigned ptr = pointer_reg();
  b.sd(ptr, 30, 0);
  b.ld(29, ptr, 0);
  if ((flags & pv::kPteW) != 0 && rng_.chance(0.4)) {
    // Translation-context switch: downgrade the mapping in place (through
    // the identity map), swap satp WITHOUT an sfence.vma, and store again.
    // A TLB that survives the satp write keeps serving the stale writable
    // leaf — exactly the stale-TLB defect class.
    const std::uint64_t vpn2 = (cfg_.ram_base >> 30) & 0x1ff;
    const auto ro_pte = static_cast<std::int32_t>(
        ((cfg_.ram_base >> 12) << 10) | (flags & ~pv::kPteW));
    b.li(5, static_cast<std::int32_t>((cfg_.ram_base + cfg_.pt_offset) >> 12));
    b.slli(5, 5, 12);
    b.li(6, ro_pte);
    b.sd(5, 6, static_cast<std::int32_t>(vpn2 * 8));
    b.csrrs(6, riscv::csr::kSatp, 0);
    b.csrrw(0, riscv::csr::kSatp, 6);
    b.sd(ptr, 30, 8);
  }
  for (const std::uint32_t w : b.seal()) out.push_back(w);
}

void CorpusGenerator::emit_lsu(Program& out) {
  // Memory-ordering stress kernels. The div makes the stored value (or the
  // branch condition) a long-latency producer, so on an out-of-order LSU
  // the dependent loads arrive while the store is still in the queue —
  // store-to-load forwarding, partial-overlap merges, loads waiting on
  // unresolved stores, and wrong-path stores under a cold branch.
  const unsigned base = pointer_reg();
  const auto off = static_cast<std::int32_t>(rng_.range(0, 30) * 8);
  switch (rng_.below(4)) {
    case 0: {  // store-forward: full-width RAW through the store queue
      const unsigned v = def_reg();
      out.push_back(riscv::enc_r(Opcode::kDiv, v, recent_reg(), recent_reg()));
      out.push_back(riscv::enc_s(Opcode::kSd, base, v, off));
      out.push_back(riscv::enc_i(Opcode::kLd, def_reg(), base, off));
      break;
    }
    case 1: {  // pair-alias: narrow stores merged under a wider load
      const unsigned v = def_reg();
      out.push_back(riscv::enc_r(Opcode::kDiv, v, recent_reg(), recent_reg()));
      out.push_back(riscv::enc_s(Opcode::kSb, base, v, off + 1));
      out.push_back(riscv::enc_s(Opcode::kSh, base, v, off + 4));
      out.push_back(riscv::enc_i(Opcode::kLd, def_reg(), base, off));
      break;
    }
    case 2: {  // pointer-chase through a just-forwarded pointer
      const unsigned p2 = pointer_reg();
      const unsigned t = def_reg();
      out.push_back(riscv::enc_s(Opcode::kSd, base, p2, off));
      out.push_back(riscv::enc_i(Opcode::kLd, t, base, off));
      out.push_back(riscv::enc_i(Opcode::kLw, def_reg(), t, 0));
      break;
    }
    default: {  // cold always-taken branch over a wrong-path store + load
      // The branch condition is div-fed (resolves late) while the store's
      // data is already available, so a speculative LSU drains/forwards the
      // wrong-path store and issues the wrong-path load long before the
      // squash arrives. The fall-through load then re-reads the location
      // architecturally — a store that escaped the squash shows up there.
      const unsigned c = def_reg();
      out.push_back(riscv::enc_r(Opcode::kDiv, c, recent_reg(), recent_reg()));
      out.push_back(riscv::enc_b(Opcode::kBeq, c, c, 12));
      out.push_back(riscv::enc_s(Opcode::kSd, base, recent_reg(), off));
      out.push_back(riscv::enc_i(Opcode::kLd, def_reg(), base, off));
      out.push_back(riscv::enc_i(Opcode::kLd, def_reg(), base, off));
      break;
    }
  }
}

Program CorpusGenerator::function() {
  Program out;
  recent_.clear();
  if (cfg_.with_prologue) {
    out.push_back(riscv::enc_i(Opcode::kAddi, 2, 2, -32));
    out.push_back(riscv::enc_s(Opcode::kSd, 2, 1, 8));
    out.push_back(riscv::enc_s(Opcode::kSd, 2, 8, 16));
  }
  const std::array<double, 13> weights = {
      cfg_.w_alu_chain, cfg_.w_load_compute_store, cfg_.w_if_else,
      cfg_.w_loop,      cfg_.w_muldiv,             cfg_.w_csr,
      cfg_.w_amo,       cfg_.w_lrsc,               cfg_.w_fence,
      cfg_.w_priv,      cfg_.w_irq,                cfg_.w_vm,
      cfg_.w_lsu};
  const auto target = static_cast<std::size_t>(
      rng_.range(cfg_.min_instrs, cfg_.max_instrs));
  while (out.size() < target) {
    switch (rng_.weighted_pick(weights)) {
      case 0: emit_alu_chain(out); break;
      case 1: emit_load_compute_store(out); break;
      case 2: emit_if_else(out); break;
      case 3: emit_loop(out); break;
      case 4: emit_muldiv(out); break;
      case 5: emit_csr(out); break;
      case 6: emit_amo(out); break;
      case 7: emit_lrsc(out); break;
      case 8: emit_fence(out); break;
      case 9: emit_priv(out); break;
      case 10: emit_irq(out); break;
      case 11: emit_vm(out); break;
      default: emit_lsu(out); break;
    }
  }
  if (cfg_.with_prologue) {
    out.push_back(riscv::enc_i(Opcode::kLd, 1, 2, 8));
    out.push_back(riscv::enc_i(Opcode::kLd, 8, 2, 16));
    out.push_back(riscv::enc_i(Opcode::kAddi, 2, 2, 32));
    out.push_back(riscv::enc_i(Opcode::kJalr, 0, 1, 0));  // ret
  }
  return out;
}

std::vector<Program> CorpusGenerator::dataset(std::size_t n) {
  std::vector<Program> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(function());
  return out;
}

Program CorpusGenerator::prompt(unsigned k) {
  // Sample body instructions only: the prologue is identical across
  // functions and would collapse every rollout onto one prefix.
  const bool saved = cfg_.with_prologue;
  cfg_.with_prologue = false;
  Program fn = function();
  cfg_.with_prologue = saved;
  if (fn.size() > k) fn.resize(k);
  return fn;
}

Program random_valid_program(Rng& rng, unsigned num_instrs) {
  Program out;
  out.reserve(num_instrs);
  for (unsigned i = 0; i < num_instrs; ++i) {
    const auto& spec = riscv::all_specs()[rng.below(riscv::kNumOpcodes)];
    riscv::Decoded d;
    d.op = spec.op;
    d.rd = static_cast<std::uint8_t>(rng.below(32));
    d.rs1 = static_cast<std::uint8_t>(rng.below(32));
    d.rs2 = static_cast<std::uint8_t>(rng.below(32));
    d.aq = rng.chance(0.1);
    d.rl = rng.chance(0.1);
    switch (spec.format) {
      case riscv::Format::kI: case riscv::Format::kS:
        d.imm = rng.range(-2048, 2047);
        break;
      case riscv::Format::kIShift64: d.imm = rng.range(0, 63); break;
      case riscv::Format::kIShift32: d.imm = rng.range(0, 31); break;
      case riscv::Format::kB: d.imm = rng.range(-512, 511) * 2; break;
      case riscv::Format::kU: d.imm = rng.range(-512, 511) << 12; break;
      case riscv::Format::kJ: d.imm = rng.range(-1024, 1023) * 2; break;
      case riscv::Format::kCsr: case riscv::Format::kCsrImm:
        d.csr = rng.chance(0.7)
                    ? kCsrPool[rng.below(kCsrPool.size())]
                    : static_cast<std::uint16_t>(rng.below(0x1000));
        // Same policy as emit_csr: timing counters are the CSRs whose
        // values legitimately differ between implementations, so their
        // reads must not land in live registers.
        if (d.csr == riscv::csr::kCycle || d.csr == riscv::csr::kTime ||
            d.csr == riscv::csr::kMcycle) {
          d.rd = 0;
        }
        break;
      default:
        break;
    }
    out.push_back(riscv::encode(d));
  }
  return out;
}

}  // namespace chatfuzz::corpus
