#include "corpus/store.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace chatfuzz::corpus {

namespace {

constexpr std::uint32_t kIndexMagic = 0x43465A43;  // "CFZC"
// v2: StoreEntryMeta::phase_hash joined the per-entry record (written as 0
// by campaigns, filled in by `corpus minimize` replays).
constexpr std::uint32_t kIndexVersion = 2;

std::string errno_detail() {
  const int e = errno;
  return std::string(" (errno ") + std::to_string(e) + ": " +
         std::strerror(e) + ")";
}

}  // namespace

std::string CorpusStore::shard_path(std::size_t shard) const {
  char name[32];
  std::snprintf(name, sizeof name, "shard-%04zu.bin", shard);
  return dir_ + "/" + name;
}

ser::Status CorpusStore::open(const std::string& dir,
                              std::size_t shard_capacity) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return ser::Status::error("cannot create corpus directory " + dir + ": " +
                              ec.message());
  }
  dir_ = dir;
  shard_capacity_ = shard_capacity == 0 ? 1 : shard_capacity;
  entries_.clear();

  const std::string index = dir + "/index.bin";
  if (!std::filesystem::exists(index)) return {};  // fresh store

  std::string payload;
  ser::Status s = ser::read_file(index, kIndexMagic, kIndexVersion,
                                 "corpus index", &payload);
  if (!s.ok()) return s;
  ser::Reader r(payload);
  const std::uint64_t stored_capacity = r.u64();
  const std::uint64_t n = r.u64();
  if (!r.ok() || stored_capacity == 0) {
    return ser::Status::error(index + ": malformed corpus index header");
  }
  shard_capacity_ = static_cast<std::size_t>(stored_capacity);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    Entry e;
    e.shard = r.u32();
    e.offset_words = r.u64();
    e.num_words = r.u32();
    e.meta.test_index = r.u64();
    e.meta.standalone_bins = r.u32();
    e.meta.incremental_bins = r.u32();
    e.meta.mismatches = r.u32();
    e.meta.ctrl_new = r.u64();
    e.meta.phase_hash = r.u64();
    e.meta.new_bins = r.vec_u32();
    entries_.push_back(std::move(e));
  }
  if (!r.done()) {
    entries_.clear();
    return ser::Status::error(index + ": corpus index payload is truncated "
                                      "or carries trailing garbage");
  }
  return {};
}

ser::Status CorpusStore::append(const core::Program& program,
                                const StoreEntryMeta& meta) {
  if (dir_.empty()) {
    return ser::Status::error("corpus store is not open");
  }
  Entry e;
  e.num_words = static_cast<std::uint32_t>(program.size());
  e.meta = meta;
  if (entries_.empty()) {
    e.shard = 0;
    e.offset_words = 0;
  } else {
    const Entry& last = entries_.back();
    const bool shard_full = entries_.size() % shard_capacity_ == 0;
    e.shard = shard_full ? last.shard + 1 : last.shard;
    e.offset_words = shard_full ? 0 : last.offset_words + last.num_words;
  }

  const std::string path = shard_path(e.shard);
  // "r+b" keeps existing bytes (append at the tracked offset, which after a
  // resume-truncate may be *before* end-of-file garbage from a crashed run);
  // fall back to creating the shard.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return ser::Status::error("cannot open corpus shard " + path +
                              errno_detail());
  }
  ser::Writer w;
  for (std::uint32_t word : program) w.u32(word);
  const long byte_off = static_cast<long>(e.offset_words * 4);
  if (std::fseek(f, byte_off, SEEK_SET) != 0) {
    const std::string detail = errno_detail();
    std::fclose(f);
    return ser::Status::error("cannot seek in corpus shard " + path + detail);
  }
  const std::size_t wrote =
      std::fwrite(w.buffer().data(), 1, w.buffer().size(), f);
  if (wrote != w.buffer().size()) {
    const std::string detail = errno_detail();
    std::fclose(f);
    return ser::Status::error("short write to corpus shard " + path + ": " +
                              std::to_string(wrote) + " of " +
                              std::to_string(w.buffer().size()) + " bytes" +
                              detail);
  }
  if (std::fclose(f) != 0) {
    return ser::Status::error("cannot flush corpus shard " + path +
                              errno_detail());
  }
  entries_.push_back(std::move(e));
  return {};
}

ser::Status CorpusStore::flush() {
  if (dir_.empty()) {
    return ser::Status::error("corpus store is not open");
  }
  ser::Writer w;
  w.u64(shard_capacity_);
  w.u64(entries_.size());
  for (const Entry& e : entries_) {
    w.u32(e.shard);
    w.u64(e.offset_words);
    w.u32(e.num_words);
    w.u64(e.meta.test_index);
    w.u32(e.meta.standalone_bins);
    w.u32(e.meta.incremental_bins);
    w.u32(e.meta.mismatches);
    w.u64(e.meta.ctrl_new);
    w.u64(e.meta.phase_hash);
    w.vec_u32(e.meta.new_bins);
  }
  return ser::write_file(dir_ + "/index.bin", kIndexMagic, kIndexVersion,
                         w.buffer());
}

ser::Status CorpusStore::truncate(std::size_t n) {
  if (n > entries_.size()) {
    return ser::Status::error(
        "corpus truncate to " + std::to_string(n) + " entries, but " + dir_ +
        " only has " + std::to_string(entries_.size()) +
        " (checkpoint is newer than the corpus index; store is corrupt)");
  }
  entries_.resize(n);
  // Trim shard files to exactly the referenced bytes so future appends
  // reproduce an uninterrupted run's files byte-for-byte; drop shards past
  // the last referenced one entirely.
  std::vector<std::uint64_t> shard_words;
  for (const Entry& e : entries_) {
    if (e.shard >= shard_words.size()) shard_words.resize(e.shard + 1, 0);
    shard_words[e.shard] = e.offset_words + e.num_words;
  }
  for (std::size_t shard = 0;; ++shard) {
    const std::string path = shard_path(shard);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) break;
    if (shard < shard_words.size()) {
      std::filesystem::resize_file(path, shard_words[shard] * 4, ec);
      if (ec) {
        return ser::Status::error("cannot trim corpus shard " + path + ": " +
                                  ec.message());
      }
    } else {
      std::filesystem::remove(path, ec);
      if (ec) {
        return ser::Status::error("cannot remove corpus shard " + path +
                                  ": " + ec.message());
      }
    }
  }
  return flush();
}

ser::Status CorpusStore::read_program(std::size_t i,
                                      core::Program* out) const {
  if (i >= entries_.size()) {
    return ser::Status::error("corpus entry " + std::to_string(i) +
                              " out of range (store has " +
                              std::to_string(entries_.size()) + ")");
  }
  const Entry& e = entries_[i];
  const std::string path = shard_path(e.shard);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return ser::Status::error("cannot open corpus shard " + path +
                              errno_detail());
  }
  std::string bytes(static_cast<std::size_t>(e.num_words) * 4, '\0');
  bool failed = std::fseek(f, static_cast<long>(e.offset_words * 4),
                           SEEK_SET) != 0;
  if (!failed) {
    failed = std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size();
  }
  std::fclose(f);
  if (failed) {
    return ser::Status::error("corpus shard " + path +
                              " is truncated at entry " + std::to_string(i) +
                              " (index references missing bytes)");
  }
  ser::Reader r(bytes);
  out->clear();
  out->reserve(e.num_words);
  for (std::uint32_t k = 0; k < e.num_words; ++k) out->push_back(r.u32());
  return {};
}

}  // namespace chatfuzz::corpus
