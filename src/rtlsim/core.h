// RTL-level DUT model ("RocketCore"/"BOOM" role): an instruction-driven
// microarchitectural model of an in-order RV64IMA pipeline with I$/D$,
// branch prediction, an iterative divider, its own CSR/trap unit with M/S/U
// privilege + delegation, an Sv39 MMU (direct-mapped TLB + page-table
// walker), and a commit tracer. Every boolean control condition in the model is a
// registered condition-coverage point, mirroring what `vcs -cm cond`
// instruments in the real RTL.
//
// The model deliberately re-implements execution semantics (it shares only
// the pure ALU arithmetic table with nothing else); together with the
// switchable bug injections in config.h this gives the Mismatch Detector a
// genuinely independent second implementation to diff against the golden
// model — the same structure the paper's VCS-vs-Spike setup has.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "coverage/cover.h"
#include "coverage/multi.h"
#include "isasim/memory.h"
#include "isasim/platform.h"
#include "isasim/trace.h"
#include "riscv/instr.h"
#include "riscv/predecode.h"
#include "riscv/superblock.h"
#include "rtlsim/caches.h"
#include "rtlsim/config.h"
#include "rtlsim/dut.h"

namespace chatfuzz::rtl {

class RtlCore final : public DutCore {
 public:
  /// Points are registered into `db` at construction; the DB must outlive
  /// the core. One DB accumulates coverage across a whole campaign.
  RtlCore(const CoreConfig& cfg, cov::CoverageDB& db, sim::Platform plat = {});

  /// Reset architectural + microarchitectural state and load the program.
  /// Coverage in the shared DB is NOT reset (campaign-cumulative).
  void reset(std::span<const std::uint32_t> program) override;

  sim::RunResult run() override;
  std::optional<sim::CommitRecord> step();

  bool stopped() const override { return stopped_; }
  std::uint64_t pc() const override { return pc_; }
  std::uint64_t reg(unsigned i) const override { return regs_[i & 31]; }
  riscv::Priv priv() const override { return priv_; }
  std::uint64_t cycles() const override { return cycles_; }
  /// Architectural CSR value as an M-mode read would see it (tests,
  /// examples); 0 for unimplemented addresses.
  std::uint64_t csr_value(std::uint16_t addr) const override {
    std::uint64_t v = 0;
    csr_read(addr, v, riscv::Priv::kMachine);
    return v;
  }
  const sim::Trace& trace() const override { return trace_; }
  const sim::Memory& memory() const override { return mem_; }
  cov::CtrlRegCoverage& ctrl_cov() override { return ctrl_cov_; }
  const CoreConfig& config() const override { return cfg_; }

  /// Optionally attach the multi-metric suite (toggle/FSM/statement
  /// coverage); the suite must outlive the core. Pass nullptr to detach.
  void attach_metrics(cov::MetricSuite* metrics) override {
    metrics_ = metrics;
  }

  /// Change the initial-register-file seed used by subsequent reset() calls
  /// (campaigns that give every test a distinct deterministic register file).
  void set_reg_seed(std::uint64_t seed) override { plat_.reg_seed = seed; }

  /// Stream commits to `sink` instead of the internal trace (nullptr
  /// restores trace collection). While a sink is attached, trace() stays
  /// empty and run() returns an empty RunResult::trace — the streaming path
  /// never materializes one.
  void set_sink(sim::CommitSink* sink) override { sink_ = sink; }

  /// Enable/disable the fused-fetch superblock fast path in run(). Purely a
  /// speed knob: commits, cycles, coverage bins and ctrl-reg observations
  /// are bit-identical either way (the determinism suites pin this). The
  /// fast path also self-disables for configs it cannot fuse (superscalar,
  /// per-instruction select chains, CLINT, attached metrics).
  void set_superblocks(bool on) override { sb_enabled_ = on; }
  bool superblocks() const { return sb_enabled_; }

  /// Attach a basic-block-vector recorder; every committed instruction is
  /// reported as (pc, next_pc) so the recorder can close blocks on control
  /// transfer. The recorder must outlive the run; nullptr detaches. run()
  /// calls on_stop() when the run ends (manual step() loops must do so
  /// themselves).
  void set_bbv(riscv::BbvRecorder* bbv) override { bbv_ = bbv; }

  obs::SimCounters take_obs_counters() override {
    obs::SimCounters c = obs_;
    c.predecode_hits = predecode_.take_hits();
    c.predecode_misses = predecode_.take_misses();
    obs_ = {};
    return c;
  }

 private:
  // -- coverage plumbing ----------------------------------------------------
  /// Record an evaluation of condition `id` with value `v`; returns `v` so
  /// conditions stay readable: if (cc(p_hit_, acc.hit)) {...}
  bool cc(cov::PointId id, bool v) {
    db_.hit(id, v);
    return v;
  }
  void register_points();

  /// Flush the deferred select-chain histograms into the coverage DB (see
  /// CoreConfig::deferred_select_chains). Called whenever the run stops and
  /// at reset, so any state a test observes after a run is bit-identical to
  /// per-instruction evaluation.
  void fold_deferred_chains();

  // -- trap unit -------------------------------------------------------------
  void raise(sim::CommitRecord& rec, riscv::Exception cause, std::uint64_t tval);
  bool csr_read(std::uint16_t addr, std::uint64_t& value,
                riscv::Priv view) const;
  bool csr_write(std::uint16_t addr, std::uint64_t value);

  // -- MMU (Sv39 TLB + page-table walker) ------------------------------------
  // Deliberately a second implementation of the walk (see the header note on
  // independence); only the PTE field constants come from riscv/csr.h.
  enum class MemAccess { kFetch, kLoad, kStore };
  struct TlbEntry {
    bool valid = false;
    std::uint64_t vpn = 0;   // full 27-bit virtual page number
    std::uint64_t pte = 0;   // cached leaf PTE
    std::uint8_t level = 0;  // leaf level (0 = 4K page)
  };
  /// Sv39 in effect: satp.MODE==8 and the hart is below M.
  bool translation_active() const;
  /// TLB lookup + walk + permission check; fills `paddr` on success. The
  /// permission check runs on every access, hit or refill, against current
  /// privilege/mstatus. Records tlb.*/ptw.* coverage. Bug sites:
  /// skip_perm_check (store W/D checks skipped).
  riscv::Exception translate(std::uint64_t vaddr, MemAccess kind,
                             std::uint64_t& paddr);
  riscv::Exception leaf_permissions(std::uint64_t pte, MemAccess kind);
  void flush_tlb();
  void write_rd(sim::CommitRecord& rec, std::uint8_t rd, std::uint64_t value);
  void execute(const riscv::Decoded& d, sim::CommitRecord& rec);
  void evaluate_background_units(const riscv::Decoded& d);
  /// Poll the CLINT and enter a pending M-mode interrupt if enabled.
  void service_interrupts();

  // ---- superblock fused-fetch fast path (see riscv/superblock.h) -----------
  // A cached span stores, per instruction, the decode plus every
  // decode-derived coverage outcome precomputed as bit masks; executing the
  // span replays execute()/cross-unit/ctrl-reg work per slot but batches the
  // per-instruction condition points into hit_n() folds at span exit —
  // counts are order-insensitive, so the DB bytes come out identical.
  struct FusedSlot {
    riscv::Decoded d;
    std::uint32_t class_bits = 0;  // outcome of each batched point, by index
    std::uint16_t op_index = 0;    // decoded opcode index (select chains)
    std::uint16_t ev_bits = 0;     // StepEvents class-flag template
  };
  // Batched per-instruction points: the 19 decode-stage points in step()
  // evaluation order, then fetch.cross_line — everything whose outcome is a
  // pure function of (decode, fetch address).
  static constexpr std::size_t kNumFusedPoints = 20;
  using FusedIndex =
      riscv::SuperblockIndex<FusedSlot,
                             std::array<std::uint32_t, kNumFusedPoints>>;
  /// Execute cached spans starting at pc_; returns false when the slow
  /// step() must handle this pc (no span, negative span, budget exhausted).
  bool run_superblock();
  const FusedIndex::Span* build_superblock();

  // Superblock span cache: derived state (never checkpointed), guarded by
  // the I$ per-line generation counters — unchanged generations mean every
  // fetch in the span would still hit and serve identical bytes, so the
  // stale-I$ bug injection keeps its exact semantics.
  bool sb_enabled_ = true;
  FusedIndex sb_;
  // Telemetry tallies (see take_obs_counters); never read architecturally.
  obs::SimCounters obs_;

  // Span-build churn guard (same policy as IsaSim::sb_builds_): once builds
  // outpace ~1 per 16 committed instructions, stop building for the rest of
  // the test and serve only already-cached spans. Purely a speed valve.
  std::uint64_t sb_builds_ = 0;
  std::array<cov::PointId, kNumFusedPoints> p_fused_batch_{};
  riscv::BbvRecorder* bbv_ = nullptr;

  CoreConfig cfg_;
  cov::CoverageDB& db_;
  sim::Platform plat_;
  sim::Memory mem_;
  sim::ClintState clint_;
  ICache icache_;
  DCache dcache_;
  Predictor predictor_;
  // Decode-stage memoization (see riscv/predecode.h). Fetch still goes
  // through the modeled I$ — the cache only skips re-decoding the fetched
  // word, tag-checked against it, so bug injections (stale I$) and every
  // coverage point behave exactly as before.
  riscv::PredecodeCache predecode_;
  cov::CtrlRegCoverage ctrl_cov_;
  cov::MetricSuite* metrics_ = nullptr;

  // Architectural state.
  std::array<std::uint64_t, 32> regs_{};
  std::uint64_t pc_ = 0;
  riscv::Priv priv_ = riscv::Priv::kMachine;
  std::optional<std::uint64_t> reservation_;
  struct CsrFile {
    std::uint64_t mstatus = 0;
    std::uint64_t medeleg = 0, mideleg = 0;
    std::uint64_t mie = 0, mip = 0;
    std::uint64_t mtvec = 0, mscratch = 0, mepc = 0, mcause = 0, mtval = 0;
    std::uint64_t mcounteren = ~0ull, scounteren = ~0ull;
    std::uint64_t stvec = 0, sscratch = 0, sepc = 0, scause = 0, stval = 0;
    std::uint64_t satp = 0;
    std::uint64_t instret = 0;
  } csrs_;

  // Microarchitectural state.
  std::array<TlbEntry, 16> tlb_{};  // direct-mapped, indexed by vpn % 16
  std::uint64_t cycles_ = 0;
  std::uint8_t last_rd_ = 0;        // writeback reg of previous instruction
  bool last_was_load_ = false;      // for load-use stall condition
  bool last_was_short_alu_ = false; // for BOOM dual-issue condition
  std::uint64_t last_ctrl_pack_ = 0;

  // Run state.
  std::uint64_t program_end_ = 0;
  sim::Trace trace_;
  sim::CommitSink* sink_ = nullptr;
  bool stopped_ = true;
  sim::StopReason stop_reason_ = sim::StopReason::kStepLimit;
  std::uint64_t steps_ = 0;

  // ---- condition points -----------------------------------------------------
  // Fetch / front end.
  cov::PointId p_ic_hit_, p_ic_evict_, p_btb_hit_, p_pred_taken_,
      p_mispredict_, p_fencei_flush_, p_fetch_cross_;
  std::vector<cov::PointId> p_ic_set_evict_;  // per-set eviction
  // Decode: instruction-class signals + per-opcode select chain.
  cov::PointId p_dec_valid_, p_dec_load_, p_dec_store_, p_dec_branch_,
      p_dec_jal_, p_dec_jalr_, p_dec_aluimm_, p_dec_alureg_, p_dec_wform_,
      p_dec_muldiv_, p_dec_div_, p_dec_amo_, p_dec_lr_, p_dec_sc_, p_dec_csr_,
      p_dec_fence_, p_dec_system_, p_dec_rd_x0_, p_dec_rs1_x0_;
  std::vector<cov::PointId> p_dec_op_;  // one per opcode
  // Execute / hazards.
  cov::PointId p_ex_bypass_rs1_, p_ex_bypass_rs2_, p_ex_load_use_,
      p_ex_res_zero_, p_ex_res_neg_, p_ex_same_src_, p_ex_shamt_zero_,
      p_ex_br_taken_, p_ex_br_backward_, p_ex_target_misaligned_;
  // Mul/div unit.
  cov::PointId p_md_busy_, p_md_div0_, p_md_overflow_, p_md_sign_mix_,
      p_md_word_, p_md_high_;
  // Memory unit / D$.
  cov::PointId p_dc_hit_, p_dc_evict_valid_, p_dc_evict_dirty_,
      p_mem_misaligned_, p_mem_fault_, p_mem_store_, p_mem_size8_,
      p_mem_sc_ok_, p_mem_resv_valid_, p_mem_amo_min_, p_mem_amo_logic_;
  std::vector<cov::PointId> p_dc_set_evict_;  // per-set eviction
  // CSR / trap unit.
  cov::PointId p_csr_illegal_addr_, p_csr_priv_fail_, p_csr_ro_write_,
      p_csr_machine_, p_csr_super_, p_csr_counter_, p_csr_satp_,
      p_csr_write_side_;
  std::vector<cov::PointId> p_trap_cause_;  // per exception cause
  cov::PointId p_trap_from_u_, p_trap_from_s_, p_mret_, p_sret_,
      p_sret_to_u_, p_mret_to_u_, p_mret_to_s_, p_wfi_, p_deleg_,
      p_deleg_taken_, p_sfence_;
  // Background units evaluated every instruction (interrupt/debug) and per
  // access (PMP/ECC/PTW) — the realistic "hard tail" of the RTL.
  std::vector<cov::PointId> p_irq_pending_;  // 6 causes; true unreachable
  cov::PointId p_debug_halt_, p_debug_step_, p_ecc_ic_, p_ecc_dc_,
      p_pmp_hit_, p_pmp_fault_, p_ptw_active_, p_ptw_level_, p_ptw_fault_,
      p_ctr_overflow_;
  // BOOM-only points.
  cov::PointId p_b_dual_issue_, p_b_rename_alloc_, p_b_rob_full_,
      p_b_flush_, p_b_wakeup_;
  std::vector<cov::PointId> p_b_rename_bank_;  // physical-register banks
  std::vector<cov::PointId> p_b_rob_window_;   // occupancy quartiles
  std::vector<cov::PointId> p_b_pair_;         // dual-issue pair classes

  // ---- cross / sequence instrumentation -------------------------------------
  // Per-instruction event record used to evaluate cross conditions; mirrors
  // the pipeline-state terms that appear in real RTL condition expressions.
  struct StepEvents {
    bool is_load = false, is_store = false, is_amo = false, is_lrsc = false,
         is_csr = false, is_muldiv = false, is_div = false, is_branch = false,
         is_fencei = false, is_jump = false;
    bool taken = false, taken_backward = false, mispredict = false;
    bool icache_miss = false, dcache_miss = false, dcache_hit_dirty = false;
    bool dcache_access = false, dcache_evict_valid = false,
         dcache_evict_dirty = false;
    bool trap = false;
    riscv::Exception cause = riscv::Exception::kNone;
    riscv::Priv priv = riscv::Priv::kMachine;  // privilege at issue
    bool has_mem_addr = false;
    std::uint64_t mem_addr = 0;
    bool csr_write = false;
    std::uint16_t csr_addr = 0;
    bool store_hits_reservation = false;  // store overlapped the LR address
    bool sc_success = false;
  };
  void evaluate_cross_units();
  /// Outcomes of the sequence-pair and cache-cross condition points for the
  /// current (ev_, prev_ev_) pair, in registration order. One source of
  /// truth for both paths: evaluate_cross_units() feeds them through cc()
  /// per instruction, the fused span loop accumulates true-counts locally
  /// and folds them at span exit via hit_n.
  static constexpr std::size_t kMaxSeqPoints = 12;
  static constexpr std::size_t kMaxCacheCrossPoints = 10;
  void seq_cache_outcomes(bool* seq, bool* cx) const;
  /// The cause x privilege cross block (trap instructions only).
  void trap_cause_priv_points();

  StepEvents ev_;       // current instruction
  StepEvents prev_ev_;  // previous instruction
  std::size_t cur_op_index_ = 0;  // decoded opcode index (kNumOpcodes = invalid)
  std::uint64_t mtvec_reset_value_ = 0;

  // Deferred select-chain accounting (CoreConfig::deferred_select_chains):
  // per-instruction opcode/privilege histograms, folded into the DB in one
  // pass by fold_deferred_chains(). The +1 slot is the invalid decode.
  std::uint64_t chain_steps_ = 0;
  std::vector<std::uint64_t> op_count_;       // [kNumOpcodes + 1]
  std::vector<std::uint64_t> op_priv_count_;  // [2][kNumOpcodes + 1]
  std::array<std::uint64_t, 16> priv_class_count_{};  // [2 priv][8 class]

  // Privilege x instruction-class crosses (deep: need a privilege
  // transition followed by the specific class).
  std::vector<cov::PointId> p_cross_priv_class_;  // [2 priv][8 class]
  // Privilege x opcode select chain (depth 2): the decode comparators are
  // replicated per privilege domain in the real RTL's privilege-gated
  // datapaths; sustained U/S-mode execution of the whole ISA is required to
  // close these — the dominant uncovered mass in a 24 h RocketCore campaign.
  std::vector<cov::PointId> p_cross_op_priv_;  // [2 priv][kNumOpcodes]
  // Exception cause x origin privilege (evaluated in the trap unit).
  std::vector<cov::PointId> p_cross_cause_priv_;  // [7 cause][2 priv]
  // Sequence pairs over consecutive instructions.
  std::vector<cov::PointId> p_seq_;
  // Cache/memory state crosses.
  std::vector<cov::PointId> p_cache_cross_;
  // Per-CSR write-performed points.
  std::vector<cov::PointId> p_csr_write_addr_;
  std::vector<std::uint16_t> csr_write_addrs_;
  // Mul/div operand crosses.
  std::vector<cov::PointId> p_md_cross_;
  // TLB unit: consulted only when Sv39 is live (satp.MODE==8 outside
  // M-mode — requires a satp write plus an mret/sret transition first).
  // Wired to the real TLB/walker: lookup, hit, superpage leaf, store
  // permission path, ASID bits, refill walk.
  std::vector<cov::PointId> p_tlb_;
};

}  // namespace chatfuzz::rtl
