// Out-of-order DUT model (the second backend behind the DutCore seam): a
// 2-wide superscalar core with register renaming onto a physical register
// file, a reorder buffer, an LSU with a store queue + byte-wise
// store-to-load forwarding, and branch speculation with squash-on-mispredict.
//
// Architecturally it retires the exact same commit stream as the golden
// model (and the bug-free in-order core): records leave the ROB in program
// order, stores drain to memory at commit, and every serializing op (CSR,
// trap-return, fences, AMO/LR-SC, illegal decode) executes at the ROB head
// against committed state. What is genuinely out of order is the execution
// of ALU/branch/load/store ops through the PRF — which is exactly the
// machinery the three `ooo_*` bug injections in config.h corrupt, so their
// mismatches are real memory-ordering escapes, not trace artifacts.
//
// Two whole-run serial fallbacks keep the privileged surface bit-exact
// without modeling a speculative MMU or interrupt shadow:
//  - plat.clint_enabled: every instruction steps architecturally (interrupt
//    delivery points match the golden model cycle-for-cycle);
//  - translation_active(): Sv39 fetch/loads/stores walk page tables against
//    committed memory, so while satp selects Sv39 below M the core steps
//    architecturally too. Translation state only changes via serializing
//    ops, so the mode check at the top of the run loop is stable.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "coverage/cover.h"
#include "coverage/multi.h"
#include "isasim/memory.h"
#include "isasim/platform.h"
#include "isasim/trace.h"
#include "riscv/instr.h"
#include "riscv/predecode.h"
#include "riscv/superblock.h"
#include "rtlsim/caches.h"
#include "rtlsim/config.h"
#include "rtlsim/dut.h"

namespace chatfuzz::rtl {

class OooCore final : public DutCore {
 public:
  /// Points (the ooo.* groups) are registered into `db` at construction;
  /// the DB must outlive the core.
  OooCore(const CoreConfig& cfg, cov::CoverageDB& db, sim::Platform plat = {});

  void reset(std::span<const std::uint32_t> program) override;
  sim::RunResult run() override;

  bool stopped() const override { return stopped_; }
  std::uint64_t pc() const override { return pc_; }
  /// Committed architectural register value (reads through the retirement
  /// rename table).
  std::uint64_t reg(unsigned i) const override {
    return prf_[rrat_[i & 31]];
  }
  riscv::Priv priv() const override { return priv_; }
  std::uint64_t cycles() const override { return cycles_; }
  std::uint64_t csr_value(std::uint16_t addr) const override {
    std::uint64_t v = 0;
    csr_read(addr, v, riscv::Priv::kMachine);
    return v;
  }
  const sim::Trace& trace() const override { return trace_; }
  const sim::Memory& memory() const override { return mem_; }
  cov::CtrlRegCoverage& ctrl_cov() override { return ctrl_cov_; }
  const CoreConfig& config() const override { return cfg_; }

  /// The multi-metric suite instruments the in-order backend only; in a
  /// multi-DUT stack it attaches to the primary DUT (see sim_worker.cpp).
  void attach_metrics(cov::MetricSuite*) override {}
  void set_reg_seed(std::uint64_t seed) override { plat_.reg_seed = seed; }
  void set_sink(sim::CommitSink* sink) override { sink_ = sink; }
  /// No fused-fetch path in this backend; the knob is accepted so campaign
  /// configs apply uniformly across DUT lists.
  void set_superblocks(bool) override {}
  void set_bbv(riscv::BbvRecorder* bbv) override { bbv_ = bbv; }

  obs::SimCounters take_obs_counters() override {
    obs::SimCounters c = obs_;
    c.predecode_hits = predecode_.take_hits();
    c.predecode_misses = predecode_.take_misses();
    obs_ = {};
    return c;
  }

  // Microarchitectural probes for the ooo unit tests.
  std::size_t rob_occupancy() const { return rob_count_; }
  std::size_t sq_occupancy() const { return sq_count_; }
  std::size_t free_pregs() const { return free_.size(); }
  /// Rename bookkeeping invariants: the retirement map, the free list and
  /// the in-flight destinations partition the physical register file
  /// exactly, and the speculative RAT equals the youngest in-flight mapping
  /// (falling back to the retirement map). Always true with the ooo_* bug
  /// injections off; the missing-squash bug deliberately breaks the
  /// partition (a zombie's register is freed while its write is pending).
  bool rename_invariants_ok() const;

 private:
  // ---- ROB / rename / LSU structures ---------------------------------------
  enum class EKind : std::uint8_t {
    kAlu,     // ALU/M ops incl. lui/auipc (executes in the OOO window)
    kLoad,
    kStore,
    kBranch,  // conditional branch
    kJal,
    kJalr,
    kSerial,  // executes architecturally at the ROB head (CSR, system, A-ext)
    kEscape,  // fetch left RAM: stop marker, commits no record
    kEnd,     // fetched a zero word: stop marker, commits no record
  };
  struct RobEntry {
    std::uint64_t seq = 0;
    EKind kind = EKind::kAlu;
    riscv::Decoded d{};
    std::uint64_t pc = 0;
    std::uint32_t raw = 0;
    bool icache_hit = false;
    // Front-end predicted next pc (branch direction / jal target); the
    // actual next pc is filled at execute.
    std::uint64_t pred_next = 0;
    std::uint64_t next_pc = 0;
    // Rename state. prev_pdst is the speculative-RAT mapping this entry
    // displaced — squash restores it (exact LIFO inverse of rename).
    bool has_rd = false;
    bool use_rs1 = false, use_rs2 = false;
    std::uint8_t pdst = 0, prev_pdst = 0;
    std::uint8_t psrc1 = 0, psrc2 = 0;
    // Execution state.
    bool issued = false;     // handed to a latency unit (load / mul / div)
    bool completed = false;
    riscv::Exception exc = riscv::Exception::kNone;
    std::uint64_t tval = 0;
    // Commit-record payload (loads/stores fill the mem_* fields).
    bool has_mem = false;
    std::uint64_t mem_addr = 0, mem_value = 0;
    std::uint8_t mem_size = 0;
    std::uint64_t rd_value = 0;
    int sq_slot = -1;  // ring index of this store's queue entry
  };
  struct SqEntry {
    std::uint64_t seq = 0;
    std::uint64_t pa = 0;
    unsigned size = 0;
    std::uint64_t data = 0;  // store bits, masked to size
    bool resolved = false;   // address+data known (store executed)
    bool drained = false;    // bug site ooo_early_store_drain wrote memory
  };
  // Latency unit (loads, mul/div): the physical-register write happens at
  // done_cycle, not at issue — which is what makes the missing-squash bug's
  // zombie completions able to corrupt a re-allocated register.
  struct Inflight {
    std::uint64_t seq = 0;
    std::uint64_t done_cycle = 0;
    bool write_prf = false;
    std::uint8_t pdst = 0;
    std::uint64_t value = 0;
    bool zombie = false;  // squashed but kept alive (ooo_missing_squash)
  };

  bool cc(cov::PointId id, bool v) {
    db_.hit(id, v);
    return v;
  }
  void register_points();

  // ---- pipeline stages (one call each per cycle, commit-first order) -------
  void cycle_once();
  void do_complete();
  void do_commit();
  void do_execute();
  void do_fetch();
  /// Execute one entry whose operands are ready; returns false if it had to
  /// wait (loads blocked on unresolved older stores).
  bool execute_entry(RobEntry& e);
  void execute_load(RobEntry& e);
  void execute_store(RobEntry& e);
  /// Remove every ROB entry younger than `seq` (rename undo walk, store
  /// queue truncation, in-flight cancellation / zombie conversion) and
  /// recompute the fetch stalls.
  void squash_younger(std::uint64_t seq);
  void recompute_stalls();
  void drain_store(RobEntry& e);
  void emit_record(const sim::CommitRecord& rec, bool icache_hit);

  // ---- ROB / SQ ring helpers ----------------------------------------------
  RobEntry& rob_at(std::size_t i) { return rob_[(rob_head_ + i) % rob_.size()]; }
  SqEntry& sq_at(std::size_t i) { return sq_[(sq_head_ + i) % sq_.size()]; }
  std::uint8_t alloc_preg();
  void push_entry(RobEntry e);

  // ---- architectural (serial) execution ------------------------------------
  // Transcribed from the in-order model's trap/CSR/MMU units (minus its
  // legacy bug injections — this backend carries only the ooo_* classes):
  // the privileged surface must stay bit-exact against the golden model.
  std::uint64_t areg(unsigned r) const { return prf_[rrat_[r & 31]]; }
  void arch_write_rd(sim::CommitRecord& rec, std::uint8_t rd,
                     std::uint64_t value);
  void raise(sim::CommitRecord& rec, riscv::Exception cause,
             std::uint64_t tval);
  bool csr_read(std::uint16_t addr, std::uint64_t& value,
                riscv::Priv view) const;
  bool csr_write(std::uint16_t addr, std::uint64_t value);
  bool translation_active() const;
  enum class MemAccess { kFetch, kLoad, kStore };
  riscv::Exception translate(std::uint64_t vaddr, MemAccess kind,
                             std::uint64_t& paddr);
  riscv::Exception leaf_permissions(std::uint64_t pte, MemAccess kind) const;
  void flush_tlb();
  void service_interrupts();
  /// One full architectural step (fetch + execute + commit): the serial-mode
  /// path for clint/Sv39 runs, mirroring the in-order core's step() shape.
  void serial_step();
  /// Architectural execute for a serial-class entry at the ROB head (the
  /// instruction is already fetched/decoded); advances pc_ itself.
  void arch_execute(const riscv::Decoded& d, sim::CommitRecord& rec);

  CoreConfig cfg_;
  cov::CoverageDB& db_;
  sim::Platform plat_;
  sim::Memory mem_;
  sim::ClintState clint_;
  ICache icache_;
  DCache dcache_;
  Predictor predictor_;
  riscv::PredecodeCache predecode_;
  cov::CtrlRegCoverage ctrl_cov_;
  riscv::BbvRecorder* bbv_ = nullptr;

  // Telemetry tallies (see take_obs_counters); never read architecturally.
  obs::SimCounters obs_;

  // Architectural state. pc_ is the committed pc (next instruction to
  // retire); the front end runs ahead on fetch_pc_.
  std::uint64_t pc_ = 0;
  riscv::Priv priv_ = riscv::Priv::kMachine;
  std::optional<std::uint64_t> reservation_;
  struct CsrFile {
    std::uint64_t mstatus = 0;
    std::uint64_t medeleg = 0, mideleg = 0;
    std::uint64_t mie = 0, mip = 0;
    std::uint64_t mtvec = 0, mscratch = 0, mepc = 0, mcause = 0, mtval = 0;
    std::uint64_t mcounteren = ~0ull, scounteren = ~0ull;
    std::uint64_t stvec = 0, sscratch = 0, sepc = 0, scause = 0, stval = 0;
    std::uint64_t satp = 0;
    std::uint64_t instret = 0;
  } csrs_;
  struct TlbEntry {
    bool valid = false;
    std::uint64_t vpn = 0;
    std::uint64_t pte = 0;
    std::uint8_t level = 0;
  };
  std::array<TlbEntry, 16> tlb_{};

  // Rename state: speculative RAT (fetch-side), retirement RAT
  // (committed-side), physical register file + ready bits, free stack.
  std::array<std::uint8_t, 32> rat_{};
  std::array<std::uint8_t, 32> rrat_{};
  std::vector<std::uint64_t> prf_;
  std::vector<std::uint8_t> prf_ready_;
  std::vector<std::uint8_t> free_;  // LIFO: squash pushes back exactly

  // ROB / SQ rings + latency units.
  std::vector<RobEntry> rob_;
  std::size_t rob_head_ = 0, rob_count_ = 0;
  std::vector<SqEntry> sq_;
  std::size_t sq_head_ = 0, sq_count_ = 0;
  std::vector<Inflight> inflight_;
  std::uint64_t next_seq_ = 0;

  // Front end.
  std::uint64_t fetch_pc_ = 0;
  bool stall_serial_ = false;   // serial-class entry waiting at/for the head
  bool stall_jalr_ = false;     // jalr target unresolved
  bool stall_marker_ = false;   // stop marker dispatched
  std::uint64_t cycles_ = 0;
  std::uint64_t last_commit_cycle_ = 0;
  std::uint64_t last_ctrl_pack_ = 0;

  // Run state.
  sim::Trace trace_;
  sim::CommitSink* sink_ = nullptr;
  bool stopped_ = true;
  sim::StopReason stop_reason_ = sim::StopReason::kStepLimit;
  std::uint64_t steps_ = 0;

  // ---- ooo.* condition points ----------------------------------------------
  cov::PointId p_rename_alloc_, p_rename_stall_freelist_, p_rename_src_inflight_;
  cov::PointId p_rob_full_, p_rob_commit2_, p_rob_head_wait_;
  cov::PointId p_lsu_fwd_, p_lsu_alias_, p_lsu_sq_full_, p_lsu_wait_store_,
      p_lsu_drain_;
  cov::PointId p_squash_branch_, p_squash_inflight_load_, p_squash_store_,
      p_squash_trap_, p_squash_selfmod_;
};

}  // namespace chatfuzz::rtl
