// Set-associative I$/D$ models. The I$ stores line *data* (so it can serve
// stale bytes — Bug1's mechanism); the D$ is a write-through tag/dirty model
// whose job is timing and coverage conditions (architectural data always
// comes from memory, so D$ state can never corrupt results).
#pragma once

#include <cstdint>
#include <vector>

#include "isasim/memory.h"

namespace chatfuzz::rtl {

struct CacheAccess {
  bool hit = false;
  bool hit_dirty = false;      // hit on a line that was already dirty (D$)
  bool evicted_valid = false;  // victim line was valid
  bool evicted_dirty = false;  // victim line was dirty (D$ only)
};

class ICache {
 public:
  ICache(unsigned sets, unsigned ways, unsigned line_bytes);

  /// Fetch a 32-bit word through the cache. On miss, refills the whole line
  /// from `mem`. On hit, serves the *cached* copy, which may be stale if
  /// memory was written since the refill (when `coherent` is false).
  std::uint32_t fetch(std::uint64_t addr, const sim::Memory& mem,
                      CacheAccess& acc);

  /// FENCE.I: invalidate everything.
  void flush();

  /// Store-coherence hook: when the DUT is configured *without* Bug1, the
  /// core calls this on every store so overlapping lines are invalidated.
  void invalidate_addr(std::uint64_t addr);

  /// Passive probe for the superblock builder: if a valid line covers
  /// `addr`, serve the cached word (stale or not — exactly what fetch()
  /// would serve) without touching any cache state, and report which line
  /// it came from. Returns false on miss; the builder then stops the span
  /// and leaves the refill to the ordinary fetch path.
  bool peek(std::uint64_t addr, std::uint32_t* word,
            std::uint32_t* line_index) const;

  /// Per-line generation counters, bumped whenever a line's ability to
  /// serve its current bytes changes: miss refills (the victim line now
  /// holds a different tag), effective invalidations, and flush(). Cached
  /// superblock spans guard on these cells: unchanged generations mean the
  /// span's fetches would all still hit and serve identical bytes.
  const std::vector<std::uint64_t>& line_gens() const { return gens_; }

  unsigned sets() const { return sets_; }

 private:
  struct Line {
    bool valid = false;
    std::uint64_t tag = 0;
    std::vector<std::uint8_t> data;
  };
  std::uint64_t line_addr(std::uint64_t addr) const { return addr / line_; }
  unsigned sets_, ways_, line_;
  std::vector<Line> lines_;  // sets_ * ways_
  std::vector<std::uint64_t> gens_;  // one generation counter per line
  std::vector<unsigned> rr_;  // round-robin replacement pointer per set
};

class DCache {
 public:
  DCache(unsigned sets, unsigned ways, unsigned line_bytes);

  /// Model one access (load or store) for timing/coverage. Data movement is
  /// handled by the caller against memory directly (write-through).
  CacheAccess access(std::uint64_t addr, bool is_store);

  void flush();

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    std::uint64_t tag = 0;
  };
  unsigned sets_, ways_, line_;
  std::vector<Line> lines_;
  std::vector<unsigned> rr_;
};

/// Branch target buffer + 2-bit counter predictor (gshare-lite, as in the
/// Rocket front end).
class Predictor {
 public:
  explicit Predictor(unsigned entries);

  struct Prediction {
    bool btb_hit = false;
    bool predict_taken = false;
    std::uint64_t target = 0;
  };

  Prediction predict(std::uint64_t pc) const;
  /// Update with the resolved outcome; returns true on mispredict.
  bool update(std::uint64_t pc, bool taken, std::uint64_t target);
  /// Invalidate the BTB and reset the counters (core reset).
  void flush();

 private:
  struct Entry {
    bool valid = false;
    std::uint64_t tag = 0;
    std::uint64_t target = 0;
    std::uint8_t counter = 1;  // 2-bit saturating
  };
  unsigned index(std::uint64_t pc) const {
    return static_cast<unsigned>((pc >> 2) % entries_.size());
  }
  std::vector<Entry> entries_;
};

}  // namespace chatfuzz::rtl
