#include "rtlsim/ooo_core.h"

#include <algorithm>
#include <stdexcept>

#include "riscv/alu.h"
#include "riscv/csr.h"
#include "riscv/decode.h"

namespace chatfuzz::rtl {

using riscv::Decoded;
using riscv::Exception;
using riscv::Opcode;
using riscv::Priv;
using sim::CommitRecord;

namespace {
std::uint64_t sext32(std::uint64_t v) {
  return static_cast<std::uint64_t>(
      static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
}

unsigned mem_size_of(Opcode op) {
  switch (op) {
    case Opcode::kLb: case Opcode::kLbu: case Opcode::kSb: return 1;
    case Opcode::kLh: case Opcode::kLhu: case Opcode::kSh: return 2;
    case Opcode::kLw: case Opcode::kLwu: case Opcode::kSw: return 4;
    case Opcode::kLrW: case Opcode::kScW: return 4;
    default: return 8;
  }
}

bool is_load_op(Opcode op) {
  switch (op) {
    case Opcode::kLb: case Opcode::kLh: case Opcode::kLw: case Opcode::kLd:
    case Opcode::kLbu: case Opcode::kLhu: case Opcode::kLwu:
      return true;
    default:
      return false;
  }
}
bool is_store_op(Opcode op) {
  switch (op) {
    case Opcode::kSb: case Opcode::kSh: case Opcode::kSw: case Opcode::kSd:
      return true;
    default:
      return false;
  }
}
bool is_branch_op(Opcode op) {
  switch (op) {
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu:
      return true;
    default:
      return false;
  }
}
bool is_amo_op(Opcode op) {
  const auto& s = riscv::spec(op);
  return s.ext == riscv::Ext::kA && s.format == riscv::Format::kAmo &&
         op != Opcode::kScW && op != Opcode::kScD;
}
bool is_alu_imm_op(Opcode op) {
  switch (op) {
    case Opcode::kAddi: case Opcode::kSlti: case Opcode::kSltiu:
    case Opcode::kXori: case Opcode::kOri: case Opcode::kAndi:
    case Opcode::kSlli: case Opcode::kSrli: case Opcode::kSrai:
    case Opcode::kAddiw: case Opcode::kSlliw: case Opcode::kSrliw:
    case Opcode::kSraiw:
      return true;
    default:
      return false;
  }
}
bool is_alu_reg_op(Opcode op) {
  const auto& s = riscv::spec(op);
  return s.format == riscv::Format::kR && s.ext == riscv::Ext::kI;
}

/// The commit stage / front end can drain at most this many cycles without
/// retiring anything before the model declares itself wedged. Generous:
/// the worst legitimate stall is a page-walk-free chain of dependent D$
/// misses plus a divider, far under a thousand cycles.
constexpr std::uint64_t kDeadlockFuse = 1u << 17;
}  // namespace

OooCore::OooCore(const CoreConfig& cfg, cov::CoverageDB& db, sim::Platform plat)
    : cfg_(cfg),
      db_(db),
      plat_(plat),
      mem_(plat.ram_base, plat.ram_size),
      icache_(cfg.icache_sets, cfg.icache_ways, cfg.icache_line),
      dcache_(cfg.dcache_sets, cfg.dcache_ways, cfg.dcache_line),
      predictor_(cfg.btb_entries) {
  // Structure sizing floors: 32 architectural mappings plus at least two
  // rename targets, a pdst that fits the uint8 tags, and non-degenerate
  // ROB/SQ/width values.
  cfg_.phys_regs = std::clamp(cfg_.phys_regs, 34u, 256u);
  cfg_.rob_size = std::max(cfg_.rob_size, 4u);
  cfg_.sq_size = std::max(cfg_.sq_size, 2u);
  cfg_.fetch_width = std::clamp(cfg_.fetch_width, 1u, 8u);
  prf_.assign(cfg_.phys_regs, 0);
  prf_ready_.assign(cfg_.phys_regs, 1);
  rob_.assign(cfg_.rob_size, RobEntry{});
  sq_.assign(cfg_.sq_size, SqEntry{});
  register_points();
}

bool OooCore::rename_invariants_ok() const {
  std::vector<unsigned> refs(cfg_.phys_regs, 0);
  for (unsigned r = 0; r < 32; ++r) ++refs[rrat_[r]];
  for (const std::uint8_t p : free_) ++refs[p];
  for (std::size_t i = 0; i < rob_count_; ++i) {
    const RobEntry& e = rob_[(rob_head_ + i) % rob_.size()];
    if (e.has_rd) ++refs[e.pdst];
  }
  std::size_t total = 0;
  for (const unsigned n : refs) {
    if (n > 1) return false;  // double-owned physical register
    total += n;
  }
  if (total != cfg_.phys_regs) return false;  // leaked physical register
  for (unsigned r = 0; r < 32; ++r) {
    std::uint8_t expect = rrat_[r];
    for (std::size_t i = 0; i < rob_count_; ++i) {
      const RobEntry& e = rob_[(rob_head_ + i) % rob_.size()];
      if (e.has_rd && e.d.rd == r) expect = e.pdst;
    }
    if (rat_[r] != expect) return false;
  }
  return true;
}

void OooCore::register_points() {
  p_rename_alloc_ = db_.register_cond("ooo.rename.alloc");
  p_rename_stall_freelist_ = db_.register_cond("ooo.rename.stall_freelist");
  p_rename_src_inflight_ = db_.register_cond("ooo.rename.src_inflight");
  p_rob_full_ = db_.register_cond("ooo.rob.full");
  p_rob_commit2_ = db_.register_cond("ooo.rob.commit2");
  p_rob_head_wait_ = db_.register_cond("ooo.rob.head_wait");
  p_lsu_fwd_ = db_.register_cond("ooo.lsu.fwd");
  p_lsu_alias_ = db_.register_cond("ooo.lsu.alias");
  p_lsu_sq_full_ = db_.register_cond("ooo.lsu.sq_full");
  p_lsu_wait_store_ = db_.register_cond("ooo.lsu.wait_store");
  p_lsu_drain_ = db_.register_cond("ooo.lsu.drain");
  p_squash_branch_ = db_.register_cond("ooo.squash.branch");
  p_squash_inflight_load_ = db_.register_cond("ooo.squash.inflight_load");
  p_squash_store_ = db_.register_cond("ooo.squash.store");
  p_squash_trap_ = db_.register_cond("ooo.squash.trap");
  p_squash_selfmod_ = db_.register_cond("ooo.squash.selfmod");
}

void OooCore::reset(std::span<const std::uint32_t> program) {
  mem_.clear();
  mem_.load_words(plat_.ram_base, program);
  const auto init = sim::initial_regs(plat_);
  std::fill(prf_.begin(), prf_.end(), 0);
  std::fill(prf_ready_.begin(), prf_ready_.end(), 1);
  for (unsigned r = 0; r < 32; ++r) {
    rat_[r] = static_cast<std::uint8_t>(r);
    rrat_[r] = static_cast<std::uint8_t>(r);
    prf_[r] = init[r];
  }
  free_.clear();
  for (unsigned p = cfg_.phys_regs; p-- > 32;) {
    free_.push_back(static_cast<std::uint8_t>(p));
  }
  rob_head_ = rob_count_ = 0;
  sq_head_ = sq_count_ = 0;
  inflight_.clear();
  next_seq_ = 1;
  pc_ = plat_.ram_base;
  fetch_pc_ = plat_.ram_base;
  priv_ = Priv::kMachine;
  csrs_ = CsrFile{};
  csrs_.mtvec = plat_.ram_base;
  clint_.reset();
  reservation_.reset();
  icache_.flush();
  dcache_.flush();
  predictor_.flush();
  predecode_.flush();
  flush_tlb();
  cycles_ = 0;
  last_commit_cycle_ = 0;
  last_ctrl_pack_ = 0;
  stall_serial_ = stall_jalr_ = stall_marker_ = false;
  trace_.clear();
  if (sink_ == nullptr) trace_.reserve(plat_.max_steps);
  stopped_ = false;
  stop_reason_ = sim::StopReason::kStepLimit;
  steps_ = 0;
}

sim::RunResult OooCore::run() {
  while (!stopped_) {
    // Both fallbacks only flip while the pipeline is drained (the CLINT
    // flag is per-run; satp/priv changes execute serially at an empty ROB
    // head), so this check never strands speculative state.
    if (plat_.clint_enabled || translation_active()) {
      serial_step();
      // Keep the front end anchored: if this step dropped back to Bare
      // translation (trap to M), the next iteration resumes pipelined
      // fetch and must start at the committed pc, not a stale fetch_pc_.
      fetch_pc_ = pc_;
    } else {
      cycle_once();
    }
  }
  if (bbv_ != nullptr) bbv_->on_stop();
  sim::RunResult r;
  r.trace = trace_;
  r.stop = stop_reason_;
  r.steps = steps_;
  r.final_pc = pc_;
  return r;
}

// ---------------------------------------------------------------------------
// OOO pipeline
// ---------------------------------------------------------------------------

void OooCore::cycle_once() {
  ++cycles_;
  do_complete();
  do_commit();
  if (stopped_) return;
  do_execute();
  do_fetch();
  if (rob_count_ > 0 && cycles_ - last_commit_cycle_ > kDeadlockFuse) {
    throw std::logic_error("OooCore: no commit in " +
                           std::to_string(kDeadlockFuse) + " cycles");
  }
}

std::uint8_t OooCore::alloc_preg() {
  const std::uint8_t p = free_.back();
  free_.pop_back();
  prf_ready_[p] = 0;
  return p;
}

void OooCore::push_entry(RobEntry e) {
  rob_[(rob_head_ + rob_count_) % rob_.size()] = e;
  ++rob_count_;
}

void OooCore::do_complete() {
  if (inflight_.empty()) return;
  // Retire latency-unit results oldest-first so a zombie that collides with
  // a re-issued producer loses deterministically.
  std::sort(inflight_.begin(), inflight_.end(),
            [](const Inflight& a, const Inflight& b) { return a.seq < b.seq; });
  std::size_t kept = 0;
  for (std::size_t i = 0; i < inflight_.size(); ++i) {
    Inflight& f = inflight_[i];
    if (f.done_cycle > cycles_) {
      inflight_[kept++] = f;
      continue;
    }
    if (f.write_prf) {
      // For a zombie this lands in a register the squash already freed —
      // and possibly re-allocated: the injected missing-squash escape.
      prf_[f.pdst] = f.value;
      prf_ready_[f.pdst] = 1;
    }
    if (!f.zombie) {
      for (std::size_t j = 0; j < rob_count_; ++j) {
        RobEntry& e = rob_at(j);
        if (e.seq == f.seq) {
          e.completed = true;
          break;
        }
      }
    }
  }
  inflight_.resize(kept);
}

void OooCore::drain_store(RobEntry& e) {
  const SqEntry& s = sq_[e.sq_slot];
  if (cc(p_lsu_drain_, !s.drained)) {
    mem_.write(s.pa, s.data, s.size);
    predecode_.invalidate(s.pa, s.size);
    icache_.invalidate_addr(s.pa);
    dcache_.access(s.pa, true);
  }
}

void OooCore::do_commit() {
  unsigned committed = 0;
  while (committed < cfg_.fetch_width && rob_count_ > 0) {
    if (steps_ >= plat_.max_steps) {
      stopped_ = true;
      stop_reason_ = sim::StopReason::kStepLimit;
      return;
    }
    RobEntry& e = rob_at(0);
    if (e.kind == EKind::kEscape) {
      stopped_ = true;
      stop_reason_ = sim::StopReason::kPcEscape;
      return;
    }
    if (e.kind == EKind::kEnd) {
      stopped_ = true;
      stop_reason_ = sim::StopReason::kProgramEnd;
      return;
    }

    if (e.kind == EKind::kSerial) {
      // All older work has retired, so committed state is exactly the
      // architectural state: execute here, in order, like the golden model.
      CommitRecord rec;
      rec.pc = pc_;
      rec.instr = e.raw;
      rec.priv = priv_;
      arch_execute(e.d, rec);
      if (rec.exception == Exception::kNone) ++csrs_.instret;
      ++steps_;
      emit_record(rec, e.icache_hit);
      if (bbv_ != nullptr) {
        bbv_->on_commit(rec.pc, pc_, rec.exception != Exception::kNone);
      }
      rob_head_ = (rob_head_ + 1) % rob_.size();
      --rob_count_;
      stall_serial_ = false;
      fetch_pc_ = pc_;
      ++committed;
      if (stopped_) break;  // wfi retired
      continue;
    }

    if (cc(p_rob_head_wait_, !e.completed)) break;

    if (e.exc != Exception::kNone) {
      cc(p_squash_trap_, true);
      CommitRecord rec;
      rec.pc = e.pc;
      rec.instr = e.raw;
      rec.priv = priv_;
      raise(rec, e.exc, e.tval);
      ++steps_;
      emit_record(rec, e.icache_hit);
      if (bbv_ != nullptr) bbv_->on_commit(rec.pc, pc_, true);
      // Flush: younger entries first (exact rename undo), then this
      // entry's own speculative resources — it retired no architectural
      // write, so its mapping rolls back too.
      squash_younger(e.seq);
      if (e.kind == EKind::kStore && e.sq_slot >= 0) {
        sq_head_ = (sq_head_ + 1) % sq_.size();
        --sq_count_;
      }
      if (e.has_rd) {
        rat_[e.d.rd] = e.prev_pdst;
        free_.push_back(e.pdst);
      }
      rob_head_ = (rob_head_ + 1) % rob_.size();
      --rob_count_;
      recompute_stalls();
      fetch_pc_ = pc_;
      ++committed;
      break;
    }
    cc(p_squash_trap_, false);

    // Normal retirement.
    CommitRecord rec;
    rec.pc = e.pc;
    rec.instr = e.raw;
    rec.priv = priv_;
    const std::uint64_t seq = e.seq;
    const std::uint64_t st_addr = e.mem_addr;
    const unsigned st_size = e.mem_size;
    const bool is_store = e.kind == EKind::kStore;
    if (is_store) {
      drain_store(e);
      sq_head_ = (sq_head_ + 1) % sq_.size();
      --sq_count_;
    }
    if (e.has_rd) {
      rec.has_rd_write = true;
      rec.rd = e.d.rd;
      rec.rd_value = e.rd_value;
      free_.push_back(rrat_[e.d.rd]);
      rrat_[e.d.rd] = e.pdst;
    } else if (e.kind == EKind::kAlu || e.kind == EKind::kLoad ||
               e.kind == EKind::kJal || e.kind == EKind::kJalr) {
      rec.rd = e.d.rd;  // rd=x0 form: record mirrors write_rd's shape
    }
    if (e.has_mem) {
      rec.has_mem = true;
      rec.mem_is_store = is_store;
      rec.mem_addr = e.mem_addr;
      rec.mem_value = e.mem_value;
      rec.mem_size = e.mem_size;
    }
    ++csrs_.instret;
    ++steps_;
    pc_ = e.next_pc;
    emit_record(rec, e.icache_hit);
    if (bbv_ != nullptr) bbv_->on_commit(rec.pc, pc_, false);
    rob_head_ = (rob_head_ + 1) % rob_.size();
    --rob_count_;
    ++committed;

    // Self-modifying code: a retiring store that overlaps any in-flight
    // fetch has made those cached fetch bytes stale — refetch.
    if (is_store) {
      bool selfmod = false;
      for (std::size_t i = 0; i < rob_count_; ++i) {
        const RobEntry& y = rob_at(i);
        if (y.pc + 4 > st_addr && y.pc < st_addr + st_size) {
          selfmod = true;
          break;
        }
      }
      if (cc(p_squash_selfmod_, selfmod)) {
        squash_younger(seq);
        fetch_pc_ = pc_;
        break;
      }
    }
  }
  if (committed > 0) {
    last_commit_cycle_ = cycles_;
    cc(p_rob_commit2_, committed >= 2);
  }
}

void OooCore::do_execute() {
  unsigned issued = 0;
  const std::size_t n = rob_count_;
  for (std::size_t i = 0; i < n && i < rob_count_ && issued < cfg_.fetch_width;
       ++i) {
    RobEntry& e = rob_at(i);
    if (e.completed || e.issued) continue;
    if (e.kind == EKind::kSerial || e.kind == EKind::kEscape ||
        e.kind == EKind::kEnd) {
      continue;
    }
    if (e.use_rs1 && !prf_ready_[e.psrc1]) continue;
    if (e.use_rs2 && !prf_ready_[e.psrc2]) continue;
    const std::uint64_t seq = e.seq;
    if (execute_entry(e)) ++issued;
    // A mispredicted branch squashed everything younger: the scan indices
    // are stale, and nothing younger is left to issue anyway.
    if (rob_count_ == 0 || rob_at(rob_count_ - 1).seq <= seq) break;
  }
}

bool OooCore::execute_entry(RobEntry& e) {
  const std::uint64_t a = e.use_rs1 ? prf_[e.psrc1] : 0;
  const std::uint64_t b = e.use_rs2 ? prf_[e.psrc2] : 0;
  switch (e.kind) {
    case EKind::kAlu: {
      std::uint64_t v = 0;
      if (e.d.op == Opcode::kLui) {
        v = static_cast<std::uint64_t>(e.d.imm);
      } else if (e.d.op == Opcode::kAuipc) {
        v = e.pc + static_cast<std::uint64_t>(e.d.imm);
      } else {
        const bool imm_form = is_alu_imm_op(e.d.op);
        v = riscv::alu_eval(e.d.op, a,
                            imm_form ? static_cast<std::uint64_t>(e.d.imm) : b);
      }
      e.rd_value = v;
      e.next_pc = e.pc + 4;
      if (riscv::is_muldiv(e.d.op)) {
        // Long-latency unit: the PRF write lands at done_cycle.
        e.issued = true;
        Inflight f;
        f.seq = e.seq;
        f.done_cycle =
            cycles_ + (riscv::is_div(e.d.op) ? cfg_.div_latency : 3);
        f.write_prf = e.has_rd;
        f.pdst = e.pdst;
        f.value = v;
        inflight_.push_back(f);
      } else {
        if (e.has_rd) {
          prf_[e.pdst] = v;
          prf_ready_[e.pdst] = 1;
        }
        e.completed = true;
      }
      return true;
    }
    case EKind::kJal: {
      const std::uint64_t target = e.pc + static_cast<std::uint64_t>(e.d.imm);
      predictor_.update(e.pc, true, target);
      if ((target & 3) != 0) {
        e.exc = Exception::kInstrAddrMisaligned;
        e.tval = target;
        e.completed = true;
        return true;
      }
      e.rd_value = e.pc + 4;
      e.next_pc = target;
      if (e.has_rd) {
        prf_[e.pdst] = e.rd_value;
        prf_ready_[e.pdst] = 1;
      }
      e.completed = true;
      return true;
    }
    case EKind::kJalr: {
      const std::uint64_t target =
          (a + static_cast<std::uint64_t>(e.d.imm)) & ~1ull;
      predictor_.update(e.pc, true, target);
      if ((target & 3) != 0) {
        // Fetch stays stalled; the trap at commit redirects it.
        e.exc = Exception::kInstrAddrMisaligned;
        e.tval = target;
        e.completed = true;
        return true;
      }
      e.rd_value = e.pc + 4;
      e.next_pc = target;
      if (e.has_rd) {
        prf_[e.pdst] = e.rd_value;
        prf_ready_[e.pdst] = 1;
      }
      e.completed = true;
      fetch_pc_ = target;
      stall_jalr_ = false;
      return true;
    }
    case EKind::kBranch: {
      bool taken = false;
      switch (e.d.op) {
        case Opcode::kBeq: taken = a == b; break;
        case Opcode::kBne: taken = a != b; break;
        case Opcode::kBlt:
          taken = static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
          break;
        case Opcode::kBge:
          taken = static_cast<std::int64_t>(a) >= static_cast<std::int64_t>(b);
          break;
        case Opcode::kBltu: taken = a < b; break;
        default: taken = a >= b; break;
      }
      const std::uint64_t target = e.pc + static_cast<std::uint64_t>(e.d.imm);
      predictor_.update(e.pc, taken, target);
      if (taken && (target & 3) != 0) {
        e.exc = Exception::kInstrAddrMisaligned;
        e.tval = target;
        e.completed = true;
        return true;
      }
      e.next_pc = taken ? target : e.pc + 4;
      e.completed = true;
      if (cc(p_squash_branch_, e.next_pc != e.pred_next)) {
        squash_younger(e.seq);
        fetch_pc_ = e.next_pc;
      }
      return true;
    }
    case EKind::kLoad:
      // May refuse: older stores with unresolved addresses block issue.
      if (!prf_ready_[e.psrc1]) return false;
      for (std::size_t i = 0; i < sq_count_; ++i) {
        const SqEntry& s = sq_at(i);
        if (s.seq < e.seq && !s.resolved) {
          cc(p_lsu_wait_store_, true);
          return false;
        }
      }
      cc(p_lsu_wait_store_, false);
      execute_load(e);
      return true;
    case EKind::kStore:
      execute_store(e);
      return true;
    default:
      return false;
  }
}

void OooCore::execute_load(RobEntry& e) {
  const std::uint64_t addr =
      prf_[e.psrc1] + static_cast<std::uint64_t>(e.d.imm);
  const unsigned size = mem_size_of(e.d.op);
  if (addr % size != 0) {
    e.exc = Exception::kLoadAddrMisaligned;
    e.tval = addr;
    e.completed = true;
    return;
  }
  const std::uint64_t pa = addr;  // OOO mode runs with translation off (Bare)
  if (!mem_.in_ram(pa, size)) {
    e.exc = Exception::kLoadAccessFault;
    e.tval = addr;
    e.completed = true;
    return;
  }
  // Byte-wise store-to-load forwarding: per byte, the youngest older
  // resolved store covering it wins; uncovered bytes come from memory.
  std::uint64_t bits = 0;
  bool any_fwd = false, any_mem = false;
  for (unsigned j = 0; j < size; ++j) {
    const std::uint64_t ba = pa + j;
    bool fwd = false;
    std::uint8_t byte = 0;
    for (std::size_t i = sq_count_; i-- > 0;) {
      const SqEntry& s = sq_at(i);
      if (s.seq >= e.seq || !s.resolved) continue;
      if (ba >= s.pa && ba < s.pa + s.size) {
        byte = static_cast<std::uint8_t>(s.data >> (8 * (ba - s.pa)));
        fwd = true;
        break;
      }
    }
    if (!fwd) {
      byte = static_cast<std::uint8_t>(mem_.read(ba, 1));
      any_mem = true;
    } else {
      any_fwd = true;
    }
    bits |= static_cast<std::uint64_t>(byte) << (8 * j);
  }
  cc(p_lsu_fwd_, any_fwd);
  cc(p_lsu_alias_, any_fwd && any_mem);
  if (any_fwd && cfg_.bugs.ooo_broken_fwd) {
    // Bug site: the forwarding mux reads stale memory bytes instead of the
    // in-flight store data.
    bits = mem_.read(pa, size);
  }
  std::uint64_t value = bits;
  switch (e.d.op) {
    case Opcode::kLb:
      value = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(static_cast<std::int8_t>(bits)));
      break;
    case Opcode::kLh:
      value = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(static_cast<std::int16_t>(bits)));
      break;
    case Opcode::kLw: value = sext32(bits); break;
    default: break;
  }
  e.has_mem = true;
  e.mem_addr = addr;
  e.mem_value = bits;
  e.mem_size = static_cast<std::uint8_t>(size);
  e.rd_value = value;
  e.next_pc = e.pc + 4;
  const CacheAccess dacc = dcache_.access(pa, false);
  e.issued = true;
  Inflight f;
  f.seq = e.seq;
  f.done_cycle = cycles_ + 2 + (dacc.hit ? 0 : cfg_.miss_penalty);
  f.write_prf = e.has_rd;
  f.pdst = e.pdst;
  f.value = value;
  inflight_.push_back(f);
}

void OooCore::execute_store(RobEntry& e) {
  const std::uint64_t addr =
      prf_[e.psrc1] + static_cast<std::uint64_t>(e.d.imm);
  const unsigned size = mem_size_of(e.d.op);
  e.next_pc = e.pc + 4;
  if (addr % size != 0) {
    e.exc = Exception::kStoreAddrMisaligned;
    e.tval = addr;
    e.completed = true;
    return;
  }
  const std::uint64_t pa = addr;
  if (!mem_.in_ram(pa, size)) {
    e.exc = Exception::kStoreAccessFault;
    e.tval = addr;
    e.completed = true;
    return;
  }
  const std::uint64_t b = prf_[e.psrc2];
  const std::uint64_t bits = size == 8 ? b : (b & ((1ull << (8 * size)) - 1));
  SqEntry& s = sq_[e.sq_slot];
  s.pa = pa;
  s.size = size;
  s.data = bits;
  s.resolved = true;
  s.drained = false;
  if (cfg_.bugs.ooo_early_store_drain) {
    // Bug site: the queue writes memory at execute. A later squash cannot
    // take the bytes back.
    mem_.write(pa, bits, size);
    predecode_.invalidate(pa, size);
    icache_.invalidate_addr(pa);
    dcache_.access(pa, true);
    s.drained = true;
  }
  e.has_mem = true;
  e.mem_addr = addr;
  e.mem_value = bits;
  e.mem_size = static_cast<std::uint8_t>(size);
  e.completed = true;
}

void OooCore::squash_younger(std::uint64_t seq) {
  while (rob_count_ > 0) {
    RobEntry& e = rob_at(rob_count_ - 1);
    if (e.seq <= seq) break;
    if (e.kind == EKind::kStore && e.sq_slot >= 0) {
      cc(p_squash_store_, sq_[e.sq_slot].resolved);
      sq_[e.sq_slot] = SqEntry{};
      --sq_count_;  // this entry is the SQ tail: allocation is in seq order
    }
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      if (it->seq == e.seq && !it->zombie) {
        const bool load_inflight = e.kind == EKind::kLoad;
        cc(p_squash_inflight_load_, load_inflight);
        if (load_inflight && it->write_prf && cfg_.bugs.ooo_missing_squash) {
          // Bug site: the issued load is not cancelled. Its completion
          // will write a register the undo below hands back to the free
          // list — and that the very next rename is first in line to reuse.
          it->zombie = true;
          ++it;
        } else {
          it = inflight_.erase(it);
        }
      } else {
        ++it;
      }
    }
    if (e.has_rd) {
      // Exact LIFO inverse of rename: youngest-first restore re-stacks the
      // free list in its pre-rename order.
      rat_[e.d.rd] = e.prev_pdst;
      free_.push_back(e.pdst);
    }
    --rob_count_;
  }
  recompute_stalls();
}

void OooCore::recompute_stalls() {
  stall_serial_ = stall_jalr_ = stall_marker_ = false;
  for (std::size_t i = 0; i < rob_count_; ++i) {
    const RobEntry& e = rob_at(i);
    if (e.kind == EKind::kSerial) stall_serial_ = true;
    if (e.kind == EKind::kJalr &&
        (!e.completed || e.exc != Exception::kNone)) {
      stall_jalr_ = true;
    }
    if (e.kind == EKind::kEscape || e.kind == EKind::kEnd) {
      stall_marker_ = true;
    }
  }
}

void OooCore::do_fetch() {
  // A serial op that just committed may have turned Sv39 on (satp write,
  // mret/sret into S/U): stop fetching — the run loop flips to the serial
  // path next iteration.
  if (translation_active()) return;
  unsigned fetched = 0;
  while (fetched < cfg_.fetch_width) {
    if (stall_serial_ || stall_jalr_ || stall_marker_) break;
    if ((fetch_pc_ & 3) != 0) break;  // predicted misaligned target
    if (cc(p_rob_full_, rob_count_ == rob_.size())) break;

    if (!mem_.in_ram(fetch_pc_, 4)) {
      RobEntry m;
      m.seq = next_seq_++;
      m.kind = EKind::kEscape;
      m.pc = fetch_pc_;
      m.completed = true;
      push_entry(m);
      stall_marker_ = true;
      break;
    }
    CacheAccess iacc;
    const std::uint32_t raw = icache_.fetch(fetch_pc_, mem_, iacc);
    if (raw == 0) {
      RobEntry m;
      m.seq = next_seq_++;
      m.kind = EKind::kEnd;
      m.pc = fetch_pc_;
      m.completed = true;
      push_entry(m);
      stall_marker_ = true;
      break;
    }
    const Decoded& d = predecode_.lookup(fetch_pc_, raw);

    RobEntry e;
    e.seq = next_seq_;
    e.d = d;
    e.pc = fetch_pc_;
    e.raw = raw;
    e.icache_hit = iacc.hit;

    if (!d.valid()) {
      e.kind = EKind::kSerial;
    } else if (d.op == Opcode::kLui || d.op == Opcode::kAuipc ||
               is_alu_imm_op(d.op) || is_alu_reg_op(d.op) ||
               riscv::is_muldiv(d.op)) {
      e.kind = EKind::kAlu;
      e.use_rs1 = d.op != Opcode::kLui && d.op != Opcode::kAuipc;
      e.use_rs2 = is_alu_reg_op(d.op) || riscv::is_muldiv(d.op);
    } else if (is_load_op(d.op)) {
      e.kind = EKind::kLoad;
      e.use_rs1 = true;
    } else if (is_store_op(d.op)) {
      e.kind = EKind::kStore;
      e.use_rs1 = e.use_rs2 = true;
    } else if (is_branch_op(d.op)) {
      e.kind = EKind::kBranch;
      e.use_rs1 = e.use_rs2 = true;
    } else if (d.op == Opcode::kJal) {
      e.kind = EKind::kJal;
    } else if (d.op == Opcode::kJalr) {
      e.kind = EKind::kJalr;
      e.use_rs1 = true;
    } else {
      e.kind = EKind::kSerial;
    }

    if (e.kind == EKind::kSerial) {
      // Serializing op: dispatch it alone and stall fetch — it executes
      // architecturally once it is the only thing left in the machine.
      ++next_seq_;
      push_entry(e);
      stall_serial_ = true;
      break;
    }

    // Structural resources (checked before any rename state moves).
    if (e.kind == EKind::kStore &&
        cc(p_lsu_sq_full_, sq_count_ == sq_.size())) {
      break;  // retry next cycle
    }
    const bool wants_rd =
        d.rd != 0 && (e.kind == EKind::kAlu || e.kind == EKind::kLoad ||
                      e.kind == EKind::kJal || e.kind == EKind::kJalr);
    if (wants_rd && cc(p_rename_stall_freelist_, free_.empty())) {
      break;  // retry next cycle
    }

    // Rename.
    e.psrc1 = rat_[d.rs1 & 31];
    e.psrc2 = rat_[d.rs2 & 31];
    cc(p_rename_src_inflight_, (e.use_rs1 && !prf_ready_[e.psrc1]) ||
                                   (e.use_rs2 && !prf_ready_[e.psrc2]));
    if (cc(p_rename_alloc_, wants_rd)) {
      e.prev_pdst = rat_[d.rd];
      e.pdst = alloc_preg();
      rat_[d.rd] = e.pdst;
      e.has_rd = true;
    }
    if (e.kind == EKind::kStore) {
      e.sq_slot = static_cast<int>((sq_head_ + sq_count_) % sq_.size());
      sq_[e.sq_slot] = SqEntry{};
      sq_[e.sq_slot].seq = e.seq;
      ++sq_count_;
    }

    // Next fetch pc: jal targets resolve at decode, branches follow the
    // predictor, jalr stalls until execute.
    if (e.kind == EKind::kJal) {
      e.pred_next = e.pc + static_cast<std::uint64_t>(d.imm);
      fetch_pc_ = e.pred_next;
    } else if (e.kind == EKind::kBranch) {
      const Predictor::Prediction pred = predictor_.predict(e.pc);
      e.pred_next = (pred.btb_hit && pred.predict_taken) ? pred.target
                                                         : e.pc + 4;
      fetch_pc_ = e.pred_next;
    } else if (e.kind == EKind::kJalr) {
      stall_jalr_ = true;
    } else {
      fetch_pc_ = e.pc + 4;
    }

    ++next_seq_;
    push_entry(e);
    ++fetched;
    if (e.kind == EKind::kJalr) break;
    if (!iacc.hit) break;  // refill port: one fetch this cycle
  }
}

void OooCore::emit_record(const CommitRecord& rec, bool icache_hit) {
  // Same control-state packing as the in-order backend: decoded opcode +
  // the commit-stage flags, XOR-chained with the previous state for the
  // sequence-sensitive half of the DifuzzRTL metric.
  const riscv::Decoded d = riscv::decode(rec.instr);
  std::uint64_t pack = 0;
  pack |= d.valid() ? static_cast<std::uint64_t>(d.op) : 0x7f;
  pack |= static_cast<std::uint64_t>(icache_hit) << 7;
  pack |= static_cast<std::uint64_t>(rec.has_mem) << 8;
  pack |= static_cast<std::uint64_t>(rec.exception != Exception::kNone) << 9;
  pack |= static_cast<std::uint64_t>(static_cast<unsigned>(priv_)) << 10;
  pack |= static_cast<std::uint64_t>(rec.has_rd_write) << 12;
  ctrl_cov_.observe(pack);
  ctrl_cov_.observe(pack ^ (last_ctrl_pack_ << 13));
  last_ctrl_pack_ = pack;
  if (sink_ != nullptr) {
    sink_->on_commit(rec);
  } else {
    trace_.push_back(rec);
  }
}

// ---------------------------------------------------------------------------
// Serial (architectural) path — transcribed from the in-order model's
// trap/CSR/MMU semantics so the privileged surface is bit-exact against the
// golden model. Legacy (in-order) bug injections are deliberately absent.
// ---------------------------------------------------------------------------

void OooCore::serial_step() {
  if (!inflight_.empty()) inflight_.clear();  // drop stragglers at the seam
  if (steps_ >= plat_.max_steps) {
    stopped_ = true;
    stop_reason_ = sim::StopReason::kStepLimit;
    return;
  }
  std::uint64_t fetch_pa = pc_;
  if (translation_active()) {
    if (const Exception pf = translate(pc_, MemAccess::kFetch, fetch_pa);
        pf != Exception::kNone) {
      // Fetch page fault: nothing was fetched; the record carries instr=0.
      ++steps_;
      ++cycles_;
      CommitRecord rec;
      rec.pc = pc_;
      rec.instr = 0;
      rec.priv = priv_;
      raise(rec, pf, pc_);
      std::uint64_t pack = 0x7f;
      pack |= 1ull << 9;  // trapped
      pack |= static_cast<std::uint64_t>(static_cast<unsigned>(priv_)) << 10;
      ctrl_cov_.observe(pack);
      ctrl_cov_.observe(pack ^ (last_ctrl_pack_ << 13));
      last_ctrl_pack_ = pack;
      if (sink_ != nullptr) {
        sink_->on_commit(rec);
      } else {
        trace_.push_back(rec);
      }
      if (bbv_ != nullptr) bbv_->on_commit(rec.pc, pc_, true);
      return;
    }
  }
  if (!mem_.in_ram(fetch_pa, 4)) {
    stopped_ = true;
    stop_reason_ = sim::StopReason::kPcEscape;
    return;
  }
  CacheAccess iacc;
  const std::uint32_t raw = icache_.fetch(fetch_pa, mem_, iacc);
  if (!iacc.hit) cycles_ += cfg_.miss_penalty;
  if (raw == 0) {
    stopped_ = true;
    stop_reason_ = sim::StopReason::kProgramEnd;
    return;
  }
  ++steps_;
  ++cycles_;
  if (plat_.clint_enabled) service_interrupts();

  CommitRecord rec;
  rec.pc = pc_;
  rec.instr = raw;
  rec.priv = priv_;
  const Decoded& d = predecode_.lookup(pc_, raw);
  arch_execute(d, rec);
  if (rec.exception == Exception::kNone) ++csrs_.instret;
  emit_record(rec, iacc.hit);
  if (bbv_ != nullptr) {
    bbv_->on_commit(rec.pc, pc_, rec.exception != Exception::kNone);
  }
}

void OooCore::arch_write_rd(CommitRecord& rec, std::uint8_t rd,
                            std::uint64_t value) {
  if (rd != 0) prf_[rrat_[rd]] = value;
  rec.has_rd_write = rd != 0;
  rec.rd = rd;
  rec.rd_value = rd != 0 ? value : 0;
}

void OooCore::arch_execute(const Decoded& d, CommitRecord& rec) {
  const std::uint64_t next_pc = pc_ + 4;
  if (!d.valid()) {
    raise(rec, Exception::kIllegalInstruction, d.raw);
    return;
  }
  const std::uint64_t a = areg(d.rs1);
  const std::uint64_t b = areg(d.rs2);

  switch (d.op) {
    case Opcode::kLui:
      arch_write_rd(rec, d.rd, static_cast<std::uint64_t>(d.imm));
      break;
    case Opcode::kAuipc:
      arch_write_rd(rec, d.rd, pc_ + static_cast<std::uint64_t>(d.imm));
      break;

    case Opcode::kJal: case Opcode::kJalr: {
      std::uint64_t target;
      if (d.op == Opcode::kJal) {
        target = pc_ + static_cast<std::uint64_t>(d.imm);
      } else {
        target = (a + static_cast<std::uint64_t>(d.imm)) & ~1ull;
      }
      if (predictor_.update(pc_, true, target)) {
        cycles_ += cfg_.mispredict_penalty;
      }
      if ((target & 3) != 0) {
        raise(rec, Exception::kInstrAddrMisaligned, target);
        return;
      }
      arch_write_rd(rec, d.rd, next_pc);
      pc_ = target;
      return;
    }

    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu: {
      bool taken = false;
      switch (d.op) {
        case Opcode::kBeq: taken = a == b; break;
        case Opcode::kBne: taken = a != b; break;
        case Opcode::kBlt:
          taken = static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
          break;
        case Opcode::kBge:
          taken = static_cast<std::int64_t>(a) >= static_cast<std::int64_t>(b);
          break;
        case Opcode::kBltu: taken = a < b; break;
        default: taken = a >= b; break;
      }
      const std::uint64_t target = pc_ + static_cast<std::uint64_t>(d.imm);
      if (predictor_.update(pc_, taken, target)) {
        cycles_ += cfg_.mispredict_penalty;
      }
      if (taken) {
        if ((target & 3) != 0) {
          raise(rec, Exception::kInstrAddrMisaligned, target);
          return;
        }
        pc_ = target;
        return;
      }
      break;
    }

    case Opcode::kLb: case Opcode::kLh: case Opcode::kLw: case Opcode::kLd:
    case Opcode::kLbu: case Opcode::kLhu: case Opcode::kLwu:
    case Opcode::kSb: case Opcode::kSh: case Opcode::kSw: case Opcode::kSd: {
      const bool is_store = is_store_op(d.op);
      const std::uint64_t addr = a + static_cast<std::uint64_t>(d.imm);
      const unsigned size = mem_size_of(d.op);
      const bool misaligned = addr % size != 0;
      const bool xlate = translation_active();
      std::uint64_t pa = addr;
      Exception pgf = Exception::kNone;
      if (xlate && !misaligned) {
        pgf = translate(addr, is_store ? MemAccess::kStore : MemAccess::kLoad,
                        pa);
      }
      const bool is_clint =
          pgf == Exception::kNone && clint_.contains(plat_, pa);
      const bool fault =
          pgf == Exception::kNone && !mem_.in_ram(pa, size) && !is_clint;
      // Spec exception priority: misaligned outranks translation outranks
      // the PMA range check.
      if (misaligned) {
        raise(rec, is_store ? Exception::kStoreAddrMisaligned
                            : Exception::kLoadAddrMisaligned, addr);
        return;
      }
      if (pgf != Exception::kNone) {
        raise(rec, pgf, addr);
        return;
      }
      if (fault) {
        raise(rec, is_store ? Exception::kStoreAccessFault
                            : Exception::kLoadAccessFault, addr);
        return;
      }
      if (is_clint) {
        // MMIO bypasses the D$ (the CLINT sits on the uncached port).
        if (is_store) {
          const std::uint64_t bits =
              size == 8 ? b : (b & ((1ull << (8 * size)) - 1));
          if (!clint_.write(plat_, pa, size, bits)) {
            raise(rec, Exception::kStoreAccessFault, addr);
            return;
          }
          csrs_.mip =
              (csrs_.mip & ~sim::mip::kMachineBits) | clint_.pending_mip();
          rec.has_mem = true;
          rec.mem_is_store = true;
          rec.mem_addr = addr;
          rec.mem_value = bits;
          rec.mem_size = static_cast<std::uint8_t>(size);
        } else {
          std::uint64_t mmio = 0;
          if (!clint_.read(plat_, pa, size, mmio)) {
            raise(rec, Exception::kLoadAccessFault, addr);
            return;
          }
          rec.has_mem = true;
          rec.mem_is_store = false;
          rec.mem_addr = addr;
          rec.mem_value = mmio;
          rec.mem_size = static_cast<std::uint8_t>(size);
          arch_write_rd(rec, d.rd, d.op == Opcode::kLw ? sext32(mmio) : mmio);
        }
        break;
      }
      const CacheAccess dacc = dcache_.access(pa, is_store);
      if (!dacc.hit) cycles_ += cfg_.miss_penalty;
      if (is_store) {
        const std::uint64_t bits =
            size == 8 ? b : (b & ((1ull << (8 * size)) - 1));
        mem_.write(pa, bits, size);
        predecode_.invalidate(pa, size);
        icache_.invalidate_addr(pa);
        rec.has_mem = true;
        rec.mem_is_store = true;
        rec.mem_addr = addr;
        rec.mem_value = bits;
        rec.mem_size = static_cast<std::uint8_t>(size);
      } else {
        const std::uint64_t bits = mem_.read(pa, size);
        std::uint64_t value = bits;
        switch (d.op) {
          case Opcode::kLb:
            value = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(static_cast<std::int8_t>(bits)));
            break;
          case Opcode::kLh:
            value = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(static_cast<std::int16_t>(bits)));
            break;
          case Opcode::kLw: value = sext32(bits); break;
          default: break;
        }
        rec.has_mem = true;
        rec.mem_is_store = false;
        rec.mem_addr = addr;
        rec.mem_value = bits;
        rec.mem_size = static_cast<std::uint8_t>(size);
        arch_write_rd(rec, d.rd, value);
      }
      break;
    }

    case Opcode::kFence:
      break;
    case Opcode::kFenceI:
      icache_.flush();
      predecode_.flush();
      cycles_ += cfg_.miss_penalty / 2;
      break;

    case Opcode::kEcall:
      raise(rec,
            priv_ == Priv::kMachine ? Exception::kEcallFromM
            : priv_ == Priv::kSupervisor ? Exception::kEcallFromS
                                         : Exception::kEcallFromU,
            0);
      return;
    case Opcode::kEbreak:
      raise(rec, Exception::kBreakpoint, pc_);
      return;
    case Opcode::kWfi:
      if (priv_ == Priv::kUser) {
        raise(rec, Exception::kIllegalInstruction, d.raw);
        return;
      }
      stopped_ = true;
      stop_reason_ = sim::StopReason::kWfi;
      break;

    case Opcode::kSfenceVma:
      if (priv_ == Priv::kUser) {
        raise(rec, Exception::kIllegalInstruction, d.raw);
        return;
      }
      flush_tlb();
      cycles_ += cfg_.mispredict_penalty;
      break;

    case Opcode::kMret: {
      namespace ms = sim::mstatus;
      if (priv_ != Priv::kMachine) {
        raise(rec, Exception::kIllegalInstruction, d.raw);
        return;
      }
      const auto mpp = static_cast<Priv>(
          (csrs_.mstatus & ms::kMppMask) >> ms::kMppShift);
      const bool mpie = (csrs_.mstatus & ms::kMpie) != 0;
      csrs_.mstatus &= ~(ms::kMie | ms::kMpie | ms::kMppMask);
      if (mpie) csrs_.mstatus |= ms::kMie;
      csrs_.mstatus |= ms::kMpie;
      priv_ = mpp;
      pc_ = csrs_.mepc;
      cycles_ += cfg_.mispredict_penalty;
      return;
    }
    case Opcode::kSret: {
      namespace ms = sim::mstatus;
      if (priv_ == Priv::kUser) {
        raise(rec, Exception::kIllegalInstruction, d.raw);
        return;
      }
      const bool spp = (csrs_.mstatus & ms::kSpp) != 0;
      const bool spie = (csrs_.mstatus & ms::kSpie) != 0;
      csrs_.mstatus &= ~(ms::kSie | ms::kSpie | ms::kSpp);
      if (spie) csrs_.mstatus |= ms::kSie;
      csrs_.mstatus |= ms::kSpie;
      priv_ = spp ? Priv::kSupervisor : Priv::kUser;
      pc_ = csrs_.sepc;
      cycles_ += cfg_.mispredict_penalty;
      return;
    }

    case Opcode::kCsrrw: case Opcode::kCsrrs: case Opcode::kCsrrc:
    case Opcode::kCsrrwi: case Opcode::kCsrrsi: case Opcode::kCsrrci: {
      const bool imm_form = d.op == Opcode::kCsrrwi ||
                            d.op == Opcode::kCsrrsi || d.op == Opcode::kCsrrci;
      const std::uint64_t operand = imm_form ? d.rs1 : a;
      const bool is_write_op =
          d.op == Opcode::kCsrrw || d.op == Opcode::kCsrrwi;
      const bool do_write = is_write_op || d.rs1 != 0;
      std::uint64_t old = 0;
      if (!csr_read(d.csr, old, priv_)) {
        raise(rec, Exception::kIllegalInstruction, d.raw);
        return;
      }
      if (do_write) {
        std::uint64_t next = operand;
        if (d.op == Opcode::kCsrrs || d.op == Opcode::kCsrrsi) {
          next = old | operand;
        }
        if (d.op == Opcode::kCsrrc || d.op == Opcode::kCsrrci) {
          next = old & ~operand;
        }
        if (!csr_write(d.csr, next)) {
          raise(rec, Exception::kIllegalInstruction, d.raw);
          return;
        }
      }
      arch_write_rd(rec, d.rd, old);
      break;
    }

    case Opcode::kLrW: case Opcode::kLrD: {
      const unsigned size = d.op == Opcode::kLrW ? 4 : 8;
      const bool misaligned = a % size != 0;
      const bool xlate = translation_active();
      std::uint64_t pa = a;
      Exception pgf = Exception::kNone;
      if (xlate && !misaligned) pgf = translate(a, MemAccess::kLoad, pa);
      const bool fault = pgf == Exception::kNone && !mem_.in_ram(pa, size);
      if (misaligned || fault || pgf != Exception::kNone) {
        raise(rec, misaligned                ? Exception::kLoadAddrMisaligned
                   : pgf != Exception::kNone ? pgf
                                             : Exception::kLoadAccessFault,
              a);
        return;
      }
      const CacheAccess dacc = dcache_.access(pa, false);
      if (!dacc.hit) cycles_ += cfg_.miss_penalty;
      const std::uint64_t bits = mem_.read(pa, size);
      reservation_ = pa;  // held on the physical address
      rec.has_mem = true;
      rec.mem_is_store = false;
      rec.mem_addr = a;
      rec.mem_value = bits;
      rec.mem_size = static_cast<std::uint8_t>(size);
      arch_write_rd(rec, d.rd, size == 4 ? sext32(bits) : bits);
      break;
    }
    case Opcode::kScW: case Opcode::kScD: {
      const unsigned size = d.op == Opcode::kScW ? 4 : 8;
      const bool misaligned = a % size != 0;
      const bool xlate = translation_active();
      std::uint64_t pa = a;
      Exception pgf = Exception::kNone;
      if (xlate && !misaligned) pgf = translate(a, MemAccess::kStore, pa);
      const bool fault = pgf == Exception::kNone && !mem_.in_ram(pa, size);
      if (misaligned || fault || pgf != Exception::kNone) {
        raise(rec, misaligned                ? Exception::kStoreAddrMisaligned
                   : pgf != Exception::kNone ? pgf
                                             : Exception::kStoreAccessFault,
              a);
        return;
      }
      const bool ok = reservation_ && *reservation_ == pa;
      if (ok) {
        const CacheAccess dacc = dcache_.access(pa, true);
        if (!dacc.hit) cycles_ += cfg_.miss_penalty;
        const std::uint64_t bits = size == 8 ? b : (b & 0xffffffffull);
        mem_.write(pa, bits, size);
        predecode_.invalidate(pa, size);
        icache_.invalidate_addr(pa);
        rec.has_mem = true;
        rec.mem_is_store = true;
        rec.mem_addr = a;
        rec.mem_value = bits;
        rec.mem_size = static_cast<std::uint8_t>(size);
        arch_write_rd(rec, d.rd, 0);
      } else {
        arch_write_rd(rec, d.rd, 1);
      }
      reservation_.reset();
      break;
    }

    default: {
      if (is_amo_op(d.op)) {
        const unsigned size =
            (riscv::spec(d.op).match & 0x7000u) == 0x2000u ? 4 : 8;
        const bool misaligned = a % size != 0;
        const bool xlate = translation_active();
        std::uint64_t pa = a;
        Exception pgf = Exception::kNone;
        if (xlate && !misaligned) {
          // AMOs translate as stores: the read-modify-write needs W (+D).
          pgf = translate(a, MemAccess::kStore, pa);
        }
        const bool fault = pgf == Exception::kNone && !mem_.in_ram(pa, size);
        if (misaligned || fault || pgf != Exception::kNone) {
          raise(rec,
                misaligned                ? Exception::kStoreAddrMisaligned
                : pgf != Exception::kNone ? pgf
                                          : Exception::kStoreAccessFault,
                a);
          return;
        }
        const CacheAccess dacc = dcache_.access(pa, true);
        if (!dacc.hit) cycles_ += cfg_.miss_penalty;
        const std::uint64_t old_bits = mem_.read(pa, size);
        const std::uint64_t old_val = size == 4 ? sext32(old_bits) : old_bits;
        const std::uint64_t src = size == 4 ? sext32(b) : b;
        std::uint64_t result = 0;
        switch (d.op) {
          case Opcode::kAmoSwapW: case Opcode::kAmoSwapD: result = src; break;
          case Opcode::kAmoAddW: case Opcode::kAmoAddD:
            result = old_val + src;
            break;
          case Opcode::kAmoXorW: case Opcode::kAmoXorD:
            result = old_val ^ src;
            break;
          case Opcode::kAmoAndW: case Opcode::kAmoAndD:
            result = old_val & src;
            break;
          case Opcode::kAmoOrW: case Opcode::kAmoOrD:
            result = old_val | src;
            break;
          case Opcode::kAmoMinW: case Opcode::kAmoMinD:
            result = static_cast<std::int64_t>(old_val) <
                             static_cast<std::int64_t>(src)
                         ? old_val
                         : src;
            break;
          case Opcode::kAmoMaxW: case Opcode::kAmoMaxD:
            result = static_cast<std::int64_t>(old_val) >
                             static_cast<std::int64_t>(src)
                         ? old_val
                         : src;
            break;
          case Opcode::kAmoMinuW:
            result = static_cast<std::uint32_t>(old_bits) <
                             static_cast<std::uint32_t>(b)
                         ? old_bits
                         : b;
            break;
          case Opcode::kAmoMinuD: result = old_bits < b ? old_bits : b; break;
          case Opcode::kAmoMaxuW:
            result = static_cast<std::uint32_t>(old_bits) >
                             static_cast<std::uint32_t>(b)
                         ? old_bits
                         : b;
            break;
          case Opcode::kAmoMaxuD: result = old_bits > b ? old_bits : b; break;
          default: break;
        }
        const std::uint64_t store_bits =
            size == 8 ? result : (result & 0xffffffffull);
        mem_.write(pa, store_bits, size);
        predecode_.invalidate(pa, size);
        icache_.invalidate_addr(pa);
        rec.has_mem = true;
        rec.mem_is_store = true;
        rec.mem_addr = a;
        rec.mem_value = store_bits;
        rec.mem_size = static_cast<std::uint8_t>(size);
        arch_write_rd(rec, d.rd, old_val);
        break;
      }

      // ---- ALU / M-extension ops (shared arithmetic table) ----
      const bool imm_form = is_alu_imm_op(d.op);
      const std::uint64_t operand_b =
          imm_form ? static_cast<std::uint64_t>(d.imm) : b;
      const std::uint64_t result = riscv::alu_eval(d.op, a, operand_b);
      if (riscv::is_div(d.op)) cycles_ += cfg_.div_latency;
      arch_write_rd(rec, d.rd, result);
      break;
    }
  }
  pc_ = next_pc;
}

void OooCore::raise(CommitRecord& rec, Exception cause, std::uint64_t tval) {
  rec.exception = cause;
  rec.has_rd_write = false;
  rec.has_mem = false;
  namespace ms = sim::mstatus;
  // Delegation mux: a trap from below M whose medeleg bit is set vectors to
  // the S-mode trampoline.
  const bool deleg =
      priv_ != Priv::kMachine &&
      ((csrs_.medeleg >> static_cast<unsigned>(cause)) & 1) != 0;
  if (deleg) {
    csrs_.sepc = pc_;
    csrs_.scause = static_cast<std::uint64_t>(cause);
    csrs_.stval = tval;
    const bool sie = (csrs_.mstatus & ms::kSie) != 0;
    csrs_.mstatus &= ~(ms::kSie | ms::kSpie | ms::kSpp);
    if (sie) csrs_.mstatus |= ms::kSpie;
    if (priv_ == Priv::kSupervisor) csrs_.mstatus |= ms::kSpp;
    priv_ = Priv::kSupervisor;
    pc_ = csrs_.sepc + 4;  // S-mode magic trampoline (platform.h)
    cycles_ += cfg_.mispredict_penalty;
    return;
  }
  csrs_.mepc = pc_;
  csrs_.mcause = static_cast<std::uint64_t>(cause);
  csrs_.mtval = tval;
  const bool mie = (csrs_.mstatus & ms::kMie) != 0;
  csrs_.mstatus &= ~(ms::kMie | ms::kMpie | ms::kMppMask);
  if (mie) csrs_.mstatus |= ms::kMpie;
  csrs_.mstatus |= static_cast<std::uint64_t>(priv_) << ms::kMppShift;
  priv_ = Priv::kMachine;
  pc_ = csrs_.mepc + 4;  // magic trampoline (platform.h)
  cycles_ += cfg_.mispredict_penalty;  // redirect costs a flush
}

void OooCore::service_interrupts() {
  namespace ms = sim::mstatus;
  clint_.tick();
  csrs_.mip = (csrs_.mip & ~sim::mip::kMachineBits) | clint_.pending_mip();
  const std::uint64_t ready = csrs_.mie & csrs_.mip & sim::mip::kMachineBits;
  if (ready == 0) return;
  const bool enabled =
      priv_ != Priv::kMachine || (csrs_.mstatus & ms::kMie) != 0;
  if (!enabled) return;
  // Software interrupts outrank timer interrupts (privileged spec).
  const std::uint64_t cause = (ready & sim::mip::kMsip) != 0
                                  ? sim::mip::kCauseMsi
                                  : sim::mip::kCauseMti;
  csrs_.mepc = pc_;
  csrs_.mcause = sim::mip::kInterruptFlag | cause;
  csrs_.mtval = 0;
  const bool mie = (csrs_.mstatus & ms::kMie) != 0;
  csrs_.mstatus &= ~(ms::kMie | ms::kMpie | ms::kMppMask);
  if (mie) csrs_.mstatus |= ms::kMpie;
  csrs_.mstatus |= static_cast<std::uint64_t>(priv_) << ms::kMppShift;
  priv_ = Priv::kMachine;
  cycles_ += cfg_.mispredict_penalty;  // pipeline redirect
  // Magic trampoline: acknowledge at the device, resume at the interrupted
  // instruction (pc_ unchanged). See platform.h.
  clint_.clear_source(cause);
  csrs_.mip = (csrs_.mip & ~sim::mip::kMachineBits) | clint_.pending_mip();
}

bool OooCore::csr_read(std::uint16_t addr, std::uint64_t& value,
                       Priv view) const {
  namespace c = riscv::csr;
  if (static_cast<int>(view) < static_cast<int>(c::min_priv(addr))) {
    return false;
  }
  switch (addr) {
    case c::kMstatus: value = csrs_.mstatus; return true;
    case c::kMisa: value = sim::kMisaValue; return true;
    case c::kMedeleg: value = csrs_.medeleg; return true;
    case c::kMideleg: value = csrs_.mideleg; return true;
    case c::kMie: value = csrs_.mie; return true;
    case c::kMtvec: value = csrs_.mtvec; return true;
    case c::kMcounteren: value = csrs_.mcounteren; return true;
    case c::kMscratch: value = csrs_.mscratch; return true;
    case c::kMepc: value = csrs_.mepc; return true;
    case c::kMcause: value = csrs_.mcause; return true;
    case c::kMtval: value = csrs_.mtval; return true;
    case c::kMip: value = csrs_.mip; return true;
    case c::kMcycle: case c::kCycle: value = cycles_; return true;
    case c::kTime: value = cycles_ / 100; return true;
    case c::kMinstret: case c::kInstret: value = csrs_.instret; return true;
    case c::kMvendorid: case c::kMarchid: case c::kMimpid: case c::kMhartid:
      value = 0;
      return true;
    case c::kSstatus:
      value = csrs_.mstatus &
              (sim::mstatus::kSie | sim::mstatus::kSpie | sim::mstatus::kSpp |
               sim::mstatus::kSum | sim::mstatus::kMxr);
      return true;
    case c::kSie: value = csrs_.mie & 0x222; return true;
    case c::kSip: value = csrs_.mip & 0x222; return true;
    case c::kStvec: value = csrs_.stvec; return true;
    case c::kScounteren: value = csrs_.scounteren; return true;
    case c::kSscratch: value = csrs_.sscratch; return true;
    case c::kSepc: value = csrs_.sepc; return true;
    case c::kScause: value = csrs_.scause; return true;
    case c::kStval: value = csrs_.stval; return true;
    case c::kSatp: value = csrs_.satp; return true;
    default: return false;
  }
}

bool OooCore::csr_write(std::uint16_t addr, std::uint64_t value) {
  namespace c = riscv::csr;
  namespace ms = sim::mstatus;
  if (static_cast<int>(priv_) < static_cast<int>(c::min_priv(addr))) {
    return false;
  }
  if (c::is_read_only(addr)) return false;
  constexpr std::uint64_t kStatusMask = ms::kSie | ms::kMie | ms::kSpie |
                                        ms::kMpie | ms::kSpp | ms::kMppMask |
                                        ms::kSum | ms::kMxr;
  switch (addr) {
    case c::kMstatus: {
      std::uint64_t v = value & kStatusMask;
      if (((v & ms::kMppMask) >> ms::kMppShift) == 2) v &= ~ms::kMppMask;
      csrs_.mstatus = v;
      return true;
    }
    case c::kMisa: return true;
    case c::kMedeleg: csrs_.medeleg = value & c::kMedelegMask; return true;
    case c::kMideleg: csrs_.mideleg = value & c::kMidelegMask; return true;
    case c::kMie: csrs_.mie = value & 0xaaa; return true;
    case c::kMtvec: csrs_.mtvec = value & ~3ull; return true;
    case c::kMcounteren: csrs_.mcounteren = value & 7; return true;
    case c::kMscratch: csrs_.mscratch = value; return true;
    case c::kMepc: csrs_.mepc = value & ~3ull; return true;
    case c::kMcause: csrs_.mcause = value; return true;
    case c::kMtval: csrs_.mtval = value; return true;
    case c::kMip: csrs_.mip = value & 0x222; return true;
    case c::kMcycle: cycles_ = value; return true;
    case c::kMinstret: csrs_.instret = value; return true;
    case c::kSstatus: {
      constexpr std::uint64_t kSMask =
          ms::kSie | ms::kSpie | ms::kSpp | ms::kSum | ms::kMxr;
      csrs_.mstatus = (csrs_.mstatus & ~kSMask) | (value & kSMask);
      return true;
    }
    case c::kSie:
      csrs_.mie = (csrs_.mie & ~0x222ull) | (value & 0x222);
      return true;
    case c::kSip:
      csrs_.mip = (csrs_.mip & ~0x222ull) | (value & 0x222);
      return true;
    case c::kStvec: csrs_.stvec = value & ~3ull; return true;
    case c::kScounteren: csrs_.scounteren = value & 7; return true;
    case c::kSscratch: csrs_.sscratch = value; return true;
    case c::kSepc: csrs_.sepc = value & ~3ull; return true;
    case c::kScause: csrs_.scause = value; return true;
    case c::kStval: csrs_.stval = value; return true;
    case c::kSatp:
      // WARL MODE (Bare/Sv39 only). An accepted write switches the
      // translation context, so the TLB drops its cached leaves.
      csrs_.satp = c::legalize_satp(csrs_.satp, value);
      flush_tlb();
      return true;
    default: return false;
  }
}

bool OooCore::translation_active() const {
  namespace c = riscv::csr;
  return priv_ != Priv::kMachine &&
         (csrs_.satp >> c::kSatpModeShift) == c::kSatpModeSv39;
}

void OooCore::flush_tlb() {
  for (auto& e : tlb_) e = TlbEntry{};
}

riscv::Exception OooCore::leaf_permissions(std::uint64_t pte,
                                           MemAccess kind) const {
  namespace pv = riscv::sv39;
  namespace ms = sim::mstatus;
  const Exception fault = kind == MemAccess::kFetch  ? Exception::kInstrPageFault
                          : kind == MemAccess::kLoad ? Exception::kLoadPageFault
                                                     : Exception::kStorePageFault;
  const bool u_page = (pte & pv::kPteU) != 0;
  switch (kind) {
    case MemAccess::kFetch:
      if ((pte & pv::kPteX) == 0) return fault;
      // U needs the U bit; S fetching from a U page always faults (SUM
      // gates data accesses only).
      if ((priv_ == Priv::kUser) != u_page) return fault;
      break;
    case MemAccess::kLoad: {
      if (priv_ == Priv::kUser && !u_page) return fault;
      if (priv_ == Priv::kSupervisor && u_page &&
          (csrs_.mstatus & ms::kSum) == 0) {
        return fault;
      }
      const bool mxr = (csrs_.mstatus & ms::kMxr) != 0;
      if ((pte & pv::kPteR) == 0 && !(mxr && (pte & pv::kPteX) != 0)) {
        return fault;
      }
      break;
    }
    case MemAccess::kStore:
      if (priv_ == Priv::kUser && !u_page) return fault;
      if (priv_ == Priv::kSupervisor && u_page &&
          (csrs_.mstatus & ms::kSum) == 0) {
        return fault;
      }
      if ((pte & pv::kPteW) == 0) return fault;
      break;
  }
  // Svade: the walker never updates A/D; accesses needing an update fault.
  if ((pte & pv::kPteA) == 0) return fault;
  if (kind == MemAccess::kStore && (pte & pv::kPteD) == 0) return fault;
  return Exception::kNone;
}

riscv::Exception OooCore::translate(std::uint64_t vaddr, MemAccess kind,
                                    std::uint64_t& paddr) {
  namespace c = riscv::csr;
  namespace pv = riscv::sv39;
  const Exception fault = kind == MemAccess::kFetch  ? Exception::kInstrPageFault
                          : kind == MemAccess::kLoad ? Exception::kLoadPageFault
                                                     : Exception::kStorePageFault;
  if (!pv::canonical(vaddr)) return fault;
  const std::uint64_t vpn = vaddr >> pv::kPageShift;
  TlbEntry& slot = tlb_[vpn % tlb_.size()];
  const bool hit = slot.valid && slot.vpn == vpn;
  if (hit) {
    ++obs_.tlb_hits;
  } else {
    ++obs_.tlb_misses;
  }
  if (!hit) {
    // Page-table walk, root first, one PTE read per level.
    std::uint64_t table = (csrs_.satp & c::kSatpPpnMask) << pv::kPageShift;
    int level = static_cast<int>(pv::kLevels) - 1;
    std::uint64_t pte = 0;
    while (true) {
      if (level < 0) return fault;
      const std::uint64_t pte_addr =
          table + pv::vpn_slice(vaddr, static_cast<unsigned>(level)) * 8;
      if (!mem_.in_ram(pte_addr, 8)) return fault;
      pte = mem_.read(pte_addr, 8);
      const bool valid = (pte & pv::kPteV) != 0 &&
                         !((pte & pv::kPteW) != 0 && (pte & pv::kPteR) == 0);
      if (!valid) return fault;
      if ((pte & (pv::kPteR | pv::kPteX)) != 0) break;  // leaf PTE
      table = pv::pte_ppn(pte) << pv::kPageShift;
      --level;
    }
    // Superpage leaves must be PPN-aligned to their span.
    if (level > 0 &&
        (pv::pte_ppn(pte) &
         ((1ull << (9 * static_cast<unsigned>(level))) - 1)) != 0) {
      return fault;
    }
    slot.valid = true;
    slot.vpn = vpn;
    slot.pte = pte;
    slot.level = static_cast<std::uint8_t>(level);
    cycles_ += cfg_.miss_penalty;  // walk stalls like a cache miss
  }
  // The TLB caches the PTE, not the verdict: permissions re-check against
  // the current privilege/mstatus on every access.
  if (const Exception f = leaf_permissions(slot.pte, kind);
      f != Exception::kNone) {
    return f;
  }
  const std::uint64_t span = (1ull << (9 * slot.level)) - 1;
  const std::uint64_t ppn = (pv::pte_ppn(slot.pte) & ~span) | (vpn & span);
  paddr = (ppn << pv::kPageShift) | (vaddr & ((1ull << pv::kPageShift) - 1));
  return Exception::kNone;
}

}  // namespace chatfuzz::rtl
