// DUT model configuration: microarchitectural parameters for the
// RocketCore-class and BOOM-class cores, plus the switchable bug injections
// that reproduce the paper's findings (§V-B). Injections default ON (the
// paper's DUTs really behaved this way); lockstep tests switch them off.
#pragma once

#include <string>

namespace chatfuzz::rtl {

/// The deviations ChatFuzz found in RocketCore, reproduced as switchable
/// behaviours of the model. See DESIGN.md for the full mapping.
struct BugInjections {
  /// Bug1 (CWE-1202): I$ serves stale instructions after stores to fetched
  /// lines until FENCE.I; the golden model is always coherent.
  bool stale_icache = true;
  /// Bug2 (CWE-440): tracer omits the rd-writeback record of MUL/DIV ops.
  bool tracer_drops_muldiv = true;
  /// Finding1: when a load/store is both misaligned and out-of-range the
  /// core reports access-fault; the spec (and golden model) say misaligned.
  bool fault_priority_swap = true;
  /// Finding2: AMO with rd=x0 shows x0 receiving the loaded value in the
  /// trace (architectural state is unaffected).
  bool amo_x0_trace = true;
  /// Finding3: trace records a write to x0 for backward jumps with rd=x0
  /// (trace-only artifact).
  bool x0_link_trace = true;

  // Privileged/Sv39 bug surface (PR 6). These default OFF: they model
  // hypothetical trap/translation defects used to validate that the
  // differential harness *would* catch them, not paper findings.
  /// Trap unit ignores medeleg: delegated causes still vector to M-mode.
  /// Surfaces as S-CSR state divergence after a trap taken below M.
  bool wrong_delegation = false;
  /// LSU skips the PTE W/D permission checks on stores: writes to read-only
  /// or non-dirty pages succeed instead of raising store-page-fault.
  bool skip_perm_check = false;
  /// TLB is flushed on sfence.vma only, not on satp writes — stale leaf
  /// PTEs survive a translation-context switch.
  bool stale_tlb = false;

  // Out-of-order backend bug surface (the memory-ordering defect classes
  // TheHuzz/DifuzzRTL flag as the richest source of silicon escapes). Only
  // the OOO core model reads these; the in-order core ignores them, and the
  // `ooo` preset switches them on the way the paper's DUTs really carried
  // their findings.
  /// LSU store-to-load forwarding is broken: a load whose bytes should be
  /// forwarded from an older in-flight store reads stale memory instead.
  bool ooo_broken_fwd = false;
  /// Store queue drains speculative stores to memory at execute instead of
  /// at commit — a squashed store leaves its bytes behind.
  bool ooo_early_store_drain = false;
  /// Branch squash does not cancel in-flight (issued, not yet completed)
  /// loads: a wrong-path load completes after the squash and writes a
  /// physical register that may already be re-allocated.
  bool ooo_missing_squash = false;

  static BugInjections none() { return off_all(); }

 private:
  static BugInjections off_all() {
    BugInjections b;
    b.stale_icache = false;
    b.tracer_drops_muldiv = false;
    b.fault_priority_swap = false;
    b.amo_x0_trace = false;
    b.x0_link_trace = false;
    return b;  // every other flag already defaults to false
  }
};

struct CoreConfig {
  std::string name = "rocket";

  // Cache geometry (sets x ways x line-bytes). The I$ is small enough that
  // long structured tests can conflict within it.
  unsigned icache_sets = 8;
  unsigned icache_ways = 2;
  unsigned icache_line = 32;
  unsigned dcache_sets = 16;
  unsigned dcache_ways = 2;
  unsigned dcache_line = 32;

  // Front-end.
  unsigned btb_entries = 16;

  // Timing (cycles).
  unsigned miss_penalty = 20;
  unsigned div_latency = 16;
  unsigned mispredict_penalty = 3;

  /// BOOM-class: dual-issue out-of-order front end; adds rename/ROB
  /// condition points and removes most of the unreachable tail (the BOOM
  /// build in the paper saturates near 97%).
  bool superscalar = false;

  /// Depth of cross/sequence condition instrumentation. 2 = full (RocketCore
  /// build: deep privilege/sequence/cache crosses dominate the uncovered
  /// tail, as in the paper where 24h campaigns plateau near 80%); 1 =
  /// reduced (BOOM build: the instrumented subset saturates near 97%).
  unsigned cross_depth = 2;

  /// Defer the opcode-indexed comparator chains (decode.sel.* and
  /// cross.{user,super}.op.*) to per-run histograms instead of evaluating
  /// every comparator on every instruction. Exactly one comparator of a
  /// chain is true per instruction, so the per-test hit counts and
  /// stand-alone bins fold from an opcode histogram bit-identically — the
  /// chains are the instrumentation-layout-proportional share of the
  /// per-instruction cost, and deferring them is most of the campaign
  /// hot-path speedup. Counters land in the CoverageDB when the run stops
  /// (or at reset), not per instruction; switch off for strict
  /// per-instruction accounting — bench_campaign_throughput does, to
  /// reproduce the seed pipeline as its baseline.
  bool deferred_select_chains = true;

  /// Select the out-of-order backend (OooCore): 2-wide superscalar with
  /// register renaming, a reorder buffer, an LSU with a store queue +
  /// store-to-load forwarding, and branch speculation with
  /// squash-on-mispredict. The remaining fields size its structures.
  bool out_of_order = false;
  unsigned rob_size = 32;    // reorder-buffer entries
  unsigned phys_regs = 64;   // physical register file (>= 33)
  unsigned sq_size = 8;      // store-queue entries
  unsigned fetch_width = 2;  // fetch/rename/commit width per cycle

  BugInjections bugs;

  /// RocketCore-class preset (the paper's primary DUT).
  static CoreConfig rocket() { return CoreConfig{}; }

  /// Out-of-order preset (the second DUT backend). Like the rocket preset's
  /// five paper findings, the three memory-ordering injections ship enabled:
  /// this DUT "really behaves this way", and multi-DUT campaigns surface the
  /// resulting mismatches; lockstep tests switch them off.
  static CoreConfig ooo() {
    CoreConfig c;
    c.name = "ooo";
    c.out_of_order = true;
    c.dcache_sets = 32;
    c.dcache_ways = 4;
    c.btb_entries = 32;
    c.bugs = BugInjections::none();
    c.bugs.ooo_broken_fwd = true;
    c.bugs.ooo_early_store_drain = true;
    c.bugs.ooo_missing_squash = true;
    return c;
  }

  /// BOOM-class preset.
  static CoreConfig boom() {
    CoreConfig c;
    c.name = "boom";
    c.icache_sets = 32;
    c.icache_ways = 4;
    c.dcache_sets = 32;
    c.dcache_ways = 4;
    c.btb_entries = 32;
    c.div_latency = 12;
    c.superscalar = true;
    c.cross_depth = 1;
    return c;
  }
};

}  // namespace chatfuzz::rtl
