#include "rtlsim/core.h"

#include <algorithm>

#include "riscv/alu.h"
#include "riscv/decode.h"

namespace chatfuzz::rtl {

using riscv::Decoded;
using riscv::Exception;
using riscv::Opcode;
using riscv::Priv;
using sim::CommitRecord;

namespace {
std::uint64_t sext32(std::uint64_t v) {
  return static_cast<std::uint64_t>(
      static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
}

unsigned mem_size_of(Opcode op) {
  switch (op) {
    case Opcode::kLb: case Opcode::kLbu: case Opcode::kSb: return 1;
    case Opcode::kLh: case Opcode::kLhu: case Opcode::kSh: return 2;
    case Opcode::kLw: case Opcode::kLwu: case Opcode::kSw: return 4;
    case Opcode::kLrW: case Opcode::kScW: return 4;
    default: return 8;
  }
}

bool is_load_op(Opcode op) {
  switch (op) {
    case Opcode::kLb: case Opcode::kLh: case Opcode::kLw: case Opcode::kLd:
    case Opcode::kLbu: case Opcode::kLhu: case Opcode::kLwu:
      return true;
    default:
      return false;
  }
}
bool is_store_op(Opcode op) {
  switch (op) {
    case Opcode::kSb: case Opcode::kSh: case Opcode::kSw: case Opcode::kSd:
      return true;
    default:
      return false;
  }
}
bool is_branch_op(Opcode op) {
  switch (op) {
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu:
      return true;
    default:
      return false;
  }
}
bool is_amo_op(Opcode op) {
  const auto& s = riscv::spec(op);
  return s.ext == riscv::Ext::kA && s.format == riscv::Format::kAmo &&
         op != Opcode::kScW && op != Opcode::kScD;
}
bool is_alu_imm_op(Opcode op) {
  switch (op) {
    case Opcode::kAddi: case Opcode::kSlti: case Opcode::kSltiu:
    case Opcode::kXori: case Opcode::kOri: case Opcode::kAndi:
    case Opcode::kSlli: case Opcode::kSrli: case Opcode::kSrai:
    case Opcode::kAddiw: case Opcode::kSlliw: case Opcode::kSrliw:
    case Opcode::kSraiw:
      return true;
    default:
      return false;
  }
}
bool is_alu_reg_op(Opcode op) {
  const auto& s = riscv::spec(op);
  return s.format == riscv::Format::kR && s.ext == riscv::Ext::kI;
}
bool is_csr_op(Opcode op) {
  const auto& s = riscv::spec(op);
  return s.ext == riscv::Ext::kZicsr;
}
bool is_wform_op(Opcode op) {
  switch (op) {
    case Opcode::kAddiw: case Opcode::kSlliw: case Opcode::kSrliw:
    case Opcode::kSraiw: case Opcode::kAddw: case Opcode::kSubw:
    case Opcode::kSllw: case Opcode::kSrlw: case Opcode::kSraw:
    case Opcode::kMulw: case Opcode::kDivw: case Opcode::kDivuw:
    case Opcode::kRemw: case Opcode::kRemuw:
      return true;
    default:
      return false;
  }
}
}  // namespace

RtlCore::RtlCore(const CoreConfig& cfg, cov::CoverageDB& db, sim::Platform plat)
    : cfg_(cfg),
      db_(db),
      plat_(plat),
      mem_(plat.ram_base, plat.ram_size),
      icache_(cfg.icache_sets, cfg.icache_ways, cfg.icache_line),
      dcache_(cfg.dcache_sets, cfg.dcache_ways, cfg.dcache_line),
      predictor_(cfg.btb_entries) {
  register_points();
  op_count_.assign(riscv::kNumOpcodes + 1, 0);
  op_priv_count_.assign(2 * (riscv::kNumOpcodes + 1), 0);
}

void RtlCore::fold_deferred_chains() {
  if (chain_steps_ == 0) return;
  const std::uint64_t total = chain_steps_;
  // Each chain comparator i was evaluated `total` times and true exactly
  // `count[i]` of them, so the fold reproduces per-instruction evaluation
  // bin for bin (hit_n also sets the stand-alone test bins).
  for (std::size_t i = 0; i < riscv::kNumOpcodes; ++i) {
    const std::uint64_t t = op_count_[i];
    db_.hit_n(p_dec_op_[i], true, t);
    db_.hit_n(p_dec_op_[i], false, total - t);
  }
  std::fill(op_count_.begin(), op_count_.end(), 0);
  if (!p_cross_op_priv_.empty()) {
    for (std::size_t p = 0; p < 2; ++p) {
      const std::size_t cbase = p * (riscv::kNumOpcodes + 1);
      const std::size_t base = p * riscv::kNumOpcodes;
      for (std::size_t i = 0; i < riscv::kNumOpcodes; ++i) {
        const std::uint64_t t = op_priv_count_[cbase + i];
        db_.hit_n(p_cross_op_priv_[base + i], true, t);
        db_.hit_n(p_cross_op_priv_[base + i], false, total - t);
      }
    }
    std::fill(op_priv_count_.begin(), op_priv_count_.end(), 0);
  }
  if (!p_cross_priv_class_.empty()) {
    for (std::size_t i = 0; i < priv_class_count_.size(); ++i) {
      const std::uint64_t t = priv_class_count_[i];
      db_.hit_n(p_cross_priv_class_[i], true, t);
      db_.hit_n(p_cross_priv_class_[i], false, total - t);
    }
    priv_class_count_.fill(0);
  }
  chain_steps_ = 0;
}

void RtlCore::register_points() {
  auto add = [this](const char* name) { return db_.register_cond(name); };

  p_ic_hit_ = add("fetch.icache.hit");
  p_ic_evict_ = add("fetch.icache.evict_valid");
  p_btb_hit_ = add("fetch.btb.hit");
  p_pred_taken_ = add("fetch.btb.pred_taken");
  p_mispredict_ = add("fetch.btb.mispredict");
  p_fencei_flush_ = add("fetch.icache.fencei_flush");
  p_fetch_cross_ = add("fetch.line_cross");
  if (cfg_.cross_depth >= 2) {
    for (unsigned s = 0; s < cfg_.icache_sets; ++s) {
      p_ic_set_evict_.push_back(db_.register_cond(
          "fetch.icache.set" + std::to_string(s) + ".evict"));
    }
  }

  p_dec_valid_ = add("decode.valid");
  p_dec_load_ = add("decode.is_load");
  p_dec_store_ = add("decode.is_store");
  p_dec_branch_ = add("decode.is_branch");
  p_dec_jal_ = add("decode.is_jal");
  p_dec_jalr_ = add("decode.is_jalr");
  p_dec_aluimm_ = add("decode.is_alu_imm");
  p_dec_alureg_ = add("decode.is_alu_reg");
  p_dec_wform_ = add("decode.is_w_form");
  p_dec_muldiv_ = add("decode.is_muldiv");
  p_dec_div_ = add("decode.is_div");
  p_dec_amo_ = add("decode.is_amo");
  p_dec_lr_ = add("decode.is_lr");
  p_dec_sc_ = add("decode.is_sc");
  p_dec_csr_ = add("decode.is_csr");
  p_dec_fence_ = add("decode.is_fence");
  p_dec_system_ = add("decode.is_system");
  p_dec_rd_x0_ = add("decode.rd_is_x0");
  p_dec_rs1_x0_ = add("decode.rs1_is_x0");
  for (std::size_t i = 0; i < riscv::kNumOpcodes; ++i) {
    p_dec_op_.push_back(db_.register_cond(
        "decode.sel." + std::string(riscv::all_specs()[i].mnemonic)));
  }
  // Batched points for the superblock fast path, in step()'s evaluation
  // order; the outcome of each is a pure function of (decode, fetch pc), so
  // build_superblock() precomputes them as FusedSlot::class_bits and the
  // span exit folds the counts via hit_n(). Counts are order-insensitive:
  // the DB bins come out identical to per-instruction cc() calls.
  p_fused_batch_ = {p_dec_valid_, p_dec_load_,   p_dec_store_, p_dec_branch_,
                    p_dec_jal_,   p_dec_jalr_,   p_dec_aluimm_, p_dec_alureg_,
                    p_dec_wform_, p_dec_muldiv_, p_dec_div_,    p_dec_amo_,
                    p_dec_lr_,    p_dec_sc_,     p_dec_csr_,    p_dec_fence_,
                    p_dec_system_, p_dec_rd_x0_, p_dec_rs1_x0_, p_fetch_cross_};

  p_ex_bypass_rs1_ = add("exec.bypass_rs1");
  p_ex_bypass_rs2_ = add("exec.bypass_rs2");
  p_ex_load_use_ = add("exec.load_use_stall");
  p_ex_res_zero_ = add("exec.result_zero");
  p_ex_res_neg_ = add("exec.result_negative");
  p_ex_same_src_ = add("exec.rs1_eq_rs2");
  p_ex_shamt_zero_ = add("exec.shamt_zero");
  p_ex_br_taken_ = add("exec.branch_taken");
  p_ex_br_backward_ = add("exec.branch_backward");
  p_ex_target_misaligned_ = add("exec.target_misaligned");

  p_md_busy_ = add("muldiv.busy");
  p_md_div0_ = add("muldiv.div_by_zero");
  p_md_overflow_ = add("muldiv.signed_overflow");
  p_md_sign_mix_ = add("muldiv.sign_mix");
  p_md_word_ = add("muldiv.word_op");
  p_md_high_ = add("muldiv.high_half");

  p_dc_hit_ = add("mem.dcache.hit");
  p_dc_evict_valid_ = add("mem.dcache.evict_valid");
  p_dc_evict_dirty_ = add("mem.dcache.evict_dirty");
  p_mem_misaligned_ = add("mem.misaligned");
  p_mem_fault_ = add("mem.access_fault");
  p_mem_store_ = add("mem.is_store");
  p_mem_size8_ = add("mem.size_dword");
  p_mem_sc_ok_ = add("mem.sc_success");
  p_mem_resv_valid_ = add("mem.reservation_valid");
  p_mem_amo_min_ = add("mem.amo_minmax");
  p_mem_amo_logic_ = add("mem.amo_logic");
  if (cfg_.cross_depth >= 2) {
    for (unsigned s = 0; s < cfg_.dcache_sets; ++s) {
      p_dc_set_evict_.push_back(db_.register_cond(
          "mem.dcache.set" + std::to_string(s) + ".evict"));
    }
  }

  p_csr_illegal_addr_ = add("csr.illegal_address");
  p_csr_priv_fail_ = add("csr.priv_violation");
  p_csr_ro_write_ = add("csr.readonly_write");
  p_csr_machine_ = add("csr.machine_level_access");
  p_csr_super_ = add("csr.supervisor_level_access");
  p_csr_counter_ = add("csr.counter_access");
  p_csr_satp_ = add("csr.satp_access");
  p_csr_write_side_ = add("csr.write_performed");

  // 16 causes: 0-11 plus the Sv39 page faults 12/13/15 (14 reserved, never
  // true — part of the honest unreachable tail).
  for (int c = 0; c < 16; ++c) {
    p_trap_cause_.push_back(
        db_.register_cond("trap.cause" + std::to_string(c)));
  }
  p_trap_from_u_ = add("trap.from_user");
  p_trap_from_s_ = add("trap.from_supervisor");
  p_mret_ = add("trap.mret");
  p_sret_ = add("trap.sret");
  p_sret_to_u_ = add("trap.sret_to_user");
  p_mret_to_u_ = add("trap.mret_to_user");
  p_mret_to_s_ = add("trap.mret_to_supervisor");
  p_wfi_ = add("trap.wfi");
  p_deleg_ = add("trap.medeleg_nonzero");
  p_deleg_taken_ = add("trap.delegated");
  p_sfence_ = add("trap.sfence_vma");

  // Background/uncore units: the realistic unreachable tail of the full
  // RocketCore instrumentation. The BOOM build (cross_depth 1) instruments
  // the core pipeline subset only — its coverage therefore saturates near
  // the paper's 97% instead of Rocket's ~80%.
  if (cfg_.cross_depth >= 2) {
    for (int c = 0; c < 6; ++c) {
      p_irq_pending_.push_back(
          db_.register_cond("irq.pending" + std::to_string(c)));
    }
    p_debug_halt_ = add("debug.haltreq");
    p_debug_step_ = add("debug.single_step");
    p_ecc_ic_ = add("fetch.icache.ecc_error");
    p_ecc_dc_ = add("mem.dcache.ecc_error");
    p_pmp_hit_ = add("pmp.entry_match");
    p_pmp_fault_ = add("pmp.access_fault");
    p_ptw_active_ = add("ptw.active");
    p_ptw_level_ = add("ptw.leaf_level");
    p_ptw_fault_ = add("ptw.page_fault");
    p_ctr_overflow_ = add("counters.instret_overflow");
  }

  if (cfg_.superscalar) {
    p_b_dual_issue_ = add("boom.dual_issue");
    p_b_rename_alloc_ = add("boom.rename_alloc");
    p_b_rob_full_ = add("boom.rob_full");
    p_b_flush_ = add("boom.pipeline_flush");
    p_b_wakeup_ = add("boom.issue_wakeup");
    for (int bank = 0; bank < 8; ++bank) {
      p_b_rename_bank_.push_back(
          db_.register_cond("boom.rename.bank" + std::to_string(bank)));
    }
    for (int q = 0; q < 4; ++q) {
      p_b_rob_window_.push_back(
          db_.register_cond("boom.rob.window" + std::to_string(q)));
    }
    for (const char* cls : {"alu", "load", "store", "branch", "muldiv", "csr"}) {
      p_b_pair_.push_back(
          db_.register_cond(std::string("boom.pair.") + cls));
    }
  }

  // ---- cross/sequence instrumentation (the hard tail) ----------------------
  static const char* kClassNames[8] = {"load", "store",  "amo",    "lrsc",
                                       "csr",  "muldiv", "fencei", "branch"};
  if (cfg_.cross_depth >= 2) {
    for (const char* priv_name : {"user", "super"}) {
      for (const char* cls : kClassNames) {
        p_cross_priv_class_.push_back(db_.register_cond(
            std::string("cross.") + priv_name + "." + cls));
      }
    }
  }
  if (cfg_.cross_depth >= 1) {
    for (const char* seq :
         {"seq.div_after_div", "seq.muldiv_chain",
          "seq.branch_after_taken_branch", "seq.amo_after_amo",
          "seq.store_to_load_forward"}) {
      p_seq_.push_back(db_.register_cond(seq));
    }
    for (const char* cx :
         {"cache.double_dcache_miss", "cache.ic_dc_miss_same_instr",
          "cache.icache_miss_and_mispredict", "cache.dcache_hit_dirty"}) {
      p_cache_cross_.push_back(db_.register_cond(cx));
    }
    csr_write_addrs_ = {riscv::csr::kMstatus,  riscv::csr::kMie,
                        riscv::csr::kMtvec,    riscv::csr::kMscratch,
                        riscv::csr::kMepc,     riscv::csr::kMcause,
                        riscv::csr::kSatp,     riscv::csr::kSscratch};
    for (std::uint16_t addr : csr_write_addrs_) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "csr.write.0x%03x", addr);
      p_csr_write_addr_.push_back(db_.register_cond(buf));
    }
    for (const char* md : {"muldiv.div0_word", "muldiv.overflow_rem",
                           "muldiv.high_sign_mix"}) {
      p_md_cross_.push_back(db_.register_cond(md));
    }
  }
  if (cfg_.cross_depth >= 2) {
    for (const char* seq :
         {"seq.double_mispredict", "seq.double_trap", "seq.fencei_after_store",
          "seq.trap_after_csr_write", "seq.load_after_amo",
          "seq.backward_branch_pair", "seq.jump_after_trap"}) {
      p_seq_.push_back(db_.register_cond(seq));
    }
    for (const char* cx :
         {"cache.amo_dcache_miss", "cache.lrsc_dcache_miss",
          "cache.store_clobbers_reservation", "cache.mem_fault_in_user",
          "cache.misaligned_store_trap", "cache.sc_success_in_super"}) {
      p_cache_cross_.push_back(db_.register_cond(cx));
    }
    for (std::uint16_t addr : {riscv::csr::kMtval, riscv::csr::kMedeleg,
                               riscv::csr::kStvec, riscv::csr::kSepc}) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "csr.write.0x%03x", addr);
      p_csr_write_addr_.push_back(db_.register_cond(buf));
      csr_write_addrs_.push_back(addr);
    }
    for (const char* md : {"muldiv.div_equal_operands",
                           "muldiv.mul_result_zero",
                           "muldiv.div_after_load"}) {
      p_md_cross_.push_back(db_.register_cond(md));
    }
    // cause x privilege (needs a privilege drop *and* that exception there).
    static const char* kCauseNames[7] = {
        "illegal", "breakpoint", "load_misaligned", "load_fault",
        "store_misaligned", "store_fault", "ecall"};
    for (const char* cause : kCauseNames) {
      for (const char* priv_name : {"user", "super"}) {
        p_cross_cause_priv_.push_back(db_.register_cond(
            std::string("trap.cross.") + cause + "." + priv_name));
      }
    }
    // Bare-translation TLB: consulted only when satp != 0 outside M-mode.
    for (const char* t : {"tlb.lookup", "tlb.hit", "tlb.superpage",
                          "tlb.store_perm", "tlb.asid_nonzero",
                          "tlb.refill_walk"}) {
      p_tlb_.push_back(db_.register_cond(t));
    }
    // Privilege-gated decode chains (see core.h).
    for (const char* priv_name : {"user", "super"}) {
      for (std::size_t i = 0; i < riscv::kNumOpcodes; ++i) {
        p_cross_op_priv_.push_back(db_.register_cond(
            std::string("cross.") + priv_name + ".op." +
            std::string(riscv::all_specs()[i].mnemonic)));
      }
    }
  }
}

void RtlCore::evaluate_cross_units() {
  if (cfg_.cross_depth < 1) return;
  const bool classes[8] = {ev_.is_load,   ev_.is_store, ev_.is_amo,
                           ev_.is_lrsc,   ev_.is_csr,   ev_.is_muldiv,
                           ev_.is_fencei, ev_.is_branch};
  // Privilege bucket of this instruction for the deferred histograms
  // (M-mode instructions count as false on every U/S comparator, which the
  // fold's `total - true_count` term supplies for free).
  const int pidx = ev_.priv == Priv::kUser        ? 0
                   : ev_.priv == Priv::kSupervisor ? 1
                                                   : -1;
  // priv x class: evaluated every instruction (full-depth build only).
  if (!p_cross_priv_class_.empty()) {
    if (cfg_.deferred_select_chains) {
      if (pidx >= 0) {
        for (int c = 0; c < 8; ++c) {
          priv_class_count_[static_cast<std::size_t>(pidx) * 8 +
                            static_cast<std::size_t>(c)] += classes[c] ? 1 : 0;
        }
      }
    } else {
      for (int p = 0; p < 2; ++p) {
        const riscv::Priv priv = p == 0 ? Priv::kUser : Priv::kSupervisor;
        for (int c = 0; c < 8; ++c) {
          cc(p_cross_priv_class_[p * 8 + c], ev_.priv == priv && classes[c]);
        }
      }
    }
  }
  // privilege-gated decode chains (depth 2).
  if (!p_cross_op_priv_.empty()) {
    if (cfg_.deferred_select_chains) {
      if (pidx >= 0) {
        ++op_priv_count_[static_cast<std::size_t>(pidx) *
                             (riscv::kNumOpcodes + 1) +
                         cur_op_index_];
      }
    } else {
      for (int p = 0; p < 2; ++p) {
        const riscv::Priv priv = p == 0 ? Priv::kUser : Priv::kSupervisor;
        const bool in_priv = ev_.priv == priv;
        const std::size_t base =
            static_cast<std::size_t>(p) * riscv::kNumOpcodes;
        if (!in_priv) {
          // All comparators evaluate false in one pass.
          for (std::size_t i = 0; i < riscv::kNumOpcodes; ++i) {
            db_.hit(p_cross_op_priv_[base + i], false);
          }
        } else {
          for (std::size_t i = 0; i < riscv::kNumOpcodes; ++i) {
            db_.hit(p_cross_op_priv_[base + i], i == cur_op_index_);
          }
        }
      }
    }
  }
  // sequence pairs + cache crosses (outcomes shared with the fused loop).
  bool seq[kMaxSeqPoints];
  bool cx[kMaxCacheCrossPoints];
  seq_cache_outcomes(seq, cx);
  for (std::size_t i = 0; i < p_seq_.size(); ++i) cc(p_seq_[i], seq[i]);
  for (std::size_t i = 0; i < p_cache_cross_.size(); ++i) {
    cc(p_cache_cross_[i], cx[i]);
  }
  // per-CSR writes.
  for (std::size_t i = 0; i < p_csr_write_addr_.size(); ++i) {
    if (ev_.is_csr) {
      cc(p_csr_write_addr_[i],
         ev_.csr_write && ev_.csr_addr == csr_write_addrs_[i]);
    }
  }
  // cause x privilege: evaluated in raise() via ev_ on trap.
  if (cfg_.cross_depth >= 2 && ev_.trap) trap_cause_priv_points();
}

void RtlCore::seq_cache_outcomes(bool* seq, bool* cx) const {
  // Registration order; entries past p_seq_/p_cache_cross_.size() (reduced
  // cross_depth builds) are computed but never read.
  std::size_t s = 0;
  seq[s++] = ev_.is_div && prev_ev_.is_div;
  seq[s++] = ev_.is_muldiv && prev_ev_.is_muldiv;
  seq[s++] = ev_.is_branch && prev_ev_.is_branch && prev_ev_.taken;
  seq[s++] = ev_.is_amo && prev_ev_.is_amo;
  seq[s++] = ev_.is_load && prev_ev_.is_store && ev_.has_mem_addr &&
             prev_ev_.has_mem_addr && ev_.mem_addr == prev_ev_.mem_addr;
  seq[s++] = ev_.mispredict && prev_ev_.mispredict;
  seq[s++] = ev_.trap && prev_ev_.trap;
  seq[s++] = ev_.is_fencei && prev_ev_.is_store;
  seq[s++] = ev_.trap && prev_ev_.csr_write;
  seq[s++] = ev_.is_load && prev_ev_.is_amo;
  seq[s++] = ev_.taken_backward && prev_ev_.taken_backward;
  seq[s++] = ev_.is_jump && prev_ev_.trap;
  std::size_t x = 0;
  cx[x++] = ev_.dcache_miss && prev_ev_.dcache_miss;
  cx[x++] = ev_.dcache_miss && ev_.icache_miss;
  cx[x++] = ev_.icache_miss && ev_.mispredict;
  cx[x++] = ev_.dcache_hit_dirty;
  cx[x++] = ev_.is_amo && ev_.dcache_miss;
  cx[x++] = ev_.is_lrsc && ev_.dcache_miss;
  cx[x++] = ev_.store_hits_reservation;
  cx[x++] = ev_.trap && ev_.priv == Priv::kUser &&
            (ev_.cause == Exception::kLoadAccessFault ||
             ev_.cause == Exception::kStoreAccessFault);
  cx[x++] = ev_.trap && ev_.cause == Exception::kStoreAddrMisaligned;
  cx[x++] = ev_.sc_success && ev_.priv == Priv::kSupervisor;
}

void RtlCore::trap_cause_priv_points() {
  static const Exception kCauses[7] = {
      Exception::kIllegalInstruction, Exception::kBreakpoint,
      Exception::kLoadAddrMisaligned, Exception::kLoadAccessFault,
      Exception::kStoreAddrMisaligned, Exception::kStoreAccessFault,
      Exception::kEcallFromU /* placeholder; ecall handled below */};
  for (int ci = 0; ci < 7; ++ci) {
    for (int p = 0; p < 2; ++p) {
      const riscv::Priv priv = p == 0 ? Priv::kUser : Priv::kSupervisor;
      bool match;
      if (ci == 6) {
        match = (ev_.cause == Exception::kEcallFromU ||
                 ev_.cause == Exception::kEcallFromS) &&
                ev_.priv == priv;
      } else {
        match = ev_.cause == kCauses[ci] && ev_.priv == priv;
      }
      cc(p_cross_cause_priv_[ci * 2 + p], match);
    }
  }
}

void RtlCore::reset(std::span<const std::uint32_t> program) {
  // A run abandoned mid-flight still owns deferred chain counters; land
  // them first so the DB holds every evaluation the old code would have.
  fold_deferred_chains();
  mem_.clear();
  mem_.load_words(plat_.ram_base, program);
  regs_ = sim::initial_regs(plat_);
  pc_ = plat_.ram_base;
  priv_ = Priv::kMachine;
  csrs_ = CsrFile{};
  csrs_.mtvec = plat_.ram_base;
  mtvec_reset_value_ = plat_.ram_base;
  clint_.reset();
  reservation_.reset();
  ev_ = StepEvents{};
  prev_ev_ = StepEvents{};
  icache_.flush();
  dcache_.flush();
  // The predictor is microarchitectural state like the caches: each test
  // boots a freshly reset core, exactly as each VCS simulation does in the
  // paper's harness. Keeping BTB history across tests would also make
  // per-test coverage depend on which tests shared a simulator instance.
  predictor_.flush();
  predecode_.flush();
  // Cached spans are already stale — icache_.flush() bumped every line
  // generation — but dropping them keeps the span arena flat across tests.
  sb_.flush();
  sb_builds_ = 0;
  flush_tlb();
  cycles_ = 0;
  last_rd_ = 0;
  last_was_load_ = false;
  last_was_short_alu_ = false;
  last_ctrl_pack_ = 0;
  program_end_ = plat_.ram_base + 4 * program.size();
  trace_.clear();
  // Same scratch policy as IsaSim::reset(): reserve the full-depth commit
  // trace once up front, and not at all while a sink is attached (the
  // streaming path keeps the trace empty).
  if (sink_ == nullptr) trace_.reserve(plat_.max_steps);
  stopped_ = false;
  stop_reason_ = sim::StopReason::kStepLimit;
  steps_ = 0;
}

sim::RunResult RtlCore::run() {
  // The fused path only models the configuration subset it can replay
  // exactly: in-order pipeline, deferred select chains (per-instruction
  // chains would re-order cc() calls), no CLINT (interrupt polling is
  // per-step), no metric suite (on_step hooks are per-instruction).
  const bool fused_ok = sb_enabled_ && cfg_.deferred_select_chains &&
                        !cfg_.superscalar && !plat_.clint_enabled &&
                        metrics_ == nullptr;
  if (fused_ok) {
    while (!stopped_) {
      if (!translation_active() && run_superblock()) continue;
      step();
    }
  } else {
    while (!stopped_) step();
  }
  if (bbv_ != nullptr) bbv_->on_stop();
  sim::RunResult r;
  r.trace = trace_;
  r.stop = stop_reason_;
  r.steps = steps_;
  r.final_pc = pc_;
  return r;
}

const RtlCore::FusedIndex::Span* RtlCore::build_superblock() {
  FusedIndex::Span& span = sb_.begin_build(pc_);
  const std::vector<std::uint64_t>& gens = icache_.line_gens();
  std::uint64_t addr = pc_;
  for (std::size_t i = 0; i < riscv::kMaxSuperblockLen; ++i, addr += 4) {
    if (!mem_.in_ram(addr, 4)) break;
    std::uint32_t raw = 0;
    std::uint32_t line = 0;
    if (!icache_.peek(addr, &raw, &line)) {
      // Word not resident: the span ends here and the slow path's refill
      // handles it. Guard every way of the set the refill will land in, so
      // the refill's generation bump retires this span and the rebuild can
      // extend across the now-resident line.
      const std::uint32_t set = static_cast<std::uint32_t>(
          (addr / cfg_.icache_line) % cfg_.icache_sets);
      for (std::uint32_t w = 0; w < cfg_.icache_ways; ++w) {
        const std::uint32_t l = set * cfg_.icache_ways + w;
        if (!sb_.add_guard(span, l, gens[l])) break;
      }
      break;
    }
    // Guard the serving line: its generation moves on refill-eviction,
    // effective invalidation and flush — any event after which fetch()
    // could serve different bytes than peek() just did.
    if (!sb_.add_guard(span, line, gens[line])) break;
    if (raw == 0) break;  // end-of-program padding: slow path stops on it
    FusedSlot slot;
    slot.d = riscv::decode(raw);
    if (riscv::superblock_terminator(slot.d)) break;
    const Decoded& d = slot.d;
    // Precompute the batched decode-point outcomes exactly as step()
    // evaluates them (d.valid() is true here — terminators include invalid).
    std::uint32_t bits = 1u;  // decode.valid
    bits |= static_cast<std::uint32_t>(is_load_op(d.op)) << 1;
    bits |= static_cast<std::uint32_t>(is_store_op(d.op)) << 2;
    bits |= static_cast<std::uint32_t>(is_branch_op(d.op)) << 3;
    bits |= static_cast<std::uint32_t>(d.op == Opcode::kJal) << 4;
    bits |= static_cast<std::uint32_t>(d.op == Opcode::kJalr) << 5;
    bits |= static_cast<std::uint32_t>(is_alu_imm_op(d.op)) << 6;
    bits |= static_cast<std::uint32_t>(is_alu_reg_op(d.op)) << 7;
    bits |= static_cast<std::uint32_t>(is_wform_op(d.op)) << 8;
    bits |= static_cast<std::uint32_t>(riscv::is_muldiv(d.op)) << 9;
    bits |= static_cast<std::uint32_t>(riscv::is_div(d.op)) << 10;
    bits |= static_cast<std::uint32_t>(is_amo_op(d.op)) << 11;
    bits |= static_cast<std::uint32_t>(d.op == Opcode::kLrW ||
                                       d.op == Opcode::kLrD) << 12;
    bits |= static_cast<std::uint32_t>(d.op == Opcode::kScW ||
                                       d.op == Opcode::kScD) << 13;
    bits |= static_cast<std::uint32_t>(is_csr_op(d.op)) << 14;
    bits |= static_cast<std::uint32_t>(d.op == Opcode::kFence ||
                                       d.op == Opcode::kFenceI) << 15;
    bits |= static_cast<std::uint32_t>(
                riscv::spec(d.op).format == riscv::Format::kSystem) << 16;
    bits |= static_cast<std::uint32_t>(d.rd == 0) << 17;
    bits |= static_cast<std::uint32_t>(d.rs1 == 0) << 18;
    bits |= static_cast<std::uint32_t>(
                addr % cfg_.icache_line == cfg_.icache_line - 4) << 19;
    slot.class_bits = bits;
    slot.op_index = static_cast<std::uint16_t>(d.op);
    std::uint16_t evb = 0;
    evb |= static_cast<std::uint16_t>(is_load_op(d.op)) << 0;
    evb |= static_cast<std::uint16_t>(is_store_op(d.op)) << 1;
    evb |= static_cast<std::uint16_t>(is_amo_op(d.op)) << 2;
    evb |= static_cast<std::uint16_t>((bits >> 12 | bits >> 13) & 1u) << 3;
    evb |= static_cast<std::uint16_t>(riscv::is_muldiv(d.op)) << 4;
    evb |= static_cast<std::uint16_t>(riscv::is_div(d.op)) << 5;
    slot.ev_bits = evb;
    for (std::size_t j = 0; j < kNumFusedPoints; ++j) {
      span.extra[j] += (bits >> j) & 1u;
    }
    sb_.push(span, slot);
  }
  return &span;
}

bool RtlCore::run_superblock() {
  if (steps_ >= plat_.max_steps) return false;
  const std::vector<std::uint64_t>& gens = icache_.line_gens();
  const FusedIndex::Span* span = sb_.find(pc_, gens);
  if (span == nullptr) {
    // Churn guard (see sb_builds_): past the warmup allowance, build at
    // most one span per 16 committed instructions.
    if (sb_builds_ > 8 && sb_builds_ * 16 > steps_) return false;
    ++sb_builds_;
    ++obs_.sb_builds;
    span = build_superblock();
  } else {
    ++obs_.sb_hits;
  }
  if (span->len == 0) return false;
  const FusedSlot* slots = sb_.slots(*span);
  const std::uint64_t budget = plat_.max_steps - steps_;
  const std::uint64_t n = span->len < budget ? span->len : budget;
  std::uint64_t executed = 0;
  std::uint64_t ctr_true = 0;  // background ctr-overflow true evaluations
  // evaluate_cross_units(), batched: the seq/cache-cross points accumulate
  // true-counts locally and fold at span exit via hit_n — counters are
  // order-insensitive, so the DB ends bit-identical to per-slot cc() calls.
  const bool cross_on = cfg_.cross_depth >= 1;
  const std::size_t n_seq = p_seq_.size();
  const std::size_t n_cx = p_cache_cross_.size();
  std::array<std::uint32_t, kMaxSeqPoints> seq_counts{};
  std::array<std::uint32_t, kMaxCacheCrossPoints> cx_counts{};
  while (executed < n) {
    const FusedSlot& s = slots[executed];
    ev_ = StepEvents{};
    ev_.priv = priv_;
    ev_.is_load = (s.ev_bits & (1u << 0)) != 0;
    ev_.is_store = (s.ev_bits & (1u << 1)) != 0;
    ev_.is_amo = (s.ev_bits & (1u << 2)) != 0;
    ev_.is_lrsc = (s.ev_bits & (1u << 3)) != 0;
    ev_.is_muldiv = (s.ev_bits & (1u << 4)) != 0;
    ev_.is_div = (s.ev_bits & (1u << 5)) != 0;
    ++steps_;
    ++cycles_;
    CommitRecord rec;
    rec.pc = pc_;
    rec.instr = s.d.raw;
    rec.priv = priv_;
    cur_op_index_ = s.op_index;
    ++chain_steps_;
    ++op_count_[cur_op_index_];
    // evaluate_background_units(): the instret comparison runs before
    // execute() in the slow path; the irq/debug outcomes are constant over
    // the span (CSR ops terminate spans, no CLINT) and fold at exit.
    ctr_true += static_cast<std::uint64_t>(csrs_.instret > (1ull << 62));
    execute(s.d, rec);
    if (rec.exception == Exception::kNone) ++csrs_.instret;
    if (cross_on) {
      const int pidx = ev_.priv == Priv::kUser         ? 0
                       : ev_.priv == Priv::kSupervisor ? 1
                                                       : -1;
      if (pidx >= 0) {
        if (!p_cross_priv_class_.empty()) {
          const bool classes[8] = {ev_.is_load,   ev_.is_store, ev_.is_amo,
                                   ev_.is_lrsc,   ev_.is_csr,   ev_.is_muldiv,
                                   ev_.is_fencei, ev_.is_branch};
          for (int c = 0; c < 8; ++c) {
            priv_class_count_[static_cast<std::size_t>(pidx) * 8 +
                              static_cast<std::size_t>(c)] +=
                classes[c] ? 1 : 0;
          }
        }
        if (!p_cross_op_priv_.empty()) {
          ++op_priv_count_[static_cast<std::size_t>(pidx) *
                               (riscv::kNumOpcodes + 1) +
                           cur_op_index_];
        }
      }
      bool seq[kMaxSeqPoints];
      bool cx[kMaxCacheCrossPoints];
      seq_cache_outcomes(seq, cx);
      for (std::size_t j = 0; j < n_seq; ++j) seq_counts[j] += seq[j];
      for (std::size_t j = 0; j < n_cx; ++j) cx_counts[j] += cx[j];
      // Per-CSR write points are gated on is_csr (a span terminator) and
      // the cause x priv block on trap — the only per-slot cc() left.
      if (cfg_.cross_depth >= 2 && ev_.trap) trap_cause_priv_points();
    }
    prev_ev_ = ev_;
    std::uint64_t pack = static_cast<std::uint64_t>(s.d.op);
    pack |= 1ull << 7;  // fused fetches are guaranteed I$ hits
    pack |= static_cast<std::uint64_t>(rec.has_mem) << 8;
    pack |= static_cast<std::uint64_t>(rec.exception != Exception::kNone) << 9;
    pack |= static_cast<std::uint64_t>(static_cast<unsigned>(priv_)) << 10;
    pack |= static_cast<std::uint64_t>(rec.has_rd_write) << 12;
    ctrl_cov_.observe(pack);
    ctrl_cov_.observe(pack ^ (last_ctrl_pack_ << 13));
    last_ctrl_pack_ = pack;
    if (sink_ != nullptr) {
      sink_->on_commit(rec);
    } else {
      trace_.push_back(rec);
    }
    if (bbv_ != nullptr) {
      bbv_->on_commit(rec.pc, pc_, rec.exception != Exception::kNone);
    }
    ++executed;
    if (rec.exception != Exception::kNone) {
      // The magic trampoline resumes at the faulting pc + 4 — the span's
      // fall-through — so execution stays in-span unless the trap delegated
      // into an S-mode translation context.
      if (translation_active()) break;
    } else if (rec.has_mem && rec.mem_is_store &&
               !FusedIndex::fresh(*span, gens)) {
      // The store invalidated an I$ line under this very span (only
      // possible with the stale-I$ bug off): remaining slots may decode
      // bytes fetch() would no longer serve, so re-fetch via the slow path.
      break;
    }
  }
  // ---- span-exit folds of the batched per-instruction points ----
  std::array<std::uint32_t, kNumFusedPoints> counts{};
  if (executed == span->len) {
    counts = span->extra;
  } else {
    for (std::uint64_t i = 0; i < executed; ++i) {
      for (std::size_t j = 0; j < kNumFusedPoints; ++j) {
        counts[j] += (slots[i].class_bits >> j) & 1u;
      }
    }
  }
  const std::uint64_t k = executed;
  for (std::size_t j = 0; j < kNumFusedPoints; ++j) {
    db_.hit_n(p_fused_batch_[j], true, counts[j]);
    db_.hit_n(p_fused_batch_[j], false, k - counts[j]);
  }
  db_.hit_n(p_ic_hit_, true, k);
  if (!p_tlb_.empty()) db_.hit_n(p_tlb_[0], false, k);  // MMU found Bare
  for (std::size_t i = 0; i < p_irq_pending_.size(); ++i) {
    const std::uint64_t bit = 1ull << (1 + 2 * i);
    db_.hit_n(p_irq_pending_[i], (csrs_.mie & csrs_.mip & bit) != 0, k);
  }
  if (cfg_.cross_depth >= 2) {
    db_.hit_n(p_debug_halt_, false, k);
    db_.hit_n(p_debug_step_, false, k);
    db_.hit_n(p_ctr_overflow_, true, ctr_true);
    db_.hit_n(p_ctr_overflow_, false, k - ctr_true);
  }
  if (cross_on) {
    for (std::size_t j = 0; j < n_seq; ++j) {
      db_.hit_n(p_seq_[j], true, seq_counts[j]);
      db_.hit_n(p_seq_[j], false, k - seq_counts[j]);
    }
    for (std::size_t j = 0; j < n_cx; ++j) {
      db_.hit_n(p_cache_cross_[j], true, cx_counts[j]);
      db_.hit_n(p_cache_cross_[j], false, k - cx_counts[j]);
    }
  }
  return executed > 0;
}

bool RtlCore::csr_read(std::uint16_t addr, std::uint64_t& value,
                       riscv::Priv view) const {
  namespace c = riscv::csr;
  if (static_cast<int>(view) < static_cast<int>(c::min_priv(addr))) return false;
  switch (addr) {
    case c::kMstatus: value = csrs_.mstatus; return true;
    case c::kMisa: value = sim::kMisaValue; return true;
    case c::kMedeleg: value = csrs_.medeleg; return true;
    case c::kMideleg: value = csrs_.mideleg; return true;
    case c::kMie: value = csrs_.mie; return true;
    case c::kMtvec: value = csrs_.mtvec; return true;
    case c::kMcounteren: value = csrs_.mcounteren; return true;
    case c::kMscratch: value = csrs_.mscratch; return true;
    case c::kMepc: value = csrs_.mepc; return true;
    case c::kMcause: value = csrs_.mcause; return true;
    case c::kMtval: value = csrs_.mtval; return true;
    case c::kMip: value = csrs_.mip; return true;
    case c::kMcycle: case c::kCycle: value = cycles_; return true;
    case c::kTime: value = cycles_ / 100; return true;
    case c::kMinstret: case c::kInstret: value = csrs_.instret; return true;
    case c::kMvendorid: case c::kMarchid: case c::kMimpid: case c::kMhartid:
      value = 0;
      return true;
    case c::kSstatus:
      value = csrs_.mstatus &
              (sim::mstatus::kSie | sim::mstatus::kSpie | sim::mstatus::kSpp |
               sim::mstatus::kSum | sim::mstatus::kMxr);
      return true;
    case c::kSie: value = csrs_.mie & 0x222; return true;
    case c::kSip: value = csrs_.mip & 0x222; return true;
    case c::kStvec: value = csrs_.stvec; return true;
    case c::kScounteren: value = csrs_.scounteren; return true;
    case c::kSscratch: value = csrs_.sscratch; return true;
    case c::kSepc: value = csrs_.sepc; return true;
    case c::kScause: value = csrs_.scause; return true;
    case c::kStval: value = csrs_.stval; return true;
    case c::kSatp: value = csrs_.satp; return true;
    default: return false;
  }
}

bool RtlCore::csr_write(std::uint16_t addr, std::uint64_t value) {
  namespace c = riscv::csr;
  namespace ms = sim::mstatus;
  if (static_cast<int>(priv_) < static_cast<int>(c::min_priv(addr))) return false;
  if (c::is_read_only(addr)) return false;
  constexpr std::uint64_t kStatusMask = ms::kSie | ms::kMie | ms::kSpie |
                                        ms::kMpie | ms::kSpp | ms::kMppMask |
                                        ms::kSum | ms::kMxr;
  switch (addr) {
    case c::kMstatus: {
      std::uint64_t v = value & kStatusMask;
      if (((v & ms::kMppMask) >> ms::kMppShift) == 2) v &= ~ms::kMppMask;
      csrs_.mstatus = v;
      return true;
    }
    case c::kMisa: return true;
    case c::kMedeleg: csrs_.medeleg = value & c::kMedelegMask; return true;
    case c::kMideleg: csrs_.mideleg = value & c::kMidelegMask; return true;
    case c::kMie: csrs_.mie = value & 0xaaa; return true;
    case c::kMtvec: csrs_.mtvec = value & ~3ull; return true;
    case c::kMcounteren: csrs_.mcounteren = value & 7; return true;
    case c::kMscratch: csrs_.mscratch = value; return true;
    case c::kMepc: csrs_.mepc = value & ~3ull; return true;
    case c::kMcause: csrs_.mcause = value; return true;
    case c::kMtval: csrs_.mtval = value; return true;
    case c::kMip: csrs_.mip = value & 0x222; return true;
    case c::kMcycle: cycles_ = value; return true;
    case c::kMinstret: csrs_.instret = value; return true;
    case c::kSstatus: {
      constexpr std::uint64_t kSMask =
          ms::kSie | ms::kSpie | ms::kSpp | ms::kSum | ms::kMxr;
      csrs_.mstatus = (csrs_.mstatus & ~kSMask) | (value & kSMask);
      return true;
    }
    case c::kSie:
      csrs_.mie = (csrs_.mie & ~0x222ull) | (value & 0x222);
      return true;
    case c::kSip:
      csrs_.mip = (csrs_.mip & ~0x222ull) | (value & 0x222);
      return true;
    case c::kStvec: csrs_.stvec = value & ~3ull; return true;
    case c::kScounteren: csrs_.scounteren = value & 7; return true;
    case c::kSscratch: csrs_.sscratch = value; return true;
    case c::kSepc: csrs_.sepc = value & ~3ull; return true;
    case c::kScause: csrs_.scause = value; return true;
    case c::kStval: csrs_.stval = value; return true;
    case c::kSatp:
      // WARL MODE (Bare/Sv39 only). An accepted write switches the
      // translation context, so the TLB must drop its cached leaves —
      // unless the stale-TLB bug leaves them in place (sfence.vma still
      // flushes).
      csrs_.satp = c::legalize_satp(csrs_.satp, value);
      if (!cfg_.bugs.stale_tlb) flush_tlb();
      return true;
    default: return false;
  }
}

bool RtlCore::translation_active() const {
  namespace c = riscv::csr;
  return priv_ != Priv::kMachine &&
         (csrs_.satp >> c::kSatpModeShift) == c::kSatpModeSv39;
}

void RtlCore::flush_tlb() {
  for (auto& e : tlb_) e = TlbEntry{};
}

riscv::Exception RtlCore::leaf_permissions(std::uint64_t pte, MemAccess kind) {
  namespace pv = riscv::sv39;
  namespace ms = sim::mstatus;
  const Exception fault = kind == MemAccess::kFetch  ? Exception::kInstrPageFault
                          : kind == MemAccess::kLoad ? Exception::kLoadPageFault
                                                     : Exception::kStorePageFault;
  const bool u_page = (pte & pv::kPteU) != 0;
  switch (kind) {
    case MemAccess::kFetch:
      if ((pte & pv::kPteX) == 0) return fault;
      // U needs the U bit; S fetching from a U page always faults (SUM
      // gates data accesses only).
      if ((priv_ == Priv::kUser) != u_page) return fault;
      break;
    case MemAccess::kLoad: {
      if (priv_ == Priv::kUser && !u_page) return fault;
      if (priv_ == Priv::kSupervisor && u_page &&
          (csrs_.mstatus & ms::kSum) == 0) {
        return fault;
      }
      const bool mxr = (csrs_.mstatus & ms::kMxr) != 0;
      if ((pte & pv::kPteR) == 0 && !(mxr && (pte & pv::kPteX) != 0)) {
        return fault;
      }
      break;
    }
    case MemAccess::kStore:
      if (priv_ == Priv::kUser && !u_page) return fault;
      if (priv_ == Priv::kSupervisor && u_page &&
          (csrs_.mstatus & ms::kSum) == 0) {
        return fault;
      }
      // Bug site skip_perm_check: the store permission comparator (W) and
      // the dirty check below are skipped — stores to read-only pages land.
      if (!cfg_.bugs.skip_perm_check && (pte & pv::kPteW) == 0) return fault;
      break;
  }
  // Svade: the walker never updates A/D; accesses needing an update fault.
  if ((pte & pv::kPteA) == 0) return fault;
  if (kind == MemAccess::kStore && !cfg_.bugs.skip_perm_check &&
      (pte & pv::kPteD) == 0) {
    return fault;
  }
  return Exception::kNone;
}

riscv::Exception RtlCore::translate(std::uint64_t vaddr, MemAccess kind,
                                    std::uint64_t& paddr) {
  namespace c = riscv::csr;
  namespace pv = riscv::sv39;
  const Exception fault = kind == MemAccess::kFetch  ? Exception::kInstrPageFault
                          : kind == MemAccess::kLoad ? Exception::kLoadPageFault
                                                     : Exception::kStorePageFault;
  const bool cov = !p_tlb_.empty();  // MMU points exist at cross_depth 2 only
  if (cov) {
    cc(p_tlb_[3], kind == MemAccess::kStore);           // store-permission path
    cc(p_tlb_[4], ((csrs_.satp >> 44) & 0xffff) != 0);  // ASID bits set
  }
  if (!pv::canonical(vaddr)) {
    if (cov) cc(p_ptw_fault_, true);
    return fault;
  }
  const std::uint64_t vpn = vaddr >> pv::kPageShift;
  TlbEntry& slot = tlb_[vpn % tlb_.size()];
  const bool hit = slot.valid && slot.vpn == vpn;
  if (hit) {
    ++obs_.tlb_hits;
  } else {
    ++obs_.tlb_misses;
  }
  if (cov) {
    cc(p_tlb_[1], hit);
    cc(p_tlb_[5], !hit);  // refill walk engaged
    cc(p_ptw_active_, !hit);
  }
  if (!hit) {
    // Page-table walk, root first. The PTW is a memory client of its own in
    // real RTL; here it reads RAM directly (uncached) one PTE per level.
    std::uint64_t table = (csrs_.satp & c::kSatpPpnMask) << pv::kPageShift;
    int level = static_cast<int>(pv::kLevels) - 1;
    std::uint64_t pte = 0;
    while (true) {
      if (level < 0) {
        if (cov) cc(p_ptw_fault_, true);
        return fault;
      }
      const std::uint64_t pte_addr =
          table + pv::vpn_slice(vaddr, static_cast<unsigned>(level)) * 8;
      if (!mem_.in_ram(pte_addr, 8)) {
        if (cov) cc(p_ptw_fault_, true);
        return fault;
      }
      pte = mem_.read(pte_addr, 8);
      const bool valid = (pte & pv::kPteV) != 0 &&
                         !((pte & pv::kPteW) != 0 && (pte & pv::kPteR) == 0);
      if (!valid) {
        if (cov) cc(p_ptw_fault_, true);
        return fault;
      }
      if ((pte & (pv::kPteR | pv::kPteX)) != 0) break;  // leaf PTE
      table = pv::pte_ppn(pte) << pv::kPageShift;
      --level;
    }
    // Superpage leaves must be PPN-aligned to their span.
    if (level > 0 &&
        (pv::pte_ppn(pte) & ((1ull << (9 * static_cast<unsigned>(level))) - 1)) != 0) {
      if (cov) cc(p_ptw_fault_, true);
      return fault;
    }
    slot.valid = true;
    slot.vpn = vpn;
    slot.pte = pte;
    slot.level = static_cast<std::uint8_t>(level);
    cycles_ += cfg_.miss_penalty;  // walk stalls like a cache miss
  }
  if (cov) {
    cc(p_tlb_[2], slot.level > 0);  // superpage leaf
    cc(p_ptw_level_, slot.level > 0);
  }
  // The TLB caches the PTE, not the verdict: permissions re-check against
  // the current privilege/mstatus on every access.
  if (const Exception f = leaf_permissions(slot.pte, kind);
      f != Exception::kNone) {
    if (cov) cc(p_ptw_fault_, true);
    return f;
  }
  if (cov) cc(p_ptw_fault_, false);
  const std::uint64_t span = (1ull << (9 * slot.level)) - 1;
  const std::uint64_t ppn = (pv::pte_ppn(slot.pte) & ~span) | (vpn & span);
  paddr = (ppn << pv::kPageShift) | (vaddr & ((1ull << pv::kPageShift) - 1));
  return Exception::kNone;
}

void RtlCore::raise(CommitRecord& rec, Exception cause, std::uint64_t tval) {
  rec.exception = cause;
  rec.has_rd_write = false;
  rec.has_mem = false;
  ev_.trap = true;
  ev_.cause = cause;
  // Trap-unit condition points: one per cause, plus origin privilege.
  for (std::size_t c = 0; c < p_trap_cause_.size(); ++c) {
    cc(p_trap_cause_[c], static_cast<std::size_t>(cause) == c);
  }
  cc(p_trap_from_u_, priv_ == Priv::kUser);
  cc(p_trap_from_s_, priv_ == Priv::kSupervisor);
  cc(p_deleg_, csrs_.medeleg != 0);

  namespace ms = sim::mstatus;
  // Delegation mux: a trap from below M whose medeleg bit is set vectors to
  // the S-mode trampoline. Bug site wrong_delegation: the mux ignores
  // medeleg and every trap falls through to M.
  const bool deleg_wanted =
      priv_ != Priv::kMachine &&
      ((csrs_.medeleg >> static_cast<unsigned>(cause)) & 1) != 0;
  if (cc(p_deleg_taken_, deleg_wanted && !cfg_.bugs.wrong_delegation)) {
    csrs_.sepc = pc_;
    csrs_.scause = static_cast<std::uint64_t>(cause);
    csrs_.stval = tval;
    const bool sie = (csrs_.mstatus & ms::kSie) != 0;
    csrs_.mstatus &= ~(ms::kSie | ms::kSpie | ms::kSpp);
    if (sie) csrs_.mstatus |= ms::kSpie;
    if (priv_ == Priv::kSupervisor) csrs_.mstatus |= ms::kSpp;
    priv_ = Priv::kSupervisor;
    pc_ = csrs_.sepc + 4;  // S-mode magic trampoline (platform.h)
    cycles_ += cfg_.mispredict_penalty;
    if (cfg_.superscalar) cc(p_b_flush_, true);
    return;
  }
  csrs_.mepc = pc_;
  csrs_.mcause = static_cast<std::uint64_t>(cause);
  csrs_.mtval = tval;
  const bool mie = (csrs_.mstatus & ms::kMie) != 0;
  csrs_.mstatus &= ~(ms::kMie | ms::kMpie | ms::kMppMask);
  if (mie) csrs_.mstatus |= ms::kMpie;
  csrs_.mstatus |= static_cast<std::uint64_t>(priv_) << ms::kMppShift;
  priv_ = Priv::kMachine;
  pc_ = csrs_.mepc + 4;  // magic trampoline (platform.h)
  cycles_ += cfg_.mispredict_penalty;  // redirect costs a flush
  if (cfg_.superscalar) cc(p_b_flush_, true);
}

void RtlCore::write_rd(CommitRecord& rec, std::uint8_t rd, std::uint64_t value) {
  if (rd != 0) {
    if (metrics_ != nullptr) metrics_->observe_write(rd, regs_[rd], value);
    regs_[rd] = value;
  }
  rec.has_rd_write = rd != 0;
  rec.rd = rd;
  rec.rd_value = rd != 0 ? value : 0;
}

void RtlCore::service_interrupts() {
  namespace ms = sim::mstatus;
  clint_.tick();
  csrs_.mip = (csrs_.mip & ~sim::mip::kMachineBits) | clint_.pending_mip();
  const std::uint64_t ready = csrs_.mie & csrs_.mip & sim::mip::kMachineBits;
  // The pending lines are condition points in their own right; with CLINT
  // stimulus their true bins finally become reachable.
  for (std::size_t i = 0; i < p_irq_pending_.size(); ++i) {
    const std::uint64_t bit = 1ull << (1 + 2 * i);
    cc(p_irq_pending_[i], (csrs_.mie & csrs_.mip & bit) != 0);
  }
  if (ready == 0) return;
  const bool enabled =
      priv_ != Priv::kMachine || (csrs_.mstatus & ms::kMie) != 0;
  if (!enabled) return;
  // Software interrupts outrank timer interrupts (privileged spec).
  const std::uint64_t cause = (ready & sim::mip::kMsip) != 0
                                  ? sim::mip::kCauseMsi
                                  : sim::mip::kCauseMti;
  csrs_.mepc = pc_;
  csrs_.mcause = sim::mip::kInterruptFlag | cause;
  csrs_.mtval = 0;
  const bool mie = (csrs_.mstatus & ms::kMie) != 0;
  csrs_.mstatus &= ~(ms::kMie | ms::kMpie | ms::kMppMask);
  if (mie) csrs_.mstatus |= ms::kMpie;
  csrs_.mstatus |= static_cast<std::uint64_t>(priv_) << ms::kMppShift;
  priv_ = Priv::kMachine;
  cycles_ += cfg_.mispredict_penalty;  // pipeline redirect
  // Magic trampoline: acknowledge at the device, resume at the interrupted
  // instruction (pc_ unchanged). See platform.h.
  clint_.clear_source(cause);
  csrs_.mip = (csrs_.mip & ~sim::mip::kMachineBits) | clint_.pending_mip();
}

void RtlCore::evaluate_background_units(const Decoded& d) {
  // Interrupt lines are evaluated every cycle in RTL; nothing in the fuzz
  // harness can assert mip (no CLINT/PLIC stimulus), so the true bins are
  // the realistic unreachable tail.
  for (std::size_t i = 0; i < p_irq_pending_.size(); ++i) {
    const std::uint64_t bit = 1ull << (1 + 2 * i);  // ssip..meip pattern
    cc(p_irq_pending_[i], (csrs_.mie & csrs_.mip & bit) != 0);
  }
  if (cfg_.cross_depth >= 2) {
    cc(p_debug_halt_, false);
    cc(p_debug_step_, false);
    cc(p_ctr_overflow_, csrs_.instret > (1ull << 62));
  }
  if (cfg_.superscalar) {
    const bool short_alu = d.valid() && (is_alu_imm_op(d.op) || is_alu_reg_op(d.op));
    if (cc(p_b_dual_issue_, short_alu && last_was_short_alu_)) {
      // Second op of a fused pair issues for free.
      if (cycles_ > 0) --cycles_;
    }
    cc(p_b_rename_alloc_, d.valid() && d.rd != 0);
    cc(p_b_rob_full_, ev_.dcache_miss && prev_ev_.dcache_miss);
    cc(p_b_wakeup_, d.valid() && (d.rs1 == last_rd_ || d.rs2 == last_rd_) &&
                        last_rd_ != 0);
    for (int bank = 0; bank < 8; ++bank) {
      cc(p_b_rename_bank_[bank], d.valid() && d.rd != 0 && d.rd % 8 == bank);
    }
    for (int q = 0; q < 4; ++q) {
      cc(p_b_rob_window_[q], (steps_ >> 3) % 4 == static_cast<unsigned>(q));
    }
    if (d.valid()) {
      const bool pair = short_alu && last_was_short_alu_;
      std::size_t c = 0;
      cc(p_b_pair_[c++], pair);
      cc(p_b_pair_[c++], last_was_short_alu_ && is_load_op(d.op));
      cc(p_b_pair_[c++], last_was_short_alu_ && is_store_op(d.op));
      cc(p_b_pair_[c++], last_was_short_alu_ && is_branch_op(d.op));
      cc(p_b_pair_[c++], last_was_short_alu_ && riscv::is_muldiv(d.op));
      cc(p_b_pair_[c++], last_was_short_alu_ && is_csr_op(d.op));
    }
    last_was_short_alu_ = short_alu;
  }
}

std::optional<CommitRecord> RtlCore::step() {
  if (stopped_) {
    fold_deferred_chains();
    return std::nullopt;
  }
  if (steps_ >= plat_.max_steps) {
    stopped_ = true;
    stop_reason_ = sim::StopReason::kStepLimit;
    fold_deferred_chains();
    return std::nullopt;
  }

  ev_ = StepEvents{};
  ev_.priv = priv_;

  // ---- Instruction-side MMU ----
  std::uint64_t fetch_pa = pc_;
  if (translation_active()) {
    if (!p_tlb_.empty()) cc(p_tlb_[0], true);  // I-side TLB lookup
    if (const Exception pf = translate(pc_, MemAccess::kFetch, fetch_pa);
        pf != Exception::kNone) {
      // Fetch page fault: nothing was fetched, so the committed record
      // carries instr=0 and the select chains see an invalid decode.
      // Interrupt servicing is skipped this step (mirrored by the golden
      // model).
      ++steps_;
      ++cycles_;
      CommitRecord rec;
      rec.pc = pc_;
      rec.instr = 0;
      rec.priv = priv_;
      cur_op_index_ = riscv::kNumOpcodes;
      if (cfg_.deferred_select_chains) {
        ++chain_steps_;
        ++op_count_[cur_op_index_];
      } else {
        for (std::size_t i = 0; i < p_dec_op_.size(); ++i) {
          cc(p_dec_op_[i], false);
        }
      }
      raise(rec, pf, pc_);
      evaluate_cross_units();
      if (metrics_ != nullptr) {
        cov::StepObservation ob;
        ob.trap = true;
        ob.priv_before = ev_.priv;
        ob.priv_after = priv_;
        metrics_->on_step(ob);
      }
      prev_ev_ = ev_;
      std::uint64_t pack = 0x7f;
      pack |= 1ull << 9;  // trapped
      pack |= static_cast<std::uint64_t>(static_cast<unsigned>(priv_)) << 10;
      ctrl_cov_.observe(pack);
      ctrl_cov_.observe(pack ^ (last_ctrl_pack_ << 13));
      last_ctrl_pack_ = pack;
      if (sink_ != nullptr) {
        sink_->on_commit(rec);
      } else {
        trace_.push_back(rec);
      }
      if (bbv_ != nullptr) bbv_->on_commit(rec.pc, pc_, true);
      return rec;
    }
  } else if (!p_tlb_.empty()) {
    cc(p_tlb_[0], false);  // MMU consulted, found Bare: passthrough
  }
  if (!mem_.in_ram(fetch_pa, 4)) {
    stopped_ = true;
    stop_reason_ = sim::StopReason::kPcEscape;
    fold_deferred_chains();
    return std::nullopt;
  }

  // ---- Fetch through the I$ (Bug1 site: may serve stale bytes) ----
  CacheAccess iacc;
  const std::uint32_t raw = icache_.fetch(fetch_pa, mem_, iacc);
  ev_.icache_miss = !iacc.hit;
  cc(p_ic_hit_, iacc.hit);
  if (!iacc.hit) {
    cc(p_ic_evict_, iacc.evicted_valid);
    if (!p_ic_set_evict_.empty()) {
      const unsigned set = static_cast<unsigned>(
          (fetch_pa / cfg_.icache_line) % cfg_.icache_sets);
      cc(p_ic_set_evict_[set], iacc.evicted_valid);
    }
    cycles_ += cfg_.miss_penalty;
    if (cfg_.cross_depth >= 2) cc(p_ecc_ic_, false);  // refill ECC check
  }
  cc(p_fetch_cross_, fetch_pa % cfg_.icache_line == cfg_.icache_line - 4);

  if (raw == 0) {
    stopped_ = true;
    stop_reason_ = sim::StopReason::kProgramEnd;
    fold_deferred_chains();
    return std::nullopt;
  }
  ++steps_;
  ++cycles_;
  if (plat_.clint_enabled) service_interrupts();

  CommitRecord rec;
  rec.pc = pc_;
  rec.instr = raw;
  rec.priv = priv_;

  // Decode through the predecode cache: the cached entry is tag-checked
  // against the word the I$ actually served, so this is always equivalent
  // to riscv::decode(raw) — just without the table scan on repeat fetches.
  const Decoded& d = predecode_.lookup(pc_, raw);

  // ---- Decode-stage condition points ----
  cc(p_dec_valid_, d.valid());
  cc(p_dec_load_, d.valid() && is_load_op(d.op));
  cc(p_dec_store_, d.valid() && is_store_op(d.op));
  cc(p_dec_branch_, d.valid() && is_branch_op(d.op));
  cc(p_dec_jal_, d.op == Opcode::kJal);
  cc(p_dec_jalr_, d.op == Opcode::kJalr);
  cc(p_dec_aluimm_, d.valid() && is_alu_imm_op(d.op));
  cc(p_dec_alureg_, d.valid() && is_alu_reg_op(d.op));
  cc(p_dec_wform_, d.valid() && is_wform_op(d.op));
  cc(p_dec_muldiv_, d.valid() && riscv::is_muldiv(d.op));
  cc(p_dec_div_, d.valid() && riscv::is_div(d.op));
  cc(p_dec_amo_, d.valid() && is_amo_op(d.op));
  cc(p_dec_lr_, d.op == Opcode::kLrW || d.op == Opcode::kLrD);
  cc(p_dec_sc_, d.op == Opcode::kScW || d.op == Opcode::kScD);
  cc(p_dec_csr_, d.valid() && is_csr_op(d.op));
  cc(p_dec_fence_, d.op == Opcode::kFence || d.op == Opcode::kFenceI);
  cc(p_dec_system_, d.valid() && riscv::spec(d.op).format == riscv::Format::kSystem);
  cc(p_dec_rd_x0_, d.valid() && d.rd == 0);
  cc(p_dec_rs1_x0_, d.valid() && d.rs1 == 0);
  cur_op_index_ = d.valid() ? static_cast<std::size_t>(d.op)
                            : riscv::kNumOpcodes;
  if (d.valid()) {
    ev_.is_load = is_load_op(d.op);
    ev_.is_store = is_store_op(d.op);
    ev_.is_amo = is_amo_op(d.op);
    ev_.is_lrsc = d.op == Opcode::kLrW || d.op == Opcode::kLrD ||
                  d.op == Opcode::kScW || d.op == Opcode::kScD;
    ev_.is_csr = is_csr_op(d.op);
    ev_.is_muldiv = riscv::is_muldiv(d.op);
    ev_.is_div = riscv::is_div(d.op);
    ev_.is_branch = is_branch_op(d.op);
    ev_.is_fencei = d.op == Opcode::kFenceI;
    ev_.is_jump = d.op == Opcode::kJal || d.op == Opcode::kJalr;
  }
  // Per-opcode select chain (one comparator per table row, as in RTL).
  // Deferred mode histograms the decoded opcode instead of touching every
  // comparator's bin here; fold_deferred_chains() lands the same counts.
  if (cfg_.deferred_select_chains) {
    ++chain_steps_;
    ++op_count_[cur_op_index_];
  } else {
    for (std::size_t i = 0; i < p_dec_op_.size(); ++i) {
      cc(p_dec_op_[i], d.valid() && static_cast<std::size_t>(d.op) == i);
    }
  }

  evaluate_background_units(d);

  execute(d, rec);

  if (rec.exception == Exception::kNone) ++csrs_.instret;

  evaluate_cross_units();

  if (metrics_ != nullptr) {
    cov::StepObservation ob;
    ob.is_load = ev_.is_load;
    ob.is_store = ev_.is_store;
    ob.is_amo = ev_.is_amo;
    ob.is_branch = ev_.is_branch;
    ob.is_jump = ev_.is_jump;
    ob.is_muldiv = ev_.is_muldiv;
    ob.is_div = ev_.is_div;
    ob.is_csr = ev_.is_csr;
    ob.is_fence = d.op == Opcode::kFence || ev_.is_fencei;
    ob.trap = ev_.trap;
    ob.priv_before = ev_.priv;
    ob.priv_after = priv_;
    ob.dcache_access = ev_.dcache_access;
    ob.dcache_hit = ev_.dcache_access && !ev_.dcache_miss;
    ob.dcache_hit_dirty = ev_.dcache_hit_dirty;
    ob.dcache_evict_valid = ev_.dcache_evict_valid;
    ob.dcache_evict_dirty = ev_.dcache_evict_dirty;
    metrics_->on_step(ob);
  }
  prev_ev_ = ev_;

  // ---- Control-register coverage (DifuzzRTL metric) ----
  std::uint64_t pack = 0;
  pack |= d.valid() ? static_cast<std::uint64_t>(d.op) : 0x7f;
  pack |= static_cast<std::uint64_t>(iacc.hit) << 7;
  pack |= static_cast<std::uint64_t>(rec.has_mem) << 8;
  pack |= static_cast<std::uint64_t>(rec.exception != Exception::kNone) << 9;
  pack |= static_cast<std::uint64_t>(static_cast<unsigned>(priv_)) << 10;
  pack |= static_cast<std::uint64_t>(rec.has_rd_write) << 12;
  ctrl_cov_.observe(pack);
  ctrl_cov_.observe(pack ^ (last_ctrl_pack_ << 13));  // sequence-sensitive
  last_ctrl_pack_ = pack;

  if (sink_ != nullptr) {
    sink_->on_commit(rec);
  } else {
    trace_.push_back(rec);
  }
  if (bbv_ != nullptr) {
    bbv_->on_commit(rec.pc, pc_, rec.exception != Exception::kNone);
  }
  if (stopped_) fold_deferred_chains();  // wfi retired: the run just ended
  return rec;
}

void RtlCore::execute(const Decoded& d, CommitRecord& rec) {
  const std::uint64_t next_pc = pc_ + 4;
  if (!d.valid()) {
    raise(rec, Exception::kIllegalInstruction, d.raw);
    return;
  }
  const std::uint64_t a = regs_[d.rs1];
  const std::uint64_t b = regs_[d.rs2];

  // Hazard / bypass network conditions.
  cc(p_ex_bypass_rs1_, d.rs1 != 0 && d.rs1 == last_rd_);
  cc(p_ex_bypass_rs2_, d.rs2 != 0 && d.rs2 == last_rd_);
  if (cc(p_ex_load_use_, last_was_load_ && last_rd_ != 0 &&
                             (d.rs1 == last_rd_ || d.rs2 == last_rd_))) {
    ++cycles_;  // one-cycle load-use bubble
  }
  last_was_load_ = is_load_op(d.op) || d.op == Opcode::kLrW || d.op == Opcode::kLrD;
  last_rd_ = 0;  // set below on writeback

  switch (d.op) {
    case Opcode::kLui:
      write_rd(rec, d.rd, static_cast<std::uint64_t>(d.imm));
      break;
    case Opcode::kAuipc:
      write_rd(rec, d.rd, pc_ + static_cast<std::uint64_t>(d.imm));
      break;

    case Opcode::kJal: case Opcode::kJalr: {
      std::uint64_t target;
      if (d.op == Opcode::kJal) {
        target = pc_ + static_cast<std::uint64_t>(d.imm);
      } else {
        target = (a + static_cast<std::uint64_t>(d.imm)) & ~1ull;
      }
      const auto pred = predictor_.predict(pc_);
      cc(p_btb_hit_, pred.btb_hit);
      cc(p_pred_taken_, pred.predict_taken);
      ev_.mispredict = predictor_.update(pc_, true, target);
      if (cc(p_mispredict_, ev_.mispredict)) {
        cycles_ += cfg_.mispredict_penalty;
      }
      ev_.taken = true;
      ev_.taken_backward = target < pc_;
      if (cc(p_ex_target_misaligned_, (target & 3) != 0)) {
        raise(rec, Exception::kInstrAddrMisaligned, target);
        return;
      }
      cc(p_ex_br_backward_, target < pc_);
      write_rd(rec, d.rd, next_pc);
      // Finding3 (trace-only): backward jumps with rd=x0 leak a link-write
      // record into the trace.
      if (cfg_.bugs.x0_link_trace && d.rd == 0 && target < pc_) {
        rec.has_rd_write = true;
        rec.rd = 0;
        rec.rd_value = next_pc;
      }
      last_rd_ = d.rd;
      pc_ = target;
      return;
    }

    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu: {
      bool taken = false;
      switch (d.op) {
        case Opcode::kBeq: taken = a == b; break;
        case Opcode::kBne: taken = a != b; break;
        case Opcode::kBlt: taken = static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b); break;
        case Opcode::kBge: taken = static_cast<std::int64_t>(a) >= static_cast<std::int64_t>(b); break;
        case Opcode::kBltu: taken = a < b; break;
        default: taken = a >= b; break;
      }
      const std::uint64_t target = pc_ + static_cast<std::uint64_t>(d.imm);
      cc(p_ex_br_taken_, taken);
      cc(p_ex_same_src_, d.rs1 == d.rs2);
      cc(p_ex_br_backward_, taken && target < pc_);
      ev_.taken = taken;
      ev_.taken_backward = taken && target < pc_;
      const auto pred = predictor_.predict(pc_);
      cc(p_btb_hit_, pred.btb_hit);
      cc(p_pred_taken_, pred.predict_taken);
      ev_.mispredict = predictor_.update(pc_, taken, target);
      if (cc(p_mispredict_, ev_.mispredict)) {
        cycles_ += cfg_.mispredict_penalty;
      }
      if (taken) {
        if (cc(p_ex_target_misaligned_, (target & 3) != 0)) {
          raise(rec, Exception::kInstrAddrMisaligned, target);
          return;
        }
        pc_ = target;
        return;
      }
      break;
    }

    case Opcode::kLb: case Opcode::kLh: case Opcode::kLw: case Opcode::kLd:
    case Opcode::kLbu: case Opcode::kLhu: case Opcode::kLwu:
    case Opcode::kSb: case Opcode::kSh: case Opcode::kSw: case Opcode::kSd: {
      const bool is_store = is_store_op(d.op);
      const std::uint64_t addr = a + static_cast<std::uint64_t>(d.imm);
      const unsigned size = mem_size_of(d.op);
      const bool misaligned = addr % size != 0;
      // D-side MMU. The misaligned check is architectural on the *virtual*
      // address; in spec priority it outranks translation, so the walker is
      // only consulted for an aligned access — except under the
      // fault-priority-swap bug, where the LSU asks the MMU first.
      const bool xlate = translation_active();
      std::uint64_t pa = addr;
      Exception pgf = Exception::kNone;
      if (!p_tlb_.empty()) cc(p_tlb_[0], xlate);
      if (xlate && (cfg_.bugs.fault_priority_swap || !misaligned)) {
        pgf = translate(addr, is_store ? MemAccess::kStore : MemAccess::kLoad,
                        pa);
      }
      const bool is_clint = pgf == Exception::kNone && clint_.contains(plat_, pa);
      const bool fault =
          pgf == Exception::kNone && !mem_.in_ram(pa, size) && !is_clint;
      cc(p_mem_store_, is_store);
      cc(p_mem_size8_, size == 8);
      cc(p_mem_misaligned_, misaligned);
      cc(p_mem_fault_, fault);
      if (cfg_.cross_depth >= 2) {
        cc(p_pmp_hit_, false);
        cc(p_pmp_fault_, false);
      }
      if (cfg_.bugs.fault_priority_swap) {
        // Finding1: the core checks the PMA/range fault before alignment,
        // inverting the spec's exception priority when both apply. Page
        // faults arrive from the MMU ahead of the LSU's priority mux.
        if (pgf != Exception::kNone) {
          raise(rec, pgf, addr);
          return;
        }
        if (fault) {
          raise(rec, is_store ? Exception::kStoreAccessFault
                              : Exception::kLoadAccessFault, addr);
          return;
        }
        if (misaligned) {
          raise(rec, is_store ? Exception::kStoreAddrMisaligned
                              : Exception::kLoadAddrMisaligned, addr);
          return;
        }
      } else {
        if (misaligned) {
          raise(rec, is_store ? Exception::kStoreAddrMisaligned
                              : Exception::kLoadAddrMisaligned, addr);
          return;
        }
        if (pgf != Exception::kNone) {
          raise(rec, pgf, addr);
          return;
        }
        if (fault) {
          raise(rec, is_store ? Exception::kStoreAccessFault
                              : Exception::kLoadAccessFault, addr);
          return;
        }
      }
      if (is_clint) {
        // MMIO bypasses the D$ (the CLINT sits on the uncached port).
        if (is_store) {
          const std::uint64_t bits =
              size == 8 ? b : (b & ((1ull << (8 * size)) - 1));
          if (!clint_.write(plat_, pa, size, bits)) {
            raise(rec, Exception::kStoreAccessFault, addr);
            return;
          }
          csrs_.mip =
              (csrs_.mip & ~sim::mip::kMachineBits) | clint_.pending_mip();
          rec.has_mem = true;
          rec.mem_is_store = true;
          rec.mem_addr = addr;
          rec.mem_value = bits;
          rec.mem_size = static_cast<std::uint8_t>(size);
        } else {
          std::uint64_t mmio = 0;
          if (!clint_.read(plat_, pa, size, mmio)) {
            raise(rec, Exception::kLoadAccessFault, addr);
            return;
          }
          rec.has_mem = true;
          rec.mem_is_store = false;
          rec.mem_addr = addr;
          rec.mem_value = mmio;
          rec.mem_size = static_cast<std::uint8_t>(size);
          write_rd(rec, d.rd, d.op == Opcode::kLw ? sext32(mmio) : mmio);
          last_rd_ = d.rd;
        }
        break;
      }
      const CacheAccess dacc = dcache_.access(pa, is_store);
      cc(p_dc_hit_, dacc.hit);
      ev_.dcache_miss = !dacc.hit;
      ev_.dcache_hit_dirty = dacc.hit_dirty;
      ev_.dcache_access = true;
      ev_.dcache_evict_valid = dacc.evicted_valid;
      ev_.dcache_evict_dirty = dacc.evicted_dirty;
      ev_.has_mem_addr = true;
      ev_.mem_addr = addr;
      if (!dacc.hit) {
        cc(p_dc_evict_valid_, dacc.evicted_valid);
        cc(p_dc_evict_dirty_, dacc.evicted_dirty);
        if (!p_dc_set_evict_.empty()) {
          const unsigned set = static_cast<unsigned>(
              (pa / cfg_.dcache_line) % cfg_.dcache_sets);
          cc(p_dc_set_evict_[set], dacc.evicted_valid);
        }
        cycles_ += cfg_.miss_penalty;
        if (cfg_.cross_depth >= 2) cc(p_ecc_dc_, false);
      }
      if (is_store) {
        if (reservation_ &&
            (*reservation_ / cfg_.dcache_line) == (pa / cfg_.dcache_line)) {
          ev_.store_hits_reservation = true;
        }
        const std::uint64_t bits =
            size == 8 ? b : (b & ((1ull << (8 * size)) - 1));
        mem_.write(pa, bits, size);
        predecode_.invalidate(pa, size);
        if (!cfg_.bugs.stale_icache) icache_.invalidate_addr(pa);
        rec.has_mem = true;
        rec.mem_is_store = true;
        rec.mem_addr = addr;
        rec.mem_value = bits;
        rec.mem_size = static_cast<std::uint8_t>(size);
      } else {
        const std::uint64_t bits = mem_.read(pa, size);
        std::uint64_t value = bits;
        switch (d.op) {
          case Opcode::kLb: value = static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int8_t>(bits))); break;
          case Opcode::kLh: value = static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int16_t>(bits))); break;
          case Opcode::kLw: value = sext32(bits); break;
          default: break;
        }
        rec.has_mem = true;
        rec.mem_is_store = false;
        rec.mem_addr = addr;
        rec.mem_value = bits;
        rec.mem_size = static_cast<std::uint8_t>(size);
        write_rd(rec, d.rd, value);
        last_rd_ = d.rd;
      }
      break;
    }

    case Opcode::kFence:
      break;
    case Opcode::kFenceI:
      cc(p_fencei_flush_, true);
      icache_.flush();
      predecode_.flush();
      cycles_ += cfg_.miss_penalty / 2;
      break;

    case Opcode::kEcall:
      raise(rec,
            priv_ == Priv::kMachine ? Exception::kEcallFromM
            : priv_ == Priv::kSupervisor ? Exception::kEcallFromS
                                         : Exception::kEcallFromU,
            0);
      return;
    case Opcode::kEbreak:
      raise(rec, Exception::kBreakpoint, pc_);
      return;
    case Opcode::kWfi:
      if (priv_ == Priv::kUser) {
        raise(rec, Exception::kIllegalInstruction, d.raw);
        return;
      }
      cc(p_wfi_, true);
      cc(p_mret_, false);
      cc(p_sret_, false);
      cc(p_sfence_, false);
      stopped_ = true;
      stop_reason_ = sim::StopReason::kWfi;
      break;

    case Opcode::kSfenceVma:
      if (priv_ == Priv::kUser) {
        raise(rec, Exception::kIllegalInstruction, d.raw);
        return;
      }
      cc(p_sfence_, true);
      // The selective rs1/rs2 forms flush everything too, matching the
      // golden model's over-approximation bit for bit.
      flush_tlb();
      cycles_ += cfg_.mispredict_penalty;  // fetch replays after the fence
      break;

    case Opcode::kMret: {
      namespace ms = sim::mstatus;
      if (priv_ != Priv::kMachine) {
        raise(rec, Exception::kIllegalInstruction, d.raw);
        return;
      }
      cc(p_mret_, true);
      cc(p_wfi_, false);
      cc(p_sret_, false);
      const auto mpp = static_cast<Priv>(
          (csrs_.mstatus & ms::kMppMask) >> ms::kMppShift);
      cc(p_mret_to_u_, mpp == Priv::kUser);
      cc(p_mret_to_s_, mpp == Priv::kSupervisor);
      const bool mpie = (csrs_.mstatus & ms::kMpie) != 0;
      csrs_.mstatus &= ~(ms::kMie | ms::kMpie | ms::kMppMask);
      if (mpie) csrs_.mstatus |= ms::kMie;
      csrs_.mstatus |= ms::kMpie;
      priv_ = mpp;
      pc_ = csrs_.mepc;
      cycles_ += cfg_.mispredict_penalty;
      return;
    }
    case Opcode::kSret: {
      namespace ms = sim::mstatus;
      if (priv_ == Priv::kUser) {
        raise(rec, Exception::kIllegalInstruction, d.raw);
        return;
      }
      cc(p_sret_, true);
      cc(p_wfi_, false);
      cc(p_mret_, false);
      const bool spp = (csrs_.mstatus & ms::kSpp) != 0;
      cc(p_sret_to_u_, !spp);
      const bool spie = (csrs_.mstatus & ms::kSpie) != 0;
      csrs_.mstatus &= ~(ms::kSie | ms::kSpie | ms::kSpp);
      if (spie) csrs_.mstatus |= ms::kSie;
      csrs_.mstatus |= ms::kSpie;
      priv_ = spp ? Priv::kSupervisor : Priv::kUser;
      pc_ = csrs_.sepc;
      cycles_ += cfg_.mispredict_penalty;
      return;
    }

    case Opcode::kCsrrw: case Opcode::kCsrrs: case Opcode::kCsrrc:
    case Opcode::kCsrrwi: case Opcode::kCsrrsi: case Opcode::kCsrrci: {
      namespace c = riscv::csr;
      const bool imm_form = d.op == Opcode::kCsrrwi ||
                            d.op == Opcode::kCsrrsi || d.op == Opcode::kCsrrci;
      const std::uint64_t operand = imm_form ? d.rs1 : a;
      const bool is_write_op = d.op == Opcode::kCsrrw || d.op == Opcode::kCsrrwi;
      const bool do_write = is_write_op || d.rs1 != 0;
      cc(p_csr_machine_, c::min_priv(d.csr) == Priv::kMachine);
      cc(p_csr_super_, c::min_priv(d.csr) == Priv::kSupervisor);
      cc(p_csr_counter_, d.csr == c::kCycle || d.csr == c::kTime ||
                             d.csr == c::kInstret || d.csr == c::kMcycle ||
                             d.csr == c::kMinstret);
      cc(p_csr_satp_, d.csr == c::kSatp);
      const bool priv_fail =
          static_cast<int>(priv_) < static_cast<int>(c::min_priv(d.csr));
      cc(p_csr_priv_fail_, priv_fail);
      cc(p_csr_ro_write_, do_write && c::is_read_only(d.csr));
      std::uint64_t old = 0;
      if (!csr_read(d.csr, old, priv_)) {
        cc(p_csr_illegal_addr_, true);
        raise(rec, Exception::kIllegalInstruction, d.raw);
        return;
      }
      cc(p_csr_illegal_addr_, false);
      if (cc(p_csr_write_side_, do_write)) {
        std::uint64_t next = operand;
        if (d.op == Opcode::kCsrrs || d.op == Opcode::kCsrrsi) next = old | operand;
        if (d.op == Opcode::kCsrrc || d.op == Opcode::kCsrrci) next = old & ~operand;
        if (!csr_write(d.csr, next)) {
          raise(rec, Exception::kIllegalInstruction, d.raw);
          return;
        }
        ev_.csr_write = true;
        ev_.csr_addr = d.csr;
      }
      write_rd(rec, d.rd, old);
      last_rd_ = d.rd;
      break;
    }

    case Opcode::kLrW: case Opcode::kLrD: {
      const unsigned size = d.op == Opcode::kLrW ? 4 : 8;
      const bool misaligned = a % size != 0;
      const bool xlate = translation_active();
      std::uint64_t pa = a;
      Exception pgf = Exception::kNone;
      if (!p_tlb_.empty()) cc(p_tlb_[0], xlate);
      if (xlate && (cfg_.bugs.fault_priority_swap || !misaligned)) {
        pgf = translate(a, MemAccess::kLoad, pa);
      }
      const bool fault = pgf == Exception::kNone && !mem_.in_ram(pa, size);
      cc(p_mem_misaligned_, misaligned);
      cc(p_mem_fault_, fault);
      if (misaligned || fault || pgf != Exception::kNone) {
        if (cfg_.bugs.fault_priority_swap) {
          raise(rec, pgf != Exception::kNone ? pgf
                     : fault                 ? Exception::kLoadAccessFault
                                             : Exception::kLoadAddrMisaligned,
                a);
        } else {
          raise(rec, misaligned              ? Exception::kLoadAddrMisaligned
                     : pgf != Exception::kNone ? pgf
                                               : Exception::kLoadAccessFault,
                a);
        }
        return;
      }
      const CacheAccess dacc = dcache_.access(pa, false);
      cc(p_dc_hit_, dacc.hit);
      ev_.dcache_miss = !dacc.hit;
      ev_.has_mem_addr = true;
      ev_.mem_addr = a;
      if (!dacc.hit) cycles_ += cfg_.miss_penalty;
      const std::uint64_t bits = mem_.read(pa, size);
      // The reservation is held on the physical address.
      reservation_ = pa;
      cc(p_mem_resv_valid_, true);
      rec.has_mem = true;
      rec.mem_is_store = false;
      rec.mem_addr = a;
      rec.mem_value = bits;
      rec.mem_size = static_cast<std::uint8_t>(size);
      write_rd(rec, d.rd, size == 4 ? sext32(bits) : bits);
      last_rd_ = d.rd;
      break;
    }
    case Opcode::kScW: case Opcode::kScD: {
      const unsigned size = d.op == Opcode::kScW ? 4 : 8;
      const bool misaligned = a % size != 0;
      const bool xlate = translation_active();
      std::uint64_t pa = a;
      Exception pgf = Exception::kNone;
      if (!p_tlb_.empty()) cc(p_tlb_[0], xlate);
      if (xlate && (cfg_.bugs.fault_priority_swap || !misaligned)) {
        pgf = translate(a, MemAccess::kStore, pa);
      }
      const bool fault = pgf == Exception::kNone && !mem_.in_ram(pa, size);
      cc(p_mem_misaligned_, misaligned);
      cc(p_mem_fault_, fault);
      if (misaligned || fault || pgf != Exception::kNone) {
        if (cfg_.bugs.fault_priority_swap) {
          raise(rec, pgf != Exception::kNone ? pgf
                     : fault                 ? Exception::kStoreAccessFault
                                             : Exception::kStoreAddrMisaligned,
                a);
        } else {
          raise(rec, misaligned              ? Exception::kStoreAddrMisaligned
                     : pgf != Exception::kNone ? pgf
                                               : Exception::kStoreAccessFault,
                a);
        }
        return;
      }
      const bool ok = reservation_ && *reservation_ == pa;
      ev_.sc_success = ok;
      cc(p_mem_sc_ok_, ok);
      cc(p_mem_resv_valid_, reservation_.has_value());
      if (ok) {
        const CacheAccess dacc = dcache_.access(pa, true);
        cc(p_dc_hit_, dacc.hit);
        ev_.dcache_miss = !dacc.hit;
        ev_.has_mem_addr = true;
        ev_.mem_addr = a;
        if (!dacc.hit) cycles_ += cfg_.miss_penalty;
        const std::uint64_t bits = size == 8 ? b : (b & 0xffffffffull);
        mem_.write(pa, bits, size);
        predecode_.invalidate(pa, size);
        if (!cfg_.bugs.stale_icache) icache_.invalidate_addr(pa);
        rec.has_mem = true;
        rec.mem_is_store = true;
        rec.mem_addr = a;
        rec.mem_value = bits;
        rec.mem_size = static_cast<std::uint8_t>(size);
        write_rd(rec, d.rd, 0);
      } else {
        write_rd(rec, d.rd, 1);
      }
      reservation_.reset();
      last_rd_ = d.rd;
      break;
    }

    default: {
      if (is_amo_op(d.op)) {
        const unsigned size =
            (riscv::spec(d.op).match & 0x7000u) == 0x2000u ? 4 : 8;
        const bool misaligned = a % size != 0;
        const bool xlate = translation_active();
        std::uint64_t pa = a;
        Exception pgf = Exception::kNone;
        if (!p_tlb_.empty()) cc(p_tlb_[0], xlate);
        if (xlate && (cfg_.bugs.fault_priority_swap || !misaligned)) {
          // AMOs translate as stores: the read-modify-write needs W (+D).
          pgf = translate(a, MemAccess::kStore, pa);
        }
        const bool fault = pgf == Exception::kNone && !mem_.in_ram(pa, size);
        cc(p_mem_misaligned_, misaligned);
        cc(p_mem_fault_, fault);
        if (misaligned || fault || pgf != Exception::kNone) {
          if (cfg_.bugs.fault_priority_swap) {
            raise(rec,
                  pgf != Exception::kNone ? pgf
                  : fault                 ? Exception::kStoreAccessFault
                                          : Exception::kStoreAddrMisaligned,
                  a);
          } else {
            raise(rec,
                  misaligned                ? Exception::kStoreAddrMisaligned
                  : pgf != Exception::kNone ? pgf
                                            : Exception::kStoreAccessFault,
                  a);
          }
          return;
        }
        const CacheAccess dacc = dcache_.access(pa, true);
        cc(p_dc_hit_, dacc.hit);
        ev_.dcache_miss = !dacc.hit;
        ev_.dcache_hit_dirty = dacc.hit_dirty;
        ev_.has_mem_addr = true;
        ev_.mem_addr = a;
        if (!dacc.hit) cycles_ += cfg_.miss_penalty;
        const std::uint64_t old_bits = mem_.read(pa, size);
        const std::uint64_t old_val = size == 4 ? sext32(old_bits) : old_bits;
        const std::uint64_t src = size == 4 ? sext32(b) : b;
        std::uint64_t result = 0;
        bool is_minmax = false, is_logic = false;
        switch (d.op) {
          case Opcode::kAmoSwapW: case Opcode::kAmoSwapD: result = src; break;
          case Opcode::kAmoAddW: case Opcode::kAmoAddD: result = old_val + src; break;
          case Opcode::kAmoXorW: case Opcode::kAmoXorD: result = old_val ^ src; is_logic = true; break;
          case Opcode::kAmoAndW: case Opcode::kAmoAndD: result = old_val & src; is_logic = true; break;
          case Opcode::kAmoOrW: case Opcode::kAmoOrD: result = old_val | src; is_logic = true; break;
          case Opcode::kAmoMinW: case Opcode::kAmoMinD:
            result = static_cast<std::int64_t>(old_val) < static_cast<std::int64_t>(src) ? old_val : src;
            is_minmax = true;
            break;
          case Opcode::kAmoMaxW: case Opcode::kAmoMaxD:
            result = static_cast<std::int64_t>(old_val) > static_cast<std::int64_t>(src) ? old_val : src;
            is_minmax = true;
            break;
          case Opcode::kAmoMinuW:
            result = static_cast<std::uint32_t>(old_bits) < static_cast<std::uint32_t>(b) ? old_bits : b;
            is_minmax = true;
            break;
          case Opcode::kAmoMinuD: result = old_bits < b ? old_bits : b; is_minmax = true; break;
          case Opcode::kAmoMaxuW:
            result = static_cast<std::uint32_t>(old_bits) > static_cast<std::uint32_t>(b) ? old_bits : b;
            is_minmax = true;
            break;
          case Opcode::kAmoMaxuD: result = old_bits > b ? old_bits : b; is_minmax = true; break;
          default: break;
        }
        cc(p_mem_amo_min_, is_minmax);
        cc(p_mem_amo_logic_, is_logic);
        const std::uint64_t store_bits =
            size == 8 ? result : (result & 0xffffffffull);
        mem_.write(pa, store_bits, size);
        predecode_.invalidate(pa, size);
        if (!cfg_.bugs.stale_icache) icache_.invalidate_addr(pa);
        rec.has_mem = true;
        rec.mem_is_store = true;
        rec.mem_addr = a;
        rec.mem_value = store_bits;
        rec.mem_size = static_cast<std::uint8_t>(size);
        write_rd(rec, d.rd, old_val);
        last_rd_ = d.rd;
        // Finding2 (trace-only): rd=x0 AMOs appear to load into x0.
        if (cfg_.bugs.amo_x0_trace && d.rd == 0) {
          rec.has_rd_write = true;
          rec.rd = 0;
          rec.rd_value = old_val;
        }
        break;
      }

      // ---- ALU / M-extension ops (shared arithmetic table) ----
      const bool imm_form = is_alu_imm_op(d.op);
      const std::uint64_t operand_b =
          imm_form ? static_cast<std::uint64_t>(d.imm) : b;
      const std::uint64_t result = riscv::alu_eval(d.op, a, operand_b);
      if (riscv::is_muldiv(d.op)) {
        cc(p_md_busy_, riscv::is_div(d.op));
        if (riscv::is_div(d.op)) cycles_ += cfg_.div_latency;
        cc(p_md_div0_, operand_b == 0 || (is_wform_op(d.op) &&
                                          static_cast<std::uint32_t>(operand_b) == 0));
        cc(p_md_overflow_,
           (d.op == Opcode::kDiv || d.op == Opcode::kRem)
               ? (static_cast<std::int64_t>(a) == INT64_MIN &&
                  static_cast<std::int64_t>(operand_b) == -1)
               : (d.op == Opcode::kDivw || d.op == Opcode::kRemw) &&
                     static_cast<std::int32_t>(a) == INT32_MIN &&
                     static_cast<std::int32_t>(operand_b) == -1);
        cc(p_md_sign_mix_, (static_cast<std::int64_t>(a) < 0) !=
                               (static_cast<std::int64_t>(operand_b) < 0));
        cc(p_md_word_, is_wform_op(d.op));
        cc(p_md_high_, d.op == Opcode::kMulh || d.op == Opcode::kMulhsu ||
                           d.op == Opcode::kMulhu);
        if (!p_md_cross_.empty()) {
          const bool div0 =
              operand_b == 0 ||
              (is_wform_op(d.op) && static_cast<std::uint32_t>(operand_b) == 0);
          const bool overflow =
              (d.op == Opcode::kDiv || d.op == Opcode::kRem)
                  ? (static_cast<std::int64_t>(a) == INT64_MIN &&
                     static_cast<std::int64_t>(operand_b) == -1)
                  : (d.op == Opcode::kDivw || d.op == Opcode::kRemw) &&
                        static_cast<std::int32_t>(a) == INT32_MIN &&
                        static_cast<std::int32_t>(operand_b) == -1;
          const bool high = d.op == Opcode::kMulh || d.op == Opcode::kMulhsu ||
                            d.op == Opcode::kMulhu;
          const bool sign_mix = (static_cast<std::int64_t>(a) < 0) !=
                                (static_cast<std::int64_t>(operand_b) < 0);
          std::size_t m = 0;
          cc(p_md_cross_[m++], div0 && is_wform_op(d.op));
          cc(p_md_cross_[m++], overflow && (d.op == Opcode::kRem ||
                                            d.op == Opcode::kRemw));
          cc(p_md_cross_[m++], high && sign_mix);
          if (cfg_.cross_depth >= 2) {
            cc(p_md_cross_[m++], riscv::is_div(d.op) && a == operand_b);
            cc(p_md_cross_[m++], !riscv::is_div(d.op) && result == 0);
            cc(p_md_cross_[m++], riscv::is_div(d.op) && prev_ev_.is_load);
          }
        }
      } else {
        cc(p_ex_res_zero_, result == 0);
        cc(p_ex_res_neg_, static_cast<std::int64_t>(result) < 0);
        cc(p_ex_same_src_, !imm_form && d.rs1 == d.rs2);
        if (riscv::spec(d.op).format == riscv::Format::kIShift64 ||
            riscv::spec(d.op).format == riscv::Format::kIShift32) {
          cc(p_ex_shamt_zero_, d.imm == 0);
        }
      }
      write_rd(rec, d.rd, result);
      last_rd_ = d.rd;
      // Bug2 (CWE-440): the tracer drops MUL/DIV writeback records.
      if (cfg_.bugs.tracer_drops_muldiv && riscv::is_muldiv(d.op)) {
        rec.has_rd_write = false;
      }
      break;
    }
  }
  pc_ = next_pc;
}

}  // namespace chatfuzz::rtl
