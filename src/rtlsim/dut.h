// The DUT seam of the campaign engine: every simulated core backend — the
// in-order RtlCore and the out-of-order OooCore — implements this interface,
// and the multi-DUT campaign mode drives one golden ISS against any list of
// DutCore configs per generated test. The surface is exactly what the
// campaign/worker/bench layers already used on RtlCore; tests that poke
// backend-specific state keep constructing the concrete classes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "coverage/cover.h"
#include "coverage/multi.h"
#include "isasim/memory.h"
#include "obs/sim_counters.h"
#include "isasim/platform.h"
#include "isasim/trace.h"
#include "riscv/instr.h"
#include "riscv/superblock.h"
#include "rtlsim/config.h"

namespace chatfuzz::rtl {

class DutCore {
 public:
  virtual ~DutCore() = default;

  /// Reset architectural + microarchitectural state and load the program.
  /// Coverage in the shared DB is NOT reset (campaign-cumulative).
  virtual void reset(std::span<const std::uint32_t> program) = 0;
  virtual sim::RunResult run() = 0;

  virtual bool stopped() const = 0;
  virtual std::uint64_t pc() const = 0;
  virtual std::uint64_t reg(unsigned i) const = 0;
  virtual riscv::Priv priv() const = 0;
  virtual std::uint64_t cycles() const = 0;
  /// Architectural CSR value as an M-mode read would see it; 0 for
  /// unimplemented addresses.
  virtual std::uint64_t csr_value(std::uint16_t addr) const = 0;
  virtual const sim::Trace& trace() const = 0;
  virtual const sim::Memory& memory() const = 0;
  virtual cov::CtrlRegCoverage& ctrl_cov() = 0;
  virtual const CoreConfig& config() const = 0;

  /// Attach the multi-metric suite (nullptr detaches). Backends without
  /// suite instrumentation accept and ignore the pointer.
  virtual void attach_metrics(cov::MetricSuite* metrics) = 0;
  virtual void set_reg_seed(std::uint64_t seed) = 0;
  virtual void set_sink(sim::CommitSink* sink) = 0;
  /// Speed knob; backends without a fused path treat it as a no-op.
  virtual void set_superblocks(bool on) = 0;
  virtual void set_bbv(riscv::BbvRecorder* bbv) = 0;

  /// Telemetry counters (predecode/TLB/superblock hit rates) accumulated
  /// since the last take; taking zeroes them. Observation-only — default
  /// zero for backends without instrumentation.
  virtual obs::SimCounters take_obs_counters() { return {}; }
};

/// Construct the backend selected by `cfg.out_of_order`. Registers the
/// backend's condition points into `db` — callers that fold coverage across
/// processes must build their registrar DBs with the same config list in
/// the same order (see campaign.cpp).
std::unique_ptr<DutCore> make_dut(const CoreConfig& cfg, cov::CoverageDB& db,
                                  sim::Platform plat = {});

/// Parse a `--dut` list entry ("inorder"/"rocket", "boom", "ooo") into a
/// CoreConfig preset; returns false on an unknown name.
bool dut_preset(const std::string& name, CoreConfig& out);

}  // namespace chatfuzz::rtl
