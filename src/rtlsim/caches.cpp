#include "rtlsim/caches.h"

#include <algorithm>

namespace chatfuzz::rtl {

ICache::ICache(unsigned sets, unsigned ways, unsigned line_bytes)
    : sets_(sets), ways_(ways), line_(line_bytes),
      lines_(sets * ways), gens_(sets * ways, 0), rr_(sets, 0) {
  for (auto& l : lines_) l.data.resize(line_, 0);
}

std::uint32_t ICache::fetch(std::uint64_t addr, const sim::Memory& mem,
                            CacheAccess& acc) {
  const std::uint64_t la = line_addr(addr);
  const unsigned set = static_cast<unsigned>(la % sets_);
  const std::uint64_t tag = la / sets_;
  const std::uint64_t offset = addr % line_;

  Line* slot = nullptr;
  for (unsigned w = 0; w < ways_; ++w) {
    Line& l = lines_[set * ways_ + w];
    if (l.valid && l.tag == tag) {
      acc.hit = true;
      slot = &l;
      break;
    }
  }
  if (slot == nullptr) {
    acc.hit = false;
    Line& victim = lines_[set * ways_ + rr_[set]];
    ++gens_[set * ways_ + rr_[set]];
    rr_[set] = (rr_[set] + 1) % ways_;
    acc.evicted_valid = victim.valid;
    victim.valid = true;
    victim.tag = tag;
    const std::uint64_t base = la * line_;
    for (unsigned i = 0; i < line_; ++i) {
      victim.data[i] = static_cast<std::uint8_t>(mem.read(base + i, 1));
    }
    slot = &victim;
  }
  std::uint32_t word = 0;
  for (unsigned i = 0; i < 4; ++i) {
    word |= static_cast<std::uint32_t>(slot->data[offset + i]) << (8 * i);
  }
  return word;
}

void ICache::flush() {
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    lines_[i].valid = false;
    ++gens_[i];
  }
}

void ICache::invalidate_addr(std::uint64_t addr) {
  const std::uint64_t la = line_addr(addr);
  const unsigned set = static_cast<unsigned>(la % sets_);
  const std::uint64_t tag = la / sets_;
  for (unsigned w = 0; w < ways_; ++w) {
    Line& l = lines_[set * ways_ + w];
    if (l.valid && l.tag == tag) {
      l.valid = false;
      ++gens_[set * ways_ + w];
    }
  }
}

bool ICache::peek(std::uint64_t addr, std::uint32_t* word,
                  std::uint32_t* line_index) const {
  const std::uint64_t la = line_addr(addr);
  const unsigned set = static_cast<unsigned>(la % sets_);
  const std::uint64_t tag = la / sets_;
  const std::uint64_t offset = addr % line_;
  for (unsigned w = 0; w < ways_; ++w) {
    const Line& l = lines_[set * ways_ + w];
    if (l.valid && l.tag == tag) {
      std::uint32_t v = 0;
      for (unsigned i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(l.data[offset + i]) << (8 * i);
      }
      *word = v;
      *line_index = set * ways_ + w;
      return true;
    }
  }
  return false;
}

DCache::DCache(unsigned sets, unsigned ways, unsigned line_bytes)
    : sets_(sets), ways_(ways), line_(line_bytes),
      lines_(sets * ways), rr_(sets, 0) {}

CacheAccess DCache::access(std::uint64_t addr, bool is_store) {
  CacheAccess acc;
  const std::uint64_t la = addr / line_;
  const unsigned set = static_cast<unsigned>(la % sets_);
  const std::uint64_t tag = la / sets_;
  for (unsigned w = 0; w < ways_; ++w) {
    Line& l = lines_[set * ways_ + w];
    if (l.valid && l.tag == tag) {
      acc.hit = true;
      acc.hit_dirty = l.dirty;
      l.dirty = l.dirty || is_store;
      return acc;
    }
  }
  Line& victim = lines_[set * ways_ + rr_[set]];
  rr_[set] = (rr_[set] + 1) % ways_;
  acc.evicted_valid = victim.valid;
  acc.evicted_dirty = victim.valid && victim.dirty;
  victim.valid = true;
  victim.dirty = is_store;
  victim.tag = tag;
  return acc;
}

void DCache::flush() {
  for (auto& l : lines_) {
    l.valid = false;
    l.dirty = false;
  }
}

Predictor::Predictor(unsigned entries) : entries_(entries) {}

Predictor::Prediction Predictor::predict(std::uint64_t pc) const {
  const Entry& e = entries_[index(pc)];
  Prediction p;
  p.btb_hit = e.valid && e.tag == pc;
  p.predict_taken = p.btb_hit && e.counter >= 2;
  p.target = e.target;
  return p;
}

bool Predictor::update(std::uint64_t pc, bool taken, std::uint64_t target) {
  const Prediction p = predict(pc);
  const bool mispredict =
      p.predict_taken != taken || (taken && p.btb_hit && p.target != target);
  Entry& e = entries_[index(pc)];
  if (taken) {
    if (!(e.valid && e.tag == pc)) {
      e.valid = true;
      e.tag = pc;
      e.counter = 2;
    } else if (e.counter < 3) {
      ++e.counter;
    }
    e.target = target;
  } else if (e.valid && e.tag == pc && e.counter > 0) {
    --e.counter;
  }
  return mispredict;
}

void Predictor::flush() {
  std::fill(entries_.begin(), entries_.end(), Entry{});
}

}  // namespace chatfuzz::rtl
