#include "rtlsim/dut.h"

#include "rtlsim/core.h"
#include "rtlsim/ooo_core.h"

namespace chatfuzz::rtl {

std::unique_ptr<DutCore> make_dut(const CoreConfig& cfg, cov::CoverageDB& db,
                                  sim::Platform plat) {
  if (cfg.out_of_order) return std::make_unique<OooCore>(cfg, db, plat);
  return std::make_unique<RtlCore>(cfg, db, plat);
}

bool dut_preset(const std::string& name, CoreConfig& out) {
  if (name == "inorder" || name == "rocket") {
    out = CoreConfig::rocket();
    return true;
  }
  if (name == "boom") {
    out = CoreConfig::boom();
    return true;
  }
  if (name == "ooo") {
    out = CoreConfig::ooo();
    return true;
  }
  return false;
}

}  // namespace chatfuzz::rtl
