// Test-corpus persistence: save and reload fuzzing inputs (hex text format,
// one program per block) and mismatch reports. Real campaigns persist every
// input that found new coverage or a mismatch so bugs can be replayed and
// minimized later; this is that plumbing.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/generator.h"
#include "isasim/platform.h"
#include "mismatch/detect.h"
#include "rtlsim/config.h"

namespace chatfuzz::core {

/// Serialize programs to the text corpus format:
///   == test 0
///   00500513
///   00b60633
/// Comment lines start with '#'.
std::string corpus_to_text(const std::vector<Program>& tests);

/// Parse the text corpus format. Returns std::nullopt on malformed input
/// (bad hex word); `error` receives a description.
std::optional<std::vector<Program>> corpus_from_text(const std::string& text,
                                                     std::string* error = nullptr);

/// Lenient parse result: good blocks survive, bad blocks are skipped and
/// reported instead of failing the whole file.
struct CorpusParse {
  std::vector<Program> tests;   // the well-formed blocks, in file order
  std::size_t bad_blocks = 0;   // blocks dropped for malformed words
  /// The dropped blocks verbatim, each preceded by a '# dropped: …'
  /// comment — valid corpus-format text, written next to the import as a
  /// quarantine file so nothing is silently discarded.
  std::string quarantine;
  std::vector<std::string> errors;  // one "test N, line M: why" per drop
};

/// Parse the text corpus format, skipping individually corrupt blocks: a
/// bad hex word poisons only its own `== test` block, never the import.
CorpusParse corpus_from_text_lenient(const std::string& text);

/// Convenience file I/O (returns false on I/O error).
bool save_corpus(const std::string& path, const std::vector<Program>& tests);
std::optional<std::vector<Program>> load_corpus(const std::string& path);

/// Human-readable mismatch report for a campaign (the artifact handed to
/// the verification engineer for the paper's "manual inspection" step).
std::string render_mismatch_report(const mismatch::MismatchDetector& detector);

/// Replay one saved test on both simulators and return the mismatch report.
mismatch::Report replay_test(const Program& test,
                             const rtl::CoreConfig& core_cfg,
                             const sim::Platform& platform);

}  // namespace chatfuzz::core
