// Campaign-level basic-block-vector log: one BBV per test, folded in
// canonical test order exactly like sparse coverage — so the file bytes are
// worker-count-, process-count- and dispatch-engine-invariant. The engine
// appends an entry per test while CampaignConfig::bbv_path is set, rewrites
// the file atomically at every snapshot point, and resume truncates the log
// back to the checkpoint's test count so a paused+resumed campaign writes
// the exact bytes an uninterrupted one does.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/serialize.h"

namespace chatfuzz::core {

/// One test's basic-block vector: (block start pc, execution count) pairs
/// in per-test discovery order (see riscv::BbvRecorder).
struct BbvEntry {
  std::uint64_t test_index = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> blocks;
};

/// Path helpers keep the container parameters in one place; the file is a
/// standard util/serialize container (magic "CFBV", version 1, CRC).
ser::Status save_bbv(const std::string& path,
                     const std::vector<BbvEntry>& entries);
ser::Status load_bbv(const std::string& path, std::vector<BbvEntry>* out);

}  // namespace chatfuzz::core
