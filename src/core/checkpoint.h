// Campaign checkpoint files: the durable snapshot of everything a running
// campaign knows — configuration, the curve and counters accumulated so
// far, the coordinator's coverage/ctrl/mismatch state, the generator's
// complete stochastic state, and the corpus-store entry count to roll back
// to. The engine writes one at every checkpoint interval (atomically, via
// util/serialize.h's container) and resume_campaign() reconstructs workers
// from it and continues the curve seamlessly; because every simulator is
// reset per test and all randomness is keyed by (seed, test index), the
// resumed campaign is bit-identical to an uninterrupted one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "util/serialize.h"

namespace chatfuzz::core {

/// In-memory image of <dir>/campaign.ckpt.
struct CheckpointData {
  CampaignConfig cfg;
  std::string fuzzer;  // gen.name() at save time; resume validates it

  // Accumulated result state.
  std::vector<CampaignPoint> curve;
  std::uint64_t tests_run = 0;
  std::uint64_t total_cycles = 0;
  std::uint64_t total_instrs = 0;
  std::uint64_t since_checkpoint = 0;  // tests since the last curve point

  /// Corpus-store entries at snapshot time; resume truncates back to this.
  std::uint64_t corpus_entries = 0;

  // Component states, each an opaque sub-stream.
  std::string coverage_blob;   // CoverageDB + MetricSuite + CtrlRegCoverage
  std::string detector_blob;   // MismatchDetector tally
  std::string generator_blob;  // InputGenerator::save_state payload
};

/// Path of the checkpoint file inside a campaign directory.
std::string checkpoint_path(const std::string& dir);

/// Serialize / parse the simulation-relevant CampaignConfig fields (core,
/// platform, seed, guidance, worker count, ...). Shared by the checkpoint
/// container and the dist wire protocol's Config message, so a worker
/// process reconstructs exactly the configuration the coordinator folds
/// under. Deliberately excludes persistence paths and the DistConfig
/// (scheduling/topology never travels — each run picks its own).
void write_campaign_config(ser::Writer& w, const CampaignConfig& cfg);
bool read_campaign_config(ser::Reader& r, CampaignConfig& cfg);

/// Atomically write `data` to <dir>/campaign.ckpt (creates `dir`).
ser::Status save_checkpoint(const std::string& dir, const CheckpointData& data);

/// Load and verify <dir>/campaign.ckpt.
ser::Status load_checkpoint(const std::string& dir, CheckpointData* data);

/// Resume from an already-loaded checkpoint image — for callers that
/// inspected the checkpoint first (the CLI needs the stored fuzzer kind to
/// construct the generator) and should not pay a second full file read of
/// what may be a large ML state. `dir` is still where the continued
/// campaign persists to.
CampaignResult resume_campaign(InputGenerator& gen, const std::string& dir,
                               CheckpointData data,
                               const ResumeOptions& opts = {},
                               CheckpointHook hook = nullptr);

}  // namespace chatfuzz::core
