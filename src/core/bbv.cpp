#include "core/bbv.h"

namespace chatfuzz::core {

namespace {
constexpr std::uint32_t kBbvMagic = 0x43464256;  // "CFBV"
constexpr std::uint32_t kBbvVersion = 1;
}  // namespace

ser::Status save_bbv(const std::string& path,
                     const std::vector<BbvEntry>& entries) {
  ser::Writer w;
  w.u64(entries.size());
  for (const BbvEntry& e : entries) {
    w.u64(e.test_index);
    w.u64(e.blocks.size());
    for (const auto& [start, count] : e.blocks) {
      w.u64(start);
      w.u64(count);
    }
  }
  return ser::write_file(path, kBbvMagic, kBbvVersion, w.buffer());
}

ser::Status load_bbv(const std::string& path, std::vector<BbvEntry>* out) {
  std::string payload;
  ser::Status s =
      ser::read_file(path, kBbvMagic, kBbvVersion, "bbv log", &payload);
  if (!s.ok()) return s;
  ser::Reader r(payload);
  std::vector<BbvEntry> entries;
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > r.remaining() / 16) {
    return ser::Status::error(path + ": malformed bbv entry count");
  }
  entries.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    BbvEntry e;
    e.test_index = r.u64();
    const std::uint64_t blocks = r.u64();
    if (!r.ok() || blocks > r.remaining() / 16) {
      return ser::Status::error(path + ": malformed bbv block count");
    }
    e.blocks.reserve(static_cast<std::size_t>(blocks));
    for (std::uint64_t b = 0; b < blocks; ++b) {
      const std::uint64_t start = r.u64();
      const std::uint64_t count = r.u64();
      e.blocks.emplace_back(start, count);
    }
    entries.push_back(std::move(e));
  }
  if (!r.done()) {
    return ser::Status::error(path + ": bbv log is truncated or carries "
                                     "trailing garbage");
  }
  *out = std::move(entries);
  return {};
}

}  // namespace chatfuzz::core
