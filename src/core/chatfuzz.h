// ChatFuzz's LLM-based Input Generator (the paper's primary contribution):
// a GPT-2-class policy pretrained on machine code (stage 1), cleaned up with
// disassembler-rewarded PPO (stage 2), and steered online by coverage-
// rewarded PPO while fuzzing (stage 3). Each next_batch() call samples
// data/control-flow-entangled instruction sequences; each feedback() call
// turns the Coverage Calculator's values into rewards and performs a PPO
// update — the fuzzing loop of Fig. 1a.
#pragma once

#include <memory>

#include "core/generator.h"
#include "core/training.h"
#include "corpus/generator.h"
#include "ml/gpt.h"
#include "ml/ppo.h"
#include "ml/sampler.h"
#include "ml/tokenizer.h"
#include "util/rng.h"

namespace chatfuzz::core {

struct ChatFuzzConfig {
  ml::GptConfig model = ml::GptConfig::small();
  unsigned prompt_min = 2;   // paper: rollouts start from 2-5 instructions
  unsigned prompt_max = 5;
  int gen_tokens = 72;       // response budget (~18 instructions)

  // Offline training (stages 1-2) before the campaign.
  std::size_t pretrain_samples = 1500;
  PretrainConfig pretrain;
  int cleanup_iters = 8;

  // Stage-3 reward shaping (§IV-C3): bonus for incremental coverage,
  // small stand-alone term, penalty when a generation improves nothing,
  // and a validity term so the language stays clean.
  double w_incremental = 3.0;
  double w_standalone = 0.02;
  double no_improvement_penalty = 1.0;
  double invalid_penalty = 2.0;

  ml::PpoConfig ppo{.lr = 3e-4f};
  ml::SampleConfig sample{.temperature = 0.85f, .top_k = 20, .min_new_tokens = 48};
  std::uint64_t seed = 7;
};

class ChatFuzzGenerator final : public InputGenerator {
 public:
  explicit ChatFuzzGenerator(ChatFuzzConfig cfg = {});

  /// Run stages 1 and 2 (pretraining + disassembler cleanup). Call once
  /// before the campaign; next_batch() works either way but an untrained
  /// model generates noise.
  void train_offline();

  /// Persist / restore the trained policy (benches cache stage-1/2 training
  /// across binaries). load_model() also refreshes the stage-3 reference.
  /// Failures carry path/errno/format detail — report them, don't swallow.
  ser::Status save_model(const std::string& path) const {
    return policy_.save(path);
  }
  ser::Status load_model(const std::string& path);

  std::string name() const override { return "ChatFuzz"; }
  std::vector<Program> next_batch(std::size_t n) override;
  void feedback(const Feedback& fb) override;

  /// Full mid-campaign state: policy + frozen reference weights, PPO
  /// optimizer moments, corpus stream, harness RNG and in-flight rollouts.
  bool supports_snapshot() const override { return true; }
  void save_state(ser::Writer& w) const override;
  bool restore_state(ser::Reader& r) override;

  ml::Gpt& model() { return policy_; }
  const std::vector<PretrainEpochStats>& pretrain_stats() const {
    return pretrain_stats_;
  }
  const std::vector<CleanupIterStats>& cleanup_stats() const {
    return cleanup_stats_;
  }
  /// Stage-3 PPO statistics of the most recent feedback() update.
  const ml::PpoStats& last_ppo_stats() const { return last_ppo_; }

 private:
  ChatFuzzConfig cfg_;
  ml::Gpt policy_;
  ml::Gpt ref_;
  ml::Tokenizer tok_;
  ml::Sampler sampler_;
  std::unique_ptr<ml::PpoTrainer> ppo_;
  corpus::CorpusGenerator corpus_;
  Rng rng_;

  // Rollouts of the batch awaiting feedback.
  std::vector<ml::Generation> pending_gens_;
  std::vector<std::size_t> pending_prompt_words_;
  ml::PpoStats last_ppo_;
  std::vector<PretrainEpochStats> pretrain_stats_;
  std::vector<CleanupIterStats> cleanup_stats_;
};

}  // namespace chatfuzz::core
